// An interactive REPL for the thesis-subset Lisp.
//
//   $ ./repl
//   small> (def fact (lambda (n) (cond ((= n 0) 1) (t (* n (fact (- n 1)))))))
//   fact
//   small> (fact 10)
//   3628800
//
// Pass --trace to print the primitive trace of each evaluated form, which
// makes the instrumentation point of §3.3.1 visible interactively.
#include <cstring>
#include <iostream>
#include <string>

#include "lisp/interpreter.hpp"
#include "lisp/tracer.hpp"
#include "sexpr/printer.hpp"
#include "support/error.hpp"
#include "trace/trace.hpp"

namespace {

class EchoTracer final : public small::lisp::Tracer {
 public:
  EchoTracer(const small::sexpr::Arena& arena,
             const small::sexpr::SymbolTable& symbols)
      : arena_(arena), symbols_(symbols) {}

  void onPrimitive(small::trace::Primitive primitive,
                   std::span<const small::sexpr::NodeRef> args,
                   small::sexpr::NodeRef result) override {
    std::cout << "  ; " << small::trace::primitiveName(primitive);
    for (const auto arg : args) {
      std::cout << " " << small::sexpr::print(arena_, symbols_, arg, 64);
    }
    std::cout << " -> " << small::sexpr::print(arena_, symbols_, result, 64)
              << "\n";
  }
  void onFunctionEnter(std::string_view name, int argCount) override {
    std::cout << "  ; enter " << name << "/" << argCount << "\n";
  }
  void onFunctionExit(std::string_view name) override {
    std::cout << "  ; exit  " << name << "\n";
  }

 private:
  const small::sexpr::Arena& arena_;
  const small::sexpr::SymbolTable& symbols_;
};

}  // namespace

int main(int argc, char** argv) {
  small::sexpr::SymbolTable symbols;
  small::sexpr::Arena arena;
  small::lisp::Interpreter interp(arena, symbols);

  EchoTracer tracer(arena, symbols);
  const bool traceMode = argc > 1 && std::strcmp(argv[1], "--trace") == 0;
  if (traceMode) interp.setTracer(&tracer);

  std::cout << "SMALL Lisp REPL (" << (traceMode ? "tracing" : "quiet")
            << "); empty line or EOF quits.\n";
  std::string line;
  std::string pending;
  while (true) {
    std::cout << (pending.empty() ? "small> " : "  ...> ") << std::flush;
    if (!std::getline(std::cin, line) || (line.empty() && pending.empty())) {
      break;
    }
    pending += line;
    pending += "\n";
    // Heuristic: try to evaluate; on an unterminated-list parse error keep
    // reading continuation lines.
    try {
      const auto value = interp.run(pending);
      std::cout << small::sexpr::print(arena, symbols, value) << "\n";
      for (const auto out : interp.output()) {
        std::cout << "out: " << small::sexpr::print(arena, symbols, out)
                  << "\n";
      }
      interp.clearOutput();
      pending.clear();
    } catch (const small::support::ParseError& error) {
      if (std::string(error.what()).find("unterminated") ==
          std::string::npos) {
        std::cout << "error: " << error.what() << "\n";
        pending.clear();
      }
    } catch (const small::support::Error& error) {
      std::cout << "error: " << error.what() << "\n";
      pending.clear();
    }
  }
  return 0;
}
