// Quickstart: the full SMALL pipeline in one page.
//
//   1. Run a Lisp workload under the tracing interpreter.
//   2. Preprocess the trace (unique ids + chaining flags, §5.2.1).
//   3. Partition it into list sets (Chapter 3) and print the locality
//      headline.
//   4. Drive the trace-driven SMALL simulator (Chapter 5) and print the
//      LPT's hit rate against the comparison data cache.
#include <cstdio>

#include "analysis/list_sets.hpp"
#include "small/simulator.hpp"
#include "support/table.hpp"
#include "trace/preprocess.hpp"
#include "workloads/driver.hpp"

int main() {
  using namespace small;

  std::puts("SMALL quickstart: tracing the Lyra design-rule checker...");
  const trace::Trace raw = workloads::runWorkload(workloads::Workload::kLyra);
  const trace::TraceContent content = raw.content();
  std::printf("  traced %llu primitive calls across %llu function calls "
              "(max depth %u)\n",
              static_cast<unsigned long long>(content.primitiveCalls),
              static_cast<unsigned long long>(content.functionCalls),
              content.maxCallDepth);

  const trace::PreprocessedTrace pre = trace::preprocess(raw);
  std::printf("  %u unique list objects\n", pre.uniqueListCount);

  const analysis::ListSetPartition partition =
      analysis::partitionListSets(pre);
  const support::Series cumulative =
      partition.cumulativeReferencesBySetRank();
  std::printf("\nChapter 3 — structural locality:\n");
  std::printf("  %zu list sets over %llu list references\n",
              partition.sets.size(),
              static_cast<unsigned long long>(partition.totalReferences));
  for (const std::size_t k : {1u, 4u, 10u, 25u}) {
    if (k <= cumulative.y.size()) {
      std::printf("  top %2zu list sets cover %s of all references\n", k,
                  support::formatPercent(cumulative.y[k - 1]).c_str());
    }
  }

  std::printf("\nChapter 5 — SMALL simulation (LPT of 2048 entries):\n");
  core::SimConfig config;
  config.tableSize = 2048;
  config.driveCache = true;
  const core::SimResult result = core::simulateTrace(config, pre);
  std::printf("  LPT   hit rate %s  (%llu misses)\n",
              support::formatPercent(result.lptHitRate).c_str(),
              static_cast<unsigned long long>(result.lptMisses));
  std::printf("  cache hit rate %s  (%llu misses)\n",
              support::formatPercent(result.cacheHitRate).c_str(),
              static_cast<unsigned long long>(result.cacheMisses));
  std::printf("  peak LPT occupancy %u entries, %llu refcount ops, "
              "%llu entry allocations\n",
              result.peakOccupancy,
              static_cast<unsigned long long>(result.lptStats.refOps),
              static_cast<unsigned long long>(result.lptStats.gets));
  std::printf("  pseudo overflows: %llu, true overflows: %llu\n",
              static_cast<unsigned long long>(
                  result.lpStats.pseudoOverflows),
              static_cast<unsigned long long>(result.lpStats.trueOverflows));
  return 0;
}
