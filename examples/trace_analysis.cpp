// Trace analysis walkthrough: run every workload, partition each trace
// into list sets, and print the Chapter 3 style report (primitive mix,
// n/p shape, list-set coverage, LRU depths, chaining).
#include <cstdio>

#include "analysis/census.hpp"
#include "analysis/chaining.hpp"
#include "analysis/list_sets.hpp"
#include "support/table.hpp"
#include "trace/preprocess.hpp"
#include "workloads/driver.hpp"

int main() {
  using namespace small;

  support::TextTable table({"Workload", "Prims", "car%", "cdr%", "cons%",
                            "mean n", "mean p", "sets", "top-10 cover",
                            "car chained"});

  for (const workloads::Workload w : workloads::kAllWorkloads) {
    const trace::Trace raw = workloads::runWorkload(w);
    const analysis::PrimitiveCensus census =
        analysis::censusPrimitives(raw);
    const analysis::ShapeStatistics shapes = analysis::censusShapes(raw);
    const trace::PreprocessedTrace pre = trace::preprocess(raw);
    const analysis::ListSetPartition partition =
        analysis::partitionListSets(pre);
    const analysis::ChainingStats chaining = analysis::analyzeChaining(pre);
    const support::Series cumulative =
        partition.cumulativeReferencesBySetRank();
    const std::size_t k = std::min<std::size_t>(cumulative.y.size(), 10);

    table.addRow({
        workloads::workloadName(w),
        std::to_string(raw.primitiveLength()),
        support::formatPercent(census.fraction(trace::Primitive::kCar), 1),
        support::formatPercent(census.fraction(trace::Primitive::kCdr), 1),
        support::formatPercent(census.fraction(trace::Primitive::kCons), 1),
        support::formatDouble(shapes.n.mean(), 2),
        support::formatDouble(shapes.p.mean(), 2),
        std::to_string(partition.sets.size()),
        k ? support::formatPercent(cumulative.y[k - 1], 1) : "-",
        support::formatPercent(
            chaining.chainedFraction(trace::Primitive::kCar), 1),
    });
  }

  std::puts("Chapter 3 style trace analysis over the workload suite:\n");
  std::fputs(table.render().c_str(), stdout);
  std::puts("\n'top-10 cover' = fraction of list references inside the 10 "
            "largest list sets (Fig 3.4's headline).");
  return 0;
}
