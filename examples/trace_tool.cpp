// trace_tool — command-line front end for the trace pipeline.
//
//   trace_tool generate <workload|synthetic:<name>> [--scale K] [-o FILE]
//   trace_tool analyze  <FILE> [--separation PCT]
//   trace_tool simulate <FILE> [--table N] [--seed S] [--cache]
//
// Workload names: slang plagen lyra editor pearl. `generate workload:lyra`
// runs the Lisp program under the tracing interpreter; `synthetic:lyra`
// uses the generator calibrated to the thesis' statistics.
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>

#include "analysis/census.hpp"
#include "analysis/chaining.hpp"
#include "analysis/list_sets.hpp"
#include "small/simulator.hpp"
#include "support/table.hpp"
#include "trace/io.hpp"
#include "trace/preprocess.hpp"
#include "trace/synthetic.hpp"
#include "workloads/driver.hpp"

namespace {

using namespace small;

int usage() {
  std::fputs(
      "usage:\n"
      "  trace_tool generate <workload:NAME|synthetic:NAME> [--scale K] "
      "[-o FILE]\n"
      "  trace_tool analyze  FILE [--separation PCT]\n"
      "  trace_tool simulate FILE [--table N] [--seed S] [--cache]\n"
      "names: slang plagen lyra editor pearl\n",
      stderr);
  return 2;
}

std::optional<workloads::Workload> workloadByName(const std::string& name) {
  for (const workloads::Workload w : workloads::kAllWorkloads) {
    std::string candidate = workloads::workloadName(w);
    for (char& c : candidate) c = static_cast<char>(std::tolower(c));
    if (candidate == name) return w;
  }
  return std::nullopt;
}

std::optional<trace::WorkloadProfile> profileByName(const std::string& name,
                                                    double scale) {
  if (name == "slang") return trace::slangProfile(scale);
  if (name == "plagen") return trace::plagenProfile(scale);
  if (name == "lyra") return trace::lyraProfile(scale);
  if (name == "editor") return trace::editorProfile(scale);
  if (name == "pearl") return trace::pearlProfile(scale);
  return std::nullopt;
}

const char* argValue(int argc, char** argv, const char* flag) {
  for (int i = 2; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  }
  return nullptr;
}

bool argFlag(int argc, char** argv, const char* flag) {
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

int generate(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string spec = argv[2];
  const auto colon = spec.find(':');
  if (colon == std::string::npos) return usage();
  const std::string kind = spec.substr(0, colon);
  const std::string name = spec.substr(colon + 1);
  const char* scaleArg = argValue(argc, argv, "--scale");
  const double scale = scaleArg ? std::atof(scaleArg) : 1.0;

  trace::Trace raw;
  if (kind == "workload") {
    const auto workload = workloadByName(name);
    if (!workload) return usage();
    workloads::RunOptions options;
    options.scale = scale;
    raw = workloads::runWorkload(*workload, options);
  } else if (kind == "synthetic") {
    const auto profile = profileByName(name, scale);
    if (!profile) return usage();
    support::Rng rng(2026);
    raw = trace::generate(*profile, rng);
  } else {
    return usage();
  }

  const trace::TraceContent content = raw.content();
  std::printf("generated %s: %llu primitives, %llu function calls, "
              "max depth %u\n",
              raw.name.c_str(),
              (unsigned long long)content.primitiveCalls,
              (unsigned long long)content.functionCalls,
              content.maxCallDepth);
  if (const char* out = argValue(argc, argv, "-o")) {
    trace::saveFile(raw, out);
    std::printf("written to %s\n", out);
  }
  return 0;
}

int analyze(int argc, char** argv) {
  if (argc < 3) return usage();
  const trace::Trace raw = trace::loadFile(argv[2]);
  const auto pre = trace::preprocess(raw);
  const char* sepArg = argValue(argc, argv, "--separation");
  analysis::ListSetOptions options;
  if (sepArg) options.separationFraction = std::atof(sepArg) / 100.0;

  const auto census = analysis::censusPrimitives(raw);
  const auto shapes = analysis::censusShapes(raw);
  const auto partition = analysis::partitionListSets(pre, options);
  const auto chaining = analysis::analyzeChaining(pre);
  const auto cumulative = partition.cumulativeReferencesBySetRank();

  std::printf("trace %s: %llu primitives, %u unique lists\n",
              raw.name.c_str(), (unsigned long long)pre.primitiveCount,
              pre.uniqueListCount);
  std::printf("mix: car %s cdr %s cons %s\n",
              support::formatPercent(
                  census.fraction(trace::Primitive::kCar), 1)
                  .c_str(),
              support::formatPercent(
                  census.fraction(trace::Primitive::kCdr), 1)
                  .c_str(),
              support::formatPercent(
                  census.fraction(trace::Primitive::kCons), 1)
                  .c_str());
  std::printf("shape: mean n %.2f, mean p %.2f\n", shapes.n.mean(),
              shapes.p.mean());
  std::printf("list sets: %zu over %llu references",
              partition.sets.size(),
              (unsigned long long)partition.totalReferences);
  if (!cumulative.y.empty()) {
    const std::size_t k = std::min<std::size_t>(cumulative.y.size(), 10);
    std::printf("; top-%zu cover %s", k,
                support::formatPercent(cumulative.y[k - 1], 1).c_str());
  }
  std::printf("\nchaining: car %s cdr %s\n",
              support::formatPercent(
                  chaining.chainedFraction(trace::Primitive::kCar), 1)
                  .c_str(),
              support::formatPercent(
                  chaining.chainedFraction(trace::Primitive::kCdr), 1)
                  .c_str());
  return 0;
}

int simulate(int argc, char** argv) {
  if (argc < 3) return usage();
  const trace::Trace raw = trace::loadFile(argv[2]);
  const auto pre = trace::preprocess(raw);
  core::SimConfig config;
  if (const char* table = argValue(argc, argv, "--table")) {
    config.tableSize = static_cast<std::uint32_t>(std::atoi(table));
  }
  if (const char* seed = argValue(argc, argv, "--seed")) {
    config.seed = static_cast<std::uint64_t>(std::atoll(seed));
  }
  config.driveCache = argFlag(argc, argv, "--cache");
  const core::SimResult result = core::simulateTrace(config, pre);
  std::printf("simulated %llu primitives on a %u-entry LPT (seed %llu)\n",
              (unsigned long long)result.primitivesSimulated,
              config.tableSize, (unsigned long long)config.seed);
  std::printf("LPT: hit rate %s (%llu hits, %llu misses), peak %u, "
              "refops %llu\n",
              support::formatPercent(result.lptHitRate, 2).c_str(),
              (unsigned long long)result.lptHits,
              (unsigned long long)result.lptMisses, result.peakOccupancy,
              (unsigned long long)result.lptStats.refOps);
  if (config.driveCache) {
    std::printf("cache: hit rate %s (%llu misses)\n",
                support::formatPercent(result.cacheHitRate, 2).c_str(),
                (unsigned long long)result.cacheMisses);
  }
  std::printf("overflows: pseudo %llu, true %llu\n",
              (unsigned long long)result.lpStats.pseudoOverflows,
              (unsigned long long)result.lpStats.trueOverflows);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  try {
    if (command == "generate") return generate(argc, argv);
    if (command == "analyze") return analyze(argc, argv);
    if (command == "simulate") return simulate(argc, argv);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "trace_tool: %s\n", error.what());
    return 1;
  }
  return usage();
}
