// Compiler demo: reproduce Figures 4.14 and 4.15 — compile the thesis'
// factorial and list-manipulation examples to the SMALL stack machine,
// print the disassembly, and run them on the emulator.
#include <cstdio>

#include "sexpr/printer.hpp"
#include "vm/compiler.hpp"
#include "vm/emulator.hpp"

namespace {

void demo(const char* title, const char* source, const char* input) {
  using namespace small;
  std::printf("=== %s ===\n%s\n", title, source);

  sexpr::SymbolTable symbols;
  sexpr::Arena arena;
  vm::Compiler compiler(arena, symbols);
  const vm::Program program = compiler.compile(source);

  std::puts("--- compiled code ---");
  std::fputs(vm::disassemble(program, arena, symbols).c_str(), stdout);

  vm::Emulator emulator(arena, symbols);
  if (input && *input) {
    sexpr::Reader reader(arena, symbols);
    for (const auto form : reader.readAll(input)) {
      emulator.provideInput(form);
    }
  }
  emulator.run(program);
  std::puts("--- output ---");
  for (const auto value : emulator.output()) {
    std::printf("%s\n", sexpr::print(arena, symbols, value).c_str());
  }
  std::printf("(%llu instructions, %llu list ops, %llu calls)\n\n",
              static_cast<unsigned long long>(
                  emulator.instructionsExecuted()),
              static_cast<unsigned long long>(emulator.listOps()),
              static_cast<unsigned long long>(emulator.functionCalls()));
}

}  // namespace

int main() {
  // Fig 4.14: the factorial function.
  demo("Fig 4.14 - factorial",
       R"((def fact (lambda (x)
  (cond ((= x 0) 1)
        (t (* x (fact (- x 1)))))))
(write (fact 12)))",
       "");

  // Fig 4.15: list manipulation and function calling.
  demo("Fig 4.15 - list manipulation and function calling",
       R"((def print-it (lambda (junk)
  (write (cdr junk))))
(def doit (lambda ()
  (prog (lst)
    (setq lst (read))
    (print-it lst)
    (setq lst (cdr (cdr lst)))
    (write lst))))
(doit))",
       "(this is a list of six)");
  return 0;
}
