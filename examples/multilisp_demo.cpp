// Multilisp demo (Chapter 6): parallel argument evaluation with futures
// over a worker pool, and the reference-weighting traffic comparison.
#include <chrono>
#include <cstdio>
#include <functional>
#include <numeric>
#include <vector>

#include "multilisp/distributed.hpp"
#include "multilisp/futures.hpp"
#include "multilisp/nodes.hpp"
#include "sexpr/printer.hpp"
#include "sexpr/reader.hpp"
#include "support/rng.hpp"

namespace {

long slowSum(long n) {
  long acc = 0;
  for (long i = 0; i <= n; ++i) acc += i % 97;
  return acc;
}

}  // namespace

int main() {
  using namespace small::multilisp;
  using Clock = std::chrono::steady_clock;

  // --- pcall: evaluate a call's arguments in parallel (§6.2.1.2) ---
  std::puts("pcall: (f (slow 1) (slow 2) ... (slow 8)) with parallel "
            "argument evaluation");
  std::vector<std::function<long()>> thunks;
  for (long i = 1; i <= 8; ++i) {
    thunks.push_back([i] { return slowSum(2'000'000 + i); });
  }

  const auto t0 = Clock::now();
  long sequential = 0;
  for (const auto& thunk : thunks) sequential += thunk();
  const auto t1 = Clock::now();

  TaskPool pool;
  const long parallel = pcall(
      pool,
      [](std::vector<long> args) {
        return std::accumulate(args.begin(), args.end(), 0L);
      },
      thunks);
  const auto t2 = Clock::now();

  const auto ms = [](auto a, auto b) {
    return std::chrono::duration_cast<std::chrono::milliseconds>(b - a)
        .count();
  };
  std::printf("  sequential: %ld in %lld ms\n", sequential, (long long)ms(t0, t1));
  std::printf("  pcall     : %ld in %lld ms on %u workers\n", parallel,
              (long long)ms(t1, t2), pool.workerCount());

  // --- futures: touch blocks until the value is determined ---
  Future<long> future(pool, [] { return slowSum(1'000'000); });
  std::printf("  (future ...) touched -> %ld\n", future.touch());

  // --- reference weighting vs plain counting (Figs 6.2/6.3/6.6) ---
  std::puts("\nreference management traffic in a 4-node SMALL Multilisp:");
  small::support::Rng rng(2026);
  NodeSystem::Params params;
  params.nodeCount = 4;
  NodeSystem system(params, rng);
  const TrafficReport report = system.run(200000);
  std::printf("  reference events          : %llu\n",
              (unsigned long long)report.referenceEvents);
  std::printf("  plain counting messages   : %llu\n",
              (unsigned long long)report.plainMessages);
  std::printf("  reference weighting       : %llu\n",
              (unsigned long long)report.weightedMessages);
  std::printf("  + combining queues        : %llu\n",
              (unsigned long long)report.combinedMessages);

  // --- distributed SMALL: export, share, fetch (Figs 6.4/6.5) ---
  std::puts("\ndistributed SMALL: node 0 exports, node 1 shares, node 2 "
            "fetches a local copy:");
  DistributedSmall dist;
  small::sexpr::Reader reader(dist.arena(), dist.symbols());
  const auto local = dist.node(0).readList(
      dist.arena(), reader.readOne("(knowledge (base (of node 0)))"));
  auto handle = dist.exportObject(0, local);
  auto shared = dist.ship(handle);  // the weight moves to node 1
  auto sharedCopy = dist.copyRef(shared);  // local split: no message
  const auto fetched = dist.fetch(2, shared);
  std::printf("  node 2 now holds: %s\n",
              small::sexpr::print(dist.arena(), dist.symbols(),
                                  dist.node(2).writeList(dist.arena(),
                                                         fetched))
                  .c_str());
  dist.node(2).release(fetched);
  dist.dropRef(1, shared);
  dist.dropRef(1, sharedCopy);
  dist.flushAll();
  std::printf("  traffic: %llu export, %llu copy, %llu combined "
              "decrements, %llu fetch\n",
              (unsigned long long)dist.traffic().exportMessages,
              (unsigned long long)dist.traffic().copyMessages,
              (unsigned long long)dist.traffic().decrementMessages,
              (unsigned long long)dist.traffic().fetchMessages);
  std::printf("  node 0 entries after last drop: %u (structure reclaimed)\n",
              dist.node(0).entriesInUse());
  return 0;
}
