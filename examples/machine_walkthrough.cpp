// Fig 4.9 walkthrough — the thesis' own worked example, executed on the
// functional SMALL machine:
//
//   "Figure 4.9a shows the LPT after 2 lists have been read in and
//    designated as list objects L1 and L2... The following operation is
//    then performed: {cons [cons (car L1) (cdr L2)] (car L2)} ...
//    Note that to do 3 list accesses only 2 accesses of the actual list
//    storage were necessary. The cons operations affect only the LPT and
//    not the list heap memory."
#include <cstdio>

#include "sexpr/printer.hpp"
#include "sexpr/reader.hpp"
#include "small/machine.hpp"

int main() {
  using namespace small;
  sexpr::SymbolTable symbols;
  sexpr::Arena arena;
  sexpr::Reader reader(arena, symbols);
  core::SmallMachine machine;

  auto show = [&](const char* label) {
    std::printf("%s\n%s  (splits so far: %llu, heap cells live: %llu)\n\n",
                label, machine.dumpTable(symbols).c_str(),
                (unsigned long long)machine.stats().splits,
                (unsigned long long)machine.heapCellsLive());
  };

  std::puts("Fig 4.9 on the functional SMALL machine\n");

  // (a) two lists read in as L1 and L2.
  const auto l1 = machine.readList(arena, reader.readOne("(alpha beta)"));
  const auto l2 = machine.readList(arena, reader.readOne("(gamma delta)"));
  show("(a) after reading in two lists:");

  // (b) (car L1) and (cdr L2): each splits its object — the only two
  // heap accesses in the whole evaluation.
  const auto carL1 = machine.car(l1);
  const auto cdrL2 = machine.cdr(l2);
  show("(b) after (car L1) and (cdr L2) — two heap splits:");

  // (c) (car L2) is the third access; L2 is already split: an LPT hit.
  const auto carL2 = machine.car(l2);
  std::printf("(car L2) hit the LPT: splits still %llu, hits %llu\n\n",
              (unsigned long long)machine.stats().splits,
              (unsigned long long)machine.stats().hits);

  // The two conses touch only the table.
  const auto inner = machine.cons(carL1, cdrL2);
  const auto result = machine.cons(inner, carL2);
  show("(c) after {cons [cons (car L1) (cdr L2)] (car L2)} — no heap:");

  std::printf("result value: %s\n",
              sexpr::print(arena, symbols,
                           machine.writeList(arena, result))
                  .c_str());
  std::printf("3 list accesses -> %llu heap splits (paper: \"only 2 "
              "accesses of the actual list storage\")\n",
              (unsigned long long)machine.stats().splits);

  // Release everything; compression folds the endo-structure back into
  // the heap on demand, the free queue reclaims cells.
  for (const auto value : {result, inner, carL2, cdrL2, carL1, l2, l1}) {
    machine.release(value);
  }
  machine.serviceAllHeapFrees();
  std::printf("after releasing all EP references: %u entries, %llu heap "
              "cells live\n",
              machine.entriesInUse(),
              (unsigned long long)machine.heapCellsLive());
  return 0;
}
