// Ablation bench across the Chapter 2 list representations: encode cost,
// traversal cost (dependent reads), space, and split cost — the
// quantitative version of §2.3.3's qualitative comparison.
#include <benchmark/benchmark.h>

#include "micro_util.hpp"

#include <memory>
#include <sstream>

#include "heap/backend.hpp"
#include "heap/cdar_coded.hpp"
#include "heap/conc.hpp"
#include "heap/cdr_coded.hpp"
#include "heap/linked_vector.hpp"
#include "heap/two_pointer.hpp"
#include "sexpr/reader.hpp"

namespace {

using namespace small;

std::string flatList(int n) {
  std::ostringstream out;
  out << "(";
  for (int i = 0; i < n; ++i) out << "sym" << i << " ";
  out << ")";
  return out.str();
}

struct Fixture {
  sexpr::SymbolTable symbols;
  sexpr::Arena arena;
  sexpr::NodeRef list = sexpr::kNilRef;

  explicit Fixture(int n) {
    sexpr::Reader reader(arena, symbols);
    list = reader.readOne(flatList(n));
  }
};

void BM_EncodeTwoPointer(benchmark::State& state) {
  Fixture fixture(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    heap::TwoPointerHeap heap;
    benchmark::DoNotOptimize(heap.encode(fixture.arena, fixture.list));
  }
}
BENCHMARK(BM_EncodeTwoPointer)->Arg(64)->Arg(1024);

void BM_EncodeCdrCoded(benchmark::State& state) {
  Fixture fixture(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    heap::CdrCodedHeap heap;
    benchmark::DoNotOptimize(heap.encode(fixture.arena, fixture.list));
  }
}
BENCHMARK(BM_EncodeCdrCoded)->Arg(64)->Arg(1024);

void BM_EncodeLinkedVector(benchmark::State& state) {
  Fixture fixture(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    heap::LinkedVectorHeap heap(16);
    benchmark::DoNotOptimize(heap.encode(fixture.arena, fixture.list));
  }
}
BENCHMARK(BM_EncodeLinkedVector)->Arg(64)->Arg(1024);

void BM_EncodeCdarTable(benchmark::State& state) {
  Fixture fixture(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        heap::CdarTable::encode(fixture.arena, fixture.list));
  }
}
// CDAR codes carry one bit per list position; the 64-bit
// packed code caps encodable flat lists at depth/length 64.
BENCHMARK(BM_EncodeCdarTable)->Arg(16)->Arg(48);

// Concatenation: O(1) conc cell vs the two-pointer append's spine copy
// (the §2.3.3.1 contrast that motivates the conc representation).
void BM_ConcatConcCell(benchmark::State& state) {
  Fixture fixture(static_cast<int>(state.range(0)));
  heap::ConcHeap heap;
  const auto a = heap.encode(fixture.arena, fixture.list);
  const auto b = heap.encode(fixture.arena, fixture.list);
  for (auto _ : state) {
    benchmark::DoNotOptimize(heap.conc(a, b));
  }
}
BENCHMARK(BM_ConcatConcCell)->Arg(64)->Arg(1024);

void BM_ConcatTwoPointerAppend(benchmark::State& state) {
  Fixture fixture(static_cast<int>(state.range(0)));
  heap::TwoPointerHeap heap;
  const heap::HeapWord a = heap.encode(fixture.arena, fixture.list);
  const heap::HeapWord b = heap.encode(fixture.arena, fixture.list);
  for (auto _ : state) {
    // append: copy a's spine, share b.
    std::vector<heap::HeapWord> heads;
    heap::HeapWord cursor = a;
    while (cursor.isPointer()) {
      heads.push_back(heap.car(cursor.payload));
      cursor = heap.cdr(cursor.payload);
    }
    heap::HeapWord tail = b;
    for (std::size_t i = heads.size(); i-- > 0;) {
      tail = heap::HeapWord::pointer(heap.allocate(heads[i], tail));
    }
    benchmark::DoNotOptimize(tail);
  }
}
BENCHMARK(BM_ConcatTwoPointerAppend)->Arg(64)->Arg(1024);

// Traversal: walk the cdr chain to the end. Two-pointer chases pointers
// (every read dependent); cdr-coded mostly increments addresses.
void BM_TraverseTwoPointer(benchmark::State& state) {
  Fixture fixture(static_cast<int>(state.range(0)));
  heap::TwoPointerHeap heap;
  const heap::HeapWord root = heap.encode(fixture.arena, fixture.list);
  for (auto _ : state) {
    heap::HeapWord cursor = root;
    int count = 0;
    while (cursor.isPointer()) {
      ++count;
      cursor = heap.cdr(cursor.payload);
    }
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_TraverseTwoPointer)->Arg(1024);

void BM_TraverseCdrCoded(benchmark::State& state) {
  Fixture fixture(static_cast<int>(state.range(0)));
  heap::CdrCodedHeap heap;
  const heap::CdrWord root = heap.encode(fixture.arena, fixture.list);
  for (auto _ : state) {
    heap::CdrWord cursor = root;
    int count = 0;
    while (cursor.isPointer()) {
      ++count;
      cursor = heap.cdr(cursor.payload);
    }
    benchmark::DoNotOptimize(count);
  }
  state.counters["dependent_read_frac"] =
      heap.reads() == 0
          ? 0.0
          : static_cast<double>(heap.dependentReads()) /
                static_cast<double>(heap.reads());
}
BENCHMARK(BM_TraverseCdrCoded)->Arg(1024);

// Split cost: trivial for two-pointer cells, a table scan-and-copy for
// structure-coded tables (§4.3.3.2's asymmetry).
void BM_SplitTwoPointer(benchmark::State& state) {
  Fixture fixture(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    state.PauseTiming();
    heap::TwoPointerHeap heap;
    const heap::HeapWord root = heap.encode(fixture.arena, fixture.list);
    state.ResumeTiming();
    benchmark::DoNotOptimize(heap.split(root.payload));
  }
}
BENCHMARK(BM_SplitTwoPointer)->Arg(256);

void BM_SplitCdarTable(benchmark::State& state) {
  Fixture fixture(static_cast<int>(state.range(0)));
  const heap::CdarTable table =
      heap::CdarTable::encode(fixture.arena, fixture.list);
  for (auto _ : state) {
    std::uint64_t copies = 0;
    benchmark::DoNotOptimize(table.car(&copies));
    benchmark::DoNotOptimize(table.cdr(&copies));
    benchmark::DoNotOptimize(copies);
  }
}
BENCHMARK(BM_SplitCdarTable)->Arg(48);

// Abstraction overhead: the same two-pointer operation mix issued against
// the concrete TwoPointerHeap vs through the virtual HeapBackend
// interface (which also maintains the HeapStats counters). The delta is
// the price the unified backend pays per operation — what the machine and
// the backend-comparison bench ride on.
void BM_DirectTwoPointerOps(benchmark::State& state) {
  Fixture fixture(static_cast<int>(state.range(0)));
  heap::TwoPointerHeap heap;
  const heap::HeapWord root = heap.encode(fixture.arena, fixture.list);
  for (auto _ : state) {
    heap::HeapWord cursor = root;
    std::uint64_t sum = 0;
    while (cursor.isPointer()) {
      sum += heap.car(cursor.payload).payload;
      cursor = heap.cdr(cursor.payload);
    }
    const auto cell =
        heap.allocate(heap::HeapWord::integer(7), heap::HeapWord::nil());
    heap.setCar(cell, heap::HeapWord::integer(static_cast<int64_t>(sum)));
    heap.free(cell);
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_DirectTwoPointerOps)->Arg(64)->Arg(1024);

void BM_BackendTwoPointerOps(benchmark::State& state) {
  Fixture fixture(static_cast<int>(state.range(0)));
  const std::unique_ptr<heap::HeapBackend> heap =
      heap::makeHeapBackend(heap::HeapBackendKind::kTwoPointer);
  const heap::HeapWord root = heap->encode(fixture.arena, fixture.list);
  for (auto _ : state) {
    heap::HeapWord cursor = root;
    std::uint64_t sum = 0;
    while (cursor.isPointer()) {
      sum += heap->car(cursor.payload).payload;
      cursor = heap->cdr(cursor.payload);
    }
    const auto cell =
        heap->allocate(heap::HeapWord::integer(7), heap::HeapWord::nil());
    heap->setCar(cell, heap::HeapWord::integer(static_cast<int64_t>(sum)));
    heap->free(cell);
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_BackendTwoPointerOps)->Arg(64)->Arg(1024);

// Encode through the interface for each representation: the same list,
// three physical layouts, one call site.
void BM_BackendEncode(benchmark::State& state) {
  Fixture fixture(64);
  const auto kind =
      static_cast<heap::HeapBackendKind>(state.range(0));
  for (auto _ : state) {
    const auto heap = heap::makeHeapBackend(kind);
    benchmark::DoNotOptimize(heap->encode(fixture.arena, fixture.list));
  }
  state.SetLabel(heap::heapBackendName(kind));
}
BENCHMARK(BM_BackendEncode)->Arg(0)->Arg(1)->Arg(2);

}  // namespace

SMALL_MICRO_MAIN("micro_heap_representations")
