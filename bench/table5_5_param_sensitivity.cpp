// Table 5.5 — Sensitivity of Simulation to Probability Parameters.
//
// Five runs on the Slang trace: Control (0.60/0.30/0.01/0.01), HiArg
// (0.85/0.125), HiLoc (0.30/0.60), HiRead (ReadProb 0.03), HiBind
// (BindProb 0.03). Paper shape: the measures fluctuate only by small
// amounts; the general trends are unchanged.
//
// The five parameter settings are independent runs over the same shared
// preprocessed trace, fanned out through support::runSweep behind --jobs N;
// results come back in setting order, so the table is byte-identical at
// any job count.
#include <cstdio>

#include "bench_util.hpp"
#include "small/simulator.hpp"
#include "support/parallel.hpp"
#include "support/table.hpp"
#include "trace/preprocess.hpp"

int main(int argc, char** argv) {
  using namespace small;
  benchutil::BenchRun bench("table5_5_param_sensitivity", argc, argv,
                            {{"--workload"}});
  const bool fromWorkloads = bench.has("--workload");
  const int jobs = bench.jobs();

  const auto traces = benchutil::prepareChapter5(
      fromWorkloads, jobs, bench.traceRoundTrip());
  const benchutil::PreparedTrace* slang = &traces[0];
  for (const auto& named : traces) {
    if (named.name == "Slang") slang = &named;
  }
  const trace::PreprocessedTrace& pre = slang->pre;

  struct Setting {
    const char* name;
    double argProb, locProb, bindProb, readProb;
  };
  constexpr Setting kSettings[] = {
      {"Control", 0.60, 0.30, 0.01, 0.01},
      {"HiArg", 0.85, 0.125, 0.01, 0.01},
      {"HiLoc", 0.30, 0.60, 0.01, 0.01},
      {"HiRead", 0.60, 0.30, 0.01, 0.03},
      {"HiBind", 0.60, 0.30, 0.03, 0.01},
  };

  std::puts("Table 5.5: sensitivity of the Slang simulation to the "
            "probability parameters");
  support::TextTable table({"Statistic", "Control", "HiArg", "HiLoc",
                            "HiRead", "HiBind"});
  obs::ShardSet shards(std::size(kSettings), bench.obsEnabled());
  std::vector<core::SimResult> results(std::size(kSettings));
  obs::runIndexedObs(
      std::size(kSettings), jobs, shards, [&](std::size_t id) {
        const Setting& setting = kSettings[id];
        core::SimConfig config;
        config.tableSize = 64;  // the paper's runs used a small table
        config.argProb = setting.argProb;
        config.locProb = setting.locProb;
        config.bindProb = setting.bindProb;
        config.readProb = setting.readProb;
        config.driveCache = true;
        config.seed = 2026;
        results[id] = core::simulateTrace(config, pre);
        benchutil::contributeSimResult(shards.registryAt(id), results[id]);
      });
  bench.collectShards(shards);

  auto row = [&](const char* label, auto getter) {
    std::vector<std::string> cells{label};
    for (const core::SimResult& result : results) {
      cells.push_back(std::to_string(getter(result)));
    }
    table.addRow(cells);
  };
  row("Ave LPT Count", [](const core::SimResult& r) {
    return static_cast<long long>(r.averageOccupancy + 0.5);
  });
  row("Max LPT Count", [](const core::SimResult& r) {
    return static_cast<long long>(r.peakOccupancy);
  });
  row("LPT Hits", [](const core::SimResult& r) {
    return static_cast<long long>(r.lptHits);
  });
  row("Cache Hits", [](const core::SimResult& r) {
    return static_cast<long long>(r.cacheHits);
  });
  row("Max Refcount", [](const core::SimResult& r) {
    return static_cast<long long>(r.lptStats.maxRefCount);
  });
  row("Refops", [](const core::SimResult& r) {
    return static_cast<long long>(r.lptStats.refOps);
  });
  for (std::size_t i = 0; i < results.size(); ++i) {
    bench.report().addFigure(
        std::string("table5_5.refops.") + kSettings[i].name,
        results[i].lptStats.refOps);
    bench.report().addFigure(
        std::string("table5_5.lpt_hits.") + kSettings[i].name,
        results[i].lptHits);
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts("\npaper (Table 5.5): Ave 49-52, Max 64 in all runs, "
            "LPT hits 2622-2783,\nRefops 12060-12229 — small fluctuations, "
            "same trends.");
  return bench.finish(0);
}
