// Microbenchmarks / ablations for the LPT and List Processor:
//   * free-stack allocate/free cycle cost,
//   * lazy vs recursive child decrement (the §4.3.2.1 design choice),
//   * split vs hit access cost,
//   * compression scan cost at varying occupancy,
//   * flat-vs-node throughput pairs (the BENCH_<date> baseline): the
//     production flat structures against the node-based layouts they
//     replaced, measured in the same run and published to the micro
//     registry under the sim.throughput.* names.
#include <benchmark/benchmark.h>

#include <chrono>
#include <unordered_map>

#include "cache/lru_cache.hpp"
#include "cache/reference_lru.hpp"
#include "micro_util.hpp"
#include "obs/names.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "small/list_processor.hpp"

namespace {

using namespace small;

/// Publish `ops` over the wall-clock since `start` as a sim.throughput.*
/// maximum (the best observed rate across benchmark repetitions). These
/// rates go only into the micro registry — the table/figure benches'
/// --metrics-out must stay deterministic.
void recordRate(const char* name, std::uint64_t ops,
                std::chrono::steady_clock::time_point start) {
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  if (secs > 0.0 && ops > 0) {
    benchutil::microRegistry().recordMax(
        name, static_cast<std::uint64_t>(static_cast<double>(ops) / secs));
  }
}

void BM_LptAllocateFree(benchmark::State& state) {
  core::Lpt lpt(4096, core::ReclaimPolicy::kLazy);
  for (auto _ : state) {
    const core::EntryId id = lpt.allocate();
    lpt.incRef(id);
    lpt.decRef(id);
    benchmark::DoNotOptimize(id);
  }
}
BENCHMARK(BM_LptAllocateFree);

void BM_LptRefCountOps(benchmark::State& state) {
  core::Lpt lpt(16, core::ReclaimPolicy::kLazy);
  const core::EntryId id = lpt.allocate();
  lpt.incRef(id);
  for (auto _ : state) {
    lpt.incRef(id);
    lpt.decRef(id);
  }
}
BENCHMARK(BM_LptRefCountOps);

// Ablation: cost of freeing a k-deep chain under the two reclaim
// policies. Lazy is O(1) per free; recursive cascades.
template <core::ReclaimPolicy Policy>
void BM_ChainFree(benchmark::State& state) {
  const auto depth = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    core::Lpt lpt(depth + 8, Policy);
    std::vector<core::EntryId> chain(depth);
    for (auto& id : chain) {
      id = lpt.allocate();
      lpt.incRef(id);
    }
    for (std::uint32_t i = 0; i + 1 < depth; ++i) {
      lpt.entry(chain[i]).car = chain[i + 1];
      lpt.incRef(chain[i + 1]);
    }
    for (std::uint32_t i = 1; i < depth; ++i) lpt.decRef(chain[i]);
    state.ResumeTiming();
    lpt.decRef(chain[0]);  // the timed root free
    benchmark::DoNotOptimize(lpt.inUseCount());
  }
}
BENCHMARK(BM_ChainFree<core::ReclaimPolicy::kLazy>)->Arg(64)->Arg(512);
BENCHMARK(BM_ChainFree<core::ReclaimPolicy::kRecursive>)->Arg(64)->Arg(512);

void BM_AccessHit(benchmark::State& state) {
  support::Rng rng(1);
  core::SimConfig config;
  config.tableSize = 4096;
  core::ListProcessor lp(config, rng);
  const core::EntryId id = lp.readList(std::nullopt, 8, 2);
  const core::AccessResult first = lp.car(id);  // forces the split
  benchmark::DoNotOptimize(first);
  for (auto _ : state) {
    const core::AccessResult result = lp.car(id);
    lp.unbind(result.id);  // keep counts bounded
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_AccessHit);

void BM_AccessSplit(benchmark::State& state) {
  support::Rng rng(2);
  core::SimConfig config;
  config.tableSize = 1u << 16;
  core::ListProcessor lp(config, rng);
  core::EntryId cursor = lp.readList(std::nullopt, 1u << 12, 1u << 6);
  for (auto _ : state) {
    const core::AccessResult result = lp.cdr(cursor);
    benchmark::DoNotOptimize(result);
    if (result.id == core::kNoEntry ||
        lp.lpt().entry(result.id).isAtom) {
      state.PauseTiming();
      cursor = lp.readList(cursor, 1u << 12, 1u << 6);
      state.ResumeTiming();
    } else {
      cursor = result.id;
    }
  }
}
BENCHMARK(BM_AccessSplit);

void BM_Cons(benchmark::State& state) {
  support::Rng rng(3);
  core::SimConfig config;
  config.tableSize = 1u << 16;
  core::ListProcessor lp(config, rng);
  const core::EntryId x = lp.readList(std::nullopt, 3, 0);
  const core::EntryId y = lp.readList(std::nullopt, 3, 0);
  for (auto _ : state) {
    const core::EntryId z = lp.cons(x, y);
    lp.unbind(z);
    benchmark::DoNotOptimize(z);
  }
}
BENCHMARK(BM_Cons);

void BM_CompressionScan(benchmark::State& state) {
  // Cost of one Compress-One scan as table occupancy grows.
  const auto entries = static_cast<std::uint32_t>(state.range(0));
  support::Rng rng(4);
  core::SimConfig config;
  config.tableSize = entries * 4;
  core::ListProcessor lp(config, rng);
  std::vector<core::EntryId> held;
  for (std::uint32_t i = 0; i < entries; ++i) {
    held.push_back(lp.readList(std::nullopt, 4, 1));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(lp.compress(false));
  }
  benchmark::DoNotOptimize(held.data());
}
BENCHMARK(BM_CompressionScan)->Arg(256)->Arg(1024)->Arg(4096);

// --- flat-vs-node throughput pairs ------------------------------------
// Each pair drives the identical operation stream through the production
// flat structure and the node-based layout it replaced. CI's perf-smoke
// step runs these with --benchmark_filter=Throughput and folds the
// resulting rates into the committed BENCH_<date>.json trajectory.

template <typename Cache>
void lruAccessStream(benchmark::State& state, Cache& cache,
                     const char* rateName) {
  // 30% hot-set traffic over a 16x-capacity address span: exercises the
  // hit path, the miss-fill path, and eviction in realistic proportion.
  support::Rng rng(77);
  std::uint64_t ops = 0;
  const auto start = std::chrono::steady_clock::now();
  for (auto _ : state) {
    const std::uint64_t a =
        rng.chance(0.3) ? rng.below(1024) : rng.below(32768);
    benchmark::DoNotOptimize(cache.access(a));
    ++ops;
  }
  recordRate(rateName, ops, start);
}

void BM_ThroughputLruAccessFlat(benchmark::State& state) {
  cache::LruCache cache(1024, 2);
  lruAccessStream(state, cache, obs::names::kSimLruFlatAccessesPerSec);
}
BENCHMARK(BM_ThroughputLruAccessFlat);

void BM_ThroughputLruAccessNode(benchmark::State& state) {
  cache::ReferenceLruCache cache(1024, 2);
  lruAccessStream(state, cache, obs::names::kSimLruNodeAccessesPerSec);
}
BENCHMARK(BM_ThroughputLruAccessNode);

/// A sparsely occupied table for the in-use scan pair: 512 live entries
/// scattered through 8192 slots (the shape a compression pass sees after
/// the working set has churned).
core::Lpt makeSparseLpt() {
  core::Lpt lpt(8192, core::ReclaimPolicy::kLazy);
  std::vector<core::EntryId> all;
  for (std::uint32_t i = 0; i < 8192; ++i) {
    const core::EntryId id = lpt.allocate();
    lpt.incRef(id);
    all.push_back(id);
  }
  support::Rng rng(78);
  std::uint32_t live = 8192;
  while (live > 512) {
    const core::EntryId victim = all[rng.below(all.size())];
    if (!lpt.entry(victim).inUse) continue;
    lpt.decRef(victim);
    --live;
  }
  return lpt;
}

void BM_ThroughputInUseScanFlat(benchmark::State& state) {
  const core::Lpt lpt = makeSparseLpt();
  std::uint64_t ops = 0;
  const auto start = std::chrono::steady_clock::now();
  for (auto _ : state) {
    std::uint64_t visited = 0;
    lpt.forEachInUse([&](core::EntryId) { ++visited; });
    benchmark::DoNotOptimize(visited);
    ops += lpt.size();  // one full-table sweep's worth of coverage
  }
  recordRate(obs::names::kSimScanFlatEntriesPerSec, ops, start);
}
BENCHMARK(BM_ThroughputInUseScanFlat);

void BM_ThroughputInUseScanNaive(benchmark::State& state) {
  // The pre-overhaul forEachInUse: probe every entry record in id order.
  const core::Lpt lpt = makeSparseLpt();
  std::uint64_t ops = 0;
  const auto start = std::chrono::steady_clock::now();
  for (auto _ : state) {
    std::uint64_t visited = 0;
    for (core::EntryId id = 0; id < lpt.size(); ++id) {
      if (lpt.entry(id).inUse) ++visited;
    }
    benchmark::DoNotOptimize(visited);
    ops += lpt.size();
  }
  recordRate(obs::names::kSimScanNaiveEntriesPerSec, ops, start);
}
BENCHMARK(BM_ThroughputInUseScanNaive);

// The EP reference shadow pair: identical bind/unbind churn against the
// dense-vector layout ListProcessor now uses and the unordered_map it
// replaced. Both are local replicas so the two sides measure exactly the
// shadow update and nothing else.
struct DenseShadow {
  std::vector<std::uint32_t> counts;
  std::vector<std::uint32_t> nonZero;
  std::vector<std::uint32_t> pos;
  explicit DenseShadow(std::uint32_t size)
      : counts(size, 0), pos(size, 0xffffffffu) {}
  void inc(std::uint32_t id) {
    if (counts[id]++ == 0) {
      pos[id] = static_cast<std::uint32_t>(nonZero.size());
      nonZero.push_back(id);
    }
  }
  void dec(std::uint32_t id) {
    if (--counts[id] == 0) {
      const std::uint32_t p = pos[id];
      const std::uint32_t last = nonZero.back();
      nonZero[p] = last;
      pos[last] = p;
      nonZero.pop_back();
      pos[id] = 0xffffffffu;
    }
  }
};

struct MapShadow {
  std::unordered_map<std::uint32_t, std::uint32_t> counts;
  explicit MapShadow(std::uint32_t) {}
  void inc(std::uint32_t id) { ++counts[id]; }
  void dec(std::uint32_t id) {
    const auto it = counts.find(id);
    if (--it->second == 0) counts.erase(it);
  }
};

template <typename Shadow>
void epShadowChurn(benchmark::State& state, const char* rateName) {
  constexpr std::uint32_t kTable = 4096;
  Shadow shadow(kTable);
  support::Rng rng(79);
  // A standing population of held ids plus churn, like an EP stack.
  std::vector<std::uint32_t> held;
  for (std::uint32_t i = 0; i < 512; ++i) {
    const std::uint32_t id = static_cast<std::uint32_t>(rng.below(kTable));
    shadow.inc(id);
    held.push_back(id);
  }
  std::uint64_t ops = 0;
  const auto start = std::chrono::steady_clock::now();
  for (auto _ : state) {
    const std::size_t slot = rng.below(held.size());
    shadow.dec(held[slot]);
    held[slot] = static_cast<std::uint32_t>(rng.below(kTable));
    shadow.inc(held[slot]);
    benchmark::DoNotOptimize(&shadow);
    ops += 2;
  }
  recordRate(rateName, ops, start);
}

void BM_ThroughputEpShadowDense(benchmark::State& state) {
  epShadowChurn<DenseShadow>(state, obs::names::kSimEpDenseOpsPerSec);
}
BENCHMARK(BM_ThroughputEpShadowDense);

void BM_ThroughputEpShadowMap(benchmark::State& state) {
  epShadowChurn<MapShadow>(state, obs::names::kSimEpMapOpsPerSec);
}
BENCHMARK(BM_ThroughputEpShadowMap);

void BM_ThroughputPrimitives(benchmark::State& state) {
  // End-to-end primitives/sec through the List Processor: a synthetic
  // mix of readlist / car / cdr / cons with bounded live references —
  // the overall number the BENCH trajectory tracks.
  support::Rng rng(80);
  core::SimConfig config;
  config.tableSize = 1u << 14;
  core::ListProcessor lp(config, rng);
  std::vector<core::EntryId> held;
  held.push_back(lp.readList(std::nullopt, 6, 2));
  std::uint64_t ops = 0;
  const auto start = std::chrono::steady_clock::now();
  for (auto _ : state) {
    const std::uint64_t dice = rng.below(10);
    const core::EntryId subject = held[rng.below(held.size())];
    if (dice < 2) {
      held.push_back(lp.readList(std::nullopt, 6, 2));
    } else if (dice < 7 && !lp.lpt().entry(subject).isAtom) {
      const core::AccessResult r =
          dice < 5 ? lp.car(subject) : lp.cdr(subject);
      if (r.id != core::kNoEntry) lp.unbind(r.id);
    } else {
      held.push_back(lp.cons(subject, held[rng.below(held.size())]));
    }
    ++ops;
    while (held.size() > 64) {
      lp.unbind(held.back());
      held.pop_back();
      ++ops;
    }
  }
  recordRate(obs::names::kSimPrimitivesPerSec, ops, start);
}
BENCHMARK(BM_ThroughputPrimitives);

// --- obs overhead ablations -------------------------------------------
// The acceptance gate for the metrics subsystem: the instrumented path
// must stay within 10% of the raw path. Counters are plain uint64
// increments behind a stable handle, and a Span without a sink is a
// no-op, so both pairs below should be near-identical.

void BM_RawIncrement(benchmark::State& state) {
  std::uint64_t raw = 0;
  for (auto _ : state) {
    ++raw;
    benchmark::DoNotOptimize(raw);
  }
  benchutil::microRegistry().add("micro.raw_increment_iters",
                                 state.iterations());
}
BENCHMARK(BM_RawIncrement);

void BM_ObsCounterIncrement(benchmark::State& state) {
  obs::Registry registry;
  obs::Counter counter = registry.counter("micro.counter");
  for (auto _ : state) {
    counter.add();
    benchmark::DoNotOptimize(&counter);
  }
  benchutil::microRegistry().add("micro.obs_increment_iters",
                                 state.iterations());
}
BENCHMARK(BM_ObsCounterIncrement);

void BM_LptRefCountOpsInstrumented(benchmark::State& state) {
  // The BM_LptRefCountOps loop with an obs counter alongside — the shape
  // an instrumented List Processor hot path takes.
  core::Lpt lpt(16, core::ReclaimPolicy::kLazy);
  obs::Registry registry;
  obs::Counter rcOps = registry.counter("micro.rc_ops");
  const core::EntryId id = lpt.allocate();
  lpt.incRef(id);
  for (auto _ : state) {
    lpt.incRef(id);
    rcOps.add();
    lpt.decRef(id);
    rcOps.add();
    benchmark::DoNotOptimize(&lpt);
  }
}
BENCHMARK(BM_LptRefCountOpsInstrumented);

void BM_NullSinkSpan(benchmark::State& state) {
  // Span against a null sink: the cost a traced region pays when tracing
  // is disabled (two pointer tests, no clock reads).
  for (auto _ : state) {
    obs::Span span(nullptr, "noop");
    benchmark::DoNotOptimize(&span);
  }
}
BENCHMARK(BM_NullSinkSpan);

}  // namespace

SMALL_MICRO_MAIN("micro_lpt")
