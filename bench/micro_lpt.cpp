// Microbenchmarks / ablations for the LPT and List Processor:
//   * free-stack allocate/free cycle cost,
//   * lazy vs recursive child decrement (the §4.3.2.1 design choice),
//   * split vs hit access cost,
//   * compression scan cost at varying occupancy.
#include <benchmark/benchmark.h>

#include "micro_util.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "small/list_processor.hpp"

namespace {

using namespace small;

void BM_LptAllocateFree(benchmark::State& state) {
  core::Lpt lpt(4096, core::ReclaimPolicy::kLazy);
  for (auto _ : state) {
    const core::EntryId id = lpt.allocate();
    lpt.incRef(id);
    lpt.decRef(id);
    benchmark::DoNotOptimize(id);
  }
}
BENCHMARK(BM_LptAllocateFree);

void BM_LptRefCountOps(benchmark::State& state) {
  core::Lpt lpt(16, core::ReclaimPolicy::kLazy);
  const core::EntryId id = lpt.allocate();
  lpt.incRef(id);
  for (auto _ : state) {
    lpt.incRef(id);
    lpt.decRef(id);
  }
}
BENCHMARK(BM_LptRefCountOps);

// Ablation: cost of freeing a k-deep chain under the two reclaim
// policies. Lazy is O(1) per free; recursive cascades.
template <core::ReclaimPolicy Policy>
void BM_ChainFree(benchmark::State& state) {
  const auto depth = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    core::Lpt lpt(depth + 8, Policy);
    std::vector<core::EntryId> chain(depth);
    for (auto& id : chain) {
      id = lpt.allocate();
      lpt.incRef(id);
    }
    for (std::uint32_t i = 0; i + 1 < depth; ++i) {
      lpt.entry(chain[i]).car = chain[i + 1];
      lpt.incRef(chain[i + 1]);
    }
    for (std::uint32_t i = 1; i < depth; ++i) lpt.decRef(chain[i]);
    state.ResumeTiming();
    lpt.decRef(chain[0]);  // the timed root free
    benchmark::DoNotOptimize(lpt.inUseCount());
  }
}
BENCHMARK(BM_ChainFree<core::ReclaimPolicy::kLazy>)->Arg(64)->Arg(512);
BENCHMARK(BM_ChainFree<core::ReclaimPolicy::kRecursive>)->Arg(64)->Arg(512);

void BM_AccessHit(benchmark::State& state) {
  support::Rng rng(1);
  core::SimConfig config;
  config.tableSize = 4096;
  core::ListProcessor lp(config, rng);
  const core::EntryId id = lp.readList(std::nullopt, 8, 2);
  const core::AccessResult first = lp.car(id);  // forces the split
  benchmark::DoNotOptimize(first);
  for (auto _ : state) {
    const core::AccessResult result = lp.car(id);
    lp.unbind(result.id);  // keep counts bounded
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_AccessHit);

void BM_AccessSplit(benchmark::State& state) {
  support::Rng rng(2);
  core::SimConfig config;
  config.tableSize = 1u << 16;
  core::ListProcessor lp(config, rng);
  core::EntryId cursor = lp.readList(std::nullopt, 1u << 12, 1u << 6);
  for (auto _ : state) {
    const core::AccessResult result = lp.cdr(cursor);
    benchmark::DoNotOptimize(result);
    if (result.id == core::kNoEntry ||
        lp.lpt().entry(result.id).isAtom) {
      state.PauseTiming();
      cursor = lp.readList(cursor, 1u << 12, 1u << 6);
      state.ResumeTiming();
    } else {
      cursor = result.id;
    }
  }
}
BENCHMARK(BM_AccessSplit);

void BM_Cons(benchmark::State& state) {
  support::Rng rng(3);
  core::SimConfig config;
  config.tableSize = 1u << 16;
  core::ListProcessor lp(config, rng);
  const core::EntryId x = lp.readList(std::nullopt, 3, 0);
  const core::EntryId y = lp.readList(std::nullopt, 3, 0);
  for (auto _ : state) {
    const core::EntryId z = lp.cons(x, y);
    lp.unbind(z);
    benchmark::DoNotOptimize(z);
  }
}
BENCHMARK(BM_Cons);

void BM_CompressionScan(benchmark::State& state) {
  // Cost of one Compress-One scan as table occupancy grows.
  const auto entries = static_cast<std::uint32_t>(state.range(0));
  support::Rng rng(4);
  core::SimConfig config;
  config.tableSize = entries * 4;
  core::ListProcessor lp(config, rng);
  std::vector<core::EntryId> held;
  for (std::uint32_t i = 0; i < entries; ++i) {
    held.push_back(lp.readList(std::nullopt, 4, 1));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(lp.compress(false));
  }
  benchmark::DoNotOptimize(held.data());
}
BENCHMARK(BM_CompressionScan)->Arg(256)->Arg(1024)->Arg(4096);

// --- obs overhead ablations -------------------------------------------
// The acceptance gate for the metrics subsystem: the instrumented path
// must stay within 10% of the raw path. Counters are plain uint64
// increments behind a stable handle, and a Span without a sink is a
// no-op, so both pairs below should be near-identical.

void BM_RawIncrement(benchmark::State& state) {
  std::uint64_t raw = 0;
  for (auto _ : state) {
    ++raw;
    benchmark::DoNotOptimize(raw);
  }
  benchutil::microRegistry().add("micro.raw_increment_iters",
                                 state.iterations());
}
BENCHMARK(BM_RawIncrement);

void BM_ObsCounterIncrement(benchmark::State& state) {
  obs::Registry registry;
  obs::Counter counter = registry.counter("micro.counter");
  for (auto _ : state) {
    counter.add();
    benchmark::DoNotOptimize(&counter);
  }
  benchutil::microRegistry().add("micro.obs_increment_iters",
                                 state.iterations());
}
BENCHMARK(BM_ObsCounterIncrement);

void BM_LptRefCountOpsInstrumented(benchmark::State& state) {
  // The BM_LptRefCountOps loop with an obs counter alongside — the shape
  // an instrumented List Processor hot path takes.
  core::Lpt lpt(16, core::ReclaimPolicy::kLazy);
  obs::Registry registry;
  obs::Counter rcOps = registry.counter("micro.rc_ops");
  const core::EntryId id = lpt.allocate();
  lpt.incRef(id);
  for (auto _ : state) {
    lpt.incRef(id);
    rcOps.add();
    lpt.decRef(id);
    rcOps.add();
    benchmark::DoNotOptimize(&lpt);
  }
}
BENCHMARK(BM_LptRefCountOpsInstrumented);

void BM_NullSinkSpan(benchmark::State& state) {
  // Span against a null sink: the cost a traced region pays when tracing
  // is disabled (two pointer tests, no clock reads).
  for (auto _ : state) {
    obs::Span span(nullptr, "noop");
    benchmark::DoNotOptimize(&span);
  }
}
BENCHMARK(BM_NullSinkSpan);

}  // namespace

SMALL_MICRO_MAIN("micro_lpt")
