// Shared helpers for the table/figure reproduction benches.
//
// Every bench can drive its experiment from two trace sources:
//   * "synthetic": the generator calibrated to the thesis' published
//     per-workload statistics (lengths, mixes, shapes, chaining) — the
//     default, since it matches the thesis' scales exactly;
//   * "workload": real traces produced by running the five Lisp workload
//     programs under the tracing interpreter (pass --workload).
#pragma once

#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "support/parallel.hpp"
#include "support/rng.hpp"
#include "trace/preprocess.hpp"
#include "trace/synthetic.hpp"
#include "workloads/driver.hpp"

namespace small::benchutil {

inline bool hasFlag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

/// Value of a `--flag value` pair, or nullptr if absent.
inline const char* flagValue(int argc, char** argv, const char* flag) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  }
  return nullptr;
}

/// The common `--jobs N` flag shared by every sweep bench: worker threads
/// for the deterministic parallel runner. Defaults to the hardware
/// concurrency; `--jobs 1` reproduces the serial path bit for bit (the
/// runner then executes inline, in task order, on the calling thread).
inline int jobsFlag(int argc, char** argv) {
  const char* value = flagValue(argc, argv, "--jobs");
  if (value == nullptr) return support::hardwareJobs();
  const int jobs = std::atoi(value);
  return jobs >= 1 ? jobs : support::hardwareJobs();
}

struct NamedTrace {
  std::string name;
  trace::Trace raw;
};

/// A workload trace generated and preprocessed exactly once, shared
/// read-only by every simulation task fanned out over it. Generation stays
/// serial (the synthetic profiles share one generator stream); the
/// preprocessing passes are independent and run through the sweep runner.
struct PreparedTrace {
  std::string name;
  trace::Trace raw;
  trace::PreprocessedTrace pre;
};

inline std::vector<PreparedTrace> prepareTraces(
    std::vector<NamedTrace> traces, int jobs) {
  std::vector<PreparedTrace> prepared(traces.size());
  support::runIndexed(traces.size(), jobs, [&](std::size_t i) {
    prepared[i].pre = trace::preprocess(traces[i].raw);
  });
  for (std::size_t i = 0; i < traces.size(); ++i) {
    prepared[i].name = std::move(traces[i].name);
    prepared[i].raw = std::move(traces[i].raw);
  }
  return prepared;
}

/// The Chapter 3 suite (five workloads at thesis §3.3.1 lengths).
inline std::vector<NamedTrace> chapter3Traces(bool fromWorkloads,
                                              double scale = 1.0) {
  std::vector<NamedTrace> traces;
  if (fromWorkloads) {
    for (const workloads::Workload w : workloads::kAllWorkloads) {
      workloads::RunOptions options;
      options.scale = scale;  // fractional scales shrink the run too
      traces.push_back({workloads::workloadName(w),
                        workloads::runWorkload(w, options)});
    }
    return traces;
  }
  support::Rng rng(2026);
  for (const auto& profile :
       {trace::slangProfile(scale), trace::plagenProfile(scale),
        trace::lyraProfile(scale), trace::editorProfile(scale),
        trace::pearlProfile(scale)}) {
    traces.push_back({profile.name, trace::generate(profile, rng)});
  }
  return traces;
}

/// The Chapter 5 simulation suite (four workloads at Table 5.1 lengths).
inline std::vector<NamedTrace> chapter5Traces(bool fromWorkloads) {
  std::vector<NamedTrace> traces;
  if (fromWorkloads) {
    for (const workloads::Workload w :
         {workloads::Workload::kLyra, workloads::Workload::kPlagen,
          workloads::Workload::kSlang, workloads::Workload::kEditor}) {
      traces.push_back(
          {workloads::workloadName(w), workloads::runWorkload(w)});
    }
    return traces;
  }
  support::Rng rng(2026);
  for (const auto& profile :
       {trace::lyraSimProfile(), trace::plagenSimProfile(),
        trace::slangSimProfile(), trace::editorSimProfile()}) {
    traces.push_back({profile.name, trace::generate(profile, rng)});
  }
  return traces;
}

/// chapter3Traces + shared one-time preprocessing.
inline std::vector<PreparedTrace> prepareChapter3(bool fromWorkloads,
                                                  int jobs,
                                                  double scale = 1.0) {
  return prepareTraces(chapter3Traces(fromWorkloads, scale), jobs);
}

/// chapter5Traces + shared one-time preprocessing.
inline std::vector<PreparedTrace> prepareChapter5(bool fromWorkloads,
                                                  int jobs) {
  return prepareTraces(chapter5Traces(fromWorkloads), jobs);
}

}  // namespace small::benchutil
