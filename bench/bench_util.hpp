// Shared helpers for the table/figure reproduction benches.
//
// Every bench can drive its experiment from two trace sources:
//   * "synthetic": the generator calibrated to the thesis' published
//     per-workload statistics (lengths, mixes, shapes, chaining) — the
//     default, since it matches the thesis' scales exactly;
//   * "workload": real traces produced by running the five Lisp workload
//     programs under the tracing interpreter (pass --workload).
#pragma once

#include <cstring>
#include <string>
#include <vector>

#include "support/rng.hpp"
#include "trace/preprocess.hpp"
#include "trace/synthetic.hpp"
#include "workloads/driver.hpp"

namespace small::benchutil {

inline bool hasFlag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

struct NamedTrace {
  std::string name;
  trace::Trace raw;
};

/// The Chapter 3 suite (five workloads at thesis §3.3.1 lengths).
inline std::vector<NamedTrace> chapter3Traces(bool fromWorkloads,
                                              double scale = 1.0) {
  std::vector<NamedTrace> traces;
  if (fromWorkloads) {
    for (const workloads::Workload w : workloads::kAllWorkloads) {
      workloads::RunOptions options;
      options.scale = std::max(1, static_cast<int>(scale));
      traces.push_back({workloads::workloadName(w),
                        workloads::runWorkload(w, options)});
    }
    return traces;
  }
  support::Rng rng(2026);
  for (const auto& profile :
       {trace::slangProfile(scale), trace::plagenProfile(scale),
        trace::lyraProfile(scale), trace::editorProfile(scale),
        trace::pearlProfile(scale)}) {
    traces.push_back({profile.name, trace::generate(profile, rng)});
  }
  return traces;
}

/// The Chapter 5 simulation suite (four workloads at Table 5.1 lengths).
inline std::vector<NamedTrace> chapter5Traces(bool fromWorkloads) {
  std::vector<NamedTrace> traces;
  if (fromWorkloads) {
    for (const workloads::Workload w :
         {workloads::Workload::kLyra, workloads::Workload::kPlagen,
          workloads::Workload::kSlang, workloads::Workload::kEditor}) {
      traces.push_back(
          {workloads::workloadName(w), workloads::runWorkload(w)});
    }
    return traces;
  }
  support::Rng rng(2026);
  for (const auto& profile :
       {trace::lyraSimProfile(), trace::plagenSimProfile(),
        trace::slangSimProfile(), trace::editorSimProfile()}) {
    traces.push_back({profile.name, trace::generate(profile, rng)});
  }
  return traces;
}

}  // namespace small::benchutil
