// Shared helpers for the table/figure reproduction benches.
//
// Every bench can drive its experiment from two trace sources:
//   * "synthetic": the generator calibrated to the thesis' published
//     per-workload statistics (lengths, mixes, shapes, chaining) — the
//     default, since it matches the thesis' scales exactly;
//   * "workload": real traces produced by running the five Lisp workload
//     programs under the tracing interpreter (pass --workload).
#pragma once

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <initializer_list>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "obs/contrib.hpp"
#include "obs/report.hpp"
#include "obs/sweep.hpp"
#include "obs/timeseries.hpp"
#include "small/simulator.hpp"
#include "support/parallel.hpp"
#include "support/parse.hpp"
#include "support/rng.hpp"
#include "trace/io.hpp"
#include "trace/preprocess.hpp"
#include "trace/synthetic.hpp"
#include "workloads/driver.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace small::benchutil {

/// How a bench's prepared workload traces reach the experiment: handed
/// over in memory (the default), or round-tripped through an on-disk
/// file in the given trace::FileFormat first (`--trace-format
/// {text,binary}`). The round trip is lossless, so every golden text is
/// byte-identical in all three modes — which is exactly what
/// tools/check_bench_goldens.sh proves when driven with
/// TRACE_FORMAT=binary.
enum class TraceRoundTrip { kDirect, kText, kBinary };

/// A flag a bench declares: its literal name, whether it consumes the
/// following argument as a value, and whether it lands in the
/// bench_report config block. Flags that only shape *how* the experiment
/// runs (concurrency, machine-local paths) set `inConfig = false` so the
/// report stays byte-identical across runs that must agree
/// (obs/report.hpp's determinism contract).
struct FlagSpec {
  const char* name;
  bool takesValue = false;
  bool inConfig = true;
};

/// Per-bench argument parser + bench_report emitter. Every table/figure
/// bench constructs one of these first:
///
///   benchutil::BenchRun bench("fig5_1_2_lpt_size", argc, argv,
///                             {{"--workload"}, {"--quick"}});
///
/// Parsing is strict: anything not declared and not one of the built-in
/// flags (--jobs N, --metrics-out FILE, --trace-out FILE, --help) prints
/// a usage message and exits nonzero — unknown flags are never silently
/// ignored (consistent with the hardened trace::load error style).
///
/// Declared flags are automatically recorded into the bench_report
/// config block; --jobs and the output paths are deliberately NOT (the
/// report must be byte-identical at any job count — obs/report.hpp).
///
/// `finish(exitCode)` writes the report/trace files when the
/// corresponding flags were given; with the flags absent nothing is
/// written and the bench's stdout/stderr are untouched, keeping the text
/// output byte-identical to the pre-obs benches.
class BenchRun {
 public:
  BenchRun(std::string name, int argc, char** argv,
           std::initializer_list<FlagSpec> flags)
      : name_(std::move(name)), flags_(flags), report_(name_) {
    for (int i = 1; i < argc; ++i) {
      const char* arg = argv[i];
      const auto takeValue = [&](const char* flag) -> const char* {
        if (i + 1 >= argc) {
          std::fprintf(stderr, "%s: %s requires a value\n", name_.c_str(),
                       flag);
          usage(stderr);
          std::exit(2);
        }
        return argv[++i];
      };
      if (std::strcmp(arg, "--help") == 0) {
        usage(stdout);
        std::exit(0);
      }
      if (std::strcmp(arg, "--jobs") == 0) {
        jobs_ = requirePositive("--jobs", takeValue("--jobs"));
        continue;
      }
      if (std::strcmp(arg, "--metrics-out") == 0) {
        metricsPath_ = takeValue("--metrics-out");
        continue;
      }
      if (std::strcmp(arg, "--trace-out") == 0) {
        tracePath_ = takeValue("--trace-out");
        continue;
      }
      if (std::strcmp(arg, "--telemetry-out") == 0) {
        telemetryPath_ = takeValue("--telemetry-out");
        continue;
      }
      if (std::strcmp(arg, "--trace-format") == 0) {
        const char* format = takeValue("--trace-format");
        if (std::strcmp(format, "text") == 0) {
          roundTrip_ = TraceRoundTrip::kText;
        } else if (std::strcmp(format, "binary") == 0) {
          roundTrip_ = TraceRoundTrip::kBinary;
        } else {
          std::fprintf(stderr,
                       "%s: --trace-format must be 'text' or 'binary' "
                       "(got '%s')\n",
                       name_.c_str(), format);
          usage(stderr);
          std::exit(2);
        }
        continue;
      }
      const FlagSpec* spec = findSpec(arg);
      if (spec == nullptr) {
        std::fprintf(stderr, "%s: unrecognized argument '%s'\n",
                     name_.c_str(), arg);
        usage(stderr);
        std::exit(2);
      }
      if (spec->takesValue) {
        values_.emplace_back(spec->name, takeValue(spec->name));
      } else {
        given_.emplace_back(spec->name);
      }
    }
    // Record the workload-shaping flags in the report's config block
    // (flags declared with inConfig = false shape execution, not the
    // experiment, and must stay out).
    for (const FlagSpec& spec : flags_) {
      if (!spec.inConfig) continue;
      const std::string key = configKey(spec.name);
      if (spec.takesValue) {
        if (const char* v = value(spec.name)) report_.setConfig(key, v);
      } else {
        report_.setConfig(key, has(spec.name));
      }
    }
  }

  const std::string& name() const { return name_; }

  bool has(const char* flag) const {
    for (const std::string& f : given_) {
      if (f == flag) return true;
    }
    return false;
  }

  /// Value of a declared `--flag value` pair, or nullptr if absent.
  const char* value(const char* flag) const {
    for (const auto& [f, v] : values_) {
      if (f == flag) return v.c_str();
    }
    return nullptr;
  }

  /// Worker threads for the deterministic parallel runner (`--jobs N`,
  /// default hardware concurrency; `--jobs 1` is bit-for-bit serial).
  int jobs() const { return jobs_; }

  /// Parse `text` as a strictly positive int. Returns false when the
  /// token is not a whole base-10 number, does not fit in int, or is
  /// < 1 — `0`, `-3`, `two`, and `4x` are all rejected, never silently
  /// mapped to a default (the old std::atoi behavior).
  static bool parsePositive(const char* text, int* out) {
    if (text == nullptr || *text == '\0') return false;
    errno = 0;
    char* end = nullptr;
    const long value = std::strtol(text, &end, 10);
    if (errno != 0 || end == text || *end != '\0') return false;
    if (value < 1 || value > std::numeric_limits<int>::max()) return false;
    *out = static_cast<int>(value);
    return true;
  }

  /// Value of a declared positive-integer flag, validated like --jobs
  /// (exit 2 with usage on garbage); `fallback` when the flag is absent.
  int positiveIntValue(const char* flag, int fallback) const {
    const char* text = value(flag);
    if (text == nullptr) return fallback;
    return requirePositive(flag, text);
  }

  /// Value of a declared unsigned-count flag parsed by
  /// support::parseCount — strict like --jobs, but 64-bit and accepting
  /// exact scientific forms ("1e6") for scale axes. Exit 2 with usage
  /// when the token is malformed or outside [min, max]; `fallback` when
  /// the flag is absent.
  std::uint64_t countValue(const char* flag, std::uint64_t fallback,
                           std::uint64_t min, std::uint64_t max) const {
    const char* text = value(flag);
    if (text == nullptr) return fallback;
    std::uint64_t parsed = 0;
    if (!support::parseCount(text, min, max, &parsed)) {
      std::fprintf(stderr,
                   "%s: %s requires an integer in [%llu, %llu] (got '%s')\n",
                   name_.c_str(), flag,
                   static_cast<unsigned long long>(min),
                   static_cast<unsigned long long>(max), text);
      usage(stderr);
      std::exit(2);
    }
    return parsed;
  }

  /// Value of a declared enumerated-string flag: returns the index into
  /// `choices` (or `fallback` when absent); any other token exits 2 with
  /// usage, like every malformed flag.
  std::size_t choiceValue(const char* flag, std::size_t fallback,
                          std::initializer_list<const char*> choices) const {
    const char* text = value(flag);
    if (text == nullptr) return fallback;
    std::size_t index = 0;
    for (const char* choice : choices) {
      if (std::strcmp(text, choice) == 0) return index;
      ++index;
    }
    std::fprintf(stderr, "%s: %s must be one of", name_.c_str(), flag);
    for (const char* choice : choices) std::fprintf(stderr, " %s", choice);
    std::fprintf(stderr, " (got '%s')\n", text);
    usage(stderr);
    std::exit(2);
  }

  /// How prepared traces reach the experiment (`--trace-format`). Like
  /// --jobs, deliberately NOT recorded in the report config: output must
  /// be byte-identical in every mode.
  TraceRoundTrip traceRoundTrip() const { return roundTrip_; }

  /// True when `--metrics-out` or `--trace-out` was given — gates span
  /// sinks and shard allocation so undecorated runs pay nothing.
  bool obsEnabled() const {
    return !metricsPath_.empty() || !tracePath_.empty();
  }

  /// True when sampling the telemetry plane has a consumer: the JSONL
  /// stream (`--telemetry-out`) or the Chrome trace's counter tracks
  /// (`--trace-out`). Undecorated runs sample nothing.
  bool telemetryEnabled() const {
    return !telemetryPath_.empty() || !tracePath_.empty();
  }

  /// The bench's merged telemetry document. Benches append per-producer
  /// TelemetryBuffers in id order (the determinism contract).
  obs::TelemetryDoc& telemetry() { return telemetry_; }

  obs::BenchReport& report() { return report_; }
  obs::Registry& registry() { return report_.registry(); }

  /// The bench's top-level span sink (null without --trace-out).
  obs::TraceSink* sink() { return tracePath_.empty() ? nullptr : &sink_; }

  /// Merge a sweep's shard metrics into the report registry and queue its
  /// sinks for the trace export (id order — deterministic metrics).
  void collectShards(const obs::ShardSet& shards) {
    shards.mergeInto(registry());
    for (const obs::TraceSink* s : shards.sinksInOrder()) {
      extraSinks_.push_back(s);
    }
  }

  /// Write the requested artifacts; returns `exitCode`, or 1 if a write
  /// failed. Call as the last statement of main().
  int finish(int exitCode = 0) {
    bool ok = true;
    if (!metricsPath_.empty()) ok = report_.writeTo(metricsPath_) && ok;
    if (!telemetryPath_.empty()) {
      ok = telemetry_.writeTo(telemetryPath_, name_) && ok;
    }
    if (!tracePath_.empty()) {
      std::vector<const obs::TraceSink*> sinks;
      sinks.push_back(&sink_);
      sinks.insert(sinks.end(), extraSinks_.begin(), extraSinks_.end());
      ok = obs::writeChromeTrace(tracePath_, sinks, &telemetry_) && ok;
    }
    if (!ok && exitCode == 0) return 1;
    return exitCode;
  }

 private:
  int requirePositive(const char* flag, const char* text) const {
    int parsed = 0;
    if (!parsePositive(text, &parsed)) {
      std::fprintf(stderr, "%s: %s requires a positive integer (got '%s')\n",
                   name_.c_str(), flag, text);
      usage(stderr);
      std::exit(2);
    }
    return parsed;
  }

  const FlagSpec* findSpec(const char* arg) const {
    for (const FlagSpec& spec : flags_) {
      if (std::strcmp(spec.name, arg) == 0) return &spec;
    }
    return nullptr;
  }

  static std::string configKey(const char* flag) {
    std::string key(flag);
    while (!key.empty() && key.front() == '-') key.erase(key.begin());
    for (char& c : key) {
      if (c == '-') c = '_';
    }
    return key;
  }

  void usage(std::FILE* out) const {
    std::fprintf(out,
                 "usage: %s [--jobs N] [--metrics-out FILE] "
                 "[--trace-out FILE] [--telemetry-out FILE] "
                 "[--trace-format text|binary]",
                 name_.c_str());
    for (const FlagSpec& spec : flags_) {
      std::fprintf(out, spec.takesValue ? " [%s VALUE]" : " [%s]",
                   spec.name);
    }
    std::fputc('\n', out);
  }

  std::string name_;
  std::vector<FlagSpec> flags_;
  std::vector<std::string> given_;
  std::vector<std::pair<std::string, std::string>> values_;
  std::string metricsPath_;
  std::string tracePath_;
  std::string telemetryPath_;
  int jobs_ = support::hardwareJobs();
  TraceRoundTrip roundTrip_ = TraceRoundTrip::kDirect;
  obs::BenchReport report_;
  obs::TraceSink sink_;
  obs::TelemetryDoc telemetry_;
  std::vector<const obs::TraceSink*> extraSinks_;
};

/// Publish one simulator run's counters into a (usually per-task shard)
/// registry under the canonical obs names. Null-safe so callers can pass
/// `shards.registryAt(id)` unguarded.
inline void contributeSimResult(obs::Registry* registry,
                                const core::SimResult& result) {
  if (registry == nullptr) return;
  obs::contributeLptStats(*registry, result.lptStats);
  obs::contributeLpStats(*registry, result.lpStats);
  registry->recordMax(obs::names::kLptPeakOccupancy, result.peakOccupancy);
  support::Histogram& lifetimes =
      registry->histogram(obs::names::kLptLifetimeMaxCounts);
  for (const auto& [value, count] : result.lifetimeMaxCounts.buckets()) {
    lifetimes.add(value, count);
  }
}

struct NamedTrace {
  std::string name;
  trace::Trace raw;
};

/// Round-trip every trace through an on-disk file in the requested
/// format (no-op for kDirect): save, load back via the sniffing
/// trace::loadFile (so kBinary exercises the mmap + batched-decode
/// path end to end), delete the file. Lossless by construction — the
/// benches' outputs must not change, which the golden gate enforces.
inline void roundTripTraces(std::vector<NamedTrace>& traces,
                            TraceRoundTrip mode, const std::string& tag) {
  if (mode == TraceRoundTrip::kDirect) return;
  const trace::FileFormat format = mode == TraceRoundTrip::kBinary
                                       ? trace::FileFormat::kBinary
                                       : trace::FileFormat::kText;
#if defined(__unix__) || defined(__APPLE__)
  const long pid = static_cast<long>(::getpid());
#else
  const long pid = 0;
#endif
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path();
  for (std::size_t i = 0; i < traces.size(); ++i) {
    const std::filesystem::path file =
        dir / ("small_" + tag + "_" + std::to_string(pid) + "_" +
               std::to_string(i) + ".trace");
    trace::saveFile(traces[i].raw, file.string(), format);
    traces[i].raw = trace::loadFile(file.string());
    std::filesystem::remove(file);
  }
}

/// A workload trace generated and preprocessed exactly once, shared
/// read-only by every simulation task fanned out over it. Generation stays
/// serial (the synthetic profiles share one generator stream); the
/// preprocessing passes are independent and run through the sweep runner.
struct PreparedTrace {
  std::string name;
  trace::Trace raw;
  trace::PreprocessedTrace pre;
};

inline std::vector<PreparedTrace> prepareTraces(
    std::vector<NamedTrace> traces, int jobs) {
  std::vector<PreparedTrace> prepared(traces.size());
  support::runIndexed(traces.size(), jobs, [&](std::size_t i) {
    prepared[i].pre = trace::preprocess(traces[i].raw);
  });
  for (std::size_t i = 0; i < traces.size(); ++i) {
    prepared[i].name = std::move(traces[i].name);
    prepared[i].raw = std::move(traces[i].raw);
  }
  return prepared;
}

/// The Chapter 3 suite (five workloads at thesis §3.3.1 lengths).
inline std::vector<NamedTrace> chapter3Traces(
    bool fromWorkloads, double scale = 1.0,
    TraceRoundTrip roundTrip = TraceRoundTrip::kDirect) {
  std::vector<NamedTrace> traces;
  if (fromWorkloads) {
    for (const workloads::Workload w : workloads::kAllWorkloads) {
      workloads::RunOptions options;
      options.scale = scale;  // fractional scales shrink the run too
      traces.push_back({workloads::workloadName(w),
                        workloads::runWorkload(w, options)});
    }
  } else {
    support::Rng rng(2026);
    for (const auto& profile :
         {trace::slangProfile(scale), trace::plagenProfile(scale),
          trace::lyraProfile(scale), trace::editorProfile(scale),
          trace::pearlProfile(scale)}) {
      traces.push_back({profile.name, trace::generate(profile, rng)});
    }
  }
  roundTripTraces(traces, roundTrip, "ch3");
  return traces;
}

/// The Chapter 5 simulation suite (four workloads at Table 5.1 lengths).
inline std::vector<NamedTrace> chapter5Traces(
    bool fromWorkloads,
    TraceRoundTrip roundTrip = TraceRoundTrip::kDirect) {
  std::vector<NamedTrace> traces;
  if (fromWorkloads) {
    for (const workloads::Workload w :
         {workloads::Workload::kLyra, workloads::Workload::kPlagen,
          workloads::Workload::kSlang, workloads::Workload::kEditor}) {
      traces.push_back(
          {workloads::workloadName(w), workloads::runWorkload(w)});
    }
  } else {
    support::Rng rng(2026);
    for (const auto& profile :
         {trace::lyraSimProfile(), trace::plagenSimProfile(),
          trace::slangSimProfile(), trace::editorSimProfile()}) {
      traces.push_back({profile.name, trace::generate(profile, rng)});
    }
  }
  roundTripTraces(traces, roundTrip, "ch5");
  return traces;
}

/// chapter3Traces + shared one-time preprocessing.
inline std::vector<PreparedTrace> prepareChapter3(
    bool fromWorkloads, int jobs, double scale = 1.0,
    TraceRoundTrip roundTrip = TraceRoundTrip::kDirect) {
  return prepareTraces(chapter3Traces(fromWorkloads, scale, roundTrip),
                       jobs);
}

/// chapter5Traces + shared one-time preprocessing.
inline std::vector<PreparedTrace> prepareChapter5(
    bool fromWorkloads, int jobs,
    TraceRoundTrip roundTrip = TraceRoundTrip::kDirect) {
  return prepareTraces(chapter5Traces(fromWorkloads, roundTrip), jobs);
}

}  // namespace small::benchutil
