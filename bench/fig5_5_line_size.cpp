// Fig 5.5 — Ratio of Cache Misses to LPT Misses versus Line Size.
//
// Modified cache model: same total size as the LPT but each cache entry
// half the size of an LPT entry (so 2x the cells), line sizes 1..16.
// Paper shape: the ratio spans ~0.7 to ~2.8; it *falls* with line size
// while prefetching captures structural locality, then flattens/recovers
// once lines outgrow the useful locality; larger tables favour the cache.
#include <cstdio>

#include "bench_util.hpp"
#include "small/simulator.hpp"
#include "support/table.hpp"
#include "trace/preprocess.hpp"

int main(int argc, char** argv) {
  using namespace small;
  benchutil::BenchRun bench("fig5_5_line_size", argc, argv,
                            {{"--workload"}});
  const bool fromWorkloads = bench.has("--workload");

  std::puts("Fig 5.5: cache-miss / LPT-miss ratio vs cache line size "
            "(cache entries are half LPT-entry size => 2x cells)");
  std::vector<support::Series> curves;
  support::TextTable table(
      {"Trace", "table", "L=1", "L=2", "L=4", "L=8", "L=16"});

  for (const auto& [name, raw] : benchutil::chapter5Traces(
           fromWorkloads, bench.traceRoundTrip())) {
    if (name == "PlaGen") continue;  // the paper plots Lyra/Slang/Editor
    const auto pre = trace::preprocess(raw);
    core::SimConfig big;
    big.tableSize = 1u << 18;
    big.seed = 47;
    const std::uint32_t knee = core::simulateTrace(big, pre).peakOccupancy;

    for (const double fraction : {0.5, 0.9}) {
      const auto tableSize = std::max<std::uint32_t>(
          16, static_cast<std::uint32_t>(knee * fraction));
      support::Series series{
          name + "/" + std::to_string(tableSize), {}, {}};
      std::vector<std::string> row{name, std::to_string(tableSize)};
      for (const std::uint32_t lineSize : {1u, 2u, 4u, 8u, 16u}) {
        core::SimConfig config;
        config.tableSize = tableSize;
        config.driveCache = true;
        config.cacheEntries = tableSize * 2;  // half-size cache entries
        config.cacheLineSize = lineSize;
        config.seed = 47;
        const core::SimResult result = core::simulateTrace(config, pre);
        const double ratio =
            result.lptMisses == 0
                ? 0.0
                : static_cast<double>(result.cacheMisses) /
                      static_cast<double>(result.lptMisses);
        series.add(lineSize, ratio);
        row.push_back(support::formatDouble(ratio, 2));
        bench.report().addFigure("fig5_5.miss_ratio." + name + "." +
                                     std::to_string(tableSize) + ".L" +
                                     std::to_string(lineSize),
                                 ratio);
      }
      table.addRow(row);
      curves.push_back(std::move(series));
    }
  }
  std::fputs(table.render().c_str(), stdout);
  std::fputs(support::asciiPlot(curves).c_str(), stdout);
  std::puts("paper: ratios span ~0.7-2.8 with several points below 1 "
            "(the doubled entry count\nhelps the cache); prefetching pays "
            "only while lines match the trace's structural locality.");
  return bench.finish(0);
}
