// Shared main() for the google-benchmark micro suites, replacing
// benchmark_main so the micros speak the same artifact protocol as the
// table/figure benches:
//   * `--metrics-out FILE` / `--trace-out FILE` / `--telemetry-out FILE`
//     are stripped before benchmark::Initialize and produce a
//     bench_report / Chrome trace / telemetry snapshot file (the micros
//     have no epoch producers, so the telemetry file is header-only —
//     but the flag surface stays uniform across every bench);
//   * anything google-benchmark does not recognize either is reported by
//     ReportUnrecognizedArguments and the process exits nonzero — no
//     silently ignored flags.
//
// Micro code can publish deterministic counters through `microRegistry()`
// (e.g. micro_lpt's obs-overhead ablations tally their iteration work
// there); the registry is dumped into the report.
#pragma once

#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "obs/report.hpp"
#include "obs/timeseries.hpp"

namespace small::benchutil {

/// Process-wide registry for micro-suite contributions.
inline obs::Registry& microRegistry() {
  static obs::Registry registry;
  return registry;
}

/// Process-wide span sink for micro-suite contributions (always live;
/// only exported when --trace-out was given).
inline obs::TraceSink& microSink() {
  static obs::TraceSink sink;
  return sink;
}

inline int microMain(const char* benchName, int argc, char** argv) {
  std::string metricsPath;
  std::string tracePath;
  std::string telemetryPath;
  std::vector<char*> rest;
  rest.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const auto takeValue = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: %s requires a value\n", benchName, flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--metrics-out") == 0) {
      metricsPath = takeValue("--metrics-out");
    } else if (std::strcmp(argv[i], "--trace-out") == 0) {
      tracePath = takeValue("--trace-out");
    } else if (std::strcmp(argv[i], "--telemetry-out") == 0) {
      telemetryPath = takeValue("--telemetry-out");
    } else {
      rest.push_back(argv[i]);
    }
  }
  int restc = static_cast<int>(rest.size());
  benchmark::Initialize(&restc, rest.data());
  if (benchmark::ReportUnrecognizedArguments(restc, rest.data())) return 2;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  bool ok = true;
  if (!metricsPath.empty()) {
    obs::BenchReport report(benchName);
    report.registry().merge(microRegistry());
    // Promote the wall-clock throughput maxima into figures so
    // bench_summary folds them into the BENCH_<date> trajectory (it only
    // reads figure lines). Micro reports are the one place wall-clock is
    // allowed; the table/figure benches stay deterministic.
    for (const std::string& name : report.registry().maxNames()) {
      if (name.rfind("sim.throughput.", 0) == 0) {
        report.addFigure(name, report.registry().maxValue(name));
      }
    }
    ok = report.writeTo(metricsPath) && ok;
  }
  if (!tracePath.empty()) {
    ok = obs::writeChromeTrace(tracePath, {&microSink()}) && ok;
  }
  if (!telemetryPath.empty()) {
    ok = obs::TelemetryDoc().writeTo(telemetryPath, benchName) && ok;
  }
  return ok ? 0 : 1;
}

}  // namespace small::benchutil

#define SMALL_MICRO_MAIN(name)                                  \
  int main(int argc, char** argv) {                             \
    return small::benchutil::microMain(name, argc, argv);       \
  }
