// Clark's linearization study (§3.2.1-3.2.3) — the empirical basis for
// cdr-coding and for this repository's pointer-distance model.
//
// Shapes to reproduce:
//   1. pointer distances are small under ANY reasonable cons algorithm
//      ("a naive cons algorithm performed almost as well as a more clever
//       one ... an inherent feature of Lisp list behaviour");
//   2. explicit linearization drives cdr-distance-1 to ~100%;
//   3. "once a list was linearized it tended to stay fairly well
//      linearized" — destructive edits erode it only slowly.
#include <cstdio>

#include "bench_util.hpp"
#include "heap/linearization.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace {

using namespace small;
using heap::ConsPolicy;
using heap::LinearizingHeap;

/// Interleaved construction: several lists grow "simultaneously", the
/// worst realistic case for locality of allocation.
LinearizingHeap::DistanceReport interleavedBuild(ConsPolicy policy,
                                                 support::Rng& rng) {
  LinearizingHeap heap(policy);
  constexpr int kLists = 8;
  LinearizingHeap::Word tails[kLists];
  for (auto& t : tails) t = LinearizingHeap::Word::atom(~0ull);
  for (int step = 0; step < 4000; ++step) {
    const auto i = rng.below(kLists);
    const auto cell = heap.cons(
        LinearizingHeap::Word::atom(step), tails[i]);
    tails[i] = LinearizingHeap::Word::pointer(cell);
  }
  return heap.measureDistances();
}

}  // namespace

int main(int argc, char** argv) {
  benchutil::BenchRun bench("clark_linearization", argc, argv, {});
  support::Rng rng(1983);

  std::puts("Clark §3.2: cons-policy and linearization study\n");
  support::TextTable table({"scenario", "policy", "adjacent |d|=1",
                            "cdr-linear d=+1", "mean |dist|"});
  auto addRow = [&](const char* scenario, const char* policy,
                    const LinearizingHeap::DistanceReport& report) {
    table.addRow({scenario, policy,
                  support::formatPercent(report.adjacentFraction(), 1),
                  support::formatPercent(report.distanceOneFraction(), 1),
                  support::formatDouble(report.magnitude.mean(), 2)});
    bench.report().addFigure(std::string("clark.distance1.") + scenario +
                                 "." + policy,
                             report.distanceOneFraction());
  };

  // 1. single-list sequential build (the common case).
  for (const auto [policy, name] :
       {std::pair{ConsPolicy::kNaive, "naive"},
        std::pair{ConsPolicy::kClever, "clever"}}) {
    LinearizingHeap heap(policy);
    heap.buildList(2000);
    addRow("sequential build", name, heap.measureDistances());
  }

  // 2. interleaved builds (allocation streams collide).
  for (const auto [policy, name] :
       {std::pair{ConsPolicy::kNaive, "naive"},
        std::pair{ConsPolicy::kClever, "clever"}}) {
    support::Rng local(7);
    addRow("interleaved x8", name, interleavedBuild(policy, local));
  }

  // 3. linearization, then destructive erosion.
  {
    LinearizingHeap heap(ConsPolicy::kNaive);
    support::Rng local(11);
    // Fragment the store first so the rebuilt list scatters.
    std::vector<LinearizingHeap::CellRef> junk;
    for (int i = 0; i < 512; ++i) {
      junk.push_back(heap.cons(LinearizingHeap::Word::atom(0),
                               LinearizingHeap::Word::atom(~0ull)));
    }
    for (std::size_t i = 0; i < junk.size(); i += 2) heap.free(junk[i]);
    LinearizingHeap::CellRef head = heap.buildList(1000);
    addRow("fragmented build", "naive", heap.measureList(head));

    head = heap.linearize(head);
    addRow("after linearize", "-", heap.measureList(head));

    // Erode: splice 50 fresh cells into random positions.
    for (int edit = 0; edit < 50; ++edit) {
      LinearizingHeap::CellRef cursor = head;
      const auto hops = local.below(900);
      for (std::uint64_t h = 0; h < hops; ++h) {
        const auto next = heap.cdr(cursor);
        if (!next.isPointer) break;
        cursor = static_cast<LinearizingHeap::CellRef>(next.payload);
      }
      const auto spliced =
          heap.cons(LinearizingHeap::Word::atom(9999), heap.cdr(cursor));
      heap.setCdr(cursor, LinearizingHeap::Word::pointer(spliced));
    }
    addRow("after 50 splices", "-", heap.measureList(head));
  }

  std::fputs(table.render().c_str(), stdout);
  std::puts("\npaper (via Clark): naive ~= clever; linearization yields "
            "~100% distance-1 cdrs;\nlinearized lists stay well "
            "linearized under modification.");
  return bench.finish(0);
}
