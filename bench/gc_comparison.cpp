// Collector comparison — the three conventional collectors (stop-the-world
// mark-sweep, semispace copying, deferred reference counting with a bounded
// zero-count table) against the LPT's lazy reference counting, on the same
// deterministic mutator scripts derived from the Chapter 3 workload traces.
//
// Each (trace × collector × heap backend) cell replays the identical
// gc::Script, so the final live set is a pure function of the script: every
// collector on every backend must land on exactly the LPT baseline's live
// count and per-root reachability fingerprint. Any divergence is a
// correctness failure of a reclamation policy — reported on stderr AND the
// bench exits nonzero, so CI gates on it. What legitimately differs is the
// *cost profile*, in simulated heap-touch units (backend touches plus
// collector-metadata touches): mark-sweep pays tracing at every collection,
// semispace pays copying but only touches live cells, deferred RC spreads
// barrier work across the mutator and pauses only to drain the ZCT, and the
// LPT baseline pays per-operation reference bookkeeping with no pauses at
// all beyond the final cycle-recovery sweep (§4.3.2).
//
// The (trace × collector × backend) runs are independent (each task owns
// its backend and collector; scripts are shared read-only), so they fan out
// through support::runSweep behind --jobs N. Tables are emitted from
// id-ordered slots — byte-identical output at any job count.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "gc/script.hpp"
#include "small/gc_baseline.hpp"
#include "support/parallel.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace small;
  benchutil::BenchRun bench("gc_comparison", argc, argv,
                            {{"--workload"}, {"--quick"}});
  const bool fromWorkloads = bench.has("--workload");
  const bool quick = bench.has("--quick");
  const int jobs = bench.jobs();

  const auto traces =
      benchutil::prepareChapter3(fromWorkloads, jobs, quick ? 0.25 : 1.0,
                                 bench.traceRoundTrip());

  gc::ScriptOptions scriptOptions;
  if (quick) scriptOptions.cellBudget = 50000;

  // Scripts are derived once per trace with a seed fixed by trace position
  // (independent of --jobs), then shared read-only by every run.
  std::vector<gc::Script> scripts(traces.size());
  for (std::size_t t = 0; t < traces.size(); ++t) {
    scripts[t] = gc::scriptFromTrace(traces[t].pre, scriptOptions,
                                     support::deriveTaskSeed(2026, t));
  }

  constexpr std::size_t kBackendCount =
      std::size(heap::kAllHeapBackendKinds);
  constexpr std::size_t kPolicyCount = std::size(gc::kAllCollectorPolicies);
  constexpr std::size_t kPerTrace = kBackendCount * kPolicyCount;

  gc::Collector::Options collectorOptions;
  if (quick) collectorOptions.triggerLiveCells = 1024;

  obs::ShardSet baselineShards(traces.size(), bench.obsEnabled());
  std::vector<core::GcBaselineResult> baselines(traces.size());
  obs::runIndexedObs(traces.size(), jobs, baselineShards,
                     [&](std::size_t t) {
                       baselines[t] = core::runScriptOnLpt(scripts[t]);
                       if (obs::Registry* r = baselineShards.registryAt(t)) {
                         obs::contributeLptStats(*r,
                                                 baselines[t].lptStats);
                       }
                     });

  // Each collector run owns its task id's shard: GcStats and heap
  // activity merge into the metrics report, and attachObs streams one
  // "gc" span per collection cycle into the shard's trace lane. With
  // telemetry on, each run additionally records its pause and live-cell
  // timelines into its own buffer (one per task id, folded in id order
  // below — the same byte-determinism discipline as the shards).
  obs::ShardSet runShards(traces.size() * kPerTrace, bench.obsEnabled());
  std::vector<gc::ScriptResult> runs(traces.size() * kPerTrace);
  std::vector<obs::TelemetryBuffer> runTelemetry(traces.size() * kPerTrace);
  obs::runIndexedObs(
      traces.size() * kPerTrace, jobs, runShards, [&](std::size_t id) {
        const std::size_t t = id / kPerTrace;
        const gc::Policy policy =
            gc::kAllCollectorPolicies[(id % kPerTrace) / kBackendCount];
        const heap::HeapBackendKind kind =
            heap::kAllHeapBackendKinds[id % kBackendCount];
        const auto backend = heap::makeHeapBackend(kind);
        const auto collector =
            gc::makeCollector(policy, *backend, collectorOptions);
        collector->attachObs(runShards.registryAt(id),
                             runShards.sinkAt(id));
        if (bench.telemetryEnabled()) {
          runTelemetry[id].enable(traces[t].name + "/" +
                                  gc::policyName(policy) + "/" +
                                  heap::heapBackendName(kind));
        }
        // ~64 live-cell samples per run regardless of script length.
        const std::uint64_t stride =
            std::max<std::uint64_t>(1, scripts[t].ops.size() / 64);
        runs[id] =
            gc::runScript(*collector, scripts[t], &runTelemetry[id], stride);
        if (obs::Registry* r = runShards.registryAt(id)) {
          obs::contributeGcStats(*r, runs[id].stats);
          obs::contributeHeapStats(*r, backend->stats());
        }
      });
  bench.collectShards(baselineShards);
  bench.collectShards(runShards);
  for (const obs::TelemetryBuffer& buffer : runTelemetry) {
    bench.telemetry().append(buffer);
  }

  // Both accounting schemes report through the shared obs::Registry
  // vocabulary (obs/names.hpp): the LPT baseline's LptStats and each
  // collector's GcStats land on the same mem.*/gc.* names, so this table
  // and table5_2_3_lpt_activity read from the same counters.
  support::TextTable table({"Trace", "Collector", "Backend", "Live",
                            "Reclaimed", "Traced", "Colls", "Heap touches",
                            "Meta touches", "Max pause", "Avg pause"});
  bool diverged = false;
  for (std::size_t t = 0; t < traces.size(); ++t) {
    const std::string& name = traces[t].name;
    const core::GcBaselineResult& baseline = baselines[t];
    obs::Registry lptReg;
    obs::contributeLptStats(lptReg, baseline.lptStats);
    table.addRow(
        {name, "refcount (LPT)", "-",
         std::to_string(baseline.finalLiveEntries),
         std::to_string(lptReg.counterValue(obs::names::kMemAllocs) -
                        baseline.finalLiveEntries),
         std::to_string(baseline.cycleReclaimed), "-", "-",
         std::to_string(lptReg.counterValue(obs::names::kMemRcOps)), "-",
         "-"});
    for (std::size_t c = 0; c < kPerTrace; ++c) {
      const gc::ScriptResult& run = runs[t * kPerTrace + c];
      const char* backend =
          heap::heapBackendName(heap::kAllHeapBackendKinds[c % kBackendCount]);
      obs::Registry gcReg;
      obs::contributeGcStats(gcReg, run.stats);
      const std::uint64_t collections =
          gcReg.counterValue(obs::names::kGcCollections);
      const double avgPause =
          collections == 0
              ? 0.0
              : static_cast<double>(
                    gcReg.counterValue(obs::names::kGcTotalPause)) /
                    static_cast<double>(collections);
      table.addRow({name, run.collectorName, backend,
                    std::to_string(run.finalLiveCells),
                    std::to_string(
                        gcReg.counterValue(obs::names::kMemFrees)),
                    std::to_string(
                        gcReg.counterValue(obs::names::kGcCellsTraced)),
                    std::to_string(collections),
                    std::to_string(
                        gcReg.counterValue(obs::names::kGcHeapTouches)),
                    std::to_string(
                        gcReg.counterValue(obs::names::kGcTableTouches)),
                    std::to_string(gcReg.maxValue(obs::names::kGcMaxPause)),
                    support::formatDouble(avgPause, 1)});
      if (run.finalLiveCells != baseline.finalLiveEntries ||
          run.rootReachable != baseline.rootReachable) {
        std::fprintf(stderr,
                     "ERROR: %s/%s/%s final live set diverged from the LPT "
                     "baseline (%llu cells vs %llu entries)\n",
                     name.c_str(), run.collectorName.c_str(), backend,
                     static_cast<unsigned long long>(run.finalLiveCells),
                     static_cast<unsigned long long>(
                         baseline.finalLiveEntries));
        diverged = true;
      }
    }
  }

  std::puts(
      "GC comparison: final live cells and collection cost per collector "
      "(costs in\nsimulated heap-touch units; LPT row's Meta touches are "
      "its reference-count\noperations, its Traced column the entries its "
      "cycle recovery reclaimed)");
  std::fputs(table.render().c_str(), stdout);
  std::puts(
      "\nshape: every collector lands on the LPT baseline's live set "
      "exactly; mark-sweep\npays tracing per collection, semispace copies "
      "only live cells but moves them,\ndeferred RC trades pauses for "
      "mutator barrier work (§4.3.2).");

  // Pause-time distributions per (collector × backend), merged bucket-wise
  // over the trace suite — the ROADMAP item 5 prerequisite: a serving
  // system is judged on its pause tail, not throughput alone. All values
  // are deterministic heap-touch units, so this table is golden-gated and
  // byte-identical at any --jobs.
  support::TextTable pauseTable({"Collector", "Backend", "Pauses", "Max",
                                 "p99", "p90", "p50", "Mean"});
  for (std::size_t c = 0; c < kPerTrace; ++c) {
    const char* backend =
        heap::heapBackendName(heap::kAllHeapBackendKinds[c % kBackendCount]);
    const char* collector = gc::policyName(
        gc::kAllCollectorPolicies[c / kBackendCount]);
    support::Histogram merged;
    for (std::size_t t = 0; t < traces.size(); ++t) {
      const gc::ScriptResult& run = runs[t * kPerTrace + c];
      for (const auto& [value, count] : run.pauseTouchUnits.buckets()) {
        merged.add(value, count);
      }
    }
    // Every run ends in a final full collection, so the histogram is
    // never empty; the guard keeps degenerate configs printable.
    const auto q = [&merged](double quantile) -> std::uint64_t {
      return merged.total() == 0
                 ? 0
                 : static_cast<std::uint64_t>(merged.quantile(quantile));
    };
    pauseTable.addRow({collector, backend, std::to_string(merged.total()),
                       std::to_string(q(1.0)), std::to_string(q(0.99)),
                       std::to_string(q(0.90)), std::to_string(q(0.50)),
                       support::formatDouble(merged.mean(), 1)});
    const std::string key = std::string(collector) + "." + backend;
    bench.report().addFigure("gc.pause.max." + key, q(1.0));
    bench.report().addFigure("gc.pause.p99." + key, q(0.99));
  }
  std::puts(
      "\nPause distribution per collector x backend (touch units, all "
      "traces merged):");
  std::fputs(pauseTable.render().c_str(), stdout);

  // Key figures: per (collector × backend) cost totals summed over the
  // trace suite — the regression-trackable shape of this comparison.
  for (std::size_t c = 0; c < kPerTrace; ++c) {
    const char* backend =
        heap::heapBackendName(heap::kAllHeapBackendKinds[c % kBackendCount]);
    const char* collector = gc::policyName(
        gc::kAllCollectorPolicies[c / kBackendCount]);
    std::uint64_t totalPause = 0;
    std::uint64_t reclaimed = 0;
    for (std::size_t t = 0; t < traces.size(); ++t) {
      const gc::ScriptResult& run = runs[t * kPerTrace + c];
      totalPause += run.stats.totalPause;
      reclaimed += run.stats.cellsReclaimed;
    }
    const std::string key = std::string(collector) + "." + backend;
    bench.report().addFigure("gc.pause_total." + key, totalPause);
    bench.report().addFigure("gc.reclaimed." + key, reclaimed);
  }

  if (diverged) {
    std::fputs("FAIL: collector live set diverged from the LPT baseline\n",
               stderr);
    return bench.finish(1);
  }
  return bench.finish(0);
}
