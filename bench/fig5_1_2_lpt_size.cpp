// Fig 5.1 — Peak LPT Usage Behaviour (the knee curve), and
// Fig 5.2 — Maximum LPT Occupancy Levels over many reseeded runs.
//
// Paper shape: each trace's peak-usage-vs-table-size plot is a slope-1
// line through the origin joined to a horizontal line at the knee (the
// minimum overflow-free LPT size); true overflow needs only a few hundred
// entries even on the longest trace; 2K-4K entries make even pseudo
// overflow rare. Lyra's knee interval over reseeded runs stands out
// (larger working set), and is NOT explained by trace length alone.
#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"
#include "small/simulator.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "trace/preprocess.hpp"

int main(int argc, char** argv) {
  using namespace small;
  const bool fromWorkloads = benchutil::hasFlag(argc, argv, "--workload");
  const bool quick = benchutil::hasFlag(argc, argv, "--quick");

  const auto traces = benchutil::chapter5Traces(fromWorkloads);

  // --- Fig 5.1: peak usage vs table size, one seed ---
  std::puts("Fig 5.1: peak LPT usage vs table size (Compress-One)");
  std::vector<support::Series> curves;
  support::TextTable kneeTable(
      {"Trace", "smallest no-true-overflow", "knee (no overflow at all)"});
  std::vector<std::pair<std::string, trace::PreprocessedTrace>> pres;
  for (const auto& [name, raw] : traces) {
    pres.emplace_back(name, trace::preprocess(raw));
  }

  for (const auto& [name, pre] : pres) {
    // Unconstrained run gives the knee directly.
    core::SimConfig big;
    big.tableSize = 1u << 18;
    big.seed = 42;
    const core::SimResult free = core::simulateTrace(big, pre);
    const std::uint32_t knee = free.peakOccupancy;

    support::Series series{name, {}, {}};
    std::uint32_t smallestNoTrue = 0;
    // Sweep sizes around the knee.
    for (double fraction :
         {0.1, 0.2, 0.35, 0.5, 0.65, 0.8, 0.9, 1.0, 1.1, 1.3, 1.6, 2.0}) {
      const auto size = std::max<std::uint32_t>(
          8, static_cast<std::uint32_t>(knee * fraction));
      core::SimConfig config;
      config.tableSize = size;
      config.seed = 42;
      const core::SimResult result = core::simulateTrace(config, pre);
      series.add(size, result.peakOccupancy);
      if (smallestNoTrue == 0 && !result.trueOverflowOccurred) {
        smallestNoTrue = size;
      }
    }
    kneeTable.addRow({name, std::to_string(smallestNoTrue),
                      std::to_string(knee)});
    curves.push_back(std::move(series));
  }
  std::fputs(support::asciiPlot(curves).c_str(), stdout);
  std::fputs(kneeTable.render().c_str(), stdout);
  std::puts("paper: slope-1 segment (peak == size while overflowing) "
            "joined to a plateau at the knee.\n");

  // --- Fig 5.2: knee intervals over reseeded runs ---
  const int seeds = quick ? 10 : 60;
  std::printf("Fig 5.2: maximum LPT occupancy intervals over %d reseeded "
              "runs\n", seeds);
  support::TextTable intervals(
      {"Trace", "min knee", "mean", "max knee", "95%% ci half-width"});
  for (const auto& [name, pre] : pres) {
    support::RunningStats knees;
    for (int seed = 1; seed <= seeds; ++seed) {
      core::SimConfig config;
      config.tableSize = 1u << 18;
      config.seed = static_cast<std::uint64_t>(seed) * 7919;
      const core::SimResult result = core::simulateTrace(config, pre);
      knees.add(result.peakOccupancy);
    }
    intervals.addRow({name, support::formatDouble(knees.min(), 0),
                      support::formatDouble(knees.mean(), 1),
                      support::formatDouble(knees.max(), 0),
                      support::formatDouble(
                          knees.confidenceHalfWidth95(), 2)});
  }
  std::fputs(intervals.render().c_str(), stdout);
  std::puts("paper: Lyra's interval stands out (intrinsically larger "
            "working set); PlaGen and\nEditor behave alike despite an "
            "order of magnitude difference in length.");
  return 0;
}
