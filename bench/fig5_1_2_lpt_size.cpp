// Fig 5.1 — Peak LPT Usage Behaviour (the knee curve), and
// Fig 5.2 — Maximum LPT Occupancy Levels over many reseeded runs.
//
// Paper shape: each trace's peak-usage-vs-table-size plot is a slope-1
// line through the origin joined to a horizontal line at the knee (the
// minimum overflow-free LPT size); true overflow needs only a few hundred
// entries even on the longest trace; 2K-4K entries make even pseudo
// overflow rare. Lyra's knee interval over reseeded runs stands out
// (larger working set), and is NOT explained by trace length alone.
//
// Every simulator run here is an independent pure function of (config,
// preprocessed trace), so the (trace x size) and (trace x seed) grids fan
// out through support::runSweep behind --jobs N. Results land in slots
// indexed by grid position and are reduced/printed serially in grid order,
// so the output is byte-identical for every job count.
#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"
#include "small/simulator.hpp"
#include "support/parallel.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "trace/preprocess.hpp"

int main(int argc, char** argv) {
  using namespace small;
  benchutil::BenchRun bench("fig5_1_2_lpt_size", argc, argv,
                            {{"--workload"}, {"--quick"}});
  const bool fromWorkloads = bench.has("--workload");
  const bool quick = bench.has("--quick");
  const int jobs = bench.jobs();

  const auto pres = benchutil::prepareChapter5(
      fromWorkloads, jobs, bench.traceRoundTrip());

  // --- Fig 5.1: peak usage vs table size, one seed ---
  std::puts("Fig 5.1: peak LPT usage vs table size (Compress-One)");
  support::TextTable kneeTable(
      {"Trace", "smallest no-true-overflow", "knee (no overflow at all)"});

  // Stage 1: one unconstrained run per trace gives the knees directly.
  const std::vector<std::uint32_t> knees =
      support::runSweep<std::uint32_t>(pres, jobs, [](const auto& named,
                                                      std::size_t) {
        core::SimConfig big;
        big.tableSize = 1u << 18;
        big.seed = 42;
        return core::simulateTrace(big, named.pre).peakOccupancy;
      });

  // Stage 2: the (trace x size fraction) grid, one task per cell.
  constexpr double kFractions[] = {0.1, 0.2,  0.35, 0.5, 0.65, 0.8,
                                   0.9, 1.0,  1.1,  1.3, 1.6,  2.0};
  constexpr std::size_t kFractionCount = std::size(kFractions);
  struct Cell {
    std::uint32_t size = 0;
    std::uint32_t peak = 0;
    bool trueOverflow = false;
  };
  const std::vector<Cell> cells = support::runSweep<Cell>(
      pres.size() * kFractionCount, jobs, [&](std::size_t id) {
        const std::size_t traceIdx = id / kFractionCount;
        const double fraction = kFractions[id % kFractionCount];
        Cell cell;
        cell.size = std::max<std::uint32_t>(
            8, static_cast<std::uint32_t>(knees[traceIdx] * fraction));
        core::SimConfig config;
        config.tableSize = cell.size;
        config.seed = 42;
        const core::SimResult result =
            core::simulateTrace(config, pres[traceIdx].pre);
        cell.peak = result.peakOccupancy;
        cell.trueOverflow = result.trueOverflowOccurred;
        return cell;
      });

  std::vector<support::Series> curves;
  for (std::size_t t = 0; t < pres.size(); ++t) {
    support::Series series{pres[t].name, {}, {}};
    std::uint32_t smallestNoTrue = 0;
    for (std::size_t f = 0; f < kFractionCount; ++f) {
      const Cell& cell = cells[t * kFractionCount + f];
      series.add(cell.size, cell.peak);
      if (smallestNoTrue == 0 && !cell.trueOverflow) {
        smallestNoTrue = cell.size;
      }
    }
    kneeTable.addRow({pres[t].name, std::to_string(smallestNoTrue),
                      std::to_string(knees[t])});
    bench.report().addFigure("fig5_1.knee." + pres[t].name,
                             static_cast<std::uint64_t>(knees[t]));
    bench.report().addFigure("fig5_1.smallest_no_true_overflow." +
                                 pres[t].name,
                             static_cast<std::uint64_t>(smallestNoTrue));
    curves.push_back(std::move(series));
  }
  std::fputs(support::asciiPlot(curves).c_str(), stdout);
  std::fputs(kneeTable.render().c_str(), stdout);
  std::puts("paper: slope-1 segment (peak == size while overflowing) "
            "joined to a plateau at the knee.\n");

  // --- Fig 5.2: knee intervals over reseeded runs ---
  const int seeds = quick ? 10 : 60;
  std::printf("Fig 5.2: maximum LPT occupancy intervals over %d reseeded "
              "runs\n", seeds);
  support::TextTable intervals(
      {"Trace", "min knee", "mean", "max knee", "95%% ci half-width"});
  // Per-task obs shards: each reseeded run contributes its counters to
  // its own id's shard; merged metrics are identical at any --jobs.
  const std::size_t taskCount =
      pres.size() * static_cast<std::size_t>(seeds);
  obs::ShardSet shards(taskCount, bench.obsEnabled());
  std::vector<std::uint32_t> peaks(taskCount);
  obs::runIndexedObs(taskCount, jobs, shards, [&](std::size_t id) {
    const std::size_t traceIdx = id / seeds;
    const int seed = static_cast<int>(id % seeds) + 1;
    core::SimConfig config;
    config.tableSize = 1u << 18;
    config.seed = static_cast<std::uint64_t>(seed) * 7919;
    const core::SimResult result =
        core::simulateTrace(config, pres[traceIdx].pre);
    benchutil::contributeSimResult(shards.registryAt(id), result);
    peaks[id] = result.peakOccupancy;
  });
  bench.collectShards(shards);
  for (std::size_t t = 0; t < pres.size(); ++t) {
    // Accumulate in seed order: RunningStats' floating-point state is then
    // independent of worker scheduling.
    support::RunningStats knees52;
    for (int s = 0; s < seeds; ++s) knees52.add(peaks[t * seeds + s]);
    intervals.addRow({pres[t].name, support::formatDouble(knees52.min(), 0),
                      support::formatDouble(knees52.mean(), 1),
                      support::formatDouble(knees52.max(), 0),
                      support::formatDouble(
                          knees52.confidenceHalfWidth95(), 2)});
    bench.report().addFigure("fig5_2.mean_knee." + pres[t].name,
                             knees52.mean());
  }
  std::fputs(intervals.render().c_str(), stdout);
  std::puts("paper: Lyra's interval stands out (intrinsically larger "
            "working set); PlaGen and\nEditor behave alike despite an "
            "order of magnitude difference in length.");
  return bench.finish(0);
}
