// Figs 3.4 / 3.5 / 3.6 — the list-set partition of each trace:
//   3.4 cumulative % of list references vs number of (largest-first)
//       list sets — "about 10 list sets cover about 80% of references";
//   3.5 distribution of list-set lifetimes over list sets — most sets are
//       short-lived, few survive >60% of the trace;
//   3.6 distribution of lifetimes weighted by references — most
//       *references* belong to long-lived sets (Slang/PlaGen/Lyra) or are
//       spread evenly (Editor/Pearl).
#include <cstdio>

#include "analysis/list_sets.hpp"
#include "bench_util.hpp"
#include "support/table.hpp"
#include "trace/preprocess.hpp"

int main(int argc, char** argv) {
  using namespace small;
  benchutil::BenchRun bench("fig3_4_6_list_sets", argc, argv,
                            {{"--workload"}, {"--csv"}});
  const bool fromWorkloads = bench.has("--workload");
  const bool csv = bench.has("--csv");

  std::puts("Figs 3.4-3.6: list-set partition (10% separation constraint)");
  support::TextTable table({"Benchmark", "refs", "sets", "top-1", "top-10",
                            "top-25", "sets <10% life", "refs in >60% life"});

  std::vector<support::Series> fig34;
  for (const auto& [name, raw] :
       benchutil::chapter3Traces(
           fromWorkloads, 1.0, bench.traceRoundTrip())) {
    const auto pre = trace::preprocess(raw);
    const analysis::ListSetPartition partition =
        analysis::partitionListSets(pre);
    const support::Series cumulative =
        partition.cumulativeReferencesBySetRank();

    auto coverAt = [&](std::size_t k) -> std::string {
      if (cumulative.y.empty()) return "-";
      const std::size_t i = std::min(k, cumulative.y.size()) - 1;
      return support::formatPercent(cumulative.y[i], 1);
    };

    // Fig 3.5 number: fraction of sets with lifetime < 10%.
    std::size_t shortLived = 0;
    std::uint64_t refsInLongLived = 0;
    for (const analysis::ListSet& s : partition.sets) {
      const double life = s.lifetimeFraction(partition.traceLength);
      if (life < 0.10) ++shortLived;
      if (life > 0.60) refsInLongLived += s.references;
    }
    table.addRow(
        {name, std::to_string(partition.totalReferences),
         std::to_string(partition.sets.size()), coverAt(1), coverAt(10),
         coverAt(25),
         partition.sets.empty()
             ? "-"
             : support::formatPercent(
                   static_cast<double>(shortLived) /
                       static_cast<double>(partition.sets.size()),
                   1),
         partition.totalReferences == 0
             ? "-"
             : support::formatPercent(
                   static_cast<double>(refsInLongLived) /
                       static_cast<double>(partition.totalReferences),
                   1)});

    if (!cumulative.y.empty()) {
      const std::size_t top10 = std::min<std::size_t>(10, cumulative.y.size());
      bench.report().addFigure("fig3_4.top10_cover." + name,
                               cumulative.y[top10 - 1]);
    }
    bench.report().addFigure("fig3_4.sets." + name,
                             static_cast<std::uint64_t>(
                                 partition.sets.size()));

    support::Series series = cumulative;
    series.name = name;
    // Truncate to the first 60 ranks for plotting.
    if (series.x.size() > 60) {
      series.x.resize(60);
      series.y.resize(60);
    }
    fig34.push_back(std::move(series));
  }
  std::fputs(table.render().c_str(), stdout);

  std::puts("\nFig 3.4 (cumulative reference fraction vs list-set rank):");
  std::fputs(support::asciiPlot(fig34).c_str(), stdout);
  if (csv) std::fputs(support::seriesToCsv(fig34).c_str(), stdout);

  std::puts("paper: ~10 list sets cover ~80% of references; few sets are "
            "long-lived,\nbut the long-lived ones hold most references "
            "(inverse-exponential Fig 3.4).");
  return bench.finish(0);
}
