// Fig 5.3 — LPT Behaviour and Pseudo Overflow Policies.
//
// Paper shape: with table sizes below the knee, Compress-One keeps the
// *average* occupancy higher than Compress-All, but the mean difference
// is small — which justifies Compress-One (bounded work per overflow)
// and the hybrid scheme.
//
// The (trace x size x policy) grid fans out through support::runSweep
// behind --jobs N; rows read their three policy runs back from id-indexed
// slots, so the table is byte-identical at any job count. Traces are
// preprocessed once and shared read-only across all tasks.
#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"
#include "small/simulator.hpp"
#include "support/parallel.hpp"
#include "support/table.hpp"
#include "trace/preprocess.hpp"

int main(int argc, char** argv) {
  using namespace small;
  benchutil::BenchRun bench("fig5_3_compression_policy", argc, argv,
                            {{"--workload"}});
  const bool fromWorkloads = bench.has("--workload");
  const int jobs = bench.jobs();

  std::puts("Fig 5.3: average LPT occupancy, Compress-One vs Compress-All");
  support::TextTable table({"Trace", "table size", "avg occ (One)",
                            "avg occ (All)", "avg occ (Hybrid)",
                            "pseudo ovfl (One)", "pseudo ovfl (All)"});

  const auto pres = benchutil::prepareChapter5(
      fromWorkloads, jobs, bench.traceRoundTrip());

  const std::vector<std::uint32_t> knees =
      support::runSweep<std::uint32_t>(pres, jobs, [](const auto& named,
                                                      std::size_t) {
        core::SimConfig big;
        big.tableSize = 1u << 18;
        big.seed = 17;
        return core::simulateTrace(big, named.pre).peakOccupancy;
      });

  constexpr double kFractions[] = {0.5, 0.75};
  constexpr core::CompressionPolicy kPolicies[] = {
      core::CompressionPolicy::kCompressOne,
      core::CompressionPolicy::kCompressAll,
      core::CompressionPolicy::kHybrid};
  constexpr std::size_t kFractionCount = std::size(kFractions);
  constexpr std::size_t kPolicyCount = std::size(kPolicies);
  const std::size_t taskCount = pres.size() * kFractionCount * kPolicyCount;
  obs::ShardSet shards(taskCount, bench.obsEnabled());
  std::vector<core::SimResult> results(taskCount);
  obs::runIndexedObs(taskCount, jobs, shards, [&](std::size_t id) {
    const std::size_t traceIdx = id / (kFractionCount * kPolicyCount);
    const std::size_t fractionIdx = (id / kPolicyCount) % kFractionCount;
    const core::CompressionPolicy policy = kPolicies[id % kPolicyCount];
    const auto size = std::max<std::uint32_t>(
        8, static_cast<std::uint32_t>(knees[traceIdx] *
                                      kFractions[fractionIdx]));
    core::SimConfig config;
    config.tableSize = size;
    config.compression = policy;
    config.seed = 17;
    results[id] = core::simulateTrace(config, pres[traceIdx].pre);
    benchutil::contributeSimResult(shards.registryAt(id), results[id]);
  });
  bench.collectShards(shards);

  for (std::size_t t = 0; t < pres.size(); ++t) {
    // The paper plots Slang and Editor; we run all four.
    for (std::size_t f = 0; f < kFractionCount; ++f) {
      const auto size = std::max<std::uint32_t>(
          8, static_cast<std::uint32_t>(knees[t] * kFractions[f]));
      const std::size_t base = (t * kFractionCount + f) * kPolicyCount;
      const core::SimResult& one = results[base + 0];
      const core::SimResult& all = results[base + 1];
      const core::SimResult& hybrid = results[base + 2];
      table.addRow({pres[t].name, std::to_string(size),
                    support::formatDouble(one.averageOccupancy, 1),
                    support::formatDouble(all.averageOccupancy, 1),
                    support::formatDouble(hybrid.averageOccupancy, 1),
                    std::to_string(one.lpStats.pseudoOverflows),
                    std::to_string(all.lpStats.pseudoOverflows)});
      bench.report().addFigure(
          "fig5_3.avg_occ_one." + pres[t].name + "." + std::to_string(size),
          one.averageOccupancy);
      bench.report().addFigure(
          "fig5_3.avg_occ_all." + pres[t].name + "." + std::to_string(size),
          all.averageOccupancy);
    }
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts("\npaper: Compress-One rides at higher average occupancy than "
            "Compress-All, but the\nmean difference is modest — so the "
            "bounded-work policy wins; a hybrid is conceivable.");
  return bench.finish(0);
}
