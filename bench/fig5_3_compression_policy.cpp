// Fig 5.3 — LPT Behaviour and Pseudo Overflow Policies.
//
// Paper shape: with table sizes below the knee, Compress-One keeps the
// *average* occupancy higher than Compress-All, but the mean difference
// is small — which justifies Compress-One (bounded work per overflow)
// and the hybrid scheme.
#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"
#include "small/simulator.hpp"
#include "support/table.hpp"
#include "trace/preprocess.hpp"

int main(int argc, char** argv) {
  using namespace small;
  const bool fromWorkloads = benchutil::hasFlag(argc, argv, "--workload");

  std::puts("Fig 5.3: average LPT occupancy, Compress-One vs Compress-All");
  support::TextTable table({"Trace", "table size", "avg occ (One)",
                            "avg occ (All)", "avg occ (Hybrid)",
                            "pseudo ovfl (One)", "pseudo ovfl (All)"});

  for (const auto& [name, raw] : benchutil::chapter5Traces(fromWorkloads)) {
    // The paper plots Slang and Editor; we run all four.
    const auto pre = trace::preprocess(raw);
    core::SimConfig big;
    big.tableSize = 1u << 18;
    big.seed = 17;
    const std::uint32_t knee = core::simulateTrace(big, pre).peakOccupancy;

    for (const double fraction : {0.5, 0.75}) {
      const auto size = std::max<std::uint32_t>(
          8, static_cast<std::uint32_t>(knee * fraction));
      auto runWith = [&](core::CompressionPolicy policy) {
        core::SimConfig config;
        config.tableSize = size;
        config.compression = policy;
        config.seed = 17;
        return core::simulateTrace(config, pre);
      };
      const auto one = runWith(core::CompressionPolicy::kCompressOne);
      const auto all = runWith(core::CompressionPolicy::kCompressAll);
      const auto hybrid = runWith(core::CompressionPolicy::kHybrid);
      table.addRow({name, std::to_string(size),
                    support::formatDouble(one.averageOccupancy, 1),
                    support::formatDouble(all.averageOccupancy, 1),
                    support::formatDouble(hybrid.averageOccupancy, 1),
                    std::to_string(one.lpStats.pseudoOverflows),
                    std::to_string(all.lpStats.pseudoOverflows)});
    }
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts("\npaper: Compress-One rides at higher average occupancy than "
            "Compress-All, but the\nmean difference is modest — so the "
            "bounded-work policy wins; a hybrid is conceivable.");
  return 0;
}
