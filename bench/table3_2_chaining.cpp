// Table 3.2 — Percentage of CxR Calls that Occurred inside a Function
// Chain.
//
// Paper values (car / cdr %): Slang 55.68/26.71, PlaGen 26.68/40.89,
// Lyra 82.75/68.99, Editor 47.21/38.72, Pearl 0.88/1.00.
// Shape: chaining is significant in 4 of 5 programs; Pearl (direct-access
// hunks) barely chains at all.
#include <cstdio>

#include "analysis/chaining.hpp"
#include "bench_util.hpp"
#include "support/table.hpp"
#include "trace/preprocess.hpp"

int main(int argc, char** argv) {
  using namespace small;
  benchutil::BenchRun bench("table3_2_chaining", argc, argv,
                            {{"--workload"}});
  const bool fromWorkloads = bench.has("--workload");

  std::puts("Table 3.2: % of car/cdr calls inside a primitive function "
            "chain");
  support::TextTable table(
      {"Benchmark", "CAR", "CDR", "paper CAR", "paper CDR"});
  struct PaperRow {
    const char* name;
    double car;
    double cdr;
  };
  constexpr PaperRow kPaper[] = {{"Slang", 55.68, 26.71},
                                 {"PlaGen", 26.68, 40.89},
                                 {"Lyra", 82.75, 68.99},
                                 {"Editor", 47.21, 38.72},
                                 {"Pearl", 0.88, 1.00}};

  for (const auto& [name, raw] :
       benchutil::chapter3Traces(
           fromWorkloads, 1.0, bench.traceRoundTrip())) {
    const auto pre = trace::preprocess(raw);
    const analysis::ChainingStats stats = analysis::analyzeChaining(pre);
    std::string paperCar = "-";
    std::string paperCdr = "-";
    for (const PaperRow& row : kPaper) {
      if (name == row.name) {
        paperCar = support::formatDouble(row.car, 2);
        paperCdr = support::formatDouble(row.cdr, 2);
      }
    }
    table.addRow(
        {name,
         support::formatDouble(
             stats.chainedFraction(trace::Primitive::kCar) * 100.0, 2),
         support::formatDouble(
             stats.chainedFraction(trace::Primitive::kCdr) * 100.0, 2),
         paperCar, paperCdr});
    bench.report().addFigure(
        "table3_2.car_chained." + name,
        stats.chainedFraction(trace::Primitive::kCar));
    bench.report().addFigure(
        "table3_2.cdr_chained." + name,
        stats.chainedFraction(trace::Primitive::kCdr));
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts("\npaper: 25-80%+ of CxR calls chain in list-structured "
            "programs; Pearl is the outlier near zero.");
  return bench.finish(0);
}
