// Microbenchmarks for the analysis pipeline: preprocessing, list-set
// partitioning, and Mattson stack-distance throughput.
#include <benchmark/benchmark.h>

#include "micro_util.hpp"

#include "analysis/list_sets.hpp"
#include "analysis/lru.hpp"
#include "support/rng.hpp"
#include "trace/preprocess.hpp"
#include "trace/synthetic.hpp"

namespace {

using namespace small;

const trace::Trace& sharedTrace() {
  static const trace::Trace trace = [] {
    support::Rng rng(99);
    return trace::generate(trace::slangProfile(1.0), rng);
  }();
  return trace;
}

void BM_Preprocess(benchmark::State& state) {
  const trace::Trace& raw = sharedTrace();
  for (auto _ : state) {
    benchmark::DoNotOptimize(trace::preprocess(raw));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(raw.primitiveLength()));
}
BENCHMARK(BM_Preprocess)->Unit(benchmark::kMillisecond);

void BM_ListSetPartition(benchmark::State& state) {
  const trace::PreprocessedTrace pre = trace::preprocess(sharedTrace());
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::partitionListSets(pre));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(pre.primitiveCount));
}
BENCHMARK(BM_ListSetPartition)->Unit(benchmark::kMillisecond);

void BM_MattsonReference(benchmark::State& state) {
  analysis::MattsonStack stack;
  support::Rng rng(7);
  // Zipf-ish reuse: mostly small ids.
  for (auto _ : state) {
    std::uint64_t id = rng.below(8);
    if (rng.chance(0.1)) id = rng.below(4096);
    benchmark::DoNotOptimize(stack.reference(id));
  }
}
BENCHMARK(BM_MattsonReference);

void BM_SyntheticGeneration(benchmark::State& state) {
  for (auto _ : state) {
    support::Rng rng(3);
    benchmark::DoNotOptimize(
        trace::generate(trace::slangProfile(0.5), rng));
  }
}
BENCHMARK(BM_SyntheticGeneration)->Unit(benchmark::kMillisecond);

}  // namespace

SMALL_MICRO_MAIN("micro_analysis")
