// §5.3.1 — the guaranteed hit rate of ordered traversals.
//
// Analytic claim: a list with n atoms and p internal parenthesis pairs
// maps to a binary tree with n+p internal nodes and n+p+1 leaves; an
// ordered traversal touches each internal node 3 times and each leaf
// once, costs n+p splits (LPT misses) and gets 3(n+p)+1 hits => a
// guaranteed 75% hit rate (asymptotically), independent of traversal
// order (pre/in/post visit the same contact super-sequence).
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "small/list_processor.hpp"
#include "support/table.hpp"

namespace {

using namespace small;

struct TraversalCounts {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
};

// Walk the split tree. In the thesis' traversal super-sequence each
// internal node is touched 3 times and each leaf once; in LP-request
// terms that is 4 car/cdr requests per internal node (each request
// touches the returned child), of which exactly the first one splits:
// 1 miss + 3 hits per internal node -> 75% hit rate.
void traverse(core::ListProcessor& lp, core::EntryId node) {
  if (lp.lpt().entry(node).isAtom) return;
  const core::AccessResult car = lp.car(node);   // miss: splits the node
  const core::AccessResult cdr = lp.cdr(node);   // hit
  (void)lp.car(node);                            // hit (revisit car)
  (void)lp.cdr(node);                            // hit (revisit cdr)
  if (car.id != core::kNoEntry) traverse(lp, car.id);
  if (cdr.id != core::kNoEntry) traverse(lp, cdr.id);
}

}  // namespace

int main(int argc, char** argv) {
  benchutil::BenchRun bench("traversal_hit_rate", argc, argv, {});
  std::puts("§5.3.1: ordered-traversal LPT hit rate (guaranteed 75%)");
  support::TextTable table({"n", "p", "splits (=n+p)", "hits",
                            "hit rate", "analytic"});
  support::Rng rng(7);
  for (const auto [n, p] : std::vector<std::pair<int, int>>{
           {5, 0}, {10, 2}, {20, 5}, {74, 20}, {200, 40}}) {
    core::SimConfig config;
    config.tableSize = 1u << 18;
    core::ListProcessor lp(config, rng);
    const core::EntryId root = lp.readList(
        std::nullopt, static_cast<std::uint32_t>(n),
        static_cast<std::uint32_t>(p));
    traverse(lp, root);
    const double hits = static_cast<double>(lp.stats().hits);
    const double misses = static_cast<double>(lp.stats().splits);
    const double analytic = (3.0 * (n + p) + 1.0) / (4.0 * (n + p) + 1.0);
    table.addRow({std::to_string(n), std::to_string(p),
                  std::to_string(static_cast<long long>(misses)),
                  std::to_string(static_cast<long long>(hits)),
                  support::formatPercent(hits / (hits + misses), 2),
                  support::formatPercent(analytic, 2)});
    bench.report().addFigure("traversal.hit_rate.n" + std::to_string(n) +
                                 ".p" + std::to_string(p),
                             hits / (hits + misses));
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts("\npaper: n+p misses against 3(n+p)+1 hits — 75% guaranteed "
            "even under pseudo overflow\n(leaf entries cannot be merged "
            "away mid-traversal).");
  return bench.finish(0);
}
