// The M3L truncated-reference-count study (§2.3.4).
//
// "The Machine for Lisp Like Languages, M3L, Project uses a 3 bit
//  reference count field... studies which suggest that this reference
//  count suffices to reclaim about 98% of all inaccessible list cells."
//
// With k-bit *sticky* counters an object is reclaimable iff its count
// never exceeded 2^k - 1 during its lifetime. The SMALL simulator records
// each LPT entry's lifetime maximum count at free time; the CDF of that
// distribution is the reclaimable fraction per counter width — evaluated
// here for every trace. (Note the LPT's counts already exclude most stack
// traffic in split mode, the same trick M3L's separate 1-bit reference
// flag plays.)
#include <cstdio>

#include "bench_util.hpp"
#include "small/simulator.hpp"
#include "support/table.hpp"
#include "trace/preprocess.hpp"

int main(int argc, char** argv) {
  using namespace small;
  benchutil::BenchRun bench("m3l_truncated_counts", argc, argv,
                            {{"--workload"}});
  const bool fromWorkloads = bench.has("--workload");

  std::puts("M3L §2.3.4: garbage reclaimable with k-bit sticky reference "
            "counts");
  support::TextTable table({"Trace", "mode", "1 bit", "2 bits", "3 bits",
                            "4 bits", "max count seen"});

  for (const auto& [name, raw] : benchutil::chapter5Traces(
           fromWorkloads, bench.traceRoundTrip())) {
    const auto pre = trace::preprocess(raw);
    for (const bool split : {false, true}) {
      core::SimConfig config;
      config.tableSize = 4096;
      config.splitRefCounts = split;
      config.seed = 61;
      // Run via the Simulator but read the histogram off the LP's table:
      // re-run internals directly for access to the Lpt.
      core::Simulator simulator(config, pre);
      const core::SimResult result = simulator.run();
      (void)result;
      // The histogram lives in the Lpt; re-derive via a fresh simulation
      // is unnecessary — expose through SimResult instead.
      std::vector<std::string> row{name, split ? "split" : "combined"};
      for (const int bits : {1, 2, 3, 4}) {
        const double fraction = result.lifetimeMaxCounts.cumulativeFraction(
            (1 << bits) - 1);
        row.push_back(support::formatPercent(fraction, 1));
        if (bits == 3) {
          bench.report().addFigure(std::string("m3l.reclaim3bit.") +
                                       (split ? "split." : "combined.") +
                                       name,
                                   fraction);
        }
      }
      row.push_back(std::to_string(result.lptStats.maxRefCount));
      table.addRow(row);
    }
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts("\npaper (M3L): 3 bits reclaim ~98% of inaccessible cells when "
            "stack references are\ncounted separately — the 'split' rows "
            "are the comparable configuration.");
  return bench.finish(0);
}
