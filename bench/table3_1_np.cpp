// Table 3.1 — Average Values of n and p; Figs 3.3a/b — their
// distributions over lists.
//
// Paper values: Slang (10.04, 1.99), PlaGen (12.40, 2.90),
// Lyra (9.70, 1.55), Editor (74.74, 20.98), Pearl (13.98, 2.79).
// Shape to reproduce: p < 3 on average everywhere except Editor; Editor's
// lists are an order of magnitude longer and deeper than the rest.
#include <cstdio>

#include "analysis/census.hpp"
#include "bench_util.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace small;
  benchutil::BenchRun bench("table3_1_np", argc, argv,
                            {{"--workload"}, {"--distributions"}});
  const bool fromWorkloads = bench.has("--workload");
  const bool distributions = bench.has("--distributions");

  std::puts("Table 3.1: average values of n and p over traced lists");
  support::TextTable table({"Benchmark", "mean n", "median n", "mean p",
                            "median p", "paper n", "paper p"});
  struct PaperRow {
    const char* name;
    double n;
    double p;
  };
  constexpr PaperRow kPaper[] = {{"Slang", 10.04, 1.99},
                                 {"PlaGen", 12.40, 2.90},
                                 {"Lyra", 9.70, 1.55},
                                 {"Editor", 74.74, 20.98},
                                 {"Pearl", 13.98, 2.79}};

  std::vector<std::pair<std::string, analysis::ShapeStatistics>> collected;
  for (const auto& [name, raw] :
       benchutil::chapter3Traces(
           fromWorkloads, 1.0, bench.traceRoundTrip())) {
    collected.emplace_back(name, analysis::censusShapes(raw));
  }
  for (const auto& [name, stats] : collected) {
    std::string paperN = "-";
    std::string paperP = "-";
    for (const PaperRow& row : kPaper) {
      if (name == row.name) {
        paperN = support::formatDouble(row.n, 2);
        paperP = support::formatDouble(row.p, 2);
      }
    }
    table.addRow({name, support::formatDouble(stats.n.mean(), 2),
                  std::to_string(stats.nHistogram.quantile(0.5)),
                  support::formatDouble(stats.p.mean(), 2),
                  std::to_string(stats.pHistogram.quantile(0.5)), paperN,
                  paperP});
    bench.report().addFigure("table3_1.mean_n." + name, stats.n.mean());
    bench.report().addFigure("table3_1.mean_p." + name, stats.p.mean());
  }
  std::fputs(table.render().c_str(), stdout);

  if (distributions) {
    std::puts("\nFigs 3.3a/b: cumulative distributions of n and p "
              "(fraction of lists with value <= x)");
    for (const auto& [name, stats] : collected) {
      std::printf("  %-8s n: p50=%lld p90=%lld p99=%lld | "
                  "p: p50=%lld p90=%lld p99=%lld\n",
                  name.c_str(),
                  (long long)stats.nHistogram.quantile(0.5),
                  (long long)stats.nHistogram.quantile(0.9),
                  (long long)stats.nHistogram.quantile(0.99),
                  (long long)stats.pHistogram.quantile(0.5),
                  (long long)stats.pHistogram.quantile(0.9),
                  (long long)stats.pHistogram.quantile(0.99));
    }
  }
  std::puts("\npaper: mean p < 3 for all but Editor; Editor's lists are "
            "far longer and\nmore deeply structured than the rest of the "
            "suite. The means are heavy-tailed\n(a few giant accumulators "
            "dominate); the medians are the robust view.");
  return bench.finish(0);
}
