// Microbenchmarks for trace ingestion: the line-oriented text parser vs
// the mmap'd SMTR binary format's batched zero-copy decoder, over the
// same synthetic workload trace. Publishes
// sim.throughput.trace_text_parse_primitives_per_sec and
// sim.throughput.trace_binary_decode_primitives_per_sec so each
// BENCH_<date> summary carries the before/after pair.
//
// SMALL_TRACE_MICRO_PRIMS scales the trace (default 200000 primitive
// calls — sized for the CI smoke run). The headline binary-vs-text ratio
// in BENCH files is measured at 10^7 primitives:
//
//   SMALL_TRACE_MICRO_PRIMS=10000000 ./bench/micro_trace
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "micro_util.hpp"

#include "obs/names.hpp"
#include "trace/binary.hpp"
#include "trace/io.hpp"
#include "trace/preprocess.hpp"
#include "trace/synthetic.hpp"
#include "trace/trace.hpp"

namespace {

using namespace small;

void recordRate(const char* name, std::uint64_t ops,
                std::chrono::steady_clock::time_point start) {
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  if (secs > 0.0 && ops > 0) {
    benchutil::microRegistry().recordMax(
        name, static_cast<std::uint64_t>(static_cast<double>(ops) / secs));
  }
}

/// One shared trace, saved once in both formats; every benchmark reads
/// the same files so the text/binary rates are directly comparable.
struct TraceFiles {
  std::string textPath;
  std::string binaryPath;
  std::uint64_t primitives = 0;

  TraceFiles() {
    std::uint64_t prims = 200000;
    if (const char* env = std::getenv("SMALL_TRACE_MICRO_PRIMS")) {
      const long long parsed = std::atoll(env);
      if (parsed > 0) prims = static_cast<std::uint64_t>(parsed);
    }
    trace::WorkloadProfile profile = trace::slangProfile();
    profile.name = "micro-trace";
    profile.primitiveCalls = prims;
    support::Rng rng(41);
    const trace::Trace trace = trace::generate(profile, rng);
    primitives = trace.content().primitiveCalls;
    const std::string dir = std::filesystem::temp_directory_path().string();
    textPath = dir + "/small_micro_trace.txt.trace";
    binaryPath = dir + "/small_micro_trace.bin.trace";
    trace::saveFile(trace, textPath, trace::FileFormat::kText);
    trace::saveFile(trace, binaryPath, trace::FileFormat::kBinary);
  }
  ~TraceFiles() {
    std::remove(textPath.c_str());
    std::remove(binaryPath.c_str());
  }
};

const TraceFiles& files() {
  static TraceFiles instance;
  return instance;
}

// Baseline: full text parse (getline + tokenize + name interning) into a
// materialized Trace — what every bench paid before the binary format.
void BM_TextParse(benchmark::State& state) {
  const TraceFiles& f = files();
  std::uint64_t prims = 0;
  const auto start = std::chrono::steady_clock::now();
  for (auto _ : state) {
    const trace::Trace trace = trace::loadFile(f.textPath);
    prims += trace.content().primitiveCalls;
    benchmark::DoNotOptimize(trace.events().size());
  }
  recordRate(obs::names::kSimTraceTextParsePrimitivesPerSec, prims, start);
  state.counters["primitives"] = static_cast<double>(f.primitives);
}
BENCHMARK(BM_TextParse)->Unit(benchmark::kMillisecond);

// The contender: mmap the file, decode records in batches into one reused
// caller-owned buffer. No Trace is materialized and no bytes are copied
// out of the mapping except the decoded fields themselves.
void BM_BinaryBatchedDecode(benchmark::State& state) {
  const TraceFiles& f = files();
  std::uint64_t prims = 0;
  std::vector<trace::Event> batch(
      static_cast<std::size_t>(state.range(0)));
  const auto start = std::chrono::steady_clock::now();
  for (auto _ : state) {
    const trace::MappedTrace mapped = trace::MappedTrace::open(f.binaryPath);
    trace::BinaryDecoder decoder(mapped);
    std::uint64_t seen = 0;
    for (std::size_t k = decoder.decodeBatch(batch); k != 0;
         k = decoder.decodeBatch(batch)) {
      for (std::size_t i = 0; i < k; ++i) {
        seen += batch[i].kind == trace::EventKind::kPrimitive ? 1 : 0;
      }
    }
    prims += seen;
    benchmark::DoNotOptimize(seen);
  }
  if (state.range(0) == 1024) {
    recordRate(obs::names::kSimTraceBinaryDecodePrimitivesPerSec, prims,
               start);
  }
  state.counters["primitives"] = static_cast<double>(f.primitives);
}
BENCHMARK(BM_BinaryBatchedDecode)
    ->Arg(64)
    ->Arg(1024)
    ->Arg(8192)
    ->Unit(benchmark::kMillisecond);

// Binary load materialized into a Trace — isolates how much of the text
// parser's cost is format, not materialization.
void BM_BinaryToTrace(benchmark::State& state) {
  const TraceFiles& f = files();
  for (auto _ : state) {
    const trace::Trace trace = trace::loadFile(f.binaryPath);
    benchmark::DoNotOptimize(trace.events().size());
  }
}
BENCHMARK(BM_BinaryToTrace)->Unit(benchmark::kMillisecond);

// End-to-end streaming preprocess (§5.2.1) straight off the mapping —
// the full replay-side ingestion path at O(batch) memory.
void BM_BinaryPreprocessMapped(benchmark::State& state) {
  const TraceFiles& f = files();
  for (auto _ : state) {
    const trace::MappedTrace mapped = trace::MappedTrace::open(f.binaryPath);
    const trace::PreprocessedTrace pre = trace::preprocessMapped(mapped);
    benchmark::DoNotOptimize(pre.events.size());
  }
}
BENCHMARK(BM_BinaryPreprocessMapped)->Unit(benchmark::kMillisecond);

}  // namespace

SMALL_MICRO_MAIN("micro_trace")
