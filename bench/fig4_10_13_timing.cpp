// Figs 4.10-4.13 — timing diagrams for the four primitive operations, and
// the §4.3.2.5 concurrency question: how much EP/LP overlap does the
// partition buy over a Class M (single-processor) organization?
#include <cstdio>

#include "bench_util.hpp"
#include "small/timing.hpp"
#include "support/table.hpp"
#include "trace/preprocess.hpp"

int main(int argc, char** argv) {
  using namespace small;
  benchutil::BenchRun bench("fig4_10_13_timing", argc, argv,
                            {{"--workload"}});
  const bool fromWorkloads = bench.has("--workload");

  core::TimingParams params;
  std::puts("Figs 4.10-4.13: per-operation EP/LP timing diagrams");
  std::puts("(# busy, . waiting, _ EP resumed, ~ LP tail overlapped)\n");
  for (const core::OpTiming& t :
       {core::readListTiming(params), core::accessHitTiming(params),
        core::accessMissTiming(params), core::modifyTiming(params),
        core::consTiming(params), core::compressionTiming(params)}) {
    std::fputs(core::renderTimeline(t).c_str(), stdout);
    std::puts("");
  }

  std::puts("§4.3.2.5: whole-run concurrency (trace-driven op counts)");
  support::TextTable table({"Trace", "EP busy", "EP idle", "LP busy",
                            "EP util", "LP util", "speedup vs Class M"});
  for (const auto& [name, raw] : benchutil::chapter5Traces(
           fromWorkloads, bench.traceRoundTrip())) {
    const auto pre = trace::preprocess(raw);
    core::SimConfig config;
    config.tableSize = 4096;
    const core::SimResult result = core::simulateTrace(config, pre);
    const core::ConcurrencyReport report =
        core::analyzeConcurrency(result, params);
    table.addRow({name, std::to_string(report.epBusy),
                  std::to_string(report.epIdle),
                  std::to_string(report.lpBusy),
                  support::formatPercent(report.epUtilization(), 1),
                  support::formatPercent(report.lpUtilization(), 1),
                  support::formatDouble(report.speedup(), 2) + "x"});
    bench.report().addFigure("fig4_13.speedup." + name, report.speedup());
    bench.report().addFigure("fig4_13.ep_util." + name,
                             report.epUtilization());
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts("\npaper: the partition overlaps LP table maintenance and "
            "refcount bursts with EP\nevaluation; only readlist and "
            "splits stall the EP (§4.3.2.5, §5.3.3).");
  return bench.finish(0);
}
