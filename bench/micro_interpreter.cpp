// Microbenchmarks for the interpreter: eval dispatch, function call
// overhead, deep vs shallow binding lookup (the §2.3.2 trade-off), the
// cost of the trace hook, and the functional machine's heap-touch
// throughput (sim.throughput.cells_touched_per_sec).
#include <benchmark/benchmark.h>

#include <chrono>

#include "micro_util.hpp"

#include "lisp/interpreter.hpp"
#include "lisp/tracer.hpp"
#include "obs/names.hpp"
#include "small/machine.hpp"
#include "trace/trace.hpp"
#include "workloads/driver.hpp"

namespace {

using namespace small;

/// Publish `ops` over the wall-clock since `start` as a sim.throughput.*
/// maximum (the best observed rate across benchmark repetitions). These
/// rates go only into the micro registry — the table/figure benches'
/// --metrics-out must stay deterministic.
void recordRate(const char* name, std::uint64_t ops,
                std::chrono::steady_clock::time_point start) {
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  if (secs > 0.0 && ops > 0) {
    benchutil::microRegistry().recordMax(
        name, static_cast<std::uint64_t>(static_cast<double>(ops) / secs));
  }
}

void BM_EvalArithmetic(benchmark::State& state) {
  sexpr::SymbolTable symbols;
  sexpr::Arena arena;
  lisp::Interpreter interp(arena, symbols);
  sexpr::Reader reader(arena, symbols);
  const sexpr::NodeRef form = reader.readOne("(+ (* 3 4) (- 10 5))");
  for (auto _ : state) {
    benchmark::DoNotOptimize(interp.eval(form));
  }
}
BENCHMARK(BM_EvalArithmetic);

void BM_FunctionCall(benchmark::State& state) {
  sexpr::SymbolTable symbols;
  sexpr::Arena arena;
  lisp::Interpreter interp(arena, symbols);
  interp.run("(defun f (a b) (+ a b))");
  sexpr::Reader reader(arena, symbols);
  const sexpr::NodeRef form = reader.readOne("(f 1 2)");
  for (auto _ : state) {
    benchmark::DoNotOptimize(interp.eval(form));
  }
}
BENCHMARK(BM_FunctionCall);

// The deep-vs-shallow binding ablation: a recursion that binds many
// variables and then reads a non-local from the bottom. Deep binding
// scans the stack; shallow binding reads one cell.
template <lisp::BindingDiscipline Discipline>
void BM_NonLocalLookup(benchmark::State& state) {
  sexpr::SymbolTable symbols;
  sexpr::Arena arena;
  lisp::Interpreter::Options options;
  options.binding = Discipline;
  lisp::Interpreter interp(arena, symbols, options);
  interp.run(R"(
    (setq deep-value 42)
    (defun burrow (k)
      (cond ((= k 0) deep-value)
            (t (burrow (- k 1))))))");
  sexpr::Reader reader(arena, symbols);
  const sexpr::NodeRef form = reader.readOne("(burrow 64)");
  for (auto _ : state) {
    benchmark::DoNotOptimize(interp.eval(form));
  }
}
BENCHMARK(BM_NonLocalLookup<lisp::BindingDiscipline::kDeep>);
BENCHMARK(BM_NonLocalLookup<lisp::BindingDiscipline::kShallow>);
BENCHMARK(BM_NonLocalLookup<lisp::BindingDiscipline::kCachedDeep>);

void BM_ListPrimitives(benchmark::State& state) {
  sexpr::SymbolTable symbols;
  sexpr::Arena arena;
  lisp::Interpreter interp(arena, symbols);
  sexpr::Reader reader(arena, symbols);
  const sexpr::NodeRef form =
      reader.readOne("(cons (car '(a b)) (cdr '(c d)))");
  for (auto _ : state) {
    benchmark::DoNotOptimize(interp.eval(form));
  }
}
BENCHMARK(BM_ListPrimitives);

// Cost of the trace hook: the same form with and without a recorder.
void BM_TraceHookOverhead(benchmark::State& state) {
  sexpr::SymbolTable symbols;
  sexpr::Arena arena;
  lisp::Interpreter interp(arena, symbols);
  sexpr::Reader reader(arena, symbols);
  const sexpr::NodeRef form =
      reader.readOne("(cons (car '(a b)) (cdr '(c d)))");
  trace::Trace traceOut;
  lisp::TraceRecorder recorder(arena, traceOut);
  if (state.range(0)) interp.setTracer(&recorder);
  for (auto _ : state) {
    benchmark::DoNotOptimize(interp.eval(form));
  }
  state.counters["traced"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_TraceHookOverhead)->Arg(0)->Arg(1);

// Functional-machine heap throughput: materialize a nested list and walk
// its spine with car/cdr (splitting every element) so each iteration
// drives a fixed mix of readlist materialization, field-cache hits, and
// heap splits. The rate is physical heap cells touched per second —
// reads + writes from heap::HeapStats — which is exactly the quantity
// the §4.3.2.5 occupancy model is parameterized by.
void BM_ThroughputMachineCellsTouched(benchmark::State& state) {
  sexpr::SymbolTable symbols;
  sexpr::Arena arena;
  sexpr::Reader reader(arena, symbols);
  const sexpr::NodeRef form = reader.readOne(
      "((a (b c) d) (e f) ((g) h i) j k (l m (n (o p)) q) r s (t u) v)");
  core::SmallMachine::Config config;
  config.tableSize = 4096;
  core::SmallMachine machine(config);
  const std::uint64_t touchesBefore = machine.heapStats().touches();
  const auto start = std::chrono::steady_clock::now();
  for (auto _ : state) {
    const core::SmallMachine::Value root = machine.readList(arena, form);
    core::SmallMachine::Value cursor = root;
    machine.retain(cursor);
    while (cursor.isObject()) {
      const core::SmallMachine::Value head = machine.car(cursor);
      if (head.isObject()) machine.release(head);
      const core::SmallMachine::Value next = machine.cdr(cursor);
      machine.release(cursor);
      cursor = next;
    }
    machine.release(root);
    benchmark::DoNotOptimize(machine.entriesInUse());
  }
  const std::uint64_t touches = machine.heapStats().touches() - touchesBefore;
  recordRate(obs::names::kSimCellsTouchedPerSec, touches, start);
}
BENCHMARK(BM_ThroughputMachineCellsTouched);

void BM_WorkloadEndToEnd(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        workloads::runWorkload(workloads::Workload::kPearl));
  }
}
BENCHMARK(BM_WorkloadEndToEnd)->Unit(benchmark::kMillisecond);

}  // namespace

SMALL_MICRO_MAIN("micro_interpreter")
