// Microbenchmarks for the interpreter: eval dispatch, function call
// overhead, deep vs shallow binding lookup (the §2.3.2 trade-off), and
// the cost of the trace hook.
#include <benchmark/benchmark.h>

#include "micro_util.hpp"

#include "lisp/interpreter.hpp"
#include "lisp/tracer.hpp"
#include "trace/trace.hpp"
#include "workloads/driver.hpp"

namespace {

using namespace small;

void BM_EvalArithmetic(benchmark::State& state) {
  sexpr::SymbolTable symbols;
  sexpr::Arena arena;
  lisp::Interpreter interp(arena, symbols);
  sexpr::Reader reader(arena, symbols);
  const sexpr::NodeRef form = reader.readOne("(+ (* 3 4) (- 10 5))");
  for (auto _ : state) {
    benchmark::DoNotOptimize(interp.eval(form));
  }
}
BENCHMARK(BM_EvalArithmetic);

void BM_FunctionCall(benchmark::State& state) {
  sexpr::SymbolTable symbols;
  sexpr::Arena arena;
  lisp::Interpreter interp(arena, symbols);
  interp.run("(defun f (a b) (+ a b))");
  sexpr::Reader reader(arena, symbols);
  const sexpr::NodeRef form = reader.readOne("(f 1 2)");
  for (auto _ : state) {
    benchmark::DoNotOptimize(interp.eval(form));
  }
}
BENCHMARK(BM_FunctionCall);

// The deep-vs-shallow binding ablation: a recursion that binds many
// variables and then reads a non-local from the bottom. Deep binding
// scans the stack; shallow binding reads one cell.
template <lisp::BindingDiscipline Discipline>
void BM_NonLocalLookup(benchmark::State& state) {
  sexpr::SymbolTable symbols;
  sexpr::Arena arena;
  lisp::Interpreter::Options options;
  options.binding = Discipline;
  lisp::Interpreter interp(arena, symbols, options);
  interp.run(R"(
    (setq deep-value 42)
    (defun burrow (k)
      (cond ((= k 0) deep-value)
            (t (burrow (- k 1))))))");
  sexpr::Reader reader(arena, symbols);
  const sexpr::NodeRef form = reader.readOne("(burrow 64)");
  for (auto _ : state) {
    benchmark::DoNotOptimize(interp.eval(form));
  }
}
BENCHMARK(BM_NonLocalLookup<lisp::BindingDiscipline::kDeep>);
BENCHMARK(BM_NonLocalLookup<lisp::BindingDiscipline::kShallow>);
BENCHMARK(BM_NonLocalLookup<lisp::BindingDiscipline::kCachedDeep>);

void BM_ListPrimitives(benchmark::State& state) {
  sexpr::SymbolTable symbols;
  sexpr::Arena arena;
  lisp::Interpreter interp(arena, symbols);
  sexpr::Reader reader(arena, symbols);
  const sexpr::NodeRef form =
      reader.readOne("(cons (car '(a b)) (cdr '(c d)))");
  for (auto _ : state) {
    benchmark::DoNotOptimize(interp.eval(form));
  }
}
BENCHMARK(BM_ListPrimitives);

// Cost of the trace hook: the same form with and without a recorder.
void BM_TraceHookOverhead(benchmark::State& state) {
  sexpr::SymbolTable symbols;
  sexpr::Arena arena;
  lisp::Interpreter interp(arena, symbols);
  sexpr::Reader reader(arena, symbols);
  const sexpr::NodeRef form =
      reader.readOne("(cons (car '(a b)) (cdr '(c d)))");
  trace::Trace traceOut;
  lisp::TraceRecorder recorder(arena, traceOut);
  if (state.range(0)) interp.setTracer(&recorder);
  for (auto _ : state) {
    benchmark::DoNotOptimize(interp.eval(form));
  }
  state.counters["traced"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_TraceHookOverhead)->Arg(0)->Arg(1);

void BM_WorkloadEndToEnd(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        workloads::runWorkload(workloads::Workload::kPearl));
  }
}
BENCHMARK(BM_WorkloadEndToEnd)->Unit(benchmark::kMillisecond);

}  // namespace

SMALL_MICRO_MAIN("micro_interpreter")
