// Fig 3.1 — Execution Frequencies of Primitive Lisp Functions.
//
// Paper: a histogram of the % of all traced calls that are car / cdr /
// cons per workload; the other primitives together cover < 10%.
// Paper shape to reproduce: access primitives dominate everywhere; Slang
// has the highest cons share; Pearl the highest rplac share.
#include <cstdio>

#include "analysis/census.hpp"
#include "bench_util.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace small;
  benchutil::BenchRun bench("fig3_1_primitive_frequencies", argc, argv,
                            {{"--workload"}});
  const bool fromWorkloads = bench.has("--workload");

  std::puts("Fig 3.1: primitive execution frequencies (% of traced calls)");
  support::TextTable table(
      {"Benchmark", "car", "cdr", "cons", "rplaca+rplacd", "other"});
  for (const auto& [name, raw] :
       benchutil::chapter3Traces(
           fromWorkloads, 1.0, bench.traceRoundTrip())) {
    const analysis::PrimitiveCensus census = analysis::censusPrimitives(raw);
    const double car = census.fraction(trace::Primitive::kCar);
    const double cdr = census.fraction(trace::Primitive::kCdr);
    const double cons = census.fraction(trace::Primitive::kCons);
    const double rplac = census.fraction(trace::Primitive::kRplaca) +
                         census.fraction(trace::Primitive::kRplacd);
    table.addRow({name, support::formatPercent(car, 1),
                  support::formatPercent(cdr, 1),
                  support::formatPercent(cons, 1),
                  support::formatPercent(rplac, 1),
                  support::formatPercent(1.0 - car - cdr - cons - rplac, 1)});
    bench.report().addFigure("fig3_1.access_fraction." + name, car + cdr);
    bench.report().addFigure("fig3_1.cons_fraction." + name, cons);
    bench.report().addFigure("fig3_1.rplac_fraction." + name, rplac);
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts("\npaper: car+cdr dominate every trace; Slang has the highest "
            "cons share,\nPearl the highest rplaca/rplacd share "
            "(its data lives in direct-access hunks).");
  return bench.finish(0);
}
