// Table 5.1 — Content of the 4 Traces.
//
// Paper values: Lyra (11907 functions, 160933 primitives, depth 27),
// PlaGen (8173, 34628, 15), Slang (620, 2304, 14), Editor (342, 1437, 29).
#include <cstdio>

#include "bench_util.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace small;
  const bool fromWorkloads = benchutil::hasFlag(argc, argv, "--workload");

  std::puts("Table 5.1: content of the 4 simulation traces");
  support::TextTable table({"Trace", "Functions", "Primitives", "Max Depth",
                            "paper F", "paper P", "paper D"});
  struct PaperRow {
    const char* name;
    const char* functions;
    const char* primitives;
    const char* depth;
  };
  constexpr PaperRow kPaper[] = {
      {"Lyra", "11907", "160933", "27"},
      {"PlaGen", "8173", "34628", "15"},
      {"Slang", "620", "2304", "14"},
      {"Editor", "342", "1437", "29"},
  };
  for (const auto& [name, raw] : benchutil::chapter5Traces(fromWorkloads)) {
    const trace::TraceContent content = raw.content();
    const PaperRow* paper = nullptr;
    for (const PaperRow& row : kPaper) {
      if (name == row.name) paper = &row;
    }
    table.addRow({name, std::to_string(content.functionCalls),
                  std::to_string(content.primitiveCalls),
                  std::to_string(content.maxCallDepth),
                  paper ? paper->functions : "-",
                  paper ? paper->primitives : "-",
                  paper ? paper->depth : "-"});
  }
  std::fputs(table.render().c_str(), stdout);
  return 0;
}
