// Table 5.1 — Content of the 4 Traces.
//
// Paper values: Lyra (11907 functions, 160933 primitives, depth 27),
// PlaGen (8173, 34628, 15), Slang (620, 2304, 14), Editor (342, 1437, 29).
//
// The content scan also validates enter/exit balance: a kFunctionExit at
// depth 0 means the trace is truncated or corrupted, and used to be
// silently clamped. Any unbalanced trace is reported and fails the bench.
#include <cstdio>

#include "bench_util.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace small;
  benchutil::BenchRun bench("table5_1_trace_content", argc, argv,
                            {{"--workload"}});
  const bool fromWorkloads = bench.has("--workload");

  std::puts("Table 5.1: content of the 4 simulation traces");
  support::TextTable table({"Trace", "Functions", "Primitives", "Max Depth",
                            "paper F", "paper P", "paper D"});
  struct PaperRow {
    const char* name;
    const char* functions;
    const char* primitives;
    const char* depth;
  };
  constexpr PaperRow kPaper[] = {
      {"Lyra", "11907", "160933", "27"},
      {"PlaGen", "8173", "34628", "15"},
      {"Slang", "620", "2304", "14"},
      {"Editor", "342", "1437", "29"},
  };
  bool malformed = false;
  for (const auto& [name, raw] : benchutil::chapter5Traces(
           fromWorkloads, bench.traceRoundTrip())) {
    const trace::TraceContent content = raw.content();
    if (!content.balanced()) {
      std::fprintf(stderr,
                   "ERROR: %s has %llu unbalanced function exits — "
                   "truncated or corrupted trace\n",
                   name.c_str(),
                   (unsigned long long)content.unbalancedExits);
      malformed = true;
    }
    const PaperRow* paper = nullptr;
    for (const PaperRow& row : kPaper) {
      if (name == row.name) paper = &row;
    }
    table.addRow({name, std::to_string(content.functionCalls),
                  std::to_string(content.primitiveCalls),
                  std::to_string(content.maxCallDepth),
                  paper ? paper->functions : "-",
                  paper ? paper->primitives : "-",
                  paper ? paper->depth : "-"});
    bench.report().addFigure("table5_1.functions." + name,
                             content.functionCalls);
    bench.report().addFigure("table5_1.primitives." + name,
                             content.primitiveCalls);
  }
  std::fputs(table.render().c_str(), stdout);
  return bench.finish(malformed ? 1 : 0);
}
