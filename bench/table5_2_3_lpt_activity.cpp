// Table 5.2 — LPT Activity (Refops, Gets, Frees, RecRefops), and
// Table 5.3 — Evaluation of Split Reference Counts (Then/Now refops and
// maximum counts).
//
// Paper shapes:
//   5.2 — RecRefops exceed Refops by up to ~47% (Editor); 1-3 refcount
//         ops per primitive; 1-4 gets/frees per function call.
//   5.3 — splitting stack references into an EP-side table cuts LPT
//         refcount traffic by close to an order of magnitude.
#include <cstdio>

#include "bench_util.hpp"
#include "small/simulator.hpp"
#include "support/table.hpp"
#include "trace/preprocess.hpp"

int main(int argc, char** argv) {
  using namespace small;
  const bool fromWorkloads = benchutil::hasFlag(argc, argv, "--workload");

  support::TextTable activity(
      {"Trace", "Refops", "Gets", "Frees", "RecRefops", "refops/prim"});
  support::TextTable split(
      {"Trace", "Refops Then", "Refops Now", "MaxCount Then",
       "MaxCount Now (LPT)", "MaxCount Now (EP)"});

  for (const auto& [name, raw] : benchutil::chapter5Traces(fromWorkloads)) {
    const auto pre = trace::preprocess(raw);

    core::SimConfig lazy;
    lazy.seed = 23;
    const core::SimResult lazyResult = core::simulateTrace(lazy, pre);

    core::SimConfig recursive = lazy;
    recursive.reclaim = core::ReclaimPolicy::kRecursive;
    const core::SimResult recursiveResult =
        core::simulateTrace(recursive, pre);

    core::SimConfig splitMode = lazy;
    splitMode.splitRefCounts = true;
    const core::SimResult splitResult = core::simulateTrace(splitMode, pre);

    activity.addRow(
        {name, std::to_string(lazyResult.lptStats.refOps),
         std::to_string(lazyResult.lptStats.gets),
         std::to_string(lazyResult.lptStats.frees),
         std::to_string(recursiveResult.lptStats.refOps),
         support::formatDouble(
             static_cast<double>(lazyResult.lptStats.refOps) /
                 static_cast<double>(lazyResult.primitivesSimulated),
             2)});

    split.addRow(
        {name, std::to_string(lazyResult.lptStats.refOps),
         std::to_string(splitResult.lptStats.refOps +
                        splitResult.lptStats.stackBitMessages),
         std::to_string(lazyResult.lptStats.maxRefCount),
         std::to_string(splitResult.lptStats.maxRefCount),
         std::to_string(splitResult.lpStats.epMaxRefCount)});
  }

  std::puts("Table 5.2: LPT activity (lazy child decrement vs recursive)");
  std::fputs(activity.render().c_str(), stdout);
  std::puts("paper: Lyra 170232/29746/23006/213532, PlaGen 92414/7248/6971/"
            "106216,\nSlang 6852/1794/573/9580, Editor 4585/233/30/6749 — "
            "RecRefops up to ~47% higher.\n");

  std::puts("Table 5.3: split reference counts (EP-LP bus refcount "
            "traffic)");
  std::fputs(split.render().c_str(), stdout);
  std::puts("paper: Then->Now drops near an order of magnitude (e.g. Lyra "
            "170232 -> 17905).");
  return 0;
}
