// Table 5.2 — LPT Activity (Refops, Gets, Frees, RecRefops), and
// Table 5.3 — Evaluation of Split Reference Counts (Then/Now refops and
// maximum counts).
//
// Paper shapes:
//   5.2 — RecRefops exceed Refops by up to ~47% (Editor); 1-3 refcount
//         ops per primitive; 1-4 gets/frees per function call.
//   5.3 — splitting stack references into an EP-side table cuts LPT
//         refcount traffic by close to an order of magnitude.
//
// Every table cell below is read back from an obs::Registry populated by
// contributeLptStats — the same mem.*/lpt.* names gc_comparison reports
// through (obs/names.hpp) — so the two benches' accounting can never
// drift apart.
#include <cstdio>

#include "bench_util.hpp"
#include "small/simulator.hpp"
#include "support/table.hpp"
#include "trace/preprocess.hpp"

int main(int argc, char** argv) {
  using namespace small;
  benchutil::BenchRun bench("table5_2_3_lpt_activity", argc, argv,
                            {{"--workload"}});
  const bool fromWorkloads = bench.has("--workload");
  const int jobs = bench.jobs();

  const auto pres = benchutil::prepareChapter5(
      fromWorkloads, jobs, bench.traceRoundTrip());

  // Three simulator variants per trace (lazy, recursive reclaim, split
  // reference counts), fanned out one task per (trace x variant) cell.
  constexpr std::size_t kVariants = 3;
  const std::size_t taskCount = pres.size() * kVariants;
  obs::ShardSet shards(taskCount, bench.obsEnabled());
  std::vector<core::SimResult> results(taskCount);
  obs::runIndexedObs(taskCount, jobs, shards, [&](std::size_t id) {
    const std::size_t t = id / kVariants;
    core::SimConfig config;
    config.seed = 23;
    switch (id % kVariants) {
      case 1:
        config.reclaim = core::ReclaimPolicy::kRecursive;
        break;
      case 2:
        config.splitRefCounts = true;
        break;
      default:
        break;
    }
    results[id] = core::simulateTrace(config, pres[t].pre);
    benchutil::contributeSimResult(shards.registryAt(id), results[id]);
  });
  bench.collectShards(shards);

  support::TextTable activity(
      {"Trace", "Refops", "Gets", "Frees", "RecRefops", "refops/prim"});
  support::TextTable split(
      {"Trace", "Refops Then", "Refops Now", "MaxCount Then",
       "MaxCount Now (LPT)", "MaxCount Now (EP)"});

  for (std::size_t t = 0; t < pres.size(); ++t) {
    const std::string& name = pres[t].name;
    const core::SimResult& lazyResult = results[t * kVariants + 0];
    const core::SimResult& recursiveResult = results[t * kVariants + 1];
    const core::SimResult& splitResult = results[t * kVariants + 2];

    // Per-variant registries so the table reads each run's counters under
    // the canonical names rather than reaching into LptStats fields.
    obs::Registry lazyReg, recursiveReg, splitReg;
    obs::contributeLptStats(lazyReg, lazyResult.lptStats);
    obs::contributeLptStats(recursiveReg, recursiveResult.lptStats);
    obs::contributeLptStats(splitReg, splitResult.lptStats);
    obs::contributeLpStats(splitReg, splitResult.lpStats);

    const std::uint64_t refOps =
        lazyReg.counterValue(obs::names::kMemRcOps);
    const std::uint64_t gets = lazyReg.counterValue(obs::names::kMemAllocs);
    const std::uint64_t frees = lazyReg.counterValue(obs::names::kMemFrees);
    const std::uint64_t recRefOps =
        recursiveReg.counterValue(obs::names::kMemRcOps);
    const std::uint64_t splitRefOps =
        splitReg.counterValue(obs::names::kMemRcOps) +
        splitReg.counterValue(obs::names::kLptStackBitMessages);

    activity.addRow(
        {name, std::to_string(refOps), std::to_string(gets),
         std::to_string(frees), std::to_string(recRefOps),
         support::formatDouble(
             static_cast<double>(refOps) /
                 static_cast<double>(lazyResult.primitivesSimulated),
             2)});

    split.addRow(
        {name, std::to_string(refOps), std::to_string(splitRefOps),
         std::to_string(lazyReg.maxValue(obs::names::kLptMaxRefCount)),
         std::to_string(splitReg.maxValue(obs::names::kLptMaxRefCount)),
         std::to_string(splitReg.maxValue(obs::names::kLpEpMaxRefCount))});

    bench.report().addFigure("table5_2.refops." + name, refOps);
    bench.report().addFigure("table5_2.rec_refops." + name, recRefOps);
    bench.report().addFigure("table5_3.refops_now." + name, splitRefOps);
  }

  std::puts("Table 5.2: LPT activity (lazy child decrement vs recursive)");
  std::fputs(activity.render().c_str(), stdout);
  std::puts("paper: Lyra 170232/29746/23006/213532, PlaGen 92414/7248/6971/"
            "106216,\nSlang 6852/1794/573/9580, Editor 4585/233/30/6749 — "
            "RecRefops up to ~47% higher.\n");

  std::puts("Table 5.3: split reference counts (EP-LP bus refcount "
            "traffic)");
  std::fputs(split.render().c_str(), stdout);
  std::puts("paper: Then->Now drops near an order of magnitude (e.g. Lyra "
            "170232 -> 17905).");
  return bench.finish(0);
}
