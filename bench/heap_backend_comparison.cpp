// Heap-backend comparison: the five workload traces replayed through the
// functional SMALL machine on each Chapter 2 list representation.
//
// The machine's logic is representation-independent, so Gets, Frees,
// splits, merges and LPT occupancy are identical for every backend on the
// same trace — the table prints them once per trace as the invariant row.
// What changes is the *physical* heap activity: cell allocations/frees,
// heap touches (reads+writes, the heap-controller occupancy driver), and
// peak live cells. Cdr-coded runs answer most cdrs by address arithmetic
// but pay copy-outs and invisible-pointer hops for rplacd; linked vectors
// pay indirection elements at vector boundaries; two-pointer cells pay a
// full pointer chase per cdr but split/merge trivially (§2.3.3, §4.3.3.2).
//
// The machine-level concurrency model (analyzeMachineConcurrency) then
// converts each backend's measured touches into an EP/LP timing report,
// showing how representation choice moves LP occupancy and speedup.
//
// The (trace x backend) replays are independent (each task owns its
// machine; the preprocessed traces are shared read-only), so they fan out
// through support::runSweep behind --jobs N. Tables are emitted from
// id-ordered slots — byte-identical output at any job count. Any
// cross-backend machine-counter divergence is a correctness failure of
// the representation-independence contract: it is reported on stderr AND
// makes the bench exit nonzero, so CI can gate on it.
#include <cstdio>

#include "bench_util.hpp"
#include "small/machine_replay.hpp"
#include "small/timing.hpp"
#include "support/parallel.hpp"
#include "support/table.hpp"
#include "trace/preprocess.hpp"

int main(int argc, char** argv) {
  using namespace small;
  benchutil::BenchRun bench("heap_backend_comparison", argc, argv,
                            {{"--workload"}});
  const bool fromWorkloads = bench.has("--workload");
  const int jobs = bench.jobs();

  support::TextTable machineTable(
      {"Trace", "Prims", "Gets", "Frees", "Splits", "Merges", "Hits",
       "Peak LPT"});
  support::TextTable heapTable(
      {"Trace", "Backend", "Allocs", "Frees", "Touches", "Splits", "Merges",
       "Peak cells", "LP busy", "Speedup"});

  const auto traces = benchutil::prepareChapter3(
      fromWorkloads, jobs, 1.0, bench.traceRoundTrip());
  constexpr std::size_t kBackendCount =
      std::size(heap::kAllHeapBackendKinds);

  obs::ShardSet shards(traces.size() * kBackendCount, bench.obsEnabled());
  std::vector<core::ReplayResult> results(traces.size() * kBackendCount);
  obs::runIndexedObs(
      traces.size() * kBackendCount, jobs, shards, [&](std::size_t id) {
        core::ReplayConfig config;
        config.seed = 17;
        config.machine.heapBackend =
            heap::kAllHeapBackendKinds[id % kBackendCount];
        // Small enough that the busier traces overflow the table and force
        // Fig 4.8 compression — so the merge path shows up per backend.
        config.machine.tableSize = 512;
        results[id] = core::replayTrace(config, traces[id / kBackendCount].pre);
        if (obs::Registry* r = shards.registryAt(id)) {
          obs::contributeHeapStats(*r, results[id].heap);
        }
      });
  bench.collectShards(shards);

  bool invarianceViolated = false;
  for (std::size_t t = 0; t < traces.size(); ++t) {
    const std::string& name = traces[t].name;
    const core::SmallMachine::Stats& reference =
        results[t * kBackendCount].machine;
    for (std::size_t b = 0; b < kBackendCount; ++b) {
      const core::ReplayResult& result = results[t * kBackendCount + b];
      if (b == 0) {
        machineTable.addRow(
            {name, std::to_string(result.primitives),
             std::to_string(result.machine.gets),
             std::to_string(result.machine.frees),
             std::to_string(result.machine.splits),
             std::to_string(result.machine.merges),
             std::to_string(result.machine.hits),
             std::to_string(result.machine.peakEntriesInUse)});
      } else if (result.machine.gets != reference.gets ||
                 result.machine.frees != reference.frees ||
                 result.machine.splits != reference.splits ||
                 result.machine.merges != reference.merges ||
                 result.machine.hits != reference.hits) {
        std::fprintf(stderr,
                     "ERROR: %s/%s machine counters diverged from the "
                     "two-pointer reference — representation leaked into "
                     "machine logic\n",
                     name.c_str(), result.backend.c_str());
        invarianceViolated = true;
      }

      const core::TimingParams params;
      const core::ConcurrencyReport report =
          core::analyzeMachineConcurrency(result.machine, result.heap,
                                          params);
      heapTable.addRow(
          {name, result.backend, std::to_string(result.heap.allocs),
           std::to_string(result.heap.frees),
           std::to_string(result.heap.touches()),
           std::to_string(result.heap.splits),
           std::to_string(result.heap.merges),
           std::to_string(result.heap.peakLiveCells),
           std::to_string(report.lpBusy),
           support::formatDouble(report.speedup(), 2)});
      bench.report().addFigure(
          "heap.touches." + name + "." + result.backend,
          result.heap.touches());
    }
  }

  std::puts(
      "Machine events per trace (representation-independent: identical on "
      "every backend)");
  std::fputs(machineTable.render().c_str(), stdout);
  std::puts("");
  std::puts("Physical heap activity per backend");
  std::fputs(heapTable.render().c_str(), stdout);
  std::puts(
      "\nshape: same Gets/Frees/splits/merges on all backends; touches and "
      "peak cells differ —\ncdr-coded trades pointer-chase reads for "
      "copy-out writes, linked vectors add boundary\nindirections, "
      "two-pointer pays one dependent read per cdr (§2.3.3).");
  if (invarianceViolated) {
    std::fputs("FAIL: cross-backend machine-counter invariance violated\n",
               stderr);
    return bench.finish(1);
  }
  return bench.finish(0);
}
