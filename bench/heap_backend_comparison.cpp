// Heap-backend comparison: the five workload traces replayed through the
// functional SMALL machine on each Chapter 2 list representation.
//
// The machine's logic is representation-independent, so Gets, Frees,
// splits, merges and LPT occupancy are identical for every backend on the
// same trace — the table prints them once per trace as the invariant row.
// What changes is the *physical* heap activity: cell allocations/frees,
// heap touches (reads+writes, the heap-controller occupancy driver), and
// peak live cells. Cdr-coded runs answer most cdrs by address arithmetic
// but pay copy-outs and invisible-pointer hops for rplacd; linked vectors
// pay indirection elements at vector boundaries; two-pointer cells pay a
// full pointer chase per cdr but split/merge trivially (§2.3.3, §4.3.3.2).
//
// The machine-level concurrency model (analyzeMachineConcurrency) then
// converts each backend's measured touches into an EP/LP timing report,
// showing how representation choice moves LP occupancy and speedup.
#include <cstdio>

#include "bench_util.hpp"
#include "small/machine_replay.hpp"
#include "small/timing.hpp"
#include "support/table.hpp"
#include "trace/preprocess.hpp"

int main(int argc, char** argv) {
  using namespace small;
  const bool fromWorkloads = benchutil::hasFlag(argc, argv, "--workload");

  support::TextTable machineTable(
      {"Trace", "Prims", "Gets", "Frees", "Splits", "Merges", "Hits",
       "Peak LPT"});
  support::TextTable heapTable(
      {"Trace", "Backend", "Allocs", "Frees", "Touches", "Splits", "Merges",
       "Peak cells", "LP busy", "Speedup"});

  for (const auto& [name, raw] : benchutil::chapter3Traces(fromWorkloads)) {
    const trace::PreprocessedTrace pre = trace::preprocess(raw);

    bool machineRowEmitted = false;
    core::SmallMachine::Stats reference;
    for (const heap::HeapBackendKind kind : heap::kAllHeapBackendKinds) {
      core::ReplayConfig config;
      config.seed = 17;
      config.machine.heapBackend = kind;
      // Small enough that the busier traces overflow the table and force
      // Fig 4.8 compression — so the merge path shows up per backend.
      config.machine.tableSize = 512;
      const core::ReplayResult result = core::replayTrace(config, pre);

      if (!machineRowEmitted) {
        reference = result.machine;
        machineTable.addRow(
            {name, std::to_string(result.primitives),
             std::to_string(result.machine.gets),
             std::to_string(result.machine.frees),
             std::to_string(result.machine.splits),
             std::to_string(result.machine.merges),
             std::to_string(result.machine.hits),
             std::to_string(result.machine.peakEntriesInUse)});
        machineRowEmitted = true;
      } else if (result.machine.gets != reference.gets ||
                 result.machine.frees != reference.frees ||
                 result.machine.splits != reference.splits ||
                 result.machine.merges != reference.merges ||
                 result.machine.hits != reference.hits) {
        std::fprintf(stderr,
                     "WARNING: %s/%s machine counters diverged from the "
                     "two-pointer reference — representation leaked into "
                     "machine logic\n",
                     name.c_str(), result.backend.c_str());
      }

      const core::TimingParams params;
      const core::ConcurrencyReport report =
          core::analyzeMachineConcurrency(result.machine, result.heap,
                                          params);
      heapTable.addRow(
          {name, result.backend, std::to_string(result.heap.allocs),
           std::to_string(result.heap.frees),
           std::to_string(result.heap.touches()),
           std::to_string(result.heap.splits),
           std::to_string(result.heap.merges),
           std::to_string(result.heap.peakLiveCells),
           std::to_string(report.lpBusy),
           support::formatDouble(report.speedup(), 2)});
    }
  }

  std::puts(
      "Machine events per trace (representation-independent: identical on "
      "every backend)");
  std::fputs(machineTable.render().c_str(), stdout);
  std::puts("");
  std::puts("Physical heap activity per backend");
  std::fputs(heapTable.render().c_str(), stdout);
  std::puts(
      "\nshape: same Gets/Frees/splits/merges on all backends; touches and "
      "peak cells differ —\ncdr-coded trades pointer-chase reads for "
      "copy-out writes, linked vectors add boundary\nindirections, "
      "two-pointer pays one dependent read per cdr (§2.3.3).");
  return 0;
}
