// Figs 3.8-3.10 — varying the separation constraint (5%..100%) on the
// Slang trace; Figs 3.11-3.13 — a fixed absolute constraint across all
// traces (10% of the shortest trace).
//
// Paper shape: the partition's gross behaviour is stable; smaller windows
// yield more, smaller, shorter-lived list sets; under the fixed absolute
// window Lyra (whose fraction shrinks most) splinters the most.
//
// Each partition run is independent, so the constraint sweep and the
// per-trace fixed-window study fan out through support::runSweep behind
// --jobs N; rows are emitted from id-ordered slots, so the table is
// byte-identical at any job count. Traces are generated and preprocessed
// exactly once and shared read-only (the old code preprocessed Slang twice).
#include <algorithm>
#include <cstdio>

#include "analysis/list_sets.hpp"
#include "bench_util.hpp"
#include "support/parallel.hpp"
#include "support/table.hpp"
#include "trace/preprocess.hpp"

int main(int argc, char** argv) {
  using namespace small;
  benchutil::BenchRun bench("fig3_8_13_sensitivity", argc, argv,
                            {{"--workload"}});
  const bool fromWorkloads = bench.has("--workload");
  const int jobs = bench.jobs();
  const auto traces = benchutil::prepareChapter3(
      fromWorkloads, jobs, 1.0, bench.traceRoundTrip());

  // --- Figs 3.8-3.10: sweep the fractional constraint on Slang ---
  std::puts("Figs 3.8-3.10: varying separation constraint (Slang trace)");
  support::TextTable sweep({"constraint", "sets", "top-10 cover",
                            "sets <10% life", "refs in >60% life"});
  const auto* slang = &traces[0];
  for (const auto& named : traces) {
    if (named.name == "Slang") slang = &named;
  }
  const std::vector<double> fractions = {0.05, 0.10, 0.25, 0.50, 1.00};
  const auto sweepRows = support::runSweep<std::vector<std::string>>(
      fractions, jobs, [&](double fraction, std::size_t) {
        analysis::ListSetOptions options;
        options.separationFraction = fraction;
        const auto partition =
            analysis::partitionListSets(slang->pre, options);
        const auto cumulative = partition.cumulativeReferencesBySetRank();
        std::size_t shortLived = 0;
        std::uint64_t longRefs = 0;
        for (const auto& s : partition.sets) {
          const double life = s.lifetimeFraction(partition.traceLength);
          if (life < 0.10) ++shortLived;
          if (life > 0.60) longRefs += s.references;
        }
        const std::size_t k = std::min<std::size_t>(cumulative.y.size(), 10);
        return std::vector<std::string>{
            support::formatPercent(fraction, 0),
            std::to_string(partition.sets.size()),
            k ? support::formatPercent(cumulative.y[k - 1], 1) : "-",
            partition.sets.empty()
                ? "-"
                : support::formatPercent(static_cast<double>(shortLived) /
                                             partition.sets.size(),
                                         1),
            partition.totalReferences == 0
                ? "-"
                : support::formatPercent(static_cast<double>(longRefs) /
                                             partition.totalReferences,
                                         1)};
      });
  for (const auto& row : sweepRows) sweep.addRow(row);
  std::fputs(sweep.render().c_str(), stdout);
  std::puts("paper: the same general behaviour at every constraint; "
            "smaller windows -> more,\nsmaller list sets; 50% and 100% "
            "are identical.\n");

  // --- Figs 3.11-3.13: fixed absolute constraint across traces ---
  std::uint64_t shortest = ~0ull;
  for (const auto& named : traces) {
    shortest = std::min(shortest, named.raw.primitiveLength());
  }
  const std::uint64_t window = shortest / 10;
  std::printf("Figs 3.11-3.13: fixed separation constraint = %llu "
              "primitive calls (10%% of shortest trace)\n",
              (unsigned long long)window);
  support::TextTable fixed({"Benchmark", "window as % of trace", "sets",
                            "top-100 cover", "sets >50% life"});
  const auto fixedRows = support::runSweep<std::vector<std::string>>(
      traces, jobs, [&](const benchutil::PreparedTrace& named, std::size_t) {
        analysis::ListSetOptions options;
        options.separationAbsolute = window;
        const auto partition =
            analysis::partitionListSets(named.pre, options);
        const auto cumulative = partition.cumulativeReferencesBySetRank();
        const std::size_t k =
            std::min<std::size_t>(cumulative.y.size(), 100);
        std::size_t longLife = 0;
        for (const auto& s : partition.sets) {
          if (s.lifetimeFraction(partition.traceLength) > 0.5) ++longLife;
        }
        return std::vector<std::string>{
            named.name,
            support::formatPercent(static_cast<double>(window) /
                                       static_cast<double>(
                                           named.raw.primitiveLength()),
                                   2),
            std::to_string(partition.sets.size()),
            k ? support::formatPercent(cumulative.y[k - 1], 1) : "-",
            std::to_string(longLife)};
      });
  for (std::size_t i = 0; i < fixedRows.size(); ++i) {
    fixed.addRow(fixedRows[i]);
    bench.report().addFigure("fig3_11.sets." + traces[i].name,
                             static_cast<std::uint64_t>(
                                 std::stoull(fixedRows[i][2])));
  }
  std::fputs(fixed.render().c_str(), stdout);
  std::puts("paper: Lyra shifts hardest toward many small sets (its window "
            "shrank from 10%\nto 0.79%); Slang/PlaGen barely change.");
  return bench.finish(0);
}
