// Chapter 6 extension bench — reference-management message traffic in a
// SMALL Multilisp: plain counting vs reference weighting vs weighting
// with combining queues, across node counts and queue capacities.
//
// Paper shape (Figs 6.2/6.3/6.6): weighting removes all copy messages;
// combining queues absorb the reference-count bursts of function returns.
//
// Each (nodes × queue capacity) simulation owns its node system and an Rng
// seeded by its node count alone, so the runs are independent and fan out
// through support::runSweep behind --jobs N; rows are emitted from
// id-ordered slots, byte-identical at any job count.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "multilisp/nodes.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace small;
  benchutil::BenchRun bench("multilisp_weights", argc, argv, {});
  const int jobs = bench.jobs();

  struct Config {
    std::uint32_t nodes;
    std::size_t queueCapacity;
  };
  std::vector<Config> configs;
  for (const std::uint32_t nodes : {2u, 4u, 8u, 16u}) {
    for (const std::size_t queueCapacity : {8u, 64u, 512u}) {
      configs.push_back({nodes, queueCapacity});
    }
  }

  const auto reports = support::runSweep<multilisp::TrafficReport>(
      configs, jobs, [](const Config& config, std::size_t) {
        support::Rng rng(1000 + config.nodes);
        multilisp::NodeSystem::Params params;
        params.nodeCount = config.nodes;
        params.queueCapacity = config.queueCapacity;
        multilisp::NodeSystem system(params, rng);
        return system.run(100000);
      });

  std::puts("Ch. 6: remote reference-management messages per 100k events");
  support::TextTable table({"nodes", "queue cap", "events", "plain",
                            "weighted", "combined", "saving vs plain"});
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const multilisp::TrafficReport& report = reports[i];
    const double saving =
        report.plainMessages == 0
            ? 0.0
            : 1.0 - static_cast<double>(report.combinedMessages) /
                        static_cast<double>(report.plainMessages);
    table.addRow({std::to_string(configs[i].nodes),
                  std::to_string(configs[i].queueCapacity),
                  std::to_string(report.referenceEvents),
                  std::to_string(report.plainMessages),
                  std::to_string(report.weightedMessages),
                  std::to_string(report.combinedMessages),
                  support::formatPercent(saving, 1)});
    bench.report().addFigure(
        "multilisp.saving.n" + std::to_string(configs[i].nodes) + ".q" +
            std::to_string(configs[i].queueCapacity),
        saving);
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts("\npaper: weighting eliminates the copy-message half of the "
            "traffic outright;\ncombining queues soak up bursty decrements "
            "— deeper queues combine more.");
  return bench.finish(0);
}
