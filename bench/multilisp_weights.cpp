// Chapter 6 extension bench — reference-management message traffic in a
// SMALL Multilisp: plain counting vs reference weighting vs weighting
// with combining queues, across node counts and queue capacities.
//
// Paper shape (Figs 6.2/6.3/6.6): weighting removes all copy messages;
// combining queues absorb the reference-count bursts of function returns.
#include <cstdio>

#include "multilisp/nodes.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

int main() {
  using namespace small;
  std::puts("Ch. 6: remote reference-management messages per 100k events");
  support::TextTable table({"nodes", "queue cap", "events", "plain",
                            "weighted", "combined", "saving vs plain"});
  for (const std::uint32_t nodes : {2u, 4u, 8u, 16u}) {
    for (const std::size_t queueCapacity : {8u, 64u, 512u}) {
      support::Rng rng(1000 + nodes);
      multilisp::NodeSystem::Params params;
      params.nodeCount = nodes;
      params.queueCapacity = queueCapacity;
      multilisp::NodeSystem system(params, rng);
      const multilisp::TrafficReport report = system.run(100000);
      const double saving =
          report.plainMessages == 0
              ? 0.0
              : 1.0 - static_cast<double>(report.combinedMessages) /
                          static_cast<double>(report.plainMessages);
      table.addRow({std::to_string(nodes), std::to_string(queueCapacity),
                    std::to_string(report.referenceEvents),
                    std::to_string(report.plainMessages),
                    std::to_string(report.weightedMessages),
                    std::to_string(report.combinedMessages),
                    support::formatPercent(saving, 1)});
    }
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts("\npaper: weighting eliminates the copy-message half of the "
            "traffic outright;\ncombining queues soak up bursty decrements "
            "— deeper queues combine more.");
  return 0;
}
