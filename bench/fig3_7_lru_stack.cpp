// Fig 3.7 — Distribution of List Set LRU Stack Distances.
//
// Paper shape: "a stack depth of 4 list sets captures from 70-90% of all
// accesses" — list sets are objects of high temporal reference locality.
#include <cstdio>

#include "analysis/list_sets.hpp"
#include "bench_util.hpp"
#include "support/table.hpp"
#include "trace/preprocess.hpp"

int main(int argc, char** argv) {
  using namespace small;
  const bool fromWorkloads = benchutil::hasFlag(argc, argv, "--workload");

  std::puts("Fig 3.7: LRU stack distances over list sets");
  support::TextTable table(
      {"Benchmark", "depth<=1", "depth<=2", "depth<=4", "depth<=8",
       "depth<=16"});
  std::vector<support::Series> curves;
  for (const auto& [name, raw] :
       benchutil::chapter3Traces(fromWorkloads)) {
    const auto pre = trace::preprocess(raw);
    const analysis::ListSetPartition partition =
        analysis::partitionListSets(pre);
    const support::Series cdf = partition.lruDepthCdf(16);
    auto at = [&](std::size_t depth) -> std::string {
      if (cdf.y.size() < depth) return "-";
      return support::formatPercent(cdf.y[depth - 1], 1);
    };
    table.addRow({name, at(1), at(2), at(4), at(8), at(16)});
    support::Series series = cdf;
    series.name = name;
    curves.push_back(std::move(series));
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts("\ncumulative fraction of references vs list-set LRU depth:");
  std::fputs(support::asciiPlot(curves).c_str(), stdout);
  std::puts("paper: depth 4 captures 70-90% of all accesses across the "
            "suite.");
  return 0;
}
