// Fig 3.7 — Distribution of List Set LRU Stack Distances.
//
// Paper shape: "a stack depth of 4 list sets captures from 70-90% of all
// accesses" — list sets are objects of high temporal reference locality.
//
// The per-trace partition+CDF passes are independent over the shared
// preprocessed traces, so they fan out through support::runSweep behind
// --jobs N; table rows and plot curves come from id-ordered slots, so the
// output is byte-identical at any job count.
#include <cstdio>

#include "analysis/list_sets.hpp"
#include "bench_util.hpp"
#include "support/parallel.hpp"
#include "support/table.hpp"
#include "trace/preprocess.hpp"

int main(int argc, char** argv) {
  using namespace small;
  benchutil::BenchRun bench("fig3_7_lru_stack", argc, argv,
                            {{"--workload"}});
  const bool fromWorkloads = bench.has("--workload");
  const int jobs = bench.jobs();

  const auto traces = benchutil::prepareChapter3(
      fromWorkloads, jobs, 1.0, bench.traceRoundTrip());
  const auto cdfs = support::runSweep<support::Series>(
      traces.size(), jobs, [&](std::size_t i) {
        const analysis::ListSetPartition partition =
            analysis::partitionListSets(traces[i].pre);
        support::Series cdf = partition.lruDepthCdf(16);
        cdf.name = traces[i].name;
        return cdf;
      });

  std::puts("Fig 3.7: LRU stack distances over list sets");
  support::TextTable table(
      {"Benchmark", "depth<=1", "depth<=2", "depth<=4", "depth<=8",
       "depth<=16"});
  for (std::size_t i = 0; i < traces.size(); ++i) {
    const support::Series& cdf = cdfs[i];
    auto at = [&](std::size_t depth) -> std::string {
      if (cdf.y.size() < depth) return "-";
      return support::formatPercent(cdf.y[depth - 1], 1);
    };
    table.addRow({traces[i].name, at(1), at(2), at(4), at(8), at(16)});
    if (cdf.y.size() >= 4) {
      bench.report().addFigure("fig3_7.depth4_cover." + traces[i].name,
                               cdf.y[3]);
    }
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts("\ncumulative fraction of references vs list-set LRU depth:");
  std::fputs(support::asciiPlot(cdfs).c_str(), stdout);
  std::puts("paper: depth 4 captures 70-90% of all accesses across the "
            "suite.");
  return bench.finish(0);
}
