// workload_scale — the scenario families under the Chapter 5 LPT
// experiments, next to the paper-distribution baselines.
//
// For each family (agent-loop, thunk-heavy, session-churn) at a
// geometric ladder of scale points up to --scale, this bench reruns the
// Fig 5.1 knee measurement and the Fig 5.3 compression-policy
// comparison and prints them beside the four calibrated thesis
// workloads, so the question "do the paper's LPT-sizing conclusions
// survive off-distribution workloads?" is one table read. The closing
// summary quantifies the drift directly: knee entries per 1000
// primitives, family vs baseline mean.
//
// Every stage fans out through the deterministic sweep runners with
// id-indexed slots and id-derived seeds, so stdout and --metrics-out
// are byte-identical at any --jobs (CI diffs jobs 1 vs 4). In-memory
// scales are capped at 10^7 primitives; the 10^8-10^9 axis is
// tools/trace_gen streaming into SMTR + replay, which does not need a
// Trace in memory at all.
#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"
#include "small/simulator.hpp"
#include "support/parallel.hpp"
#include "support/table.hpp"
#include "trace/preprocess.hpp"
#include "workloads/families/family.hpp"

namespace {

constexpr std::uint64_t kMaxInMemoryScale = 10000000;  // 10^7

struct FamilyPoint {
  small::workloads::families::FamilyKind kind;
  std::uint64_t scale = 0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace small;
  namespace fam = workloads::families;
  benchutil::BenchRun bench(
      "workload_scale", argc, argv,
      {{"--quick"}, {"--scale", true}, {"--seed", true}});
  const bool quick = bench.has("--quick");
  const int jobs = bench.jobs();
  const std::uint64_t scale = bench.countValue(
      "--scale", quick ? 20000 : 100000, fam::kMinScale, kMaxInMemoryScale);
  const std::uint64_t seed =
      bench.countValue("--seed", 2026, 1, ~0ull);

  // Scale ladder: x/16, x/4, x (deduplicated once the floor clamps).
  std::vector<std::uint64_t> points;
  for (const std::uint64_t p :
       {scale / 16, scale / 4, scale}) {
    const std::uint64_t clamped = std::max(p, fam::kMinScale);
    if (points.empty() || points.back() != clamped) {
      points.push_back(clamped);
    }
  }
  std::vector<FamilyPoint> tasks;
  for (const fam::FamilyKind kind : fam::kAllFamilies) {
    for (const std::uint64_t p : points) tasks.push_back({kind, p});
  }

  std::printf("workload_scale: scenario families vs Chapter 5 baselines "
              "(scale %llu)\n",
              static_cast<unsigned long long>(scale));

  // --- generate + preprocess the family traces (baselines in parallel
  // share the same round-trip mode) ---
  const auto baselines = benchutil::prepareChapter5(
      false, jobs, bench.traceRoundTrip());

  std::vector<benchutil::PreparedTrace> famPres(tasks.size());
  std::vector<fam::FamilyStats> famStats(tasks.size());
  obs::ShardSet genShards(tasks.size(), bench.obsEnabled());
  obs::runIndexedObs(tasks.size(), jobs, genShards, [&](std::size_t id) {
    fam::FamilyConfig config;
    config.scale = tasks[id].scale;
    config.seed = support::deriveTaskSeed(seed, id);
    std::vector<benchutil::NamedTrace> one(1);
    one[0].raw = fam::generateTrace(tasks[id].kind, config, &famStats[id]);
    one[0].name = std::string(fam::familyName(tasks[id].kind)) + "/" +
                  std::to_string(tasks[id].scale);
    benchutil::roundTripTraces(one, bench.traceRoundTrip(),
                               "wscale" + std::to_string(id));
    famPres[id].name = std::move(one[0].name);
    famPres[id].pre = trace::preprocess(one[0].raw);
    famPres[id].raw = std::move(one[0].raw);
    if (obs::Registry* registry = genShards.registryAt(id)) {
      obs::contributeFamilyStats(*registry, famStats[id]);
    }
  });
  bench.collectShards(genShards);

  // One combined roster: baselines first, then the family points.
  struct Entry {
    const benchutil::PreparedTrace* pre = nullptr;
    bool baseline = false;
  };
  std::vector<Entry> entries;
  for (const auto& b : baselines) entries.push_back({&b, true});
  for (const auto& f : famPres) entries.push_back({&f, false});

  // --- Fig 5.1 analogue: knees ---
  // With telemetry on, the unconstrained run also records each trace's
  // lpt.occupancy timeline (~96 samples on the primitive epoch clock) —
  // the knee *emergence*: where in the trace the working set grows, not
  // just its peak. One buffer per entry, appended in id order below.
  std::vector<obs::TelemetryBuffer> kneeTelemetry(entries.size());
  if (bench.telemetryEnabled()) {
    for (std::size_t i = 0; i < entries.size(); ++i) {
      kneeTelemetry[i].enable(entries[i].pre->name + "/knee");
    }
  }
  const std::vector<std::uint32_t> knees = support::runSweep<std::uint32_t>(
      entries.size(), jobs, [&](std::size_t id) {
        core::SimConfig big;
        big.tableSize = 1u << 18;
        big.seed = 17;
        const std::uint64_t stride = std::max<std::uint64_t>(
            1, entries[id].pre->pre.primitiveCount / 96);
        return core::simulateTrace(big, entries[id].pre->pre,
                                   &kneeTelemetry[id], stride)
            .peakOccupancy;
      });
  for (const obs::TelemetryBuffer& buffer : kneeTelemetry) {
    bench.telemetry().append(buffer);
  }

  constexpr double kFractions[] = {0.25, 0.5, 0.75, 1.0, 1.25};
  constexpr std::size_t kFractionCount = std::size(kFractions);
  struct Cell {
    std::uint32_t size = 0;
    bool trueOverflow = false;
  };
  const std::vector<Cell> cells = support::runSweep<Cell>(
      entries.size() * kFractionCount, jobs, [&](std::size_t id) {
        const std::size_t entryIdx = id / kFractionCount;
        Cell cell;
        cell.size = std::max<std::uint32_t>(
            8, static_cast<std::uint32_t>(knees[entryIdx] *
                                          kFractions[id % kFractionCount]));
        core::SimConfig config;
        config.tableSize = cell.size;
        config.seed = 17;
        cell.trueOverflow =
            core::simulateTrace(config, entries[entryIdx].pre->pre)
                .trueOverflowOccurred;
        return cell;
      });

  std::puts("\nFig 5.1 analogue: knee and smallest no-true-overflow size");
  support::TextTable kneeTable({"Trace", "primitives", "knee",
                                "no-true-overflow", "knee/1k prim"});
  std::vector<double> kneeRates(entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const auto& pre = *entries[i].pre;
    std::uint32_t smallestNoTrue = 0;
    for (std::size_t f = 0; f < kFractionCount; ++f) {
      const Cell& cell = cells[i * kFractionCount + f];
      if (smallestNoTrue == 0 && !cell.trueOverflow) {
        smallestNoTrue = cell.size;
      }
    }
    const auto primitives =
        static_cast<double>(pre.pre.primitiveCount);
    kneeRates[i] = primitives == 0
                       ? 0.0
                       : 1000.0 * static_cast<double>(knees[i]) /
                             primitives;
    kneeTable.addRow({pre.name,
                      std::to_string(pre.pre.primitiveCount),
                      std::to_string(knees[i]),
                      std::to_string(smallestNoTrue),
                      support::formatDouble(kneeRates[i], 2)});
    bench.report().addFigure("workload.knee." + pre.name,
                             static_cast<std::uint64_t>(knees[i]));
    bench.report().addFigure(
        "workload.smallest_no_true." + pre.name,
        static_cast<std::uint64_t>(smallestNoTrue));
  }
  std::fputs(kneeTable.render().c_str(), stdout);

  // --- Fig 5.3 analogue: compression policies at fractional sizes,
  // family traces only (the baselines' table is fig5_3 itself) ---
  constexpr double kPolicyFractions[] = {0.5, 0.75};
  constexpr core::CompressionPolicy kPolicies[] = {
      core::CompressionPolicy::kCompressOne,
      core::CompressionPolicy::kCompressAll,
      core::CompressionPolicy::kHybrid};
  constexpr std::size_t kPolicyFractionCount = std::size(kPolicyFractions);
  constexpr std::size_t kPolicyCount = std::size(kPolicies);
  const std::size_t policyTasks =
      famPres.size() * kPolicyFractionCount * kPolicyCount;
  obs::ShardSet simShards(policyTasks, bench.obsEnabled());
  std::vector<core::SimResult> results(policyTasks);
  obs::runIndexedObs(policyTasks, jobs, simShards, [&](std::size_t id) {
    const std::size_t famIdx =
        id / (kPolicyFractionCount * kPolicyCount);
    const std::size_t fractionIdx =
        (id / kPolicyCount) % kPolicyFractionCount;
    const std::uint32_t knee = knees[baselines.size() + famIdx];
    core::SimConfig config;
    config.tableSize = std::max<std::uint32_t>(
        8, static_cast<std::uint32_t>(knee *
                                      kPolicyFractions[fractionIdx]));
    config.compression = kPolicies[id % kPolicyCount];
    config.seed = 17;
    results[id] = core::simulateTrace(config, famPres[famIdx].pre);
    benchutil::contributeSimResult(simShards.registryAt(id), results[id]);
  });
  bench.collectShards(simShards);

  std::puts("\nFig 5.3 analogue: average occupancy by compression policy");
  support::TextTable policyTable({"Trace", "table size", "avg occ (One)",
                                  "avg occ (All)", "avg occ (Hybrid)",
                                  "pseudo ovfl (One)"});
  for (std::size_t t = 0; t < famPres.size(); ++t) {
    for (std::size_t f = 0; f < kPolicyFractionCount; ++f) {
      const std::uint32_t knee = knees[baselines.size() + t];
      const auto size = std::max<std::uint32_t>(
          8,
          static_cast<std::uint32_t>(knee * kPolicyFractions[f]));
      const std::size_t base =
          (t * kPolicyFractionCount + f) * kPolicyCount;
      const core::SimResult& one = results[base + 0];
      const core::SimResult& all = results[base + 1];
      const core::SimResult& hybrid = results[base + 2];
      policyTable.addRow(
          {famPres[t].name, std::to_string(size),
           support::formatDouble(one.averageOccupancy, 1),
           support::formatDouble(all.averageOccupancy, 1),
           support::formatDouble(hybrid.averageOccupancy, 1),
           std::to_string(one.lpStats.pseudoOverflows)});
      const std::string suffix =
          famPres[t].name + "." + std::to_string(size);
      bench.report().addFigure("workload.avg_occ_one." + suffix,
                               one.averageOccupancy);
      bench.report().addFigure("workload.avg_occ_all." + suffix,
                               all.averageOccupancy);
      bench.report().addFigure("workload.avg_occ_hybrid." + suffix,
                               hybrid.averageOccupancy);
    }
  }
  std::fputs(policyTable.render().c_str(), stdout);

  // --- off-distribution summary ---
  double baselineRate = 0.0;
  for (std::size_t i = 0; i < baselines.size(); ++i) {
    baselineRate += kneeRates[i];
  }
  baselineRate /= static_cast<double>(baselines.size());
  std::printf("\noff-distribution: knee entries per 1000 primitives, "
              "baseline mean %s\n",
              support::formatDouble(baselineRate, 2).c_str());
  for (std::size_t t = 0; t < famPres.size(); ++t) {
    // Report the largest scale point of each family (every points.size()'th
    // entry starting at points.size() - 1).
    if (t % points.size() != points.size() - 1) continue;
    const double rate = kneeRates[baselines.size() + t];
    std::printf("  %-24s %7s  (%sx baseline)\n",
                famPres[t].name.c_str(),
                support::formatDouble(rate, 2).c_str(),
                support::formatDouble(
                    baselineRate == 0.0 ? 0.0 : rate / baselineRate, 2)
                    .c_str());
    bench.report().addFigure(
        "workload.knee_rate." + famPres[t].name, rate);
  }
  std::puts("\npaper: Fig 5.1's knee plateau and Fig 5.3's modest "
            "One-vs-All gap; the family rows\nshow how far those "
            "conclusions stretch off the thesis' workload "
            "distribution.");
  return bench.finish(0);
}
