// Table 5.4 — Comparison with Data Cache (three sizes per trace), and
// Fig 5.4 — hit-rate-vs-size curves for the Slang trace.
//
// Paper shape: with equal entry counts and unit cache lines, the LPT
// consistently produces more hits; cache misses outnumber LPT misses by
// ~2x across the studied sizes; both converge at large sizes while the
// absolute miss-count gap persists.
//
// The knee runs, the (trace x size) grid and the Fig 5.4 size sweep all
// fan out through support::runSweep behind --jobs N; every row/point is
// read back from its id-indexed slot, so output is byte-identical at any
// job count. Traces are preprocessed once and shared read-only.
#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"
#include "small/simulator.hpp"
#include "support/parallel.hpp"
#include "support/table.hpp"
#include "trace/preprocess.hpp"

int main(int argc, char** argv) {
  using namespace small;
  benchutil::BenchRun bench("table5_4_lpt_vs_cache", argc, argv,
                            {{"--workload"}, {"--sweep"}});
  const bool fromWorkloads = bench.has("--workload");
  const bool sweep = bench.has("--sweep");
  const int jobs = bench.jobs();

  std::puts("Table 5.4: LPT vs fully associative LRU data cache "
            "(unit line, equal entry counts)");
  support::TextTable table({"Trace", "Size", "LPTMisses", "LPT HitRate",
                            "CacheMisses", "Cache HitRate"});

  const auto pres = benchutil::prepareChapter5(
      fromWorkloads, jobs, bench.traceRoundTrip());

  const std::vector<std::uint32_t> knees =
      support::runSweep<std::uint32_t>(pres, jobs, [](const auto& named,
                                                      std::size_t) {
        core::SimConfig big;
        big.tableSize = 1u << 18;
        big.seed = 31;
        return core::simulateTrace(big, named.pre).peakOccupancy;
      });

  // The paper samples three sizes below/around the knee per trace.
  constexpr double kFractions[] = {0.6, 0.85, 1.1};
  constexpr std::size_t kFractionCount = std::size(kFractions);
  struct Cell {
    std::uint32_t size = 0;
    core::SimResult result;
  };
  obs::ShardSet shards(pres.size() * kFractionCount, bench.obsEnabled());
  std::vector<Cell> cells(pres.size() * kFractionCount);
  obs::runIndexedObs(
      pres.size() * kFractionCount, jobs, shards, [&](std::size_t id) {
        const std::size_t traceIdx = id / kFractionCount;
        const double fraction = kFractions[id % kFractionCount];
        Cell& cell = cells[id];
        cell.size = std::max<std::uint32_t>(
            16, static_cast<std::uint32_t>(knees[traceIdx] * fraction));
        core::SimConfig config;
        config.tableSize = cell.size;
        config.driveCache = true;
        config.cacheEntries = cell.size;  // same entry count as the LPT
        config.cacheLineSize = 1;
        config.seed = 31;
        cell.result = core::simulateTrace(config, pres[traceIdx].pre);
        benchutil::contributeSimResult(shards.registryAt(id), cell.result);
      });
  bench.collectShards(shards);
  for (std::size_t t = 0; t < pres.size(); ++t) {
    for (std::size_t f = 0; f < kFractionCount; ++f) {
      const Cell& cell = cells[t * kFractionCount + f];
      table.addRow({pres[t].name, std::to_string(cell.size),
                    std::to_string(cell.result.lptMisses),
                    support::formatPercent(cell.result.lptHitRate, 2),
                    std::to_string(cell.result.cacheMisses),
                    support::formatPercent(cell.result.cacheHitRate, 2)});
      bench.report().addFigure("table5_4.lpt_misses." + pres[t].name + "." +
                                   std::to_string(cell.size),
                               cell.result.lptMisses);
      bench.report().addFigure("table5_4.cache_misses." + pres[t].name +
                                   "." + std::to_string(cell.size),
                               cell.result.cacheMisses);
    }
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts("\npaper: cache misses outnumber LPT misses by at least ~2x "
            "in almost all quoted runs.");

  if (sweep) {
    std::puts("\nFig 5.4: hit rates vs cache/LPT size (Slang trace)");
    const auto* slang = &pres[0];
    for (const auto& entry : pres) {
      if (entry.name == "Slang") slang = &entry;
    }
    const std::vector<std::uint32_t> sizes = {24u,  40u,  64u, 96u,
                                              128u, 192u, 256u};
    const auto points = support::runSweep<core::SimResult>(
        sizes, jobs, [&](std::uint32_t size, std::size_t) {
          core::SimConfig config;
          config.tableSize = size;
          config.driveCache = true;
          config.cacheEntries = size;
          config.seed = 33;
          return core::simulateTrace(config, slang->pre);
        });
    support::Series lptSeries{"LPT", {}, {}};
    support::Series cacheSeries{"cache", {}, {}};
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      lptSeries.add(sizes[i], points[i].lptHitRate);
      cacheSeries.add(sizes[i], points[i].cacheHitRate);
    }
    std::fputs(support::asciiPlot({lptSeries, cacheSeries}).c_str(),
               stdout);
    std::fputs(support::seriesToCsv({lptSeries, cacheSeries}).c_str(),
               stdout);
  }
  return bench.finish(0);
}
