// Table 5.4 — Comparison with Data Cache (three sizes per trace), and
// Fig 5.4 — hit-rate-vs-size curves for the Slang trace.
//
// Paper shape: with equal entry counts and unit cache lines, the LPT
// consistently produces more hits; cache misses outnumber LPT misses by
// ~2x across the studied sizes; both converge at large sizes while the
// absolute miss-count gap persists.
#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"
#include "small/simulator.hpp"
#include "support/table.hpp"
#include "trace/preprocess.hpp"

int main(int argc, char** argv) {
  using namespace small;
  const bool fromWorkloads = benchutil::hasFlag(argc, argv, "--workload");
  const bool sweep = benchutil::hasFlag(argc, argv, "--sweep");

  std::puts("Table 5.4: LPT vs fully associative LRU data cache "
            "(unit line, equal entry counts)");
  support::TextTable table({"Trace", "Size", "LPTMisses", "LPT HitRate",
                            "CacheMisses", "Cache HitRate"});

  std::vector<std::pair<std::string, trace::PreprocessedTrace>> pres;
  for (const auto& [name, raw] : benchutil::chapter5Traces(fromWorkloads)) {
    pres.emplace_back(name, trace::preprocess(raw));
  }

  for (const auto& [name, pre] : pres) {
    core::SimConfig big;
    big.tableSize = 1u << 18;
    big.seed = 31;
    const std::uint32_t knee = core::simulateTrace(big, pre).peakOccupancy;
    // The paper samples three sizes below/around the knee per trace.
    for (const double fraction : {0.6, 0.85, 1.1}) {
      const auto size = std::max<std::uint32_t>(
          16, static_cast<std::uint32_t>(knee * fraction));
      core::SimConfig config;
      config.tableSize = size;
      config.driveCache = true;
      config.cacheEntries = size;  // same number of entries as the LPT
      config.cacheLineSize = 1;
      config.seed = 31;
      const core::SimResult result = core::simulateTrace(config, pre);
      table.addRow({name, std::to_string(size),
                    std::to_string(result.lptMisses),
                    support::formatPercent(result.lptHitRate, 2),
                    std::to_string(result.cacheMisses),
                    support::formatPercent(result.cacheHitRate, 2)});
    }
  }
  std::fputs(table.render().c_str(), stdout);
  std::puts("\npaper: cache misses outnumber LPT misses by at least ~2x "
            "in almost all quoted runs.");

  if (sweep) {
    std::puts("\nFig 5.4: hit rates vs cache/LPT size (Slang trace)");
    const auto* slang = &pres[0];
    for (const auto& entry : pres) {
      if (entry.first == "Slang") slang = &entry;
    }
    support::Series lptSeries{"LPT", {}, {}};
    support::Series cacheSeries{"cache", {}, {}};
    for (const std::uint32_t size : {24u, 40u, 64u, 96u, 128u, 192u, 256u}) {
      core::SimConfig config;
      config.tableSize = size;
      config.driveCache = true;
      config.cacheEntries = size;
      config.seed = 33;
      const core::SimResult result =
          core::simulateTrace(config, slang->second);
      lptSeries.add(size, result.lptHitRate);
      cacheSeries.add(size, result.cacheHitRate);
    }
    std::fputs(support::asciiPlot({lptSeries, cacheSeries}).c_str(),
               stdout);
    std::fputs(support::seriesToCsv({lptSeries, cacheSeries}).c_str(),
               stdout);
  }
  return 0;
}
