// Service-mode throughput — the Ch. 6 multiprocessor SMALL run as a
// long-lived multi-tenant service (multilisp/service.hpp): a fixed
// roster of tenant sessions, each replaying its own workload trace on a
// private SmallMachine while publishing/copying/retiring references into
// one sharded LPT through the weighting + combining-queue protocol. The
// bench sweeps the worker-thread count 1 -> --sessions and reports
// aggregate primitives/sec, lock contention, and weight-queue depth.
//
// Two stats planes, strictly separated:
//   * deterministic (--metrics-out): per-tenant SessionStats and
//     per-shard LPT totals, merged in id order. These are pure functions
//     of (tenant, trace, seed) — the bench re-merges them at every
//     concurrency point and exits nonzero if any point's bytes differ,
//     which is the obs determinism contract extended to real contended
//     threads.
//   * perf (stdout + --perf-out): wall-clock rates, speedups, and the
//     sharded LPT's acquisition/contention counters. Schedule-dependent
//     by nature; never written into --metrics-out.
//
// `--trace-format binary` runs every session from an on-disk SMTR file
// through replayMappedTrace (O(batch) memory); text/direct modes replay
// the in-memory preprocessed traces. Deterministic stats are identical
// in all modes.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <iterator>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "gc/gc.hpp"
#include "multilisp/service.hpp"
#include "workloads/families/family.hpp"
#include "obs/contrib.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"
#include "trace/binary.hpp"

namespace {

using namespace small;

/// What work the tenants replay: the five Ch. 3 paper distributions, the
/// three scenario families (workloads/families/), or both interleaved.
enum class RosterMix { kPaper, kModern, kMixed };

trace::Trace paperTenantTrace(int t, double scale) {
  // Tenants cycle the five Ch. 3 workload profiles, each generated from
  // its own tenant-salted seed so no two tenants replay identical work.
  support::Rng rng(2026 + t);
  const trace::WorkloadProfile profile = [&] {
    switch (t % 5) {
      case 0: return trace::slangProfile(scale);
      case 1: return trace::plagenProfile(scale);
      case 2: return trace::lyraProfile(scale);
      case 3: return trace::editorProfile(scale);
      default: return trace::pearlProfile(scale);
    }
  }();
  trace::Trace raw = trace::generate(profile, rng);
  raw.name = profile.name + "#" + std::to_string(t);
  return raw;
}

trace::Trace familyTenantTrace(int t, double scale) {
  namespace fam = workloads::families;
  const fam::FamilyKind kind =
      fam::kAllFamilies[static_cast<std::size_t>(t) %
                        std::size(fam::kAllFamilies)];
  fam::FamilyConfig config;
  // Match the paper profiles' magnitude: scale 0.05 (quick) ~ 3k
  // primitives per tenant, 0.5 ~ 30k.
  config.scale = std::max<std::uint64_t>(
      fam::kMinScale * 2, static_cast<std::uint64_t>(60000.0 * scale));
  config.seed = static_cast<std::uint64_t>(2026 + t);
  trace::Trace raw = fam::generateTrace(kind, config);
  raw.name = std::string(fam::familyName(kind)) + "#" + std::to_string(t);
  return raw;
}

std::vector<benchutil::NamedTrace> tenantTraces(RosterMix mix, int tenants,
                                                double scale) {
  std::vector<benchutil::NamedTrace> traces;
  traces.reserve(static_cast<std::size_t>(tenants));
  for (int t = 0; t < tenants; ++t) {
    const bool modern =
        mix == RosterMix::kModern || (mix == RosterMix::kMixed && t % 2 == 1);
    trace::Trace raw = modern ? familyTenantTrace(t, scale)
                              : paperTenantTrace(t, scale);
    std::string name = raw.name;
    traces.push_back({std::move(name), std::move(raw)});
  }
  return traces;
}

/// Deterministic shard-merged metrics for one service run: one registry
/// per tenant session, then one per LPT shard, folded in id order.
std::string mergeServiceMetrics(const multilisp::ServiceResult& result,
                                obs::ShardSet& shards, obs::Registry& out) {
  const std::size_t tenants = result.sessions.size();
  for (std::size_t i = 0; i < tenants; ++i) {
    obs::contributeServiceSession(*shards.registryAt(i),
                                  result.sessions[i]);
  }
  for (std::size_t s = 0; s < result.shardLpt.size(); ++s) {
    obs::contributeLptStats(*shards.registryAt(tenants + s),
                            result.shardLpt[s]);
  }
  shards.mergeInto(out);
  return out.exportJsonLines();
}

}  // namespace

int main(int argc, char** argv) {
  benchutil::BenchRun bench(
      "service_throughput", argc, argv,
      {{"--quick"},
       {"--tenants", true},
       {"--shards", true},
       {"--roster", true},
       {"--gc", true},
       // Concurrency and perf-artifact path shape execution, not the
       // experiment: keep them out of the deterministic report config.
       {"--sessions", true, false},
       {"--perf-out", true, false}});

  const bool quick = bench.has("--quick");
  const int tenants = bench.positiveIntValue("--tenants", 8);
  const int shards = bench.positiveIntValue("--shards", 4);
  const int maxSessions =
      bench.positiveIntValue("--sessions", support::hardwareJobs());
  const double scale = quick ? 0.05 : 0.5;

  const RosterMix mix = static_cast<RosterMix>(
      bench.choiceValue("--roster", 0, {"paper", "modern", "mixed"}));

  // Per-session heap reclamation (the machine-side collector policies;
  // the service-layer weighting protocol is unaffected). Part of the
  // experiment, so it lands in the deterministic report config.
  const gc::Policy gcPolicy = [&] {
    switch (bench.choiceValue(
        "--gc", 0, {"none", "marksweep", "generational", "incremental"})) {
      case 1: return gc::Policy::kMarkSweep;
      case 2: return gc::Policy::kGenerational;
      case 3: return gc::Policy::kIncremental;
      default: return gc::Policy::kNone;
    }
  }();

  multilisp::ServiceConfig config;
  config.shardCount = static_cast<std::uint32_t>(shards);
  config.replay.machine.gcPolicy = gcPolicy;
  if (gcPolicy != gc::Policy::kNone) {
    // Low enough that even --quick tenants genuinely collect.
    config.replay.machine.gcTriggerCells = quick ? 512 : 4096;
  }
  // Telemetry plane (--telemetry-out / --trace-out): sample each
  // session's queue depth, held refs and publish totals every 512
  // primitives on the deterministic epoch clock, plus per-shard
  // contention and replay-rate perf tracks. Like --jobs, the stride is
  // fixed — never a config knob — so telemetry bytes are comparable
  // across runs.
  config.telemetryEvery = bench.telemetryEnabled() ? 512 : 0;
  bench.report().setConfig("scale", scale);

  // --- tenant roster (the fixed work; concurrency never changes it) ---
  std::vector<benchutil::NamedTrace> raw = tenantTraces(mix, tenants, scale);
  std::vector<benchutil::PreparedTrace> prepared;
  std::vector<trace::MappedTrace> mapped;
  std::vector<std::filesystem::path> smtrFiles;
  std::vector<multilisp::SessionSource> sources(
      static_cast<std::size_t>(tenants));
  if (bench.traceRoundTrip() == benchutil::TraceRoundTrip::kBinary) {
    // Real SMTR service ingestion: every session streams its trace from
    // an mmap'd file via replayMappedTrace.
    const std::filesystem::path dir =
        std::filesystem::temp_directory_path();
    for (int t = 0; t < tenants; ++t) {
      const std::filesystem::path file =
          dir / ("small_service_" + std::to_string(::getpid()) + "_" +
                 std::to_string(t) + ".smtr");
      trace::saveFile(raw[static_cast<std::size_t>(t)].raw, file.string(),
                      trace::FileFormat::kBinary);
      smtrFiles.push_back(file);
      mapped.push_back(trace::MappedTrace::open(file.string()));
    }
    for (int t = 0; t < tenants; ++t) {
      sources[static_cast<std::size_t>(t)].mapped =
          &mapped[static_cast<std::size_t>(t)];
    }
  } else {
    benchutil::roundTripTraces(raw, bench.traceRoundTrip(), "svc");
    prepared = benchutil::prepareTraces(std::move(raw), bench.jobs());
    for (int t = 0; t < tenants; ++t) {
      sources[static_cast<std::size_t>(t)].pre =
          &prepared[static_cast<std::size_t>(t)].pre;
    }
  }

  // --- concurrency sweep: 1, 2, 4, ... up to --sessions ---
  std::vector<int> points;
  for (int c = 1; c < maxSessions; c *= 2) points.push_back(c);
  points.push_back(maxSessions);

  struct PerfPoint {
    int sessions = 0;
    double wallSeconds = 0.0;
    std::uint64_t primitives = 0;
    std::uint64_t acquisitions = 0;
    std::uint64_t contended = 0;
    std::uint64_t messages = 0;
    std::uint64_t combined = 0;
  };
  std::vector<PerfPoint> perf;
  std::string firstMetrics;
  std::string firstTelemetry;
  multilisp::ServiceResult last;
  obs::ShardSet firstShards(static_cast<std::size_t>(tenants + shards));
  int exitCode = 0;

  for (std::size_t p = 0; p < points.size(); ++p) {
    const int sessions = points[p];
    multilisp::ServiceResult result =
        multilisp::runService(config, sources, sessions);
    if (result.residualObjects != 0 || result.residualEntries != 0) {
      std::fprintf(stderr,
                   "service_throughput: residual objects=%llu entries=%llu "
                   "after shutdown at %d sessions (weight leak)\n",
                   (unsigned long long)result.residualObjects,
                   (unsigned long long)result.residualEntries, sessions);
      exitCode = 1;
    }

    obs::ShardSet shards_(static_cast<std::size_t>(tenants + shards));
    obs::Registry merged;
    const std::string metrics =
        mergeServiceMetrics(result, shards_, merged);
    if (p == 0) {
      firstMetrics = metrics;
      // Keep the point-1 shards for the report: the contract says any
      // point would do, which the byte-diff below proves.
      mergeServiceMetrics(result, firstShards, bench.registry());
    } else if (metrics != firstMetrics) {
      std::fprintf(stderr,
                   "service_throughput: deterministic metrics diverged "
                   "between %d and %d sessions\n",
                   points[0], sessions);
      exitCode = 1;
    }

    // The determinism contract extended to the time axis: the epoch-plane
    // telemetry series (session buffers folded in id order) must render
    // to the same bytes at every concurrency point.
    obs::TelemetryDoc pointTelemetry;
    for (const multilisp::SessionStats& s : result.sessions) {
      pointTelemetry.append(s.telemetry);
    }
    const std::string telemetrySeries = pointTelemetry.renderSeriesLines();
    if (p == 0) {
      firstTelemetry = telemetrySeries;
      for (const multilisp::SessionStats& s : result.sessions) {
        bench.telemetry().append(s.telemetry);
      }
    } else if (telemetrySeries != firstTelemetry) {
      std::fprintf(stderr,
                   "service_throughput: telemetry series diverged "
                   "between %d and %d sessions\n",
                   points[0], sessions);
      exitCode = 1;
    }

    PerfPoint point;
    point.sessions = sessions;
    point.wallSeconds = result.wallSeconds;
    point.primitives = result.totalPrimitives;
    for (const std::uint64_t a : result.shardAcquisitions) {
      point.acquisitions += a;
    }
    for (const std::uint64_t c : result.shardContended) {
      point.contended += c;
    }
    for (const multilisp::SessionStats& s : result.sessions) {
      point.messages += s.queue.messages;
      point.combined += s.queue.combined;
    }
    perf.push_back(point);
    last = std::move(result);
  }
  for (const std::filesystem::path& file : smtrFiles) {
    std::filesystem::remove(file);
  }

  // --- perf plane: stdout table + optional --perf-out report ---
  const double baseRate =
      perf[0].wallSeconds > 0.0
          ? static_cast<double>(perf[0].primitives) / perf[0].wallSeconds
          : 0.0;
  std::printf("Service mode: %d tenants, %d LPT shards, Ch. 6 weighting "
              "with combining queues\n",
              tenants, shards);
  support::TextTable table({"sessions", "wall s", "primitives", "prims/sec",
                            "speedup", "lock acq", "contended", "queue msgs",
                            "combined"});
  for (const PerfPoint& point : perf) {
    const double rate =
        point.wallSeconds > 0.0
            ? static_cast<double>(point.primitives) / point.wallSeconds
            : 0.0;
    char wall[32], rateText[32], speedup[32];
    std::snprintf(wall, sizeof wall, "%.3f", point.wallSeconds);
    std::snprintf(rateText, sizeof rateText, "%.0f", rate);
    std::snprintf(speedup, sizeof speedup, "%.2fx",
                  baseRate > 0.0 ? rate / baseRate : 0.0);
    table.addRow({std::to_string(point.sessions), wall,
                  std::to_string(point.primitives), rateText, speedup,
                  std::to_string(point.acquisitions),
                  std::to_string(point.contended),
                  std::to_string(point.messages),
                  std::to_string(point.combined)});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("\ndeterministic metrics byte-identical across all %zu "
              "session counts: %s\n",
              points.size(), exitCode == 0 ? "yes" : "NO");

  if (const char* perfPath = bench.value("--perf-out")) {
    obs::BenchReport report("service_throughput_perf");
    report.setConfig("tenants", static_cast<std::int64_t>(tenants));
    report.setConfig("shards", static_cast<std::int64_t>(shards));
    report.setConfig("quick", quick);
    report.setConfig("max_sessions",
                     static_cast<std::int64_t>(maxSessions));
    double bestRate = 0.0;
    for (const PerfPoint& point : perf) {
      const double rate =
          point.wallSeconds > 0.0
              ? static_cast<double>(point.primitives) / point.wallSeconds
              : 0.0;
      if (rate > bestRate) bestRate = rate;
      const std::string tag = "s" + std::to_string(point.sessions);
      report.addFigure("svc.throughput." + tag + ".primitives_per_sec",
                       rate);
      report.addFigure("svc.lock." + tag + ".contended",
                       point.contended);
    }
    report.registry().recordMax(obs::names::kSimPrimitivesPerSec,
                                static_cast<std::uint64_t>(bestRate));
    obs::Registry& registry = report.registry();
    support::Histogram& contendedPerShard =
        registry.histogram(obs::names::kSvcLockContendedPerShard);
    for (std::size_t s = 0; s < last.shardContended.size(); ++s) {
      contendedPerShard.add(last.shardContended[s]);
      registry.add(obs::names::kSvcLockAcquisitions,
                   last.shardAcquisitions[s]);
      registry.add(obs::names::kSvcLockContended, last.shardContended[s]);
    }
    if (!report.writeTo(perfPath) && exitCode == 0) exitCode = 1;
  }

  return bench.finish(exitCode);
}
