// Tests for the SMTR binary trace format: lossless mirroring of the text
// format (including every escaping edge case the text loader accepts),
// the mmap-backed batched decoder, the format-sniffing file API, and
// strict rejection of every class of malformed input — each corruption
// must surface as a clean support::Error (no crash or UB; the suite runs
// under ASan/UBSan in CI).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "support/error.hpp"
#include "trace/binary.hpp"
#include "trace/io.hpp"
#include "trace/preprocess.hpp"
#include "trace/synthetic.hpp"
#include "trace/trace.hpp"

namespace small::trace {
namespace {

std::string tempPath(const char* stem) {
  return ::testing::TempDir() + "/small_binary_" + stem + ".trace";
}

Event primitiveEvent(Primitive p, std::vector<ObjectRecord> args,
                     ObjectRecord result) {
  Event event;
  event.kind = EventKind::kPrimitive;
  event.primitive = p;
  event.args = std::move(args);
  event.result = result;
  return event;
}

ObjectRecord listObject(std::uint64_t fp, std::uint32_t n = 3,
                        std::uint32_t p = 0) {
  ObjectRecord record;
  record.fingerprint = fp;
  record.n = n;
  record.p = p;
  record.isList = true;
  return record;
}

void expectTracesEqual(const Trace& a, const Trace& b) {
  EXPECT_EQ(a.name, b.name);
  ASSERT_EQ(a.functionCount(), b.functionCount());
  for (std::size_t id = 0; id < a.functionCount(); ++id) {
    EXPECT_EQ(a.functionName(static_cast<std::uint32_t>(id)),
              b.functionName(static_cast<std::uint32_t>(id)));
  }
  ASSERT_EQ(a.events().size(), b.events().size());
  for (std::size_t i = 0; i < a.events().size(); ++i) {
    const Event& ea = a.events()[i];
    const Event& eb = b.events()[i];
    ASSERT_EQ(ea.kind, eb.kind) << "event " << i;
    if (ea.kind == EventKind::kPrimitive) {
      EXPECT_EQ(ea.primitive, eb.primitive) << "event " << i;
      ASSERT_EQ(ea.args.size(), eb.args.size()) << "event " << i;
      for (std::size_t j = 0; j < ea.args.size(); ++j) {
        EXPECT_EQ(ea.args[j].fingerprint, eb.args[j].fingerprint);
        EXPECT_EQ(ea.args[j].n, eb.args[j].n);
        EXPECT_EQ(ea.args[j].p, eb.args[j].p);
        EXPECT_EQ(ea.args[j].isList, eb.args[j].isList);
      }
      EXPECT_EQ(ea.result.fingerprint, eb.result.fingerprint);
      EXPECT_EQ(ea.result.n, eb.result.n);
      EXPECT_EQ(ea.result.p, eb.result.p);
      EXPECT_EQ(ea.result.isList, eb.result.isList);
    } else {
      EXPECT_EQ(ea.functionId, eb.functionId) << "event " << i;
      EXPECT_EQ(ea.argCount, eb.argCount) << "event " << i;
    }
  }
}

/// A trace exercising every record kind, multi-arg primitives, atoms,
/// and large varint-spanning field values.
Trace sampleTrace() {
  Trace trace;
  trace.name = "binary-sample";
  Event enter;
  enter.kind = EventKind::kFunctionEnter;
  enter.functionId = trace.internFunction("walker");
  enter.argCount = 3;
  trace.append(enter);
  trace.append(primitiveEvent(Primitive::kCons,
                              {listObject(11, 2, 1), listObject(12)},
                              listObject(13, 5, 2)));
  ObjectRecord atom;  // isList = false
  trace.append(primitiveEvent(Primitive::kNull, {listObject(13)}, atom));
  trace.append(primitiveEvent(
      Primitive::kRead, {},
      listObject(0xFFFFFFFFFFFFFFFFull, 0xFFFFFFFFu, 0xFFFFFFFFu)));
  Event exit;
  exit.kind = EventKind::kFunctionExit;
  exit.functionId = 0;
  trace.append(exit);
  return trace;
}

std::string fileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void writeBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// What MappedTrace::open + toTrace say about the bytes, or "" if clean.
std::string binaryError(const std::string& stem, const std::string& bytes) {
  const std::string path = tempPath(stem.c_str());
  writeBytes(path, bytes);
  std::string message;
  try {
    const Trace loaded = MappedTrace::open(path).toTrace();
    (void)loaded;
  } catch (const support::Error& e) {
    message = e.what();
  }
  std::remove(path.c_str());
  return message;
}

bool contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

// --- lossless mirroring ---

TEST(BinaryTrace, RoundTripPreservesEverything) {
  const Trace trace = sampleTrace();
  const std::string path = tempPath("roundtrip");
  saveBinaryFile(trace, path);
  const MappedTrace mapped = MappedTrace::open(path);
  EXPECT_EQ(mapped.version(), kBinaryTraceVersion);
  EXPECT_EQ(mapped.traceName(), "binary-sample");
  EXPECT_EQ(mapped.recordCount(), trace.events().size());
  expectTracesEqual(trace, mapped.toTrace());
  std::remove(path.c_str());
}

TEST(BinaryTrace, MatchesTextRoundTripOnSyntheticWorkload) {
  support::Rng rng(7);
  const Trace trace = generate(slangProfile(0.05), rng);
  const std::string binPath = tempPath("synthetic");
  saveBinaryFile(trace, binPath);
  std::stringstream text;
  save(trace, text);
  const Trace viaText = load(text);
  const Trace viaBinary = MappedTrace::open(binPath).toTrace();
  expectTracesEqual(viaText, viaBinary);
  std::remove(binPath.c_str());
}

TEST(BinaryTrace, EscapedNamesRoundTrip) {
  // The text format percent-escapes these; the binary format is
  // length-prefixed and must carry them verbatim — including control
  // bytes and names that look like record syntax.
  const std::vector<std::string> names = {
      "my func", "weird#name", "100%scheme", "tab\there",
      std::string("ctrl\x01\x02\x7f"), "new\nline", "a b#c%d"};
  Trace trace;
  trace.name = "escaping";
  for (const std::string& name : names) {
    Event enter;
    enter.kind = EventKind::kFunctionEnter;
    enter.functionId = trace.internFunction(name);
    enter.argCount = 1;
    trace.append(enter);
    Event exit;
    exit.kind = EventKind::kFunctionExit;
    exit.functionId = enter.functionId;
    trace.append(exit);
  }
  const std::string path = tempPath("escaped");
  saveBinaryFile(trace, path);
  const Trace loaded = MappedTrace::open(path).toTrace();
  expectTracesEqual(trace, loaded);
  // And the text format agrees after a binary->text cycle (whitespace
  // and syntax characters travel %XX-escaped, other bytes raw).
  std::stringstream text;
  save(loaded, text);
  const Trace viaText = load(text);
  expectTracesEqual(trace, viaText);
  std::remove(path.c_str());
}

TEST(BinaryTrace, ZeroLengthTraceRoundTrips) {
  Trace trace;
  trace.name = "empty-but-named";
  const std::string path = tempPath("zerolen");
  saveBinaryFile(trace, path);
  const MappedTrace mapped = MappedTrace::open(path);
  EXPECT_EQ(mapped.recordCount(), 0u);
  const Trace loaded = mapped.toTrace();
  EXPECT_EQ(loaded.name, "empty-but-named");
  EXPECT_TRUE(loaded.events().empty());
  std::remove(path.c_str());
}

TEST(BinaryTrace, AbsentNameHeaderRoundTrips) {
  // A text trace without a `# name` header loads with an empty name;
  // the binary mirror must preserve that, not invent one.
  std::stringstream text("E f 1\nX f\n");
  const Trace trace = load(text);
  EXPECT_TRUE(trace.name.empty());
  const std::string path = tempPath("noname");
  saveBinaryFile(trace, path);
  const Trace loaded = MappedTrace::open(path).toTrace();
  EXPECT_TRUE(loaded.name.empty());
  expectTracesEqual(trace, loaded);
  std::remove(path.c_str());
}

// --- batched decoding ---

TEST(BinaryTrace, BatchedDecodeMatchesToTraceAtEveryBatchSize) {
  support::Rng rng(9);
  const Trace trace = generate(plagenProfile(0.02), rng);
  const std::string path = tempPath("batched");
  saveBinaryFile(trace, path);
  const MappedTrace mapped = MappedTrace::open(path);
  const Trace whole = mapped.toTrace();
  for (const std::size_t batchSize : {std::size_t{1}, std::size_t{3},
                                      std::size_t{1024}}) {
    BinaryDecoder decoder(mapped);
    std::vector<Event> batch(batchSize);
    std::size_t next = 0;
    for (std::size_t k = decoder.decodeBatch(batch); k != 0;
         k = decoder.decodeBatch(batch)) {
      for (std::size_t i = 0; i < k; ++i, ++next) {
        ASSERT_LT(next, whole.events().size());
        const Event& expected = whole.events()[next];
        const Event& got = batch[i];
        ASSERT_EQ(got.kind, expected.kind);
        if (got.kind == EventKind::kPrimitive) {
          EXPECT_EQ(got.primitive, expected.primitive);
          EXPECT_EQ(got.result.fingerprint, expected.result.fingerprint);
          ASSERT_EQ(got.args.size(), expected.args.size());
        } else {
          EXPECT_EQ(got.functionId, expected.functionId);
          EXPECT_EQ(got.argCount, expected.argCount);
        }
      }
    }
    EXPECT_TRUE(decoder.done());
    EXPECT_EQ(next, whole.events().size());
  }
  std::remove(path.c_str());
}

TEST(BinaryTrace, PreprocessMappedMatchesPreprocess) {
  support::Rng rng(11);
  const Trace trace = generate(editorProfile(0.05), rng);
  const std::string path = tempPath("preprocess");
  saveBinaryFile(trace, path);
  const MappedTrace mapped = MappedTrace::open(path);
  const PreprocessedTrace expected = preprocess(trace);
  const PreprocessedTrace streamed = preprocessMapped(mapped);
  EXPECT_EQ(streamed.name, expected.name);
  EXPECT_EQ(streamed.uniqueListCount, expected.uniqueListCount);
  EXPECT_EQ(streamed.primitiveCount, expected.primitiveCount);
  ASSERT_EQ(streamed.events.size(), expected.events.size());
  for (std::size_t i = 0; i < expected.events.size(); ++i) {
    const PreprocessedEvent& a = expected.events[i];
    const PreprocessedEvent& b = streamed.events[i];
    ASSERT_EQ(a.kind, b.kind) << "event " << i;
    EXPECT_EQ(a.result.id, b.result.id);
    EXPECT_EQ(a.result.chained, b.result.chained);
    ASSERT_EQ(a.args.size(), b.args.size());
    for (std::size_t j = 0; j < a.args.size(); ++j) {
      EXPECT_EQ(a.args[j].id, b.args[j].id);
      EXPECT_EQ(a.args[j].chained, b.args[j].chained);
      EXPECT_EQ(a.args[j].n, b.args[j].n);
      EXPECT_EQ(a.args[j].p, b.args[j].p);
    }
  }
  std::remove(path.c_str());
}

// --- file API dispatch ---

TEST(BinaryTrace, LoadFileSniffsBinary) {
  const Trace trace = sampleTrace();
  const std::string path = tempPath("sniff");
  saveFile(trace, path, FileFormat::kBinary);
  EXPECT_EQ(sniffFileFormat(path), FileFormat::kBinary);
  expectTracesEqual(trace, loadFile(path));
  saveFile(trace, path, FileFormat::kText);
  EXPECT_EQ(sniffFileFormat(path), FileFormat::kText);
  expectTracesEqual(trace, loadFile(path));
  std::remove(path.c_str());
}

TEST(BinaryTrace, EmptyFileIsADistinctError) {
  const std::string path = tempPath("emptyfile");
  writeBytes(path, "");
  try {
    loadFile(path);
    FAIL() << "empty file must not load as an empty trace";
  } catch (const support::Error& e) {
    EXPECT_TRUE(contains(e.what(), "empty trace file")) << e.what();
    EXPECT_TRUE(contains(e.what(), path)) << e.what();
  }
  std::remove(path.c_str());
}

TEST(BinaryTrace, TextParseErrorsCarryThePath) {
  const std::string path = tempPath("badtext");
  writeBytes(path, "E f 1\nQ bogus\n");
  try {
    loadFile(path);
    FAIL() << "malformed text must throw";
  } catch (const support::ParseError& e) {
    EXPECT_TRUE(contains(e.what(), path)) << e.what();
    EXPECT_TRUE(contains(e.what(), "line 2")) << e.what();
  }
  std::remove(path.c_str());
}

TEST(BinaryTrace, SaveFileReportsUnwritablePath) {
  const Trace trace = sampleTrace();
  try {
    saveFile(trace, "/nonexistent/dir/trace.smtr", FileFormat::kBinary);
    FAIL() << "unwritable path must throw";
  } catch (const support::Error& e) {
    EXPECT_TRUE(contains(e.what(), "/nonexistent/dir/trace.smtr"))
        << e.what();
  }
}

// --- robustness: every corruption is a clean support::Error ---

TEST(BinaryRobustness, TruncatedHeader) {
  EXPECT_TRUE(contains(binaryError("trunc1", "SM"), "truncated header"));
  EXPECT_TRUE(
      contains(binaryError("trunc2", "SMTR\x01"), "truncated header"));
  // Magic+version present but the name length varint is missing.
  EXPECT_TRUE(contains(
      binaryError("trunc3", std::string("SMTR\x01\x00\x00\x00", 8)),
      "truncated trace name"));
}

TEST(BinaryRobustness, BadMagic) {
  const std::string error = binaryError("magic", "NOPEnope");
  EXPECT_TRUE(contains(error, "bad magic")) << error;
  EXPECT_TRUE(contains(error, "offset 0")) << error;
}

TEST(BinaryRobustness, UnsupportedVersion) {
  std::string bytes("SMTR", 4);
  bytes += '\x63';  // version 99 LE
  bytes += std::string(3, '\x00');
  bytes += '\x00';  // name length 0
  bytes += '\x00';  // function count 0
  bytes += '\x00';  // record count 0
  const std::string error = binaryError("version", bytes);
  EXPECT_TRUE(contains(error, "unsupported version 99")) << error;
}

TEST(BinaryRobustness, VarintOverrun) {
  std::string bytes("SMTR", 4);
  bytes += '\x01';
  bytes += std::string(3, '\x00');
  bytes += std::string(11, '\xFF');  // name length: endless continuations
  const std::string error = binaryError("varint", bytes);
  EXPECT_TRUE(contains(error, "varint overrun")) << error;
}

TEST(BinaryRobustness, NameTableIndexOutOfRange) {
  // Valid header with one function, then an enter record naming id 5.
  std::string bytes("SMTR", 4);
  bytes += '\x01';
  bytes += std::string(3, '\x00');
  bytes += '\x00';        // trace name: empty
  bytes += '\x01';        // function count 1
  bytes += '\x01';        // name length 1
  bytes += 'f';
  bytes += '\x01';        // record count 1
  bytes += '\x01';        // tag: kind 1 (enter)
  bytes += '\x05';        // functionId 5 — out of range
  bytes += '\x00';        // argCount 0
  const std::string error = binaryError("nameidx", bytes);
  EXPECT_TRUE(contains(error, "function name index 5 out of range"))
      << error;
}

TEST(BinaryRobustness, CorruptedValidFileVariants) {
  const Trace trace = sampleTrace();
  const std::string path = tempPath("mutate");
  saveBinaryFile(trace, path);
  const std::string good = fileBytes(path);
  std::remove(path.c_str());

  // Truncation at every prefix length must throw, never crash. (The
  // 4-to-7-byte prefixes die on the version read, earlier ones on the
  // magic, later ones inside the name table or the record stream.)
  for (std::size_t cut = 0; cut < good.size(); ++cut) {
    if (cut == 0) continue;  // zero bytes => distinct empty-file error
    const std::string error =
        binaryError("cut", good.substr(0, cut));
    EXPECT_FALSE(error.empty()) << "prefix of " << cut << " bytes loaded";
    EXPECT_TRUE(contains(error, "offset")) << error;
  }

  // Trailing garbage after a well-formed stream.
  EXPECT_TRUE(contains(binaryError("trailing", good + "zzz"),
                       "trailing bytes"));

  // A record count larger than the stream.
  std::string inflated = good;
  // The record count varint precedes the first record; find it by
  // re-encoding: sampleTrace has 5 events, encoded as a single byte 0x05.
  const std::size_t pos = inflated.find('\x05', 8);
  ASSERT_NE(pos, std::string::npos);
  inflated[pos] = '\x7F';  // claim 127 records
  EXPECT_TRUE(contains(binaryError("inflated", inflated), "truncated") ||
              contains(binaryError("inflated", inflated),
                       "exceeds remaining"));
}

TEST(BinaryRobustness, MalformedRecordFields) {
  // Shared valid header: no name, one function "f", one record.
  const std::string header = [] {
    std::string bytes("SMTR", 4);
    bytes += '\x01';
    bytes += std::string(3, '\x00');
    bytes += '\x00';
    bytes += '\x01';
    bytes += '\x01';
    bytes += 'f';
    bytes += '\x01';
    return bytes;
  }();

  // Unknown primitive id (bits 2-7 = 40).
  EXPECT_TRUE(contains(
      binaryError("badprim", header + static_cast<char>(40 << 2)),
      "unknown primitive id"));
  // Record kind 3.
  EXPECT_TRUE(contains(binaryError("badkind", header + '\x03'),
                       "unknown record kind"));
  // Nonzero primitive bits on a function record.
  EXPECT_TRUE(contains(
      binaryError("badtag",
                  header + static_cast<char>((1 << 2) | 1) + '\x00' +
                      '\x00'),
      "malformed tag byte"));
  // Enter record with argCount 300.
  std::string bigArgs = header;
  bigArgs += '\x01';  // enter
  bigArgs += '\x00';  // functionId 0
  bigArgs += '\xAC';  // varint 300
  bigArgs += '\x02';
  EXPECT_TRUE(contains(binaryError("bigargs", bigArgs),
                       "argCount 300 out of range"));
  // Primitive whose declared argument count exceeds the file.
  std::string hugeArgs = header;
  hugeArgs += '\x00';  // tag: primitive kCar
  hugeArgs += '\x7F';  // 127 args declared, nothing follows
  EXPECT_TRUE(contains(binaryError("hugeargs", hugeArgs),
                       "exceeds remaining file bytes"));
}

// --- mmap vs read-fallback backing parity ---
//
// MappedTrace::open has two backings (mmap by default, plain buffered
// read as the fallback / explicit kBuffered choice). The format contract
// is that the choice of backing is invisible: same trace, same errors,
// byte-for-byte — including the two historical divergences, zero-length
// files (mmap would EINVAL on Linux) and files truncated to exactly the
// header.

/// Error messages from opening the same bytes through both backings
/// (same path, so the messages can be compared byte-for-byte).
std::pair<std::string, std::string> bothBackingErrors(
    const char* stem, const std::string& bytes) {
  const std::string path = tempPath(stem);
  writeBytes(path, bytes);
  const auto attempt = [&](MappedTrace::Backing backing) {
    std::string message;
    try {
      const Trace loaded = MappedTrace::open(path, backing).toTrace();
      (void)loaded;
    } catch (const support::Error& e) {
      message = e.what();
    }
    return message;
  };
  std::pair<std::string, std::string> errors{
      attempt(MappedTrace::Backing::kDefault),
      attempt(MappedTrace::Backing::kBuffered)};
  std::remove(path.c_str());
  return errors;
}

TEST(BackingParity, BufferedBackingDecodesIdentically) {
  const Trace trace = sampleTrace();
  const std::string path = tempPath("buffered");
  saveBinaryFile(trace, path);
  const MappedTrace buffered =
      MappedTrace::open(path, MappedTrace::Backing::kBuffered);
  EXPECT_FALSE(buffered.isMapped());
  expectTracesEqual(trace, buffered.toTrace());
  expectTracesEqual(trace, MappedTrace::open(path).toTrace());
  std::remove(path.c_str());
}

TEST(BackingParity, ZeroLengthFileSameErrorBothBackings) {
  // mmap(2) of a zero-length file fails with EINVAL on Linux; the empty
  // file must be caught before the map and reported identically to the
  // read fallback.
  const auto [viaMmap, viaRead] = bothBackingErrors("parity_empty", "");
  EXPECT_FALSE(viaMmap.empty());
  EXPECT_EQ(viaMmap, viaRead);
  EXPECT_TRUE(contains(viaMmap, "empty trace file")) << viaMmap;
}

TEST(BackingParity, HeaderOnlyTruncationSameErrorBothBackings) {
  // A file cut to exactly the header: valid magic/version/name/table and
  // a record count promising one record, with zero record bytes behind
  // it. Both backings must fail the record-count bound check with the
  // same message (and not, say, diverge into a short-read error).
  std::string headerOnly("SMTR", 4);
  headerOnly += '\x01';
  headerOnly += std::string(3, '\x00');
  headerOnly += '\x00';  // trace name: empty
  headerOnly += '\x01';  // function count 1
  headerOnly += '\x01';  // name length 1
  headerOnly += 'f';
  headerOnly += '\x01';  // record count 1 — but the file ends here
  const auto [viaMmap, viaRead] =
      bothBackingErrors("parity_header", headerOnly);
  EXPECT_FALSE(viaMmap.empty());
  EXPECT_EQ(viaMmap, viaRead);
  EXPECT_TRUE(contains(viaMmap, "exceeds remaining file bytes"))
      << viaMmap;
}

TEST(BackingParity, EveryTruncationPrefixAgreesAcrossBackings) {
  const Trace trace = sampleTrace();
  const std::string path = tempPath("parity_prefix");
  saveBinaryFile(trace, path);
  const std::string good = fileBytes(path);
  std::remove(path.c_str());
  for (std::size_t cut = 0; cut < good.size(); ++cut) {
    const auto [viaMmap, viaRead] =
        bothBackingErrors("parity_cut", good.substr(0, cut));
    EXPECT_FALSE(viaMmap.empty()) << "prefix of " << cut << " bytes loaded";
    EXPECT_EQ(viaMmap, viaRead) << "backings diverge at prefix " << cut;
  }
}

TEST(BinaryRobustness, ErrorsNameTheFileAndOffset) {
  const std::string path = tempPath("context");
  writeBytes(path, "SMTRxxxx");
  try {
    MappedTrace::open(path);
    FAIL() << "unsupported version must throw";
  } catch (const support::Error& e) {
    EXPECT_TRUE(contains(e.what(), path)) << e.what();
    EXPECT_TRUE(contains(e.what(), "offset")) << e.what();
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace small::trace
