// Tests for the support library: RNG determinism, distributions,
// statistics, and table formatting.
#include <gtest/gtest.h>

#include <cmath>

#include "support/distributions.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace small::support {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, BelowRespectsBound) {
  Rng rng(9);
  for (std::uint64_t bound : {1ull, 2ull, 7ull, 1000ull}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.below(bound), bound);
    }
  }
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(11);
  constexpr int kBuckets = 8;
  int counts[kBuckets] = {};
  constexpr int kDraws = 80000;
  for (int i = 0; i < kDraws; ++i) {
    ++counts[rng.below(kBuckets)];
  }
  for (const int count : counts) {
    EXPECT_NEAR(count, kDraws / kBuckets, kDraws / kBuckets * 0.1);
  }
}

TEST(Rng, ReseedReproduces) {
  Rng rng(5);
  const auto first = rng();
  rng.reseed(5);
  EXPECT_EQ(rng(), first);
}

TEST(EmpiricalDistribution, SamplesOnlyGivenValues) {
  EmpiricalDistribution dist({{1, 1.0}, {5, 2.0}, {9, 1.0}});
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const auto v = dist.sample(rng);
    EXPECT_TRUE(v == 1 || v == 5 || v == 9);
  }
}

TEST(EmpiricalDistribution, MeanMatchesWeights) {
  EmpiricalDistribution dist({{0, 1.0}, {10, 1.0}});
  EXPECT_DOUBLE_EQ(dist.mean(), 5.0);
}

TEST(EmpiricalDistribution, EmpiricalMeanApproachesAnalytic) {
  EmpiricalDistribution dist({{1, 3.0}, {2, 1.0}});
  Rng rng(17);
  double sum = 0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) {
    sum += static_cast<double>(dist.sample(rng));
  }
  EXPECT_NEAR(sum / kDraws, dist.mean(), 0.02);
}

TEST(EmpiricalDistribution, RejectsNegativeWeight) {
  EXPECT_THROW(EmpiricalDistribution({{1, -1.0}}), Error);
}

TEST(EmpiricalDistribution, SampleOfEmptyThrows) {
  EmpiricalDistribution dist;
  Rng rng(1);
  EXPECT_THROW(dist.sample(rng), Error);
}

TEST(GeometricTail, MeanIsOneOverOneMinusRatioish) {
  // For ratio r the untruncated mean is 1/(1-r).
  const auto dist = makeGeometricTail(0.5, 64);
  EXPECT_NEAR(dist.mean(), 2.0, 0.01);
}

TEST(GeometricTail, RejectsBadParameters) {
  EXPECT_THROW(makeGeometricTail(0.0, 10), Error);
  EXPECT_THROW(makeGeometricTail(1.0, 10), Error);
  EXPECT_THROW(makeGeometricTail(0.5, 0), Error);
}

TEST(PointerDistanceModel, NeverReturnsZero) {
  PointerDistanceModel model;
  Rng rng(23);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_NE(model.sampleDistance(rng), 0);
  }
}

TEST(PointerDistanceModel, MassConcentratesNearOne) {
  // Clark: most pointers point a small distance away.
  PointerDistanceModel model;
  Rng rng(29);
  int near = 0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    if (std::llabs(model.sampleDistance(rng)) <= 4) ++near;
  }
  EXPECT_GT(near, kDraws / 2);
}

TEST(RunningStats, MeanAndVariance) {
  RunningStats stats;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    stats.add(x);
  }
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.variance(), 4.571428, 1e-5);
  EXPECT_EQ(stats.min(), 2.0);
  EXPECT_EQ(stats.max(), 9.0);
  EXPECT_EQ(stats.count(), 8u);
}

TEST(RunningStats, EmptyIsSafe) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_EQ(stats.variance(), 0.0);
  EXPECT_EQ(stats.confidenceHalfWidth95(), 0.0);
}

TEST(RunningStats, ConfidenceIntervalUsesStudentTForSmallSamples) {
  // {1,2,3,4}: mean 2.5, sample variance 5/3, s/sqrt(4) = 0.6455.
  // With df = 3 the two-sided 95% critical value is 3.182, so the
  // half-width is 3.182 * 0.6455 = 2.0540 — the z approximation (1.96)
  // would claim a 35% tighter interval than the data supports.
  RunningStats four;
  for (const double x : {1.0, 2.0, 3.0, 4.0}) four.add(x);
  EXPECT_NEAR(four.confidenceHalfWidth95(), 2.0540, 1e-3);

  // n = 2, the most extreme case: s = sqrt(2)/2 per-mean error with
  // t(df=1) = 12.706 -> 12.706 * 1 / sqrt(2) * ... : values {0, 2} have
  // s = sqrt(2), half-width = 12.706 * sqrt(2) / sqrt(2) = 12.706.
  RunningStats two;
  two.add(0.0);
  two.add(2.0);
  EXPECT_NEAR(two.confidenceHalfWidth95(), 12.706, 1e-3);
}

TEST(RunningStats, ConfidenceIntervalFallsBackToNormalAtThirty) {
  // At n >= 30 the normal approximation applies: 30 values with known
  // stddev. Use 15 pairs of (0, 2): mean 1, sample variance 30/29.
  RunningStats stats;
  for (int i = 0; i < 15; ++i) {
    stats.add(0.0);
    stats.add(2.0);
  }
  ASSERT_EQ(stats.count(), 30u);
  const double expected = 1.96 * std::sqrt(30.0 / 29.0) / std::sqrt(30.0);
  EXPECT_NEAR(stats.confidenceHalfWidth95(), expected, 1e-9);

  // One sample fewer uses t(df=28) = 2.048, strictly wider than z.
  RunningStats under;
  for (int i = 0; i < 29; ++i) under.add(i % 2 == 0 ? 0.0 : 2.0);
  const double s29 = under.stddev() / std::sqrt(29.0);
  EXPECT_NEAR(under.confidenceHalfWidth95(), 2.048 * s29, 1e-9);
}

TEST(Histogram, CumulativeFractionAndQuantile) {
  Histogram h;
  h.add(1, 50);
  h.add(2, 30);
  h.add(10, 20);
  EXPECT_DOUBLE_EQ(h.cumulativeFraction(1), 0.5);
  EXPECT_DOUBLE_EQ(h.cumulativeFraction(2), 0.8);
  EXPECT_DOUBLE_EQ(h.cumulativeFraction(10), 1.0);
  EXPECT_EQ(h.quantile(0.5), 1);
  EXPECT_EQ(h.quantile(0.8), 2);
  EXPECT_EQ(h.quantile(1.0), 10);
  EXPECT_NEAR(h.mean(), (50 + 60 + 200) / 100.0, 1e-12);
}

TEST(Histogram, QuantileOfEmptyIsZero) {
  // A run that never collected has a well-defined pause tail: every
  // quantile of the empty histogram is 0, not a throw (the gc_comparison
  // pause table hits this under --quick trigger settings).
  Histogram h;
  EXPECT_EQ(h.quantile(0.5), 0u);
  EXPECT_EQ(h.quantile(1.0), 0u);
  EXPECT_EQ(h.total(), 0u);
}

TEST(Histogram, QuantileRejectsOutOfRangeQ) {
  Histogram h;
  h.add(1, 10);
  EXPECT_THROW(h.quantile(0.0), Error);
  EXPECT_THROW(h.quantile(-0.5), Error);
  EXPECT_THROW(h.quantile(1.5), Error);
}

TEST(Series, CsvRendering) {
  Series s{"hits", {1, 2}, {0.5, 0.75}};
  const std::string csv = seriesToCsv({s});
  EXPECT_NE(csv.find("x,hits"), std::string::npos);
  EXPECT_NE(csv.find("0.75"), std::string::npos);
}

TEST(AsciiPlot, ProducesCanvas) {
  Series s{"line", {0, 1, 2, 3}, {0, 1, 2, 3}};
  const std::string plot = asciiPlot({s}, 20, 10);
  EXPECT_NE(plot.find('*'), std::string::npos);
}

TEST(TextTable, RendersAlignedTable) {
  TextTable table({"Trace", "Refops"});
  table.addRow({"Lyra", "170232"});
  const std::string out = table.render();
  EXPECT_NE(out.find("Lyra"), std::string::npos);
  EXPECT_NE(out.find("Refops"), std::string::npos);
  EXPECT_EQ(table.rowCount(), 1u);
}

TEST(TextTable, RejectsMismatchedRow) {
  TextTable table({"a", "b"});
  EXPECT_THROW(table.addRow({"only-one"}), Error);
}

TEST(Format, DoubleAndPercent) {
  EXPECT_EQ(formatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(formatPercent(0.9827, 2), "98.27%");
}

}  // namespace
}  // namespace small::support
