// Differential tests for the gc subsystem: every collector on every heap
// backend must land on exactly the live set of the LPT reference-counting
// baseline (lazy decrements settled + cycle recovery) for the same mutator
// script — and the SMALL machine must compute identical results whether its
// heap is reclaimed by eager refcount-driven frees or by the mark-sweep
// scavenger.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "gc/collector.hpp"
#include "gc/script.hpp"
#include "small/gc_baseline.hpp"
#include "small/lpt.hpp"
#include "small/machine_replay.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "trace/preprocess.hpp"
#include "trace/synthetic.hpp"

namespace small {
namespace {

struct SharedTrace {
  std::string name;
  trace::PreprocessedTrace pre;
};

// Three workload traces (distinct primitive mixes: Slang is cons-heavy,
// Editor rplac-heavy, Pearl small and destructive), preprocessed once and
// shared by every differential case.
const std::vector<SharedTrace>& sharedTraces() {
  static const std::vector<SharedTrace> traces = [] {
    std::vector<SharedTrace> out;
    support::Rng rng(2026);
    for (const auto& profile :
         {trace::slangProfile(0.05), trace::editorProfile(0.05),
          trace::pearlProfile(1.0)}) {
      out.push_back({profile.name,
                     trace::preprocess(trace::generate(profile, rng))});
    }
    return out;
  }();
  return traces;
}

TEST(GcDifferential, AllCollectorsMatchLptBaselineOnAllBackends) {
  for (const SharedTrace& shared : sharedTraces()) {
    gc::ScriptOptions scriptOptions;
    scriptOptions.cellBudget = 20000;
    const gc::Script script =
        gc::scriptFromTrace(shared.pre, scriptOptions, 11);
    const core::GcBaselineResult baseline = core::runScriptOnLpt(script);

    for (const gc::Policy policy : gc::kAllCollectorPolicies) {
      for (const heap::HeapBackendKind kind : heap::kAllHeapBackendKinds) {
        const auto backend = heap::makeHeapBackend(kind);
        gc::Collector::Options options;
        options.triggerLiveCells = 512;  // several collections per run
        const auto collector = gc::makeCollector(policy, *backend, options);
        const gc::ScriptResult result = gc::runScript(*collector, script);

        const std::string label = shared.name + "/" +
                                  result.collectorName + "/" +
                                  heap::heapBackendName(kind);
        EXPECT_EQ(result.finalLiveCells, baseline.finalLiveEntries)
            << label;
        EXPECT_EQ(result.rootReachable, baseline.rootReachable) << label;
        EXPECT_GT(result.stats.collections, 0u) << label;
        // After the final collection nothing dead remains in the backend
        // (coded backends may keep extra physical cells per logical one:
        // copy-out targets and indirection elements).
        if (kind == heap::HeapBackendKind::kTwoPointer) {
          EXPECT_EQ(backend->cellsLive(), result.finalLiveCells) << label;
        } else {
          EXPECT_GE(backend->cellsLive(), result.finalLiveCells) << label;
        }
      }
    }
  }
}

TEST(GcDifferential, DeferredRcWithoutCycleRecoveryLeaksOnlyCycles) {
  // With the §4.3.2.3-style backstop disabled, deferred RC may strand
  // cyclic garbage but never reclaims live cells — its live set is a
  // superset of the baseline's.
  for (const SharedTrace& shared : sharedTraces()) {
    gc::ScriptOptions scriptOptions;
    scriptOptions.cellBudget = 20000;
    const gc::Script script =
        gc::scriptFromTrace(shared.pre, scriptOptions, 11);
    const core::GcBaselineResult baseline = core::runScriptOnLpt(script);

    const auto backend =
        heap::makeHeapBackend(heap::HeapBackendKind::kTwoPointer);
    gc::Collector::Options options;
    options.triggerLiveCells = 512;
    options.cycleRecovery = false;
    const auto collector =
        gc::makeCollector(gc::Policy::kDeferredRc, *backend, options);
    const gc::ScriptResult result = gc::runScript(*collector, script);
    EXPECT_GE(result.finalLiveCells, baseline.finalLiveEntries)
        << shared.name;
    // Reachability from the roots is unaffected by stranded cycles.
    EXPECT_EQ(result.rootReachable, baseline.rootReachable) << shared.name;
  }
}

TEST(LptBaseline, SettleLazyFreesPerformsDeferredDecrements) {
  // Under the lazy policy, freeing a parent leaves its children counted
  // until the entry is reused; settleLazyFrees performs those deferred
  // decrements immediately, to a fixpoint.
  core::Lpt lpt(16, core::ReclaimPolicy::kLazy);
  const core::EntryId b = lpt.allocate();
  const core::EntryId a = lpt.allocate();
  lpt.entry(a).car = b;
  lpt.incRef(b);
  lpt.incRef(a);
  ASSERT_EQ(lpt.inUseCount(), 2u);

  lpt.decRef(a);  // frees a; b's decrement is deferred
  EXPECT_EQ(lpt.inUseCount(), 1u);

  const std::uint64_t released = lpt.settleLazyFrees();
  EXPECT_GE(released, 1u);
  EXPECT_EQ(lpt.inUseCount(), 0u);
  EXPECT_EQ(lpt.settleLazyFrees(), 0u);  // idempotent once settled
}

TEST(MachineGc, CollectorReplaysMatchRefcountReplay) {
  // The machine's logical behaviour is reclamation-independent: replaying
  // the same trace with any in-machine scavenger (stop-the-world,
  // generational, incremental) must produce exactly the eager-refcount
  // machine counters, on every heap backend, while actually collecting.
  support::Rng rng(7);
  const trace::PreprocessedTrace pre =
      trace::preprocess(trace::generate(trace::slangProfile(0.05), rng));

  const gc::Policy policies[] = {gc::Policy::kMarkSweep,
                                 gc::Policy::kGenerational,
                                 gc::Policy::kIncremental};
  for (const heap::HeapBackendKind kind : heap::kAllHeapBackendKinds) {
    core::ReplayConfig config;
    config.seed = 21;
    config.machine.heapBackend = kind;
    const core::ReplayResult eager = core::replayTrace(config, pre);
    EXPECT_EQ(eager.gcStats.collections, 0u);

    for (const gc::Policy policy : policies) {
      config.machine.gcPolicy = policy;
      config.machine.gcTriggerCells = 512;
      const core::ReplayResult collected = core::replayTrace(config, pre);

      const std::string label = std::string(heap::heapBackendName(kind)) +
                                "/" + gc::policyName(policy);
      EXPECT_EQ(collected.machine.gets, eager.machine.gets) << label;
      EXPECT_EQ(collected.machine.frees, eager.machine.frees) << label;
      EXPECT_EQ(collected.machine.splits, eager.machine.splits) << label;
      EXPECT_EQ(collected.machine.merges, eager.machine.merges) << label;
      EXPECT_EQ(collected.machine.hits, eager.machine.hits) << label;
      EXPECT_EQ(collected.residualEntries, eager.residualEntries) << label;
      EXPECT_EQ(collected.primitives, eager.primitives) << label;
      // ... while the scavenger genuinely ran and reclaimed something.
      EXPECT_GT(collected.gcStats.collections, 0u) << label;
      EXPECT_GT(collected.gcStats.cellsReclaimed, 0u) << label;
      if (policy == gc::Policy::kGenerational) {
        EXPECT_GT(collected.gcStats.minorCollections, 0u) << label;
      }
      if (policy == gc::Policy::kIncremental) {
        EXPECT_GT(collected.gcStats.fullCycles, 0u) << label;
      }
    }
  }
}

TEST(MachineGc, IncrementalBoundsSafepointPauses) {
  // The point of kIncremental: with a touch-unit slice budget, no
  // safepoint pause (including the shutdown sweep's slices) exceeds
  // budget + one trace/sweep unit of overshoot — far below the
  // stop-the-world collector's pauses on the same trace.
  support::Rng rng(7);
  const trace::PreprocessedTrace pre =
      trace::preprocess(trace::generate(trace::slangProfile(0.05), rng));

  core::ReplayConfig config;
  config.seed = 21;
  config.machine.gcPolicy = gc::Policy::kMarkSweep;
  config.machine.gcTriggerCells = 512;
  const core::ReplayResult stw = core::replayTrace(config, pre);
  ASSERT_GT(stw.gcStats.collections, 0u);

  config.machine.gcPolicy = gc::Policy::kIncremental;
  config.machine.gcStepBudget = 256;
  const core::ReplayResult inc = core::replayTrace(config, pre);
  EXPECT_GT(inc.gcStats.fullCycles, 0u);
  // Cycles genuinely ran in multiple bounded slices.
  EXPECT_GT(inc.gcStats.collections, inc.gcStats.fullCycles);
  EXPECT_LT(inc.gcStats.maxPause, stw.gcStats.maxPause);
  EXPECT_LE(inc.gcStats.maxPause, config.machine.gcStepBudget + 64);
}

TEST(MachineGc, DegenerateTriggerClampedToFour) {
  // gcTriggerCells = 0 would arm a collection at every safepoint (and
  // zero the /4-derived anti-thrash guard and minor trigger); the machine
  // clamps anything below 4 up to 4, so 0 and 4 replay identically.
  support::Rng rng(9);
  const trace::PreprocessedTrace pre =
      trace::preprocess(trace::generate(trace::pearlProfile(0.5), rng));

  for (const gc::Policy policy :
       {gc::Policy::kMarkSweep, gc::Policy::kGenerational}) {
    core::ReplayConfig config;
    config.seed = 3;
    config.machine.gcPolicy = policy;
    config.machine.gcTriggerCells = 0;
    const core::ReplayResult degenerate = core::replayTrace(config, pre);
    config.machine.gcTriggerCells = 4;
    const core::ReplayResult clamped = core::replayTrace(config, pre);

    const std::string label = gc::policyName(policy);
    EXPECT_EQ(degenerate.gcStats.collections, clamped.gcStats.collections)
        << label;
    EXPECT_EQ(degenerate.gcStats.totalPause, clamped.gcStats.totalPause)
        << label;
    EXPECT_EQ(degenerate.gcStats.cellsReclaimed,
              clamped.gcStats.cellsReclaimed)
        << label;
    EXPECT_GT(degenerate.gcStats.collections, 0u) << label;
  }
}

TEST(MachineGc, RejectsMovingCollectors) {
  // The LPT pins heap addresses in its entries, so the machine only
  // supports the non-moving scavengers; the relocating/registry-based
  // policies are for the standalone collector harness.
  core::SmallMachine::Config config;
  config.gcPolicy = gc::Policy::kSemispace;
  EXPECT_THROW(core::SmallMachine{config}, support::Error);
  config.gcPolicy = gc::Policy::kDeferredRc;
  EXPECT_THROW(core::SmallMachine{config}, support::Error);
  // The non-moving additions construct fine.
  config.gcPolicy = gc::Policy::kGenerational;
  core::SmallMachine generational{config};
  config.gcPolicy = gc::Policy::kIncremental;
  core::SmallMachine incremental{config};
}

}  // namespace
}  // namespace small
