// Tests for the SMALL-backed emulator, including differential runs
// against the plain emulator over a program battery.
#include <gtest/gtest.h>

#include "sexpr/printer.hpp"
#include "vm/compiler.hpp"
#include "vm/emulator.hpp"
#include "vm/small_emulator.hpp"

namespace small::vm {
namespace {

class SmallVmTest : public ::testing::Test {
 protected:
  std::vector<std::string> runOnSmall(std::string_view source,
                                      std::string_view input = "") {
    Compiler compiler(arena, symbols);
    const Program program = compiler.compile(source);
    SmallEmulator emulator(arena, symbols);
    feed(emulator, input);
    emulator.run(program);
    lastSplits = emulator.machine().stats().splits;
    lastHits = emulator.machine().stats().hits;
    emulator.shutdown();
    lastEntriesAfterShutdown = emulator.machine().entriesInUse();
    lastHeapAfterShutdown = emulator.machine().heapCellsLive();
    return emulator.output();
  }

  std::vector<std::string> runOnPlain(std::string_view source,
                                      std::string_view input = "") {
    Compiler compiler(arena, symbols);
    const Program program = compiler.compile(source);
    Emulator emulator(arena, symbols);
    feed(emulator, input);
    emulator.run(program);
    std::vector<std::string> out;
    for (const auto value : emulator.output()) {
      out.push_back(sexpr::print(arena, symbols, value));
    }
    return out;
  }

  template <typename E>
  void feed(E& emulator, std::string_view input) {
    if (input.empty()) return;
    sexpr::Reader reader(arena, symbols);
    for (const auto form : reader.readAll(input)) {
      emulator.provideInput(form);
    }
  }

  sexpr::SymbolTable symbols;
  sexpr::Arena arena;
  std::uint64_t lastSplits = 0;
  std::uint64_t lastHits = 0;
  std::uint32_t lastEntriesAfterShutdown = 0;
  std::uint64_t lastHeapAfterShutdown = 0;
};

TEST_F(SmallVmTest, FactorialRunsOnTheSmallMachine) {
  const auto out = runOnSmall(R"(
    (def fact (lambda (x)
      (cond ((= x 0) 1)
            (t (* x (fact (- x 1)))))))
    (write (fact 10)))");
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], "3628800");
}

TEST_F(SmallVmTest, ListTraversalSplitsThenHits) {
  const auto out = runOnSmall(R"(
    (def walk (lambda (l)
      (cond ((null l) 0)
            (t (+ 1 (walk (cdr l)))))))
    (prog (x)
      (setq x (quote (a b c d e f)))
      (write (walk x))
      (write (walk x))))");
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], "6");
  EXPECT_EQ(out[1], "6");
  // The second walk re-traverses the same (cached constant) object: its
  // cdr chain is already split, so it hits the LPT fields.
  EXPECT_GT(lastSplits, 0u);
  EXPECT_GE(lastHits, 6u);
}

TEST_F(SmallVmTest, ShutdownDrainsMachine) {
  runOnSmall("(write (cons 1 (quote (2 3))))");
  EXPECT_EQ(lastEntriesAfterShutdown, 0u);
  EXPECT_EQ(lastHeapAfterShutdown, 0u);
}

TEST_F(SmallVmTest, ScavengerPoliciesPreserveProgramOutput) {
  // Build and drop three 40-cons chains through a 24-entry table, so
  // endo-structure is compressed into real heap cells and each dropped
  // chain becomes heap garbage. Run once with eager refcount-driven
  // frees, then once per in-machine scavenger policy: output identical,
  // and each scavenger genuinely collected.
  const char* source = R"(
    (def build (lambda (m)
      (prog (acc n)
        (setq acc nil)
        (setq n m)
        loop
        (cond ((= n 0) (write (car acc)) (return nil)))
        (setq acc (cons n acc))
        (setq n (- n 1))
        (go loop))))
    (build 40)
    (build 40)
    (build 40))";
  Compiler compiler(arena, symbols);
  const Program program = compiler.compile(source);

  SmallEmulator::Options options;
  options.machine.tableSize = 24;
  SmallEmulator eager(arena, symbols, options);
  eager.run(program);
  const std::vector<std::string> reference = eager.output();
  ASSERT_EQ(reference.size(), 3u);
  EXPECT_EQ(eager.gcStats().collections, 0u);

  for (const gc::Policy policy :
       {gc::Policy::kMarkSweep, gc::Policy::kGenerational,
        gc::Policy::kIncremental}) {
    options.machine.gcPolicy = policy;
    options.machine.gcTriggerCells = 16;  // collect often in a small run
    options.machine.gcStepBudget = 64;    // several slices per cycle
    SmallEmulator scavenged(arena, symbols, options);
    scavenged.run(program);
    EXPECT_EQ(scavenged.output(), reference) << gc::policyName(policy);
    EXPECT_GT(scavenged.gcStats().collections, 0u)
        << gc::policyName(policy);
    EXPECT_GT(scavenged.gcStats().cellsReclaimed, 0u)
        << gc::policyName(policy);
    scavenged.shutdown();
    EXPECT_EQ(scavenged.machine().entriesInUse(), 0u)
        << gc::policyName(policy);
    EXPECT_EQ(scavenged.machine().heapCellsLive(), 0u)
        << gc::policyName(policy);
  }
}

TEST_F(SmallVmTest, OutputSnapshotsAtWriteTime) {
  // Unlike the reference emulator (whose outputs are live references),
  // WRLIST here records the printed text immediately, so a later rplacd
  // cannot rewrite history.
  const auto out = runOnSmall(R"(
    (prog (x)
      (setq x (quote (a b c)))
      (rplaca x (quote z))
      (write x)
      (rplacd x (quote (q)))
      (write x)))");
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], "(z b c)");
  EXPECT_EQ(out[1], "(z q)");
}

TEST_F(SmallVmTest, DifferentialAgainstPlainEmulator) {
  struct Case {
    const char* program;
    const char* input;
  };
  const Case cases[] = {
      {"(write (car (quote (a b))))", ""},
      {"(write (cdr (quote (a b))))", ""},
      {"(write (cons (quote x) (cons 1 nil)))", ""},
      {"(write (atom (quote (a))))", ""},
      {"(write (equal (quote (a (b))) (quote (a (b)))))", ""},
      {"(def rev (lambda (l acc)\n"
       "  (cond ((null l) acc)\n"
       "        (t (rev (cdr l) (cons (car l) acc))))))\n"
       "(write (rev (quote (1 2 3 4 5)) nil))",
       ""},
      {"(def app (lambda (a b)\n"
       "  (cond ((null a) b)\n"
       "        (t (cons (car a) (app (cdr a) b))))))\n"
       "(write (app (quote (a b)) (quote (c d))))",
       ""},
      {"(def len (lambda (l)\n"
       "  (cond ((null l) 0) (t (+ 1 (len (cdr l)))))))\n"
       "(prog (x) (setq x (read)) (write (len x)) (write (car x)))",
       "(p q r s)"},
      {"(def fib (lambda (n)\n"
       "  (cond ((< n 2) n)\n"
       "        (t (+ (fib (- n 1)) (fib (- n 2)))))))\n"
       "(write (fib 12))",
       ""},
  };
  for (const Case& c : cases) {
    const auto small = runOnSmall(c.program, c.input);
    const auto plain = runOnPlain(c.program, c.input);
    ASSERT_EQ(small.size(), plain.size()) << c.program;
    for (std::size_t i = 0; i < small.size(); ++i) {
      EXPECT_EQ(small[i], plain[i]) << c.program;
    }
    EXPECT_EQ(lastEntriesAfterShutdown, 0u) << c.program;
  }
}

TEST_F(SmallVmTest, TinyTableCompressesUnderLoad) {
  // An iterative builder: after each (setq acc (cons n acc)) only the new
  // head carries an EP reference; the tail below it is endo-structure the
  // machine can fold into the heap when the table fills. (A *recursive*
  // builder would pin every level through live bindings and genuinely
  // exhaust a 24-entry table — that is the documented failure mode.)
  Compiler compiler(arena, symbols);
  const Program program = compiler.compile(R"(
    (prog (acc n)
      (setq n 40)
      (setq acc nil)
      loop
      (cond ((= n 0) (write acc) (return acc)))
      (setq acc (cons n acc))
      (setq n (- n 1))
      (go loop)))");
  SmallEmulator::Options options;
  options.machine.tableSize = 24;
  SmallEmulator emulator(arena, symbols, options);
  emulator.run(program);
  ASSERT_EQ(emulator.output().size(), 1u);
  EXPECT_EQ(emulator.output()[0].substr(0, 12), "(1 2 3 4 5 6");
  // The 40-cons chain cannot fit in 24 entries: endo-structure must have
  // been compressed into the heap along the way.
  EXPECT_GT(emulator.machine().stats().merges, 0u);
  EXPECT_GT(emulator.machine().stats().pseudoOverflows, 0u);
}

}  // namespace
}  // namespace small::vm
