// End-to-end integration: workload program -> interpreter trace ->
// preprocessing -> Chapter 3 analysis and Chapter 5 simulation.
#include <gtest/gtest.h>

#include "analysis/list_sets.hpp"
#include "small/simulator.hpp"
#include "trace/io.hpp"
#include "trace/preprocess.hpp"
#include "workloads/driver.hpp"

#include <sstream>

namespace small {
namespace {

TEST(Integration, WorkloadTraceThroughWholePipeline) {
  const trace::Trace raw = workloads::runWorkload(workloads::Workload::kLyra);
  ASSERT_GT(raw.primitiveLength(), 1000u);

  // Serialization roundtrip in the middle, as the thesis' tooling did
  // (trace file written by the interpreter, read by the analyses).
  std::stringstream buffer;
  trace::save(raw, buffer);
  const trace::Trace loaded = trace::load(buffer);
  ASSERT_EQ(loaded.primitiveLength(), raw.primitiveLength());

  const trace::PreprocessedTrace pre = trace::preprocess(loaded);
  EXPECT_GT(pre.uniqueListCount, 50u);

  // Chapter 3: the list-set partition shows structural locality.
  const analysis::ListSetPartition partition =
      analysis::partitionListSets(pre);
  ASSERT_FALSE(partition.sets.empty());
  const support::Series cumulative =
      partition.cumulativeReferencesBySetRank();
  // A modest number of list sets covers most references.
  const std::size_t idx =
      std::min<std::size_t>(cumulative.y.size(), 25) - 1;
  EXPECT_GT(cumulative.y[idx], 0.5);

  // Chapter 5: the simulator runs the same trace to completion.
  core::SimConfig config;
  config.tableSize = 2048;
  const core::SimResult result = core::simulateTrace(config, pre);
  EXPECT_EQ(result.primitivesSimulated, pre.primitiveCount);
  EXPECT_FALSE(result.trueOverflowOccurred);
  EXPECT_GT(result.lptHitRate, 0.3);
}

TEST(Integration, AllWorkloadsSimulateCleanly) {
  for (const workloads::Workload w : workloads::kAllWorkloads) {
    const auto pre = trace::preprocess(workloads::runWorkload(w));
    core::SimConfig config;
    config.tableSize = 4096;
    const core::SimResult result = core::simulateTrace(config, pre);
    EXPECT_EQ(result.primitivesSimulated, pre.primitiveCount)
        << workloads::workloadName(w);
    EXPECT_FALSE(result.trueOverflowOccurred) << workloads::workloadName(w);
    // §5.2.2: a few thousand entries suffice — peak stays under the table.
    EXPECT_LT(result.peakOccupancy, 4096u) << workloads::workloadName(w);
  }
}

TEST(Integration, GuaranteedTraversalHitRate) {
  // §5.3.1: an ordered traversal of a list with n atoms and p internal
  // parentheses performs n+p splits and 3(n+p)+1 further contacts — a
  // guaranteed 75% hit rate. Reproduce by driving the LP with an explicit
  // pre-order traversal over the split tree.
  support::Rng rng(3);
  core::SimConfig config;
  config.tableSize = 1 << 16;
  core::ListProcessor lp(config, rng);

  const core::EntryId root = lp.readList(std::nullopt, 12, 3);
  // Full pre-order traversal: visit, then car subtree, then cdr subtree;
  // each internal node is touched three times as in the thesis' analysis.
  std::vector<core::EntryId> stack{root};
  std::vector<core::EntryId> toUnbind;
  while (!stack.empty()) {
    const core::EntryId node = stack.back();
    stack.pop_back();
    if (lp.lpt().entry(node).isAtom) continue;
    const core::AccessResult car = lp.car(node);
    const core::AccessResult cdr = lp.cdr(node);
    // Re-touch the node (its third contact in the traversal sequence).
    lp.car(node);
    if (car.id != core::kNoEntry) {
      stack.push_back(car.id);
      toUnbind.push_back(car.id);
    }
    if (cdr.id != core::kNoEntry) {
      stack.push_back(cdr.id);
      toUnbind.push_back(cdr.id);
    }
  }
  const double hits = static_cast<double>(lp.stats().hits);
  const double total = hits + static_cast<double>(lp.stats().splits);
  // Each split is preceded by... in this scheme every internal node costs
  // 1 split (its first car) and at least 2 hits (cdr + re-car), so the hit
  // rate must be at least 2/3; the thesis' exact schedule gives 75%.
  EXPECT_GE(hits / total, 2.0 / 3.0 - 1e-9);
}

TEST(Integration, SimulationDeterminismAcrossPipelines) {
  // The full pipeline is reproducible end to end: same workload, same
  // seeds -> identical simulator statistics.
  const auto preA =
      trace::preprocess(workloads::runWorkload(workloads::Workload::kSlang));
  const auto preB =
      trace::preprocess(workloads::runWorkload(workloads::Workload::kSlang));
  core::SimConfig config;
  config.seed = 99;
  const auto a = core::simulateTrace(config, preA);
  const auto b = core::simulateTrace(config, preB);
  EXPECT_EQ(a.lptStats.refOps, b.lptStats.refOps);
  EXPECT_EQ(a.lptHits, b.lptHits);
  EXPECT_EQ(a.peakOccupancy, b.peakOccupancy);
}

}  // namespace
}  // namespace small
