// Concurrency stress for the Ch. 6 reference-weighting protocol
// (multilisp/ref_weight.hpp), run under TSan in CI.
//
// The table models one node's object store; concurrent sessions share it
// under the node lock, exactly like the service's per-shard tables. The
// stress biases copies toward freshly split references so weights decay
// to 1 fast and the runs are dense with weight-1 indirection chains —
// the protocol's trickiest path. Invariants proved:
//   * no object (base or indirection) is ever reclaimed while a live
//     reference still reaches it, possibly through a chain of
//     indirections (WeightedObjectTable::resolve throws on a dead hop);
//   * once every reference is destroyed, everything — indirections
//     included — has been reclaimed (liveObjects() == 0).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "multilisp/ref_weight.hpp"
#include "support/rng.hpp"

namespace small::multilisp {
namespace {

TEST(RefWeightStress, ConcurrentCopyDestroyNeverBreaksLiveness) {
  WeightedObjectTable table;
  std::mutex mu;
  const unsigned hw = std::thread::hardware_concurrency();
  const int threadCount = static_cast<int>(hw == 0 ? 4 : (hw < 8 ? hw : 8));
  constexpr int kIters = 4000;
  constexpr std::size_t kMaxHeld = 128;

  // Shared roots: every thread starts holding a split of every root, so
  // cross-thread decrements on the same objects exist from step one.
  std::vector<std::vector<WeightedRef>> held(
      static_cast<std::size_t>(threadCount));
  {
    std::lock_guard<std::mutex> lock(mu);
    for (int r = 0; r < threadCount; ++r) {
      WeightedRef root = table.create();
      for (int t = 1; t < threadCount; ++t) {
        held[static_cast<std::size_t>(t)].push_back(table.copy(root));
      }
      held[0].push_back(root);
    }
  }

  std::atomic<std::uint64_t> deadHops{0};
  std::atomic<std::uint64_t> copies{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < threadCount; ++t) {
    threads.emplace_back([&, t] {
      std::vector<WeightedRef>& refs = held[static_cast<std::size_t>(t)];
      support::Rng rng(0x9e3779b97f4a7c15ull + static_cast<unsigned>(t));
      for (int i = 0; i < kIters; ++i) {
        std::lock_guard<std::mutex> lock(mu);
        if (refs.empty()) {
          refs.push_back(table.create());
          continue;
        }
        if (refs.size() < kMaxHeld && rng.chance(0.6)) {
          // Re-copying the newest reference halves its weight each time:
          // 16 straight copies of a fresh split reach weight 1 and force
          // the indirection path.
          const std::size_t idx = rng.chance(0.5)
                                      ? refs.size() - 1
                                      : static_cast<std::size_t>(
                                            rng.below(refs.size()));
          WeightedRef clone = table.copy(refs[idx]);
          copies.fetch_add(1, std::memory_order_relaxed);
          // The liveness oracle: the fresh reference must reach a live
          // base object through exclusively live hops, right now.
          try {
            (void)table.resolve(clone.object);
          } catch (const support::SimulationError&) {
            deadHops.fetch_add(1, std::memory_order_relaxed);
          }
          refs.push_back(clone);
        } else {
          const std::size_t idx =
              static_cast<std::size_t>(rng.below(refs.size()));
          // Re-check reachability of a reference about to die: destroy
          // must only ever reclaim objects with no other weight out.
          try {
            (void)table.resolve(refs[idx].object);
          } catch (const support::SimulationError&) {
            deadHops.fetch_add(1, std::memory_order_relaxed);
          }
          table.destroy(refs[idx]);
          refs[idx] = refs.back();
          refs.pop_back();
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(deadHops.load(), 0u)
      << "a live reference resolved through a reclaimed object";
  EXPECT_GT(copies.load(), 0u);
  // The decay bias must actually have driven refs through weight 1 —
  // otherwise the test never exercised indirection chains.
  EXPECT_GT(table.stats().indirectionsCreated, 0u);

  // Shutdown: return all outstanding weight; everything must reclaim,
  // indirection objects included.
  {
    std::lock_guard<std::mutex> lock(mu);
    for (std::vector<WeightedRef>& refs : held) {
      for (const WeightedRef& ref : refs) table.destroy(ref);
      refs.clear();
    }
  }
  EXPECT_EQ(table.liveObjects(), 0u)
      << "objects (or indirections) leaked after all references died";
}

}  // namespace
}  // namespace small::multilisp
