// Runs the trace-driven simulator with SMALL_SIM_VERIFY's exhaustive
// invariant checking compiled in (this translation unit is built with the
// flag): after every event, every stack item must reference a live entry,
// the EP-side reference table must agree with the stack, and each entry's
// refcount must equal its field references plus EP references. Any
// violation aborts.
#include <gtest/gtest.h>

#include "small/simulator.hpp"
#include "support/rng.hpp"
#include "trace/preprocess.hpp"
#include "trace/synthetic.hpp"

namespace small::core {
namespace {

struct VerifyCase {
  const char* name;
  std::uint32_t tableSize;
  bool splitRefCounts;
  ReclaimPolicy reclaim;
};

class VerifiedSim : public ::testing::TestWithParam<VerifyCase> {};

TEST_P(VerifiedSim, InvariantsHoldThroughoutTheRun) {
  const VerifyCase& c = GetParam();
  support::Rng rng(99);
  const auto pre =
      trace::preprocess(trace::generate(trace::slangProfile(0.3), rng));
  SimConfig config;
  config.tableSize = c.tableSize;
  config.splitRefCounts = c.splitRefCounts;
  config.reclaim = c.reclaim;
  config.seed = 11;
  const SimResult result = simulateTrace(config, pre);
  EXPECT_EQ(result.primitivesSimulated, pre.primitiveCount);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, VerifiedSim,
    ::testing::Values(
        VerifyCase{"roomy", 4096, false, ReclaimPolicy::kLazy},
        VerifyCase{"tight", 48, false, ReclaimPolicy::kLazy},
        VerifyCase{"recursive", 4096, false, ReclaimPolicy::kRecursive},
        VerifyCase{"splitcounts", 4096, true, ReclaimPolicy::kLazy},
        VerifyCase{"tightsplit", 48, true, ReclaimPolicy::kLazy}),
    [](const ::testing::TestParamInfo<VerifyCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace small::core
