// Tests for the deterministic parallel sweep runner: slot ordering
// independent of completion order, per-task seed derivation, the serial
// jobs==1 reference path, and first-failure exception capture.
//
// This suite is also the one CI runs under -fsanitize=thread: every
// shared-state pattern the benches rely on (read-only shared inputs,
// id-indexed result slots) is exercised here across many worker threads.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "support/parallel.hpp"

namespace small::support {
namespace {

TEST(Parallel, HardwareJobsIsPositive) {
  EXPECT_GE(hardwareJobs(), 1);
}

TEST(Parallel, RunsEveryTaskExactlyOnce) {
  for (const int jobs : {1, 2, 8}) {
    std::vector<std::atomic<int>> hits(97);
    runIndexed(hits.size(), jobs,
               [&](std::size_t id) { hits[id].fetch_add(1); });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(Parallel, ZeroTasksIsANoop) {
  bool ran = false;
  runIndexed(0, 8, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(Parallel, ResultSlotsAreIndexedByTaskId) {
  // Delay early tasks so late tasks complete first: slot order must not
  // care about completion order.
  const auto square = [](std::size_t id) {
    if (id < 4) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return id * id;
  };
  const auto serial = runSweep<std::size_t>(32, 1, square);
  const auto parallel = runSweep<std::size_t>(32, 8, square);
  ASSERT_EQ(serial.size(), 32u);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], i * i);
  }
  EXPECT_EQ(serial, parallel);
}

TEST(Parallel, ItemOverloadPassesItemAndIndex) {
  const std::vector<int> items = {3, 1, 4, 1, 5};
  const auto out = runSweep<int>(
      items, 4, [](int item, std::size_t id) {
        return item * 10 + static_cast<int>(id);
      });
  EXPECT_EQ(out, (std::vector<int>{30, 11, 42, 13, 54}));
}

TEST(Parallel, DerivedTaskSeedsAreStableAndDistinct) {
  const std::uint64_t base = 2026;
  const std::uint64_t s0 = deriveTaskSeed(base, 0);
  EXPECT_EQ(s0, deriveTaskSeed(base, 0));  // stable across calls
  std::vector<std::uint64_t> seeds;
  for (std::uint64_t id = 0; id < 64; ++id) {
    seeds.push_back(deriveTaskSeed(base, id));
  }
  std::sort(seeds.begin(), seeds.end());
  EXPECT_EQ(std::unique(seeds.begin(), seeds.end()), seeds.end());
  // And distinct from a neighbouring base seed's stream.
  EXPECT_NE(deriveTaskSeed(base, 0), deriveTaskSeed(base + 1, 0));
}

TEST(Parallel, TaskRngStreamsMatchSerialDerivation) {
  // A sweep that draws from its per-task Rng must see the same stream at
  // any job count, because the generator state is derived, never shared.
  const auto draw = [](std::size_t id) {
    Rng rng = taskRng(7, id);
    return rng();
  };
  EXPECT_EQ(runSweep<std::uint64_t>(40, 1, draw),
            runSweep<std::uint64_t>(40, 8, draw));
}

TEST(Parallel, FirstFailureByTaskIdIsRethrown) {
  // Two failing tasks; the lowest id's exception must surface, matching
  // what the serial loop would have thrown.
  const auto task = [](std::size_t id) {
    if (id == 3) throw std::runtime_error("failure at 3");
    if (id == 11) throw std::runtime_error("failure at 11");
  };
  for (const int jobs : {1, 8}) {
    try {
      runIndexed(16, jobs, task);
      FAIL() << "expected runIndexed to rethrow (jobs=" << jobs << ")";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "failure at 3");
    }
  }
}

TEST(Parallel, PoolDrainsRemainingTasksAfterAFailure) {
  std::vector<std::atomic<int>> hits(24);
  EXPECT_THROW(runIndexed(hits.size(), 4,
                          [&](std::size_t id) {
                            hits[id].fetch_add(1);
                            if (id == 0) throw std::runtime_error("boom");
                          }),
               std::runtime_error);
  // Every slot still ran: results stay comparable run to run.
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Parallel, MoreJobsThanTasksIsFine) {
  const auto out = runSweep<int>(
      3, 64, [](std::size_t id) { return static_cast<int>(id) + 1; });
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3}));
}

TEST(Parallel, NonPositiveJobsFallsBackToHardware) {
  std::atomic<int> count{0};
  runIndexed(10, 0, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 10);
  count = 0;
  runIndexed(10, -3, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 10);
}

}  // namespace
}  // namespace small::support
