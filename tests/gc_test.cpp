// Unit tests for the gc subsystem: the three collectors over every heap
// backend, the safepoint/trigger discipline, and the script mutator.
#include <gtest/gtest.h>

#include <sstream>

#include "gc/collector.hpp"
#include "gc/script.hpp"
#include "heap/backend.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "trace/preprocess.hpp"
#include "trace/trace.hpp"

namespace small::gc {
namespace {

using heap::HeapWord;

HeapWord sym(std::uint32_t id) { return HeapWord::symbol(id); }

struct Combo {
  Policy policy;
  heap::HeapBackendKind kind;
};

std::vector<Combo> allCombos() {
  std::vector<Combo> combos;
  for (const Policy policy : kAllCollectorPolicies) {
    for (const heap::HeapBackendKind kind : heap::kAllHeapBackendKinds) {
      combos.push_back({policy, kind});
    }
  }
  return combos;
}

class CollectorTest : public ::testing::TestWithParam<Combo> {
 protected:
  std::unique_ptr<heap::HeapBackend> backend_ =
      heap::makeHeapBackend(GetParam().kind);
  Collector::Options options_;
  std::unique_ptr<Collector> makeCollectorUnderTest() {
    return makeCollector(GetParam().policy, *backend_, options_);
  }
};

TEST_P(CollectorTest, DropsUnrootedChainKeepsRootedOne) {
  const auto collector = makeCollectorUnderTest();
  collector->resizeRoots(2);

  // Two 3-cell chains; only the first is rooted when we collect.
  auto chain = [&](std::uint32_t tag) {
    Collector::CellRef tail = collector->cons(sym(tag), HeapWord::nil());
    for (int i = 0; i < 2; ++i) {
      tail = collector->cons(sym(tag),
                             HeapWord::pointer(tail));
    }
    return tail;
  };
  collector->setRoot(0, chain(1));
  collector->setRoot(1, chain(2));
  ASSERT_EQ(collector->liveCells(), 6u);

  collector->setRoot(1, Collector::kNull);
  collector->collect();

  EXPECT_EQ(collector->liveCells(), 3u);
  EXPECT_EQ(collector->stats().cellsReclaimed, 3u);
  EXPECT_EQ(collector->stats().collections, 1u);
  // The rooted chain survived intact: walk it through the backend.
  Collector::CellRef cell = collector->root(0);
  std::size_t length = 0;
  while (cell != Collector::kNull) {
    ++length;
    EXPECT_EQ(collector->car(cell).payload, 1u);
    const HeapWord next = collector->cdr(cell);
    cell = next.isPointer() ? next.payload : Collector::kNull;
  }
  EXPECT_EQ(length, 3u);
}

TEST_P(CollectorTest, SharedStructureSurvivesThroughEitherRoot) {
  const auto collector = makeCollectorUnderTest();
  collector->resizeRoots(2);
  const auto shared = collector->cons(sym(7), HeapWord::nil());
  collector->setRoot(
      0, collector->cons(sym(1), HeapWord::pointer(shared)));
  collector->setRoot(
      1, collector->cons(sym(2), HeapWord::pointer(shared)));
  collector->setRoot(0, Collector::kNull);
  collector->collect();
  EXPECT_EQ(collector->liveCells(), 2u);  // root 1's cell + the shared one
  const HeapWord tail = collector->cdr(collector->root(1));
  ASSERT_TRUE(tail.isPointer());
  EXPECT_EQ(collector->car(tail.payload).payload, 7u);
}

TEST_P(CollectorTest, ReclaimsCyclesOnceUnrooted) {
  const auto collector = makeCollectorUnderTest();
  collector->resizeRoots(1);
  const auto a = collector->cons(sym(1), HeapWord::nil());
  const auto b =
      collector->cons(sym(2),
                      HeapWord::pointer(a));
  collector->setCdr(a, HeapWord::pointer(b));
  collector->setRoot(0, a);
  collector->collect();
  EXPECT_EQ(collector->liveCells(), 2u);  // rooted cycle survives

  collector->setRoot(0, Collector::kNull);
  collector->collect();
  EXPECT_EQ(collector->liveCells(), 0u);
  EXPECT_EQ(collector->heap().cellsLive(), 0u);
}

TEST_P(CollectorTest, WriteBarrierKeepsReattachedCellAlive) {
  const auto collector = makeCollectorUnderTest();
  collector->resizeRoots(2);
  const auto keeper = collector->cons(sym(1), HeapWord::nil());
  const auto value = collector->cons(sym(9), HeapWord::nil());
  collector->setRoot(0, keeper);
  collector->setRoot(1, value);
  // Stash `value` inside the rooted cell, then drop its own root: only the
  // stored reference keeps it alive across the collection.
  collector->setCar(keeper,
                    HeapWord::pointer(value));
  collector->setRoot(1, Collector::kNull);
  collector->collect();
  EXPECT_EQ(collector->liveCells(), 2u);
  const HeapWord stored = collector->car(collector->root(0));
  ASSERT_TRUE(stored.isPointer());
  EXPECT_EQ(collector->car(stored.payload).payload, 9u);
}

TEST_P(CollectorTest, TriggerFiresAfterEnoughAllocations) {
  options_.triggerLiveCells = 32;
  const auto collector = makeCollectorUnderTest();
  collector->resizeRoots(1);
  EXPECT_FALSE(collector->shouldCollect());
  for (int i = 0; i < 64; ++i) {
    collector->cons(sym(1), HeapWord::nil());  // all garbage (unrooted)
  }
  EXPECT_TRUE(collector->shouldCollect());
  collector->collect();
  EXPECT_EQ(collector->liveCells(), 0u);
  EXPECT_FALSE(collector->shouldCollect());
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, CollectorTest, ::testing::ValuesIn(allCombos()),
    [](const ::testing::TestParamInfo<Combo>& info) {
      std::string name = policyName(info.param.policy);
      name += "_";
      name += heap::heapBackendName(info.param.kind);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(GcPolicy, NamesAndFactory) {
  EXPECT_STREQ(policyName(Policy::kNone), "refcount");
  EXPECT_STREQ(policyName(Policy::kMarkSweep), "mark-sweep");
  EXPECT_STREQ(policyName(Policy::kSemispace), "semispace");
  EXPECT_STREQ(policyName(Policy::kDeferredRc), "deferred-rc");
  EXPECT_STREQ(policyName(Policy::kGenerational), "generational");
  EXPECT_STREQ(policyName(Policy::kIncremental), "incremental");
  const auto backend = heap::makeHeapBackend(heap::HeapBackendKind::kTwoPointer);
  EXPECT_THROW(makeCollector(Policy::kNone, *backend, {}), support::Error);
}

TEST(GcPolicy, DegenerateTriggerClampedToFour) {
  // triggerLiveCells = 0 would make shouldCollect fire at every
  // safepoint (and zero the quarter-growth re-arm guard); the Options
  // constructor clamps anything below 4 up to 4.
  const auto backend =
      heap::makeHeapBackend(heap::HeapBackendKind::kTwoPointer);
  Collector::Options options;
  options.triggerLiveCells = 0;
  const auto collector =
      makeCollector(Policy::kMarkSweep, *backend, options);
  EXPECT_FALSE(collector->shouldCollect());
  collector->resizeRoots(1);
  collector->setRoot(0, collector->cons(sym(1), HeapWord::nil()));
  // One live cell: below the clamped trigger of 4, still quiet.
  EXPECT_FALSE(collector->shouldCollect());
  for (int i = 0; i < 3; ++i) collector->cons(sym(2), HeapWord::nil());
  EXPECT_TRUE(collector->shouldCollect());
}

TEST(GcPolicy, ReachabilityFingerprintDoesNotPerturbStats) {
  // reachableFrom / rootReachability are pure observers: the BFS walks
  // the heap through the stats-counting accessors, so the collector must
  // snapshot and restore the backend counters around it — otherwise
  // taking the live-set fingerprint would shift every later pause
  // measurement (pauses are heap-touch deltas).
  const auto backend =
      heap::makeHeapBackend(heap::HeapBackendKind::kTwoPointer);
  const auto collector = makeCollector(Policy::kMarkSweep, *backend, {});
  collector->resizeRoots(1);
  Collector::CellRef tail = collector->cons(sym(1), HeapWord::nil());
  for (int i = 0; i < 7; ++i) {
    tail = collector->cons(sym(1), HeapWord::pointer(tail));
  }
  collector->setRoot(0, tail);

  const heap::HeapStats heapBefore = backend->stats();
  const GcStats gcBefore = collector->stats();
  const std::vector<std::uint64_t> reach = collector->rootReachability();
  ASSERT_EQ(reach.size(), 1u);
  EXPECT_EQ(reach[0], 8u);

  const heap::HeapStats& heapAfter = backend->stats();
  EXPECT_EQ(heapAfter.reads, heapBefore.reads);
  EXPECT_EQ(heapAfter.writes, heapBefore.writes);
  EXPECT_EQ(heapAfter.allocs, heapBefore.allocs);
  EXPECT_EQ(heapAfter.frees, heapBefore.frees);
  const GcStats& gcAfter = collector->stats();
  EXPECT_EQ(gcAfter.heapTouches, gcBefore.heapTouches);
  EXPECT_EQ(gcAfter.tableTouches, gcBefore.tableTouches);
  EXPECT_EQ(gcAfter.collections, gcBefore.collections);
}

TEST(Semispace, ForwardsRootsWhenCellsMove) {
  const auto backend =
      heap::makeHeapBackend(heap::HeapBackendKind::kTwoPointer);
  const auto collector = makeSemispaceCollector(*backend, {});
  collector->resizeRoots(1);
  // Garbage first, then the survivor: after evacuation the survivor is a
  // different physical cell, and the root slot must have been rewritten.
  collector->cons(sym(1), HeapWord::nil());
  collector->cons(sym(2), HeapWord::nil());
  const auto survivor = collector->cons(sym(3), HeapWord::nil());
  collector->setRoot(0, survivor);
  collector->collect();
  EXPECT_EQ(collector->liveCells(), 1u);
  EXPECT_NE(collector->root(0), survivor);  // moved
  EXPECT_EQ(collector->car(collector->root(0)).payload, 3u);
}

TEST(DeferredRc, BoundedZctForcesCollection) {
  const auto backend =
      heap::makeHeapBackend(heap::HeapBackendKind::kTwoPointer);
  Collector::Options options;
  options.triggerLiveCells = 1 << 20;  // never trigger by size
  options.zctLimit = 8;
  const auto collector = makeDeferredRcCollector(*backend, options);
  collector->resizeRoots(1);
  for (int i = 0; i < 8; ++i) {
    collector->cons(sym(1), HeapWord::nil());
  }
  EXPECT_FALSE(collector->shouldCollect());
  collector->cons(sym(1), HeapWord::nil());  // ninth zero-count entry
  EXPECT_TRUE(collector->shouldCollect());
  collector->collect();
  EXPECT_EQ(collector->stats().zctOverflows, 1u);
  EXPECT_GE(collector->stats().zctHighWater, 9u);
  EXPECT_EQ(collector->liveCells(), 0u);
}

TEST(DeferredRc, CountsBarrierAndDeferredWork) {
  const auto backend =
      heap::makeHeapBackend(heap::HeapBackendKind::kTwoPointer);
  const auto collector = makeDeferredRcCollector(*backend, {});
  collector->resizeRoots(1);
  const auto a = collector->cons(sym(1), HeapWord::nil());
  const auto b = collector->cons(sym(2), HeapWord::nil());
  collector->setRoot(0, a);
  collector->setCdr(a, HeapWord::pointer(b));
  EXPECT_GE(collector->stats().barrierOps, 1u);
  collector->setRoot(0, Collector::kNull);
  collector->collect();
  EXPECT_EQ(collector->liveCells(), 0u);
  EXPECT_GE(collector->stats().deferredDecrements, 1u);
}

// --- the script mutator ---

trace::Trace tinyTrace() {
  trace::Trace trace;
  trace.name = "tiny";
  const auto f = trace.internFunction("f");
  trace::Event enter;
  enter.kind = trace::EventKind::kFunctionEnter;
  enter.functionId = f;
  enter.argCount = 1;
  trace.append(enter);
  for (int i = 0; i < 40; ++i) {
    trace::Event event;
    event.kind = trace::EventKind::kPrimitive;
    event.primitive = i % 4 == 0   ? trace::Primitive::kRead
                      : i % 4 == 1 ? trace::Primitive::kCons
                      : i % 4 == 2 ? trace::Primitive::kCdr
                                   : trace::Primitive::kRplacd;
    trace::ObjectRecord result;
    result.fingerprint = 100 + static_cast<std::uint64_t>(i);
    result.n = 4;
    result.p = i % 8 == 0 ? 1 : 0;
    result.isList = true;
    event.result = result;
    trace::ObjectRecord arg = result;
    arg.fingerprint = 50 + static_cast<std::uint64_t>(i % 7);
    event.args.push_back(arg);
    trace.append(event);
  }
  trace::Event exit;
  exit.kind = trace::EventKind::kFunctionExit;
  exit.functionId = f;
  trace.append(exit);
  return trace;
}

TEST(Script, DerivationIsDeterministic) {
  const auto pre = trace::preprocess(tinyTrace());
  const Script a = scriptFromTrace(pre, {}, 42);
  const Script b = scriptFromTrace(pre, {}, 42);
  ASSERT_EQ(a.ops.size(), b.ops.size());
  for (std::size_t i = 0; i < a.ops.size(); ++i) {
    EXPECT_EQ(a.ops[i].kind, b.ops[i].kind);
    EXPECT_EQ(a.ops[i].dst, b.ops[i].dst);
    EXPECT_EQ(a.ops[i].a, b.ops[i].a);
    EXPECT_EQ(a.ops[i].b, b.ops[i].b);
    EXPECT_EQ(a.ops[i].length, b.ops[i].length);
    EXPECT_EQ(a.ops[i].share, b.ops[i].share);
  }
  EXPECT_GT(a.allocationBound(), 0u);
}

TEST(Script, AllCollectorsAgreeOnFinalLiveSet) {
  const auto pre = trace::preprocess(tinyTrace());
  const Script script = scriptFromTrace(pre, {}, 7);

  std::vector<ScriptResult> results;
  for (const Combo& combo : allCombos()) {
    const auto backend = heap::makeHeapBackend(combo.kind);
    Collector::Options options;
    options.triggerLiveCells = 16;  // force collections mid-script
    const auto collector = makeCollector(combo.policy, *backend, options);
    results.push_back(runScript(*collector, script));
  }
  ASSERT_FALSE(results.empty());
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[i].finalLiveCells, results[0].finalLiveCells)
        << results[i].collectorName;
    EXPECT_EQ(results[i].rootReachable, results[0].rootReachable)
        << results[i].collectorName;
    EXPECT_GT(results[i].stats.collections, 0u);
  }
}

}  // namespace
}  // namespace small::gc
