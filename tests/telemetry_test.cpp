// End-to-end tests for the telemetry tooling, driving the real
// report_lint and telemetry_report binaries (paths baked in by CMake)
// against hand-written telemetry files: the exit-code grading — 0 clean,
// 1 content violations (non-monotone epochs, unknown names, header/body
// count disagreement), 2 parse-level malformed input — is only
// observable through the binaries, as is the --chrome-trace dispatch of
// "ph":"C" counter events.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

namespace {

std::string tempPath(const std::string& name) {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir != nullptr ? dir : "/tmp") + "/" + name;
}

int runCommand(const std::string& command) {
  const int status = std::system(command.c_str());
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

void writeFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  ASSERT_TRUE(out.good()) << "cannot write " << path;
  out << content;
}

const char kValidHeader[] =
    "{\"type\":\"telemetry\",\"version\":1,\"bench\":\"unit\","
    "\"series\":1}\n";

std::string lintCommand(const std::string& file, const char* mode) {
  return std::string(REPORT_LINT_BIN) + " --schema " + SCHEMA_PATH + " " +
         mode + " " + file + " > /dev/null 2>&1";
}

int lintTelemetry(const std::string& content, const std::string& name) {
  const std::string path = tempPath(name);
  writeFile(path, content);
  return runCommand(lintCommand(path, "--telemetry"));
}

TEST(TelemetryLint, ValidFilePasses) {
  EXPECT_EQ(lintTelemetry(
                std::string(kValidHeader) +
                    "{\"type\":\"series\",\"plane\":\"epoch\","
                    "\"name\":\"gc.pause\",\"source\":\"t/0\","
                    "\"samples\":[[0,1],[120,2.5],[240,3]]}\n",
                "telemetry.valid.jsonl"),
            0);
}

TEST(TelemetryLint, EmptySeriesFilePasses) {
  EXPECT_EQ(lintTelemetry(
                "{\"type\":\"telemetry\",\"version\":1,"
                "\"bench\":\"unit\",\"series\":0}\n",
                "telemetry.empty.jsonl"),
            0);
}

// Parse-level damage — the file is not a telemetry document at all.
TEST(TelemetryLint, MalformedInputExits2) {
  EXPECT_EQ(lintTelemetry("this is not json\n", "telemetry.garbage.jsonl"),
            2);
  EXPECT_EQ(lintTelemetry("[1,2,3]\n", "telemetry.nontyped.jsonl"), 2);
  // Foreign header: a bench_report is not a telemetry file.
  EXPECT_EQ(lintTelemetry("{\"type\":\"bench_report\",\"version\":1,"
                          "\"bench\":\"x\",\"config\":{}}\n",
                          "telemetry.foreign.jsonl"),
            2);
  // Version this linter does not understand.
  EXPECT_EQ(lintTelemetry("{\"type\":\"telemetry\",\"version\":99,"
                          "\"bench\":\"x\",\"series\":0}\n",
                          "telemetry.version.jsonl"),
            2);
  // Unknown line type after the header.
  EXPECT_EQ(lintTelemetry(std::string(kValidHeader) +
                              "{\"type\":\"figure\",\"name\":\"x\","
                              "\"value\":1}\n",
                          "telemetry.unknown_type.jsonl"),
            2);
  EXPECT_EQ(lintTelemetry("", "telemetry.empty_file.jsonl"), 2);
  // A parse error on a later line is still structural.
  EXPECT_EQ(lintTelemetry(std::string(kValidHeader) + "{broken\n",
                          "telemetry.broken_line.jsonl"),
            2);
}

// Well-formed lines violating the content contract exit 1.
TEST(TelemetryLint, ContentViolationsExit1) {
  // Non-monotone epochs.
  EXPECT_EQ(lintTelemetry(std::string(kValidHeader) +
                              "{\"type\":\"series\",\"plane\":\"epoch\","
                              "\"name\":\"gc.pause\",\"source\":\"t\","
                              "\"samples\":[[5,1],[5,2]]}\n",
                          "telemetry.dup_epoch.jsonl"),
            1);
  EXPECT_EQ(lintTelemetry(std::string(kValidHeader) +
                              "{\"type\":\"series\",\"plane\":\"epoch\","
                              "\"name\":\"gc.pause\",\"source\":\"t\","
                              "\"samples\":[[9,1],[3,2]]}\n",
                          "telemetry.backward_epoch.jsonl"),
            1);
  // Name outside the telemetryNamePrefixes vocabulary.
  EXPECT_EQ(lintTelemetry(std::string(kValidHeader) +
                              "{\"type\":\"series\",\"plane\":\"epoch\","
                              "\"name\":\"bogus.metric\",\"source\":\"t\","
                              "\"samples\":[[0,1]]}\n",
                          "telemetry.bad_name.jsonl"),
            1);
  // Header series count disagrees with the body.
  EXPECT_EQ(lintTelemetry(std::string(kValidHeader),
                          "telemetry.count_mismatch.jsonl"),
            1);
  // A sample that is not an [epoch, value] pair.
  EXPECT_EQ(lintTelemetry(std::string(kValidHeader) +
                              "{\"type\":\"series\",\"plane\":\"epoch\","
                              "\"name\":\"gc.pause\",\"source\":\"t\","
                              "\"samples\":[[0,1,2]]}\n",
                          "telemetry.bad_pair.jsonl"),
            1);
  // Wrong plane constant.
  EXPECT_EQ(lintTelemetry(std::string(kValidHeader) +
                              "{\"type\":\"series\",\"plane\":\"wall\","
                              "\"name\":\"gc.pause\",\"source\":\"t\","
                              "\"samples\":[[0,1]]}\n",
                          "telemetry.bad_plane.jsonl"),
            1);
}

TEST(TelemetryLint, ChromeTraceDispatchesCounterEvents) {
  // A trace mixing a complete "X" span and a "C" counter sample passes.
  const std::string mixed = tempPath("telemetry.trace.json");
  writeFile(mixed,
            "[{\"name\":\"gc\",\"cat\":\"gc\",\"ph\":\"X\",\"ts\":0,"
            "\"dur\":5,\"pid\":0,\"tid\":1},\n"
            "{\"name\":\"gc.pause [t/0]\",\"cat\":\"telemetry.epoch\","
            "\"ph\":\"C\",\"ts\":120,\"pid\":2,"
            "\"args\":{\"value\":3.5}}]");
  EXPECT_EQ(runCommand(lintCommand(mixed, "--chrome-trace")), 0);

  // A counter event without args.value is a violation.
  const std::string bad = tempPath("telemetry.trace.bad.json");
  writeFile(bad,
            "[{\"name\":\"gc.pause\",\"cat\":\"telemetry.epoch\","
            "\"ph\":\"C\",\"ts\":120,\"pid\":2,\"args\":{}}]");
  EXPECT_EQ(runCommand(lintCommand(bad, "--chrome-trace")), 1);

  // So is a "C" event missing ts, and an incomplete "X" span still
  // fails as before.
  const std::string noTs = tempPath("telemetry.trace.nots.json");
  writeFile(noTs,
            "[{\"name\":\"gc.pause\",\"cat\":\"telemetry.epoch\","
            "\"ph\":\"C\",\"pid\":2,\"args\":{\"value\":1}}]");
  EXPECT_EQ(runCommand(lintCommand(noTs, "--chrome-trace")), 1);
}

TEST(TelemetryLint, ConflictingModesRejected) {
  EXPECT_EQ(runCommand(std::string(REPORT_LINT_BIN) + " --schema " +
                       SCHEMA_PATH + " --chrome-trace --telemetry x "
                       "> /dev/null 2>&1"),
            2);
}

TEST(TelemetryReport, FoldsValidFile) {
  const std::string path = tempPath("telemetry.report.jsonl");
  writeFile(path,
            "{\"type\":\"telemetry\",\"version\":1,\"bench\":\"unit\","
            "\"series\":2}\n"
            "{\"type\":\"series\",\"plane\":\"epoch\","
            "\"name\":\"gc.pause\",\"source\":\"t/0\","
            "\"samples\":[[0,1],[10,9],[20,5]]}\n"
            "{\"type\":\"series\",\"plane\":\"epoch\","
            "\"name\":\"lpt.occupancy\",\"source\":\"t/0\","
            "\"samples\":[]}\n");
  const std::string out = tempPath("telemetry.report.out");
  ASSERT_EQ(runCommand(std::string(TELEMETRY_REPORT_BIN) + " " + path +
                       " > " + out + " 2>&1"),
            0);
  std::ifstream in(out);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("bench unit"), std::string::npos) << text;
  EXPECT_NE(text.find("gc.pause"), std::string::npos) << text;
  EXPECT_NE(text.find("lpt.occupancy"), std::string::npos) << text;
  // min/max of the first series land in the table.
  EXPECT_NE(text.find("| 1"), std::string::npos) << text;
  EXPECT_NE(text.find("| 9"), std::string::npos) << text;
}

TEST(TelemetryReport, MalformedInputFails) {
  const std::string path = tempPath("telemetry.report.bad.jsonl");
  writeFile(path, "nope\n");
  EXPECT_EQ(runCommand(std::string(TELEMETRY_REPORT_BIN) + " " + path +
                       " > /dev/null 2>&1"),
            1);
  EXPECT_EQ(runCommand(std::string(TELEMETRY_REPORT_BIN) +
                       " > /dev/null 2>&1"),
            2);
  EXPECT_EQ(runCommand(std::string(TELEMETRY_REPORT_BIN) +
                       " --bogus > /dev/null 2>&1"),
            2);
}

}  // namespace
