// Tests for the §4.3.4 stack-machine compiler and emulator.
#include <gtest/gtest.h>

#include "sexpr/printer.hpp"
#include "support/error.hpp"
#include "vm/compiler.hpp"
#include "vm/emulator.hpp"

namespace small::vm {
namespace {

class VmTest : public ::testing::Test {
 protected:
  /// Compile and run; the program writes its results via (write ...).
  std::vector<std::string> runProgram(std::string_view source,
                                      std::string_view input = "") {
    Compiler compiler(arena, symbols);
    const Program program = compiler.compile(source);
    Emulator emulator(arena, symbols);
    if (!input.empty()) {
      sexpr::Reader reader(arena, symbols);
      for (const auto form : reader.readAll(input)) {
        emulator.provideInput(form);
      }
    }
    emulator.run(program);
    std::vector<std::string> out;
    for (const auto value : emulator.output()) {
      out.push_back(sexpr::print(arena, symbols, value));
    }
    return out;
  }

  sexpr::SymbolTable symbols;
  sexpr::Arena arena;
};

TEST_F(VmTest, FactorialMatchesFig414) {
  // The thesis' flagship compilation example.
  const auto out = runProgram(R"(
    (def fact (lambda (x)
      (cond ((= x 0) 1)
            (t (* x (fact (- x 1)))))))
    (write (fact 10)))");
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], "3628800");
}

TEST_F(VmTest, ListManipulationMatchesFig415) {
  // Fig 4.15: print the cdr of what was read, then chop two elements.
  const auto out = runProgram(R"(
    (def print-it (lambda (junk)
      (write (cdr junk))))
    (def doit (lambda ()
      (prog (lst)
        (setq lst (read))
        (print-it lst)
        (setq lst (cdr (cdr lst)))
        (write lst))))
    (doit))",
                              "(a b c d)");
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], "(b c d)");
  EXPECT_EQ(out[1], "(c d)");
}

TEST_F(VmTest, ArithmeticAndComparisons) {
  const auto out = runProgram(R"(
    (write (+ 2 3))
    (write (- 10 4))
    (write (* 6 7))
    (write (/ 9 2))
    (write (> 3 2))
    (write (< 3 2))
    (write (= 4 4)))");
  ASSERT_EQ(out.size(), 7u);
  EXPECT_EQ(out[0], "5");
  EXPECT_EQ(out[1], "6");
  EXPECT_EQ(out[2], "42");
  EXPECT_EQ(out[3], "4");
  EXPECT_EQ(out[4], "t");
  EXPECT_EQ(out[5], "nil");
  EXPECT_EQ(out[6], "t");
}

TEST_F(VmTest, ListOps) {
  const auto out = runProgram(R"(
    (write (car (quote (a b))))
    (write (cdr (quote (a b))))
    (write (cons 1 (quote (2 3))))
    (write (atom (quote x)))
    (write (null nil))
    (write (equal (quote (a b)) (quote (a b)))))");
  EXPECT_EQ(out[0], "a");
  EXPECT_EQ(out[1], "(b)");
  EXPECT_EQ(out[2], "(1 2 3)");
  EXPECT_EQ(out[3], "t");
  EXPECT_EQ(out[4], "t");
  EXPECT_EQ(out[5], "t");
}

TEST_F(VmTest, RplacaRplacd) {
  // The emulator's output holds references to live structure, so a later
  // destructive update is visible through an earlier (write ...) — the
  // two updates are checked in separate runs.
  const auto afterRplaca = runProgram(R"(
    (prog (x)
      (setq x (quote (a b c)))
      (rplaca x (quote z))
      (write x)))");
  EXPECT_EQ(afterRplaca[0], "(z b c)");
  const auto afterRplacd = runProgram(R"(
    (prog (x)
      (setq x (quote (p b c)))
      (rplaca x (quote z))
      (rplacd x (quote (q)))
      (write x)))");
  EXPECT_EQ(afterRplacd[0], "(z q)");
}

TEST_F(VmTest, CondFallThroughYieldsNil) {
  const auto out = runProgram("(write (cond (nil 1) (nil 2)))");
  EXPECT_EQ(out[0], "nil");
}

TEST_F(VmTest, ProgLoopWithGo) {
  const auto out = runProgram(R"(
    (def sum-to (lambda (n)
      (prog (i acc)
        (setq i 0)
        (setq acc 0)
        loop
        (cond ((> i n) (return acc)))
        (setq acc (+ acc i))
        (setq i (+ i 1))
        (go loop))))
    (write (sum-to 100)))");
  EXPECT_EQ(out[0], "5050");
}

TEST_F(VmTest, MutualRecursionWithForwardReference) {
  // is-even calls is-odd before it is defined: the compile-then-verify
  // "backpatching" path.
  const auto out = runProgram(R"(
    (def is-even (lambda (n)
      (cond ((= n 0) t) (t (is-odd (- n 1))))))
    (def is-odd (lambda (n)
      (cond ((= n 0) nil) (t (is-even (- n 1))))))
    (write (is-even 10))
    (write (is-odd 7)))");
  EXPECT_EQ(out[0], "t");
  EXPECT_EQ(out[1], "t");
}

TEST_F(VmTest, UndefinedFunctionRejectedAtCompile) {
  Compiler compiler(arena, symbols);
  EXPECT_THROW(compiler.compile("(write (no-such-fn 1))"),
               support::EvalError);
}

TEST_F(VmTest, WrongArityRejectedAtRun) {
  Compiler compiler(arena, symbols);
  const Program program = compiler.compile(R"(
    (def f (lambda (a b) (+ a b)))
    (write (f 1)))");
  Emulator emulator(arena, symbols);
  EXPECT_THROW(emulator.run(program), support::EvalError);
}

TEST_F(VmTest, DeepRecursionCountsFunctionCalls) {
  Compiler compiler(arena, symbols);
  const Program program = compiler.compile(R"(
    (def count-down (lambda (n)
      (cond ((= n 0) 0) (t (count-down (- n 1))))))
    (write (count-down 500)))");
  Emulator emulator(arena, symbols);
  emulator.run(program);
  EXPECT_EQ(emulator.functionCalls(), 501u);
}

TEST_F(VmTest, ListOpsAreCounted) {
  Compiler compiler(arena, symbols);
  const Program program =
      compiler.compile("(write (car (cdr (quote (1 2 3)))))");
  Emulator emulator(arena, symbols);
  emulator.run(program);
  // car + cdr + write.
  EXPECT_EQ(emulator.listOps(), 3u);
}

TEST_F(VmTest, DisassemblyShowsThesisMnemonics) {
  Compiler compiler(arena, symbols);
  const Program program = compiler.compile(R"(
    (def fact (lambda (x)
      (cond ((= x 0) 1)
            (t (* x (fact (- x 1)))))))
    (write (fact 5)))");
  const std::string listing = disassemble(program, arena, symbols);
  EXPECT_NE(listing.find("fact:"), std::string::npos);
  EXPECT_NE(listing.find("BINDN"), std::string::npos);
  EXPECT_NE(listing.find("PUSHSTK"), std::string::npos);
  EXPECT_NE(listing.find("FCALL"), std::string::npos);
  EXPECT_NE(listing.find("FRETN"), std::string::npos);
  EXPECT_NE(listing.find("MULOP"), std::string::npos);
}

TEST_F(VmTest, StepBudgetTerminatesRunaways) {
  Compiler compiler(arena, symbols);
  const Program program = compiler.compile(R"(
    (prog ()
      loop
      (go loop)))");
  Emulator::Options options;
  options.maxSteps = 10000;
  Emulator emulator(arena, symbols, options);
  EXPECT_THROW(emulator.run(program), support::EvalError);
}

TEST_F(VmTest, VmAgreesWithReferenceValues) {
  // Cross-check a small battery of programs against expected outputs
  // (acts as a differential test of compiler + emulator).
  struct Case {
    const char* program;
    const char* expected;
  };
  const Case cases[] = {
      {"(write (cons (quote a) nil))", "(a)"},
      {"(def sq (lambda (x) (* x x))) (write (sq 12))", "144"},
      {"(write (cond ((atom (quote (a))) 1) (t 2)))", "2"},
      {"(def fib (lambda (n) (cond ((< n 2) n) "
       "(t (+ (fib (- n 1)) (fib (- n 2))))))) (write (fib 15))",
       "610"},
      {"(write (not nil))", "t"},
  };
  for (const Case& c : cases) {
    const auto out = runProgram(c.program);
    ASSERT_EQ(out.size(), 1u) << c.program;
    EXPECT_EQ(out[0], c.expected) << c.program;
  }
}

}  // namespace
}  // namespace small::vm
