// Tests for the fully associative LRU comparison cache (§5.2.5).
#include <gtest/gtest.h>

#include "cache/lru_cache.hpp"
#include "support/rng.hpp"

namespace small::cache {
namespace {

TEST(LruCache, HitAfterFill) {
  LruCache cache(4);
  EXPECT_FALSE(cache.access(10));
  EXPECT_TRUE(cache.access(10));
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(LruCache, EvictsLeastRecentlyUsed) {
  LruCache cache(2);
  cache.access(1);
  cache.access(2);
  cache.access(1);  // 2 is now LRU
  cache.access(3);  // evicts 2
  EXPECT_TRUE(cache.access(1));
  EXPECT_TRUE(cache.access(3));
  EXPECT_FALSE(cache.access(2));
}

TEST(LruCache, CapacityIsRespected) {
  LruCache cache(8);
  for (std::uint64_t a = 0; a < 100; ++a) cache.access(a);
  EXPECT_EQ(cache.residentLines(), 8u);
}

TEST(LruCache, LineSizeGroupsNeighbours) {
  LruCache cache(4, /*lineSize=*/4);
  EXPECT_FALSE(cache.access(0));
  // Addresses 1-3 share the line: prefetched for free.
  EXPECT_TRUE(cache.access(1));
  EXPECT_TRUE(cache.access(2));
  EXPECT_TRUE(cache.access(3));
  EXPECT_FALSE(cache.access(4));  // next line
}

TEST(LruCache, SequentialScanBenefitsFromLines) {
  // The Fig 5.5 effect: with spatial locality, larger lines at equal total
  // capacity raise the hit rate (until prefetch stops being useful).
  constexpr std::uint64_t kCells = 64;
  LruCache unit(kCells, 1);
  LruCache wide(kCells / 8, 8);
  for (std::uint64_t pass = 0; pass < 4; ++pass) {
    for (std::uint64_t a = 0; a < 4096; ++a) {
      unit.access(a);
      wide.access(a);
    }
  }
  EXPECT_GT(wide.hitRate(), unit.hitRate());
}

TEST(LruCache, RandomAccessDefeatsLines) {
  // Without locality, bigger lines mean fewer entries and a worse rate.
  support::Rng rng(31);
  constexpr std::uint64_t kCells = 64;
  LruCache unit(kCells, 1);
  LruCache wide(kCells / 16, 16);
  for (int i = 0; i < 40000; ++i) {
    const std::uint64_t a = rng.below(100000);
    unit.access(a);
    wide.access(a);
  }
  EXPECT_GE(unit.hitRate(), wide.hitRate());
}

TEST(LruCache, ResetClearsEverything) {
  LruCache cache(4);
  cache.access(1);
  cache.access(1);
  cache.reset();
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
  EXPECT_EQ(cache.residentLines(), 0u);
  EXPECT_FALSE(cache.access(1));
}

TEST(LruCache, RejectsDegenerateConfigs) {
  EXPECT_THROW(LruCache(0), support::Error);
  EXPECT_THROW(LruCache(4, 0), support::Error);
}

class LruMattsonEquivalence : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(LruMattsonEquivalence, InclusionProperty) {
  // LRU inclusion: everything resident in a cache of size k is resident in
  // a cache of size k+1 under the same access stream.
  const std::uint64_t capacity = GetParam();
  LruCache smaller(capacity);
  LruCache larger(capacity + 1);
  support::Rng rng(37);
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t a = rng.below(capacity * 3);
    const bool hitSmall = smaller.access(a);
    const bool hitLarge = larger.access(a);
    // A hit in the smaller cache implies a hit in the larger one.
    if (hitSmall) EXPECT_TRUE(hitLarge);
  }
  EXPECT_GE(larger.hitRate(), smaller.hitRate());
}

INSTANTIATE_TEST_SUITE_P(Capacities, LruMattsonEquivalence,
                         ::testing::Values(2u, 4u, 16u, 64u));

}  // namespace
}  // namespace small::cache
