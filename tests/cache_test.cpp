// Tests for the fully associative LRU comparison cache (§5.2.5).
#include <gtest/gtest.h>

#include "cache/lru_cache.hpp"
#include "cache/reference_lru.hpp"
#include "support/rng.hpp"

namespace small::cache {
namespace {

TEST(LruCache, HitAfterFill) {
  LruCache cache(4);
  EXPECT_FALSE(cache.access(10));
  EXPECT_TRUE(cache.access(10));
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(LruCache, EvictsLeastRecentlyUsed) {
  LruCache cache(2);
  cache.access(1);
  cache.access(2);
  cache.access(1);  // 2 is now LRU
  cache.access(3);  // evicts 2
  EXPECT_TRUE(cache.access(1));
  EXPECT_TRUE(cache.access(3));
  EXPECT_FALSE(cache.access(2));
}

TEST(LruCache, CapacityIsRespected) {
  LruCache cache(8);
  for (std::uint64_t a = 0; a < 100; ++a) cache.access(a);
  EXPECT_EQ(cache.residentLines(), 8u);
}

TEST(LruCache, LineSizeGroupsNeighbours) {
  LruCache cache(4, /*lineSize=*/4);
  EXPECT_FALSE(cache.access(0));
  // Addresses 1-3 share the line: prefetched for free.
  EXPECT_TRUE(cache.access(1));
  EXPECT_TRUE(cache.access(2));
  EXPECT_TRUE(cache.access(3));
  EXPECT_FALSE(cache.access(4));  // next line
}

TEST(LruCache, SequentialScanBenefitsFromLines) {
  // The Fig 5.5 effect: with spatial locality, larger lines at equal total
  // capacity raise the hit rate (until prefetch stops being useful).
  constexpr std::uint64_t kCells = 64;
  LruCache unit(kCells, 1);
  LruCache wide(kCells / 8, 8);
  for (std::uint64_t pass = 0; pass < 4; ++pass) {
    for (std::uint64_t a = 0; a < 4096; ++a) {
      unit.access(a);
      wide.access(a);
    }
  }
  EXPECT_GT(wide.hitRate(), unit.hitRate());
}

TEST(LruCache, RandomAccessDefeatsLines) {
  // Without locality, bigger lines mean fewer entries and a worse rate.
  support::Rng rng(31);
  constexpr std::uint64_t kCells = 64;
  LruCache unit(kCells, 1);
  LruCache wide(kCells / 16, 16);
  for (int i = 0; i < 40000; ++i) {
    const std::uint64_t a = rng.below(100000);
    unit.access(a);
    wide.access(a);
  }
  EXPECT_GE(unit.hitRate(), wide.hitRate());
}

TEST(LruCache, ResetClearsEverything) {
  LruCache cache(4);
  cache.access(1);
  cache.access(1);
  cache.reset();
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
  EXPECT_EQ(cache.residentLines(), 0u);
  EXPECT_FALSE(cache.access(1));
}

TEST(LruCache, RejectsDegenerateConfigs) {
  EXPECT_THROW(LruCache(0), support::Error);
  EXPECT_THROW(LruCache(4, 0), support::Error);
}

TEST(LruCache, LineAliasingAtWideLines) {
  // Distinct addresses that collapse onto the same line must behave as one
  // residency unit: one miss fills them all, and re-touching any alias
  // refreshes the whole line's recency.
  LruCache cache(2, /*lineSize=*/8);
  EXPECT_FALSE(cache.access(0));    // line 0 resident
  EXPECT_FALSE(cache.access(8));    // line 1 resident
  EXPECT_TRUE(cache.access(7));     // alias of line 0; line 0 now MRU
  EXPECT_FALSE(cache.access(16));   // line 2 evicts line 1 (LRU)
  EXPECT_TRUE(cache.access(3));     // line 0 survived
  EXPECT_FALSE(cache.access(15));   // line 1 was the victim
}

TEST(LruCache, RepeatedHitsDoNotPerturbEvictionOrder) {
  // Hammering the MRU line must not change which line is the victim.
  LruCache cache(3);
  cache.access(1);
  cache.access(2);
  cache.access(3);            // recency: 3 2 1
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(cache.access(3));
  cache.access(4);            // evicts 1
  EXPECT_TRUE(cache.access(2));
  EXPECT_TRUE(cache.access(3));
  EXPECT_FALSE(cache.access(1));
}

TEST(LruCache, ResetMidStreamMatchesFreshCache) {
  // A reset cache and a fresh cache must agree on the rest of the stream.
  support::Rng rng(101);
  LruCache resetted(8, 2);
  for (int i = 0; i < 500; ++i) resetted.access(rng.below(64));
  resetted.reset();
  LruCache fresh(8, 2);
  support::Rng replay(202);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t a = replay.below(64);
    EXPECT_EQ(resetted.access(a), fresh.access(a));
  }
  EXPECT_EQ(resetted.hits(), fresh.hits());
  EXPECT_EQ(resetted.residentLines(), fresh.residentLines());
}

/// Randomized differential harness: the flat cache must agree with the
/// retained node-based original access by access — hit/miss, counters,
/// and residency — across capacities, line sizes, and mid-stream resets.
class LruDifferential
    : public ::testing::TestWithParam<std::pair<std::uint64_t, std::uint32_t>> {
};

TEST_P(LruDifferential, FlatMatchesReferenceAccessByAccess) {
  const auto [capacity, lineSize] = GetParam();
  LruCache flat(capacity, lineSize);
  ReferenceLruCache reference(capacity, lineSize);
  support::Rng rng(911 + capacity * 31 + lineSize);
  const std::uint64_t addressSpan = capacity * lineSize * 4;
  for (int i = 0; i < 30000; ++i) {
    if (rng.chance(0.0005)) {  // occasional mid-stream reset
      flat.reset();
      reference.reset();
    }
    // Mix of uniform traffic and a hot set to exercise both hit paths.
    const std::uint64_t a = rng.chance(0.3)
                                ? rng.below(std::max<std::uint64_t>(
                                      addressSpan / 16, 1))
                                : rng.below(addressSpan);
    ASSERT_EQ(flat.access(a), reference.access(a)) << "at access " << i;
    ASSERT_EQ(flat.hits(), reference.hits());
    ASSERT_EQ(flat.misses(), reference.misses());
    ASSERT_EQ(flat.residentLines(), reference.residentLines());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, LruDifferential,
    ::testing::Values(std::pair<std::uint64_t, std::uint32_t>{1, 1},
                      std::pair<std::uint64_t, std::uint32_t>{2, 16},
                      std::pair<std::uint64_t, std::uint32_t>{7, 3},
                      std::pair<std::uint64_t, std::uint32_t>{64, 1},
                      std::pair<std::uint64_t, std::uint32_t>{64, 8},
                      std::pair<std::uint64_t, std::uint32_t>{512, 4}));

class LruMattsonEquivalence : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(LruMattsonEquivalence, InclusionProperty) {
  // LRU inclusion: everything resident in a cache of size k is resident in
  // a cache of size k+1 under the same access stream.
  const std::uint64_t capacity = GetParam();
  LruCache smaller(capacity);
  LruCache larger(capacity + 1);
  support::Rng rng(37);
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t a = rng.below(capacity * 3);
    const bool hitSmall = smaller.access(a);
    const bool hitLarge = larger.access(a);
    // A hit in the smaller cache implies a hit in the larger one.
    if (hitSmall) EXPECT_TRUE(hitLarge);
  }
  EXPECT_GE(larger.hitRate(), smaller.hitRate());
}

INSTANTIATE_TEST_SUITE_P(Capacities, LruMattsonEquivalence,
                         ::testing::Values(2u, 4u, 16u, 64u));

}  // namespace
}  // namespace small::cache
