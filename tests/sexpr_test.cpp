// Tests for the s-expression substrate: arena, reader, printer, metrics,
// and structural hashing.
#include <gtest/gtest.h>

#include "sexpr/arena.hpp"
#include "sexpr/metrics.hpp"
#include "sexpr/printer.hpp"
#include "sexpr/reader.hpp"
#include "support/error.hpp"

namespace small::sexpr {
namespace {

class SexprTest : public ::testing::Test {
 protected:
  NodeRef read(std::string_view text) {
    Reader reader(arena, symbols);
    return reader.readOne(text);
  }
  std::string roundtrip(std::string_view text) {
    return print(arena, symbols, read(text));
  }

  SymbolTable symbols;
  Arena arena;
};

TEST_F(SexprTest, NilIsReserved) {
  EXPECT_EQ(symbols.intern("nil"), SymbolTable::kNil);
  EXPECT_EQ(symbols.intern("t"), SymbolTable::kT);
  EXPECT_TRUE(arena.isNil(arena.symbol(SymbolTable::kNil)));
}

TEST_F(SexprTest, InterningIsStable) {
  const SymbolId a = symbols.intern("foo");
  const SymbolId b = symbols.intern("foo");
  EXPECT_EQ(a, b);
  EXPECT_EQ(symbols.name(a), "foo");
}

TEST_F(SexprTest, ConsCarCdr) {
  const NodeRef a = arena.symbol(symbols.intern("a"));
  const NodeRef b = arena.symbol(symbols.intern("b"));
  const NodeRef pair = arena.cons(a, b);
  EXPECT_EQ(arena.car(pair), a);
  EXPECT_EQ(arena.cdr(pair), b);
  EXPECT_EQ(arena.kind(pair), NodeKind::kCons);
}

TEST_F(SexprTest, CarCdrOfNilIsNil) {
  EXPECT_TRUE(arena.isNil(arena.car(kNilRef)));
  EXPECT_TRUE(arena.isNil(arena.cdr(kNilRef)));
}

TEST_F(SexprTest, CarOfIntegerThrows) {
  const NodeRef n = arena.integer(5);
  EXPECT_THROW(arena.car(n), support::EvalError);
}

TEST_F(SexprTest, RplacaRplacd) {
  const NodeRef pair = arena.cons(arena.integer(1), arena.integer(2));
  arena.setCar(pair, arena.integer(10));
  arena.setCdr(pair, kNilRef);
  EXPECT_EQ(arena.integerValue(arena.car(pair)), 10);
  EXPECT_TRUE(arena.isNil(arena.cdr(pair)));
}

TEST_F(SexprTest, SmallIntegersAreCached) {
  EXPECT_EQ(arena.integer(5), arena.integer(5));
  EXPECT_EQ(arena.integer(-1), arena.integer(-1));
}

TEST_F(SexprTest, ReadAtomKinds) {
  EXPECT_EQ(arena.kind(read("42")), NodeKind::kInteger);
  EXPECT_EQ(arena.integerValue(read("-17")), -17);
  EXPECT_EQ(arena.kind(read("foo")), NodeKind::kSymbol);
  EXPECT_TRUE(arena.isNil(read("nil")));
}

TEST_F(SexprTest, ReadRoundtrips) {
  EXPECT_EQ(roundtrip("(a b c)"), "(a b c)");
  EXPECT_EQ(roundtrip("(a (b c) d)"), "(a (b c) d)");
  EXPECT_EQ(roundtrip("(a . b)"), "(a . b)");
  EXPECT_EQ(roundtrip("()"), "nil");
  EXPECT_EQ(roundtrip("(1 -2 30)"), "(1 -2 30)");
}

TEST_F(SexprTest, QuoteShorthand) {
  EXPECT_EQ(roundtrip("'x"), "(quote x)");
  EXPECT_EQ(roundtrip("'(a b)"), "(quote (a b))");
}

TEST_F(SexprTest, CommentsAreSkipped) {
  EXPECT_EQ(roundtrip("; hello\n(a b) ; trailing"), "(a b)");
}

TEST_F(SexprTest, SuperParenClosesAllLists) {
  // The `]` closes every open list, as in Franz Lisp.
  EXPECT_EQ(roundtrip("(a (b (c d]"), "(a (b (c d)))");
}

TEST_F(SexprTest, ReadAllParsesSeveralForms) {
  Reader reader(arena, symbols);
  const auto forms = reader.readAll("(a) 42 sym");
  ASSERT_EQ(forms.size(), 3u);
  EXPECT_EQ(arena.kind(forms[0]), NodeKind::kCons);
  EXPECT_EQ(arena.kind(forms[1]), NodeKind::kInteger);
  EXPECT_EQ(arena.kind(forms[2]), NodeKind::kSymbol);
}

TEST_F(SexprTest, MalformedInputThrows) {
  EXPECT_THROW(read("(a b"), support::ParseError);
  EXPECT_THROW(read(")"), support::ParseError);
  EXPECT_THROW(read("(a))"), support::ParseError);
  EXPECT_THROW(read(""), support::ParseError);
}

TEST_F(SexprTest, EqualStructural) {
  const NodeRef a = read("(a (b 2) c)");
  const NodeRef b = read("(a (b 2) c)");
  const NodeRef c = read("(a (b 3) c)");
  EXPECT_TRUE(arena.equal(a, b));
  EXPECT_FALSE(arena.equal(a, c));
}

TEST_F(SexprTest, ListLength) {
  EXPECT_EQ(arena.listLength(read("(a b c d)")), 4u);
  EXPECT_EQ(arena.listLength(kNilRef), 0u);
  EXPECT_THROW(arena.listLength(read("(a . b)")), support::EvalError);
}

TEST_F(SexprTest, ListBuilder) {
  const NodeRef l = arena.list(
      {arena.integer(1), arena.integer(2), arena.integer(3)});
  EXPECT_EQ(print(arena, symbols, l), "(1 2 3)");
}

// --- the n/p metrics of §3.3.1 (Fig 3.2's two examples) ---

TEST_F(SexprTest, ShapeOfFlatListWithOneSublist) {
  // (A B C (D E) F G): n = 7, p = 1, 8 two-pointer cells.
  const ListShape shape = measureShape(arena, read("(A B C (D E) F G)"));
  EXPECT_EQ(shape.n, 7u);
  EXPECT_EQ(shape.p, 1u);
  EXPECT_EQ(shape.cells, 8u);
  EXPECT_EQ(shape.depth, 2u);
}

TEST_F(SexprTest, ShapeOfNestedList) {
  // (A (B (C (D E) F) G)): n = 7, p = 3, 10 two-pointer cells.
  const ListShape shape = measureShape(arena, read("(A (B (C (D E) F) G))"));
  EXPECT_EQ(shape.n, 7u);
  EXPECT_EQ(shape.p, 3u);
  EXPECT_EQ(shape.cells, 10u);
}

TEST_F(SexprTest, ShapeCellsEqualsNPlusPForProperLists) {
  for (const char* text :
       {"(a)", "(a b c)", "((a) b)", "(((x)))", "(a (b) (c (d)) e)"}) {
    const ListShape shape = measureShape(arena, read(text));
    EXPECT_EQ(shape.cells, shape.n + shape.p) << text;
  }
}

TEST_F(SexprTest, ShapeOfAtomIsZero) {
  const ListShape shape = measureShape(arena, read("42"));
  EXPECT_EQ(shape.n, 0u);
  EXPECT_EQ(shape.cells, 0u);
}

TEST_F(SexprTest, NilElementCountsAsSymbol) {
  const ListShape shape = measureShape(arena, read("(a nil b)"));
  EXPECT_EQ(shape.n, 3u);
  EXPECT_EQ(shape.p, 0u);
}

TEST_F(SexprTest, StructuralHashEqualForEqualLists) {
  const NodeRef a = read("(a (b 2) c)");
  const NodeRef b = read("(a (b 2) c)");
  EXPECT_EQ(structuralHash(arena, a), structuralHash(arena, b));
}

TEST_F(SexprTest, StructuralHashDiffersForDifferentLists) {
  // Not guaranteed in theory, but a collision here would break the trace
  // preprocessing badly enough that we want to know.
  const NodeRef a = read("(a b c)");
  const NodeRef b = read("(a b d)");
  const NodeRef c = read("((a b) c)");
  EXPECT_NE(structuralHash(arena, a), structuralHash(arena, b));
  EXPECT_NE(structuralHash(arena, a), structuralHash(arena, c));
}

TEST_F(SexprTest, StructuralHashNeverZero) {
  EXPECT_NE(structuralHash(arena, kNilRef), 0u);
  EXPECT_NE(structuralHash(arena, read("(a)")), 0u);
}

// Property fuzz: for any randomly generated s-expression, print -> read
// roundtrips to an equal structure, shape metrics are self-consistent,
// and equal structures hash equally.
class SexprFuzz : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  sexpr::NodeRef randomSexpr(int depthBudget) {
    const auto choice = state_ = state_ * 6364136223846793005ull + 1;
    const auto pick = (choice >> 33) % 10;
    if (depthBudget <= 0 || pick < 4) {
      // Atom: symbol, integer, or nil.
      if (pick % 3 == 0) return arena.integer(static_cast<int>(pick % 97));
      if (pick % 3 == 1) return kNilRef;
      return arena.symbol(
          symbols.intern("s" + std::to_string(pick % 12)));
    }
    // Proper list of 0..4 elements.
    const int n = static_cast<int>((choice >> 17) % 5);
    std::vector<NodeRef> elements;
    for (int i = 0; i < n; ++i) {
      elements.push_back(randomSexpr(depthBudget - 1));
    }
    NodeRef list = kNilRef;
    for (int i = n; i-- > 0;) {
      list = arena.cons(elements[static_cast<std::size_t>(i)], list);
    }
    return list;
  }

  SymbolTable symbols;
  Arena arena;
  std::uint64_t state_ = 0;
};

TEST_P(SexprFuzz, PrintReadRoundtrip) {
  state_ = GetParam() * 2654435761u + 17;
  Reader reader(arena, symbols);
  for (int i = 0; i < 200; ++i) {
    const NodeRef original = randomSexpr(5);
    const std::string text = print(arena, symbols, original);
    const NodeRef reread = reader.readOne(text);
    EXPECT_TRUE(arena.equal(original, reread)) << text;
    EXPECT_EQ(structuralHash(arena, original),
              structuralHash(arena, reread))
        << text;
    // Shape metrics: cells == n + p for proper lists.
    if (arena.kind(original) == NodeKind::kCons) {
      const ListShape shape = measureShape(arena, original);
      EXPECT_EQ(shape.cells, shape.n + shape.p) << text;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SexprFuzz,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

TEST_F(SexprTest, PrinterBoundsCyclicStructures) {
  const NodeRef cell = arena.cons(arena.integer(1), kNilRef);
  arena.setCdr(cell, cell);  // cycle
  const std::string out = print(arena, symbols, cell, 16);
  EXPECT_NE(out.find("..."), std::string::npos);
}

}  // namespace
}  // namespace small::sexpr
