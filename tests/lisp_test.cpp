// Tests for the Lisp interpreter and the two environment disciplines.
#include <gtest/gtest.h>

#include "lisp/env.hpp"
#include "lisp/interpreter.hpp"
#include "sexpr/printer.hpp"
#include "support/error.hpp"

namespace small::lisp {
namespace {

class InterpreterTest : public ::testing::Test {
 protected:
  std::string evalToString(std::string_view source) {
    return sexpr::print(arena, symbols, interp.run(source));
  }

  sexpr::SymbolTable symbols;
  sexpr::Arena arena;
  Interpreter interp{arena, symbols};
};

TEST_F(InterpreterTest, SelfEvaluating) {
  EXPECT_EQ(evalToString("42"), "42");
  EXPECT_EQ(evalToString("nil"), "nil");
  EXPECT_EQ(evalToString("t"), "t");
}

TEST_F(InterpreterTest, QuoteReturnsDatum) {
  EXPECT_EQ(evalToString("(quote (a b c))"), "(a b c)");
  EXPECT_EQ(evalToString("'(1 2)"), "(1 2)");
}

TEST_F(InterpreterTest, ListPrimitives) {
  EXPECT_EQ(evalToString("(car '(a b))"), "a");
  EXPECT_EQ(evalToString("(cdr '(a b))"), "(b)");
  EXPECT_EQ(evalToString("(cons 'a '(b))"), "(a b)");
  EXPECT_EQ(evalToString("(car nil)"), "nil");
}

TEST_F(InterpreterTest, CxrCompositions) {
  EXPECT_EQ(evalToString("(caar '((a b) c))"), "a");
  EXPECT_EQ(evalToString("(cadr '(a b c))"), "b");
  EXPECT_EQ(evalToString("(cddr '(a b c))"), "(c)");
  EXPECT_EQ(evalToString("(cdar '((a b) c))"), "(b)");
}

TEST_F(InterpreterTest, DestructiveModification) {
  EXPECT_EQ(evalToString("(setq x '(a b)) (rplaca x 'z) x"), "(z b)");
  EXPECT_EQ(evalToString("(setq y '(a b)) (rplacd y '(q)) y"), "(a q)");
}

TEST_F(InterpreterTest, Predicates) {
  EXPECT_EQ(evalToString("(atom 'a)"), "t");
  EXPECT_EQ(evalToString("(atom '(a))"), "nil");
  EXPECT_EQ(evalToString("(null nil)"), "t");
  EXPECT_EQ(evalToString("(null '(a))"), "nil");
  EXPECT_EQ(evalToString("(equal '(a (b)) '(a (b)))"), "t");
  EXPECT_EQ(evalToString("(equal '(a) '(b))"), "nil");
  EXPECT_EQ(evalToString("(eq 'a 'a)"), "t");
  EXPECT_EQ(evalToString("(numberp 3)"), "t");
  EXPECT_EQ(evalToString("(listp '(a))"), "t");
  EXPECT_EQ(evalToString("(zerop 0)"), "t");
}

TEST_F(InterpreterTest, Arithmetic) {
  EXPECT_EQ(evalToString("(+ 1 2 3)"), "6");
  EXPECT_EQ(evalToString("(- 10 4)"), "6");
  EXPECT_EQ(evalToString("(- 5)"), "-5");
  EXPECT_EQ(evalToString("(* 3 4)"), "12");
  EXPECT_EQ(evalToString("(/ 9 2)"), "4");
  EXPECT_EQ(evalToString("(rem 9 2)"), "1");
  EXPECT_THROW(evalToString("(/ 1 0)"), support::EvalError);
}

TEST_F(InterpreterTest, Comparisons) {
  EXPECT_EQ(evalToString("(< 1 2)"), "t");
  EXPECT_EQ(evalToString("(> 1 2)"), "nil");
  EXPECT_EQ(evalToString("(= 3 3)"), "t");
  EXPECT_EQ(evalToString("(<= 3 3)"), "t");
  EXPECT_EQ(evalToString("(>= 2 3)"), "nil");
}

TEST_F(InterpreterTest, CondEvaluatesFirstTrueClause) {
  EXPECT_EQ(evalToString("(cond (nil 1) (t 2) (t 3))"), "2");
  EXPECT_EQ(evalToString("(cond (nil 1))"), "nil");
  EXPECT_EQ(evalToString("(cond ((= 1 1) 'yes))"), "yes");
  // A clause with no body yields the test value.
  EXPECT_EQ(evalToString("(cond (42))"), "42");
}

TEST_F(InterpreterTest, SetqAndLookup) {
  EXPECT_EQ(evalToString("(setq a 5) (+ a 1)"), "6");
  EXPECT_EQ(evalToString("(setq a 1 b 2) (+ a b)"), "3");
  EXPECT_THROW(evalToString("unbound-name"), support::EvalError);
}

TEST_F(InterpreterTest, DefAndCall) {
  EXPECT_EQ(evalToString("(def double (lambda (x) (* x 2))) (double 21)"),
            "42");
  EXPECT_EQ(evalToString("(defun inc (x) (+ x 1)) (inc 41)"), "42");
  EXPECT_THROW(evalToString("(defun f (x) x) (f 1 2)"), support::EvalError);
}

TEST_F(InterpreterTest, RecursionFactorial) {
  // The thesis' Fig 4.14 factorial.
  EXPECT_EQ(evalToString(R"(
    (def fact (lambda (x)
      (cond ((= x 0) 1)
            (t (* x (fact (- x 1)))))))
    (fact 10))"),
            "3628800");
}

TEST_F(InterpreterTest, ProgWithGoAndReturn) {
  EXPECT_EQ(evalToString(R"(
    (prog (i acc)
      (setq i 0)
      (setq acc 0)
      loop
      (cond ((> i 10) (return acc)))
      (setq acc (+ acc i))
      (setq i (+ i 1))
      (go loop)))"),
            "55");
}

TEST_F(InterpreterTest, PrognLetWhile) {
  EXPECT_EQ(evalToString("(progn 1 2 3)"), "3");
  EXPECT_EQ(evalToString("(let ((a 1) (b 2)) (+ a b))"), "3");
  EXPECT_EQ(evalToString(R"(
    (setq n 0)
    (while (< n 5) (setq n (+ n 1)))
    n)"),
            "5");
}

TEST_F(InterpreterTest, AndOrIf) {
  EXPECT_EQ(evalToString("(and 1 2 3)"), "3");
  EXPECT_EQ(evalToString("(and 1 nil 3)"), "nil");
  EXPECT_EQ(evalToString("(or nil 2)"), "2");
  EXPECT_EQ(evalToString("(or nil nil)"), "nil");
  EXPECT_EQ(evalToString("(if t 'a 'b)"), "a");
  EXPECT_EQ(evalToString("(if nil 'a 'b)"), "b");
  EXPECT_EQ(evalToString("(if nil 'a)"), "nil");
}

TEST_F(InterpreterTest, DynamicScoping) {
  // Deep binding: the callee sees the caller's binding of x.
  EXPECT_EQ(evalToString(R"(
    (defun callee () x)
    (defun caller (x) (callee))
    (caller 42))"),
            "42");
}

TEST_F(InterpreterTest, TheFunargProblemUnderDynamicScoping) {
  // §2.2.1: "when it is executed, the evaluation must be conducted in the
  // referencing context that was present when the functional argument was
  // initially passed" — which dynamic scoping does NOT do. This test pins
  // the (documented) dynamic behaviour: the lambda sees the *callee's*
  // binding of x, the classic downward-funarg capture hazard.
  EXPECT_EQ(evalToString(R"(
    (setq x 1)
    (defun apply-it (f x) (f 0))
    (setq add-x (lambda (ignored) (+ x ignored)))
    (apply-it add-x 100))"),
            "100");  // a lexically scoped Lisp would answer 1
}

TEST_F(InterpreterTest, FunargPassedAndCalledThroughParameter) {
  EXPECT_EQ(evalToString(R"(
    (defun compose2 (f g v) (f (g v)))
    (compose2 (lambda (a) (* a 2)) (lambda (b) (+ b 3)) 10))"),
            "26");
}

TEST_F(InterpreterTest, FunargLambdaBoundToVariable) {
  EXPECT_EQ(evalToString(R"(
    (setq f (lambda (x) (* x x)))
    (f 6))"),
            "36");
  EXPECT_EQ(evalToString("((lambda (a b) (+ a b)) 1 2)"), "3");
}

TEST_F(InterpreterTest, ListAndAppendBuiltins) {
  EXPECT_EQ(evalToString("(list 1 2 3)"), "(1 2 3)");
  EXPECT_EQ(evalToString("(append '(a b) '(c))"), "(a b c)");
  EXPECT_EQ(evalToString("(append nil '(x))"), "(x)");
}

TEST_F(InterpreterTest, ReadAndWrite) {
  interp.provideInputText("(hello world) 42");
  EXPECT_EQ(evalToString("(read)"), "(hello world)");
  EXPECT_EQ(evalToString("(read)"), "42");
  EXPECT_EQ(evalToString("(read)"), "nil");  // exhausted
  interp.run("(write '(out 1))");
  ASSERT_EQ(interp.output().size(), 1u);
  EXPECT_EQ(sexpr::print(arena, symbols, interp.output()[0]), "(out 1)");
}

TEST_F(InterpreterTest, StepBudgetStopsRunawayPrograms) {
  Interpreter::Options options;
  options.maxSteps = 1000;
  Interpreter bounded(arena, symbols, options);
  EXPECT_THROW(
      bounded.run("(defun spin () (spin)) (spin)"), support::EvalError);
}

// --- environment disciplines (§2.3.2) ---

TEST(DeepBindingEnv, ShadowingAndUnwind) {
  DeepBindingEnv env;
  env.assign(7, 100);  // global
  const auto mark = env.mark();
  env.bind(7, 200);
  EXPECT_EQ(env.lookup(7).value(), 200u);
  env.unwindTo(mark);
  EXPECT_EQ(env.lookup(7).value(), 100u);
}

TEST(DeepBindingEnv, LookupScansGrowWithDepth) {
  DeepBindingEnv env;
  for (sexpr::SymbolId s = 0; s < 100; ++s) env.bind(s, s);
  const auto before = env.lookupScans();
  (void)env.lookup(0);  // deepest binding: full scan
  EXPECT_EQ(env.lookupScans() - before, 100u);
}

TEST(ShallowBindingEnv, ConstantTimeLookupAfterBind) {
  ShallowBindingEnv env;
  env.bind(3, 30);
  env.bind(3, 31);
  EXPECT_EQ(env.lookup(3).value(), 31u);
  env.unwindTo(1);
  EXPECT_EQ(env.lookup(3).value(), 30u);
  env.unwindTo(0);
  EXPECT_FALSE(env.lookup(3).has_value());
}

TEST(ShallowBindingEnv, CellWritesAccumulateOnCallsAndReturns) {
  ShallowBindingEnv env;
  const auto mark = env.mark();
  env.bind(1, 10);
  env.bind(2, 20);
  env.unwindTo(mark);
  // 2 writes on bind + 2 on restore.
  EXPECT_EQ(env.cellWrites(), 4u);
}

TEST(Environments, BothDisciplinesAgreeOnSemantics) {
  // Property check: a random bind/assign/unwind script yields identical
  // lookups under deep and shallow binding.
  DeepBindingEnv deep;
  ShallowBindingEnv shallow;
  std::vector<Environment::Mark> deepMarks;
  std::vector<Environment::Mark> shallowMarks;
  std::uint64_t state = 12345;
  auto next = [&state] {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 33;
  };
  for (int step = 0; step < 2000; ++step) {
    const auto op = next() % 4;
    const auto name = static_cast<sexpr::SymbolId>(next() % 16);
    const auto value = static_cast<sexpr::NodeRef>(next() % 1000);
    if (op == 0) {
      deepMarks.push_back(deep.mark());
      shallowMarks.push_back(shallow.mark());
      deep.bind(name, value);
      shallow.bind(name, value);
    } else if (op == 1 && !deepMarks.empty()) {
      deep.unwindTo(deepMarks.back());
      shallow.unwindTo(shallowMarks.back());
      deepMarks.pop_back();
      shallowMarks.pop_back();
    } else if (op == 2) {
      deep.assign(name, value);
      shallow.assign(name, value);
    } else {
      EXPECT_EQ(deep.lookup(name).has_value(),
                shallow.lookup(name).has_value());
      if (deep.lookup(name).has_value()) {
        EXPECT_EQ(*deep.lookup(name), *shallow.lookup(name));
      }
    }
  }
}

}  // namespace
}  // namespace small::lisp
