// The trace replayer drives the functional SMALL machine from a
// preprocessed trace. All randomness lives in the replayer, never in the
// machine, so the op sequence for a given (trace, seed) is identical on
// every heap backend — and therefore every representation-independent
// machine counter must be too. The physical heap books are the only thing
// allowed to differ.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "small/machine_replay.hpp"
#include "trace/binary.hpp"
#include "trace/preprocess.hpp"
#include "trace/synthetic.hpp"

namespace small::core {
namespace {

trace::PreprocessedTrace smallTrace(std::uint64_t seed) {
  trace::WorkloadProfile profile;
  profile.name = "replay-test";
  profile.primitiveCalls = 4000;
  support::Rng rng(seed);
  return trace::preprocess(trace::generate(profile, rng));
}

ReplayResult replayOn(const trace::PreprocessedTrace& pre,
                      heap::HeapBackendKind kind, std::uint64_t seed,
                      std::uint32_t tableSize) {
  ReplayConfig config;
  config.seed = seed;
  config.machine.heapBackend = kind;
  config.machine.tableSize = tableSize;
  return replayTrace(config, pre);
}

TEST(MachineReplay, RunsAndTouchesEverySubsystem) {
  const auto pre = smallTrace(3);
  const ReplayResult result =
      replayOn(pre, heap::HeapBackendKind::kTwoPointer, 11, 1024);
  EXPECT_GT(result.primitives, 0u);
  EXPECT_GT(result.machine.gets, 0u);
  EXPECT_GT(result.machine.readLists, 0u);
  EXPECT_GT(result.machine.conses, 0u);
  EXPECT_GT(result.machine.splits, 0u);
  EXPECT_GT(result.heap.allocs, 0u);
  EXPECT_GT(result.heap.touches(), 0u);
  // Shutdown released the whole EP stack; only cyclic garbage may remain.
  EXPECT_LE(result.residualEntries, result.machine.peakEntriesInUse);
}

TEST(MachineReplay, DeterministicForFixedSeed) {
  const auto pre = smallTrace(3);
  const auto a = replayOn(pre, heap::HeapBackendKind::kTwoPointer, 11, 1024);
  const auto b = replayOn(pre, heap::HeapBackendKind::kTwoPointer, 11, 1024);
  EXPECT_EQ(a.machine.gets, b.machine.gets);
  EXPECT_EQ(a.machine.frees, b.machine.frees);
  EXPECT_EQ(a.machine.splits, b.machine.splits);
  EXPECT_EQ(a.machine.merges, b.machine.merges);
  EXPECT_EQ(a.heap.touches(), b.heap.touches());
  EXPECT_EQ(a.residualEntries, b.residualEntries);
}

TEST(MachineReplay, MachineCountersInvariantAcrossBackends) {
  const auto pre = smallTrace(7);
  // Table small enough that compression (merges) fires, so the invariant
  // is checked through the split AND merge paths.
  const auto reference =
      replayOn(pre, heap::HeapBackendKind::kTwoPointer, 17, 96);
  for (const heap::HeapBackendKind kind :
       {heap::HeapBackendKind::kCdrCoded,
        heap::HeapBackendKind::kLinkedVector}) {
    const auto run = replayOn(pre, kind, 17, 96);
    const char* backend = heap::heapBackendName(kind);
    EXPECT_EQ(reference.machine.gets, run.machine.gets) << backend;
    EXPECT_EQ(reference.machine.frees, run.machine.frees) << backend;
    EXPECT_EQ(reference.machine.splits, run.machine.splits) << backend;
    EXPECT_EQ(reference.machine.hits, run.machine.hits) << backend;
    EXPECT_EQ(reference.machine.merges, run.machine.merges) << backend;
    EXPECT_EQ(reference.machine.conses, run.machine.conses) << backend;
    EXPECT_EQ(reference.machine.modifies, run.machine.modifies) << backend;
    EXPECT_EQ(reference.machine.readLists, run.machine.readLists) << backend;
    EXPECT_EQ(reference.machine.refOps, run.machine.refOps) << backend;
    EXPECT_EQ(reference.machine.pseudoOverflows, run.machine.pseudoOverflows)
        << backend;
    EXPECT_EQ(reference.machine.peakEntriesInUse,
              run.machine.peakEntriesInUse)
        << backend;
    EXPECT_EQ(reference.primitives, run.primitives) << backend;
    EXPECT_EQ(reference.functionCalls, run.functionCalls) << backend;
    // Cyclic leftovers are a property of the op sequence, not the layout.
    EXPECT_EQ(reference.residualEntries, run.residualEntries) << backend;
    // Physical activity is the experimental axis — it must be nonzero but
    // is free to differ.
    EXPECT_GT(run.heap.touches(), 0u) << backend;
  }
}

TEST(MachineReplay, MappedReplayMatchesInMemoryReplay) {
  // The streaming path (mmap'd binary trace -> batched decode -> feed)
  // must produce the exact counters of the materialize-then-replay path,
  // at any batch size — including a batch of one event.
  trace::WorkloadProfile profile;
  profile.name = "replay-mapped";
  profile.primitiveCalls = 4000;
  support::Rng rng(5);
  const trace::Trace raw = trace::generate(profile, rng);

  ReplayConfig config;
  config.seed = 13;
  config.machine.heapBackend = heap::HeapBackendKind::kTwoPointer;
  config.machine.tableSize = 256;
  const ReplayResult expected = replayTrace(config, trace::preprocess(raw));

  const std::string path =
      ::testing::TempDir() + "/small_replay_mapped.trace";
  trace::saveBinaryFile(raw, path);
  const trace::MappedTrace mapped = trace::MappedTrace::open(path);
  for (const std::size_t batchSize :
       {std::size_t{1}, std::size_t{7}, std::size_t{1024}}) {
    const ReplayResult run = replayMappedTrace(config, mapped, batchSize);
    EXPECT_EQ(expected.primitives, run.primitives) << batchSize;
    EXPECT_EQ(expected.functionCalls, run.functionCalls) << batchSize;
    EXPECT_EQ(expected.machine.gets, run.machine.gets) << batchSize;
    EXPECT_EQ(expected.machine.frees, run.machine.frees) << batchSize;
    EXPECT_EQ(expected.machine.splits, run.machine.splits) << batchSize;
    EXPECT_EQ(expected.machine.merges, run.machine.merges) << batchSize;
    EXPECT_EQ(expected.machine.conses, run.machine.conses) << batchSize;
    EXPECT_EQ(expected.machine.peakEntriesInUse,
              run.machine.peakEntriesInUse)
        << batchSize;
    EXPECT_EQ(expected.heap.allocs, run.heap.allocs) << batchSize;
    EXPECT_EQ(expected.heap.touches(), run.heap.touches()) << batchSize;
    EXPECT_EQ(expected.residualEntries, run.residualEntries) << batchSize;
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace small::core
