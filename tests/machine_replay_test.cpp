// The trace replayer drives the functional SMALL machine from a
// preprocessed trace. All randomness lives in the replayer, never in the
// machine, so the op sequence for a given (trace, seed) is identical on
// every heap backend — and therefore every representation-independent
// machine counter must be too. The physical heap books are the only thing
// allowed to differ.
#include <gtest/gtest.h>

#include "small/machine_replay.hpp"
#include "trace/preprocess.hpp"
#include "trace/synthetic.hpp"

namespace small::core {
namespace {

trace::PreprocessedTrace smallTrace(std::uint64_t seed) {
  trace::WorkloadProfile profile;
  profile.name = "replay-test";
  profile.primitiveCalls = 4000;
  support::Rng rng(seed);
  return trace::preprocess(trace::generate(profile, rng));
}

ReplayResult replayOn(const trace::PreprocessedTrace& pre,
                      heap::HeapBackendKind kind, std::uint64_t seed,
                      std::uint32_t tableSize) {
  ReplayConfig config;
  config.seed = seed;
  config.machine.heapBackend = kind;
  config.machine.tableSize = tableSize;
  return replayTrace(config, pre);
}

TEST(MachineReplay, RunsAndTouchesEverySubsystem) {
  const auto pre = smallTrace(3);
  const ReplayResult result =
      replayOn(pre, heap::HeapBackendKind::kTwoPointer, 11, 1024);
  EXPECT_GT(result.primitives, 0u);
  EXPECT_GT(result.machine.gets, 0u);
  EXPECT_GT(result.machine.readLists, 0u);
  EXPECT_GT(result.machine.conses, 0u);
  EXPECT_GT(result.machine.splits, 0u);
  EXPECT_GT(result.heap.allocs, 0u);
  EXPECT_GT(result.heap.touches(), 0u);
  // Shutdown released the whole EP stack; only cyclic garbage may remain.
  EXPECT_LE(result.residualEntries, result.machine.peakEntriesInUse);
}

TEST(MachineReplay, DeterministicForFixedSeed) {
  const auto pre = smallTrace(3);
  const auto a = replayOn(pre, heap::HeapBackendKind::kTwoPointer, 11, 1024);
  const auto b = replayOn(pre, heap::HeapBackendKind::kTwoPointer, 11, 1024);
  EXPECT_EQ(a.machine.gets, b.machine.gets);
  EXPECT_EQ(a.machine.frees, b.machine.frees);
  EXPECT_EQ(a.machine.splits, b.machine.splits);
  EXPECT_EQ(a.machine.merges, b.machine.merges);
  EXPECT_EQ(a.heap.touches(), b.heap.touches());
  EXPECT_EQ(a.residualEntries, b.residualEntries);
}

TEST(MachineReplay, MachineCountersInvariantAcrossBackends) {
  const auto pre = smallTrace(7);
  // Table small enough that compression (merges) fires, so the invariant
  // is checked through the split AND merge paths.
  const auto reference =
      replayOn(pre, heap::HeapBackendKind::kTwoPointer, 17, 96);
  for (const heap::HeapBackendKind kind :
       {heap::HeapBackendKind::kCdrCoded,
        heap::HeapBackendKind::kLinkedVector}) {
    const auto run = replayOn(pre, kind, 17, 96);
    const char* backend = heap::heapBackendName(kind);
    EXPECT_EQ(reference.machine.gets, run.machine.gets) << backend;
    EXPECT_EQ(reference.machine.frees, run.machine.frees) << backend;
    EXPECT_EQ(reference.machine.splits, run.machine.splits) << backend;
    EXPECT_EQ(reference.machine.hits, run.machine.hits) << backend;
    EXPECT_EQ(reference.machine.merges, run.machine.merges) << backend;
    EXPECT_EQ(reference.machine.conses, run.machine.conses) << backend;
    EXPECT_EQ(reference.machine.modifies, run.machine.modifies) << backend;
    EXPECT_EQ(reference.machine.readLists, run.machine.readLists) << backend;
    EXPECT_EQ(reference.machine.refOps, run.machine.refOps) << backend;
    EXPECT_EQ(reference.machine.pseudoOverflows, run.machine.pseudoOverflows)
        << backend;
    EXPECT_EQ(reference.machine.peakEntriesInUse,
              run.machine.peakEntriesInUse)
        << backend;
    EXPECT_EQ(reference.primitives, run.primitives) << backend;
    EXPECT_EQ(reference.functionCalls, run.functionCalls) << backend;
    // Cyclic leftovers are a property of the op sequence, not the layout.
    EXPECT_EQ(reference.residualEntries, run.residualEntries) << backend;
    // Physical activity is the experimental axis — it must be nonzero but
    // is free to differ.
    EXPECT_GT(run.heap.touches(), 0u) << backend;
  }
}

}  // namespace
}  // namespace small::core
