// Tests for the EP/LP timing model (§4.3.2.5).
#include <gtest/gtest.h>

#include "small/timing.hpp"
#include "support/rng.hpp"
#include "trace/preprocess.hpp"
#include "trace/synthetic.hpp"

namespace small::core {
namespace {

TEST(Timing, RplacDoesNotStallTheEp) {
  // Fig 4.12: "Control can be passed back to the EP while these LPT
  // changes are being made."
  const OpTiming t = modifyTiming(TimingParams{});
  EXPECT_EQ(t.epWait, 0u);
  EXPECT_GT(t.lpTail, 0u);
}

TEST(Timing, ConsStallsOnlyForAllocation) {
  const TimingParams p{};
  const OpTiming t = consTiming(p);
  EXPECT_EQ(t.epWait, p.entryAlloc + p.busTransfer);
  // Field setting and refcounts happen after the EP resumes.
  EXPECT_GE(t.lpTail, 2u * p.lptUpdate);
}

TEST(Timing, ReadListStallsForIo) {
  const TimingParams p{};
  const OpTiming t = readListTiming(p);
  EXPECT_GE(t.epWait, p.listIo);
}

TEST(Timing, MissCostsMoreThanHit) {
  const TimingParams p{};
  EXPECT_GT(accessMissTiming(p).epLatency(), accessHitTiming(p).epLatency());
  EXPECT_GT(accessMissTiming(p).serialized(),
            accessHitTiming(p).serialized());
}

TEST(Timing, SerializedIsBusyPlusLpWork) {
  const TimingParams p{};
  for (const OpTiming& t :
       {readListTiming(p), accessHitTiming(p), accessMissTiming(p),
        modifyTiming(p), consTiming(p)}) {
    EXPECT_EQ(t.serialized(), t.epBusy + t.lpBusy + t.lpTail) << t.name;
    // The EP never waits longer than the LP (plus bus) needs to respond.
    EXPECT_LE(t.lpBusy, t.epWait + 1) << t.name;
  }
}

TEST(Timing, TimelineRendersPhases) {
  const std::string timeline = renderTimeline(consTiming(TimingParams{}));
  EXPECT_NE(timeline.find("EP |"), std::string::npos);
  EXPECT_NE(timeline.find("LP |"), std::string::npos);
  EXPECT_NE(timeline.find('#'), std::string::npos);
  EXPECT_NE(timeline.find('~'), std::string::npos);
}

class ConcurrencySweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ConcurrencySweep, SpeedupIsBetweenOneAndTwo) {
  // Two processors cannot beat 2x, and overlap can never lose to the
  // serialized organization.
  support::Rng rng(GetParam());
  const auto pre =
      trace::preprocess(trace::generate(trace::slangProfile(0.2), rng));
  SimConfig config;
  config.seed = GetParam();
  const SimResult result = simulateTrace(config, pre);
  const ConcurrencyReport report =
      analyzeConcurrency(result, TimingParams{});
  EXPECT_GE(report.speedup(), 1.0);
  EXPECT_LE(report.speedup(), 2.0);
  EXPECT_GT(report.epUtilization(), 0.0);
  EXPECT_LE(report.epUtilization(), 1.0);
  EXPECT_LE(report.lpUtilization(), 1.0);
  EXPECT_EQ(report.makespan,
            std::max(report.epBusy + report.epIdle, report.lpBusy));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConcurrencySweep,
                         ::testing::Values(1u, 2u, 3u));

TEST(Timing, FasterHeapShrinksEpIdle) {
  support::Rng rng(5);
  const auto pre =
      trace::preprocess(trace::generate(trace::slangProfile(0.2), rng));
  SimConfig config;
  const SimResult result = simulateTrace(config, pre);
  TimingParams slow;
  slow.heapSplit = 20;
  TimingParams fast;
  fast.heapSplit = 2;
  const auto slowReport = analyzeConcurrency(result, slow);
  const auto fastReport = analyzeConcurrency(result, fast);
  EXPECT_LT(fastReport.epIdle, slowReport.epIdle);
}

}  // namespace
}  // namespace small::core
