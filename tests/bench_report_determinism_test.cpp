// End-to-end artifact tests against the real bench binaries (paths baked
// in by CMake): the `--metrics-out` bytes must be identical at --jobs 1
// and --jobs 4 (the obs determinism contract), `--trace-out` must be a
// loadable Chrome trace-event document, text output must not change when
// the artifact flags are added, and unknown flags must be rejected.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/json.hpp"

namespace {

using small::obs::JsonError;
using small::obs::JsonValue;
using small::obs::parseJson;

std::string tempPath(const std::string& name) {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir != nullptr ? dir : "/tmp") + "/" + name;
}

int runCommand(const std::string& command) {
  const int status = std::system(command.c_str());
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

class BenchArtifacts : public ::testing::TestWithParam<const char*> {
 protected:
  std::string benchPath() const {
    const std::string name = GetParam();
    if (name == "fig5_1_2_lpt_size") return FIG5_BENCH;
    if (name == "workload_scale") return WORKLOAD_BENCH;
    return GC_BENCH;
  }
  std::string benchName() const { return GetParam(); }
};

TEST_P(BenchArtifacts, MetricsIdenticalAcrossJobCounts) {
  const std::string metrics1 = tempPath(benchName() + ".j1.jsonl");
  const std::string metrics4 = tempPath(benchName() + ".j4.jsonl");
  const std::string text1 = tempPath(benchName() + ".j1.txt");
  const std::string text4 = tempPath(benchName() + ".j4.txt");
  ASSERT_EQ(runCommand(benchPath() + " --quick --jobs 1 --metrics-out " +
                       metrics1 + " > " + text1),
            0);
  ASSERT_EQ(runCommand(benchPath() + " --quick --jobs 4 --metrics-out " +
                       metrics4 + " > " + text4),
            0);
  const std::string bytes1 = slurp(metrics1);
  EXPECT_FALSE(bytes1.empty());
  EXPECT_EQ(bytes1, slurp(metrics4))
      << "--metrics-out differs between --jobs 1 and --jobs 4";
  EXPECT_EQ(slurp(text1), slurp(text4))
      << "text output differs between --jobs 1 and --jobs 4";

  // The report must start with the versioned header naming the bench,
  // and every line must parse as a JSON object.
  std::istringstream lines(bytes1);
  std::string line;
  std::size_t lineNo = 0;
  while (std::getline(lines, line)) {
    ++lineNo;
    JsonValue value;
    JsonError error;
    ASSERT_TRUE(parseJson(line, &value, &error))
        << "line " << lineNo << ": " << error.message;
    ASSERT_TRUE(value.isObject());
    if (lineNo == 1) {
      EXPECT_EQ(value.find("type")->stringValue(), "bench_report");
      EXPECT_EQ(value.find("bench")->stringValue(), benchName());
      EXPECT_EQ(value.find("version")->intValue(), 1);
      // --jobs and output paths must NOT leak into the config block.
      const JsonValue* config = value.find("config");
      ASSERT_NE(config, nullptr);
      EXPECT_EQ(config->find("jobs"), nullptr);
      EXPECT_EQ(config->find("metrics_out"), nullptr);
    }
  }
  EXPECT_GT(lineNo, 1u) << "report should carry figures/metrics lines";
}

TEST_P(BenchArtifacts, TextOutputUnchangedByArtifactFlags) {
  const std::string plain = tempPath(benchName() + ".plain.txt");
  const std::string decorated = tempPath(benchName() + ".decorated.txt");
  ASSERT_EQ(runCommand(benchPath() + " --quick --jobs 2 > " + plain), 0);
  ASSERT_EQ(runCommand(benchPath() + " --quick --jobs 2 --metrics-out " +
                       tempPath(benchName() + ".dec.jsonl") +
                       " --trace-out " +
                       tempPath(benchName() + ".dec.trace.json") + " > " +
                       decorated),
            0);
  EXPECT_EQ(slurp(plain), slurp(decorated))
      << "--metrics-out/--trace-out must not change the text output";
}

TEST_P(BenchArtifacts, ChromeTraceLoads) {
  const std::string tracePath = tempPath(benchName() + ".trace.json");
  ASSERT_EQ(runCommand(benchPath() + " --quick --trace-out " + tracePath +
                       " > /dev/null"),
            0);
  JsonValue trace;
  JsonError error;
  ASSERT_TRUE(parseJson(slurp(tracePath), &trace, &error))
      << error.message;
  ASSERT_TRUE(trace.isArray());
  ASSERT_FALSE(trace.items().empty());
  // The trace interleaves "X" duration spans with "C" telemetry counter
  // samples (dur/tid are span-only; counters carry args.value instead).
  std::size_t counterEvents = 0;
  for (const JsonValue& event : trace.items()) {
    ASSERT_TRUE(event.isObject());
    ASSERT_NE(event.find("name"), nullptr);
    EXPECT_TRUE(event.find("name")->isString());
    ASSERT_NE(event.find("ph"), nullptr);
    const std::string ph = event.find("ph")->stringValue();
    ASSERT_NE(event.find("ts"), nullptr);
    EXPECT_TRUE(event.find("ts")->isInt());
    ASSERT_NE(event.find("pid"), nullptr);
    if (ph == "C") {
      ++counterEvents;
      const JsonValue* args = event.find("args");
      ASSERT_NE(args, nullptr);
      ASSERT_NE(args->find("value"), nullptr);
      EXPECT_TRUE(args->find("value")->isNumber());
    } else {
      EXPECT_EQ(ph, "X");
      ASSERT_NE(event.find("dur"), nullptr);
      ASSERT_NE(event.find("tid"), nullptr);
    }
  }
  // --trace-out switches the telemetry plane on, so every bench that
  // wires a Snapshotter must land counter tracks in its trace.
  if (benchName() != "fig5_1_2_lpt_size") {
    EXPECT_GT(counterEvents, 0u)
        << benchName() << " trace carries no telemetry counter events";
  }
}

TEST_P(BenchArtifacts, TelemetryIdenticalAcrossJobCounts) {
  const std::string tel1 = tempPath(benchName() + ".tel.j1.jsonl");
  const std::string tel4 = tempPath(benchName() + ".tel.j4.jsonl");
  ASSERT_EQ(runCommand(benchPath() + " --quick --jobs 1 --telemetry-out " +
                       tel1 + " > /dev/null"),
            0);
  ASSERT_EQ(runCommand(benchPath() + " --quick --jobs 4 --telemetry-out " +
                       tel4 + " > /dev/null"),
            0);
  const std::string bytes1 = slurp(tel1);
  EXPECT_FALSE(bytes1.empty());
  EXPECT_EQ(bytes1, slurp(tel4))
      << "--telemetry-out differs between --jobs 1 and --jobs 4";

  // Header first, then only deterministic epoch-plane series whose
  // epochs strictly increase — the wall-clock perf plane must never
  // reach this file (it would break the byte diff above).
  std::istringstream lines(bytes1);
  std::string line;
  std::size_t lineNo = 0;
  while (std::getline(lines, line)) {
    ++lineNo;
    JsonValue value;
    JsonError error;
    ASSERT_TRUE(parseJson(line, &value, &error))
        << "line " << lineNo << ": " << error.message;
    if (lineNo == 1) {
      EXPECT_EQ(value.find("type")->stringValue(), "telemetry");
      EXPECT_EQ(value.find("bench")->stringValue(), benchName());
      EXPECT_EQ(value.find("version")->intValue(), 1);
      continue;
    }
    ASSERT_EQ(value.find("type")->stringValue(), "series");
    EXPECT_EQ(value.find("plane")->stringValue(), "epoch");
    const JsonValue* samples = value.find("samples");
    ASSERT_NE(samples, nullptr);
    std::int64_t last = -1;
    for (const JsonValue& pair : samples->items()) {
      ASSERT_EQ(pair.items().size(), 2u);
      EXPECT_GT(pair.items()[0].intValue(), last);
      last = pair.items()[0].intValue();
    }
  }
  if (benchName() != "fig5_1_2_lpt_size") {
    EXPECT_GT(lineNo, 1u) << "telemetry file should carry series lines";
  }
}

TEST_P(BenchArtifacts, InvalidJobsRejected) {
  // --jobs used to go through std::atoi, which silently mapped 0,
  // negatives, and garbage to "hardware concurrency". All three must now
  // be usage errors (exit 2), matching the unknown-flag path.
  for (const char* bad : {"0", "-3", "banana", "4x", ""}) {
    const std::string quoted = std::string("'") + bad + "'";
    EXPECT_EQ(runCommand(benchPath() + " --quick --jobs " + quoted +
                         " > /dev/null 2>&1"),
              2)
        << "--jobs " << quoted << " must exit 2";
  }
  const std::string message = tempPath(benchName() + ".jobs.err");
  ASSERT_EQ(runCommand(benchPath() + " --quick --jobs 0 > /dev/null 2> " +
                       message),
            2);
  const std::string err = slurp(message);
  EXPECT_NE(err.find("--jobs requires a positive integer (got '0')"),
            std::string::npos)
      << err;
  EXPECT_NE(err.find("usage:"), std::string::npos) << err;
}

TEST_P(BenchArtifacts, UnknownFlagRejected) {
  EXPECT_EQ(runCommand(benchPath() +
                       " --definitely-not-a-flag > /dev/null 2>&1"),
            2);
  EXPECT_EQ(runCommand(benchPath() + " --metrics-out > /dev/null 2>&1"), 2)
      << "--metrics-out without a value must be rejected";
}

INSTANTIATE_TEST_SUITE_P(Benches, BenchArtifacts,
                         ::testing::Values("fig5_1_2_lpt_size",
                                           "gc_comparison",
                                           "workload_scale"));

// The service bench replicates its deterministic workload per session,
// and each session's telemetry buffer is folded in session-id order — so
// the telemetry bytes must be identical at any --sessions and --jobs
// count (the tentpole acceptance check, here against the real binary).
TEST(ServiceTelemetry, IdenticalAcrossSessionAndJobCounts) {
  const std::string bench = SERVICE_BENCH;
  const std::string s1 = tempPath("service.tel.s1.jsonl");
  const std::string s4 = tempPath("service.tel.s4.jsonl");
  const std::string s4j4 = tempPath("service.tel.s4j4.jsonl");
  ASSERT_EQ(runCommand(bench + " --quick --sessions 1 --telemetry-out " +
                       s1 + " > /dev/null"),
            0);
  ASSERT_EQ(runCommand(bench + " --quick --sessions 4 --telemetry-out " +
                       s4 + " > /dev/null"),
            0);
  ASSERT_EQ(runCommand(bench +
                       " --quick --sessions 4 --jobs 4 --telemetry-out " +
                       s4j4 + " > /dev/null"),
            0);
  const std::string bytes = slurp(s1);
  ASSERT_FALSE(bytes.empty());
  EXPECT_NE(bytes.find("\"type\":\"series\""), std::string::npos)
      << "service telemetry should carry per-session series";
  EXPECT_EQ(bytes, slurp(s4))
      << "service telemetry differs between --sessions 1 and 4";
  EXPECT_EQ(bytes, slurp(s4j4))
      << "service telemetry differs between --jobs 1 and 4";
}

// workload_scale's own numeric flags go through the same strict parser
// as --jobs; malformed values must be usage errors, not silent clamps.
TEST(WorkloadScaleFlags, InvalidScaleAndSeedRejected) {
  const std::string bench = WORKLOAD_BENCH;
  for (const char* bad :
       {"--scale 0", "--scale -5", "--scale 12x", "--scale 1e",
        "--scale 999", "--seed 0", "--seed nope", "--seed 1e3.5"}) {
    EXPECT_EQ(runCommand(bench + " --quick " + bad + " > /dev/null 2>&1"),
              2)
        << bad << " must exit 2";
  }
}

}  // namespace
