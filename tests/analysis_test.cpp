// Tests for the Chapter 3 analysis machinery: census, list sets, LRU
// stack distances, and chaining.
#include <gtest/gtest.h>

#include "analysis/census.hpp"
#include "analysis/chaining.hpp"
#include "analysis/list_sets.hpp"
#include "analysis/lru.hpp"
#include "support/rng.hpp"
#include "trace/preprocess.hpp"
#include "trace/synthetic.hpp"

namespace small::analysis {
namespace {

using trace::Event;
using trace::EventKind;
using trace::ObjectRecord;
using trace::Primitive;
using trace::Trace;

ObjectRecord obj(std::uint64_t fp, std::uint32_t n = 2, std::uint32_t p = 0) {
  ObjectRecord record;
  record.fingerprint = fp;
  record.n = n;
  record.p = p;
  record.isList = true;
  return record;
}

void addPrim(Trace& trace, Primitive primitive,
             std::vector<ObjectRecord> args, ObjectRecord result) {
  Event event;
  event.kind = EventKind::kPrimitive;
  event.primitive = primitive;
  event.args = std::move(args);
  event.result = result;
  trace.append(std::move(event));
}

TEST(Census, CountsPrimitiveFractions) {
  Trace trace;
  addPrim(trace, Primitive::kCar, {obj(1)}, obj(2));
  addPrim(trace, Primitive::kCar, {obj(1)}, obj(2));
  addPrim(trace, Primitive::kCdr, {obj(1)}, obj(3));
  addPrim(trace, Primitive::kCons, {obj(2), obj(3)}, obj(4));
  const PrimitiveCensus census = censusPrimitives(trace);
  EXPECT_EQ(census.total, 4u);
  EXPECT_DOUBLE_EQ(census.fraction(Primitive::kCar), 0.5);
  EXPECT_DOUBLE_EQ(census.fraction(Primitive::kCdr), 0.25);
  EXPECT_DOUBLE_EQ(census.fraction(Primitive::kCons), 0.25);
  EXPECT_DOUBLE_EQ(census.fraction(Primitive::kRplaca), 0.0);
}

TEST(Census, ShapeStatisticsOverListArguments) {
  Trace trace;
  addPrim(trace, Primitive::kCar, {obj(1, 10, 2)}, obj(2));
  addPrim(trace, Primitive::kCar, {obj(3, 20, 4)}, obj(4));
  const ShapeStatistics stats = censusShapes(trace);
  EXPECT_EQ(stats.n.count(), 2u);
  EXPECT_DOUBLE_EQ(stats.n.mean(), 15.0);
  EXPECT_DOUBLE_EQ(stats.p.mean(), 3.0);
  EXPECT_EQ(stats.nHistogram.countOf(10), 1u);
}

// --- the list-set partitioner ---

TEST(ListSets, RelatedReferencesFormOneSet) {
  // car-chain over one list: everything lands in one set.
  Trace trace;
  addPrim(trace, Primitive::kCdr, {obj(1)}, obj(2));
  addPrim(trace, Primitive::kCdr, {obj(2)}, obj(3));
  addPrim(trace, Primitive::kCar, {obj(3)}, obj(4));
  const auto pre = preprocess(trace);
  const ListSetPartition partition = partitionListSets(pre);
  ASSERT_EQ(partition.sets.size(), 1u);
  EXPECT_EQ(partition.sets[0].references, 3u);
  EXPECT_EQ(partition.totalReferences, 3u);
}

TEST(ListSets, UnrelatedListsFormSeparateSets) {
  Trace trace;
  addPrim(trace, Primitive::kCar, {obj(1)}, obj(2));
  addPrim(trace, Primitive::kCar, {obj(10)}, obj(11));
  const auto pre = preprocess(trace);
  const ListSetPartition partition = partitionListSets(pre);
  EXPECT_EQ(partition.sets.size(), 2u);
}

TEST(ListSets, ConsRelatesBothOperands) {
  Trace trace;
  addPrim(trace, Primitive::kCar, {obj(1)}, obj(2));
  addPrim(trace, Primitive::kCar, {obj(10)}, obj(11));
  addPrim(trace, Primitive::kCons, {obj(2), obj(11)}, obj(20));
  const auto pre = preprocess(trace);
  ListSetOptions options;
  options.separationAbsolute = 100;  // isolate the relation logic
  const ListSetPartition partition = partitionListSets(pre, options);
  // The cons joins the two families into one set.
  EXPECT_EQ(partition.sets.size(), 1u);
  EXPECT_EQ(partition.totalReferences, 4u);
}

TEST(ListSets, SeparationConstraintSplitsDistantReferences) {
  // Two bursts of access to the same structure, far apart: with a small
  // absolute window they are distinct list sets; with a huge window, one.
  Trace trace;
  addPrim(trace, Primitive::kCar, {obj(1)}, obj(2));
  addPrim(trace, Primitive::kCar, {obj(1)}, obj(2));
  for (int i = 0; i < 100; ++i) {
    addPrim(trace, Primitive::kCar, {obj(100)}, obj(101));
  }
  addPrim(trace, Primitive::kCar, {obj(1)}, obj(2));
  const auto pre = preprocess(trace);

  ListSetOptions narrow;
  narrow.separationAbsolute = 10;
  const ListSetPartition split = partitionListSets(pre, narrow);

  ListSetOptions wide;
  wide.separationAbsolute = 100000;
  const ListSetPartition joined = partitionListSets(pre, wide);

  // obj(1)'s family: 2 sets under the narrow window, 1 under the wide.
  EXPECT_EQ(split.sets.size(), 3u);   // {1,1}, {100...}, {1}
  EXPECT_EQ(joined.sets.size(), 2u);  // {1,1,1}, {100...}
}

TEST(ListSets, LifetimeIsLastMinusFirst) {
  Trace trace;
  addPrim(trace, Primitive::kCar, {obj(1)}, obj(2));
  addPrim(trace, Primitive::kCar, {obj(50)}, obj(51));
  addPrim(trace, Primitive::kCar, {obj(50)}, obj(51));
  addPrim(trace, Primitive::kCar, {obj(1)}, obj(2));
  const auto pre = preprocess(trace);
  ListSetOptions options;
  options.separationFraction = 1.0;  // never split
  const ListSetPartition partition = partitionListSets(pre, options);
  ASSERT_EQ(partition.sets.size(), 2u);
  // Find the set of obj(1): first 0, last 3.
  bool found = false;
  for (const ListSet& s : partition.sets) {
    if (s.firstTouch == 0) {
      EXPECT_EQ(s.lastTouch, 3u);
      EXPECT_DOUBLE_EQ(s.lifetimeFraction(partition.traceLength), 0.75);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(ListSets, CumulativeSeriesReachesOne) {
  support::Rng rng(1);
  const Trace trace = generate(trace::slangProfile(0.1), rng);
  const auto pre = preprocess(trace);
  const ListSetPartition partition = partitionListSets(pre);
  const support::Series series = partition.cumulativeReferencesBySetRank();
  ASSERT_FALSE(series.y.empty());
  EXPECT_NEAR(series.y.back(), 1.0, 1e-9);
  // Monotone nondecreasing.
  for (std::size_t i = 1; i < series.y.size(); ++i) {
    EXPECT_GE(series.y[i], series.y[i - 1]);
  }
}

TEST(ListSets, SyntheticTraceShowsStructuralLocality) {
  // The thesis' headline observation: a small number of list sets covers a
  // large fraction of all references (~10 sets -> ~80%).
  support::Rng rng(7);
  const Trace trace = generate(trace::slangProfile(0.5), rng);
  const auto pre = preprocess(trace);
  const ListSetPartition partition = partitionListSets(pre);
  const support::Series series = partition.cumulativeReferencesBySetRank();
  ASSERT_GE(series.y.size(), 20u);
  EXPECT_GT(series.y[19], 0.6);  // 20 sets cover well over half
}

TEST(ListSets, LruDepthsConcentrateAtTop) {
  // Fig 3.7: ~70-90% of references within the top 4 list sets.
  support::Rng rng(11);
  const Trace trace = generate(trace::lyraProfile(0.05), rng);
  const auto pre = preprocess(trace);
  const ListSetPartition partition = partitionListSets(pre);
  const support::Series cdf = partition.lruDepthCdf(8);
  ASSERT_GE(cdf.y.size(), 4u);
  EXPECT_GT(cdf.y[3], 0.5);
}

// Parameterized sensitivity sweep (Figs 3.8-3.10): the partition's gross
// shape is stable across separation constraints.
class SeparationSweep : public ::testing::TestWithParam<double> {};

TEST_P(SeparationSweep, PartitionInvariants) {
  support::Rng rng(3);
  const Trace trace = generate(trace::slangProfile(0.2), rng);
  const auto pre = preprocess(trace);
  ListSetOptions options;
  options.separationFraction = GetParam();
  const ListSetPartition partition = partitionListSets(pre, options);

  std::uint64_t total = 0;
  for (const ListSet& s : partition.sets) {
    EXPECT_GE(s.lastTouch, s.firstTouch);
    EXPECT_LE(s.lastTouch - s.firstTouch, partition.traceLength);
    total += s.references;
  }
  // Every reference belongs to exactly one set.
  EXPECT_EQ(total, partition.totalReferences);
}

INSTANTIATE_TEST_SUITE_P(Constraints, SeparationSweep,
                         ::testing::Values(0.05, 0.10, 0.25, 0.50, 1.0));

TEST(ListSets, SmallerWindowNeverProducesFewerSets) {
  support::Rng rng(5);
  const Trace trace = generate(trace::editorProfile(0.1), rng);
  const auto pre = preprocess(trace);
  std::size_t previous = 0;
  for (const double fraction : {1.0, 0.5, 0.1, 0.05, 0.01}) {
    ListSetOptions options;
    options.separationFraction = fraction;
    const auto partition = partitionListSets(pre, options);
    EXPECT_GE(partition.sets.size(), previous);
    previous = partition.sets.size();
  }
}

// --- Mattson LRU ---

TEST(Mattson, DistancesMatchHandComputation) {
  MattsonStack stack;
  EXPECT_EQ(stack.reference(1), 0u);  // cold
  EXPECT_EQ(stack.reference(2), 0u);
  EXPECT_EQ(stack.reference(1), 2u);  // 1 is at depth 2
  EXPECT_EQ(stack.reference(1), 1u);  // now on top
  EXPECT_EQ(stack.reference(2), 2u);
  EXPECT_EQ(stack.coldMisses(), 2u);
  EXPECT_EQ(stack.references(), 5u);
}

TEST(Mattson, HitRatioMonotoneInCapacity) {
  MattsonStack stack;
  support::Rng rng(13);
  for (int i = 0; i < 5000; ++i) {
    stack.reference(rng.below(64));
  }
  double previous = 0.0;
  for (std::uint32_t capacity = 1; capacity <= 64; ++capacity) {
    const double ratio = stack.hitRatio(capacity);
    EXPECT_GE(ratio, previous);
    previous = ratio;
  }
  EXPECT_NEAR(stack.hitRatio(64),
              1.0 - static_cast<double>(stack.coldMisses()) / 5000.0, 1e-9);
}

TEST(Mattson, CurveMatchesPointQueries) {
  MattsonStack stack;
  support::Rng rng(17);
  for (int i = 0; i < 2000; ++i) stack.reference(rng.below(32));
  const support::Series curve = stack.hitRatioCurve(32);
  ASSERT_EQ(curve.y.size(), 32u);
  EXPECT_DOUBLE_EQ(curve.y[7], stack.hitRatio(8));
}

// --- chaining ---

TEST(Chaining, FractionsPerPrimitive) {
  Trace trace;
  addPrim(trace, Primitive::kCdr, {obj(1)}, obj(2));
  addPrim(trace, Primitive::kCar, {obj(2)}, obj(3));   // chained
  addPrim(trace, Primitive::kCar, {obj(1)}, obj(2));   // not chained
  const auto pre = preprocess(trace);
  const ChainingStats stats = analyzeChaining(pre);
  EXPECT_DOUBLE_EQ(stats.chainedFraction(Primitive::kCar), 0.5);
  EXPECT_DOUBLE_EQ(stats.chainedFraction(Primitive::kCdr), 0.0);
}

TEST(Chaining, SyntheticProfilesReproduceTable32Ordering) {
  // Lyra chains far more than Pearl (Table 3.2: 82.75% vs 0.88% for car).
  support::Rng rng(19);
  const auto lyra = preprocess(generate(trace::lyraProfile(0.02), rng));
  const auto pearl = preprocess(generate(trace::pearlProfile(2.0), rng));
  const ChainingStats lyraStats = analyzeChaining(lyra);
  const ChainingStats pearlStats = analyzeChaining(pearl);
  // The paper's gap (82.75% vs 0.88%) narrows here because a chain needs
  // the previous call's result to be a list; the ordering and the
  // significant-vs-negligible contrast are what must survive. These short
  // test traces jitter more than the full-length bench runs (which land
  // at ~76% vs ~6%, see EXPERIMENTS.md), so the bounds are loose.
  EXPECT_GT(lyraStats.chainedFraction(Primitive::kCar), 0.45);
  EXPECT_LT(pearlStats.chainedFraction(Primitive::kCar), 0.20);
  EXPECT_GT(lyraStats.chainedFraction(Primitive::kCar),
            2.5 * pearlStats.chainedFraction(Primitive::kCar));
}

}  // namespace
}  // namespace small::analysis
