// The scenario workload families (workloads/families/): determinism,
// sink equivalence (in-memory Trace vs streaming BinaryWriter vs text
// stream), the BinaryWriter's atomic-output contract, the declared
// statistics envelopes, and a preprocess+simulate smoke over each
// family's output.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/contrib.hpp"
#include "obs/registry.hpp"
#include "small/simulator.hpp"
#include "support/error.hpp"
#include "trace/binary.hpp"
#include "trace/io.hpp"
#include "trace/preprocess.hpp"
#include "workloads/families/family.hpp"

namespace {

namespace fs = std::filesystem;
using namespace small;
namespace fam = workloads::families;

std::string tempPath(const std::string& name) {
  return ::testing::TempDir() + "/small_families_" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string binaryBytes(const trace::Trace& trace) {
  std::ostringstream out(std::ios::binary);
  trace::saveBinary(trace, out);
  return out.str();
}

fam::FamilyConfig smallConfig(std::uint64_t seed = 1) {
  fam::FamilyConfig config;
  config.scale = 5000;
  config.seed = seed;
  return config;
}

TEST(Families, NamesRoundTrip) {
  for (const fam::FamilyKind kind : fam::kAllFamilies) {
    const auto back = fam::familyFromName(fam::familyName(kind));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, kind);
  }
  EXPECT_FALSE(fam::familyFromName("agentloop").has_value());
  EXPECT_FALSE(fam::familyFromName("").has_value());
}

TEST(Families, SameSeedIsByteIdenticalDifferentSeedIsNot) {
  for (const fam::FamilyKind kind : fam::kAllFamilies) {
    const trace::Trace a = fam::generateTrace(kind, smallConfig(7));
    const trace::Trace b = fam::generateTrace(kind, smallConfig(7));
    const trace::Trace c = fam::generateTrace(kind, smallConfig(8));
    EXPECT_EQ(binaryBytes(a), binaryBytes(b)) << fam::familyName(kind);
    EXPECT_NE(binaryBytes(a), binaryBytes(c)) << fam::familyName(kind);
  }
}

TEST(Families, ExactScaleAndBalancedCalls) {
  for (const fam::FamilyKind kind : fam::kAllFamilies) {
    fam::FamilyStats stats;
    const trace::Trace raw =
        fam::generateTrace(kind, smallConfig(3), &stats);
    EXPECT_EQ(stats.primitives, smallConfig().scale);
    EXPECT_EQ(raw.primitiveLength(), smallConfig().scale);
    const trace::TraceContent content = raw.content();
    EXPECT_TRUE(content.balanced()) << fam::familyName(kind);
    EXPECT_EQ(content.functionCalls, stats.functionCalls);
    EXPECT_EQ(content.maxCallDepth, stats.maxCallDepth);
    EXPECT_EQ(stats.events, raw.events().size());
  }
}

// The generator-side chained-car/cdr accounting must mirror what the
// §5.2.1 preprocessor computes from the emitted stream.
TEST(Families, ChainAccountingMatchesPreprocessor) {
  for (const fam::FamilyKind kind : fam::kAllFamilies) {
    fam::FamilyStats stats;
    const trace::Trace raw =
        fam::generateTrace(kind, smallConfig(11), &stats);
    const trace::PreprocessedTrace pre = trace::preprocess(raw);
    std::uint64_t carChained = 0;
    std::uint64_t cdrChained = 0;
    for (const trace::PreprocessedEvent& event : pre.events) {
      if (event.kind != trace::EventKind::kPrimitive) continue;
      bool chained = false;
      for (const auto& arg : event.args) chained = chained || arg.chained;
      if (!chained) continue;
      if (event.primitive == trace::Primitive::kCar) ++carChained;
      if (event.primitive == trace::Primitive::kCdr) ++cdrChained;
    }
    EXPECT_EQ(stats.carChained, carChained) << fam::familyName(kind);
    EXPECT_EQ(stats.cdrChained, cdrChained) << fam::familyName(kind);
  }
}

TEST(Families, StatisticsStayInsideDeclaredEnvelope) {
  for (const fam::FamilyKind kind : fam::kAllFamilies) {
    const fam::MixExpectation expect = fam::familyExpectation(kind);
    for (const std::uint64_t seed : {1ull, 42ull, 31337ull}) {
      fam::FamilyConfig config;
      config.scale = 20000;
      config.seed = seed;
      fam::FamilyStats stats;
      fam::generateTrace(kind, config, &stats);
      const std::string label =
          std::string(fam::familyName(kind)) + " seed " +
          std::to_string(seed);
      EXPECT_NEAR(stats.primitiveFrac(trace::Primitive::kCar),
                  expect.carFrac, expect.mixTolerance) << label;
      EXPECT_NEAR(stats.primitiveFrac(trace::Primitive::kCdr),
                  expect.cdrFrac, expect.mixTolerance) << label;
      EXPECT_NEAR(stats.primitiveFrac(trace::Primitive::kCons),
                  expect.consFrac, expect.mixTolerance) << label;
      EXPECT_NEAR(stats.carChainRate(), expect.carChainRate,
                  expect.chainTolerance) << label;
      EXPECT_NEAR(stats.cdrChainRate(), expect.cdrChainRate,
                  expect.chainTolerance) << label;
      // Bounded-residency contract: the generator never holds anything
      // like the whole trace.
      EXPECT_LT(stats.liveObjectsPeak, stats.objectsCreated) << label;
    }
  }
}

// The families must be *different* from each other — that is their
// reason to exist. Check the axes the scenarios advertise.
TEST(Families, FamiliesAreDistinct) {
  fam::FamilyStats agent, thunk, churn;
  fam::generateTrace(fam::FamilyKind::kAgentLoop, smallConfig(), &agent);
  fam::generateTrace(fam::FamilyKind::kThunkHeavy, smallConfig(), &thunk);
  fam::generateTrace(fam::FamilyKind::kSessionChurn, smallConfig(),
                     &churn);
  // session-churn allocates far more per primitive than agent-loop.
  EXPECT_GT(churn.primitiveFrac(trace::Primitive::kCons),
            2 * agent.primitiveFrac(trace::Primitive::kCons));
  // thunk-heavy is the cdr-walk pole; session-churn barely chains.
  EXPECT_GT(thunk.cdrChainRate(), 2 * churn.cdrChainRate());
  // agent-loop mutates its environment; thunk-heavy never mutates.
  EXPECT_GT(agent.primitiveFrac(trace::Primitive::kRplacd), 0.0);
  EXPECT_EQ(thunk.perPrimitive[static_cast<std::size_t>(
                trace::Primitive::kRplacd)],
            0u);
}

TEST(Families, StreamingBinaryWriterMatchesInMemorySave) {
  for (const fam::FamilyKind kind : fam::kAllFamilies) {
    const std::string streamed =
        tempPath(std::string(fam::familyName(kind)) + "_streamed.smtr");
    const std::string direct =
        tempPath(std::string(fam::familyName(kind)) + "_direct.smtr");

    const fam::FamilyConfig config = smallConfig(5);
    const trace::Trace raw = fam::generateTrace(kind, config);
    trace::saveBinaryFile(raw, direct);

    trace::BinaryWriter writer(streamed, raw.name);
    fam::BinaryWriterSink sink(writer);
    fam::makeFamily(kind, config)->generate(sink);
    writer.finish();

    EXPECT_EQ(slurp(streamed), slurp(direct)) << fam::familyName(kind);
    std::remove(streamed.c_str());
    std::remove(direct.c_str());
  }
}

TEST(Families, TextStreamSinkMatchesInMemorySave) {
  for (const fam::FamilyKind kind : fam::kAllFamilies) {
    const fam::FamilyConfig config = smallConfig(5);
    const trace::Trace raw = fam::generateTrace(kind, config);
    std::ostringstream direct;
    trace::save(raw, direct);

    std::ostringstream streamed;
    fam::TextStreamSink sink(streamed, raw.name);
    fam::makeFamily(kind, config)->generate(sink);

    EXPECT_EQ(streamed.str(), direct.str()) << fam::familyName(kind);
  }
}

TEST(Families, RejectsOutOfRangeScaleAndKnobs) {
  fam::FamilyConfig config;
  config.scale = fam::kMinScale - 1;
  EXPECT_THROW(fam::makeFamily(fam::FamilyKind::kAgentLoop, config),
               support::Error);
  config.scale = 5000;
  config.agentLoop.envEntries = 0;
  EXPECT_THROW(fam::makeFamily(fam::FamilyKind::kAgentLoop, config),
               support::Error);
  // The same config is fine for a family that does not read that knob.
  EXPECT_NO_THROW(fam::makeFamily(fam::FamilyKind::kThunkHeavy, config));
  config.agentLoop.envEntries = 96;
  config.thunkHeavy.forcedFraction = 1.5;
  EXPECT_THROW(fam::makeFamily(fam::FamilyKind::kThunkHeavy, config),
               support::Error);
}

TEST(Families, KnobTablePointsIntoConfig) {
  fam::FamilyConfig config;
  for (const fam::FamilyKind kind : fam::kAllFamilies) {
    for (const fam::Knob& knob : fam::familyKnobs(kind, config)) {
      ASSERT_TRUE((knob.count != nullptr) != (knob.real != nullptr))
          << knob.flag;
      EXPECT_LT(knob.min, knob.max) << knob.flag;
      if (knob.count != nullptr) {
        // In range by default, and writable through the table.
        const auto before = *knob.count;
        EXPECT_GE(static_cast<double>(before), knob.min) << knob.flag;
        EXPECT_LE(static_cast<double>(before), knob.max) << knob.flag;
        *knob.count = before + 1;
        EXPECT_EQ(*knob.count, before + 1);
        *knob.count = before;
      } else {
        EXPECT_GE(*knob.real, knob.min) << knob.flag;
        EXPECT_LE(*knob.real, knob.max) << knob.flag;
      }
    }
  }
}

TEST(Families, PreprocessAndSimulateSmoke) {
  for (const fam::FamilyKind kind : fam::kAllFamilies) {
    const trace::Trace raw = fam::generateTrace(kind, smallConfig());
    const trace::PreprocessedTrace pre = trace::preprocess(raw);
    EXPECT_EQ(pre.primitiveCount, smallConfig().scale);
    core::SimConfig config;
    config.tableSize = 1u << 14;
    config.seed = 17;
    const core::SimResult result = core::simulateTrace(config, pre);
    EXPECT_GT(result.peakOccupancy, 0u) << fam::familyName(kind);
    EXPECT_FALSE(result.trueOverflowOccurred) << fam::familyName(kind);
  }
}

TEST(Families, ContributeFamilyStatsPublishesWorkloadNames) {
  fam::FamilyStats stats;
  fam::generateTrace(fam::FamilyKind::kAgentLoop, smallConfig(), &stats);
  obs::Registry registry;
  obs::contributeFamilyStats(registry, stats);
  EXPECT_EQ(registry.counter(obs::names::kWorkloadPrimitives).value(),
            stats.primitives);
  EXPECT_EQ(registry.counter("workload.prim.cdr").value(),
            stats.perPrimitive[static_cast<std::size_t>(
                trace::Primitive::kCdr)]);
}

// --- BinaryWriter contract, beyond what the families exercise ---

TEST(BinaryWriterContract, EmptyWriterMatchesEmptyTrace) {
  const std::string path = tempPath("empty.smtr");
  trace::Trace empty;
  empty.name = "empty";
  trace::BinaryWriter writer(path, "empty");
  writer.finish();
  std::ostringstream direct(std::ios::binary);
  trace::saveBinary(empty, direct);
  EXPECT_EQ(slurp(path), direct.str());
  std::remove(path.c_str());
}

TEST(BinaryWriterContract, AbortAndDestructorLeaveNoFiles) {
  const std::string path = tempPath("aborted.smtr");
  {
    trace::BinaryWriter writer(path, "aborted");
    trace::Event event;
    event.kind = trace::EventKind::kPrimitive;
    event.primitive = trace::Primitive::kRead;
    writer.append(event);
    // No finish(): the destructor must clean up.
  }
  EXPECT_FALSE(fs::exists(path));
  for (const fs::directory_entry& entry :
       fs::directory_iterator(fs::path(path).parent_path())) {
    const std::string name = entry.path().filename().string();
    EXPECT_EQ(name.find("aborted.smtr."), std::string::npos)
        << "leftover temp: " << entry.path();
  }
}

TEST(BinaryWriterContract, FunctionEventsRequireInternedIds) {
  const std::string path = tempPath("badid.smtr");
  trace::BinaryWriter writer(path, "badid");
  trace::Event enter;
  enter.kind = trace::EventKind::kFunctionEnter;
  enter.functionId = 3;  // nothing interned
  EXPECT_THROW(writer.append(enter), support::Error);
  writer.abort();
}

TEST(BinaryWriterContract, InternMatchesTraceSemantics) {
  const std::string path = tempPath("intern.smtr");
  trace::BinaryWriter writer(path, "intern");
  trace::Trace reference;
  for (const char* name : {"f", "g", "f", "h", "g"}) {
    EXPECT_EQ(writer.internFunction(name),
              reference.internFunction(name));
  }
  writer.abort();
}

}  // namespace
