// Tests for the List Processor Table: free-stack behaviour (Fig 4.3),
// lazy vs recursive reclamation (§4.3.2.1), and cycle recovery.
#include <gtest/gtest.h>

#include <algorithm>

#include "small/lpt.hpp"

namespace small::core {
namespace {

TEST(Lpt, AllocateFreesInLifoOrder) {
  Lpt lpt(8, ReclaimPolicy::kLazy);
  const EntryId a = lpt.allocate();
  const EntryId b = lpt.allocate();
  EXPECT_NE(a, b);
  lpt.incRef(a);
  lpt.incRef(b);
  lpt.decRef(a);
  lpt.decRef(b);
  // Fig 4.3: the most recently freed entry is the first to be reused.
  EXPECT_EQ(lpt.allocate(), b);
  EXPECT_EQ(lpt.allocate(), a);
}

TEST(Lpt, InUseCountTracksAllocationAndFree) {
  Lpt lpt(4, ReclaimPolicy::kLazy);
  EXPECT_EQ(lpt.inUseCount(), 0u);
  const EntryId a = lpt.allocate();
  lpt.incRef(a);
  EXPECT_EQ(lpt.inUseCount(), 1u);
  lpt.decRef(a);
  EXPECT_EQ(lpt.inUseCount(), 0u);
}

TEST(Lpt, ExhaustionReturnsNoEntry) {
  Lpt lpt(2, ReclaimPolicy::kLazy);
  lpt.incRef(lpt.allocate());
  lpt.incRef(lpt.allocate());
  EXPECT_FALSE(lpt.hasFreeEntry());
  EXPECT_EQ(lpt.allocate(), kNoEntry);
}

TEST(Lpt, RefcountUnderflowThrows) {
  Lpt lpt(2, ReclaimPolicy::kLazy);
  const EntryId a = lpt.allocate();
  lpt.incRef(a);
  lpt.decRef(a);
  EXPECT_THROW(lpt.decRef(a), support::SimulationError);
}

TEST(Lpt, UseOfFreeEntryThrows) {
  Lpt lpt(2, ReclaimPolicy::kLazy);
  EXPECT_THROW(lpt.incRef(0), support::SimulationError);
  EXPECT_THROW(lpt.entry(99), support::SimulationError);
}

TEST(Lpt, LazyPolicyDefersChildDecrementUntilReuse) {
  Lpt lpt(8, ReclaimPolicy::kLazy);
  const EntryId parent = lpt.allocate();
  const EntryId carChild = lpt.allocate();
  const EntryId cdrChild = lpt.allocate();
  lpt.incRef(parent);
  lpt.incRef(carChild);  // from parent's car field
  lpt.incRef(cdrChild);
  lpt.entry(parent).car = carChild;
  lpt.entry(parent).cdr = cdrChild;

  lpt.decRef(parent);  // parent freed...
  EXPECT_EQ(lpt.inUseCount(), 2u);  // ...but the children survive
  EXPECT_TRUE(lpt.entry(carChild).inUse);

  // Reuse the freed entry: now the children get decremented and freed.
  const EntryId reused = lpt.allocate();
  EXPECT_EQ(reused, parent);
  EXPECT_EQ(lpt.inUseCount(), 1u);  // only the reused entry remains
  EXPECT_FALSE(lpt.entry(carChild).inUse);
  EXPECT_FALSE(lpt.entry(cdrChild).inUse);
  EXPECT_EQ(lpt.stats().lazyDecrements, 2u);
}

TEST(Lpt, RecursivePolicyDecrementsChildrenImmediately) {
  Lpt lpt(8, ReclaimPolicy::kRecursive);
  const EntryId parent = lpt.allocate();
  const EntryId child = lpt.allocate();
  lpt.incRef(parent);
  lpt.incRef(child);
  lpt.entry(parent).car = child;

  const std::uint64_t refopsBefore = lpt.stats().refOps;
  lpt.decRef(parent);
  EXPECT_FALSE(lpt.entry(child).inUse);  // freed in the same cascade
  EXPECT_EQ(lpt.inUseCount(), 0u);
  EXPECT_GE(lpt.stats().refOps - refopsBefore, 2u);
}

TEST(Lpt, RecursivePolicyCascadesDeep) {
  // A chain a -> b -> c -> d all freed by one root decrement — the
  // unbounded-work case the lazy policy avoids.
  Lpt lpt(8, ReclaimPolicy::kRecursive);
  EntryId chain[4];
  for (auto& id : chain) {
    id = lpt.allocate();
    lpt.incRef(id);
  }
  for (int i = 0; i < 3; ++i) {
    lpt.entry(chain[i]).car = chain[i + 1];
    lpt.incRef(chain[i + 1]);
  }
  for (int i = 1; i < 4; ++i) lpt.decRef(chain[i]);  // drop EP refs
  EXPECT_EQ(lpt.inUseCount(), 4u);  // internal refs keep them alive
  lpt.decRef(chain[0]);
  EXPECT_EQ(lpt.inUseCount(), 0u);
}

TEST(Lpt, MaxRefCountTracked) {
  Lpt lpt(4, ReclaimPolicy::kLazy);
  const EntryId a = lpt.allocate();
  for (int i = 0; i < 7; ++i) lpt.incRef(a);
  EXPECT_EQ(lpt.stats().maxRefCount, 7u);
}

TEST(Lpt, StackBitHoldsEntryAliveInSplitMode) {
  Lpt lpt(4, ReclaimPolicy::kLazy);
  const EntryId a = lpt.allocate();
  lpt.setStackBit(a, true);
  EXPECT_TRUE(lpt.entry(a).inUse);
  // Internal count is zero but the stack bit pins it.
  lpt.incRef(a);
  lpt.decRef(a);
  EXPECT_TRUE(lpt.entry(a).inUse);
  lpt.setStackBit(a, false);
  EXPECT_FALSE(lpt.entry(a).inUse);
  // Only the clearing transition costs a message (§5.2.4).
  EXPECT_EQ(lpt.stats().stackBitMessages, 1u);
}

TEST(Lpt, CycleRecoveryReclaimsUnreachableCycles) {
  Lpt lpt(8, ReclaimPolicy::kLazy);
  // Build a 2-cycle: a.car = b, b.car = a, each holding one internal ref.
  const EntryId a = lpt.allocate();
  const EntryId b = lpt.allocate();
  lpt.entry(a).car = b;
  lpt.entry(b).car = a;
  lpt.incRef(a);
  lpt.incRef(b);
  // And one externally referenced entry.
  const EntryId rooted = lpt.allocate();
  lpt.incRef(rooted);

  const std::uint64_t reclaimed = lpt.recoverCycles({rooted});
  EXPECT_EQ(reclaimed, 2u);
  EXPECT_FALSE(lpt.entry(a).inUse);
  EXPECT_FALSE(lpt.entry(b).inUse);
  EXPECT_TRUE(lpt.entry(rooted).inUse);
}

TEST(Lpt, CycleRecoveryKeepsEverythingReachable) {
  Lpt lpt(8, ReclaimPolicy::kLazy);
  const EntryId root = lpt.allocate();
  const EntryId child = lpt.allocate();
  lpt.incRef(root);
  lpt.incRef(child);
  lpt.entry(root).car = child;
  EXPECT_EQ(lpt.recoverCycles({root}), 0u);
  EXPECT_TRUE(lpt.entry(child).inUse);
}

TEST(Lpt, UnderflowAfterStackBitFreeAlsoThrows) {
  // The stack-bit free path must leave the entry as dead as a refcount
  // free does: any further count traffic is underflow/use-after-free.
  Lpt lpt(4, ReclaimPolicy::kLazy);
  const EntryId a = lpt.allocate();
  lpt.setStackBit(a, true);
  lpt.setStackBit(a, false);  // count already 0 -> freed here
  EXPECT_FALSE(lpt.entry(a).inUse);
  EXPECT_THROW(lpt.decRef(a), support::SimulationError);
  EXPECT_THROW(lpt.setStackBit(a, true), support::SimulationError);
}

TEST(Lpt, StackBitClearWithLiveCountDoesNotFree) {
  Lpt lpt(4, ReclaimPolicy::kLazy);
  const EntryId a = lpt.allocate();
  lpt.incRef(a);
  lpt.setStackBit(a, true);
  lpt.setStackBit(a, false);  // internal count still 1 -> stays live
  EXPECT_TRUE(lpt.entry(a).inUse);
  EXPECT_EQ(lpt.stats().stackBitMessages, 1u);
  lpt.decRef(a);
  EXPECT_FALSE(lpt.entry(a).inUse);
}

TEST(Lpt, RedundantStackBitSetIsFreeOfMessages) {
  Lpt lpt(4, ReclaimPolicy::kLazy);
  const EntryId a = lpt.allocate();
  lpt.incRef(a);
  lpt.setStackBit(a, true);
  lpt.setStackBit(a, true);   // no transition
  lpt.setStackBit(a, false);
  lpt.setStackBit(a, false);  // no transition
  EXPECT_EQ(lpt.stats().stackBitMessages, 1u);
}

TEST(Lpt, CycleRecoveryTreatsLazyFreeStackEdgesAsRoots) {
  // Under the lazy policy a freed entry keeps its car/cdr edges (and the
  // counts they represent) until reuse. Cycle recovery must treat those
  // deferred edges as mark roots: sweeping their targets would double-free
  // when the freed entry is later reallocated and lazily decrements them.
  Lpt lpt(8, ReclaimPolicy::kLazy);
  const EntryId parent = lpt.allocate();
  const EntryId child = lpt.allocate();
  lpt.incRef(parent);
  lpt.incRef(child);  // held only through parent's car edge
  lpt.entry(parent).car = child;
  lpt.decRef(parent);  // parent freed; child's count deferred on free stack
  EXPECT_FALSE(lpt.entry(parent).inUse);
  EXPECT_TRUE(lpt.entry(child).inUse);

  // No external roots at all — yet the child must survive, because the
  // free-stack edge still owns a reference to it.
  EXPECT_EQ(lpt.recoverCycles({}), 0u);
  EXPECT_TRUE(lpt.entry(child).inUse);

  // Reuse then releases the deferred reference and frees the child
  // without any underflow.
  const EntryId reused = lpt.allocate();
  EXPECT_EQ(reused, parent);
  EXPECT_FALSE(lpt.entry(child).inUse);
  EXPECT_EQ(lpt.inUseCount(), 1u);
}

TEST(Lpt, CycleRecoveryReleasesSweptEdgesIntoSurvivors) {
  // A dead cycle pointing into a rooted entry: sweeping the cycle must
  // decrement the survivor exactly once per severed edge.
  Lpt lpt(8, ReclaimPolicy::kLazy);
  const EntryId a = lpt.allocate();
  const EntryId b = lpt.allocate();
  const EntryId rooted = lpt.allocate();
  lpt.incRef(a);
  lpt.incRef(b);
  lpt.entry(a).car = b;
  lpt.entry(b).car = a;
  lpt.incRef(rooted);      // external root
  lpt.entry(a).cdr = rooted;
  lpt.incRef(rooted);      // the cycle's edge into the survivor
  EXPECT_EQ(lpt.recoverCycles({rooted}), 2u);
  EXPECT_TRUE(lpt.entry(rooted).inUse);
  EXPECT_EQ(lpt.entry(rooted).refCount, 1u);  // only the external root left
}

TEST(Lpt, ZeroSizeRejected) {
  EXPECT_THROW(Lpt(0, ReclaimPolicy::kLazy), support::SimulationError);
}

// Property sweep: random inc/dec sequences never corrupt the table across
// both reclaim policies.
class LptFuzz
    : public ::testing::TestWithParam<std::tuple<ReclaimPolicy, int>> {};

TEST_P(LptFuzz, RandomOperationsPreserveInvariants) {
  const auto [policy, seed] = GetParam();
  Lpt lpt(32, policy);
  std::uint64_t state = static_cast<std::uint64_t>(seed) * 2654435761u + 1;
  auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  std::vector<EntryId> live;  // entries we hold an external ref on
  for (int step = 0; step < 5000; ++step) {
    const auto op = next() % 3;
    if (op == 0 && lpt.hasFreeEntry()) {
      const EntryId id = lpt.allocate();
      ASSERT_NE(id, kNoEntry);
      lpt.incRef(id);
      live.push_back(id);
    } else if (op == 1 && !live.empty()) {
      const std::size_t i = next() % live.size();
      lpt.decRef(live[i]);
      live[i] = live.back();
      live.pop_back();
    } else if (op == 2 && live.size() >= 2) {
      // Link a random pair through a car field if unset.
      const EntryId parent = live[next() % live.size()];
      const EntryId child = live[next() % live.size()];
      if (lpt.entry(parent).car == kNoEntry && parent != child) {
        lpt.entry(parent).car = child;
        lpt.incRef(child);
      }
    }
    ASSERT_LE(lpt.inUseCount(), 32u);
  }
  // Every externally held entry must still be live.
  for (const EntryId id : live) {
    EXPECT_TRUE(lpt.entry(id).inUse);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Policies, LptFuzz,
    ::testing::Combine(::testing::Values(ReclaimPolicy::kLazy,
                                         ReclaimPolicy::kRecursive),
                       ::testing::Values(1, 2, 3, 4, 5)));

TEST(LptIteration, ForEachInUseVisitsAscendingLiveIds) {
  // Table size 20 straddles flag-word boundaries (padded to 24), so the
  // scan exercises both the byte-wise head and the word-skipping body.
  Lpt lpt(20, ReclaimPolicy::kLazy);
  std::vector<EntryId> held;
  for (int i = 0; i < 20; ++i) {
    const EntryId id = lpt.allocate();
    lpt.incRef(id);
    held.push_back(id);
  }
  // Free a scattered subset, including both ends and a full word's worth.
  for (const EntryId id : {0u, 1u, 5u, 8u, 9u, 10u, 11u, 12u, 13u, 14u,
                           15u, 19u}) {
    lpt.decRef(id);
  }
  std::vector<EntryId> visited;
  lpt.forEachInUse([&](EntryId id) { visited.push_back(id); });
  EXPECT_EQ(visited, (std::vector<EntryId>{2, 3, 4, 6, 7, 16, 17, 18}));

  std::vector<EntryId> unordered;
  lpt.forEachInUseUnordered([&](EntryId id) { unordered.push_back(id); });
  std::sort(unordered.begin(), unordered.end());
  EXPECT_EQ(unordered, visited);
}

TEST(LptIteration, EmptyAndFullTables) {
  Lpt lpt(9, ReclaimPolicy::kLazy);
  EXPECT_EQ(lpt.firstInUse(), kNoEntry);
  std::vector<EntryId> all;
  for (int i = 0; i < 9; ++i) lpt.incRef(lpt.allocate());
  lpt.forEachInUse([&](EntryId id) { all.push_back(id); });
  EXPECT_EQ(all, (std::vector<EntryId>{0, 1, 2, 3, 4, 5, 6, 7, 8}));
  EXPECT_EQ(lpt.nextInUse(9), kNoEntry);
  EXPECT_EQ(lpt.nextInUse(kNoEntry - 1), kNoEntry);
}

TEST(LptIteration, NextInUseSkipsFreedEntriesMidSweep) {
  // forEachInUse re-reads the flag byte, so entries freed by the callback
  // after the cursor are simply not visited.
  Lpt lpt(16, ReclaimPolicy::kLazy);
  for (int i = 0; i < 16; ++i) lpt.incRef(lpt.allocate());
  std::vector<EntryId> visited;
  lpt.forEachInUse([&](EntryId id) {
    visited.push_back(id);
    if (id % 3 == 0 && id + 1 < 16) lpt.decRef(id + 1);  // free the next id
  });
  EXPECT_EQ(visited,
            (std::vector<EntryId>{0, 2, 3, 5, 6, 8, 9, 11, 12, 14, 15}));
}

}  // namespace
}  // namespace small::core
