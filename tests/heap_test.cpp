// Tests for the heap representations (Ch. 2's survey, §4.3.3 split/merge)
// and the address model.
#include <gtest/gtest.h>

#include <memory>

#include "heap/address_model.hpp"
#include "heap/backend.hpp"
#include "heap/cdar_coded.hpp"
#include "heap/conc.hpp"
#include "heap/linearization.hpp"
#include "heap/cdr_coded.hpp"
#include "heap/linked_vector.hpp"
#include "heap/two_pointer.hpp"
#include "sexpr/printer.hpp"
#include "sexpr/reader.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"

namespace small::heap {
namespace {

class HeapTest : public ::testing::Test {
 protected:
  sexpr::NodeRef read(std::string_view text) {
    sexpr::Reader reader(arena, symbols);
    return reader.readOne(text);
  }
  std::string show(sexpr::NodeRef ref) {
    return sexpr::print(arena, symbols, ref);
  }

  sexpr::SymbolTable symbols;
  sexpr::Arena arena;
};

// --- two-pointer heap ---

TEST_F(HeapTest, TwoPointerEncodeDecodeRoundtrip) {
  TwoPointerHeap heap;
  for (const char* text :
       {"(a b c)", "(a (b c) d)", "((deep (nest (ing))))", "(1 -2 3)",
        "(a . b)", "nil", "(x)"}) {
    const HeapWord root = heap.encode(arena, read(text));
    EXPECT_TRUE(arena.equal(heap.decode(arena, root), read(text))) << text;
  }
}

TEST_F(HeapTest, TwoPointerUsesNPlusPCells) {
  TwoPointerHeap heap;
  heap.encode(arena, read("(A B C (D E) F G)"));  // n=7, p=1
  EXPECT_EQ(heap.cellsAllocated(), 8u);
}

TEST_F(HeapTest, TwoPointerSplitReturnsHalvesAndFreesCell) {
  TwoPointerHeap heap;
  const HeapWord root = heap.encode(arena, read("(a b)"));
  ASSERT_TRUE(root.isPointer());
  const std::uint64_t liveBefore = heap.cellsLive();
  const TwoPointerHeap::SplitResult halves = heap.split(root.payload);
  EXPECT_EQ(heap.cellsLive(), liveBefore - 1);
  EXPECT_EQ(halves.car.tag, HeapWord::Tag::kSymbol);
  EXPECT_TRUE(halves.cdr.isPointer());
}

TEST_F(HeapTest, TwoPointerMergeIsInverseOfSplit) {
  TwoPointerHeap heap;
  const HeapWord root = heap.encode(arena, read("(a b c)"));
  const TwoPointerHeap::SplitResult halves = heap.split(root.payload);
  const TwoPointerHeap::CellRef merged = heap.merge(halves.car, halves.cdr);
  EXPECT_TRUE(arena.equal(heap.decode(arena, HeapWord::pointer(merged)),
                          read("(a b c)")));
}

TEST_F(HeapTest, TwoPointerFreeObjectReclaimsWholeStructure) {
  TwoPointerHeap heap;
  const HeapWord root = heap.encode(arena, read("(a (b c) (d (e)))"));
  const std::uint64_t reclaimed = heap.freeObject(root.payload);
  EXPECT_EQ(reclaimed, heap.cellsAllocated());
  EXPECT_EQ(heap.cellsLive(), 0u);
}

TEST_F(HeapTest, TwoPointerFreeListIsLifo) {
  TwoPointerHeap heap;
  const auto a = heap.allocate(HeapWord::nil(), HeapWord::nil());
  const auto b = heap.allocate(HeapWord::nil(), HeapWord::nil());
  heap.free(a);
  heap.free(b);
  // Most recently freed entry is reused first.
  EXPECT_EQ(heap.allocate(HeapWord::nil(), HeapWord::nil()), b);
  EXPECT_EQ(heap.allocate(HeapWord::nil(), HeapWord::nil()), a);
}

TEST_F(HeapTest, TwoPointerDoubleFreeThrows) {
  TwoPointerHeap heap;
  const auto cell = heap.allocate(HeapWord::nil(), HeapWord::nil());
  heap.free(cell);
  EXPECT_THROW(heap.free(cell), support::SimulationError);
}

// --- cdr-coded heap ---

TEST_F(HeapTest, CdrCodedEncodeDecodeRoundtrip) {
  CdrCodedHeap heap;
  for (const char* text :
       {"(a b c)", "(a (b c) d)", "((x))", "(a . b)", "(1 2 . 3)", "nil"}) {
    const CdrWord root = heap.encode(arena, read(text));
    EXPECT_TRUE(arena.equal(heap.decode(arena, root), read(text))) << text;
  }
}

TEST_F(HeapTest, CdrCodedLinearListIsCompact) {
  // A flat n-element list occupies exactly n cells (vs n two-pointer cells
  // of twice the width).
  CdrCodedHeap heap;
  heap.encode(arena, read("(a b c d e)"));
  EXPECT_EQ(heap.cellsAllocated(), 5u);
}

TEST_F(HeapTest, CdrCodedCdrOfRunNeedsNoExtraRead) {
  CdrCodedHeap heap;
  const CdrWord root = heap.encode(arena, read("(a b c)"));
  const std::uint64_t dependentBefore = heap.dependentReads();
  const CdrWord next = heap.cdr(root.payload);
  EXPECT_TRUE(next.isPointer());
  EXPECT_EQ(next.payload, root.payload + 1);
  EXPECT_EQ(heap.dependentReads(), dependentBefore);
}

TEST_F(HeapTest, CdrCodedRplacdForcesCopyOutAndForwarding) {
  CdrCodedHeap heap;
  const CdrWord root = heap.encode(arena, read("(a b c)"));
  const CdrWord replacement = heap.encode(arena, read("(z)"));
  heap.rplacd(root.payload, replacement);
  EXPECT_EQ(heap.invisibleCount(), 1u);
  EXPECT_TRUE(arena.equal(heap.decode(arena, root), read("(a z)")));
}

TEST_F(HeapTest, CdrCodedRplacdOnNormalPairIsInPlace) {
  CdrCodedHeap heap;
  const CdrWord root = heap.encode(arena, read("(a . b)"));
  heap.rplacd(root.payload, CdrWord::nil());
  EXPECT_EQ(heap.invisibleCount(), 0u);
  EXPECT_TRUE(arena.equal(heap.decode(arena, root), read("(a)")));
}

TEST_F(HeapTest, CdrCodedRplaca) {
  CdrCodedHeap heap;
  const CdrWord root = heap.encode(arena, read("(a b)"));
  heap.rplaca(root.payload, CdrWord::integer(9));
  EXPECT_TRUE(arena.equal(heap.decode(arena, root), read("(9 b)")));
}

// --- linked-vector heap ---

class LinkedVectorSizes : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(LinkedVectorSizes, RoundtripAcrossVectorSizes) {
  sexpr::SymbolTable symbols;
  sexpr::Arena arena;
  sexpr::Reader reader(arena, symbols);
  LinkedVectorHeap heap(GetParam());
  const sexpr::NodeRef list =
      reader.readOne("(a b c d e f g h i j k l m n)");
  const auto root = heap.encode(arena, list);
  EXPECT_TRUE(arena.equal(heap.decode(arena, root), list));
}

INSTANTIATE_TEST_SUITE_P(VectorSizes, LinkedVectorSizes,
                         ::testing::Values(2u, 3u, 4u, 8u, 16u, 64u));

TEST_F(HeapTest, LinkedVectorIndirectionTradeoff) {
  // Small vectors need many indirections; large ones waste slots — the
  // §2.3.3.1 fragmentation-vs-indirection trade-off.
  const sexpr::NodeRef list = read("(a b c d e f g h i j)");
  LinkedVectorHeap smallVectors(3);
  LinkedVectorHeap largeVectors(64);
  smallVectors.encode(arena, list);
  largeVectors.encode(arena, list);
  EXPECT_GT(smallVectors.indirections(), largeVectors.indirections());
  EXPECT_GT(largeVectors.unusedSlots(), smallVectors.unusedSlots());
}

TEST_F(HeapTest, LinkedVectorNestedLists) {
  LinkedVectorHeap heap(4);
  const sexpr::NodeRef list = read("(a (b c (d)) e (f g h i j k) l)");
  const auto root = heap.encode(arena, list);
  EXPECT_TRUE(arena.equal(heap.decode(arena, root), list));
}

TEST_F(HeapTest, LinkedVectorRejectsDottedLists) {
  LinkedVectorHeap heap(4);
  EXPECT_THROW(heap.encode(arena, read("(a . b)")), support::EvalError);
}

// --- CDAR-coded table ---

TEST_F(HeapTest, CdarCodesMatchThesisFigure210) {
  // Fig 2.10 tags (A B C (D E) F G) with car/cdr paths; the thesis pads
  // them to 6 bits and prints the steps leaf-first (A=000000, B=000001,
  // E=010111, ...). Our canonical form is the same path unpadded and
  // written root-first: B = cdr,car = "10", E = "111010".
  const CdarTable table = CdarTable::encode(arena, read("(A B C (D E) F G)"));
  const auto check = [&](const char* code, const char* symbol) {
    CdarCode path;
    for (const char* c = code; *c; ++c) {
      path.bits = (path.bits << 1) | (*c == '1' ? 1u : 0u);
      ++path.length;
    }
    const CdarTable::Entry* entry = table.probe(path);
    ASSERT_NE(entry, nullptr) << code;
    EXPECT_EQ(entry->tag, CdarTable::Entry::Tag::kSymbol) << code;
    EXPECT_EQ(symbols.name(static_cast<sexpr::SymbolId>(entry->payload)),
              symbol)
        << code;
  };
  check("0", "A");
  check("10", "B");
  check("110", "C");
  check("11100", "D");
  check("111010", "E");
  check("11110", "F");
  check("111110", "G");
}

TEST_F(HeapTest, CdarTableStoresOnlyLeaves) {
  // n symbols + (p + 1) nils for a proper list (the nil list terminators
  // are leaves of the binary tree).
  const CdarTable table = CdarTable::encode(arena, read("(A B C (D E) F G)"));
  EXPECT_EQ(table.size(), 7u + 2u);
}

TEST_F(HeapTest, CdarEncodeDecodeRoundtrip) {
  for (const char* text :
       {"(a b c)", "(a (b c) d)", "((x) ((y)) z)", "(1 2 3)"}) {
    const CdarTable table = CdarTable::encode(arena, read(text));
    EXPECT_TRUE(arena.equal(table.decode(arena), read(text))) << text;
  }
}

TEST_F(HeapTest, CdarCarCdrSplitTables) {
  const CdarTable table = CdarTable::encode(arena, read("((a b) c d)"));
  std::uint64_t copies = 0;
  const CdarTable carTable = table.car(&copies);
  const CdarTable cdrTable = table.cdr(&copies);
  EXPECT_TRUE(arena.equal(carTable.decode(arena), read("(a b)")));
  EXPECT_TRUE(arena.equal(cdrTable.decode(arena), read("(c d)")));
  // Splitting copied every entry exactly once — the §4.3.3.2 cost.
  EXPECT_EQ(copies, table.size());
}

TEST_F(HeapTest, CdarCodeStringRendering) {
  CdarCode path;
  path = path.prepend(true);   // last applied step becomes the root step
  path = path.prepend(false);
  EXPECT_EQ(path.toString(), "01");
  EXPECT_FALSE(path.firstStep());
  EXPECT_EQ(path.stripFirst().toString(), "1");
}

// --- address model ---

TEST(AddressModel, BumpAllocationIsContiguous) {
  AddressModel model;
  const auto a = model.allocateObject(5);
  const auto b = model.allocateObject(3);
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 5u);
  EXPECT_EQ(model.highWaterMark(), 8u);
}

TEST(AddressModel, ChildAddressesStayInBounds) {
  AddressModel model;
  support::Rng rng(21);
  const auto parent = model.allocateObject(100);
  for (int i = 0; i < 10000; ++i) {
    const auto child = model.childAddress(parent + 50, rng);
    EXPECT_LT(child, model.highWaterMark());
  }
}

TEST(AddressModel, ChildAddressesClusterNearParent) {
  AddressModel model;
  support::Rng rng(23);
  model.allocateObject(100000);
  const std::uint64_t parent = 50000;
  int near = 0;
  constexpr int kDraws = 10000;
  for (int i = 0; i < kDraws; ++i) {
    const auto child = model.childAddress(parent, rng);
    const auto distance = child > parent ? child - parent : parent - child;
    if (distance <= 8) ++near;
  }
  EXPECT_GT(near, kDraws / 2);
}

// --- conc / tuple representation (§2.3.3.1) ---

TEST_F(HeapTest, ConcEncodeDecodeRoundtrip) {
  ConcHeap heap;
  for (const char* text :
       {"(a b c)", "(a (b c) d)", "((x) ((y z)) w)", "(1 2 3)", "nil"}) {
    const auto desc = heap.encode(arena, read(text));
    EXPECT_TRUE(arena.equal(heap.decode(arena, desc), read(text))) << text;
  }
}

TEST_F(HeapTest, ConcConcatenationIsOneCell) {
  // "in the conc representation the operation involves allocating a conc
  // cell and setting its fields to L1 and L2" — no copying, no mutation.
  ConcHeap heap;
  const auto a = heap.encode(arena, read("(a b c)"));
  const auto b = heap.encode(arena, read("(d e)"));
  const std::uint64_t wordsBefore = heap.elementWords();
  const auto joined = heap.conc(a, b);
  EXPECT_EQ(heap.elementWords(), wordsBefore);  // zero element copies
  EXPECT_EQ(heap.concCellCount(), 1u);
  EXPECT_EQ(heap.length(joined), 5u);
  EXPECT_TRUE(arena.equal(heap.decode(arena, joined), read("(a b c d e)")));
  // The operands are unchanged and still independently usable.
  EXPECT_TRUE(arena.equal(heap.decode(arena, a), read("(a b c)")));
}

TEST_F(HeapTest, ConcRandomAccessByIndex) {
  ConcHeap heap;
  const auto a = heap.encode(arena, read("(p q)"));
  const auto b = heap.encode(arena, read("(r s t)"));
  const auto joined = heap.conc(a, heap.conc(b, a));
  ASSERT_EQ(heap.length(joined), 7u);
  const auto at5 = heap.elementAt(joined, 5);  // second copy of a: "p q"
  EXPECT_EQ(at5.tag, ConcHeap::Element::Tag::kSymbol);
  EXPECT_EQ(symbols.name(static_cast<sexpr::SymbolId>(at5.payload)), "p");
  EXPECT_THROW(heap.elementAt(joined, 7), support::Error);
}

TEST_F(HeapTest, ConcRejectsDottedLists) {
  ConcHeap heap;
  EXPECT_THROW(heap.encode(arena, read("(a . b)")), support::EvalError);
  EXPECT_THROW(heap.encode(arena, read("sym")), support::EvalError);
}

// --- Clark linearization experiments (§3.2) ---

TEST(Linearization, SequentialBuildIsAdjacent) {
  // Consing a list back to front leaves every cdr pointing at the
  // neighbouring cell — Clark's "pointers point a small distance away".
  LinearizingHeap heap(ConsPolicy::kNaive);
  const auto head = heap.buildList(100);
  const auto report = heap.measureList(head);
  EXPECT_EQ(report.cdrPointers, 99u);
  EXPECT_DOUBLE_EQ(report.adjacentFraction(), 1.0);
  EXPECT_DOUBLE_EQ(report.magnitude.mean(), 1.0);
}

TEST(Linearization, NaiveAndCleverPoliciesTie) {
  // Clark: "a naive cons algorithm performed almost as well as a more
  // clever one" — an inherent property, not allocator magic.
  for (const ConsPolicy policy : {ConsPolicy::kNaive, ConsPolicy::kClever}) {
    LinearizingHeap heap(policy);
    const auto head = heap.buildList(500);
    EXPECT_DOUBLE_EQ(heap.measureList(head).adjacentFraction(), 1.0);
  }
}

TEST(Linearization, LinearizePreservesContentAndOrder) {
  LinearizingHeap heap(ConsPolicy::kNaive);
  auto head = heap.buildList(50, 1000);
  head = heap.linearize(head);
  // Content intact, every cdr distance exactly +1.
  auto cursor = head;
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(heap.car(cursor).payload, 1000u + static_cast<unsigned>(i));
    const auto next = heap.cdr(cursor);
    if (i < 49) {
      ASSERT_TRUE(next.isPointer);
      EXPECT_EQ(next.payload, cursor + 1u);
      cursor = static_cast<LinearizingHeap::CellRef>(next.payload);
    } else {
      EXPECT_FALSE(next.isPointer);
    }
  }
  EXPECT_DOUBLE_EQ(heap.measureList(head).distanceOneFraction(), 1.0);
}

TEST(Linearization, LinearizeFreesOldCells) {
  LinearizingHeap heap(ConsPolicy::kNaive);
  auto head = heap.buildList(40);
  const auto liveBefore = heap.cellsLive();
  head = heap.linearize(head);
  EXPECT_EQ(heap.cellsLive(), liveBefore);  // copied then freed: net zero
}

TEST(Linearization, SplicesErodeLinearizationSlowly) {
  // Clark: "once a list was linearized it tended to stay fairly well
  // linearized" — k splices break at most 2k of the n-1 links.
  LinearizingHeap heap(ConsPolicy::kNaive);
  auto head = heap.buildList(200);
  head = heap.linearize(head);
  support::Rng rng(3);
  for (int edit = 0; edit < 10; ++edit) {
    auto cursor = head;
    for (std::uint64_t h = rng.below(150); h-- > 0;) {
      const auto next = heap.cdr(cursor);
      if (!next.isPointer) break;
      cursor = static_cast<LinearizingHeap::CellRef>(next.payload);
    }
    const auto spliced = heap.cons(LinearizingHeap::Word::atom(1),
                                   heap.cdr(cursor));
    heap.setCdr(cursor, LinearizingHeap::Word::pointer(spliced));
  }
  EXPECT_GT(heap.measureList(head).distanceOneFraction(), 0.85);
}

TEST(Linearization, DoubleFreeAndBadCellThrow) {
  LinearizingHeap heap(ConsPolicy::kNaive);
  const auto cell = heap.cons(LinearizingHeap::Word::atom(1),
                              LinearizingHeap::Word::atom(2));
  heap.free(cell);
  EXPECT_THROW(heap.free(cell), support::Error);
  EXPECT_THROW(heap.car(cell), support::Error);
  EXPECT_THROW(heap.car(12345), support::Error);
}

// --- unified backend contract: every HeapBackend must satisfy the same
//     observable semantics, whatever the physical layout ---

class BackendContract : public ::testing::TestWithParam<HeapBackendKind> {
 protected:
  sexpr::NodeRef read(std::string_view text) {
    sexpr::Reader reader(arena, symbols);
    return reader.readOne(text);
  }
  std::string show(sexpr::NodeRef ref) {
    return sexpr::print(arena, symbols, ref);
  }
  std::unique_ptr<HeapBackend> make() { return makeHeapBackend(GetParam()); }

  sexpr::SymbolTable symbols;
  sexpr::Arena arena;
};

TEST_P(BackendContract, EncodeDecodeRoundtrip) {
  const auto heap = make();
  for (const char* text :
       {"(a b c)", "(a (b c) d)", "((deep (nest (ing))))", "(1 -2 3)",
        "(a . b)", "(a b . c)", "(a (b . c) d)", "nil", "(x)",
        "(a b c d e f g h i j k l m)"}) {
    const HeapWord root = heap->encode(arena, read(text));
    EXPECT_TRUE(arena.equal(heap->decode(arena, root), read(text)))
        << heap->name() << ": " << text;
  }
}

TEST_P(BackendContract, AllocateReadWriteFree) {
  const auto heap = make();
  const auto cell = heap->allocate(HeapWord::integer(1), HeapWord::nil());
  EXPECT_EQ(heap->car(cell).payload, 1u);
  heap->setCar(cell, HeapWord::integer(2));
  EXPECT_EQ(heap->car(cell).payload, 2u);
  EXPECT_GT(heap->cellsLive(), 0u);
  heap->free(cell);
  EXPECT_EQ(heap->cellsLive(), 0u);
  EXPECT_GE(heap->stats().writes, 1u);
  EXPECT_GE(heap->stats().reads, 2u);
}

TEST_P(BackendContract, SplitHandsBackFieldsAndFreesTheCell) {
  const auto heap = make();
  const HeapWord root = heap->encode(arena, read("(a b c)"));
  ASSERT_TRUE(root.isPointer());
  const auto before = heap->cellsLive();
  const HeapBackend::SplitResult halves = heap->split(root.payload);
  EXPECT_EQ(heap->stats().splits, 1u);
  EXPECT_LT(heap->cellsLive(), before) << heap->name();
  // The halves survive the split: car is the symbol a, cdr decodes to the
  // rest of the list.
  EXPECT_EQ(halves.car.tag, HeapWord::Tag::kSymbol);
  EXPECT_EQ(show(heap->decode(arena, halves.cdr)), "(b c)") << heap->name();
}

TEST_P(BackendContract, MergeRebuildsACell) {
  const auto heap = make();
  const HeapWord tail = heap->encode(arena, read("(b c)"));
  const auto cell =
      heap->merge(heap->encode(arena, read("a")), tail);
  EXPECT_EQ(heap->stats().merges, 1u);
  EXPECT_EQ(show(heap->decode(arena, HeapWord::pointer(cell))), "(a b c)")
      << heap->name();
}

TEST_P(BackendContract, SetCdrRewritesTheTail) {
  const auto heap = make();
  // Exercises the copy-out path on cdr-coded / linked-vector layouts: the
  // encoded spine stores cdrs implicitly, so rplacd must preserve object
  // identity through a forwarding mechanism.
  const HeapWord root = heap->encode(arena, read("(a b c d)"));
  const HeapWord tail = heap->encode(arena, read("(z)"));
  heap->setCdr(root.payload, tail);
  EXPECT_EQ(show(heap->decode(arena, root)), "(a z)") << heap->name();
  // A second rewrite through the (possibly forwarded) cell still works.
  heap->setCdr(root.payload, HeapWord::nil());
  EXPECT_EQ(show(heap->decode(arena, root)), "(a)") << heap->name();
}

TEST_P(BackendContract, FreeObjectReclaimsEverything) {
  const auto heap = make();
  const HeapWord root = heap->encode(arena, read("(a (b (c d) e) (f) g)"));
  EXPECT_GT(heap->cellsLive(), 0u);
  const auto reclaimed = heap->freeObject(root.payload);
  EXPECT_GT(reclaimed, 0u);
  EXPECT_EQ(heap->cellsLive(), 0u) << heap->name();
  // Every physical cell laid down came back (frees counts cells, allocs
  // counts conses, so compare through the live-cell ledger).
  EXPECT_GT(heap->stats().frees, 0u) << heap->name();
}

TEST_P(BackendContract, FreedCellsAreRecycled) {
  const auto heap = make();
  const HeapWord first = heap->encode(arena, read("(a b c d e)"));
  heap->freeObject(first.payload);
  EXPECT_EQ(heap->cellsLive(), 0u);
  // Vectorized encodes may need fresh contiguous space, but a plain cons
  // must drain the free pool before extending the heap.
  const auto before = heap->cellsAllocated();
  const auto cell = heap->allocate(HeapWord::integer(1), HeapWord::nil());
  EXPECT_EQ(heap->cellsAllocated(), before) << heap->name();
  heap->free(cell);
  EXPECT_GE(heap->stats().peakLiveCells, heap->cellsLive());
}

TEST_P(BackendContract, DoubleFreeThrows) {
  const auto heap = make();
  const auto cell = heap->allocate(HeapWord::integer(1), HeapWord::nil());
  heap->free(cell);
  EXPECT_THROW(heap->free(cell), support::Error) << heap->name();
}

TEST_P(BackendContract, StatsTrackTouches) {
  const auto heap = make();
  const HeapWord root = heap->encode(arena, read("(a b c)"));
  const auto baseline = heap->stats().touches();
  HeapWord cursor = root;
  while (cursor.isPointer()) cursor = heap->cdr(cursor.payload);
  EXPECT_GT(heap->stats().touches(), baseline) << heap->name();
  EXPECT_EQ(heap->stats().touches(),
            heap->stats().reads + heap->stats().writes);
}

TEST_P(BackendContract, IncrementalStepsMatchStopTheWorldLiveSet) {
  const auto heap = make();
  const HeapWord live = heap->encode(arena, read("(a (b c) d)"));
  heap->encode(arena, read("(x y z)"));  // garbage
  heap->gcBegin({live});
  HeapBackend::CollectResult result;
  std::uint64_t slices = 0;
  while (!heap->gcStep(4, result)) ++slices;
  EXPECT_GT(slices, 0u) << heap->name();  // genuinely ran in bounded slices
  EXPECT_GT(result.reclaimed, 0u) << heap->name();
  EXPECT_EQ(show(heap->decode(arena, live)), "(a (b c) d)") << heap->name();
  // The sliced cycle left exactly the stop-the-world live set: a full
  // pass right after finds nothing further to reclaim.
  EXPECT_EQ(heap->collectGarbage({live}).reclaimed, 0u) << heap->name();
}

TEST_P(BackendContract, RememberedSetKeepsOldToYoungEdgeLive) {
  const auto heap = make();
  heap->setYoungTracking(true);
  const HeapWord old = heap->encode(arena, read("(a b)"));
  heap->collectGarbage({old});  // completed cycle: promotes, clears young
  EXPECT_EQ(heap->youngCells(), 0u) << heap->name();
  const HeapWord young = heap->encode(arena, read("(c d)"));
  heap->encode(arena, read("(x)"));  // young garbage
  EXPECT_GT(heap->youngCells(), 0u) << heap->name();
  // Store the young structure into the old cell. The minor trace never
  // enters old cells, so without the write barrier's remembered set the
  // young list would be unreachable and swept.
  heap->setCdr(old.payload, young);
  const auto minor = heap->collectYoung({old});
  EXPECT_GT(minor.reclaimed, 0u) << heap->name();  // the (x) garbage
  EXPECT_EQ(show(heap->decode(arena, old)), "(a c d)") << heap->name();
  // A full pass reclaims the displaced (b) tail but nothing the minor
  // cycle promoted.
  heap->collectGarbage({old});
  EXPECT_EQ(show(heap->decode(arena, old)), "(a c d)") << heap->name();
}

TEST_P(BackendContract, MinorCollectionTreatsOldGenerationAsLive) {
  const auto heap = make();
  heap->setYoungTracking(true);
  const HeapWord oldLive = heap->encode(arena, read("(a b)"));
  const HeapWord oldDead = heap->encode(arena, read("(x y)"));
  heap->collectGarbage({oldLive, oldDead});  // promote both
  heap->encode(arena, read("(q)"));          // young garbage
  // oldDead is unreachable from the minor roots, but a minor cycle only
  // sweeps young cells: the old garbage floats to the next full pass.
  const auto minor = heap->collectYoung({oldLive});
  EXPECT_GT(minor.reclaimed, 0u) << heap->name();
  EXPECT_EQ(show(heap->decode(arena, oldDead)), "(x y)") << heap->name();
  const auto full = heap->collectGarbage({oldLive});
  EXPECT_GT(full.reclaimed, 0u) << heap->name();
  EXPECT_EQ(show(heap->decode(arena, oldLive)), "(a b)") << heap->name();
}

TEST_P(BackendContract, SatbBarrierSavesPointerStoredIntoBlackCell) {
  const auto heap = make();
  // R -> A -> W: the only path to W runs through A's cdr.
  const HeapWord w = heap->encode(arena, read("(w)"));
  const auto aCell = heap->merge(heap->encode(arena, read("a")), w);
  const auto rCell =
      heap->merge(heap->encode(arena, read("r")), HeapWord::pointer(aCell));
  const HeapWord root = HeapWord::pointer(rCell);
  heap->gcBegin({root});
  // One touch of budget traces exactly the root cell, leaving it black
  // with A gray.
  HeapBackend::CollectResult result;
  ASSERT_FALSE(heap->gcStep(1, result)) << heap->name();
  // Mutator runs mid-cycle: sever the only already-visible path to W,
  // then store W into the black root cell. Without the shade-on-
  // overwrite barrier the collector would never reach W and sweep it.
  heap->setCdr(aCell, HeapWord::nil());
  heap->setCar(rCell, w);
  while (!heap->gcStep(4, result)) {
  }
  EXPECT_EQ(show(heap->decode(arena, root)), "((w) a)") << heap->name();
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, BackendContract, ::testing::ValuesIn(kAllHeapBackendKinds),
    [](const ::testing::TestParamInfo<HeapBackendKind>& info) {
      std::string name = heapBackendName(info.param);
      std::string out;
      for (const char c : name) {
        if (c == '-') continue;
        out += c;
      }
      return out;
    });

}  // namespace
}  // namespace small::heap
