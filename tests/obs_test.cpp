// Tests for the obs subsystem: JSON round-trips, registry merge
// associativity (the determinism contract's foundation), span nesting,
// Chrome trace export fields, and the sweep shard discipline.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "obs/contrib.hpp"
#include "obs/json.hpp"
#include "obs/registry.hpp"
#include "obs/report.hpp"
#include "obs/snapshot.hpp"
#include "obs/span.hpp"
#include "obs/sweep.hpp"
#include "obs/timeseries.hpp"

namespace {

using namespace small;

TEST(ObsJson, IntegerRoundTrip) {
  obs::JsonValue value;
  obs::JsonError error;
  ASSERT_TRUE(obs::parseJson("{\"a\":18446744073709551615,\"b\":-42}",
                             &value, &error))
      << error.message;
  // 2^64-1 does not fit int64; the parser falls back to double for it,
  // but anything in int64 range must stay integral.
  const obs::JsonValue* b = value.find("b");
  ASSERT_NE(b, nullptr);
  EXPECT_TRUE(b->isInt());
  EXPECT_EQ(b->intValue(), -42);
}

TEST(ObsJson, DumpParsesBack) {
  obs::JsonValue object = obs::JsonValue::makeObject();
  object.set("name", obs::JsonValue::makeString("a \"quoted\"\nname"));
  object.set("value", obs::JsonValue::makeUint(123456789));
  object.set("ratio", obs::JsonValue::makeDouble(0.1));
  obs::JsonValue array = obs::JsonValue::makeArray();
  array.append(obs::JsonValue::makeInt(-1));
  array.append(obs::JsonValue::makeBool(true));
  array.append(obs::JsonValue());
  object.set("items", array);

  obs::JsonValue parsed;
  obs::JsonError error;
  ASSERT_TRUE(obs::parseJson(object.dump(), &parsed, &error))
      << error.message;
  EXPECT_EQ(parsed.dump(), object.dump());
  EXPECT_EQ(parsed.find("name")->stringValue(), "a \"quoted\"\nname");
  EXPECT_DOUBLE_EQ(parsed.find("ratio")->numberValue(), 0.1);
}

TEST(ObsJson, TrailingGarbageRejected) {
  obs::JsonValue value;
  obs::JsonError error;
  EXPECT_FALSE(obs::parseJson("{\"a\":1} trailing", &value, &error));
  EXPECT_FALSE(obs::parseJson("[1,2,]", &value, &error));
  EXPECT_FALSE(obs::parseJson("", &value, &error));
}

obs::Registry makeRegistry(std::uint64_t base) {
  obs::Registry r;
  r.add("shared.counter", base);
  r.add("only." + std::to_string(base), 1);
  r.recordMax("shared.max", base * 3);
  r.gauge("shared.gauge").add(static_cast<double>(base) / 4.0);
  r.histogram("shared.hist").add(base, 2);
  return r;
}

TEST(ObsRegistry, MergeIsAssociative) {
  const obs::Registry a = makeRegistry(1);
  const obs::Registry b = makeRegistry(10);
  const obs::Registry c = makeRegistry(100);

  // (a + b) + c
  obs::Registry left;
  left.merge(a);
  left.merge(b);
  obs::Registry leftTotal;
  leftTotal.merge(left);
  leftTotal.merge(c);

  // a + (b + c)
  obs::Registry right;
  right.merge(b);
  right.merge(c);
  obs::Registry rightTotal;
  rightTotal.merge(a);
  rightTotal.merge(right);

  EXPECT_EQ(leftTotal.exportJsonLines(), rightTotal.exportJsonLines());
  EXPECT_EQ(leftTotal.counterValue("shared.counter"), 111u);
  EXPECT_EQ(leftTotal.maxValue("shared.max"), 300u);
  EXPECT_DOUBLE_EQ(leftTotal.gaugeValue("shared.gauge"), 111.0 / 4.0);
}

TEST(ObsRegistry, MergeOrderInvariant) {
  obs::Registry forward;
  obs::Registry backward;
  for (int i = 0; i < 6; ++i) forward.merge(makeRegistry(1ull << i));
  for (int i = 5; i >= 0; --i) backward.merge(makeRegistry(1ull << i));
  EXPECT_EQ(forward.exportJsonLines(), backward.exportJsonLines());
}

TEST(ObsRegistry, HistogramJsonRoundTrip) {
  obs::Registry registry;
  support::Histogram& hist = registry.histogram("pause.units");
  hist.add(3, 5);
  hist.add(17, 1);
  hist.add(3, 2);

  // Find the histogram line in the export and parse it back.
  const std::string lines = registry.exportJsonLines();
  std::string histLine;
  for (std::size_t pos = 0; pos < lines.size();) {
    const std::size_t end = lines.find('\n', pos);
    const std::string line = lines.substr(pos, end - pos);
    if (line.find("\"histogram\"") != std::string::npos) histLine = line;
    pos = end == std::string::npos ? lines.size() : end + 1;
  }
  ASSERT_FALSE(histLine.empty());

  obs::JsonValue value;
  obs::JsonError error;
  ASSERT_TRUE(obs::parseJson(histLine, &value, &error)) << error.message;
  EXPECT_EQ(value.find("name")->stringValue(), "pause.units");
  EXPECT_EQ(value.find("total")->intValue(), 8);

  support::Histogram rebuilt;
  for (const obs::JsonValue& bucket : value.find("buckets")->items()) {
    ASSERT_EQ(bucket.items().size(), 2u);
    rebuilt.add(static_cast<std::uint64_t>(bucket.items()[0].intValue()),
                static_cast<std::uint64_t>(bucket.items()[1].intValue()));
  }
  EXPECT_EQ(rebuilt.buckets(), hist.buckets());
}

// Regression: default-constructed (unbound) handles used to dereference
// their null slot on the first add/record. They must no-op like the null
// TraceSink fast path, so instrumented code can hold handles
// unconditionally and only bind them when obs is enabled.
TEST(ObsRegistry, UnboundHandlesNoop) {
  obs::Counter counter;
  obs::Max max;
  obs::Gauge gauge;
  counter.add();
  counter.add(17);
  max.record(42);
  gauge.add(2.5);
  EXPECT_EQ(counter.value(), 0u);
  EXPECT_EQ(max.value(), 0u);
  EXPECT_EQ(gauge.value(), 0.0);
}

TEST(ObsTelemetry, DisabledBufferDropsSamples) {
  obs::TelemetryBuffer buffer;
  buffer.sample("gc.pause", 10, 3.0);
  buffer.samplePerf("svc.rate", 1.0);
  EXPECT_FALSE(buffer.enabled());
  EXPECT_TRUE(buffer.empty());
}

TEST(ObsTelemetry, SameEpochResampleOverwrites) {
  obs::TelemetryBuffer buffer;
  buffer.enable("task/0");
  buffer.sample("gc.pause", 5, 1.0);
  buffer.sample("gc.pause", 5, 2.0);
  buffer.sample("gc.pause", 9, 3.0);
  ASSERT_EQ(buffer.series().size(), 1u);
  const obs::TelemetrySeries& series = buffer.series()[0];
  ASSERT_EQ(series.samples.size(), 2u);
  EXPECT_EQ(series.samples[0].epoch, 5u);
  EXPECT_EQ(series.samples[0].value, 2.0);
  EXPECT_EQ(series.samples[1].epoch, 9u);
}

// Snapshotter sampling epochs are a pure function of the epoch stream:
// aligned to `every`-sized buckets regardless of how often advanceTo is
// called, with finish() always stamping the final state once.
TEST(ObsTelemetry, SnapshotterAlignsToStride) {
  obs::TelemetryBuffer buffer;
  buffer.enable("task/0");
  std::uint64_t counter = 0;
  obs::Snapshotter snap(&buffer, 10);
  snap.watchCounter("gc.live_cells", &counter);
  for (std::uint64_t epoch = 0; epoch < 25; ++epoch) {
    counter = epoch * 2;
    snap.advanceTo(epoch);
  }
  counter = 999;
  snap.finish(24);
  ASSERT_EQ(buffer.series().size(), 1u);
  const obs::TelemetrySeries& series = buffer.series()[0];
  // Sampled at 0, 10, 20 (bucket starts) and once more at finish(24).
  ASSERT_EQ(series.samples.size(), 4u);
  EXPECT_EQ(series.samples[0].epoch, 0u);
  EXPECT_EQ(series.samples[1].epoch, 10u);
  EXPECT_EQ(series.samples[1].value, 20.0);
  EXPECT_EQ(series.samples[2].epoch, 20u);
  EXPECT_EQ(series.samples[3].epoch, 24u);
  EXPECT_EQ(series.samples[3].value, 999.0);
}

TEST(ObsTelemetry, SnapshotterFinishDedupesLastEpoch) {
  obs::TelemetryBuffer buffer;
  buffer.enable("task/0");
  std::uint64_t counter = 7;
  obs::Snapshotter snap(&buffer, 5);
  snap.watchCounter("gc.live_cells", &counter);
  snap.advanceTo(15);
  snap.finish(15);  // already sampled at 15 — no duplicate
  ASSERT_EQ(buffer.series().size(), 1u);
  EXPECT_EQ(buffer.series()[0].samples.size(), 1u);
}

TEST(ObsTelemetry, DocRenderIsDeterministicAndParses) {
  obs::TelemetryBuffer a;
  a.enable("task/0");
  a.sample("gc.pause", 3, 550.0);
  a.sample("gc.pause", 7, 1.5);
  obs::TelemetryBuffer b;
  b.enable("task/1");
  b.sample("lpt.occupancy", 2, 4.0);

  obs::TelemetryDoc doc;
  doc.append(a);
  doc.append(b);
  const std::string text = doc.render("unit_test");
  obs::TelemetryDoc doc2;
  doc2.append(a);
  doc2.append(b);
  EXPECT_EQ(text, doc2.render("unit_test"));

  // Integral values print as integers ("550"), not exponent notation.
  EXPECT_NE(text.find("[3,550]"), std::string::npos) << text;
  EXPECT_NE(text.find("[7,1.5]"), std::string::npos) << text;

  std::istringstream lines(text);
  std::string line;
  std::size_t lineNo = 0;
  while (std::getline(lines, line)) {
    ++lineNo;
    obs::JsonValue value;
    obs::JsonError error;
    ASSERT_TRUE(obs::parseJson(line, &value, &error))
        << "line " << lineNo << ": " << error.message;
    if (lineNo == 1) {
      EXPECT_EQ(value.find("type")->stringValue(), "telemetry");
      EXPECT_EQ(value.find("version")->intValue(), obs::kTelemetryVersion);
      EXPECT_EQ(value.find("series")->intValue(), 2);
    } else {
      EXPECT_EQ(value.find("type")->stringValue(), "series");
      EXPECT_EQ(value.find("plane")->stringValue(), "epoch");
    }
  }
  EXPECT_EQ(lineNo, 3u);
}

TEST(ObsTelemetry, ChromeCounterEventsCarryEpochAndValue) {
  obs::TelemetryBuffer buffer;
  buffer.enable("session/0");
  buffer.sample("svc.queue.depth", 512, 7.0);
  obs::TelemetryDoc doc;
  doc.append(buffer);
  std::string out = "[";
  bool first = true;
  obs::appendChromeCounterEvents(doc, &first, out);
  out += "]";
  obs::JsonValue trace;
  obs::JsonError error;
  ASSERT_TRUE(obs::parseJson(out, &trace, &error)) << error.message;
  ASSERT_EQ(trace.items().size(), 1u);
  const obs::JsonValue& event = trace.items()[0];
  EXPECT_EQ(event.find("ph")->stringValue(), "C");
  EXPECT_EQ(event.find("name")->stringValue(),
            "svc.queue.depth [session/0]");
  EXPECT_EQ(event.find("cat")->stringValue(), "telemetry.epoch");
  EXPECT_EQ(event.find("ts")->intValue(), 512);
  EXPECT_EQ(event.find("args")->find("value")->numberValue(), 7.0);
}

TEST(ObsSpan, NullSinkIsNoop) {
  obs::Span span(nullptr, "nothing");
  span.addCost(42);
  // No sink: destructor must not record anywhere (would crash on null).
}

TEST(ObsSpan, NestingDepthsRecorded) {
  obs::TraceSink sink;
  {
    obs::Span outer(&sink, "outer");
    {
      obs::Span inner(&sink, "inner", "cat");
      obs::Span innermost(&sink, "innermost");
    }
    obs::Span sibling(&sink, "sibling");
  }
  // Spans record on destruction: innermost closes first.
  ASSERT_EQ(sink.events().size(), 4u);
  EXPECT_EQ(sink.events()[0].name, "innermost");
  EXPECT_EQ(sink.events()[0].depth, 2u);
  EXPECT_EQ(sink.events()[1].name, "inner");
  EXPECT_EQ(sink.events()[1].depth, 1u);
  EXPECT_EQ(sink.events()[1].category, "cat");
  EXPECT_EQ(sink.events()[2].name, "sibling");
  EXPECT_EQ(sink.events()[2].depth, 1u);
  EXPECT_EQ(sink.events()[3].name, "outer");
  EXPECT_EQ(sink.events()[3].depth, 0u);
}

TEST(ObsSpan, PhaseTimerFeedsHistogramAndSink) {
  obs::Registry registry;
  obs::TraceSink sink;
  {
    obs::PhaseTimer timer(&registry, "phase.units", &sink, "phase");
    timer.addCost(7);
    timer.addCost(5);
  }
  const support::Histogram* hist = registry.findHistogram("phase.units");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->total(), 1u);
  ASSERT_EQ(sink.events().size(), 1u);
  EXPECT_EQ(sink.events()[0].costUnits, 12u);
}

TEST(ObsSpan, ChromeExportFieldsParse) {
  obs::TraceSink sink;
  sink.setTid(3);
  {
    obs::Span span(&sink, "work", "sweep");
    span.addCost(9);
  }
  const std::string json = obs::exportChromeTrace({&sink});
  obs::JsonValue value;
  obs::JsonError error;
  ASSERT_TRUE(obs::parseJson(json, &value, &error)) << error.message;
  ASSERT_TRUE(value.isArray());
  ASSERT_EQ(value.items().size(), 1u);
  const obs::JsonValue& event = value.items()[0];
  EXPECT_EQ(event.find("name")->stringValue(), "work");
  EXPECT_EQ(event.find("cat")->stringValue(), "sweep");
  EXPECT_EQ(event.find("ph")->stringValue(), "X");
  EXPECT_TRUE(event.find("ts")->isInt());
  EXPECT_TRUE(event.find("dur")->isInt());
  EXPECT_EQ(event.find("pid")->intValue(), 1);
  EXPECT_EQ(event.find("tid")->intValue(), 3);
  EXPECT_EQ(event.find("args")->find("cost_units")->intValue(), 9);
}

TEST(ObsSweep, DisabledShardsAreNull) {
  obs::ShardSet shards(4, /*enabled=*/false);
  EXPECT_EQ(shards.registryAt(0), nullptr);
  EXPECT_EQ(shards.sinkAt(3), nullptr);
  obs::Registry merged;
  shards.mergeInto(merged);
  EXPECT_TRUE(merged.empty());
}

TEST(ObsSweep, ShardMergeMatchesSerialSum) {
  constexpr std::size_t kTasks = 17;
  obs::ShardSet shards(kTasks, /*enabled=*/true);
  obs::runIndexedObs(kTasks, /*jobs=*/4, shards, [&](std::size_t id) {
    obs::Registry* r = shards.registryAt(id);
    ASSERT_NE(r, nullptr);
    r->add("task.value", id);
    r->recordMax("task.max", id);
  });
  obs::Registry merged;
  shards.mergeInto(merged);
  EXPECT_EQ(merged.counterValue("task.value"), kTasks * (kTasks - 1) / 2);
  EXPECT_EQ(merged.maxValue("task.max"), kTasks - 1);
  // runIndexedObs counts its tasks under the canonical sweep counter.
  EXPECT_EQ(merged.counterValue(obs::names::kSweepTasks), kTasks);
  // One "task" span per task id in the shard's own lane.
  for (std::size_t id = 0; id < kTasks; ++id) {
    ASSERT_NE(shards.sinkAt(id), nullptr);
    EXPECT_EQ(shards.sinkAt(id)->events().size(), 1u);
  }
}

TEST(ObsReport, RenderShapeAndDeterminism) {
  obs::BenchReport report("unit_bench");
  report.setConfig("quick", true);
  report.setConfig("scale", 0.25);
  report.addFigure("fig.knee", std::uint64_t{1234});
  report.addFigure("fig.ratio", 0.75);
  report.registry().add("mem.allocs", 10);

  const std::string rendered = report.render();
  EXPECT_EQ(rendered.find("{\"type\":\"bench_report\",\"version\":1,"
                          "\"bench\":\"unit_bench\","),
            0u);
  EXPECT_NE(rendered.find("{\"type\":\"figure\",\"name\":\"fig.knee\","
                          "\"value\":1234}"),
            std::string::npos);
  EXPECT_NE(rendered.find("{\"type\":\"counter\",\"name\":\"mem.allocs\","
                          "\"value\":10}"),
            std::string::npos);

  // Same inputs — byte-identical output.
  obs::BenchReport again("unit_bench");
  again.setConfig("quick", true);
  again.setConfig("scale", 0.25);
  again.addFigure("fig.knee", std::uint64_t{1234});
  again.addFigure("fig.ratio", 0.75);
  again.registry().add("mem.allocs", 10);
  EXPECT_EQ(again.render(), rendered);
}

TEST(ObsContrib, GcAndLptLandOnSharedNames) {
  core::LptStats lpt;
  lpt.refOps = 100;
  lpt.gets = 40;
  lpt.frees = 30;
  gc::GcStats gcStats;
  gcStats.cellsReclaimed = 25;
  gcStats.barrierOps = 60;
  gcStats.collections = 2;

  obs::Registry fromLpt;
  obs::contributeLptStats(fromLpt, lpt);
  obs::Registry fromGc;
  obs::contributeGcStats(fromGc, gcStats);

  // Both accounting schemes answer under the same mem.* names.
  EXPECT_EQ(fromLpt.counterValue(obs::names::kMemRcOps), 100u);
  EXPECT_EQ(fromGc.counterValue(obs::names::kMemRcOps), 60u);
  EXPECT_EQ(fromLpt.counterValue(obs::names::kMemFrees), 30u);
  EXPECT_EQ(fromGc.counterValue(obs::names::kMemFrees), 25u);
}

}  // namespace
