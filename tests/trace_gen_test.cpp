// End-to-end tests for the trace_gen tool (path baked in by CMake):
// every family generates loadable output in both formats through the
// real binary, same-seed runs are byte-identical, --replay closes the
// generate->mmap->replay loop, and every malformed numeric flag — the
// PR-7 hardening contract — exits 2 without creating the output file or
// leaving a `.tmp` sibling behind.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "trace/binary.hpp"
#include "trace/io.hpp"
#include "trace/trace.hpp"

namespace {

namespace fs = std::filesystem;
using namespace small;

std::string tempPath(const std::string& name) {
  return ::testing::TempDir() + "/small_tracegen_" + name;
}

int runCommand(const std::string& command) {
  const int status = std::system(command.c_str());
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void expectNoTempLeftovers(const std::string& outPath) {
  const fs::path out(outPath);
  for (const fs::directory_entry& entry :
       fs::directory_iterator(out.parent_path())) {
    const std::string name = entry.path().filename().string();
    EXPECT_EQ(name.find(out.filename().string() + ".tmp."),
              std::string::npos)
        << "leftover temp file: " << entry.path();
  }
}

std::string gen(const std::string& args) {
  return std::string(TRACE_GEN_BIN) + " " + args;
}

TEST(TraceGen, EveryFamilyProducesLoadableBinary) {
  for (const char* family : {"agent-loop", "thunk-heavy", "session-churn"}) {
    const std::string out = tempPath(std::string(family) + ".smtr");
    ASSERT_EQ(runCommand(gen("--family " + std::string(family) +
                             " --scale 3000 --out " + out + " > /dev/null")),
              0)
        << family;
    const trace::MappedTrace mapped = trace::MappedTrace::open(out);
    EXPECT_EQ(mapped.toTrace().primitiveLength(), 3000u) << family;
    expectNoTempLeftovers(out);
    std::remove(out.c_str());
  }
}

TEST(TraceGen, TextFormatLoads) {
  const std::string out = tempPath("text.trace");
  ASSERT_EQ(runCommand(gen("--family session-churn --scale 2000 "
                           "--format text --out " +
                           out + " > /dev/null")),
            0);
  const trace::Trace loaded = trace::loadFile(out);
  EXPECT_EQ(loaded.primitiveLength(), 2000u);
  expectNoTempLeftovers(out);
  std::remove(out.c_str());
}

TEST(TraceGen, SameSeedIsByteIdentical) {
  const std::string a = tempPath("det_a.smtr");
  const std::string b = tempPath("det_b.smtr");
  const std::string flags =
      "--family thunk-heavy --scale 4000 --seed 9 --chain-depth 80 --out ";
  ASSERT_EQ(runCommand(gen(flags + a + " > /dev/null")), 0);
  ASSERT_EQ(runCommand(gen(flags + b + " > /dev/null")), 0);
  EXPECT_EQ(slurp(a), slurp(b));
  std::remove(a.c_str());
  std::remove(b.c_str());
}

TEST(TraceGen, ReplayClosesTheLoop) {
  const std::string out = tempPath("replay.smtr");
  ASSERT_EQ(runCommand(gen("--family agent-loop --scale 3000 --replay "
                           "--out " +
                           out + " > /dev/null")),
            0);
  std::remove(out.c_str());
}

TEST(TraceGen, KnobListingExitsZero) {
  EXPECT_EQ(runCommand(gen("--family agent-loop --knobs > /dev/null")), 0);
}

// Strict-parse hardening: each malformed invocation must exit 2 and
// leave the filesystem untouched (no output, no temp files).
TEST(TraceGen, MalformedFlagsExitTwoWithoutOutput) {
  const std::string out = tempPath("bad.smtr");
  const std::vector<std::string> badArgs = {
      "--family agent-loop --scale 0 --out " + out,
      "--family agent-loop --scale -3 --out " + out,
      "--family agent-loop --scale 1e --out " + out,
      "--family agent-loop --scale 12x --out " + out,
      "--family agent-loop --scale 99 --out " + out,  // below kMinScale
      "--family agent-loop --scale 5e3.5 --out " + out,
      "--family agent-loop --scale 99999999999999999999 --out " + out,
      "--family agent-loop --scale 3000 --seed 0 --out " + out,
      "--family agent-loop --scale 3000 --seed nope --out " + out,
      "--family agent-loop --scale 3000 --env-entries 0 --out " + out,
      "--family agent-loop --scale 3000 --mutate-prob 1.5 --out " + out,
      "--family agent-loop --scale 3000 --mutate-prob x --out " + out,
      "--family thunk-heavy --scale 3000 --chain-depth 3 --out " + out,
      "--family agent-loop --scale 3000 --format xml --out " + out,
      // Knobs belong to their family only.
      "--family agent-loop --scale 3000 --chain-depth 50 --out " + out,
      "--family agent-loop --scale 3000 --bogus-flag 1 --out " + out,
      "--family agent-loop --scale 3000 --out " + out +
          " --format text --replay",
      "--family no-such-family --scale 3000 --out " + out,
      "--scale 3000 --out " + out,   // missing --family
      "--family agent-loop --out " + out,  // missing --scale
      "--family agent-loop --scale 3000",  // missing --out
  };
  for (const std::string& args : badArgs) {
    std::remove(out.c_str());
    EXPECT_EQ(runCommand(gen(args + " > /dev/null 2>&1")), 2) << args;
    EXPECT_FALSE(fs::exists(out)) << "bad invocation created " << out
                                  << " via: " << args;
    expectNoTempLeftovers(out);
  }
}

TEST(TraceGen, KnobsChangeTheOutput) {
  const std::string a = tempPath("knob_a.smtr");
  const std::string b = tempPath("knob_b.smtr");
  ASSERT_EQ(runCommand(gen("--family session-churn --scale 4000 --out " +
                           a + " > /dev/null")),
            0);
  ASSERT_EQ(runCommand(gen("--family session-churn --scale 4000 "
                           "--live-sessions 7 --out " +
                           b + " > /dev/null")),
            0);
  EXPECT_NE(slurp(a), slurp(b));
  std::remove(a.c_str());
  std::remove(b.c_str());
}

}  // namespace
