// Tests for the FACOM Alpha style value-cached deep-binding environment
// (§2.3.2, Fig 2.5).
#include <gtest/gtest.h>

#include "lisp/env.hpp"
#include "lisp/value_cache.hpp"

namespace small::lisp {
namespace {

TEST(ValueCache, LookupInstallsAndHits) {
  ValueCachedDeepEnv env;
  env.bind(5, 100);
  EXPECT_EQ(env.lookup(5).value(), 100u);  // miss, installs
  EXPECT_EQ(env.cacheMisses(), 1u);
  EXPECT_EQ(env.lookup(5).value(), 100u);  // hit
  EXPECT_EQ(env.cacheHits(), 1u);
  // The second lookup did not scan the association list.
  EXPECT_EQ(env.listScans(), 1u);
}

TEST(ValueCache, BindInvalidatesCachedName) {
  ValueCachedDeepEnv env;
  env.bind(3, 30);
  (void)env.lookup(3);  // install
  env.pushFrame();
  env.bind(3, 31);  // Fig 2.5(b): the callee's binding invalidates
  EXPECT_EQ(env.lookup(3).value(), 31u);
  EXPECT_EQ(env.cacheMisses(), 2u);  // the shadowed entry did not serve
}

TEST(ValueCache, FrameReturnInvalidatesFrameEntries) {
  ValueCachedDeepEnv env;
  env.bind(7, 70);
  env.pushFrame();
  const auto mark = env.mark();
  env.bind(7, 71);
  EXPECT_EQ(env.lookup(7).value(), 71u);  // installed with callee frame no.
  env.unwindTo(mark);
  env.popFrame();  // Fig 2.5(d): invalidate the frame's entries
  EXPECT_EQ(env.lookup(7).value(), 70u);  // fresh scan, correct old value
}

TEST(ValueCache, AssignInvalidates) {
  ValueCachedDeepEnv env;
  env.bind(2, 20);
  (void)env.lookup(2);
  env.assign(2, 21);
  EXPECT_EQ(env.lookup(2).value(), 21u);
}

TEST(ValueCache, GlobalsAreCached) {
  ValueCachedDeepEnv env;
  env.assign(9, 90);  // top-level value
  EXPECT_EQ(env.lookup(9).value(), 90u);
  EXPECT_EQ(env.lookup(9).value(), 90u);
  EXPECT_EQ(env.cacheHits(), 1u);
}

TEST(ValueCache, UnboundLookupIsNullopt) {
  ValueCachedDeepEnv env;
  EXPECT_FALSE(env.lookup(4).has_value());
}

TEST(ValueCache, RepeatedNonLocalLookupsSaveScans) {
  // Deutsch's observation (§2.3.2): repeated references to the same
  // variable in the same function cost one expensive lookup.
  ValueCachedDeepEnv cached;
  DeepBindingEnv plain;
  cached.bind(0, 1);
  plain.bind(0, 1);
  for (sexpr::SymbolId s = 1; s <= 50; ++s) {
    cached.bind(s, s);
    plain.bind(s, s);
  }
  std::uint64_t plainScans = 0;
  for (int i = 0; i < 100; ++i) {
    (void)cached.lookup(0);  // deepest binding
    const auto before = plain.lookupScans();
    (void)plain.lookup(0);
    plainScans += plain.lookupScans() - before;
  }
  // Plain deep binding scans 51 items per lookup; the cache scans once.
  EXPECT_EQ(cached.listScans(), 51u);
  EXPECT_EQ(plainScans, 100u * 51u);
}

TEST(ValueCache, AgreesWithDeepBindingOnRandomScripts) {
  // Property: under any bind/assign/unwind/frame script, lookups agree
  // with the plain deep-binding environment.
  ValueCachedDeepEnv cached(8);  // tiny cache: heavy conflict traffic
  DeepBindingEnv plain;
  std::vector<Environment::Mark> cachedMarks;
  std::vector<Environment::Mark> plainMarks;
  std::uint64_t state = 777;
  auto next = [&state] {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 33;
  };
  for (int step = 0; step < 4000; ++step) {
    const auto op = next() % 5;
    const auto name = static_cast<sexpr::SymbolId>(next() % 24);
    const auto value = static_cast<sexpr::NodeRef>(next() % 500);
    if (op == 0) {
      cachedMarks.push_back(cached.mark());
      plainMarks.push_back(plain.mark());
      cached.pushFrame();
      cached.bind(name, value);
      plain.bind(name, value);
    } else if (op == 1 && !cachedMarks.empty()) {
      cached.unwindTo(cachedMarks.back());
      cached.popFrame();
      plain.unwindTo(plainMarks.back());
      cachedMarks.pop_back();
      plainMarks.pop_back();
    } else if (op == 2) {
      cached.assign(name, value);
      plain.assign(name, value);
    } else {
      const auto a = cached.lookup(name);
      const auto b = plain.lookup(name);
      ASSERT_EQ(a.has_value(), b.has_value());
      if (a) ASSERT_EQ(*a, *b);
    }
  }
}

}  // namespace
}  // namespace small::lisp
