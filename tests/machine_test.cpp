// Tests for the functional SMALL machine: real LPT + real heap, checked
// against plain s-expression semantics, including a differential fuzz.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "sexpr/printer.hpp"
#include "sexpr/reader.hpp"
#include "small/machine.hpp"
#include "support/rng.hpp"

namespace small::core {
namespace {

class MachineTest : public ::testing::Test {
 protected:
  sexpr::NodeRef read(std::string_view text) {
    sexpr::Reader reader(arena, symbols);
    return reader.readOne(text);
  }
  std::string show(SmallMachine::Value value, const SmallMachine& machine) {
    return sexpr::print(arena, symbols, machine.writeList(arena, value));
  }

  sexpr::SymbolTable symbols;
  sexpr::Arena arena;
};

TEST_F(MachineTest, ReadWriteRoundtrip) {
  SmallMachine machine;
  for (const char* text :
       {"(a b c)", "(a (b (c)) d)", "(1 2 . 3)", "(x)", "((deeply (nested))"
        " structure with (many (sub) lists))"}) {
    const auto value = machine.readList(arena, read(text));
    EXPECT_TRUE(arena.equal(machine.writeList(arena, value), read(text)))
        << text;
    machine.release(value);
  }
}

TEST_F(MachineTest, AtomsReadAsImmediates) {
  SmallMachine machine;
  const auto sym = machine.readList(arena, read("foo"));
  EXPECT_EQ(sym.kind, SmallMachine::Value::Kind::kSymbol);
  const auto num = machine.readList(arena, read("42"));
  EXPECT_EQ(num.kind, SmallMachine::Value::Kind::kInteger);
  EXPECT_EQ(machine.entriesInUse(), 0u);
}

TEST_F(MachineTest, CarCdrSplitOnceThenHit) {
  SmallMachine machine;
  const auto list = machine.readList(arena, read("(a b c)"));
  const auto first = machine.car(list);
  EXPECT_EQ(machine.stats().splits, 1u);
  EXPECT_EQ(first.kind, SmallMachine::Value::Kind::kSymbol);
  EXPECT_EQ(symbols.name(static_cast<sexpr::SymbolId>(first.payload)), "a");
  const auto rest = machine.cdr(list);
  EXPECT_EQ(machine.stats().splits, 1u);  // field hit, no second split
  EXPECT_EQ(machine.stats().hits, 1u);
  EXPECT_EQ(show(rest, machine), "(b c)");
  machine.release(rest);
  machine.release(list);
}

TEST_F(MachineTest, ConsBuildsEndoStructureWithoutHeap) {
  SmallMachine machine;
  const auto tail = machine.readList(arena, read("(b c)"));
  const std::uint64_t cellsBefore = machine.heapCellsLive();
  const auto value = machine.cons(
      SmallMachine::Value::symbol(symbols.intern("a")), tail);
  EXPECT_EQ(machine.heapCellsLive(), cellsBefore);  // §4.3.2.2.4
  EXPECT_EQ(show(value, machine), "(a b c)");
  machine.release(value);
  machine.release(tail);
}

TEST_F(MachineTest, RplacaRplacdMutateStructure) {
  SmallMachine machine;
  const auto list = machine.readList(arena, read("(a b)"));
  machine.rplaca(list, SmallMachine::Value::integer(7));
  EXPECT_EQ(show(list, machine), "(7 b)");
  const auto tail = machine.readList(arena, read("(z)"));
  machine.rplacd(list, tail);
  machine.release(tail);  // still referenced from list's cdr field
  EXPECT_EQ(show(list, machine), "(7 z)");
  machine.release(list);
}

TEST_F(MachineTest, ReleaseReclaimsEntriesAndQueuesHeapFrees) {
  SmallMachine machine;
  const auto list = machine.readList(arena, read("(a b c d e)"));
  EXPECT_EQ(machine.entriesInUse(), 1u);
  machine.release(list);
  EXPECT_EQ(machine.entriesInUse(), 0u);
  EXPECT_GT(machine.pendingHeapFrees(), 0u);
  machine.serviceAllHeapFrees();
  EXPECT_EQ(machine.pendingHeapFrees(), 0u);
  EXPECT_EQ(machine.heapCellsLive(), 0u);
}

TEST_F(MachineTest, FreeQueueFlowControl) {
  SmallMachine::Config config;
  config.freeQueueLimit = 4;
  SmallMachine machine(config);
  for (int i = 0; i < 20; ++i) {
    const auto list = machine.readList(arena, read("(a b)"));
    machine.release(list);
  }
  // The bounded queue must have forced batch services.
  EXPECT_GT(machine.stats().heapFreesServiced, 0u);
  EXPECT_LE(machine.stats().freeQueueHighWater, 5u);
}

TEST_F(MachineTest, CompressionMergesBackIntoHeap) {
  SmallMachine machine;
  const auto list = machine.readList(arena, read("(a b c)"));
  const auto rest = machine.car(list);  // split; both children exist
  (void)rest;
  // Drop the EP reference to the returned car (an atom: nothing to do)
  // and compress: the split children fold back into a heap cell.
  const std::uint64_t merges = machine.compress(true);
  EXPECT_GE(merges, 1u);
  EXPECT_EQ(show(list, machine), "(a b c)");  // content preserved
  machine.release(list);
}

TEST_F(MachineTest, TablePressureCompressesAutomatically) {
  SmallMachine::Config config;
  config.tableSize = 8;
  SmallMachine machine(config);
  // Split a list, drop the children references, then demand entries: the
  // machine must compress rather than fail.
  const auto a = machine.readList(arena, read("(a b c d)"));
  const auto mid = machine.cdr(a);  // split: a + its cdr child = 2 entries
  machine.release(mid);             // the child is now internal-only
  std::vector<SmallMachine::Value> held;
  for (int i = 0; i < 7; ++i) {  // 2 + 7 > 8: compression must fire
    held.push_back(machine.readList(arena, read("(x)")));
  }
  EXPECT_GE(machine.stats().pseudoOverflows +
                machine.stats().cycleRecoveries,
            1u);
  EXPECT_TRUE(arena.equal(machine.writeList(arena, a), read("(a b c d)")));
  for (const auto& v : held) machine.release(v);
  machine.release(a);
}

TEST_F(MachineTest, CyclicStructureIsRecovered) {
  SmallMachine::Config config;
  config.tableSize = 6;
  SmallMachine machine(config);
  const auto x = machine.readList(arena, read("(a)"));
  const auto y = machine.cons(x, x);
  machine.rplacd(x, y);  // cycle x <-> y
  machine.release(x);
  machine.release(y);
  // Fill the table: the cycle must be detected and reclaimed.
  std::vector<SmallMachine::Value> held;
  for (int i = 0; i < 6; ++i) {
    held.push_back(machine.readList(arena, read("(k)")));
  }
  EXPECT_GE(machine.stats().cycleRecoveries, 1u);
  for (const auto& v : held) machine.release(v);
}

TEST_F(MachineTest, ExhaustionThrowsWhenEverythingIsLive) {
  SmallMachine::Config config;
  config.tableSize = 3;
  SmallMachine machine(config);
  std::vector<SmallMachine::Value> held;
  for (int i = 0; i < 3; ++i) {
    held.push_back(machine.readList(arena, read("(a)")));
  }
  EXPECT_THROW(machine.readList(arena, read("(b)")),
               support::SimulationError);
}

TEST_F(MachineTest, CarOfNilIsNil) {
  SmallMachine machine;
  EXPECT_EQ(machine.car(SmallMachine::Value::nil()).kind,
            SmallMachine::Value::Kind::kNil);
  EXPECT_THROW(machine.car(SmallMachine::Value::integer(1)),
               support::EvalError);
}

// --- cross-backend: one op sequence, three machines in lockstep ---

TEST_F(MachineTest, BackendsAgreeOnStructureAndCounters) {
  std::vector<std::unique_ptr<SmallMachine>> machines;
  for (const heap::HeapBackendKind kind : heap::kAllHeapBackendKinds) {
    SmallMachine::Config config;
    config.tableSize = 64;
    config.heapBackend = kind;
    machines.push_back(std::make_unique<SmallMachine>(config));
  }
  // The same mixed workout on each machine: read, split, cons, mutate,
  // release, compress.
  std::vector<std::vector<SmallMachine::Value>> held(machines.size());
  for (std::size_t m = 0; m < machines.size(); ++m) {
    SmallMachine& machine = *machines[m];
    const auto list = machine.readList(arena, read("(a (b c) d . e)"));
    const auto sub = machine.car(list);
    const auto inner = machine.cdr(list);
    machine.rplaca(list, SmallMachine::Value::integer(9));
    const auto pair = machine.cons(sub, inner);
    const auto tail = machine.readList(arena, read("(tail list)"));
    machine.rplacd(pair, tail);
    machine.compress(true);
    EXPECT_EQ(show(pair, machine), "(a tail list)") << m;
    held[m] = {list, sub, inner, pair, tail};
  }
  const SmallMachine::Stats& reference = machines[0]->stats();
  for (std::size_t m = 1; m < machines.size(); ++m) {
    const SmallMachine::Stats& stats = machines[m]->stats();
    const char* backend = machines[m]->heap().name();
    EXPECT_EQ(reference.gets, stats.gets) << backend;
    EXPECT_EQ(reference.frees, stats.frees) << backend;
    EXPECT_EQ(reference.splits, stats.splits) << backend;
    EXPECT_EQ(reference.hits, stats.hits) << backend;
    EXPECT_EQ(reference.merges, stats.merges) << backend;
    EXPECT_EQ(reference.conses, stats.conses) << backend;
    EXPECT_EQ(reference.modifies, stats.modifies) << backend;
    EXPECT_EQ(reference.refOps, stats.refOps) << backend;
    EXPECT_EQ(reference.peakEntriesInUse, stats.peakEntriesInUse) << backend;
  }
  // Physical activity must exist on every backend, and each backend keeps
  // its own books.
  for (std::size_t m = 0; m < machines.size(); ++m) {
    for (const auto v : held[m]) machines[m]->release(v);
    machines[m]->serviceAllHeapFrees();
    const heap::HeapStats& hs = machines[m]->heapStats();
    EXPECT_GT(hs.allocs, 0u);
    EXPECT_GT(hs.touches(), 0u);
    EXPECT_GE(hs.peakLiveCells, hs.liveCells);
    EXPECT_EQ(machines[m]->entriesInUse(), 0u);
    EXPECT_EQ(machines[m]->heapCellsLive(), 0u);
  }
}

// --- differential fuzz: machine semantics vs plain s-expressions,
//     repeated on every heap backend ---

class MachineFuzz : public ::testing::TestWithParam<
                        std::tuple<std::uint64_t, heap::HeapBackendKind>> {};

TEST_P(MachineFuzz, AgreesWithArenaSemantics) {
  sexpr::SymbolTable symbols;
  sexpr::Arena arena;
  sexpr::Reader reader(arena, symbols);
  support::Rng rng(std::get<0>(GetParam()));

  SmallMachine::Config config;
  // Small enough that compression fires under load, large enough that a
  // dozen EP-pinned structures (each pinning its ancestor chain of
  // unfoldable endo-structure) always fit.
  config.tableSize = 256;
  config.heapBackend = std::get<1>(GetParam());
  SmallMachine machine(config);

  // Twins: (arena NodeRef, machine Value) that must stay `equal`.
  struct Twin {
    sexpr::NodeRef node;
    SmallMachine::Value value;
  };
  std::vector<Twin> twins;

  auto freshList = [&] {
    // A random short list of symbols/sublists.
    std::string text = "(";
    const int n = 1 + static_cast<int>(rng.below(4));
    for (int i = 0; i < n; ++i) {
      if (rng.chance(0.3)) {
        text += "(s" + std::to_string(rng.below(8)) + ") ";
      } else {
        text += "s" + std::to_string(rng.below(8)) + " ";
      }
    }
    text += ")";
    return reader.readOne(text);
  };

  for (int step = 0; step < 400; ++step) {
    // Keep the live-twin population bounded so table pressure is
    // realistic but the table stays satisfiable (every twin pins an
    // entry through its EP reference).
    while (twins.size() > 12) {
      const std::size_t i = rng.below(twins.size());
      machine.release(twins[i].value);
      twins[i] = twins.back();
      twins.pop_back();
    }
    const auto op = rng.below(6);
    if (op == 0 || twins.empty()) {
      const sexpr::NodeRef node = freshList();
      twins.push_back({node, machine.readList(arena, node)});
      continue;
    }
    const std::size_t i = rng.below(twins.size());
    Twin& twin = twins[i];
    switch (op) {
      case 1: {  // car/cdr both sides when the result is a list
        const bool wantCar = rng.chance(0.5);
        const sexpr::NodeRef child =
            wantCar ? arena.car(twin.node) : arena.cdr(twin.node);
        const SmallMachine::Value value =
            wantCar ? machine.car(twin.value) : machine.cdr(twin.value);
        if (arena.kind(child) == sexpr::NodeKind::kCons) {
          ASSERT_TRUE(value.isObject());
          twins.push_back({child, value});
        } else {
          machine.release(value);  // atoms: nothing retained
        }
        break;
      }
      case 2: {  // cons with an atom head; cons takes its own field ref
        const sexpr::NodeRef head =
            arena.symbol(symbols.intern("h" + std::to_string(rng.below(4))));
        const sexpr::NodeRef node = arena.cons(head, twin.node);
        const SmallMachine::Value value = machine.cons(
            SmallMachine::Value::symbol(arena.symbolId(head)), twin.value);
        twins.push_back({node, value});
        break;
      }
      case 3: {  // rplaca with an atom
        const auto sym = symbols.intern("r" + std::to_string(rng.below(4)));
        arena.setCar(twin.node, arena.symbol(sym));
        machine.rplaca(twin.value, SmallMachine::Value::symbol(sym));
        break;
      }
      case 4: {  // rplacd with a fresh (non-aliased) list
        const sexpr::NodeRef tail = freshList();
        const SmallMachine::Value tailValue =
            machine.readList(arena, tail);
        arena.setCdr(twin.node, tail);
        machine.rplacd(twin.value, tailValue);
        machine.release(tailValue);
        break;
      }
      case 5: {  // verify equality through writeList
        EXPECT_TRUE(arena.equal(machine.writeList(arena, twin.value),
                                twin.node, 100000));
        break;
      }
      default:
        break;
    }
  }
  // Final sweep: every twin must still agree.
  for (const Twin& twin : twins) {
    EXPECT_TRUE(
        arena.equal(machine.writeList(arena, twin.value), twin.node, 100000));
    machine.release(twin.value);
  }
  machine.serviceAllHeapFrees();
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, MachineFuzz,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u),
                       ::testing::ValuesIn(heap::kAllHeapBackendKinds)));

}  // namespace
}  // namespace small::core
