// Tests for the trace model, I/O, preprocessing, and the calibrated
// synthetic generator.
#include <gtest/gtest.h>

#include <sstream>
#include <unordered_map>

#include "lisp/interpreter.hpp"
#include "lisp/tracer.hpp"
#include "support/rng.hpp"
#include "trace/io.hpp"
#include "trace/preprocess.hpp"
#include "trace/synthetic.hpp"
#include "trace/trace.hpp"

namespace small::trace {
namespace {

Event primitiveEvent(Primitive p, std::vector<ObjectRecord> args,
                     ObjectRecord result) {
  Event event;
  event.kind = EventKind::kPrimitive;
  event.primitive = p;
  event.args = std::move(args);
  event.result = result;
  return event;
}

ObjectRecord listObject(std::uint64_t fp, std::uint32_t n = 3,
                        std::uint32_t p = 0) {
  ObjectRecord record;
  record.fingerprint = fp;
  record.n = n;
  record.p = p;
  record.isList = true;
  return record;
}

TEST(Trace, PrimitiveNamesRoundtrip) {
  for (std::size_t i = 0; i < kPrimitiveCount; ++i) {
    const auto primitive = static_cast<Primitive>(i);
    const auto parsed = primitiveFromName(primitiveName(primitive));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, primitive);
  }
  EXPECT_FALSE(primitiveFromName("bogus").has_value());
}

TEST(Trace, ContentCountsCallsAndDepth) {
  Trace trace;
  const auto f = trace.internFunction("f");
  const auto g = trace.internFunction("g");
  Event enterF;
  enterF.kind = EventKind::kFunctionEnter;
  enterF.functionId = f;
  enterF.argCount = 2;
  Event enterG = enterF;
  enterG.functionId = g;
  Event exitG;
  exitG.kind = EventKind::kFunctionExit;
  exitG.functionId = g;
  Event exitF = exitG;
  exitF.functionId = f;

  trace.append(enterF);
  trace.append(enterG);
  trace.append(primitiveEvent(Primitive::kCar, {listObject(1)},
                              ObjectRecord{}));
  trace.append(exitG);
  trace.append(exitF);

  const TraceContent content = trace.content();
  EXPECT_EQ(content.functionCalls, 2u);
  EXPECT_EQ(content.primitiveCalls, 1u);
  EXPECT_EQ(content.maxCallDepth, 2u);
}

TEST(Trace, ContentFlagsUnbalancedExits) {
  // Exits at depth 0 (a truncated or corrupted stream) must be counted,
  // not silently clamped away.
  Trace trace;
  const auto f = trace.internFunction("f");
  Event exit;
  exit.kind = EventKind::kFunctionExit;
  exit.functionId = f;
  Event enter;
  enter.kind = EventKind::kFunctionEnter;
  enter.functionId = f;
  enter.argCount = 1;

  trace.append(exit);   // unbalanced: nothing was entered yet
  trace.append(enter);
  trace.append(exit);   // balanced
  trace.append(exit);   // unbalanced again

  const TraceContent content = trace.content();
  EXPECT_EQ(content.functionCalls, 1u);
  EXPECT_EQ(content.unbalancedExits, 2u);
  EXPECT_FALSE(content.balanced());

  // The preprocessed view reports the identical counts.
  const TraceContent preContent = preprocess(trace).content();
  EXPECT_EQ(preContent.functionCalls, content.functionCalls);
  EXPECT_EQ(preContent.maxCallDepth, content.maxCallDepth);
  EXPECT_EQ(preContent.unbalancedExits, 2u);
}

TEST(Trace, BalancedTraceHasNoUnbalancedExits) {
  Trace trace;
  Event enter;
  enter.kind = EventKind::kFunctionEnter;
  enter.functionId = trace.internFunction("g");
  Event exit;
  exit.kind = EventKind::kFunctionExit;
  exit.functionId = enter.functionId;
  trace.append(enter);
  trace.append(primitiveEvent(Primitive::kCons, {listObject(1)},
                              listObject(2)));
  trace.append(exit);
  EXPECT_TRUE(trace.content().balanced());
  EXPECT_TRUE(preprocess(trace).content().balanced());
}

TEST(TraceIo, RoundtripPreservesUnbalancedExitCount) {
  // A malformed trace must stay visibly malformed through save/load.
  Trace trace;
  trace.name = "truncated";
  Event exit;
  exit.kind = EventKind::kFunctionExit;
  exit.functionId = trace.internFunction("h");
  trace.append(exit);
  std::stringstream buffer;
  save(trace, buffer);
  const Trace loaded = load(buffer);
  EXPECT_EQ(loaded.content().unbalancedExits, 1u);
  EXPECT_FALSE(loaded.content().balanced());
}

TEST(TraceIo, SaveLoadRoundtrip) {
  Trace trace;
  trace.name = "unit";
  Event enter;
  enter.kind = EventKind::kFunctionEnter;
  enter.functionId = trace.internFunction("walker");
  enter.argCount = 3;
  trace.append(enter);
  trace.append(primitiveEvent(Primitive::kCons,
                              {listObject(11, 2, 1), listObject(12)},
                              listObject(13, 5, 2)));
  Event exit;
  exit.kind = EventKind::kFunctionExit;
  exit.functionId = 0;
  trace.append(exit);

  std::stringstream buffer;
  save(trace, buffer);
  const Trace loaded = load(buffer);

  EXPECT_EQ(loaded.name, "unit");
  ASSERT_EQ(loaded.events().size(), 3u);
  EXPECT_EQ(loaded.events()[0].kind, EventKind::kFunctionEnter);
  EXPECT_EQ(loaded.events()[0].argCount, 3);
  EXPECT_EQ(loaded.functionName(loaded.events()[0].functionId), "walker");
  const Event& prim = loaded.events()[1];
  EXPECT_EQ(prim.primitive, Primitive::kCons);
  ASSERT_EQ(prim.args.size(), 2u);
  EXPECT_EQ(prim.args[0].fingerprint, 11u);
  EXPECT_EQ(prim.args[0].p, 1u);
  EXPECT_EQ(prim.result.fingerprint, 13u);
  EXPECT_TRUE(prim.result.isList);
}

TEST(TraceIo, RejectsGarbage) {
  std::stringstream buffer("Z nonsense\n");
  EXPECT_THROW(load(buffer), support::ParseError);
}

namespace {

// What load() says about `text`, or "" if it loads cleanly.
std::string loadError(const std::string& text) {
  std::stringstream in(text);
  try {
    load(in);
  } catch (const support::ParseError& e) {
    return e.what();
  }
  return "";
}

bool contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

}  // namespace

TEST(TraceIo, FunctionNamesWithSeparatorsRoundtrip) {
  // Names containing the format's own separators (spaces, tabs) and syntax
  // characters ('#', '%') must survive save/load via percent-encoding.
  const std::vector<std::string> names = {"my func", "weird#name",
                                          "100%scheme", "tab\there",
                                          "a b#c%d"};
  Trace trace;
  trace.name = "escaping";
  for (const std::string& name : names) {
    Event enter;
    enter.kind = EventKind::kFunctionEnter;
    enter.functionId = trace.internFunction(name);
    enter.argCount = 1;
    trace.append(enter);
    Event exit;
    exit.kind = EventKind::kFunctionExit;
    exit.functionId = enter.functionId;
    trace.append(exit);
  }

  std::stringstream buffer;
  save(trace, buffer);
  const Trace loaded = load(buffer);
  ASSERT_EQ(loaded.events().size(), 2 * names.size());
  for (std::size_t i = 0; i < names.size(); ++i) {
    EXPECT_EQ(loaded.functionName(loaded.events()[2 * i].functionId),
              names[i]);
    EXPECT_EQ(loaded.functionName(loaded.events()[2 * i + 1].functionId),
              names[i]);
  }
}

TEST(TraceIo, UnknownTagReportsLineNumber) {
  const std::string error = loadError("E f 1\nQ bogus\n");
  EXPECT_TRUE(contains(error, "line 2")) << error;
  EXPECT_TRUE(contains(error, "unknown record tag")) << error;
}

TEST(TraceIo, UnknownPrimitiveReportsLineNumber) {
  const std::string error = loadError("P frob 1:2:3:1\n");
  EXPECT_TRUE(contains(error, "line 1")) << error;
  EXPECT_TRUE(contains(error, "unknown primitive")) << error;
}

TEST(TraceIo, TruncatedObjectFieldThrows) {
  // Three of four ':'-separated fields.
  const std::string error = loadError("E f 1\n\nP car 1:2:3\n");
  EXPECT_TRUE(contains(error, "line 3")) << error;
  EXPECT_TRUE(contains(error, "truncated object record")) << error;
  // Five fields is just as malformed.
  EXPECT_TRUE(
      contains(loadError("P car 1:2:3:1:9\n"), "malformed object record"));
  // Non-numeric and signed fields are rejected, not coerced.
  EXPECT_TRUE(contains(loadError("P car x:2:3:1\n"), "non-numeric"));
  EXPECT_TRUE(contains(loadError("P car 1:-2:3:1\n"), "non-numeric"));
  EXPECT_TRUE(contains(loadError("P car 1:2:3:7\n"), "out of range"));
  EXPECT_TRUE(contains(loadError("P car\n"), "missing result"));
}

TEST(TraceIo, BadArgCountThrows) {
  const std::string nonNumeric = loadError("E f abc\n");
  EXPECT_TRUE(contains(nonNumeric, "line 1")) << nonNumeric;
  EXPECT_TRUE(contains(nonNumeric, "non-numeric argCount")) << nonNumeric;
  EXPECT_TRUE(contains(loadError("E f -1\n"), "non-numeric argCount"));
  EXPECT_TRUE(contains(loadError("E f 300\n"), "out of range"));
  EXPECT_TRUE(contains(loadError("E f 1 junk\n"), "trailing garbage"));
  EXPECT_TRUE(contains(loadError("E f\n"), "truncated function-enter"));
}

TEST(TraceIo, MalformedFunctionExitThrows) {
  EXPECT_TRUE(contains(loadError("X\n"), "truncated function-exit"));
  EXPECT_TRUE(contains(loadError("X f junk\n"), "trailing garbage"));
  EXPECT_TRUE(contains(loadError("X f%GG\n"), "bad escape"));
  EXPECT_TRUE(contains(loadError("X f%2\n"), "truncated escape"));
}

TEST(TraceIo, FileRoundtrip) {
  Trace trace;
  trace.name = "filetest";
  trace.append(primitiveEvent(Primitive::kCar, {listObject(5, 2, 1)},
                              listObject(6, 1, 0)));
  const std::string path = ::testing::TempDir() + "/small_trace_test.txt";
  saveFile(trace, path);
  const Trace loaded = loadFile(path);
  EXPECT_EQ(loaded.name, "filetest");
  ASSERT_EQ(loaded.events().size(), 1u);
  EXPECT_EQ(loaded.events()[0].args[0].fingerprint, 5u);
}

TEST(TraceIo, MissingFileThrows) {
  EXPECT_THROW(loadFile("/nonexistent/dir/trace.txt"), support::Error);
  Trace trace;
  EXPECT_THROW(saveFile(trace, "/nonexistent/dir/trace.txt"),
               support::Error);
}

TEST(Preprocess, AssignsStableUniqueIds) {
  Trace trace;
  trace.append(primitiveEvent(Primitive::kCar, {listObject(100)},
                              listObject(200)));
  trace.append(primitiveEvent(Primitive::kCar, {listObject(100)},
                              listObject(200)));
  const PreprocessedTrace pre = preprocess(trace);
  EXPECT_EQ(pre.uniqueListCount, 2u);
  EXPECT_EQ(pre.events[0].args[0].id, pre.events[1].args[0].id);
  EXPECT_EQ(pre.events[0].result.id, pre.events[1].result.id);
  EXPECT_NE(pre.events[0].args[0].id, pre.events[0].result.id);
}

TEST(Preprocess, AtomsGetNoId) {
  ObjectRecord atom;  // isList = false
  Trace trace;
  trace.append(primitiveEvent(Primitive::kCar, {listObject(1)}, atom));
  const PreprocessedTrace pre = preprocess(trace);
  EXPECT_EQ(pre.events[0].result.id, kNoObject);
}

TEST(Preprocess, ChainingFlagSetWhenArgIsPreviousResult) {
  Trace trace;
  trace.append(primitiveEvent(Primitive::kCdr, {listObject(1, 4, 0)},
                              listObject(2, 3, 0)));
  trace.append(primitiveEvent(Primitive::kCdr, {listObject(2, 3, 0)},
                              listObject(3, 2, 0)));
  trace.append(primitiveEvent(Primitive::kCdr, {listObject(1, 4, 0)},
                              listObject(2, 3, 0)));
  const PreprocessedTrace pre = preprocess(trace);
  EXPECT_FALSE(pre.events[0].args[0].chained);
  EXPECT_TRUE(pre.events[1].args[0].chained);   // arg 2 == previous result
  EXPECT_FALSE(pre.events[2].args[0].chained);  // arg 1 != previous result 3
}

TEST(Preprocess, FunctionEventsDoNotBreakChains) {
  Trace trace;
  trace.append(primitiveEvent(Primitive::kCdr, {listObject(1)},
                              listObject(2)));
  Event enter;
  enter.kind = EventKind::kFunctionEnter;
  enter.functionId = trace.internFunction("f");
  trace.append(enter);
  trace.append(primitiveEvent(Primitive::kCar, {listObject(2)},
                              listObject(4)));
  const PreprocessedTrace pre = preprocess(trace);
  EXPECT_TRUE(pre.events[2].args[0].chained);
}

TEST(Preprocess, AtomResultBreaksChain) {
  Trace trace;
  trace.append(primitiveEvent(Primitive::kNull, {listObject(1)},
                              ObjectRecord{}));
  trace.append(primitiveEvent(Primitive::kCar, {listObject(1)},
                              listObject(2)));
  const PreprocessedTrace pre = preprocess(trace);
  EXPECT_FALSE(pre.events[1].args[0].chained);
}

// --- synthetic generator calibration ---

class SyntheticTest : public ::testing::TestWithParam<WorkloadProfile> {};

TEST_P(SyntheticTest, LengthMatchesProfile) {
  support::Rng rng(1);
  const WorkloadProfile profile = GetParam();
  const Trace trace = generate(profile, rng);
  EXPECT_EQ(trace.primitiveLength(), profile.primitiveCalls);
  EXPECT_EQ(trace.name, profile.name);
}

TEST_P(SyntheticTest, FunctionEventsBalance) {
  support::Rng rng(2);
  const Trace trace = generate(GetParam(), rng);
  int depth = 0;
  for (const Event& event : trace.events()) {
    if (event.kind == EventKind::kFunctionEnter) ++depth;
    if (event.kind == EventKind::kFunctionExit) --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST_P(SyntheticTest, PrimitiveMixNearProfile) {
  support::Rng rng(3);
  const WorkloadProfile profile = GetParam();
  const Trace trace = generate(profile, rng);
  std::uint64_t car = 0, cdr = 0, total = 0;
  for (const Event& event : trace.events()) {
    if (event.kind != EventKind::kPrimitive) continue;
    ++total;
    if (event.primitive == Primitive::kCar) ++car;
    if (event.primitive == Primitive::kCdr) ++cdr;
  }
  const double carFrac = static_cast<double>(car) / total;
  const double cdrFrac = static_cast<double>(cdr) / total;
  EXPECT_NEAR(carFrac, profile.carFrac, 0.05);
  EXPECT_NEAR(cdrFrac, profile.cdrFrac, 0.05);
}

TEST_P(SyntheticTest, MemoizedChildrenShareFingerprints) {
  support::Rng rng(4);
  const Trace trace = generate(GetParam(), rng);
  // car of the same object must yield the same fingerprint each time —
  // until the object is destructively modified (rplaca/rplacd retarget
  // the derivation, so drop mutated objects from the expectation).
  std::unordered_map<std::uint64_t, std::uint64_t> carOf;
  for (const Event& event : trace.events()) {
    if (event.kind != EventKind::kPrimitive) continue;
    if ((event.primitive == Primitive::kRplaca ||
         event.primitive == Primitive::kRplacd) &&
        !event.args.empty() && event.args[0].isList) {
      carOf.erase(event.args[0].fingerprint);
      continue;
    }
    if (event.primitive != Primitive::kCar) continue;
    if (event.args.empty() || !event.args[0].isList) continue;
    if (!event.result.isList) continue;
    const auto [it, inserted] = carOf.try_emplace(
        event.args[0].fingerprint, event.result.fingerprint);
    if (!inserted) {
      EXPECT_EQ(it->second, event.result.fingerprint);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, SyntheticTest,
    ::testing::Values(slangProfile(0.2), plagenProfile(0.1),
                      lyraProfile(0.02), editorProfile(0.1),
                      pearlProfile(1.0)),
    [](const ::testing::TestParamInfo<WorkloadProfile>& info) {
      return info.param.name;
    });

TEST(Synthetic, DeterministicForFixedSeed) {
  support::Rng rngA(99);
  support::Rng rngB(99);
  const Trace a = generate(slangProfile(0.05), rngA);
  const Trace b = generate(slangProfile(0.05), rngB);
  ASSERT_EQ(a.events().size(), b.events().size());
  for (std::size_t i = 0; i < a.events().size(); ++i) {
    EXPECT_EQ(a.events()[i].kind, b.events()[i].kind);
    if (a.events()[i].kind == EventKind::kPrimitive) {
      EXPECT_EQ(a.events()[i].primitive, b.events()[i].primitive);
      EXPECT_EQ(a.events()[i].result.fingerprint,
                b.events()[i].result.fingerprint);
    }
  }
}

TEST(Synthetic, RplacdMutationChangesDerivation) {
  // After (rplacd X Y), cdr of X must be Y.
  support::Rng rng(5);
  const Trace trace = generate(pearlProfile(1.0), rng);
  std::uint64_t pendingTarget = 0;
  std::uint64_t pendingValue = 0;
  bool sawCheck = false;
  for (const Event& event : trace.events()) {
    if (event.kind != EventKind::kPrimitive) continue;
    if (event.primitive == Primitive::kRplacd &&
        event.args.size() == 2 && event.args[1].isList) {
      pendingTarget = event.args[0].fingerprint;
      pendingValue = event.args[1].fingerprint;
    } else if (pendingTarget != 0 && event.primitive == Primitive::kCdr &&
               !event.args.empty() &&
               event.args[0].fingerprint == pendingTarget) {
      EXPECT_EQ(event.result.fingerprint, pendingValue);
      sawCheck = true;
      pendingTarget = 0;
    } else if (event.primitive == Primitive::kRplacd ||
               event.primitive == Primitive::kRplaca ||
               event.primitive == Primitive::kCons) {
      // Another mutation could retarget; stop tracking.
      pendingTarget = 0;
    }
  }
  // The Pearl profile is rplac-heavy, so this path is exercised.
  EXPECT_TRUE(sawCheck);
}

// --- interpreter-to-trace integration ---

TEST(Recorder, InterpreterPrimitivesAreRecorded) {
  sexpr::SymbolTable symbols;
  sexpr::Arena arena;
  lisp::Interpreter interp(arena, symbols);
  Trace trace;
  lisp::TraceRecorder recorder(arena, trace);
  interp.setTracer(&recorder);

  interp.run("(car (cdr '(a b c)))");
  ASSERT_EQ(trace.events().size(), 2u);
  EXPECT_EQ(trace.events()[0].primitive, Primitive::kCdr);
  EXPECT_EQ(trace.events()[1].primitive, Primitive::kCar);
  // The cdr result (b c) is the car argument: same fingerprint.
  EXPECT_EQ(trace.events()[0].result.fingerprint,
            trace.events()[1].args[0].fingerprint);
  // After preprocessing, that makes the car call chained.
  const PreprocessedTrace pre = preprocess(trace);
  EXPECT_TRUE(pre.events[1].args[0].chained);
}

TEST(Recorder, FunctionEntersAndExitsRecorded) {
  sexpr::SymbolTable symbols;
  sexpr::Arena arena;
  lisp::Interpreter interp(arena, symbols);
  Trace trace;
  lisp::TraceRecorder recorder(arena, trace);
  interp.setTracer(&recorder);

  interp.run("(defun f (x) (car x)) (f '(1 2))");
  ASSERT_EQ(trace.events().size(), 3u);
  EXPECT_EQ(trace.events()[0].kind, EventKind::kFunctionEnter);
  EXPECT_EQ(trace.events()[0].argCount, 1);
  EXPECT_EQ(trace.events()[1].kind, EventKind::kPrimitive);
  EXPECT_EQ(trace.events()[2].kind, EventKind::kFunctionExit);
}

}  // namespace
}  // namespace small::trace
