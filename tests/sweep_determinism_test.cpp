// Determinism contract for the parallel sweep harness: fanning the
// evaluation sweeps out over worker threads must not change a single
// counter. Each converted bench's core loop is reproduced here in
// miniature — simulator (trace x size), simulator (trace x seed),
// parameter sensitivity, and functional-machine replay (trace x backend) —
// and every machine/simulator counter is compared between --jobs 1 (the
// bit-for-bit serial path) and --jobs 8.
#include <gtest/gtest.h>

#include <vector>

#include "small/machine_replay.hpp"
#include "small/simulator.hpp"
#include "support/parallel.hpp"
#include "trace/preprocess.hpp"
#include "trace/synthetic.hpp"

namespace small {
namespace {

std::vector<trace::PreprocessedTrace> testTraces() {
  // Small calibrated traces: enough events to exercise overflow and
  // compression, quick enough for a unit test.
  support::Rng rng(2026);
  std::vector<trace::PreprocessedTrace> pres;
  for (const auto& profile :
       {trace::slangProfile(0.25), trace::editorProfile(0.25)}) {
    pres.push_back(trace::preprocess(trace::generate(profile, rng)));
  }
  return pres;
}

void expectSameSimResult(const core::SimResult& a, const core::SimResult& b) {
  EXPECT_EQ(a.lptStats.refOps, b.lptStats.refOps);
  EXPECT_EQ(a.lptStats.gets, b.lptStats.gets);
  EXPECT_EQ(a.lptStats.frees, b.lptStats.frees);
  EXPECT_EQ(a.lptStats.lazyDecrements, b.lptStats.lazyDecrements);
  EXPECT_EQ(a.lptStats.maxRefCount, b.lptStats.maxRefCount);
  EXPECT_EQ(a.lpStats.pseudoOverflows, b.lpStats.pseudoOverflows);
  EXPECT_EQ(a.lptHits, b.lptHits);
  EXPECT_EQ(a.lptMisses, b.lptMisses);
  EXPECT_EQ(a.cacheHits, b.cacheHits);
  EXPECT_EQ(a.cacheMisses, b.cacheMisses);
  EXPECT_EQ(a.peakOccupancy, b.peakOccupancy);
  EXPECT_DOUBLE_EQ(a.averageOccupancy, b.averageOccupancy);
  EXPECT_EQ(a.primitivesSimulated, b.primitivesSimulated);
  EXPECT_EQ(a.functionCalls, b.functionCalls);
}

TEST(SweepDeterminism, SimulatorSizeSweepMatchesSerial) {
  const auto pres = testTraces();
  constexpr std::uint32_t kSizes[] = {32, 64, 128, 512};
  constexpr std::size_t kSizeCount = std::size(kSizes);
  const auto runAll = [&](int jobs) {
    return support::runSweep<core::SimResult>(
        pres.size() * kSizeCount, jobs, [&](std::size_t id) {
          core::SimConfig config;
          config.tableSize = kSizes[id % kSizeCount];
          config.driveCache = true;
          config.seed = 42;
          return core::simulateTrace(config, pres[id / kSizeCount]);
        });
  };
  const auto serial = runAll(1);
  const auto parallel = runAll(8);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    expectSameSimResult(serial[i], parallel[i]);
  }
}

TEST(SweepDeterminism, ReseededSweepMatchesSerial) {
  // The Fig 5.2 shape: many reseeded runs of the same trace.
  const auto pres = testTraces();
  const auto runAll = [&](int jobs) {
    return support::runSweep<core::SimResult>(
        20, jobs, [&](std::size_t id) {
          core::SimConfig config;
          config.tableSize = 1u << 14;
          config.seed = support::deriveTaskSeed(7919, id);
          return core::simulateTrace(config, pres[0]);
        });
  };
  const auto serial = runAll(1);
  const auto parallel = runAll(8);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    expectSameSimResult(serial[i], parallel[i]);
  }
  // Distinct derived seeds actually vary the runs (no accidental reuse).
  bool anyDifferent = false;
  for (std::size_t i = 1; i < serial.size(); ++i) {
    if (serial[i].lptStats.refOps != serial[0].lptStats.refOps) {
      anyDifferent = true;
    }
  }
  EXPECT_TRUE(anyDifferent);
}

TEST(SweepDeterminism, ParameterSweepMatchesSerial) {
  const auto pres = testTraces();
  struct Setting {
    double argProb, locProb;
  };
  const std::vector<Setting> settings = {
      {0.60, 0.30}, {0.85, 0.125}, {0.30, 0.60}};
  const auto runAll = [&](int jobs) {
    return support::runSweep<core::SimResult>(
        settings, jobs, [&](const Setting& s, std::size_t) {
          core::SimConfig config;
          config.tableSize = 64;
          config.argProb = s.argProb;
          config.locProb = s.locProb;
          config.driveCache = true;
          config.seed = 2026;
          return core::simulateTrace(config, pres[1]);
        });
  };
  const auto serial = runAll(1);
  const auto parallel = runAll(8);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    expectSameSimResult(serial[i], parallel[i]);
  }
}

TEST(SweepDeterminism, MachineReplayBackendSweepMatchesSerial) {
  // The heap_backend_comparison shape: (trace x backend) functional-machine
  // replays sharing read-only preprocessed traces.
  const auto pres = testTraces();
  constexpr std::size_t kBackendCount =
      std::size(heap::kAllHeapBackendKinds);
  const auto runAll = [&](int jobs) {
    return support::runSweep<core::ReplayResult>(
        pres.size() * kBackendCount, jobs, [&](std::size_t id) {
          core::ReplayConfig config;
          config.seed = 17;
          config.machine.tableSize = 512;
          config.machine.heapBackend =
              heap::kAllHeapBackendKinds[id % kBackendCount];
          return core::replayTrace(config, pres[id / kBackendCount]);
        });
  };
  const auto serial = runAll(1);
  const auto parallel = runAll(8);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].backend, parallel[i].backend);
    EXPECT_EQ(serial[i].machine.gets, parallel[i].machine.gets);
    EXPECT_EQ(serial[i].machine.frees, parallel[i].machine.frees);
    EXPECT_EQ(serial[i].machine.splits, parallel[i].machine.splits);
    EXPECT_EQ(serial[i].machine.merges, parallel[i].machine.merges);
    EXPECT_EQ(serial[i].machine.hits, parallel[i].machine.hits);
    EXPECT_EQ(serial[i].machine.peakEntriesInUse,
              parallel[i].machine.peakEntriesInUse);
    EXPECT_EQ(serial[i].heap.allocs, parallel[i].heap.allocs);
    EXPECT_EQ(serial[i].heap.frees, parallel[i].heap.frees);
    EXPECT_EQ(serial[i].heap.touches(), parallel[i].heap.touches());
    EXPECT_EQ(serial[i].primitives, parallel[i].primitives);
    EXPECT_EQ(serial[i].residualEntries, parallel[i].residualEntries);
  }
  // And the cross-backend invariance the comparison bench gates on.
  for (std::size_t t = 0; t < pres.size(); ++t) {
    const auto& reference = serial[t * kBackendCount].machine;
    for (std::size_t b = 1; b < kBackendCount; ++b) {
      const auto& other = serial[t * kBackendCount + b].machine;
      EXPECT_EQ(other.gets, reference.gets);
      EXPECT_EQ(other.frees, reference.frees);
      EXPECT_EQ(other.splits, reference.splits);
      EXPECT_EQ(other.merges, reference.merges);
      EXPECT_EQ(other.hits, reference.hits);
    }
  }
}

}  // namespace
}  // namespace small
