// End-to-end tests for the trace_convert tool (path baked in by CMake):
// lossless text<->binary round-trips through the real binary, and the
// atomic-output contract — a conversion that fails for ANY reason
// (malformed input, unwritable destination) must exit nonzero and leave
// the destination exactly as it was: absent if it was absent, untouched
// if it existed, and never a truncated `.tmp` sibling.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "support/rng.hpp"
#include "trace/io.hpp"
#include "trace/synthetic.hpp"
#include "trace/trace.hpp"

namespace {

namespace fs = std::filesystem;
using namespace small;

std::string tempPath(const std::string& name) {
  return ::testing::TempDir() + "/small_convert_" + name;
}

int runCommand(const std::string& command) {
  const int status = std::system(command.c_str());
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void writeBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// No `<out>.tmp.<pid>` (or any other sibling starting with the stem)
/// may survive a run, successful or not.
void expectNoTempLeftovers(const std::string& outPath) {
  const fs::path out(outPath);
  for (const fs::directory_entry& entry :
       fs::directory_iterator(out.parent_path())) {
    const std::string name = entry.path().filename().string();
    EXPECT_EQ(name.find(out.filename().string() + ".tmp."),
              std::string::npos)
        << "leftover temp file: " << entry.path();
  }
}

std::string sampleTextTrace() {
  support::Rng rng(7);
  const trace::Trace raw =
      trace::generate(trace::slangProfile(0.01), rng);
  const std::string path = tempPath("sample.trace");
  trace::saveFile(raw, path, trace::FileFormat::kText);
  return path;
}

TEST(TraceConvert, TextBinaryTextRoundTripIsLossless) {
  const std::string text = sampleTextTrace();
  const std::string binary = tempPath("roundtrip.smtr");
  const std::string back = tempPath("roundtrip_back.trace");
  ASSERT_EQ(runCommand(std::string(TRACE_CONVERT_BIN) + " " + text + " " +
                       binary + " > /dev/null"),
            0);
  ASSERT_EQ(runCommand(std::string(TRACE_CONVERT_BIN) + " " + binary +
                       " " + back + " > /dev/null"),
            0);
  EXPECT_EQ(slurp(text), slurp(back));
  expectNoTempLeftovers(binary);
  expectNoTempLeftovers(back);
  std::remove(text.c_str());
  std::remove(binary.c_str());
  std::remove(back.c_str());
}

TEST(TraceConvert, MalformedInputLeavesNoOutput) {
  const std::string bad = tempPath("malformed.trace");
  writeBytes(bad, "E f 1\nQ bogus\n");
  const std::string out = tempPath("malformed_out.smtr");
  std::remove(out.c_str());
  EXPECT_NE(runCommand(std::string(TRACE_CONVERT_BIN) + " " + bad + " " +
                       out + " > /dev/null 2>&1"),
            0);
  EXPECT_FALSE(fs::exists(out)) << "failed conversion created " << out;
  expectNoTempLeftovers(out);
  std::remove(bad.c_str());
}

TEST(TraceConvert, MalformedInputLeavesExistingOutputUntouched) {
  const std::string bad = tempPath("clobber.trace");
  writeBytes(bad, "not a trace at all\n");
  const std::string out = tempPath("clobber_out.smtr");
  writeBytes(out, "precious bytes");
  EXPECT_NE(runCommand(std::string(TRACE_CONVERT_BIN) + " " + bad + " " +
                       out + " > /dev/null 2>&1"),
            0);
  EXPECT_EQ(slurp(out), "precious bytes")
      << "failed conversion must not clobber the existing destination";
  expectNoTempLeftovers(out);
  std::remove(bad.c_str());
  std::remove(out.c_str());
}

TEST(TraceConvert, UnwritableDestinationFailsCleanly) {
  const std::string text = sampleTextTrace();
  EXPECT_NE(runCommand(std::string(TRACE_CONVERT_BIN) + " " + text +
                       " /nonexistent/dir/out.smtr > /dev/null 2>&1"),
            0);
  std::remove(text.c_str());
}

TEST(TraceConvert, BadUsageExitsTwo) {
  EXPECT_EQ(runCommand(std::string(TRACE_CONVERT_BIN) +
                       " > /dev/null 2>&1"),
            2);
  const std::string text = sampleTextTrace();
  EXPECT_EQ(runCommand(std::string(TRACE_CONVERT_BIN) + " " + text + " " +
                       tempPath("fmt.out") +
                       " --to nonsense > /dev/null 2>&1"),
            2);
  std::remove(text.c_str());
}

}  // namespace
