// Three-way differential testing: the interpreter, the compiled VM on
// plain s-expressions, and the compiled VM on the functional SMALL
// machine must agree on a battery of programs spanning the thesis-subset
// language. Disagreement anywhere means one of the three execution
// engines (or the compiler) is wrong.
#include <gtest/gtest.h>

#include "lisp/interpreter.hpp"
#include "sexpr/printer.hpp"
#include "vm/compiler.hpp"
#include "vm/emulator.hpp"
#include "vm/small_emulator.hpp"

namespace small {
namespace {

struct Engines {
  sexpr::SymbolTable symbols;
  sexpr::Arena arena;

  std::vector<std::string> interpret(std::string_view source,
                                     std::string_view input) {
    lisp::Interpreter interp(arena, symbols);
    if (!input.empty()) interp.provideInputText(input);
    interp.run(source);
    std::vector<std::string> out;
    for (const auto value : interp.output()) {
      out.push_back(sexpr::print(arena, symbols, value));
    }
    return out;
  }

  std::vector<std::string> compilePlain(std::string_view source,
                                        std::string_view input) {
    vm::Compiler compiler(arena, symbols);
    const vm::Program program = compiler.compile(source);
    vm::Emulator emulator(arena, symbols);
    feed(emulator, input);
    emulator.run(program);
    std::vector<std::string> out;
    for (const auto value : emulator.output()) {
      out.push_back(sexpr::print(arena, symbols, value));
    }
    return out;
  }

  struct SmallRun {
    std::vector<std::string> output;
    core::SmallMachine::Stats stats;
  };

  SmallRun compileSmall(std::string_view source, std::string_view input,
                        heap::HeapBackendKind backend) {
    vm::Compiler compiler(arena, symbols);
    const vm::Program program = compiler.compile(source);
    vm::SmallEmulator::Options options;
    options.machine.heapBackend = backend;
    vm::SmallEmulator emulator(arena, symbols, options);
    feed(emulator, input);
    emulator.run(program);
    SmallRun run;
    run.output = emulator.output();
    run.stats = emulator.machine().stats();
    return run;
  }

  template <typename E>
  void feed(E& emulator, std::string_view input) {
    if (input.empty()) return;
    sexpr::Reader reader(arena, symbols);
    for (const auto form : reader.readAll(input)) {
      emulator.provideInput(form);
    }
  }
};

struct ProgramCase {
  const char* name;
  const char* source;
  const char* input;
};

// Programs restricted to the common subset of all three engines (no
// destructive update after a write, since the reference emulator's
// outputs are live).
const ProgramCase kBattery[] = {
    {"atoms", "(write 42) (write nil) (write t) (write (quote sym))", ""},
    {"listops",
     "(write (car (quote (a b)))) (write (cdr (quote (a b))))"
     "(write (cons 1 (quote (2))))",
     ""},
    {"predicates",
     "(write (atom (quote a))) (write (null nil)) "
     "(write (equal (quote (x (y))) (quote (x (y)))))"
     "(write (not 4))",
     ""},
    {"arith",
     "(write (+ 17 25)) (write (- 3 10)) (write (* 6 7)) (write (/ 29 3))"
     "(write (< 1 2)) (write (> 1 2)) (write (= 5 5))",
     ""},
    {"cond",
     "(write (cond (nil 1) (t 2))) (write (cond (nil 1)))"
     "(write (cond ((= 1 2) (quote a)) ((= 3 3) (quote b)) (t (quote c))))",
     ""},
    {"factorial",
     "(def fact (lambda (x) (cond ((= x 0) 1) (t (* x (fact (- x 1)))))))"
     "(write (fact 9))",
     ""},
    {"fib",
     "(def fib (lambda (n) (cond ((< n 2) n) "
     "(t (+ (fib (- n 1)) (fib (- n 2))))))) (write (fib 14))",
     ""},
    {"reverse",
     "(def rev (lambda (l acc) (cond ((null l) acc) "
     "(t (rev (cdr l) (cons (car l) acc))))))"
     "(write (rev (quote (1 2 3 4 5 6 7)) nil))",
     ""},
    {"append",
     "(def app (lambda (a b) (cond ((null a) b) "
     "(t (cons (car a) (app (cdr a) b))))))"
     "(write (app (quote (a b c)) (quote (d e))))",
     ""},
    {"length-via-read",
     "(def len (lambda (l) (cond ((null l) 0) (t (+ 1 (len (cdr l)))))))"
     "(prog (x) (setq x (read)) (write (len x)) (write x))",
     "(alpha beta gamma delta)"},
    {"prog-loop",
     "(prog (i acc) (setq i 0) (setq acc nil)"
     " loop (cond ((> i 5) (write acc) (return acc)))"
     " (setq acc (cons i acc)) (setq i (+ i 1)) (go loop))",
     ""},
    {"nested-calls",
     "(def twice (lambda (x) (+ x x)))"
     "(def quad (lambda (x) (twice (twice x))))"
     "(write (quad 11))",
     ""},
    {"mutual-recursion",
     "(def even-p (lambda (n) (cond ((= n 0) t) (t (odd-p (- n 1))))))"
     "(def odd-p (lambda (n) (cond ((= n 0) nil) (t (even-p (- n 1))))))"
     "(write (even-p 14)) (write (odd-p 14))",
     ""},
    {"structure-build",
     "(def pairs (lambda (n) (cond ((= n 0) nil) "
     "(t (cons (cons n (* n n)) (pairs (- n 1)))))))"
     "(write (pairs 5))",
     ""},
};

class Battery : public ::testing::TestWithParam<ProgramCase> {};

TEST_P(Battery, AllThreeEnginesAgree) {
  const ProgramCase& c = GetParam();
  Engines engines;
  const auto interpreted = engines.interpret(c.source, c.input);
  const auto plain = engines.compilePlain(c.source, c.input);
  const auto smallBacked = engines.compileSmall(
      c.source, c.input, heap::HeapBackendKind::kTwoPointer);

  ASSERT_EQ(interpreted.size(), plain.size());
  ASSERT_EQ(interpreted.size(), smallBacked.output.size());
  for (std::size_t i = 0; i < interpreted.size(); ++i) {
    EXPECT_EQ(interpreted[i], plain[i]) << c.name << " output " << i;
    EXPECT_EQ(interpreted[i], smallBacked.output[i])
        << c.name << " output " << i;
  }
}

// The same compiled program on every heap backend must print the same
// text AND report the same representation-independent machine counters:
// splits, hits, merges, gets/frees, cons/modify traffic all depend only
// on the logical structure, never on how the heap lays cells out.
TEST_P(Battery, AllHeapBackendsAgree) {
  const ProgramCase& c = GetParam();
  Engines engines;
  const auto reference = engines.compileSmall(
      c.source, c.input, heap::HeapBackendKind::kTwoPointer);

  for (const heap::HeapBackendKind kind :
       {heap::HeapBackendKind::kCdrCoded,
        heap::HeapBackendKind::kLinkedVector}) {
    const auto run = engines.compileSmall(c.source, c.input, kind);
    const char* backend = heap::heapBackendName(kind);
    ASSERT_EQ(reference.output.size(), run.output.size())
        << c.name << " on " << backend;
    for (std::size_t i = 0; i < run.output.size(); ++i) {
      EXPECT_EQ(reference.output[i], run.output[i])
          << c.name << " output " << i << " on " << backend;
    }
    EXPECT_EQ(reference.stats.gets, run.stats.gets) << backend;
    EXPECT_EQ(reference.stats.frees, run.stats.frees) << backend;
    EXPECT_EQ(reference.stats.splits, run.stats.splits) << backend;
    EXPECT_EQ(reference.stats.hits, run.stats.hits) << backend;
    EXPECT_EQ(reference.stats.merges, run.stats.merges) << backend;
    EXPECT_EQ(reference.stats.conses, run.stats.conses) << backend;
    EXPECT_EQ(reference.stats.modifies, run.stats.modifies) << backend;
    EXPECT_EQ(reference.stats.readLists, run.stats.readLists) << backend;
    EXPECT_EQ(reference.stats.refOps, run.stats.refOps) << backend;
    EXPECT_EQ(reference.stats.pseudoOverflows, run.stats.pseudoOverflows)
        << backend;
    EXPECT_EQ(reference.stats.peakEntriesInUse, run.stats.peakEntriesInUse)
        << backend;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Programs, Battery, ::testing::ValuesIn(kBattery),
    [](const ::testing::TestParamInfo<ProgramCase>& info) {
      std::string name = info.param.name;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace small
