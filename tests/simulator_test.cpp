// Tests for the trace-driven SMALL simulator (§5.2.1).
#include <gtest/gtest.h>

#include "small/simulator.hpp"
#include "support/rng.hpp"
#include "trace/preprocess.hpp"
#include "trace/synthetic.hpp"

namespace small::core {
namespace {

trace::PreprocessedTrace makeTrace(std::uint64_t seed, double scale = 0.1) {
  support::Rng rng(seed);
  return trace::preprocess(trace::generate(trace::slangProfile(scale), rng));
}

TEST(Simulator, RunsAndCountsPrimitives) {
  const auto pre = makeTrace(1);
  SimConfig config;
  const SimResult result = simulateTrace(config, pre);
  EXPECT_EQ(result.primitivesSimulated, pre.primitiveCount);
  EXPECT_GT(result.functionCalls, 0u);
}

TEST(Simulator, DeterministicForFixedSeed) {
  const auto pre = makeTrace(2);
  SimConfig config;
  config.seed = 77;
  const SimResult a = simulateTrace(config, pre);
  const SimResult b = simulateTrace(config, pre);
  EXPECT_EQ(a.lptHits, b.lptHits);
  EXPECT_EQ(a.lptMisses, b.lptMisses);
  EXPECT_EQ(a.peakOccupancy, b.peakOccupancy);
  EXPECT_EQ(a.lptStats.refOps, b.lptStats.refOps);
}

TEST(Simulator, DifferentSeedsGiveDifferentAccessPatterns) {
  const auto pre = makeTrace(3);
  SimConfig a;
  a.seed = 1;
  SimConfig b;
  b.seed = 2;
  const SimResult ra = simulateTrace(a, pre);
  const SimResult rb = simulateTrace(b, pre);
  // "By re-seeding the random generator and re-running a trace we simulate
  //  a totally different access pattern."
  EXPECT_NE(ra.lptStats.refOps, rb.lptStats.refOps);
}

TEST(Simulator, HighHitRateWithChainingHeavyTrace) {
  // Lyra-style chaining means most car/cdr requests hit cached edges.
  support::Rng rng(4);
  const auto pre =
      trace::preprocess(trace::generate(trace::lyraProfile(0.01), rng));
  SimConfig config;
  const SimResult result = simulateTrace(config, pre);
  EXPECT_GT(result.lptHitRate, 0.5);
}

TEST(Simulator, PeakOccupancyBoundedByTableSize) {
  const auto pre = makeTrace(5, 0.2);
  for (const std::uint32_t size : {32u, 64u, 128u, 4096u}) {
    SimConfig config;
    config.tableSize = size;
    const SimResult result = simulateTrace(config, pre);
    EXPECT_LE(result.peakOccupancy, size);
    EXPECT_LE(result.averageOccupancy, result.peakOccupancy);
  }
}

TEST(Simulator, KneeBehaviour) {
  // Fig 5.1: below the knee the peak equals the table size (overflows
  // occur); above it the peak saturates and overflows vanish.
  const auto pre = makeTrace(6, 0.3);
  SimConfig big;
  big.tableSize = 1 << 16;
  const SimResult unconstrained = simulateTrace(big, pre);
  EXPECT_FALSE(unconstrained.pseudoOverflowOccurred);
  const std::uint32_t knee = unconstrained.peakOccupancy;
  ASSERT_GT(knee, 8u);

  SimConfig tight;
  tight.tableSize = knee / 2;
  const SimResult constrained = simulateTrace(tight, pre);
  EXPECT_TRUE(constrained.pseudoOverflowOccurred ||
              constrained.trueOverflowOccurred);
  EXPECT_LE(constrained.peakOccupancy, tight.tableSize);
}

TEST(Simulator, CompressAllKeepsAverageOccupancyLower) {
  // Fig 5.3's comparison, as an ordering property.
  const auto pre = makeTrace(7, 0.3);
  SimConfig big;
  big.tableSize = 1 << 16;
  const std::uint32_t knee = simulateTrace(big, pre).peakOccupancy;

  SimConfig one;
  one.tableSize = std::max(knee / 2, 8u);
  one.compression = CompressionPolicy::kCompressOne;
  one.seed = 5;
  SimConfig all = one;
  all.compression = CompressionPolicy::kCompressAll;
  const SimResult resultOne = simulateTrace(one, pre);
  const SimResult resultAll = simulateTrace(all, pre);
  if (resultOne.lpStats.pseudoOverflows > 0) {
    // The thesis finds the two policies' average occupancies close, with
    // Compress-One riding somewhat higher; post-overflow trajectories
    // diverge stochastically, so assert closeness with a 5% band rather
    // than a strict ordering.
    EXPECT_LE(resultAll.averageOccupancy,
              resultOne.averageOccupancy * 1.05);
    // Compress-All must actually compress more per overflow event.
    if (resultAll.lpStats.pseudoOverflows > 0) {
      const double mergesPerOverflowOne =
          static_cast<double>(resultOne.lpStats.merges) /
          static_cast<double>(resultOne.lpStats.pseudoOverflows);
      const double mergesPerOverflowAll =
          static_cast<double>(resultAll.lpStats.merges) /
          static_cast<double>(resultAll.lpStats.pseudoOverflows);
      EXPECT_GE(mergesPerOverflowAll, mergesPerOverflowOne);
    }
  }
}

TEST(Simulator, LazyPolicyDoesFewerRefOpsThanRecursive) {
  // Table 5.2: RecRefops > Refops.
  const auto pre = makeTrace(8, 0.3);
  SimConfig lazy;
  lazy.reclaim = ReclaimPolicy::kLazy;
  SimConfig recursive;
  recursive.reclaim = ReclaimPolicy::kRecursive;
  const SimResult lazyResult = simulateTrace(lazy, pre);
  const SimResult recursiveResult = simulateTrace(recursive, pre);
  EXPECT_LE(lazyResult.lptStats.refOps, recursiveResult.lptStats.refOps);
}

TEST(Simulator, SplitRefCountsSlashLptTraffic) {
  // Table 5.3: near order-of-magnitude reduction in LPT refcount traffic.
  const auto pre = makeTrace(9, 0.3);
  SimConfig base;
  SimConfig split;
  split.splitRefCounts = true;
  const SimResult baseResult = simulateTrace(base, pre);
  const SimResult splitResult = simulateTrace(split, pre);
  const auto baseTraffic = baseResult.lptStats.refOps;
  const auto splitTraffic = splitResult.lptStats.refOps +
                            splitResult.lptStats.stackBitMessages;
  EXPECT_LT(splitTraffic, baseTraffic / 2);
}

TEST(Simulator, CacheComparisonProducesHitsAndMisses) {
  const auto pre = makeTrace(10, 0.3);
  SimConfig config;
  config.tableSize = 128;
  config.driveCache = true;
  const SimResult result = simulateTrace(config, pre);
  EXPECT_GT(result.cacheHits + result.cacheMisses, 0u);
  EXPECT_GT(result.cacheHitRate, 0.0);
  EXPECT_LT(result.cacheHitRate, 1.0);
}

TEST(Simulator, LptOutperformsUnitLineCache) {
  // Table 5.4's qualitative claim: at equal entry counts with unit lines,
  // LPT misses stay below cache misses.
  const auto pre = makeTrace(11, 0.5);
  SimConfig config;
  config.tableSize = 96;
  config.driveCache = true;
  config.seed = 3;
  const SimResult result = simulateTrace(config, pre);
  EXPECT_LT(result.lptMisses, result.cacheMisses);
}

TEST(Simulator, StatsAreInternallyConsistent) {
  const auto pre = makeTrace(12, 0.2);
  SimConfig config;
  const SimResult result = simulateTrace(config, pre);
  EXPECT_EQ(result.lptHits, result.lpStats.hits);
  EXPECT_EQ(result.lptMisses, result.lpStats.splits);
  EXPECT_GE(result.lptStats.gets,
            result.lpStats.splits * 2);  // each split allocates 2 entries
  EXPECT_GE(result.lptStats.refOps, result.lptStats.frees);
}

class ParamSweep : public ::testing::TestWithParam<double> {};

TEST_P(ParamSweep, SensitivityStaysSmall) {
  // Table 5.5: varying the probability parameters perturbs the measures
  // only modestly. We assert the hit counts stay within a loose band of
  // the control run.
  const auto pre = makeTrace(13, 0.3);
  SimConfig control;
  control.seed = 11;
  const SimResult controlResult = simulateTrace(control, pre);

  SimConfig varied = control;
  varied.argProb = GetParam();
  varied.locProb = std::max(0.0, 0.9 - GetParam());
  const SimResult variedResult = simulateTrace(varied, pre);

  const double controlHits = static_cast<double>(controlResult.lptHits);
  const double variedHits = static_cast<double>(variedResult.lptHits);
  EXPECT_NEAR(variedHits / controlHits, 1.0, 0.25);
}

INSTANTIATE_TEST_SUITE_P(ArgProbs, ParamSweep,
                         ::testing::Values(0.30, 0.45, 0.60, 0.75, 0.85));

TEST(Simulator, SurvivesTinyTables) {
  // Even a pathologically small LPT must complete the trace (degrading to
  // bypass mode), never corrupting state.
  const auto pre = makeTrace(14, 0.1);
  for (const std::uint32_t size : {4u, 8u, 16u}) {
    SimConfig config;
    config.tableSize = size;
    const SimResult result = simulateTrace(config, pre);
    EXPECT_EQ(result.primitivesSimulated, pre.primitiveCount);
  }
}

}  // namespace
}  // namespace small::core
