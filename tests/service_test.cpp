// Tests for the service-mode stack: the combining-queue protocol
// (multilisp/combining.hpp), the striped-lock ShardedLpt, and the
// end-to-end determinism contract of runService — the deterministic
// stats plane must be byte-identical at any concurrency and for both
// trace backings (in-memory preprocessed vs SMTR-mapped).
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "multilisp/combining.hpp"
#include "multilisp/service.hpp"
#include "obs/contrib.hpp"
#include "obs/registry.hpp"
#include "obs/sweep.hpp"
#include "small/sharded_lpt.hpp"
#include "support/error.hpp"
#include "support/rng.hpp"
#include "trace/binary.hpp"
#include "trace/io.hpp"
#include "trace/preprocess.hpp"
#include "trace/synthetic.hpp"

namespace small::multilisp {
namespace {

// --- splitRef / ShardWeightTable ---

TEST(Combining, SplitRefHalvesWeightLocally) {
  ShardRef ref{2, 7, 100};
  const ShardRef clone = splitRef(ref);
  EXPECT_EQ(clone.shard, 2u);
  EXPECT_EQ(clone.object, 7u);
  EXPECT_EQ(clone.weight + ref.weight, 100u);
  EXPECT_EQ(clone.weight, 50u);
  ShardRef exhausted{0, 1, 1};
  EXPECT_THROW(splitRef(exhausted), support::SimulationError);
}

TEST(Combining, BaseObjectDiesWhenWeightReturnsAndFreesItsEntry) {
  ShardWeightTable table(0);
  ShardRef ref = table.create(42);
  EXPECT_EQ(ref.weight, ShardWeightTable::kInitialWeight);
  EXPECT_TRUE(table.isLive(ref.object));
  ShardRef clone = splitRef(ref);

  std::vector<ShardRef> releases;
  std::vector<core::EntryId> freed;
  table.applyDecrement(ref.object, ref.weight, releases, freed);
  EXPECT_TRUE(table.isLive(ref.object)) << "half the weight is still out";
  EXPECT_TRUE(freed.empty());
  table.applyDecrement(clone.object, clone.weight, releases, freed);
  EXPECT_FALSE(table.isLive(ref.object));
  ASSERT_EQ(freed.size(), 1u);
  EXPECT_EQ(freed[0], 42u);
  EXPECT_TRUE(releases.empty()) << "base objects release no references";
  EXPECT_EQ(table.liveObjects(), 0u);
}

TEST(Combining, DyingIndirectionReleasesItsTargetReference) {
  ShardWeightTable home(1);
  ShardWeightTable remote(0);
  ShardRef base = remote.create(7);
  // Decay a split of the base reference down to weight 1.
  ShardRef decayed = splitRef(base);
  while (decayed.weight > 1) {
    ShardRef half = splitRef(decayed);
    std::vector<ShardRef> releases;
    std::vector<core::EntryId> freed;
    remote.applyDecrement(half.object, half.weight, releases, freed);
  }
  // The weight-1 escape: interpose an indirection in the HOME table.
  ShardRef indirection = home.indirect(decayed);
  EXPECT_EQ(indirection.shard, 1u);
  EXPECT_EQ(indirection.weight, ShardWeightTable::kInitialWeight);
  EXPECT_EQ(home.indirectionsCreated(), 1u);
  EXPECT_TRUE(remote.isLive(decayed.object))
      << "the indirection now holds the weight-1 reference";

  // Kill the indirection: it must hand back the absorbed reference.
  std::vector<ShardRef> releases;
  std::vector<core::EntryId> freed;
  home.applyDecrement(indirection.object, indirection.weight, releases,
                      freed);
  EXPECT_TRUE(freed.empty()) << "indirections pin no LPT entries";
  ASSERT_EQ(releases.size(), 1u);
  EXPECT_EQ(releases[0].shard, decayed.shard);
  EXPECT_EQ(releases[0].object, decayed.object);
  EXPECT_EQ(releases[0].weight, 1u);
  EXPECT_EQ(home.liveObjects(), 0u);

  // Returning the released weight (plus the rest) kills the base.
  remote.applyDecrement(releases[0].object, releases[0].weight, releases,
                        freed);
  std::vector<ShardRef> r2;
  std::vector<core::EntryId> f2;
  remote.applyDecrement(base.object, base.weight, r2, f2);
  EXPECT_EQ(remote.liveObjects(), 0u);
  ASSERT_EQ(f2.size(), 1u);
  EXPECT_EQ(f2[0], 7u);
}

TEST(Combining, DecrementUnderflowThrows) {
  ShardWeightTable table(0);
  ShardRef ref = table.create(1);
  std::vector<ShardRef> releases;
  std::vector<core::EntryId> freed;
  EXPECT_THROW(table.applyDecrement(ref.object,
                                    std::uint64_t{ref.weight} + 1,
                                    releases, freed),
               support::SimulationError);
}

// --- CombiningUpdateQueue ---

TEST(Combining, QueueCombinesSameTargetAndBatchesPerShard) {
  CombiningUpdateQueue queue(16);
  EXPECT_FALSE(queue.add({0, 5, 10}));
  EXPECT_FALSE(queue.add({0, 5, 20}));  // same (shard, object): combined
  EXPECT_FALSE(queue.add({0, 6, 1}));
  EXPECT_FALSE(queue.add({3, 5, 7}));   // same object id, other shard
  EXPECT_EQ(queue.pendingUpdates(), 3u);
  EXPECT_EQ(queue.stats().enqueued, 4u);
  EXPECT_EQ(queue.stats().combined, 1u);

  std::vector<std::pair<std::uint32_t, std::uint64_t>> applied;
  std::uint64_t shardMessages = 0;
  queue.flush(
      [&](std::uint32_t shard,
          const std::vector<std::pair<ObjectId, std::uint64_t>>& updates,
          std::vector<ShardRef>&) {
        ++shardMessages;
        for (const auto& [object, weight] : updates) {
          applied.emplace_back(shard, weight);
          (void)object;
        }
      },
      nullptr);
  EXPECT_EQ(queue.pendingUpdates(), 0u);
  EXPECT_EQ(shardMessages, 2u) << "one message per target shard";
  EXPECT_EQ(queue.stats().messages, 2u);
  EXPECT_EQ(queue.stats().flushes, 1u);
  ASSERT_EQ(applied.size(), 3u);
  EXPECT_EQ(applied[0], (std::pair<std::uint32_t, std::uint64_t>{0, 30}));
  EXPECT_EQ(applied[1], (std::pair<std::uint32_t, std::uint64_t>{0, 1}));
  EXPECT_EQ(applied[2], (std::pair<std::uint32_t, std::uint64_t>{3, 7}));
}

TEST(Combining, QueueSignalsFlushAtCapacityAndDrainsCascades) {
  CombiningUpdateQueue queue(2);
  EXPECT_FALSE(queue.add({0, 1, 1}));
  EXPECT_TRUE(queue.add({0, 2, 1})) << "capacity reached";
  // A release cascade: applying shard 0 releases a ref into shard 1,
  // which must be applied within the same flush call.
  std::vector<std::uint32_t> shardsApplied;
  queue.flush(
      [&](std::uint32_t shard,
          const std::vector<std::pair<ObjectId, std::uint64_t>>&,
          std::vector<ShardRef>& releases) {
        shardsApplied.push_back(shard);
        if (shard == 0) releases.push_back({1, 9, 4});
      },
      nullptr);
  EXPECT_EQ(queue.pendingUpdates(), 0u);
  ASSERT_EQ(shardsApplied.size(), 2u);
  EXPECT_EQ(shardsApplied[0], 0u);
  EXPECT_EQ(shardsApplied[1], 1u);
  EXPECT_THROW(queue.add({0, 1, 0}), support::SimulationError);
}

// --- ShardedLpt ---

TEST(ShardedLpt, GuardsIndependentShardsAndCountsAcquisitions) {
  core::ShardedLpt lpt(4, 64, core::ReclaimPolicy::kRecursive);
  EXPECT_EQ(lpt.shardCount(), 4u);
  EXPECT_EQ(lpt.homeShard(5), 1u);
  {
    core::ShardedLpt::Guard guard = lpt.lock(1);
    const core::EntryId entry = guard.lpt().allocate();
    ASSERT_NE(entry, core::kNoEntry);
    guard.lpt().incRef(entry);
    guard.lpt().decRef(entry);
  }
  EXPECT_EQ(lpt.acquisitions(1), 1u);
  EXPECT_EQ(lpt.acquisitions(0), 0u);
  EXPECT_EQ(lpt.quiescedShard(1).inUseCount(), 0u);
  EXPECT_THROW(core::ShardedLpt(0, 64, core::ReclaimPolicy::kRecursive),
               support::SimulationError);
}

// --- runService determinism ---

std::vector<trace::Trace> tenantRawTraces(int tenants) {
  std::vector<trace::Trace> raw;
  for (int t = 0; t < tenants; ++t) {
    support::Rng rng(90 + t);
    raw.push_back(trace::generate(trace::slangProfile(0.02), rng));
  }
  return raw;
}

/// The deterministic plane of a ServiceResult, rendered to comparable
/// bytes exactly the way bench/service_throughput does: per-session and
/// per-shard registries merged in id order.
std::string deterministicBytes(const ServiceResult& result) {
  obs::ShardSet shards(result.sessions.size() + result.shardLpt.size());
  for (std::size_t i = 0; i < result.sessions.size(); ++i) {
    obs::contributeServiceSession(*shards.registryAt(i),
                                  result.sessions[i]);
  }
  for (std::size_t s = 0; s < result.shardLpt.size(); ++s) {
    obs::contributeLptStats(
        *shards.registryAt(result.sessions.size() + s),
        result.shardLpt[s]);
  }
  obs::Registry merged;
  shards.mergeInto(merged);
  return merged.exportJsonLines();
}

TEST(Service, DeterministicPlaneIdenticalAtAnyConcurrency) {
  const int tenants = 6;
  const std::vector<trace::Trace> raw = tenantRawTraces(tenants);
  std::vector<trace::PreprocessedTrace> pre;
  for (const trace::Trace& trace : raw) {
    pre.push_back(trace::preprocess(trace));
  }
  std::vector<SessionSource> sources(static_cast<std::size_t>(tenants));
  for (int t = 0; t < tenants; ++t) {
    sources[static_cast<std::size_t>(t)].pre =
        &pre[static_cast<std::size_t>(t)];
  }
  ServiceConfig config;
  config.shardCount = 3;

  const ServiceResult serial = runService(config, sources, 1);
  EXPECT_EQ(serial.residualObjects, 0u) << "weight leaked";
  EXPECT_EQ(serial.residualEntries, 0u) << "LPT entries leaked";
  EXPECT_GT(serial.totalPrimitives, 0u);
  std::uint64_t published = 0;
  std::uint64_t indirections = 0;
  for (const SessionStats& s : serial.sessions) {
    published += s.published;
    indirections += s.indirections;
    EXPECT_GT(s.refDestroys, 0u);
    EXPECT_GT(s.queue.messages, 0u);
  }
  EXPECT_GT(published, 0u);
  EXPECT_GT(indirections, 0u)
      << "the churn must exercise the weight-1 indirection path";

  const std::string bytes = deterministicBytes(serial);
  for (const int concurrency : {2, 4, 8}) {
    const ServiceResult result = runService(config, sources, concurrency);
    EXPECT_EQ(result.residualObjects, 0u);
    EXPECT_EQ(result.residualEntries, 0u);
    EXPECT_EQ(deterministicBytes(result), bytes)
        << "deterministic plane diverged at concurrency " << concurrency;
  }
}

TEST(Service, MappedSourcesMatchPreprocessedSources) {
  const int tenants = 3;
  const std::vector<trace::Trace> raw = tenantRawTraces(tenants);
  std::vector<trace::PreprocessedTrace> pre;
  std::vector<trace::MappedTrace> mapped;
  std::vector<std::string> files;
  for (int t = 0; t < tenants; ++t) {
    const trace::Trace& trace = raw[static_cast<std::size_t>(t)];
    pre.push_back(trace::preprocess(trace));
    const std::string path = ::testing::TempDir() + "/small_service_" +
                             std::to_string(t) + ".smtr";
    trace::saveFile(trace, path, trace::FileFormat::kBinary);
    files.push_back(path);
    mapped.push_back(trace::MappedTrace::open(path));
  }
  std::vector<SessionSource> preSources(static_cast<std::size_t>(tenants));
  std::vector<SessionSource> mappedSources(
      static_cast<std::size_t>(tenants));
  for (int t = 0; t < tenants; ++t) {
    preSources[static_cast<std::size_t>(t)].pre =
        &pre[static_cast<std::size_t>(t)];
    mappedSources[static_cast<std::size_t>(t)].mapped =
        &mapped[static_cast<std::size_t>(t)];
  }
  ServiceConfig config;
  config.shardCount = 2;
  config.mappedBatch = 64;  // force many refill boundaries
  const ServiceResult viaPre = runService(config, preSources, 2);
  const ServiceResult viaMapped = runService(config, mappedSources, 2);
  EXPECT_EQ(deterministicBytes(viaPre), deterministicBytes(viaMapped));
  mapped.clear();
  for (const std::string& path : files) std::remove(path.c_str());
}

TEST(Service, RejectsEmptyAndSourcelessSessions) {
  ServiceConfig config;
  EXPECT_THROW(runService(config, {}, 1), support::SimulationError);
  std::vector<SessionSource> sources(1);  // neither pre nor mapped
  EXPECT_THROW(runService(config, sources, 1),
               support::SimulationError);
}

}  // namespace
}  // namespace small::multilisp
