// Tests for the List Processor: the primitive operations of §4.3.2.2,
// compression (Fig 4.8), overflow handling (§4.3.2.3), and the split
// reference-count optimization (§5.2.4).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "small/list_processor.hpp"

namespace small::core {
namespace {

SimConfig smallConfig(std::uint32_t tableSize) {
  SimConfig config;
  config.tableSize = tableSize;
  return config;
}

class LpTest : public ::testing::Test {
 protected:
  support::Rng rng{1234};
};

TEST_F(LpTest, ReadListAllocatesEntryWithShape) {
  SimConfig config = smallConfig(16);
  ListProcessor lp(config, rng);
  const EntryId id = lp.readList(std::nullopt, 5, 2);
  ASSERT_NE(id, kNoEntry);
  const LptEntry& entry = lp.lpt().entry(id);
  EXPECT_EQ(entry.n, 5u);
  EXPECT_EQ(entry.p, 2u);
  EXPECT_TRUE(entry.hasAddr);
  EXPECT_EQ(entry.refCount, 1u);  // the EP's binding
  EXPECT_EQ(lp.externalRefs(id), 1u);
}

TEST_F(LpTest, ReadListDereferencesPreviousBinding) {
  SimConfig config = smallConfig(16);
  ListProcessor lp(config, rng);
  const EntryId oldId = lp.readList(std::nullopt, 3, 0);
  const EntryId newId = lp.readList(oldId, 3, 0);
  EXPECT_NE(newId, kNoEntry);
  // The old binding was released; under the LIFO free stack (Fig 4.3) the
  // freshly freed entry is the very one reused for the new object.
  EXPECT_EQ(newId, oldId);
  EXPECT_EQ(lp.externalRefs(oldId), 1u);  // one reference: the new binding
  EXPECT_EQ(lp.lpt().inUseCount(), 1u);
}

TEST_F(LpTest, FirstCarSplitsSecondHits) {
  SimConfig config = smallConfig(16);
  ListProcessor lp(config, rng);
  const EntryId id = lp.readList(std::nullopt, 6, 1);
  const AccessResult first = lp.car(id);
  EXPECT_FALSE(first.lptHit);
  EXPECT_EQ(lp.stats().splits, 1u);
  const AccessResult second = lp.car(id);
  EXPECT_TRUE(second.lptHit);
  EXPECT_EQ(second.id, first.id);  // memoized edge
  EXPECT_EQ(lp.stats().hits, 1u);
}

TEST_F(LpTest, SplitCreatesBothChildren) {
  SimConfig config = smallConfig(16);
  ListProcessor lp(config, rng);
  const EntryId id = lp.readList(std::nullopt, 6, 1);
  lp.car(id);
  const LptEntry& parent = lp.lpt().entry(id);
  EXPECT_NE(parent.car, kNoEntry);
  EXPECT_NE(parent.cdr, kNoEntry);
  EXPECT_FALSE(parent.hasAddr);  // the heap cell was consumed
  // Fig 4.5: both children carry a reference from the parent's fields.
  EXPECT_GE(lp.lpt().entry(parent.car).refCount, 1u);
  EXPECT_EQ(lp.lpt().entry(parent.cdr).refCount, 1u);
}

TEST_F(LpTest, ConsNeedsNoHeapActivity) {
  SimConfig config = smallConfig(16);
  ListProcessor lp(config, rng);
  const EntryId x = lp.readList(std::nullopt, 2, 0);
  const EntryId y = lp.readList(std::nullopt, 3, 0);
  const std::uint64_t splitsBefore = lp.stats().splits;
  const EntryId z = lp.cons(x, y);
  ASSERT_NE(z, kNoEntry);
  EXPECT_EQ(lp.stats().splits, splitsBefore);  // §4.3.2.2.4: LPT only
  const LptEntry& entry = lp.lpt().entry(z);
  EXPECT_EQ(entry.car, x);
  EXPECT_EQ(entry.cdr, y);
  EXPECT_FALSE(entry.hasAddr);  // endo-structure, not in the heap
  EXPECT_EQ(entry.n, 2u + 3u);
  // x gained a reference from z's car field.
  EXPECT_EQ(lp.lpt().entry(x).refCount, 2u);
}

TEST_F(LpTest, RplacaRewiresFieldAndCounts) {
  SimConfig config = smallConfig(16);
  ListProcessor lp(config, rng);
  const EntryId target = lp.readList(std::nullopt, 4, 1);
  lp.car(target);  // force split so the field exists
  const EntryId oldCar = lp.lpt().entry(target).car;
  const std::uint32_t oldCarRefs = lp.lpt().entry(oldCar).refCount;
  const EntryId value = lp.readList(std::nullopt, 2, 0);
  lp.rplaca(target, value);
  EXPECT_EQ(lp.lpt().entry(target).car, value);
  EXPECT_EQ(lp.lpt().entry(value).refCount, 2u);  // binding + field
  // The displaced car lost the parent's reference.
  if (lp.lpt().entry(oldCar).inUse) {
    EXPECT_EQ(lp.lpt().entry(oldCar).refCount, oldCarRefs - 1);
  }
}

TEST_F(LpTest, RplacdOnUnsplitObjectSplitsFirst) {
  SimConfig config = smallConfig(16);
  ListProcessor lp(config, rng);
  const EntryId target = lp.readList(std::nullopt, 4, 0);
  const EntryId value = lp.readList(std::nullopt, 2, 0);
  lp.rplacd(target, value);
  EXPECT_EQ(lp.stats().splits, 1u);
  EXPECT_EQ(lp.lpt().entry(target).cdr, value);
}

TEST_F(LpTest, UnbindReleasesEntries) {
  SimConfig config = smallConfig(16);
  ListProcessor lp(config, rng);
  const EntryId id = lp.readList(std::nullopt, 3, 0);
  lp.unbind(id);
  EXPECT_FALSE(lp.lpt().entry(id).inUse);
}

TEST_F(LpTest, CopyProducesIndependentObject) {
  SimConfig config = smallConfig(16);
  ListProcessor lp(config, rng);
  const EntryId original = lp.readList(std::nullopt, 4, 1);
  const EntryId clone = lp.copy(original);
  ASSERT_NE(clone, kNoEntry);
  EXPECT_NE(clone, original);
  EXPECT_EQ(lp.lpt().entry(clone).n, 4u);
  EXPECT_NE(lp.lpt().entry(clone).addr, lp.lpt().entry(original).addr);
}

// --- compression (Fig 4.8) ---

TEST_F(LpTest, CompressMergesInternallyReferencedPair) {
  SimConfig config = smallConfig(16);
  ListProcessor lp(config, rng);
  const EntryId parent = lp.readList(std::nullopt, 6, 1);
  const AccessResult child = lp.car(parent);
  // Release the EP's reference to the car child; both children are now
  // referenced only from within the table.
  lp.unbind(child.id);
  const std::uint32_t inUseBefore = lp.lpt().inUseCount();
  const std::uint64_t merges = lp.compress(/*all=*/false);
  EXPECT_EQ(merges, 1u);
  EXPECT_EQ(lp.lpt().inUseCount(), inUseBefore - 2);
  const LptEntry& p = lp.lpt().entry(parent);
  EXPECT_EQ(p.car, kNoEntry);
  EXPECT_EQ(p.cdr, kNoEntry);
  EXPECT_TRUE(p.hasAddr);  // the merged heap object
}

TEST_F(LpTest, CompressSkipsExternallyReferencedChildren) {
  SimConfig config = smallConfig(16);
  ListProcessor lp(config, rng);
  const EntryId parent = lp.readList(std::nullopt, 6, 1);
  lp.car(parent);  // EP still holds the returned car child
  EXPECT_EQ(lp.compress(false), 0u);
}

TEST_F(LpTest, CompressAllReachesFixpoint) {
  SimConfig config = smallConfig(64);
  ListProcessor lp(config, rng);
  // Build a chain of splits: each cdr splits further.
  const EntryId root = lp.readList(std::nullopt, 12, 2);
  EntryId cursor = root;
  std::vector<EntryId> returned;
  for (int i = 0; i < 4; ++i) {
    const AccessResult next = lp.cdr(cursor);
    if (next.id == kNoEntry || next.isAtom) break;
    returned.push_back(next.id);
    cursor = next.id;
  }
  for (const EntryId id : returned) lp.unbind(id);
  lp.compress(/*all=*/true);
  // After full compression nothing is compressible.
  EXPECT_EQ(lp.compress(true), 0u);
}

// --- overflow (§4.3.2.3) ---

TEST_F(LpTest, PseudoOverflowCompressesAndContinues) {
  SimConfig config = smallConfig(4);
  config.compression = CompressionPolicy::kCompressOne;
  ListProcessor lp(config, rng);
  // parent + 2 children fill 3 of 4 entries; free the car child's EP ref
  // so the pair is compressible.
  const EntryId parent = lp.readList(std::nullopt, 6, 1);
  const AccessResult child = lp.car(parent);
  lp.unbind(child.id);
  // 4th entry, then a 5th forces a pseudo overflow.
  const EntryId extra = lp.readList(std::nullopt, 2, 0);
  ASSERT_NE(extra, kNoEntry);
  const EntryId afterOverflow = lp.readList(std::nullopt, 2, 0);
  EXPECT_NE(afterOverflow, kNoEntry);
  EXPECT_GE(lp.stats().pseudoOverflows, 1u);
  EXPECT_GE(lp.stats().merges, 1u);
}

TEST_F(LpTest, TrueOverflowEntersBypassModeAndRecovers) {
  SimConfig config = smallConfig(3);
  ListProcessor lp(config, rng);
  // Fill the table with externally held, uncompressible entries.
  const EntryId a = lp.readList(std::nullopt, 2, 0);
  const EntryId b = lp.readList(std::nullopt, 2, 0);
  const EntryId c = lp.readList(std::nullopt, 2, 0);
  ASSERT_NE(c, kNoEntry);
  // The next readlist cannot be satisfied: bypass mode.
  const EntryId large = lp.readList(std::nullopt, 2, 0);
  EXPECT_EQ(large, kNoEntry);
  EXPECT_TRUE(lp.inOverflowMode());
  EXPECT_GE(lp.stats().trueOverflows, 1u);
  // Releasing the large reference returns the LP to fast mode.
  lp.largeUnbind();
  EXPECT_FALSE(lp.inOverflowMode());
  // Space frees up again: fast-mode allocation succeeds.
  lp.unbind(a);
  lp.unbind(b);
  const EntryId fresh = lp.readList(std::nullopt, 2, 0);
  EXPECT_NE(fresh, kNoEntry);
}

TEST_F(LpTest, CycleRecoveryRescuesTrueOverflow) {
  SimConfig config = smallConfig(4);
  ListProcessor lp(config, rng);
  // Create a 2-cycle via cons + rplacd, then drop the EP references: the
  // cycle keeps the entries busy (counts never reach zero).
  const EntryId x = lp.readList(std::nullopt, 2, 0);
  const EntryId y = lp.cons(x, x);
  lp.rplacd(x, y);  // x.cdr = y closes the cycle
  EXPECT_EQ(lp.stats().splits, 1u);  // rplacd split x first
  lp.unbind(x);
  lp.unbind(y);
  // One table slot was freed when rplacd displaced x's split-off cdr
  // child; fill it, then force the overflow.
  const EntryId filler = lp.readList(std::nullopt, 2, 0);
  ASSERT_NE(filler, kNoEntry);
  // The 2-cycle plus x's split child occupy the rest of the table; a new
  // readlist triggers true overflow and cycle recovery reclaims them.
  const EntryId fresh = lp.readList(std::nullopt, 2, 0);
  EXPECT_NE(fresh, kNoEntry);
  EXPECT_GE(lp.stats().cycleRecoveries, 1u);
  EXPECT_GT(lp.stats().cycleEntriesReclaimed, 0u);
}

// --- split reference counts (§5.2.4, Table 5.3) ---

TEST_F(LpTest, SplitModeKeepsStackRefsOutOfLpt) {
  SimConfig config = smallConfig(16);
  config.splitRefCounts = true;
  ListProcessor lp(config, rng);
  const EntryId id = lp.readList(std::nullopt, 3, 0);
  ASSERT_NE(id, kNoEntry);
  const LptEntry& entry = lp.lpt().entry(id);
  EXPECT_EQ(entry.refCount, 0u);  // no internal references yet
  EXPECT_TRUE(entry.stackBit);
  EXPECT_EQ(lp.externalRefs(id), 1u);
  lp.unbind(id);
  EXPECT_FALSE(lp.lpt().entry(id).inUse);  // bit cleared, count 0 -> freed
}

TEST_F(LpTest, SplitModeReducesLptRefOps) {
  // Table 5.3's point: moving stack references into the EP slashes the
  // EP-LP reference-count traffic.
  auto runWorkload = [this](bool split) {
    SimConfig config = smallConfig(256);
    config.splitRefCounts = split;
    support::Rng localRng(7);
    ListProcessor lp(config, localRng);
    std::vector<EntryId> held;
    for (int i = 0; i < 50; ++i) {
      const EntryId id = lp.readList(std::nullopt, 6, 1);
      held.push_back(id);
      const AccessResult r = lp.car(id);
      if (r.id != kNoEntry) held.push_back(r.id);
    }
    for (const EntryId id : held) lp.unbind(id);
    return lp.lpt().stats().refOps + lp.lpt().stats().stackBitMessages;
  };
  EXPECT_LT(runWorkload(true), runWorkload(false));
  (void)rng;
}

TEST_F(LpTest, HybridPolicyEscalates) {
  SimConfig config = smallConfig(6);
  config.compression = CompressionPolicy::kHybrid;
  config.hybridThreshold = 2;
  config.hybridWindow = 1000;
  ListProcessor lp(config, rng);
  // Repeatedly create compressible structure and overflow.
  for (int i = 0; i < 6; ++i) {
    const EntryId parent = lp.readList(std::nullopt, 6, 1);
    if (parent == kNoEntry) break;
    const AccessResult child = lp.car(parent);
    if (child.id != kNoEntry) lp.unbind(child.id);
    lp.unbind(parent);
  }
  // No assertion beyond surviving with consistent stats: the escalation
  // path ran if pseudo overflows occurred.
  SUCCEED();
}

TEST_F(LpTest, ExternalRootsAreAscendingAndExact) {
  SimConfig config = smallConfig(64);
  ListProcessor lp(config, rng);
  // Create a handful of bindings, then drop some so the non-zero set's
  // internal (swap-remove) order is well scrambled.
  std::vector<EntryId> ids;
  for (int i = 0; i < 12; ++i) ids.push_back(lp.readList(std::nullopt, 1, 0));
  lp.unbind(ids[1]);
  lp.unbind(ids[4]);
  lp.unbind(ids[10]);
  lp.bind(ids[7]);  // a second reference must not duplicate the root
  const std::vector<EntryId> roots = lp.externalRoots();
  std::vector<EntryId> expected;
  for (int i = 0; i < 12; ++i) {
    if (i != 1 && i != 4 && i != 10) expected.push_back(ids[i]);
  }
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(roots, expected);
  EXPECT_TRUE(std::is_sorted(roots.begin(), roots.end()));
}

// Shared workload for the cross-table-size recovery regression: builds
// `cycles` unreachable two-entry cycles plus one live root, then runs
// cycle recovery directly.
struct RecoveryOutcome {
  std::uint64_t reclaimed = 0;
  std::uint64_t frees = 0;
  std::uint32_t inUseAfter = 0;
};

RecoveryOutcome runCyclicWorkload(std::uint32_t tableSize, support::Rng& rng) {
  SimConfig config;
  config.tableSize = tableSize;
  ListProcessor lp(config, rng);
  const EntryId keep = lp.readList(std::nullopt, 2, 1);
  for (int i = 0; i < 10; ++i) {
    const EntryId a = lp.readList(std::nullopt, 1, 0);
    const EntryId c = lp.cons(a, a);
    lp.rplaca(c, c);  // self-cycle through the car field
    lp.unbind(c);
    lp.unbind(a);     // {a, c} is now an unreachable cycle
  }
  RecoveryOutcome out;
  out.reclaimed = lp.lpt().recoverCycles(lp.externalRoots());
  out.frees = lp.lpt().stats().frees;
  out.inUseAfter = lp.lpt().inUseCount();
  EXPECT_TRUE(lp.lpt().entry(keep).inUse);  // the root must survive
  return out;
}

TEST_F(LpTest, RecoveryStatsArePinnedAcrossTableSizes) {
  // Before the dense-shadow rewrite, root order came from an unordered_map
  // walk, so it silently depended on table size and hashing. The recovery
  // outcome is now pinned: 10 two-entry cycles reclaimed, identical at
  // both sizes.
  support::Rng rngA{1234};
  support::Rng rngB{1234};
  const RecoveryOutcome small = runCyclicWorkload(64, rngA);
  const RecoveryOutcome large = runCyclicWorkload(512, rngB);
  EXPECT_EQ(small.reclaimed, 20u);
  EXPECT_EQ(large.reclaimed, 20u);
  EXPECT_EQ(small.frees, large.frees);
  EXPECT_EQ(small.inUseAfter, large.inUseAfter);
  EXPECT_EQ(small.inUseAfter, 1u);  // only the kept root remains
}

}  // namespace
}  // namespace small::core
