// Tests for the five workload programs: they must run correctly and
// produce traces with the access textures the thesis attributes to their
// originals.
#include <gtest/gtest.h>

#include "analysis/census.hpp"
#include "analysis/chaining.hpp"
#include "lisp/interpreter.hpp"
#include "trace/preprocess.hpp"
#include "workloads/driver.hpp"

namespace small::workloads {
namespace {

using trace::Primitive;

class WorkloadRun : public ::testing::TestWithParam<Workload> {};

TEST_P(WorkloadRun, ProducesNonTrivialBalancedTrace) {
  const trace::Trace t = runWorkload(GetParam());
  EXPECT_GT(t.primitiveLength(), 500u);
  // Function enters/exits balance.
  std::int64_t depth = 0;
  for (const trace::Event& event : t.events()) {
    if (event.kind == trace::EventKind::kFunctionEnter) ++depth;
    if (event.kind == trace::EventKind::kFunctionExit) --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  const trace::TraceContent content = t.content();
  EXPECT_GT(content.functionCalls, 10u);
  EXPECT_GT(content.maxCallDepth, 2u);
}

TEST_P(WorkloadRun, ScaleGrowsTheTrace) {
  RunOptions smallRun;
  smallRun.scale = 1;
  RunOptions bigRun;
  bigRun.scale = 2;
  const auto a = runWorkload(GetParam(), smallRun);
  const auto b = runWorkload(GetParam(), bigRun);
  EXPECT_GT(b.primitiveLength(), a.primitiveLength());
}

TEST_P(WorkloadRun, FractionalScaleShrinksTheTrace) {
  // Sub-1.0 scales used to truncate to 1 on the workload path while the
  // synthetic generator honored them; both sources must now agree that a
  // half-scale run is a shorter run. Editor's driver count is already 1
  // at full scale, so it is the one workload that legitimately can't
  // shrink further.
  if (GetParam() == Workload::kEditor) GTEST_SKIP();
  RunOptions half;
  half.scale = 0.5;
  RunOptions full;
  full.scale = 1.0;
  const auto a = runWorkload(GetParam(), half);
  const auto b = runWorkload(GetParam(), full);
  EXPECT_LT(a.primitiveLength(), b.primitiveLength());
}

INSTANTIATE_TEST_SUITE_P(
    All, WorkloadRun, ::testing::ValuesIn(kAllWorkloads),
    [](const ::testing::TestParamInfo<Workload>& info) {
      return workloadName(info.param);
    });

TEST(WorkloadTextures, SlangIsConsHeavy) {
  // Fig 3.1: Slang has the highest cons fraction of the suite.
  const auto slang = analysis::censusPrimitives(runWorkload(Workload::kSlang));
  const auto lyra = analysis::censusPrimitives(runWorkload(Workload::kLyra));
  EXPECT_GT(slang.fraction(Primitive::kCons),
            lyra.fraction(Primitive::kCons));
}

TEST(WorkloadTextures, PearlIsRplacHeavy) {
  // Fig 3.1: Pearl has a far higher rplaca/rplacd share than the others.
  const auto pearl = analysis::censusPrimitives(runWorkload(Workload::kPearl));
  const auto editor =
      analysis::censusPrimitives(runWorkload(Workload::kEditor));
  const double pearlRplac = pearl.fraction(Primitive::kRplaca) +
                            pearl.fraction(Primitive::kRplacd);
  const double editorRplac = editor.fraction(Primitive::kRplaca) +
                             editor.fraction(Primitive::kRplacd);
  EXPECT_GT(pearlRplac, editorRplac);
  EXPECT_GT(pearlRplac, 0.02);
}

TEST(WorkloadTextures, AccessPrimitivesDominateEverywhere) {
  // In every workload, car+cdr+cons should cover the bulk of the traced
  // primitives, as in Clark's programs and Fig 3.1.
  for (const Workload w : kAllWorkloads) {
    const auto census = analysis::censusPrimitives(runWorkload(w));
    const double core = census.fraction(Primitive::kCar) +
                        census.fraction(Primitive::kCdr) +
                        census.fraction(Primitive::kCons);
    EXPECT_GT(core, 0.5) << workloadName(w);
  }
}

TEST(WorkloadTextures, PrimitiveChainingIsCommon) {
  // Table 3.2: chaining is significant in list-structured programs. (The
  // paper's Pearl barely chained because its data lived in direct-access
  // Franz *hunks*; the thesis notes that "a single hunk access would have
  // been a sequence of chained access function calls on a Lisp
  // implementation that did not support the hunk data structure" — ours
  // doesn't, so our Pearl legitimately chains, and the near-zero Pearl
  // row is reproduced by the calibrated synthetic trace instead.)
  for (const Workload w :
       {Workload::kSlang, Workload::kLyra, Workload::kEditor}) {
    const auto pre = trace::preprocess(runWorkload(w));
    const auto chain = analysis::analyzeChaining(pre);
    const double car = chain.chainedFraction(Primitive::kCar);
    const double cdr = chain.chainedFraction(Primitive::kCdr);
    EXPECT_GT(car + cdr, 0.25) << workloadName(w);
  }
}

TEST(WorkloadPrograms, OutputsAreCorrect) {
  // The workloads are real programs; spot-check their computed answers by
  // re-running without a tracer and checking the (write ...) results.
  // Slang writes the number of simulated vectors, Pearl its record count.
  sexpr::SymbolTable symbols;
  sexpr::Arena arena;
  lisp::Interpreter interp(arena, symbols);
  interp.run(preludeSource());
  interp.run(programSource(Workload::kPearl));
  interp.run(driverSource(Workload::kPearl, 1));
  ASSERT_FALSE(interp.output().empty());
  EXPECT_EQ(arena.integerValue(interp.output().back()), 8);  // 8 records
}

TEST(WorkloadPrograms, SlangDecoderIsFunctionallyCorrect) {
  // Drive the decoder directly: input 7 (0111) must assert o7 only.
  sexpr::SymbolTable symbols;
  sexpr::Arena arena;
  lisp::Interpreter interp(arena, symbols);
  interp.run(preludeSource());
  interp.run(programSource(Workload::kSlang));
  interp.run("(write (cadr (assq 'o7 (sim-gates decoder (bits4 7)))))");
  interp.run("(write (cadr (assq 'o3 (sim-gates decoder (bits4 7)))))");
  ASSERT_EQ(interp.output().size(), 2u);
  EXPECT_EQ(arena.integerValue(interp.output()[0]), 1);
  EXPECT_EQ(arena.integerValue(interp.output()[1]), 0);
}

TEST(WorkloadPrograms, LyraFindsPlantedViolation) {
  sexpr::SymbolTable symbols;
  sexpr::Arena arena;
  lisp::Interpreter interp(arena, symbols);
  interp.run(preludeSource());
  interp.run(programSource(Workload::kLyra));
  // Two overlapping metal rectangles: one spacing violation; the thin one
  // is also a width violation.
  interp.run(R"(
    (write (len (check-rects
      (quote ((metal 0 0 4 4) (metal 1 1 5 5) (metal 20 20 20 24)))
      nil))))");
  ASSERT_FALSE(interp.output().empty());
  EXPECT_EQ(arena.integerValue(interp.output().back()), 2);
}

}  // namespace
}  // namespace small::workloads
