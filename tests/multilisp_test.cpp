// Tests for the Chapter 6 Multilisp extension: reference weighting,
// combining queues, the node system, and futures/pcall.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "multilisp/distributed.hpp"
#include "multilisp/futures.hpp"
#include "multilisp/nodes.hpp"
#include "multilisp/ref_weight.hpp"
#include "sexpr/reader.hpp"
#include "support/rng.hpp"

namespace small::multilisp {
namespace {

TEST(WeightedRefs, CreateAndDestroy) {
  WeightedObjectTable table;
  WeightedRef ref = table.create();
  EXPECT_TRUE(table.isLive(ref.object));
  EXPECT_EQ(table.storedWeight(ref.object),
            WeightedObjectTable::kInitialWeight);
  table.destroy(ref);
  EXPECT_FALSE(table.isLive(ref.object));
  EXPECT_EQ(table.liveObjects(), 0u);
}

TEST(WeightedRefs, CopySplitsWeightWithoutMessages) {
  WeightedObjectTable table;
  WeightedRef a = table.create();
  const WeightedRef b = table.copy(a);
  EXPECT_EQ(a.object, b.object);
  EXPECT_EQ(a.weight + b.weight, WeightedObjectTable::kInitialWeight);
  EXPECT_EQ(table.stats().copyMessages, 0u);
  EXPECT_EQ(table.stats().deleteMessages, 0u);
}

TEST(WeightedRefs, WeightInvariantHolds) {
  // Sum of carried weights == stored weight, across a random copy/destroy
  // workload (the scheme's correctness invariant).
  WeightedObjectTable table;
  support::Rng rng(41);
  std::vector<WeightedRef> refs{table.create()};
  const ObjectId target = refs[0].object;
  for (int step = 0; step < 3000; ++step) {
    if ((rng.chance(0.6) || refs.size() < 2) && !refs.empty()) {
      const std::size_t i = rng.below(refs.size());
      refs.push_back(table.copy(refs[i]));
    } else if (!refs.empty()) {
      const std::size_t i = rng.below(refs.size());
      table.destroy(refs[i]);
      refs[i] = refs.back();
      refs.pop_back();
    }
  }
  // Account all weights reaching `target`, directly or via indirections.
  // Destroy everything; the object must die exactly at the end.
  EXPECT_TRUE(table.isLive(target));
  for (const WeightedRef& ref : refs) table.destroy(ref);
  EXPECT_FALSE(table.isLive(target));
  EXPECT_EQ(table.liveObjects(), 0u);
}

TEST(WeightedRefs, ExhaustedWeightGoesThroughIndirection) {
  WeightedObjectTable table;
  WeightedRef ref = table.create();
  // Halve until the carried weight reaches 1.
  while (ref.weight > 1) {
    const WeightedRef clone = table.copy(ref);
    table.destroy(clone);
  }
  EXPECT_EQ(ref.weight, 1u);
  const WeightedRef viaIndirection = table.copy(ref);
  EXPECT_TRUE(viaIndirection.throughIndirection);
  EXPECT_EQ(table.stats().indirectionsCreated, 1u);
  // Both references still keep the target alive and release it fully.
  const ObjectId root = 0;
  table.destroy(viaIndirection);
  EXPECT_TRUE(table.isLive(root));
  table.destroy(ref);
  EXPECT_FALSE(table.isLive(root));
}

TEST(WeightedRefs, DoubleDestroyThrows) {
  WeightedObjectTable table;
  const WeightedRef ref = table.create();
  table.destroy(ref);
  EXPECT_THROW(table.destroy(ref), support::SimulationError);
}

TEST(CombiningQueue, CombinesUpdatesToSameObject) {
  CombiningQueue queue(16);
  EXPECT_FALSE(queue.add({1, 7, 10}));
  EXPECT_TRUE(queue.add({1, 7, 5}));   // combines
  EXPECT_FALSE(queue.add({1, 8, 1}));  // different object
  EXPECT_EQ(queue.pendingCount(), 2u);
  EXPECT_EQ(queue.combinedCount(), 1u);

  std::uint64_t total = 0;
  std::uint64_t messages = 0;
  queue.flush([&](const WeightUpdate& update) {
    ++messages;
    if (update.object == 7) total = update.weight;
  });
  EXPECT_EQ(messages, 2u);
  EXPECT_EQ(total, 15u);  // 10 + 5 combined
  EXPECT_EQ(queue.pendingCount(), 0u);
}

TEST(NodeSystem, WeightingBeatsPlainCounting) {
  // Ch. 6's claim: weighting eliminates copy messages; combining queues
  // reduce the remaining decrement traffic further.
  support::Rng rng(43);
  NodeSystem::Params params;
  params.nodeCount = 4;
  NodeSystem system(params, rng);
  const TrafficReport report = system.run(20000);
  EXPECT_GT(report.referenceEvents, 0u);
  EXPECT_LT(report.weightedMessages, report.plainMessages);
  EXPECT_LE(report.combinedMessages, report.weightedMessages);
}

TEST(NodeSystem, SingleNodeSendsNoRemoteMessages) {
  support::Rng rng(47);
  NodeSystem::Params params;
  params.nodeCount = 1;
  NodeSystem system(params, rng);
  const TrafficReport report = system.run(5000);
  EXPECT_EQ(report.plainMessages, 0u);
  EXPECT_EQ(report.weightedMessages, 0u);
}

// --- the distributed SMALL memory system (Figs 6.4/6.5) ---

TEST(DistributedSmall, ExportShipCopyDropLifecycle) {
  DistributedSmall system;
  sexpr::Reader reader(system.arena(), system.symbols());
  auto& owner = system.node(0);
  const auto local =
      owner.readList(system.arena(), reader.readOne("(shared data)"));
  const auto root = system.exportObject(0, local);
  EXPECT_TRUE(system.exportLive(0, root.exportId));
  EXPECT_EQ(owner.entriesInUse(), 1u);

  // Ship to node 1, copy twice there (no messages), then drop all three.
  auto onNode1 = system.ship(root);
  auto copy1 = system.copyRef(onNode1);
  auto copy2 = system.copyRef(onNode1);
  EXPECT_EQ(system.traffic().copyMessages, 0u);
  EXPECT_EQ(onNode1.weight + copy1.weight + copy2.weight,
            DistributedSmall::kInitialWeight);

  system.dropRef(1, copy1);
  system.dropRef(1, copy2);
  system.flushAll();
  EXPECT_TRUE(system.exportLive(0, root.exportId));  // one handle left
  system.dropRef(1, onNode1);
  system.flushAll();
  // The last weight returned: the owner's machine reclaimed the object.
  EXPECT_FALSE(system.exportLive(0, root.exportId));
  EXPECT_EQ(owner.entriesInUse(), 0u);
}

TEST(DistributedSmall, CombiningQueueMergesDropsToSameExport) {
  DistributedSmall::Params params;
  params.queueCapacity = 64;
  DistributedSmall system(params);
  sexpr::Reader reader(system.arena(), system.symbols());
  const auto local =
      system.node(0).readList(system.arena(), reader.readOne("(x)"));
  auto root = system.exportObject(0, local);
  std::vector<DistributedSmall::RemoteRef> handles;
  for (int i = 0; i < 8; ++i) handles.push_back(system.copyRef(root));
  for (const auto& h : handles) system.dropRef(1, h);
  system.flushAll();
  // Eight enqueued decrements combined into one message.
  EXPECT_EQ(system.traffic().decrementsEnqueued, 8u);
  EXPECT_EQ(system.traffic().decrementMessages, 1u);
  EXPECT_TRUE(system.exportLive(0, root.exportId));  // root's weight lives
}

TEST(DistributedSmall, FetchMaterializesALocalCopy) {
  DistributedSmall system;
  sexpr::Reader reader(system.arena(), system.symbols());
  const auto source = reader.readOne("(deep (remote (structure)) 42)");
  const auto local = system.node(2).readList(system.arena(), source);
  const auto handle = system.exportObject(2, local);

  const auto fetched = system.fetch(0, handle);
  EXPECT_EQ(system.traffic().fetchMessages, 2u);  // request + reply
  EXPECT_TRUE(system.arena().equal(
      system.node(0).writeList(system.arena(), fetched), source));
  // The copy is fully local: accessing it costs the remote node nothing.
  const auto beforeSplits = system.node(2).stats().splits;
  auto value = system.node(0).car(fetched);
  EXPECT_EQ(system.node(2).stats().splits, beforeSplits);
  system.node(0).release(value);
  system.node(0).release(fetched);
}

TEST(DistributedSmall, ExhaustedHandleWeightThrows) {
  DistributedSmall system;
  sexpr::Reader reader(system.arena(), system.symbols());
  const auto local =
      system.node(0).readList(system.arena(), reader.readOne("(y)"));
  auto handle = system.exportObject(0, local);
  handle.weight = 1;
  EXPECT_THROW(system.copyRef(handle), support::SimulationError);
}

// --- futures / pcall ---

TEST(TaskPool, ExecutesSubmittedTasks) {
  TaskPool pool(2);
  auto f = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(f.get(), 42);
}

TEST(TaskPool, RunsManyTasks) {
  TaskPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 200);
  EXPECT_GE(pool.tasksExecuted(), 200u);
}

TEST(Future, TouchBlocksUntilDetermined) {
  TaskPool pool(2);
  Future<int> future(pool, [] { return 7; });
  EXPECT_EQ(future.touch(), 7);
}

TEST(Pcall, ParallelArgumentEvaluationMatchesSequential) {
  TaskPool pool(3);
  std::vector<std::function<long()>> thunks;
  for (long i = 1; i <= 20; ++i) {
    thunks.push_back([i] {
      long acc = 0;
      for (long k = 0; k <= i * 1000; ++k) acc += k;
      return acc;
    });
  }
  const long parallel = pcall(
      pool,
      [](std::vector<long> args) {
        return std::accumulate(args.begin(), args.end(), 0L);
      },
      thunks);
  long sequential = 0;
  for (const auto& thunk : thunks) sequential += thunk();
  EXPECT_EQ(parallel, sequential);
}

TEST(Pcall, PreservesArgumentOrder) {
  // Parallel evaluation must be consistent with left-to-right sequential
  // semantics (§6.2.1.1) — results arrive in argument order.
  TaskPool pool(4);
  std::vector<std::function<int()>> thunks;
  for (int i = 0; i < 16; ++i) {
    thunks.push_back([i] { return i; });
  }
  const bool ordered = pcall(
      pool,
      [](std::vector<int> args) {
        for (int i = 0; i < static_cast<int>(args.size()); ++i) {
          if (args[static_cast<std::size_t>(i)] != i) return false;
        }
        return true;
      },
      thunks);
  EXPECT_TRUE(ordered);
}

}  // namespace
}  // namespace small::multilisp
