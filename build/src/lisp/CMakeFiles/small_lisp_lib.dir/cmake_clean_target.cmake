file(REMOVE_RECURSE
  "libsmall_lisp_lib.a"
)
