# Empty compiler generated dependencies file for small_lisp_lib.
# This may be replaced when dependencies are built.
