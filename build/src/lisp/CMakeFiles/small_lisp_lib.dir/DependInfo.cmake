
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lisp/env.cpp" "src/lisp/CMakeFiles/small_lisp_lib.dir/env.cpp.o" "gcc" "src/lisp/CMakeFiles/small_lisp_lib.dir/env.cpp.o.d"
  "/root/repo/src/lisp/interpreter.cpp" "src/lisp/CMakeFiles/small_lisp_lib.dir/interpreter.cpp.o" "gcc" "src/lisp/CMakeFiles/small_lisp_lib.dir/interpreter.cpp.o.d"
  "/root/repo/src/lisp/tracer.cpp" "src/lisp/CMakeFiles/small_lisp_lib.dir/tracer.cpp.o" "gcc" "src/lisp/CMakeFiles/small_lisp_lib.dir/tracer.cpp.o.d"
  "/root/repo/src/lisp/value_cache.cpp" "src/lisp/CMakeFiles/small_lisp_lib.dir/value_cache.cpp.o" "gcc" "src/lisp/CMakeFiles/small_lisp_lib.dir/value_cache.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/small_support.dir/DependInfo.cmake"
  "/root/repo/build/src/sexpr/CMakeFiles/small_sexpr.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/small_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
