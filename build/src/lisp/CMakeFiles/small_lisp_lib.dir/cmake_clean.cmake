file(REMOVE_RECURSE
  "CMakeFiles/small_lisp_lib.dir/env.cpp.o"
  "CMakeFiles/small_lisp_lib.dir/env.cpp.o.d"
  "CMakeFiles/small_lisp_lib.dir/interpreter.cpp.o"
  "CMakeFiles/small_lisp_lib.dir/interpreter.cpp.o.d"
  "CMakeFiles/small_lisp_lib.dir/tracer.cpp.o"
  "CMakeFiles/small_lisp_lib.dir/tracer.cpp.o.d"
  "CMakeFiles/small_lisp_lib.dir/value_cache.cpp.o"
  "CMakeFiles/small_lisp_lib.dir/value_cache.cpp.o.d"
  "libsmall_lisp_lib.a"
  "libsmall_lisp_lib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/small_lisp_lib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
