file(REMOVE_RECURSE
  "libsmall_multilisp.a"
)
