# Empty dependencies file for small_multilisp.
# This may be replaced when dependencies are built.
