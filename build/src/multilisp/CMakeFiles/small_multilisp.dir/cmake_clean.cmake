file(REMOVE_RECURSE
  "CMakeFiles/small_multilisp.dir/distributed.cpp.o"
  "CMakeFiles/small_multilisp.dir/distributed.cpp.o.d"
  "CMakeFiles/small_multilisp.dir/futures.cpp.o"
  "CMakeFiles/small_multilisp.dir/futures.cpp.o.d"
  "CMakeFiles/small_multilisp.dir/nodes.cpp.o"
  "CMakeFiles/small_multilisp.dir/nodes.cpp.o.d"
  "CMakeFiles/small_multilisp.dir/ref_weight.cpp.o"
  "CMakeFiles/small_multilisp.dir/ref_weight.cpp.o.d"
  "libsmall_multilisp.a"
  "libsmall_multilisp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/small_multilisp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
