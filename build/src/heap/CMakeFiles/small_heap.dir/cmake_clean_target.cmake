file(REMOVE_RECURSE
  "libsmall_heap.a"
)
