
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/heap/address_model.cpp" "src/heap/CMakeFiles/small_heap.dir/address_model.cpp.o" "gcc" "src/heap/CMakeFiles/small_heap.dir/address_model.cpp.o.d"
  "/root/repo/src/heap/cdar_coded.cpp" "src/heap/CMakeFiles/small_heap.dir/cdar_coded.cpp.o" "gcc" "src/heap/CMakeFiles/small_heap.dir/cdar_coded.cpp.o.d"
  "/root/repo/src/heap/cdr_coded.cpp" "src/heap/CMakeFiles/small_heap.dir/cdr_coded.cpp.o" "gcc" "src/heap/CMakeFiles/small_heap.dir/cdr_coded.cpp.o.d"
  "/root/repo/src/heap/conc.cpp" "src/heap/CMakeFiles/small_heap.dir/conc.cpp.o" "gcc" "src/heap/CMakeFiles/small_heap.dir/conc.cpp.o.d"
  "/root/repo/src/heap/linearization.cpp" "src/heap/CMakeFiles/small_heap.dir/linearization.cpp.o" "gcc" "src/heap/CMakeFiles/small_heap.dir/linearization.cpp.o.d"
  "/root/repo/src/heap/linked_vector.cpp" "src/heap/CMakeFiles/small_heap.dir/linked_vector.cpp.o" "gcc" "src/heap/CMakeFiles/small_heap.dir/linked_vector.cpp.o.d"
  "/root/repo/src/heap/two_pointer.cpp" "src/heap/CMakeFiles/small_heap.dir/two_pointer.cpp.o" "gcc" "src/heap/CMakeFiles/small_heap.dir/two_pointer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/small_support.dir/DependInfo.cmake"
  "/root/repo/build/src/sexpr/CMakeFiles/small_sexpr.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
