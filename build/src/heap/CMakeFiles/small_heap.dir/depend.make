# Empty dependencies file for small_heap.
# This may be replaced when dependencies are built.
