file(REMOVE_RECURSE
  "CMakeFiles/small_heap.dir/address_model.cpp.o"
  "CMakeFiles/small_heap.dir/address_model.cpp.o.d"
  "CMakeFiles/small_heap.dir/cdar_coded.cpp.o"
  "CMakeFiles/small_heap.dir/cdar_coded.cpp.o.d"
  "CMakeFiles/small_heap.dir/cdr_coded.cpp.o"
  "CMakeFiles/small_heap.dir/cdr_coded.cpp.o.d"
  "CMakeFiles/small_heap.dir/conc.cpp.o"
  "CMakeFiles/small_heap.dir/conc.cpp.o.d"
  "CMakeFiles/small_heap.dir/linearization.cpp.o"
  "CMakeFiles/small_heap.dir/linearization.cpp.o.d"
  "CMakeFiles/small_heap.dir/linked_vector.cpp.o"
  "CMakeFiles/small_heap.dir/linked_vector.cpp.o.d"
  "CMakeFiles/small_heap.dir/two_pointer.cpp.o"
  "CMakeFiles/small_heap.dir/two_pointer.cpp.o.d"
  "libsmall_heap.a"
  "libsmall_heap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/small_heap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
