
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sexpr/arena.cpp" "src/sexpr/CMakeFiles/small_sexpr.dir/arena.cpp.o" "gcc" "src/sexpr/CMakeFiles/small_sexpr.dir/arena.cpp.o.d"
  "/root/repo/src/sexpr/metrics.cpp" "src/sexpr/CMakeFiles/small_sexpr.dir/metrics.cpp.o" "gcc" "src/sexpr/CMakeFiles/small_sexpr.dir/metrics.cpp.o.d"
  "/root/repo/src/sexpr/printer.cpp" "src/sexpr/CMakeFiles/small_sexpr.dir/printer.cpp.o" "gcc" "src/sexpr/CMakeFiles/small_sexpr.dir/printer.cpp.o.d"
  "/root/repo/src/sexpr/reader.cpp" "src/sexpr/CMakeFiles/small_sexpr.dir/reader.cpp.o" "gcc" "src/sexpr/CMakeFiles/small_sexpr.dir/reader.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/small_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
