# Empty dependencies file for small_sexpr.
# This may be replaced when dependencies are built.
