file(REMOVE_RECURSE
  "CMakeFiles/small_sexpr.dir/arena.cpp.o"
  "CMakeFiles/small_sexpr.dir/arena.cpp.o.d"
  "CMakeFiles/small_sexpr.dir/metrics.cpp.o"
  "CMakeFiles/small_sexpr.dir/metrics.cpp.o.d"
  "CMakeFiles/small_sexpr.dir/printer.cpp.o"
  "CMakeFiles/small_sexpr.dir/printer.cpp.o.d"
  "CMakeFiles/small_sexpr.dir/reader.cpp.o"
  "CMakeFiles/small_sexpr.dir/reader.cpp.o.d"
  "libsmall_sexpr.a"
  "libsmall_sexpr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/small_sexpr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
