file(REMOVE_RECURSE
  "libsmall_sexpr.a"
)
