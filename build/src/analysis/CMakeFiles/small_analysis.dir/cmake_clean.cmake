file(REMOVE_RECURSE
  "CMakeFiles/small_analysis.dir/census.cpp.o"
  "CMakeFiles/small_analysis.dir/census.cpp.o.d"
  "CMakeFiles/small_analysis.dir/chaining.cpp.o"
  "CMakeFiles/small_analysis.dir/chaining.cpp.o.d"
  "CMakeFiles/small_analysis.dir/list_sets.cpp.o"
  "CMakeFiles/small_analysis.dir/list_sets.cpp.o.d"
  "CMakeFiles/small_analysis.dir/lru.cpp.o"
  "CMakeFiles/small_analysis.dir/lru.cpp.o.d"
  "libsmall_analysis.a"
  "libsmall_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/small_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
