file(REMOVE_RECURSE
  "libsmall_analysis.a"
)
