# Empty compiler generated dependencies file for small_analysis.
# This may be replaced when dependencies are built.
