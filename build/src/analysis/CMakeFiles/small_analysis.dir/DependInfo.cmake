
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/census.cpp" "src/analysis/CMakeFiles/small_analysis.dir/census.cpp.o" "gcc" "src/analysis/CMakeFiles/small_analysis.dir/census.cpp.o.d"
  "/root/repo/src/analysis/chaining.cpp" "src/analysis/CMakeFiles/small_analysis.dir/chaining.cpp.o" "gcc" "src/analysis/CMakeFiles/small_analysis.dir/chaining.cpp.o.d"
  "/root/repo/src/analysis/list_sets.cpp" "src/analysis/CMakeFiles/small_analysis.dir/list_sets.cpp.o" "gcc" "src/analysis/CMakeFiles/small_analysis.dir/list_sets.cpp.o.d"
  "/root/repo/src/analysis/lru.cpp" "src/analysis/CMakeFiles/small_analysis.dir/lru.cpp.o" "gcc" "src/analysis/CMakeFiles/small_analysis.dir/lru.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/small_support.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/small_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/sexpr/CMakeFiles/small_sexpr.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
