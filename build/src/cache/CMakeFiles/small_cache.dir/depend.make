# Empty dependencies file for small_cache.
# This may be replaced when dependencies are built.
