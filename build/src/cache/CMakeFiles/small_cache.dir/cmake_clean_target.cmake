file(REMOVE_RECURSE
  "libsmall_cache.a"
)
