file(REMOVE_RECURSE
  "CMakeFiles/small_cache.dir/lru_cache.cpp.o"
  "CMakeFiles/small_cache.dir/lru_cache.cpp.o.d"
  "libsmall_cache.a"
  "libsmall_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/small_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
