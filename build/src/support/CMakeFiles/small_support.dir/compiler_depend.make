# Empty compiler generated dependencies file for small_support.
# This may be replaced when dependencies are built.
