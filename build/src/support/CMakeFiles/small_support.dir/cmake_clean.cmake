file(REMOVE_RECURSE
  "CMakeFiles/small_support.dir/distributions.cpp.o"
  "CMakeFiles/small_support.dir/distributions.cpp.o.d"
  "CMakeFiles/small_support.dir/stats.cpp.o"
  "CMakeFiles/small_support.dir/stats.cpp.o.d"
  "CMakeFiles/small_support.dir/table.cpp.o"
  "CMakeFiles/small_support.dir/table.cpp.o.d"
  "libsmall_support.a"
  "libsmall_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/small_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
