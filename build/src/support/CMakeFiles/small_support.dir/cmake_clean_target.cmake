file(REMOVE_RECURSE
  "libsmall_support.a"
)
