# Empty dependencies file for small_workloads.
# This may be replaced when dependencies are built.
