file(REMOVE_RECURSE
  "CMakeFiles/small_workloads.dir/driver.cpp.o"
  "CMakeFiles/small_workloads.dir/driver.cpp.o.d"
  "CMakeFiles/small_workloads.dir/programs.cpp.o"
  "CMakeFiles/small_workloads.dir/programs.cpp.o.d"
  "libsmall_workloads.a"
  "libsmall_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/small_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
