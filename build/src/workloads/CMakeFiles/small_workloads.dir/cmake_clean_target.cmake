file(REMOVE_RECURSE
  "libsmall_workloads.a"
)
