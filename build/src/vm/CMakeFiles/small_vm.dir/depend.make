# Empty dependencies file for small_vm.
# This may be replaced when dependencies are built.
