file(REMOVE_RECURSE
  "CMakeFiles/small_vm.dir/compiler.cpp.o"
  "CMakeFiles/small_vm.dir/compiler.cpp.o.d"
  "CMakeFiles/small_vm.dir/emulator.cpp.o"
  "CMakeFiles/small_vm.dir/emulator.cpp.o.d"
  "CMakeFiles/small_vm.dir/isa.cpp.o"
  "CMakeFiles/small_vm.dir/isa.cpp.o.d"
  "CMakeFiles/small_vm.dir/small_emulator.cpp.o"
  "CMakeFiles/small_vm.dir/small_emulator.cpp.o.d"
  "libsmall_vm.a"
  "libsmall_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/small_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
