file(REMOVE_RECURSE
  "libsmall_vm.a"
)
