file(REMOVE_RECURSE
  "libsmall_trace.a"
)
