file(REMOVE_RECURSE
  "CMakeFiles/small_trace.dir/io.cpp.o"
  "CMakeFiles/small_trace.dir/io.cpp.o.d"
  "CMakeFiles/small_trace.dir/preprocess.cpp.o"
  "CMakeFiles/small_trace.dir/preprocess.cpp.o.d"
  "CMakeFiles/small_trace.dir/synthetic.cpp.o"
  "CMakeFiles/small_trace.dir/synthetic.cpp.o.d"
  "CMakeFiles/small_trace.dir/trace.cpp.o"
  "CMakeFiles/small_trace.dir/trace.cpp.o.d"
  "libsmall_trace.a"
  "libsmall_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/small_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
