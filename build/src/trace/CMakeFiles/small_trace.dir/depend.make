# Empty dependencies file for small_trace.
# This may be replaced when dependencies are built.
