file(REMOVE_RECURSE
  "libsmall_core_verify.a"
)
