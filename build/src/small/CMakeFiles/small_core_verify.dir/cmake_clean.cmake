file(REMOVE_RECURSE
  "CMakeFiles/small_core_verify.dir/list_processor.cpp.o"
  "CMakeFiles/small_core_verify.dir/list_processor.cpp.o.d"
  "CMakeFiles/small_core_verify.dir/lpt.cpp.o"
  "CMakeFiles/small_core_verify.dir/lpt.cpp.o.d"
  "CMakeFiles/small_core_verify.dir/machine.cpp.o"
  "CMakeFiles/small_core_verify.dir/machine.cpp.o.d"
  "CMakeFiles/small_core_verify.dir/simulator.cpp.o"
  "CMakeFiles/small_core_verify.dir/simulator.cpp.o.d"
  "CMakeFiles/small_core_verify.dir/timing.cpp.o"
  "CMakeFiles/small_core_verify.dir/timing.cpp.o.d"
  "libsmall_core_verify.a"
  "libsmall_core_verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/small_core_verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
