# Empty dependencies file for small_core_verify.
# This may be replaced when dependencies are built.
