file(REMOVE_RECURSE
  "CMakeFiles/small_core.dir/list_processor.cpp.o"
  "CMakeFiles/small_core.dir/list_processor.cpp.o.d"
  "CMakeFiles/small_core.dir/lpt.cpp.o"
  "CMakeFiles/small_core.dir/lpt.cpp.o.d"
  "CMakeFiles/small_core.dir/machine.cpp.o"
  "CMakeFiles/small_core.dir/machine.cpp.o.d"
  "CMakeFiles/small_core.dir/simulator.cpp.o"
  "CMakeFiles/small_core.dir/simulator.cpp.o.d"
  "CMakeFiles/small_core.dir/timing.cpp.o"
  "CMakeFiles/small_core.dir/timing.cpp.o.d"
  "libsmall_core.a"
  "libsmall_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/small_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
