# Empty dependencies file for small_core.
# This may be replaced when dependencies are built.
