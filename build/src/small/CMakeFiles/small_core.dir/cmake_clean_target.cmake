file(REMOVE_RECURSE
  "libsmall_core.a"
)
