file(REMOVE_RECURSE
  "CMakeFiles/table3_2_chaining.dir/table3_2_chaining.cpp.o"
  "CMakeFiles/table3_2_chaining.dir/table3_2_chaining.cpp.o.d"
  "table3_2_chaining"
  "table3_2_chaining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_2_chaining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
