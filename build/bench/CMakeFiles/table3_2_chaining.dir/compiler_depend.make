# Empty compiler generated dependencies file for table3_2_chaining.
# This may be replaced when dependencies are built.
