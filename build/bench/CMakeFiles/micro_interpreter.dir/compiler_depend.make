# Empty compiler generated dependencies file for micro_interpreter.
# This may be replaced when dependencies are built.
