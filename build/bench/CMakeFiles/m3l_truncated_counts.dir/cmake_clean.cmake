file(REMOVE_RECURSE
  "CMakeFiles/m3l_truncated_counts.dir/m3l_truncated_counts.cpp.o"
  "CMakeFiles/m3l_truncated_counts.dir/m3l_truncated_counts.cpp.o.d"
  "m3l_truncated_counts"
  "m3l_truncated_counts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m3l_truncated_counts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
