# Empty compiler generated dependencies file for m3l_truncated_counts.
# This may be replaced when dependencies are built.
