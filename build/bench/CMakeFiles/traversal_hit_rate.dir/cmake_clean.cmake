file(REMOVE_RECURSE
  "CMakeFiles/traversal_hit_rate.dir/traversal_hit_rate.cpp.o"
  "CMakeFiles/traversal_hit_rate.dir/traversal_hit_rate.cpp.o.d"
  "traversal_hit_rate"
  "traversal_hit_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traversal_hit_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
