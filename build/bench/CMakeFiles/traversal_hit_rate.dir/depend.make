# Empty dependencies file for traversal_hit_rate.
# This may be replaced when dependencies are built.
