file(REMOVE_RECURSE
  "CMakeFiles/multilisp_weights.dir/multilisp_weights.cpp.o"
  "CMakeFiles/multilisp_weights.dir/multilisp_weights.cpp.o.d"
  "multilisp_weights"
  "multilisp_weights.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multilisp_weights.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
