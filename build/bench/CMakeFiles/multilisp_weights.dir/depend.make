# Empty dependencies file for multilisp_weights.
# This may be replaced when dependencies are built.
