# Empty compiler generated dependencies file for micro_lpt.
# This may be replaced when dependencies are built.
