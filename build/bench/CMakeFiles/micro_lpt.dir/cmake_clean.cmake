file(REMOVE_RECURSE
  "CMakeFiles/micro_lpt.dir/micro_lpt.cpp.o"
  "CMakeFiles/micro_lpt.dir/micro_lpt.cpp.o.d"
  "micro_lpt"
  "micro_lpt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_lpt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
