# Empty compiler generated dependencies file for fig3_1_primitive_frequencies.
# This may be replaced when dependencies are built.
