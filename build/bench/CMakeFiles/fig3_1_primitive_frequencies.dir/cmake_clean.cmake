file(REMOVE_RECURSE
  "CMakeFiles/fig3_1_primitive_frequencies.dir/fig3_1_primitive_frequencies.cpp.o"
  "CMakeFiles/fig3_1_primitive_frequencies.dir/fig3_1_primitive_frequencies.cpp.o.d"
  "fig3_1_primitive_frequencies"
  "fig3_1_primitive_frequencies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_1_primitive_frequencies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
