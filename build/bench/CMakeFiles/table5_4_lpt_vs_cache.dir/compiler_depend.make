# Empty compiler generated dependencies file for table5_4_lpt_vs_cache.
# This may be replaced when dependencies are built.
