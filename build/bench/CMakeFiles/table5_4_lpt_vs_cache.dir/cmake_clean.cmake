file(REMOVE_RECURSE
  "CMakeFiles/table5_4_lpt_vs_cache.dir/table5_4_lpt_vs_cache.cpp.o"
  "CMakeFiles/table5_4_lpt_vs_cache.dir/table5_4_lpt_vs_cache.cpp.o.d"
  "table5_4_lpt_vs_cache"
  "table5_4_lpt_vs_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_4_lpt_vs_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
