# Empty compiler generated dependencies file for fig3_7_lru_stack.
# This may be replaced when dependencies are built.
