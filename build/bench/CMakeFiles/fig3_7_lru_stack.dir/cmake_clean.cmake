file(REMOVE_RECURSE
  "CMakeFiles/fig3_7_lru_stack.dir/fig3_7_lru_stack.cpp.o"
  "CMakeFiles/fig3_7_lru_stack.dir/fig3_7_lru_stack.cpp.o.d"
  "fig3_7_lru_stack"
  "fig3_7_lru_stack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_7_lru_stack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
