# Empty compiler generated dependencies file for fig3_4_6_list_sets.
# This may be replaced when dependencies are built.
