file(REMOVE_RECURSE
  "CMakeFiles/fig3_4_6_list_sets.dir/fig3_4_6_list_sets.cpp.o"
  "CMakeFiles/fig3_4_6_list_sets.dir/fig3_4_6_list_sets.cpp.o.d"
  "fig3_4_6_list_sets"
  "fig3_4_6_list_sets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_4_6_list_sets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
