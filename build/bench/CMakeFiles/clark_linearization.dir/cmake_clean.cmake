file(REMOVE_RECURSE
  "CMakeFiles/clark_linearization.dir/clark_linearization.cpp.o"
  "CMakeFiles/clark_linearization.dir/clark_linearization.cpp.o.d"
  "clark_linearization"
  "clark_linearization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clark_linearization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
