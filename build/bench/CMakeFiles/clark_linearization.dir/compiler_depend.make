# Empty compiler generated dependencies file for clark_linearization.
# This may be replaced when dependencies are built.
