# Empty dependencies file for fig5_1_2_lpt_size.
# This may be replaced when dependencies are built.
