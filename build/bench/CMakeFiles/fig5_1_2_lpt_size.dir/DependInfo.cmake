
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig5_1_2_lpt_size.cpp" "bench/CMakeFiles/fig5_1_2_lpt_size.dir/fig5_1_2_lpt_size.cpp.o" "gcc" "bench/CMakeFiles/fig5_1_2_lpt_size.dir/fig5_1_2_lpt_size.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/small/CMakeFiles/small_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/small_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/heap/CMakeFiles/small_heap.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/small_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/lisp/CMakeFiles/small_lisp_lib.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/small_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/sexpr/CMakeFiles/small_sexpr.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/small_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
