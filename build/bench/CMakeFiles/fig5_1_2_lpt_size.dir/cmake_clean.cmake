file(REMOVE_RECURSE
  "CMakeFiles/fig5_1_2_lpt_size.dir/fig5_1_2_lpt_size.cpp.o"
  "CMakeFiles/fig5_1_2_lpt_size.dir/fig5_1_2_lpt_size.cpp.o.d"
  "fig5_1_2_lpt_size"
  "fig5_1_2_lpt_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_1_2_lpt_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
