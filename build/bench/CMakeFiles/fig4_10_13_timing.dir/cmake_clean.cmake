file(REMOVE_RECURSE
  "CMakeFiles/fig4_10_13_timing.dir/fig4_10_13_timing.cpp.o"
  "CMakeFiles/fig4_10_13_timing.dir/fig4_10_13_timing.cpp.o.d"
  "fig4_10_13_timing"
  "fig4_10_13_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_10_13_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
