# Empty dependencies file for fig4_10_13_timing.
# This may be replaced when dependencies are built.
