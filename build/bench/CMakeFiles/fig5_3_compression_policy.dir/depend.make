# Empty dependencies file for fig5_3_compression_policy.
# This may be replaced when dependencies are built.
