file(REMOVE_RECURSE
  "CMakeFiles/fig5_3_compression_policy.dir/fig5_3_compression_policy.cpp.o"
  "CMakeFiles/fig5_3_compression_policy.dir/fig5_3_compression_policy.cpp.o.d"
  "fig5_3_compression_policy"
  "fig5_3_compression_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_3_compression_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
