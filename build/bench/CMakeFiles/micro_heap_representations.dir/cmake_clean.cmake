file(REMOVE_RECURSE
  "CMakeFiles/micro_heap_representations.dir/micro_heap_representations.cpp.o"
  "CMakeFiles/micro_heap_representations.dir/micro_heap_representations.cpp.o.d"
  "micro_heap_representations"
  "micro_heap_representations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_heap_representations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
