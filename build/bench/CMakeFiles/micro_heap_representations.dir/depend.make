# Empty dependencies file for micro_heap_representations.
# This may be replaced when dependencies are built.
