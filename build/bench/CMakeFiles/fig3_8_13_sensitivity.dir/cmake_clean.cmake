file(REMOVE_RECURSE
  "CMakeFiles/fig3_8_13_sensitivity.dir/fig3_8_13_sensitivity.cpp.o"
  "CMakeFiles/fig3_8_13_sensitivity.dir/fig3_8_13_sensitivity.cpp.o.d"
  "fig3_8_13_sensitivity"
  "fig3_8_13_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_8_13_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
