# Empty dependencies file for fig3_8_13_sensitivity.
# This may be replaced when dependencies are built.
