# Empty dependencies file for table5_5_param_sensitivity.
# This may be replaced when dependencies are built.
