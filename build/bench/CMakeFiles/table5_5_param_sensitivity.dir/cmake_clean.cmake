file(REMOVE_RECURSE
  "CMakeFiles/table5_5_param_sensitivity.dir/table5_5_param_sensitivity.cpp.o"
  "CMakeFiles/table5_5_param_sensitivity.dir/table5_5_param_sensitivity.cpp.o.d"
  "table5_5_param_sensitivity"
  "table5_5_param_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_5_param_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
