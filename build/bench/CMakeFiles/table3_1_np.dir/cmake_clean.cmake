file(REMOVE_RECURSE
  "CMakeFiles/table3_1_np.dir/table3_1_np.cpp.o"
  "CMakeFiles/table3_1_np.dir/table3_1_np.cpp.o.d"
  "table3_1_np"
  "table3_1_np.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_1_np.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
