file(REMOVE_RECURSE
  "CMakeFiles/table5_1_trace_content.dir/table5_1_trace_content.cpp.o"
  "CMakeFiles/table5_1_trace_content.dir/table5_1_trace_content.cpp.o.d"
  "table5_1_trace_content"
  "table5_1_trace_content.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_1_trace_content.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
