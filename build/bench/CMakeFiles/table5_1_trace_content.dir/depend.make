# Empty dependencies file for table5_1_trace_content.
# This may be replaced when dependencies are built.
