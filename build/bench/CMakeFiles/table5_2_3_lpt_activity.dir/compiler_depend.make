# Empty compiler generated dependencies file for table5_2_3_lpt_activity.
# This may be replaced when dependencies are built.
