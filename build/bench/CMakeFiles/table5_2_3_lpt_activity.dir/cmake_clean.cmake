file(REMOVE_RECURSE
  "CMakeFiles/table5_2_3_lpt_activity.dir/table5_2_3_lpt_activity.cpp.o"
  "CMakeFiles/table5_2_3_lpt_activity.dir/table5_2_3_lpt_activity.cpp.o.d"
  "table5_2_3_lpt_activity"
  "table5_2_3_lpt_activity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_2_3_lpt_activity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
