file(REMOVE_RECURSE
  "CMakeFiles/fig5_5_line_size.dir/fig5_5_line_size.cpp.o"
  "CMakeFiles/fig5_5_line_size.dir/fig5_5_line_size.cpp.o.d"
  "fig5_5_line_size"
  "fig5_5_line_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_5_line_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
