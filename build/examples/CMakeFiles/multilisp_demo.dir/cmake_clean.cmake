file(REMOVE_RECURSE
  "CMakeFiles/multilisp_demo.dir/multilisp_demo.cpp.o"
  "CMakeFiles/multilisp_demo.dir/multilisp_demo.cpp.o.d"
  "multilisp_demo"
  "multilisp_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multilisp_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
