# Empty compiler generated dependencies file for multilisp_demo.
# This may be replaced when dependencies are built.
