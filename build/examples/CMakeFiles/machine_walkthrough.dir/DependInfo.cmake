
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/machine_walkthrough.cpp" "examples/CMakeFiles/machine_walkthrough.dir/machine_walkthrough.cpp.o" "gcc" "examples/CMakeFiles/machine_walkthrough.dir/machine_walkthrough.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/small/CMakeFiles/small_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sexpr/CMakeFiles/small_sexpr.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/small_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/heap/CMakeFiles/small_heap.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/small_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/small_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
