file(REMOVE_RECURSE
  "CMakeFiles/machine_walkthrough.dir/machine_walkthrough.cpp.o"
  "CMakeFiles/machine_walkthrough.dir/machine_walkthrough.cpp.o.d"
  "machine_walkthrough"
  "machine_walkthrough.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/machine_walkthrough.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
