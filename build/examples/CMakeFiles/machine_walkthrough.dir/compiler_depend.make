# Empty compiler generated dependencies file for machine_walkthrough.
# This may be replaced when dependencies are built.
