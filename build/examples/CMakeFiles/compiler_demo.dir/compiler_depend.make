# Empty compiler generated dependencies file for compiler_demo.
# This may be replaced when dependencies are built.
