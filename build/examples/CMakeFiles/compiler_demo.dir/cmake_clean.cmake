file(REMOVE_RECURSE
  "CMakeFiles/compiler_demo.dir/compiler_demo.cpp.o"
  "CMakeFiles/compiler_demo.dir/compiler_demo.cpp.o.d"
  "compiler_demo"
  "compiler_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compiler_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
