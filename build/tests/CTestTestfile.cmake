# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/sexpr_test[1]_include.cmake")
include("/root/repo/build/tests/lisp_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/heap_test[1]_include.cmake")
include("/root/repo/build/tests/cache_test[1]_include.cmake")
include("/root/repo/build/tests/lpt_test[1]_include.cmake")
include("/root/repo/build/tests/machine_test[1]_include.cmake")
include("/root/repo/build/tests/value_cache_test[1]_include.cmake")
include("/root/repo/build/tests/list_processor_test[1]_include.cmake")
include("/root/repo/build/tests/simulator_test[1]_include.cmake")
include("/root/repo/build/tests/timing_test[1]_include.cmake")
include("/root/repo/build/tests/simulator_verify_test[1]_include.cmake")
include("/root/repo/build/tests/vm_test[1]_include.cmake")
include("/root/repo/build/tests/vm_small_test[1]_include.cmake")
include("/root/repo/build/tests/multilisp_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/differential_test[1]_include.cmake")
