# Empty compiler generated dependencies file for lisp_test.
# This may be replaced when dependencies are built.
