file(REMOVE_RECURSE
  "CMakeFiles/lisp_test.dir/lisp_test.cpp.o"
  "CMakeFiles/lisp_test.dir/lisp_test.cpp.o.d"
  "lisp_test"
  "lisp_test.pdb"
  "lisp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lisp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
