# Empty dependencies file for list_processor_test.
# This may be replaced when dependencies are built.
