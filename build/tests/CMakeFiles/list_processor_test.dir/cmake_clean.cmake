file(REMOVE_RECURSE
  "CMakeFiles/list_processor_test.dir/list_processor_test.cpp.o"
  "CMakeFiles/list_processor_test.dir/list_processor_test.cpp.o.d"
  "list_processor_test"
  "list_processor_test.pdb"
  "list_processor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/list_processor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
