# Empty dependencies file for simulator_verify_test.
# This may be replaced when dependencies are built.
