file(REMOVE_RECURSE
  "CMakeFiles/simulator_verify_test.dir/simulator_verify_test.cpp.o"
  "CMakeFiles/simulator_verify_test.dir/simulator_verify_test.cpp.o.d"
  "simulator_verify_test"
  "simulator_verify_test.pdb"
  "simulator_verify_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simulator_verify_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
