# Empty compiler generated dependencies file for vm_small_test.
# This may be replaced when dependencies are built.
