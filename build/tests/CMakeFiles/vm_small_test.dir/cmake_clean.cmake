file(REMOVE_RECURSE
  "CMakeFiles/vm_small_test.dir/vm_small_test.cpp.o"
  "CMakeFiles/vm_small_test.dir/vm_small_test.cpp.o.d"
  "vm_small_test"
  "vm_small_test.pdb"
  "vm_small_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vm_small_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
