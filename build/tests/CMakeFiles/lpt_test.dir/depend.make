# Empty dependencies file for lpt_test.
# This may be replaced when dependencies are built.
