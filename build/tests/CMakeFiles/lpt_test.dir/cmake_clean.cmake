file(REMOVE_RECURSE
  "CMakeFiles/lpt_test.dir/lpt_test.cpp.o"
  "CMakeFiles/lpt_test.dir/lpt_test.cpp.o.d"
  "lpt_test"
  "lpt_test.pdb"
  "lpt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lpt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
