# Empty dependencies file for sexpr_test.
# This may be replaced when dependencies are built.
