# Empty dependencies file for value_cache_test.
# This may be replaced when dependencies are built.
