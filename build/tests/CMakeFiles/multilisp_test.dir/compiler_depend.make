# Empty compiler generated dependencies file for multilisp_test.
# This may be replaced when dependencies are built.
