file(REMOVE_RECURSE
  "CMakeFiles/multilisp_test.dir/multilisp_test.cpp.o"
  "CMakeFiles/multilisp_test.dir/multilisp_test.cpp.o.d"
  "multilisp_test"
  "multilisp_test.pdb"
  "multilisp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multilisp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
