#include "workloads/families/family.hpp"

#include <ostream>
#include <string>

#include "support/error.hpp"
#include "trace/binary.hpp"
#include "trace/io.hpp"

namespace small::workloads::families {

std::uint32_t TraceEventSink::internFunction(std::string_view name) {
  return trace_->internFunction(name);
}

void TraceEventSink::append(const trace::Event& event) {
  trace_->append(event);
}

std::uint32_t BinaryWriterSink::internFunction(std::string_view name) {
  return writer_->internFunction(name);
}

void BinaryWriterSink::append(const trace::Event& event) {
  writer_->append(event);
}

TextStreamSink::TextStreamSink(std::ostream& out,
                               const std::string& traceName)
    : out_(&out) {
  trace::saveTextHeader(out, traceName);
}

std::uint32_t TextStreamSink::internFunction(std::string_view name) {
  // Same dedup/id-order contract as Trace::internFunction: the table is
  // a handful of family role names, so the linear scan is free.
  for (std::size_t i = 0; i < functionNames_.size(); ++i) {
    if (functionNames_[i] == name) return static_cast<std::uint32_t>(i);
  }
  functionNames_.emplace_back(name);
  return static_cast<std::uint32_t>(functionNames_.size() - 1);
}

void TextStreamSink::append(const trace::Event& event) {
  static const std::string kNoName;
  if (event.kind == trace::EventKind::kPrimitive) {
    trace::saveTextEvent(*out_, event, kNoName);
    return;
  }
  if (event.functionId >= functionNames_.size()) {
    throw support::Error("family text sink: unknown function id " +
                         std::to_string(event.functionId));
  }
  trace::saveTextEvent(*out_, event, functionNames_[event.functionId]);
}

const char* familyName(FamilyKind kind) {
  switch (kind) {
    case FamilyKind::kAgentLoop: return "agent-loop";
    case FamilyKind::kThunkHeavy: return "thunk-heavy";
    case FamilyKind::kSessionChurn: return "session-churn";
  }
  return "?";
}

std::optional<FamilyKind> familyFromName(std::string_view name) {
  for (const FamilyKind kind : kAllFamilies) {
    if (name == familyName(kind)) return kind;
  }
  return std::nullopt;
}

std::vector<Knob> familyKnobs(FamilyKind kind, FamilyConfig& config) {
  switch (kind) {
    case FamilyKind::kAgentLoop:
      return {
          {"--env-entries", "live environment bindings (1..100000)", 1,
           100000, &config.agentLoop.envEntries, nullptr},
          {"--mutate-prob", "per-turn rebind probability (0..1)", 0.0, 1.0,
           nullptr, &config.agentLoop.mutateProb},
          {"--burst-prob", "per-turn growth-burst probability (0..1)", 0.0,
           1.0, nullptr, &config.agentLoop.burstProb},
          {"--burst-length", "bindings added per burst (1..100000)", 1,
           100000, &config.agentLoop.burstLength, nullptr},
      };
    case FamilyKind::kThunkHeavy:
      return {
          {"--chain-depth", "cdr-chain depth per thunk (4..10000)", 4,
           10000, &config.thunkHeavy.chainDepth, nullptr},
          {"--pending-thunks", "max outstanding suspensions (1..1000000)",
           1, 1000000, &config.thunkHeavy.pendingThunks, nullptr},
          {"--forced-fraction", "fraction of thunks ever forced (0..1)",
           0.0, 1.0, nullptr, &config.thunkHeavy.forcedFraction},
      };
    case FamilyKind::kSessionChurn:
      return {
          {"--live-sessions", "concurrently live sessions (1..1000000)", 1,
           1000000, &config.sessionChurn.liveSessions, nullptr},
          {"--session-ops", "probe primitives per session (1..100000)", 1,
           100000, &config.sessionChurn.sessionOps, nullptr},
          {"--env-bindings", "bindings built at session start (1..64)", 1,
           64, &config.sessionChurn.envBindings, nullptr},
      };
  }
  return {};
}

MixExpectation familyExpectation(FamilyKind kind) {
  // Center points measured at default knobs over several seeds; the
  // tolerances absorb seed and scale noise down to ~10^4 primitives.
  // A family drifting outside this envelope is a behavior change the
  // statistics-sanity tests are meant to catch.
  switch (kind) {
    case FamilyKind::kAgentLoop:
      return {0.24, 0.58, 0.05, 0.06, 0.97, 0.63, 0.08};
    case FamilyKind::kThunkHeavy:
      return {0.10, 0.86, 0.02, 0.06, 1.00, 0.87, 0.08};
    case FamilyKind::kSessionChurn:
      return {0.19, 0.33, 0.22, 0.06, 0.03, 0.34, 0.08};
  }
  return {};
}

double FamilyStats::carChainRate() const {
  const std::uint64_t cars =
      perPrimitive[static_cast<std::size_t>(trace::Primitive::kCar)];
  return cars == 0 ? 0.0
                   : static_cast<double>(carChained) /
                         static_cast<double>(cars);
}

double FamilyStats::cdrChainRate() const {
  const std::uint64_t cdrs =
      perPrimitive[static_cast<std::size_t>(trace::Primitive::kCdr)];
  return cdrs == 0 ? 0.0
                   : static_cast<double>(cdrChained) /
                         static_cast<double>(cdrs);
}

namespace detail {
// Defined in the per-family translation units.
std::unique_ptr<Family> makeAgentLoop(const FamilyConfig& config);
std::unique_ptr<Family> makeThunkHeavy(const FamilyConfig& config);
std::unique_ptr<Family> makeSessionChurn(const FamilyConfig& config);
}  // namespace detail

std::unique_ptr<Family> makeFamily(FamilyKind kind,
                                   const FamilyConfig& config) {
  if (config.scale < kMinScale || config.scale > kMaxScale) {
    throw support::Error(
        "family scale " + std::to_string(config.scale) +
        " out of range [" + std::to_string(kMinScale) + ", " +
        std::to_string(kMaxScale) + "]");
  }
  // The knob table doubles as the validity spec: a config someone built
  // by hand gets the same range checks the CLI enforces.
  FamilyConfig probe = config;
  for (const Knob& knob : familyKnobs(kind, probe)) {
    if (knob.count != nullptr) {
      const auto value = static_cast<double>(*knob.count);
      if (value < knob.min || value > knob.max) {
        throw support::Error(std::string("family knob ") + knob.flag +
                             " out of range");
      }
    } else {
      if (*knob.real < knob.min || *knob.real > knob.max) {
        throw support::Error(std::string("family knob ") + knob.flag +
                             " out of range");
      }
    }
  }
  switch (kind) {
    case FamilyKind::kAgentLoop: return detail::makeAgentLoop(config);
    case FamilyKind::kThunkHeavy: return detail::makeThunkHeavy(config);
    case FamilyKind::kSessionChurn: return detail::makeSessionChurn(config);
  }
  throw support::Error("unknown family kind");
}

trace::Trace generateTrace(FamilyKind kind, const FamilyConfig& config,
                           FamilyStats* stats) {
  trace::Trace trace;
  trace.name = std::string(familyName(kind)) + "-s" +
               std::to_string(config.seed);
  TraceEventSink sink(trace);
  const FamilyStats result = makeFamily(kind, config)->generate(sink);
  if (stats != nullptr) *stats = result;
  return trace;
}

}  // namespace small::workloads::families
