// Scenario workload families: modern access patterns as streaming trace
// emitters.
//
// The calibrated generator (trace/synthetic.hpp) reproduces the thesis'
// five workload *distributions*; the families here model three modern
// *scenarios* whose structure the paper could not have measured, to ask
// how far off-distribution the Chapter 5 LPT conclusions hold:
//
//   agent-loop     one persistent environment, read-eval-mutate cycles:
//                  tool-call-like a-list lookups (deep chained cdr/car
//                  walks over a long-lived spine), result construction,
//                  rplacd churn on recent bindings, and bursty
//                  environment growth.
//   thunk-heavy    call-by-need shape: suspensions accumulate as deeply
//                  nested cdr-chains that are built cheaply, go cold,
//                  and are forced late — long chained walks that revisit
//                  structure far older than anything a strict evaluator
//                  would touch.
//   session-churn  many short-lived environments at a high request
//                  rate: each session builds a small structure, probes
//                  it briefly, and drops it — allocation-heavy, shallow,
//                  with almost no long-lived state.
//
// Each family is a deterministic function of (scale, seed, knobs) that
// *streams* its events into an EventSink in O(knobs) resident memory —
// never O(scale) — so the same generator reaches 10^3 primitives for a
// unit test and 10^8-10^9 through trace::BinaryWriter for the scale axis
// (tools/trace_gen), with byte-identical output for a given config
// whichever sink receives it.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "trace/trace.hpp"

namespace small::trace {
class BinaryWriter;
}  // namespace small::trace

namespace small::workloads::families {

/// Where generated events go. The three implementations below cover the
/// in-memory, binary-streaming, and text-streaming cases; generators are
/// sink-agnostic so equality across sinks is a file-compare test, not a
/// code path.
class EventSink {
 public:
  virtual ~EventSink() = default;
  /// Intern a function name, returning its id (Trace::internFunction
  /// semantics: dedup by value, ids in first-use order).
  virtual std::uint32_t internFunction(std::string_view name) = 0;
  /// Emit one event. Function events reference an interned id.
  virtual void append(const trace::Event& event) = 0;
};

/// Collects events into an in-memory Trace (small scales: tests, bench
/// sweeps, service rosters).
class TraceEventSink final : public EventSink {
 public:
  explicit TraceEventSink(trace::Trace& trace) : trace_(&trace) {}
  std::uint32_t internFunction(std::string_view name) override;
  void append(const trace::Event& event) override;

 private:
  trace::Trace* trace_;
};

/// Streams events into an SMTR file via trace::BinaryWriter (the 10^8+
/// path; O(flush buffer) memory).
class BinaryWriterSink final : public EventSink {
 public:
  explicit BinaryWriterSink(trace::BinaryWriter& writer) : writer_(&writer) {}
  std::uint32_t internFunction(std::string_view name) override;
  void append(const trace::Event& event) override;

 private:
  trace::BinaryWriter* writer_;
};

/// Streams events as the line-oriented text format (trace/io.hpp) —
/// trace_gen --format text. Writes the `# name` header on construction
/// and keeps its own name table for function events.
class TextStreamSink final : public EventSink {
 public:
  TextStreamSink(std::ostream& out, const std::string& traceName);
  std::uint32_t internFunction(std::string_view name) override;
  void append(const trace::Event& event) override;

 private:
  std::ostream* out_;
  std::vector<std::string> functionNames_;
};

enum class FamilyKind : std::uint8_t {
  kAgentLoop,
  kThunkHeavy,
  kSessionChurn,
};

inline constexpr FamilyKind kAllFamilies[] = {
    FamilyKind::kAgentLoop,
    FamilyKind::kThunkHeavy,
    FamilyKind::kSessionChurn,
};

/// CLI name of the family ("agent-loop", "thunk-heavy", "session-churn").
const char* familyName(FamilyKind kind);
std::optional<FamilyKind> familyFromName(std::string_view name);

/// agent-loop texture. The persistent environment is a bounded ring of
/// `envEntries` bindings; each turn walks the spine (chained cdr with
/// interleaved car probes), evaluates by consing a result structure,
/// and with `mutateProb` rebinds a recent entry via rplacd. With
/// `burstProb` per turn the environment grows by `burstLength`
/// prepended bindings (tool output entering the a-list), evicting the
/// oldest so residency stays bounded.
struct AgentLoopKnobs {
  std::uint64_t envEntries = 96;   ///< live environment bindings
  double mutateProb = 0.35;        ///< per-turn rebind probability
  double burstProb = 0.02;         ///< per-turn growth-burst probability
  std::uint64_t burstLength = 48;  ///< bindings added per burst
};

/// thunk-heavy texture. Up to `pendingThunks` suspensions are alive at
/// once; building one emits a few cheap conses, forcing one walks its
/// full `chainDepth`-deep cdr chain (chained) plus a car per cell.
/// `forcedFraction` of thunks are eventually forced; the rest are
/// dropped unevaluated (speculative suspensions that never mattered).
struct ThunkHeavyKnobs {
  std::uint64_t chainDepth = 160;     ///< cdr-chain depth per thunk
  std::uint64_t pendingThunks = 384;  ///< max outstanding suspensions
  double forcedFraction = 0.65;       ///< thunks ever forced
};

/// session-churn texture. `liveSessions` concurrent sessions; each is
/// born (reads a request, conses `envBindings` bindings), serves
/// `sessionOps` shallow probes (car/cdr/predicates over its own small
/// structure), and dies, dropping everything it built.
struct SessionChurnKnobs {
  std::uint64_t liveSessions = 64;  ///< concurrently live sessions
  std::uint64_t sessionOps = 40;    ///< probe primitives per session
  std::uint64_t envBindings = 6;    ///< bindings built at session start
};

/// Full generator configuration. `scale` is the exact number of
/// primitive events emitted (function enter/exit records ride on top).
struct FamilyConfig {
  std::uint64_t scale = 100000;
  std::uint64_t seed = 1;
  AgentLoopKnobs agentLoop;
  ThunkHeavyKnobs thunkHeavy;
  SessionChurnKnobs sessionChurn;
};

inline constexpr std::uint64_t kMinScale = 1000;
/// BinaryWriter streams, so the format ceiling is disk space; this cap
/// (10^10) only guards against typo'd scales running for days.
inline constexpr std::uint64_t kMaxScale = 10000000000ull;

/// One CLI-tunable knob: flag spelling, help text, and a pointer into a
/// FamilyConfig. Exactly one of `count`/`real` is non-null; `min`/`max`
/// bound the accepted value (inclusive, in the pointee's domain).
struct Knob {
  const char* flag;
  const char* help;
  double min = 0.0;
  double max = 0.0;
  std::uint64_t* count = nullptr;
  double* real = nullptr;
};

/// The knob table for `kind`, with pointers into `config` — the single
/// source of truth trace_gen parses per-family flags from.
std::vector<Knob> familyKnobs(FamilyKind kind, FamilyConfig& config);

/// Summary statistics accumulated while generating (the generator-side
/// mirror of what trace::preprocess + Trace::content would recompute,
/// maintained in O(1) so they exist even when the trace only ever lived
/// in a spill file).
struct FamilyStats {
  std::uint64_t primitives = 0;
  std::uint64_t events = 0;  ///< primitives + enters + exits
  std::uint64_t perPrimitive[trace::kPrimitiveCount] = {};
  std::uint64_t functionCalls = 0;  ///< enter events
  std::uint32_t maxCallDepth = 0;
  /// car/cdr calls whose list argument is the previous primitive's
  /// list result (the Preprocessor's chained flag).
  std::uint64_t carChained = 0;
  std::uint64_t cdrChained = 0;
  std::uint64_t objectsCreated = 0;    ///< fresh fingerprints minted
  std::uint64_t liveObjectsPeak = 0;   ///< generator-pool high-water mark
  /// Shape sums over list-valued arguments (means approximate Table 3.1's
  /// n and p for the family).
  std::uint64_t listArgs = 0;
  std::uint64_t sumN = 0;
  std::uint64_t sumP = 0;

  double primitiveFrac(trace::Primitive p) const {
    return primitives == 0 ? 0.0
                           : static_cast<double>(
                                 perPrimitive[static_cast<std::size_t>(p)]) /
                                 static_cast<double>(primitives);
  }
  double carChainRate() const;
  double cdrChainRate() const;
  double meanN() const {
    return listArgs == 0
               ? 0.0
               : static_cast<double>(sumN) / static_cast<double>(listArgs);
  }
  double meanP() const {
    return listArgs == 0
               ? 0.0
               : static_cast<double>(sumP) / static_cast<double>(listArgs);
  }
};

/// Declared primitive-mix / chaining envelope for a family at default
/// knobs — what the family *promises* about its texture, pinned by the
/// statistics-sanity tests across seeds.
struct MixExpectation {
  double carFrac = 0.0;
  double cdrFrac = 0.0;
  double consFrac = 0.0;
  double mixTolerance = 0.0;  ///< absolute tolerance on each fraction
  double carChainRate = 0.0;
  double cdrChainRate = 0.0;
  double chainTolerance = 0.0;
};
MixExpectation familyExpectation(FamilyKind kind);

/// A configured generator. generate() streams one complete, balanced
/// trace (every function enter matched by an exit) of exactly
/// config.scale primitive events into `sink` and returns the summary;
/// the same (kind, config) always produces the same event sequence.
class Family {
 public:
  virtual ~Family() = default;
  virtual FamilyKind kind() const = 0;
  const char* name() const { return familyName(kind()); }
  virtual FamilyStats generate(EventSink& sink) = 0;
};

/// Construct the generator for `kind`. Throws support::Error when
/// config.scale is outside [kMinScale, kMaxScale] or a knob is zero
/// where the family needs it nonzero.
std::unique_ptr<Family> makeFamily(FamilyKind kind,
                                   const FamilyConfig& config);

/// Convenience for small scales: generate into an in-memory Trace named
/// "<family>-s<seed>". The 10^8+ path goes through BinaryWriterSink.
trace::Trace generateTrace(FamilyKind kind, const FamilyConfig& config,
                           FamilyStats* stats = nullptr);

}  // namespace small::workloads::families
