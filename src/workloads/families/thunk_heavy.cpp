// thunk-heavy: call-by-need shape — build cheap, force late, walk deep.
//
// A suspension is a chainDepth-deep cdr chain that exists from the
// moment its head cell is consed but is only ever *traversed* when the
// thunk is forced. The generator names a chain's cells arithmetically
// (a minted fingerprint block: cell i = base + i, shape n = depth - i),
// so a pending thunk costs 16 bytes of generator state no matter how
// deep the chain — the whole point of the family is that forcing
// revisits structure that has long gone cold, and the pending ring is
// drained oldest-first to maximize that coldness.
//
// Per step the generator either builds a new suspension (a read plus a
// few conses inside a `suspend` frame) or retires the oldest pending
// one: with probability forcedFraction it is forced — a `force` frame
// around a full chained cdr walk with occasional car probes and a null
// check at the end — otherwise it is discarded unevaluated (one atom
// check; speculation that never mattered).
#include <deque>

#include "workloads/families/emitter.hpp"
#include "workloads/families/family.hpp"

namespace small::workloads::families::detail {

namespace {

struct Thunk {
  std::uint64_t baseFp = 0;
  std::uint32_t depth = 0;
};

class ThunkHeavy final : public Family {
 public:
  explicit ThunkHeavy(const FamilyConfig& config) : config_(config) {}

  FamilyKind kind() const override { return FamilyKind::kThunkHeavy; }

  FamilyStats generate(EventSink& sink) override {
    Emitter e(sink, config_);
    const ThunkHeavyKnobs& k = config_.thunkHeavy;
    const std::uint32_t suspendFn = sink.internFunction("suspend");
    const std::uint32_t forceFn = sink.internFunction("force");
    const std::uint32_t discardFn = sink.internFunction("discard");

    std::deque<Thunk> pending;
    std::uint64_t liveCells = 0;

    while (!e.done()) {
      // Retire when the ring is full, or (once seeded) at a rate that
      // balances building; build otherwise.
      const bool full = pending.size() >= k.pendingThunks;
      const bool retire =
          full || (pending.size() > k.pendingThunks / 2 &&
                   e.rng().chance(0.5));
      if (retire && !pending.empty()) {
        const Thunk thunk = pending.front();
        pending.pop_front();
        liveCells -= thunk.depth;
        if (e.rng().chance(k.forcedFraction)) {
          force(e, forceFn, thunk, pending, liveCells, 3);
        } else {
          e.enterFunction(discardFn, 1);
          e.predicate(trace::Primitive::kAtom, cell(thunk, 0));
          e.exitFunction();
        }
      } else {
        pending.push_back(build(e, suspendFn, k));
        liveCells += pending.back().depth;
        e.noteLive(liveCells);
      }
    }
    e.unwindAll();
    return e.finish();
  }

 private:
  /// Cell i of a thunk's chain: fingerprint base + i, n shrinking down
  /// the spine (capped so shapes stay in the few-hundreds), flat shape
  /// (p stays 0 on a pure cdr chain).
  static Obj cell(const Thunk& thunk, std::uint32_t i) {
    const std::uint32_t left = thunk.depth - i;
    return Obj{thunk.baseFp + i, left > 400 ? 400 : left, 0};
  }

  Thunk build(Emitter& e, std::uint32_t suspendFn,
              const ThunkHeavyKnobs& k) {
    // Depth in [chainDepth/2, 3*chainDepth/2): mean chainDepth.
    const std::uint64_t depth =
        k.chainDepth / 2 + 1 + e.rng().below(k.chainDepth);
    Thunk thunk{0, static_cast<std::uint32_t>(depth)};
    thunk.baseFp = e.mintBlock(depth);
    e.enterFunction(suspendFn, 2);
    // Delayed construction: only the first few cells are materially
    // consed now; the tail exists but stays untouched until forced.
    const Obj payload = e.read(3 + e.rng().below(6), 1);
    const std::uint32_t eager =
        static_cast<std::uint32_t>(2 + e.rng().below(3));
    for (std::uint32_t i = 0; i < eager && !e.done(); ++i) {
      const std::uint32_t j = eager - 1 - i;  // cons inside-out
      if (j + 1 >= thunk.depth) continue;
      if (j == 0) {
        e.consTo(payload, cell(thunk, 1), cell(thunk, 0));
      } else {
        e.consAtomTo(cell(thunk, j + 1), cell(thunk, j));
      }
    }
    e.exitFunction();
    return thunk;
  }

  void force(Emitter& e, std::uint32_t forceFn, const Thunk& thunk,
             std::deque<Thunk>& pending, std::uint64_t& liveCells,
             int nestBudget) {
    e.enterFunction(forceFn, 1);
    // Full chained walk; a car probe every few cells reads the element
    // (and, because car's atom result breaks the cdr chain, keeps the
    // cdr chain rate below 1 without extra machinery).
    for (std::uint32_t i = 0; i + 1 < thunk.depth && !e.done(); ++i) {
      e.cdrTo(cell(thunk, i), cell(thunk, i + 1));
      if (e.rng().chance(0.12)) e.carAtom(cell(thunk, i + 1));
      // A value mid-chain can itself be a suspension: demand the oldest
      // pending thunk right here, nested inside this force frame.
      if (nestBudget > 0 && !pending.empty() && e.rng().chance(0.01)) {
        const Thunk inner = pending.front();
        pending.pop_front();
        liveCells -= inner.depth;
        force(e, forceFn, inner, pending, liveCells, nestBudget - 1);
      }
    }
    if (!e.done()) {
      e.cdrNil(cell(thunk, thunk.depth - 1));
      e.predicate(trace::Primitive::kNull, cell(thunk, thunk.depth - 1));
      if (e.rng().chance(0.25)) {
        e.writeOut(cell(thunk, 0));
      }
    }
    e.exitFunction();
  }

  FamilyConfig config_;
};

}  // namespace

std::unique_ptr<Family> makeThunkHeavy(const FamilyConfig& config) {
  return std::make_unique<ThunkHeavy>(config);
}

}  // namespace small::workloads::families::detail
