// Internal: the shared emission core of the family generators.
//
// Families describe *scenarios* (what gets walked, built, mutated, and
// dropped); the Emitter owns everything scenario-independent — minting
// fingerprints, packing ObjectRecords, budget enforcement (exactly
// `scale` primitives), the function-call stack, and FamilyStats
// accounting, including the chained-car/cdr detection that mirrors
// trace::Preprocessor (an argument is chained iff it is a list, the
// previous primitive's result was a list, and the fingerprints match).
//
// Not installed / not part of the public interface; include only from
// families/*.cpp.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <vector>

#include "support/error.hpp"
#include "support/rng.hpp"
#include "trace/trace.hpp"
#include "workloads/families/family.hpp"

namespace small::workloads::families::detail {

/// A list object as the generator tracks it: fingerprint plus the (n, p)
/// shape it was minted with. Generators keep O(knobs) of these, never
/// O(scale).
struct Obj {
  std::uint64_t fp = 0;
  std::uint32_t n = 1;
  std::uint32_t p = 0;
};

class Emitter {
 public:
  Emitter(EventSink& sink, const FamilyConfig& config)
      : sink_(&sink), scale_(config.scale), rng_(config.seed) {}

  support::Rng& rng() { return rng_; }
  bool done() const { return stats_.primitives >= scale_; }
  std::uint64_t remaining() const { return scale_ - stats_.primitives; }
  std::uint32_t depth() const {
    return static_cast<std::uint32_t>(callStack_.size());
  }
  const FamilyStats& stats() const { return stats_; }

  /// Final statistics; call after unwindAll().
  FamilyStats finish() {
    if (!callStack_.empty()) {
      throw support::Error("family generator left open function frames");
    }
    return stats_;
  }

  // --- fingerprints -------------------------------------------------

  /// Mint a fresh list object.
  Obj fresh(std::uint32_t n, std::uint32_t p) {
    ++stats_.objectsCreated;
    return Obj{nextFp_++, n, p};
  }

  /// Mint `count` consecutive fingerprints and return the first — the
  /// cells of a deep chain can then be named arithmetically (base + i)
  /// without storing any of them.
  std::uint64_t mintBlock(std::uint64_t count) {
    const std::uint64_t base = nextFp_;
    nextFp_ += count;
    stats_.objectsCreated += count;
    return base;
  }

  /// Record the generator's current live-object count (ring/pool
  /// occupancy) for the liveObjectsPeak high-water mark.
  void noteLive(std::uint64_t live) {
    if (live > stats_.liveObjectsPeak) stats_.liveObjectsPeak = live;
  }

  // --- primitives ---------------------------------------------------
  // Each helper emits exactly one primitive event (silently dropped once
  // the scale budget is spent — callers check done() at loop heads, the
  // budget check here just makes the cut exact mid-phase).

  /// readlist: new data enters the system.
  Obj read(std::uint32_t n, std::uint32_t p) {
    const Obj result = fresh(n, p);
    emit(trace::Primitive::kRead, record(result), {});
    return result;
  }

  /// writelist: a result leaves the system (atom result).
  void writeOut(const Obj& value) {
    emit(trace::Primitive::kWrite, atom(), {record(value)});
  }

  Obj cons(const Obj& head, const Obj& tail) {
    const Obj result = fresh(clampShape(head.n + tail.n + 1),
                             clampShape(head.p + tail.p + (head.n > 1)));
    emit(trace::Primitive::kCons, record(result),
         {record(head), record(tail)});
    return result;
  }

  /// cons whose head is an atom (plain list cell prepend).
  Obj consAtom(const Obj& tail) {
    const Obj result = fresh(clampShape(tail.n + 1), tail.p);
    emit(trace::Primitive::kCons, record(result), {atom(), record(tail)});
    return result;
  }

  /// cons whose result is a pre-named cell (chain construction over a
  /// minted fingerprint block; nothing fresh is created here).
  void consTo(const Obj& head, const Obj& tail, const Obj& result) {
    emit(trace::Primitive::kCons, record(result),
         {record(head), record(tail)});
  }

  /// consTo with an atom head.
  void consAtomTo(const Obj& tail, const Obj& result) {
    emit(trace::Primitive::kCons, record(result), {atom(), record(tail)});
  }

  /// car that yields a known list child.
  void carList(const Obj& arg, const Obj& result) {
    emit(trace::Primitive::kCar, record(result), {record(arg)});
  }

  /// car that yields an atom.
  void carAtom(const Obj& arg) {
    emit(trace::Primitive::kCar, atom(), {record(arg)});
  }

  /// cdr to the known next cell.
  void cdrTo(const Obj& arg, const Obj& result) {
    emit(trace::Primitive::kCdr, record(result), {record(arg)});
  }

  /// cdr off the end of a chain (nil result).
  void cdrNil(const Obj& arg) {
    emit(trace::Primitive::kCdr, atom(), {record(arg)});
  }

  void rplaca(const Obj& target, const Obj& value) {
    emit(trace::Primitive::kRplaca, record(target),
         {record(target), record(value)});
  }

  void rplacd(const Obj& target, const Obj& value) {
    emit(trace::Primitive::kRplacd, record(target),
         {record(target), record(value)});
  }

  /// atom/null predicate (atom result).
  void predicate(trace::Primitive p, const Obj& arg) {
    emit(p, atom(), {record(arg)});
  }

  void equal(const Obj& a, const Obj& b) {
    emit(trace::Primitive::kEqual, atom(), {record(a), record(b)});
  }

  Obj append2(const Obj& a, const Obj& b) {
    const Obj result =
        fresh(clampShape(a.n + b.n), clampShape(a.p + b.p));
    emit(trace::Primitive::kAppend, record(result), {record(a), record(b)});
    return result;
  }

  // --- function texture ---------------------------------------------

  void enterFunction(std::uint32_t id, std::uint8_t argCount) {
    trace::Event event;
    event.kind = trace::EventKind::kFunctionEnter;
    event.functionId = id;
    event.argCount = argCount;
    sink_->append(event);
    ++stats_.events;
    ++stats_.functionCalls;
    callStack_.push_back(id);
    if (depth() > stats_.maxCallDepth) stats_.maxCallDepth = depth();
  }

  void exitFunction() {
    if (callStack_.empty()) {
      throw support::Error("family generator: function exit without enter");
    }
    trace::Event event;
    event.kind = trace::EventKind::kFunctionExit;
    event.functionId = callStack_.back();
    sink_->append(event);
    ++stats_.events;
    callStack_.pop_back();
  }

  /// Exit every open frame (end of generation).
  void unwindAll() {
    while (!callStack_.empty()) exitFunction();
  }

 private:
  static trace::ObjectRecord atom() { return trace::ObjectRecord{}; }

  static std::uint32_t clampShape(std::uint32_t value) {
    // Shapes feed LPT entry sizing; keep them in the few-hundreds so a
    // single pathological object cannot dominate a table statistic.
    return value > 400 ? 400 : value;
  }

  static trace::ObjectRecord record(const Obj& obj) {
    trace::ObjectRecord rec;
    rec.fingerprint = obj.fp;
    rec.n = obj.n;
    rec.p = obj.p;
    rec.isList = true;
    return rec;
  }

  void emit(trace::Primitive primitive, const trace::ObjectRecord& result,
            std::initializer_list<trace::ObjectRecord> args) {
    if (done()) return;
    scratch_.kind = trace::EventKind::kPrimitive;
    scratch_.primitive = primitive;
    scratch_.result = result;
    scratch_.args.assign(args.begin(), args.end());
    bool chained = false;
    for (const trace::ObjectRecord& arg : scratch_.args) {
      if (!arg.isList) continue;
      ++stats_.listArgs;
      stats_.sumN += arg.n;
      stats_.sumP += arg.p;
      if (lastResultIsList_ && arg.fingerprint == lastResultFp_) {
        chained = true;
      }
    }
    if (chained) {
      if (primitive == trace::Primitive::kCar) ++stats_.carChained;
      if (primitive == trace::Primitive::kCdr) ++stats_.cdrChained;
    }
    sink_->append(scratch_);
    ++stats_.events;
    ++stats_.primitives;
    ++stats_.perPrimitive[static_cast<std::size_t>(primitive)];
    lastResultFp_ = result.fingerprint;
    lastResultIsList_ = result.isList;
  }

  EventSink* sink_;
  std::uint64_t scale_;
  support::Rng rng_;
  FamilyStats stats_;
  std::vector<std::uint32_t> callStack_;
  std::uint64_t nextFp_ = 1;
  std::uint64_t lastResultFp_ = 0;
  bool lastResultIsList_ = false;
  trace::Event scratch_;
};

}  // namespace small::workloads::families::detail
