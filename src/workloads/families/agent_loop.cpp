// agent-loop: one long-lived environment, read-eval-mutate turns.
//
// The environment is an a-list: a cdr-linked spine whose cars are
// binding pairs. The generator keeps the most recent `envEntries` spine
// cells in a ring (older cells fall out of the window and are never
// referenced again, so residency is O(envEntries) at any scale). A turn
//   1. looks up a few bindings: a chained cdr walk down the spine from
//      the head, then car to the binding pair and car again to the
//      value (the a-list probe shape),
//   2. evaluates: conses a result structure off the looked-up values,
//      sometimes inside a nested tool-call frame,
//   3. with mutateProb rebinds a recent entry in place (rplacd on the
//      binding pair — tool-call-state churn),
//   4. with burstProb grows the environment by burstLength prepended
//      bindings (tool output entering scope), each prepend a cons of
//      (new pair, old head),
// and occasionally writes the turn's result out.
#include <deque>

#include "workloads/families/emitter.hpp"
#include "workloads/families/family.hpp"

namespace small::workloads::families::detail {

namespace {

class AgentLoop final : public Family {
 public:
  explicit AgentLoop(const FamilyConfig& config) : config_(config) {}

  FamilyKind kind() const override { return FamilyKind::kAgentLoop; }

  FamilyStats generate(EventSink& sink) override {
    Emitter e(sink, config_);
    const AgentLoopKnobs& k = config_.agentLoop;
    const std::uint32_t turnFn = sink.internFunction("agent-turn");
    const std::uint32_t lookupFn = sink.internFunction("env-lookup");
    const std::uint32_t toolFn = sink.internFunction("tool-call");
    const std::uint32_t planFn = sink.internFunction("plan-step");

    // Ring of spine cells, newest first; pairs_[i] is the binding pair
    // hanging off spine_[i]; values_[i] the bound value.
    std::deque<Obj> spine, pairs, values;
    const auto sizeTarget = static_cast<std::size_t>(k.envEntries);

    // Seed the environment: read the initial context, then cons up the
    // first bindings.
    Obj seed = e.read(8, 2);
    prepend(e, seed, spine, pairs, values, sizeTarget);
    while (spine.size() < sizeTarget && !e.done()) {
      prepend(e, values.front(), spine, pairs, values, sizeTarget);
    }

    while (!e.done()) {
      e.enterFunction(turnFn, 1);
      // An occasional deeper planning context so call depth has texture.
      std::uint32_t planFrames = 0;
      if (e.rng().chance(0.15)) {
        planFrames = 1 + static_cast<std::uint32_t>(e.rng().below(3));
        for (std::uint32_t i = 0; i < planFrames; ++i) {
          e.enterFunction(planFn, 2);
        }
      }

      // 1. Lookups.
      Obj lastValue = values.front();
      const std::uint64_t lookups = 1 + e.rng().below(3);
      for (std::uint64_t i = 0; i < lookups && !e.done(); ++i) {
        e.enterFunction(lookupFn, 2);
        const std::size_t target = pickRecent(e, spine.size());
        // assoc walk: cdr down the spine, probing keys along the way
        // (car to the pair, equal against the probe key) — the probes
        // are what keeps the walk from being a pure cdr chain.
        for (std::size_t d = 0; d + 1 <= target && !e.done(); ++d) {
          e.cdrTo(spine[d], spine[d + 1]);
          if (e.rng().chance(0.35)) {
            e.carList(spine[d + 1], pairs[d + 1]);
            if (e.rng().chance(0.5)) {
              e.equal(pairs[d + 1], pairs[target]);
            }
          }
        }
        e.carList(spine[target], pairs[target]);
        e.carList(pairs[target], values[target]);
        if (e.rng().chance(0.4)) {
          e.predicate(trace::Primitive::kNull, values[target]);
        }
        lastValue = values[target];
        e.exitFunction();
      }

      // 2. Evaluate: build a result structure off the last value.
      Obj result = lastValue;
      const bool toolCall = e.rng().chance(0.5);
      if (toolCall) e.enterFunction(toolFn, 2);
      const std::uint64_t builds = 2 + e.rng().below(5);
      for (std::uint64_t i = 0; i < builds && !e.done(); ++i) {
        result = e.rng().chance(0.8) ? e.consAtom(result)
                                     : e.cons(lastValue, result);
      }
      if (toolCall) {
        if (e.rng().chance(0.3)) e.equal(result, lastValue);
        e.exitFunction();
      }

      // 3. Mutate recent bindings in place (tool-call-state churn).
      if (e.rng().chance(k.mutateProb)) {
        const std::uint64_t rebinds = 1 + e.rng().below(4);
        for (std::uint64_t i = 0; i < rebinds && !e.done(); ++i) {
          const std::size_t target = pickRecent(e, spine.size());
          e.rplacd(pairs[target], result);
          values[target] = result;
        }
      }

      // 4. Bursty growth: tool output enters the environment.
      if (e.rng().chance(k.burstProb)) {
        for (std::uint64_t i = 0; i < k.burstLength && !e.done(); ++i) {
          const Obj payload = e.read(4 + e.rng().below(12), 1);
          prepend(e, payload, spine, pairs, values, sizeTarget);
        }
      }

      if (e.rng().chance(0.2) && !e.done()) e.writeOut(result);
      for (std::uint32_t i = 0; i < planFrames; ++i) e.exitFunction();
      e.exitFunction();
      e.noteLive(spine.size() * 3);  // spine cell + pair + value
    }
    e.unwindAll();
    return e.finish();
  }

 private:
  /// Recency-biased index: most lookups hit recent bindings, the tail
  /// still sees traffic (the long-lived-context part of the scenario).
  static std::size_t pickRecent(Emitter& e, std::size_t size) {
    const double u = e.rng().uniform();
    const double biased = u * u;  // quadratic bias toward 0 (the head)
    auto index = static_cast<std::size_t>(biased *
                                          static_cast<double>(size));
    return index >= size ? size - 1 : index;
  }

  /// Prepend a new binding for `value`: cons the pair, cons it onto the
  /// spine head, evict the oldest cell past the window.
  static void prepend(Emitter& e, const Obj& value, std::deque<Obj>& spine,
                      std::deque<Obj>& pairs, std::deque<Obj>& values,
                      std::size_t sizeTarget) {
    const Obj pair = e.consAtom(value);
    const Obj head = spine.empty() ? e.cons(pair, value)
                                   : e.cons(pair, spine.front());
    spine.push_front(head);
    pairs.push_front(pair);
    values.push_front(value);
    if (spine.size() > sizeTarget) {
      spine.pop_back();
      pairs.pop_back();
      values.pop_back();
    }
  }

  FamilyConfig config_;
};

}  // namespace

std::unique_ptr<Family> makeAgentLoop(const FamilyConfig& config) {
  return std::make_unique<AgentLoop>(config);
}

}  // namespace small::workloads::families::detail
