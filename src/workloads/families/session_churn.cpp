// session-churn: many short-lived environments at a high request rate.
//
// liveSessions sessions are alive at once; a scheduler visits them in
// randomized order, a few primitives per visit, so their accesses
// interleave the way concurrent request handling does. A session is
// born by reading its request and consing a handful of bindings, serves
// sessionOps shallow probes over its own small structure (car/cdr
// pairs, predicates, the odd rplaca and two-step cdr walk), then writes
// its response and dies, dropping everything it built — the generator
// forgets the objects, so residency is liveSessions * envBindings
// regardless of scale, and the trace is dominated by allocation and
// young, shallow accesses: the opposite pole from agent-loop's
// long-lived context.
//
// Function frames open and close within a single visit (`serve`) or
// birth (`open-session`), never across visits, so the global enter/exit
// stream stays balanced despite the interleaving.
#include <vector>

#include "workloads/families/emitter.hpp"
#include "workloads/families/family.hpp"

namespace small::workloads::families::detail {

namespace {

struct Session {
  std::vector<Obj> objs;        // everything this session built
  std::uint64_t opsLeft = 0;    // probe budget until it dies
};

class SessionChurn final : public Family {
 public:
  explicit SessionChurn(const FamilyConfig& config) : config_(config) {}

  FamilyKind kind() const override { return FamilyKind::kSessionChurn; }

  FamilyStats generate(EventSink& sink) override {
    Emitter e(sink, config_);
    const SessionChurnKnobs& k = config_.sessionChurn;
    const std::uint32_t openFn = sink.internFunction("open-session");
    const std::uint32_t serveFn = sink.internFunction("serve");
    const std::uint32_t closeFn = sink.internFunction("close-session");

    std::vector<Session> sessions(
        static_cast<std::size_t>(k.liveSessions));
    for (Session& session : sessions) {
      if (e.done()) break;
      birth(e, openFn, session, k);
    }

    while (!e.done()) {
      Session& session =
          sessions[e.rng().below(sessions.size())];
      e.enterFunction(serveFn, 1);
      const std::uint64_t ops = 1 + e.rng().below(4);
      for (std::uint64_t i = 0; i < ops && !e.done(); ++i) {
        probe(e, session);
        if (session.opsLeft > 0) --session.opsLeft;
      }
      e.exitFunction();
      if (session.opsLeft == 0 && !e.done()) {
        e.enterFunction(closeFn, 1);
        e.writeOut(session.objs.back());
        e.exitFunction();
        session.objs.clear();
        birth(e, openFn, session, k);
      }
    }
    e.unwindAll();
    return e.finish();
  }

 private:
  void birth(Emitter& e, std::uint32_t openFn, Session& session,
             const SessionChurnKnobs& k) {
    e.enterFunction(openFn, 1);
    Obj request = e.read(4 + e.rng().below(10), 1);
    session.objs.push_back(request);
    Obj env = request;
    for (std::uint64_t i = 0; i < k.envBindings && !e.done(); ++i) {
      env = e.consAtom(env);
      session.objs.push_back(env);
    }
    session.opsLeft = config_.sessionChurn.sessionOps;
    e.exitFunction();
    // Steady-state residency: every live session holds its request plus
    // envBindings cells (transient growth adds a few more).
    e.noteLive((k.envBindings + 1) * k.liveSessions);
  }

  void probe(Emitter& e, Session& session) {
    if (session.objs.empty()) return;
    // By value: the grow branch reallocates session.objs.
    const Obj obj = session.objs[e.rng().below(session.objs.size())];
    const double roll = e.rng().uniform();
    if (roll < 0.30) {
      // Short chained walk toward the request (cells were consed onto
      // each other, so "previous" objects are the cdr chain).
      const std::size_t at = indexOf(session, obj);
      if (at >= 1) {
        e.cdrTo(session.objs[at], session.objs[at - 1]);
        if (at >= 2 && e.rng().chance(0.6)) {
          e.cdrTo(session.objs[at - 1], session.objs[at - 2]);
        }
      } else {
        e.cdrNil(obj);
      }
    } else if (roll < 0.55) {
      e.carAtom(obj);
    } else if (roll < 0.70) {
      Obj grown = e.consAtom(obj);
      session.objs.push_back(grown);
      if (session.objs.size() > 24) {
        session.objs.erase(session.objs.begin());
      }
    } else if (roll < 0.80) {
      e.predicate(e.rng().chance(0.5) ? trace::Primitive::kNull
                                      : trace::Primitive::kAtom,
                  obj);
    } else if (roll < 0.90) {
      e.equal(obj, session.objs.front());
    } else {
      e.rplaca(obj, session.objs.front());
    }
  }

  static std::size_t indexOf(const Session& session, const Obj& obj) {
    for (std::size_t i = 0; i < session.objs.size(); ++i) {
      if (session.objs[i].fp == obj.fp) return i;
    }
    return 0;
  }

  FamilyConfig config_;
};

}  // namespace

std::unique_ptr<Family> makeSessionChurn(const FamilyConfig& config) {
  return std::make_unique<SessionChurn>(config);
}

}  // namespace small::workloads::families::detail
