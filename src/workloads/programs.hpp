// The five workload programs (§3.3.1).
//
// The thesis traces five real Lisp applications: SLANG (a circuit
// simulator), PLAGEN (a PLA generator), LYRA (a VLSI design-rule checker),
// EDITOR (the Interlisp TTY structure editor), and PEARL (an AI data
// representation package / small database). Those programs are not
// available, so this module provides five Lisp programs *in the same
// domains with the same access textures*, written in this repository's
// dialect:
//   * slang  — gate-level boolean simulator run on a BCD->decimal decoder,
//              cons-heavy (it builds waveform lists);
//   * plagen — PLA personality-matrix generator from sum-of-products
//              terms, balanced car/cdr with moderate cons;
//   * lyra   — rectangle design-rule checker (spacing/overlap), access
//              dominated, long car/cdr chains over nested geometry;
//   * editor — structure editor applying find/substitute/insert scripts to
//              a function body, deep lists, destructive rplaca;
//   * pearl  — record database on a-lists updated with rplacd, high
//              rplac fraction and almost no primitive chaining.
// A shared prelude defines the list library (append, reverse, assoc, ...)
// in Lisp itself so library operations expand into traced car/cdr/cons
// streams, as they did in the thesis' interpreted Franz Lisp.
#pragma once

#include <string_view>
#include <vector>

namespace small::workloads {

enum class Workload { kSlang, kPlagen, kLyra, kEditor, kPearl };

inline constexpr Workload kAllWorkloads[] = {
    Workload::kSlang, Workload::kPlagen, Workload::kLyra, Workload::kEditor,
    Workload::kPearl};

const char* workloadName(Workload workload);

/// The shared Lisp list library.
std::string_view preludeSource();

/// The program text for a workload.
std::string_view programSource(Workload workload);

/// The driver form(s) evaluated to run the workload at `scale` (> 0);
/// scale multiplies the input size / iteration count. Fractional scales
/// are honored: each scaled count is rounded to the nearest integer and
/// clamped to at least 1, so e.g. 0.5 halves the run instead of silently
/// clamping to the full-size trace.
std::string driverSource(Workload workload, double scale = 1.0);

}  // namespace small::workloads
