// Run a workload program under the tracer and collect its trace.
#pragma once

#include "trace/trace.hpp"
#include "workloads/programs.hpp"

namespace small::workloads {

struct RunOptions {
  double scale = 1.0;           ///< input-size / iteration multiplier;
                                ///< fractional values shrink the run
                                ///< (driverSource rounds, floor 1)
  bool includePrelude = true;   ///< load the Lisp list library first
};

/// Execute the workload in a fresh interpreter with the trace hook
/// attached; returns the recorded trace (named after the workload).
trace::Trace runWorkload(Workload workload, const RunOptions& options = {});

}  // namespace small::workloads
