#include "workloads/driver.hpp"

#include "lisp/interpreter.hpp"
#include "lisp/tracer.hpp"

namespace small::workloads {

trace::Trace runWorkload(Workload workload, const RunOptions& options) {
  sexpr::SymbolTable symbols;
  sexpr::Arena arena;
  lisp::Interpreter interpreter(arena, symbols);

  trace::Trace trace;
  trace.name = workloadName(workload);
  lisp::TraceRecorder recorder(arena, trace);
  interpreter.setTracer(&recorder);

  if (options.includePrelude) {
    interpreter.run(preludeSource());
  }
  interpreter.run(programSource(workload));
  interpreter.run(driverSource(workload, options.scale));
  return trace;
}

}  // namespace small::workloads
