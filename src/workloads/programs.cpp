#include "workloads/programs.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "support/error.hpp"

namespace small::workloads {

const char* workloadName(Workload workload) {
  switch (workload) {
    case Workload::kSlang: return "Slang";
    case Workload::kPlagen: return "PlaGen";
    case Workload::kLyra: return "Lyra";
    case Workload::kEditor: return "Editor";
    case Workload::kPearl: return "Pearl";
  }
  return "?";
}

std::string_view preludeSource() {
  // The list library is written in Lisp so that every library operation
  // expands into the car/cdr/cons primitive stream the tracer records.
  static constexpr std::string_view kPrelude = R"lisp(
(defun caddr (x) (car (cddr x)))
(defun cadddr (x) (car (cdr (cddr x))))

(defun len (l)
  (cond ((null l) 0)
        (t (+ 1 (len (cdr l))))))

(defun app2 (a b)
  (cond ((null a) b)
        (t (cons (car a) (app2 (cdr a) b)))))

(defun rev (l)
  (prog (acc)
    loop
    (cond ((null l) (return acc)))
    (setq acc (cons (car l) acc))
    (setq l (cdr l))
    (go loop)))

(defun nth-elt (n l)
  (cond ((zerop n) (car l))
        (t (nth-elt (- n 1) (cdr l)))))

(defun assq (k al)
  (cond ((null al) nil)
        ((equal (caar al) k) (car al))
        (t (assq k (cdr al)))))

(defun memq (x l)
  (cond ((null l) nil)
        ((equal (car l) x) l)
        (t (memq x (cdr l)))))

(defun last-cell (l)
  (cond ((null (cdr l)) l)
        (t (last-cell (cdr l)))))

(defun copy-list (l)
  (cond ((atom l) l)
        (t (cons (copy-list (car l)) (copy-list (cdr l))))))
)lisp";
  return kPrelude;
}

namespace {

// --- SLANG: gate-level boolean simulator -------------------------------
// Gates are (type out in1 in2); wires are symbols bound in an a-list
// environment of (wire value) pairs. The circuit is a BCD-to-decimal
// decoder, evaluated over all 16 input vectors; each vector's output
// environment is consed onto the waveform list (the thesis notes SLANG has
// the highest cons share of the suite).
constexpr std::string_view kSlang = R"lisp(
(defun b-not (a) (- 1 a))
(defun b-and (a b) (* a b))
(defun b-or (a b) (cond ((equal (+ a b) 0) 0) (t 1)))
(defun b-xor (a b) (rem (+ a b) 2))

(defun wire-val (w env)
  (cond ((numberp w) w)
        (t (cadr (assq w env)))))

(defun gate-eval (g env)
  (cond ((equal (car g) (quote inv))
         (b-not (wire-val (caddr g) env)))
        ((equal (car g) (quote and2))
         (b-and (wire-val (caddr g) env) (wire-val (cadddr g) env)))
        ((equal (car g) (quote or2))
         (b-or (wire-val (caddr g) env) (wire-val (cadddr g) env)))
        ((equal (car g) (quote xor2))
         (b-xor (wire-val (caddr g) env) (wire-val (cadddr g) env)))
        (t 0)))

(defun sim-gates (gates env)
  (cond ((null gates) env)
        (t (sim-gates (cdr gates)
                      (cons (list (cadr (car gates))
                                  (gate-eval (car gates) env))
                            env)))))

(defun bits4 (n)
  (list (list (quote a) (rem (/ n 8) 2))
        (list (quote b) (rem (/ n 4) 2))
        (list (quote c) (rem (/ n 2) 2))
        (list (quote d) (rem n 2))))

(setq decoder
  (quote ((inv na a 0) (inv nb b 0) (inv nc c 0) (inv nd d 0)
          (and2 t0 na nb) (and2 t1 na b) (and2 t2 a nb) (and2 t3 a b)
          (and2 u0 nc nd) (and2 u1 nc d) (and2 u2 c nd) (and2 u3 c d)
          (and2 o0 t0 u0) (and2 o1 t0 u1) (and2 o2 t0 u2) (and2 o3 t0 u3)
          (and2 o4 t1 u0) (and2 o5 t1 u1) (and2 o6 t1 u2) (and2 o7 t1 u3)
          (and2 o8 t2 u0) (and2 o9 t2 u1)
          (or2 valid o8 o9) (xor2 parity o1 o2))))

(defun probe (env outs acc)
  (cond ((null outs) acc)
        (t (probe env (cdr outs)
                  (cons (list (car outs)
                              (cadr (assq (car outs) env)))
                        acc)))))

(defun run-vector (n)
  (probe (sim-gates decoder (bits4 n))
         (quote (o0 o1 o2 o3 o4 o5 o6 o7 o8 o9 valid parity))
         nil))

(defun run-vectors (n acc)
  (cond ((< n 0) acc)
        (t (run-vectors (- n 1)
                        (cons (run-vector (rem n 16))
                              (app2 (run-vector (rem (+ n 1) 16)) acc))))))
)lisp";

// --- PLAGEN: PLA personality-matrix generator ---------------------------
// Sum-of-products terms become AND-plane rows over the input variables
// (1 / 0 / x per variable) and OR-plane rows over the outputs; duplicate
// rows merge, which costs `equal` scans over the matrix built so far.
constexpr std::string_view kPlagen = R"lisp(
(defun polarity (var term)
  (cond ((null term) (quote x))
        ((equal (caar term) var) (cadr (car term)))
        (t (polarity var (cdr term)))))

(defun and-row (vars term)
  (cond ((null vars) nil)
        (t (cons (polarity (car vars) term)
                 (and-row (cdr vars) term)))))

(defun or-row (outs out)
  (cond ((null outs) nil)
        ((equal (car outs) out) (cons 1 (or-row (cdr outs) out)))
        (t (cons 0 (or-row (cdr outs) out)))))

(defun find-row (row matrix)
  (cond ((null matrix) nil)
        ((equal (caar matrix) row) (car matrix))
        (t (find-row row (cdr matrix)))))

(defun add-term (vars outs term out matrix)
  (prog (row hit)
    (setq row (and-row vars term))
    (setq hit (find-row row matrix))
    (cond ((null hit)
           (return (cons (list row (or-row outs out)) matrix))))
    (rplacd hit (cons (or-row outs out) (cdr hit)))
    (return matrix)))

(defun gen-pla (vars outs terms matrix)
  (cond ((null terms) matrix)
        (t (gen-pla vars outs (cdr terms)
                    (add-term vars outs
                              (cadr (car terms)) (caar terms) matrix)))))

(setq tl-vars (quote (c0 c1 tl ts)))
(setq tl-outs (quote (hg hy fg fy st0 st1)))

; Traffic-light controller terms (Mead & Conway's PLA example): each is
; (output ((var value) ...)).
(setq tl-terms
  (quote ((hg ((c0 0) (c1 0)))
          (hg ((tl 0) (c0 1)))
          (hg ((tl 0) (c1 1)))
          (hy ((c0 1) (c1 0) (tl 1)))
          (hy ((ts 0) (c0 0)))
          (fg ((c0 1) (c1 1) (tl 0)))
          (fg ((ts 1) (c1 0)))
          (fy ((tl 1) (ts 1)))
          (fy ((c0 0) (ts 0)))
          (st0 ((c0 1) (tl 1)))
          (st0 ((c1 1) (ts 0)))
          (st1 ((ts 1) (tl 0)))
          (st1 ((c0 0) (c1 1))))))

(defun gen-many (k acc)
  (cond ((zerop k) acc)
        (t (gen-many (- k 1) (gen-pla tl-vars tl-outs tl-terms nil)))))
)lisp";

// --- LYRA: rectangle design-rule checker --------------------------------
// Rectangles are (layer x1 y1 x2 y2); the checker walks all pairs on the
// same layer testing minimum spacing, and each rectangle for minimum
// width — long car/cdr chains over nested geometry, few conses.
constexpr std::string_view kLyra = R"lisp(
(defun rect-layer (r) (car r))
(defun rect-x1 (r) (cadr r))
(defun rect-y1 (r) (caddr r))
(defun rect-x2 (r) (cadddr r))
(defun rect-y2 (r) (car (cddr (cddr r))))

(defun abs-val (x) (cond ((< x 0) (- 0 x)) (t x)))
(defun max2 (a b) (cond ((> a b) a) (t b)))
(defun min2 (a b) (cond ((< a b) a) (t b)))

(defun gap-1d (a1 a2 b1 b2)
  (max2 (- b1 a2) (- a1 b2)))

(defun spacing-ok (a b minsep)
  (cond ((> (gap-1d (rect-x1 a) (rect-x2 a) (rect-x1 b) (rect-x2 b))
            (- minsep 1)) t)
        ((> (gap-1d (rect-y1 a) (rect-y2 a) (rect-y1 b) (rect-y2 b))
            (- minsep 1)) t)
        (t nil)))

(defun width-ok (r minw)
  (cond ((< (- (rect-x2 r) (rect-x1 r)) minw) nil)
        ((< (- (rect-y2 r) (rect-y1 r)) minw) nil)
        (t t)))

(defun check-pair (a b viols)
  (cond ((null (equal (rect-layer a) (rect-layer b))) viols)
        ((spacing-ok a b 2) viols)
        (t (cons (list (quote spacing) a b) viols))))

(defun check-against (r rest viols)
  (cond ((null rest) viols)
        (t (check-against r (cdr rest)
                          (check-pair r (car rest) viols)))))

(defun check-rects (rects viols)
  (cond ((null rects) viols)
        (t (check-rects
             (cdr rects)
             (check-against (car rects) (cdr rects)
                            (cond ((width-ok (car rects) 2) viols)
                                  (t (cons (list (quote width) (car rects))
                                           viols))))))))

(defun rect-for (k)
  (list (cond ((zerop (rem k 3)) (quote poly))
              ((zerop (rem k 2)) (quote metal))
              (t (quote diff)))
        (* (rem k 7) 4)
        (* (rem k 5) 4)
        (+ (* (rem k 7) 4) (+ 1 (rem k 3)))
        (+ (* (rem k 5) 4) (+ 1 (rem k 4)))))

(defun make-rects (k acc)
  (cond ((zerop k) acc)
        (t (make-rects (- k 1) (cons (rect-for k) acc)))))

(defun check-chip (k)
  (check-rects (make-rects k nil) nil))
)lisp";

// --- EDITOR: structure editor over a function body ----------------------
// An Interlisp-style editing session: locate symbols at depth, rebuild
// with substitutions (pure), and patch in place with rplaca (destructive),
// over a deep nested body — the thesis' Editor works on by far the
// longest, deepest lists of the suite (Table 3.1).
constexpr std::string_view kEditor = R"lisp(
(defun subst-all (old new expr)
  (cond ((equal expr old) new)
        ((atom expr) expr)
        (t (cons (subst-all old new (car expr))
                 (subst-all old new (cdr expr))))))

(defun count-sym (sym expr)
  (cond ((equal expr sym) 1)
        ((atom expr) 0)
        (t (+ (count-sym sym (car expr))
              (count-sym sym (cdr expr))))))

(defun nsubst-top (old new expr)
  (prog (cursor)
    (setq cursor expr)
    loop
    (cond ((atom cursor) (return expr)))
    (cond ((equal (car cursor) old) (rplaca cursor new)))
    (setq cursor (cdr cursor))
    (go loop)))

(defun find-sub (sym expr)
  (cond ((atom expr) nil)
        ((memq sym expr) expr)
        (t (or (find-sub sym (car expr))
               (find-sub sym (cdr expr))))))

(defun deepen (expr k)
  (cond ((zerop k) expr)
        (t (deepen (list (quote let)
                         (list (list (quote g) expr))
                         (list (quote use) (quote g) expr))
                   (- k 1)))))

(setq fn-body
  (quote
    (defun walk (tree acc)
      (cond ((null tree) acc)
            ((atom tree) (cons tree acc))
            (t (walk (car tree) (walk (cdr tree) acc)))))))

(defun edit-session (k)
  (prog (body trash)
    (setq body (copy-list fn-body))
    (setq body (deepen body 6))
    loop
    (cond ((zerop k) (return (count-sym (quote fringe) body))))
    (setq body (subst-all (quote tree) (quote subtree) body))
    (setq body (subst-all (quote subtree) (quote tree) body))
    (setq trash (find-sub (quote acc) body))
    (setq trash (nsubst-top (quote cons) (quote xcons) trash))
    (setq trash (nsubst-top (quote xcons) (quote cons) trash))
    (setq k (- k 1))
    (go loop)))
)lisp";

// --- PEARL: record database on association structure ---------------------
// Records are (key (slot value) ...); updates rewrite slot cells with
// rplacd — Pearl's hallmark is a high rplaca/rplacd share and almost no
// primitive chaining (its hunks were direct-access structures).
constexpr std::string_view kPearl = R"lisp(
(defun make-record (k)
  (list k
        (list (quote name) k)
        (list (quote score) 0)
        (list (quote hits) 0)))

(defun db-insert (db rec) (cons rec db))

(defun db-find (db k) (assq k db))

(defun slot-cell (rec slot)
  (assq slot (cdr rec)))

(defun slot-set (rec slot val)
  (rplacd (slot-cell rec slot) (cons val nil)))

(defun slot-get (rec slot)
  (cadr (slot-cell rec slot)))

(defun db-build (k db)
  (cond ((zerop k) db)
        (t (db-build (- k 1) (db-insert db (make-record k))))))

(defun db-bump (db k stamp)
  (prog (rec)
    (setq rec (db-find db k))
    (cond ((null rec) (return nil)))
    (slot-set rec (quote score) (+ (slot-get rec (quote score)) 10))
    (slot-set rec (quote hits) stamp)
    (slot-set rec (quote name) k)
    (return rec)))

(defun db-workout (db n size)
  (cond ((zerop n) db)
        (t (progn
             (db-bump db (+ 1 (rem n size)) n)
             (db-workout db (- n 1) size)))))

(defun pearl-run (size rounds)
  (prog (db)
    (setq db (db-build size nil))
    (db-workout db rounds size)
    (return (len db))))
)lisp";

}  // namespace

std::string_view programSource(Workload workload) {
  switch (workload) {
    case Workload::kSlang: return kSlang;
    case Workload::kPlagen: return kPlagen;
    case Workload::kLyra: return kLyra;
    case Workload::kEditor: return kEditor;
    case Workload::kPearl: return kPearl;
  }
  throw support::Error("programSource: bad workload");
}

std::string driverSource(Workload workload, double scale) {
  // Scale each base count here (rounded, floor 1) and emit the literal, so
  // fractional scales shrink the run instead of truncating to 1x. Arithmetic
  // is untraced either way, so the emitted form does not perturb the trace.
  const auto scaled = [scale](long base) {
    return std::to_string(
        std::max(1l, std::lround(static_cast<double>(base) * scale)));
  };
  switch (workload) {
    case Workload::kSlang:
      return "(write (len (run-vectors " + scaled(5) + " nil)))";
    case Workload::kPlagen:
      return "(write (len (gen-many " + scaled(24) + " nil)))";
    case Workload::kLyra:
      return "(write (len (check-chip " + scaled(120) + ")))";
    case Workload::kEditor:
      return "(write (edit-session " + scaled(1) + "))";
    case Workload::kPearl:
      return "(write (pearl-run 8 " + scaled(24) + "))";
  }
  throw support::Error("driverSource: bad workload");
}

}  // namespace small::workloads
