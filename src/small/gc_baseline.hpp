// The LPT reference-counting baseline for the gc comparison: replay a
// gc::Script (the shared mutator contract documented in gc/script.hpp)
// against core::Lpt's lazy-decrement discipline, entry-for-cell. Root
// slots hold counted references (incRef on bind, decRef on displace),
// cell edges are LPT car/cdr edges, and atoms map to absent edges — so
// the entry graph is isomorphic to the collectors' cell graphs and the
// final live sets must agree exactly.
//
// The run finishes with settleLazyFrees (performing the §4.3.2.1 deferred
// child decrements now) followed by recoverCycles from the root slots,
// after which inUseCount() is plain root-reachability — the ground truth
// bench/gc_comparison and the differential tests hold every collector to.
#pragma once

#include <cstdint>
#include <vector>

#include "gc/script.hpp"
#include "small/lpt.hpp"

namespace small::core {

struct GcBaselineResult {
  std::uint64_t finalLiveEntries = 0;
  /// Entries reachable per root slot, in slot order (matches
  /// gc::ScriptResult::rootReachable for an isomorphic run).
  std::vector<std::uint64_t> rootReachable;
  std::uint64_t cycleReclaimed = 0;   ///< entries freed by recoverCycles
  std::uint64_t lazySettled = 0;      ///< deferred edges released at the end
  LptStats lptStats;
};

/// Replay `script` over a fresh lazy-policy Lpt sized from the script's
/// allocation bound.
GcBaselineResult runScriptOnLpt(const gc::Script& script);

}  // namespace small::core
