#include "small/machine_replay.hpp"

#include <algorithm>

#include "trace/binary.hpp"

namespace small::core {

using trace::EventKind;
using trace::PreprocessedEvent;
using trace::Primitive;

namespace {

/// Deterministic s-expression of the recorded (n, p) shape: n symbols
/// distributed over p nested sublists. No randomness — the same shape
/// yields the same structure on every backend and every run.
sexpr::NodeRef synthesizeShape(sexpr::Arena& arena, std::uint32_t n,
                               std::uint32_t p) {
  n = std::max(n, 1u);
  sexpr::NodeRef list = sexpr::kNilRef;
  if (p > 0 && n >= 2) {
    const std::uint32_t inner = n / 2;
    sexpr::NodeRef sub = synthesizeShape(arena, inner, p - 1);
    for (std::uint32_t i = n - inner; i-- > 0;) {
      list = arena.cons(arena.symbol(static_cast<sexpr::SymbolId>(i % 7)),
                        list);
    }
    return arena.cons(sub, list);
  }
  for (std::uint32_t i = n; i-- > 0;) {
    list = arena.cons(arena.symbol(static_cast<sexpr::SymbolId>(i % 7)),
                      list);
  }
  return list;
}

// Event-at-a-time replay core: the whole-trace and streaming entry
// points below differ only in how they iterate events into feed().
class Replayer {
 public:
  explicit Replayer(const ReplayConfig& config,
                    const ReplayHook* hook = nullptr)
      : config_(config), rng_(config.seed), machine_(config.machine) {
    if (hook != nullptr && hook->onMachineReady) {
      hook->onMachineReady(machine_);
    }
    if (hook != nullptr && hook->everyPrimitives > 0 && hook->onPrimitives) {
      hook_ = hook;
    }
    frames_.push_back(Frame{0, 0});  // top level
  }

  void feed(const PreprocessedEvent& event) {
    switch (event.kind) {
      case EventKind::kFunctionEnter:
        onFunctionEnter(event);
        break;
      case EventKind::kFunctionExit:
        onFunctionExit();
        break;
      case EventKind::kPrimitive:
        onPrimitive(event);
        break;
    }
  }

  ReplayResult finish() {
    // Shutdown: unwind every frame and drain the free queue. Whatever
    // stays in the table is cyclic structure from rplac traffic.
    while (!stack_.empty()) {
      machine_.release(stack_.back().value);
      stack_.pop_back();
    }
    machine_.serviceAllHeapFrees();

    ReplayResult result;
    result.backend = machine_.heap().name();
    result.machine = machine_.stats();
    result.heap = machine_.heapStats();
    result.primitives = primitives_;
    result.functionCalls = functionCalls_;
    result.residualEntries = machine_.entriesInUse();
    result.residualHeapCells = machine_.heapCellsLive();
    result.gcStats = machine_.gcStats();
    return result;
  }

 private:
  using Value = SmallMachine::Value;

  struct Item {
    Value value;
    bool isArgument = false;
    bool isTemp = false;
  };

  struct Frame {
    std::size_t base = 0;
    std::uint8_t argCount = 0;
  };

  Value freshList(std::uint32_t n, std::uint32_t p) {
    sexpr::Arena arena;
    const std::uint32_t capped = std::min(
        std::max(n, 1u), std::max(config_.maxShapeSymbols, 1u));
    return machine_.readList(arena,
                             synthesizeShape(arena, capped, std::min(p, 4u)));
  }

  std::optional<std::size_t> pickListItem(std::size_t lo, std::size_t hi) {
    std::optional<std::size_t> chosen;
    std::uint64_t seen = 0;
    for (std::size_t i = lo; i < hi; ++i) {
      if (!stack_[i].value.isObject()) continue;
      ++seen;
      if (rng_.below(seen) == 0) chosen = i;
    }
    return chosen;
  }

  void onFunctionEnter(const PreprocessedEvent& event) {
    ++functionCalls_;
    const std::size_t base = stack_.size();
    for (std::uint8_t i = 0; i < event.argCount; ++i) {
      Item item;
      item.isArgument = true;
      const std::optional<std::size_t> older = pickListItem(0, base);
      if (older && rng_.chance(0.7)) {
        item.value = stack_[*older].value;
        machine_.retain(item.value);
      }
      stack_.push_back(item);
    }
    const auto locals = static_cast<std::uint32_t>(rng_.below(3));
    for (std::uint32_t i = 0; i < locals; ++i) {
      stack_.push_back(Item{});
    }
    frames_.push_back(Frame{base, event.argCount});
  }

  void onFunctionExit() {
    if (frames_.size() <= 1) return;
    const Frame frame = frames_.back();
    frames_.pop_back();
    while (stack_.size() > frame.base) {
      machine_.release(stack_.back().value);
      stack_.pop_back();
    }
  }

  std::optional<std::size_t> selectArgument(const PreprocessedEvent& event,
                                            bool* consumedTemp) {
    *consumedTemp = false;
    bool chained = false;
    for (const trace::PreprocessedObject& arg : event.args) {
      if (arg.id != trace::kNoObject) {
        chained = arg.chained;
        break;
      }
    }
    if (chained && !stack_.empty() && stack_.back().isTemp &&
        stack_.back().value.isObject()) {
      *consumedTemp = true;
      return stack_.size() - 1;
    }

    const Frame& frame = frames_.back();
    const double u = rng_.uniform();
    std::optional<std::size_t> choice;
    if (u < config_.argProb) {
      choice = pickListItem(frame.base, frame.base + frame.argCount);
    } else if (u < config_.argProb + config_.locProb) {
      choice = pickListItem(frame.base + frame.argCount, stack_.size());
    } else {
      choice = pickListItem(0, frame.base);
    }
    if (!choice) choice = pickListItem(0, stack_.size());
    return choice;
  }

  void disposeValue(Item value) {
    const bool topLevelPressure =
        frames_.size() == 1 && stack_.size() >= config_.topLevelStackBound;
    if (!stack_.empty() &&
        (topLevelPressure || rng_.chance(config_.bindProb))) {
      const std::size_t index = rng_.below(stack_.size());
      machine_.release(stack_[index].value);
      value.isArgument = stack_[index].isArgument;
      value.isTemp = stack_[index].isTemp;
      stack_[index] = value;
      return;
    }
    value.isArgument = false;
    value.isTemp = true;
    stack_.push_back(value);
  }

  void onPrimitive(const PreprocessedEvent& event) {
    ++primitives_;
    // The hook fires between events and never draws from rng_, so the
    // replay's own event sequence (and ReplayResult) is unaffected.
    if (hook_ != nullptr && primitives_ % hook_->everyPrimitives == 0) {
      hook_->onPrimitives(primitives_);
    }

    if (event.primitive == Primitive::kRead) {
      Item item;
      item.value = freshList(event.result.n, event.result.p);
      disposeValue(item);
      return;
    }

    bool consumedTemp = false;
    std::optional<std::size_t> argIndex =
        selectArgument(event, &consumedTemp);
    if (!argIndex) {
      // No list value on the stack: materialize the recorded shape.
      const std::uint32_t n = event.args.empty() ? 1 : event.args[0].n;
      const std::uint32_t p = event.args.empty() ? 0 : event.args[0].p;
      Item item;
      item.value = freshList(n, p);
      stack_.push_back(item);
      argIndex = stack_.size() - 1;
    }

    // ReadProb: the variable was re-read since last access.
    if (!consumedTemp && rng_.chance(config_.readProb)) {
      Item& item = stack_[*argIndex];
      if (item.value.isObject()) {
        const std::uint32_t n = event.args.empty() ? 1 : event.args[0].n;
        const std::uint32_t p = event.args.empty() ? 0 : event.args[0].p;
        machine_.release(item.value);
        item.value = freshList(n, p);
      }
    }

    const Value arg = stack_[*argIndex].value;
    auto finishTemp = [&] {
      if (consumedTemp) {
        machine_.release(stack_.back().value);
        stack_.pop_back();
      }
    };

    switch (event.primitive) {
      case Primitive::kCar:
      case Primitive::kCdr: {
        Item item;
        if (arg.isObject() || arg.kind == Value::Kind::kNil) {
          item.value = event.primitive == Primitive::kCar
                           ? machine_.car(arg)
                           : machine_.cdr(arg);
        }  // car/cdr of a non-nil atom: nil result, no machine activity
        finishTemp();
        disposeValue(item);
        break;
      }
      case Primitive::kCons:
      case Primitive::kAppend: {
        const std::optional<std::size_t> other =
            pickListItem(0, stack_.size());
        const Value tail = other ? stack_[*other].value : arg;
        Item item;
        item.value = machine_.cons(arg, tail);
        finishTemp();
        disposeValue(item);
        break;
      }
      case Primitive::kRplaca:
      case Primitive::kRplacd: {
        if (arg.isObject()) {
          const std::optional<std::size_t> other =
              pickListItem(0, stack_.size());
          if (other) {
            if (event.primitive == Primitive::kRplaca) {
              machine_.rplaca(arg, stack_[*other].value);
            } else {
              machine_.rplacd(arg, stack_[*other].value);
            }
          }
        }
        // rplac returns its (modified) first argument.
        Item item;
        item.value = arg;
        machine_.retain(item.value);
        finishTemp();
        disposeValue(item);
        break;
      }
      case Primitive::kAtom:
      case Primitive::kNull:
      case Primitive::kEqual:
      case Primitive::kWrite: {
        finishTemp();
        disposeValue(Item{});  // predicates produce atoms
        break;
      }
      case Primitive::kRead:
        break;  // handled above
    }
  }

  ReplayConfig config_;
  support::Rng rng_;
  SmallMachine machine_;
  std::vector<Item> stack_;
  std::vector<Frame> frames_;
  std::uint64_t primitives_ = 0;
  std::uint64_t functionCalls_ = 0;
  const ReplayHook* hook_ = nullptr;
};

}  // namespace

namespace {

ReplayResult replayTraceImpl(const ReplayConfig& config,
                             const trace::PreprocessedTrace& trace,
                             const ReplayHook* hook) {
  Replayer replayer(config, hook);
  for (const PreprocessedEvent& event : trace.events) {
    replayer.feed(event);
  }
  return replayer.finish();
}

ReplayResult replayMappedTraceImpl(const ReplayConfig& config,
                                   const trace::MappedTrace& mapped,
                                   std::size_t batchSize,
                                   const ReplayHook* hook) {
  Replayer replayer(config, hook);
  trace::Preprocessor preprocessor;
  trace::BinaryDecoder decoder(mapped);
  // Two caller-owned buffers, reused every batch: raw events decoded from
  // the mapping, and their preprocessed forms. Steady state allocates
  // nothing, independent of trace length.
  std::vector<trace::Event> raw(std::max<std::size_t>(batchSize, 1));
  std::vector<PreprocessedEvent> pre(raw.size());
  for (std::size_t k = decoder.decodeBatch(raw); k != 0;
       k = decoder.decodeBatch(raw)) {
    for (std::size_t i = 0; i < k; ++i) {
      preprocessor.process(raw[i], pre[i]);
      replayer.feed(pre[i]);
    }
  }
  return replayer.finish();
}

}  // namespace

ReplayResult replayTrace(const ReplayConfig& config,
                         const trace::PreprocessedTrace& trace) {
  return replayTraceImpl(config, trace, nullptr);
}

ReplayResult replayTrace(const ReplayConfig& config,
                         const trace::PreprocessedTrace& trace,
                         const ReplayHook& hook) {
  return replayTraceImpl(config, trace, &hook);
}

ReplayResult replayMappedTrace(const ReplayConfig& config,
                               const trace::MappedTrace& mapped,
                               std::size_t batchSize) {
  return replayMappedTraceImpl(config, mapped, batchSize, nullptr);
}

ReplayResult replayMappedTrace(const ReplayConfig& config,
                               const trace::MappedTrace& mapped,
                               std::size_t batchSize,
                               const ReplayHook& hook) {
  return replayMappedTraceImpl(config, mapped, batchSize, &hook);
}

}  // namespace small::core
