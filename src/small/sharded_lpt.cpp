#include "small/sharded_lpt.hpp"

#include "support/error.hpp"

namespace small::core {

using support::SimulationError;

ShardedLpt::ShardedLpt(std::uint32_t shardCount, std::uint32_t shardSize,
                       ReclaimPolicy reclaim) {
  if (shardCount == 0) {
    throw SimulationError("ShardedLpt: zero shards");
  }
  shards_.reserve(shardCount);
  for (std::uint32_t i = 0; i < shardCount; ++i) {
    shards_.push_back(std::make_unique<Shard>(shardSize, reclaim));
  }
}

ShardedLpt::Shard& ShardedLpt::at(std::uint32_t shard) {
  if (shard >= shards_.size()) {
    throw SimulationError("ShardedLpt: bad shard index");
  }
  return *shards_[shard];
}

const ShardedLpt::Shard& ShardedLpt::at(std::uint32_t shard) const {
  if (shard >= shards_.size()) {
    throw SimulationError("ShardedLpt: bad shard index");
  }
  return *shards_[shard];
}

ShardedLpt::Guard ShardedLpt::lock(std::uint32_t shard) {
  Shard& s = at(shard);
  s.acquisitions.fetch_add(1, std::memory_order_relaxed);
  std::unique_lock<std::mutex> held(s.mu, std::try_to_lock);
  if (!held.owns_lock()) {
    // Someone else holds the shard: count the contention, then block.
    s.contended.fetch_add(1, std::memory_order_relaxed);
    held.lock();
  }
  return Guard(std::move(held), &s.lpt);
}

std::uint64_t ShardedLpt::acquisitions(std::uint32_t shard) const {
  return at(shard).acquisitions.load(std::memory_order_relaxed);
}

std::uint64_t ShardedLpt::contended(std::uint32_t shard) const {
  return at(shard).contended.load(std::memory_order_relaxed);
}

Lpt& ShardedLpt::quiescedShard(std::uint32_t shard) {
  return at(shard).lpt;
}

}  // namespace small::core
