// A functional SMALL memory system: a real LPT over a real heap
// (Chapter 4 executed, rather than statistically simulated). The heap is
// any of the Chapter 2 representations behind the heap::HeapBackend
// interface — two-pointer cells by default, cdr-coded or linked-vector by
// Config — and the machine never sees representation detail.
//
// Where `ListProcessor` models object shapes and addresses to drive the
// Chapter 5 measurements, `SmallMachine` actually stores list structure:
// readlist materializes an s-expression into heap cells, car/cdr split
// real heap objects on demand and cache the edges in LPT fields, cons
// builds endo-structure that exists only in the table, compression merges
// it back into heap cells (Fig 4.8 with real data), and writelist
// materializes any value back into an s-expression. The machine is the
// substrate the §4.3.4 emulator "traces the LPT and the heap" against,
// and the differential tests check it against plain s-expression
// semantics operation by operation.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "gc/gc.hpp"
#include "heap/backend.hpp"
#include "sexpr/arena.hpp"
#include "small/config.hpp"
#include "support/error.hpp"

namespace small::core {

class SmallMachine {
 public:
  /// The EP's view of a value: an immediate atom or an LPT identifier.
  struct Value {
    enum class Kind : std::uint8_t { kNil, kSymbol, kInteger, kObject };
    Kind kind = Kind::kNil;
    std::uint64_t payload = 0;  ///< symbol id / integer bits
    std::uint32_t id = 0;       ///< LPT identifier when kObject

    static Value nil() { return {}; }
    static Value symbol(std::uint64_t s) { return {Kind::kSymbol, s, 0}; }
    static Value integer(std::int64_t v) {
      return {Kind::kInteger, static_cast<std::uint64_t>(v), 0};
    }
    bool isObject() const { return kind == Kind::kObject; }
  };

  struct Config {
    std::uint32_t tableSize = 1024;
    CompressionPolicy compression = CompressionPolicy::kCompressOne;
    /// §4.3.3.1: pending heap free requests are queued and serviced in
    /// batches; the bounded queue is the LP->heap flow control.
    std::size_t freeQueueLimit = 32;
    /// Which Chapter 2 list representation backs the heap. The machine's
    /// logic (and its representation-independent counters) is identical
    /// across backends; only the physical heap activity differs.
    heap::HeapBackendKind heapBackend = heap::HeapBackendKind::kTwoPointer;
    heap::HeapBackendOptions heapOptions;
    /// Heap reclamation discipline. kNone is the paper's machine: counts
    /// reaching zero queue eager heap frees (§4.3.3.1). The collector
    /// policies drop those frees and reclaim from the table's address
    /// words at operation-boundary safepoints instead (counters in
    /// gcStats()):
    ///   - kMarkSweep: stop-the-world HeapBackend::collectGarbage once
    ///     cellsLive reaches gcTriggerCells.
    ///   - kGenerational: minor collections (HeapBackend::collectYoung)
    ///     once gcTriggerCells/4 cells have been allocated since the last
    ///     promotion, full collections on the kMarkSweep trigger.
    ///   - kIncremental: a cycle is armed on the kMarkSweep trigger, then
    ///     advanced one gcStepBudget-bounded slice per safepoint until it
    ///     completes — no pause exceeds the slice budget.
    /// The relocating and registry-based collectors (kSemispace,
    /// kDeferredRc) cannot run under the LPT's pinned address words —
    /// drive them with the standalone gc/script harness instead;
    /// selecting them here throws.
    gc::Policy gcPolicy = gc::Policy::kNone;
    /// Physical-cell occupancy that arms a full collection. Values below
    /// 4 are clamped to 4: 0 would fire a collection at every safepoint,
    /// and anything smaller than 4 zeroes the quarter-growth anti-thrash
    /// guard (and the kGenerational minor trigger) by integer division.
    std::uint64_t gcTriggerCells = 4096;
    /// kIncremental: heap-touch budget of one safepoint collection slice
    /// (the bounded-pause knob). 0 runs each armed cycle to completion at
    /// one safepoint, degenerating to stop-the-world.
    std::uint64_t gcStepBudget = 2048;
  };

  /// Representation-independent event counters: these depend only on the
  /// logical structure the EP builds, so they must come out identical for
  /// every heap backend (the differential tests assert exactly that).
  /// Physical heap activity lives in heapStats().
  struct Stats {
    std::uint64_t gets = 0;   ///< LPT entry allocations (§4.3.2 "get")
    std::uint64_t frees = 0;  ///< LPT entries returned to the free pool
    std::uint64_t splits = 0;
    std::uint64_t hits = 0;  ///< car/cdr answered from cached LPT fields
    std::uint64_t merges = 0;
    std::uint64_t conses = 0;
    std::uint64_t modifies = 0;   ///< rplaca/rplacd operations
    std::uint64_t readLists = 0;  ///< readlist materializations
    std::uint64_t pseudoOverflows = 0;
    std::uint64_t refOps = 0;
    std::uint64_t cycleRecoveries = 0;
    std::uint64_t heapFreesServiced = 0;
    std::size_t freeQueueHighWater = 0;
    std::uint32_t peakEntriesInUse = 0;  ///< max LPT occupancy
  };

  SmallMachine() : SmallMachine(Config{}) {}
  explicit SmallMachine(Config config);

  // --- the LP primitives, operating on real structure ---

  /// readlist: materialize `ref` (from `arena`) into the heap and return
  /// a value holding one EP reference.
  Value readList(const sexpr::Arena& arena, sexpr::NodeRef ref);

  /// car/cdr: from the LPT fields when present, else split the heap
  /// object. The returned value carries a fresh EP reference when it is
  /// an object.
  Value car(Value list) { return access(list, /*wantCar=*/true); }
  Value cdr(Value list) { return access(list, /*wantCar=*/false); }

  /// cons: pure endo-structure; no heap activity (§4.3.2.2.4).
  Value cons(Value head, Value tail);

  void rplaca(Value list, Value value) { modify(list, value, true); }
  void rplacd(Value list, Value value) { modify(list, value, false); }

  /// writelist: materialize the value back into an s-expression.
  sexpr::NodeRef writeList(sexpr::Arena& arena, Value value) const;

  // --- EP reference management ---
  void retain(Value value);   ///< duplicate an EP reference
  void release(Value value);  ///< drop an EP reference

  // --- introspection ---
  const Stats& stats() const { return stats_; }
  std::uint32_t entriesInUse() const { return inUse_; }
  std::uint64_t heapCellsLive() const { return heap_->cellsLive(); }
  std::size_t pendingHeapFrees() const { return freeQueue_.size(); }
  /// The backing representation and its physical-activity counters.
  const heap::HeapBackend& heap() const { return *heap_; }
  const heap::HeapStats& heapStats() const { return heap_->stats(); }

  /// Run one compression pass; returns merges performed (exposed for the
  /// Fig 4.8 tests; normally triggered by table pressure).
  std::uint64_t compress(bool all);

  /// Drain the heap free queue completely (under the collector policies,
  /// where no frees are queued, this runs a full collection instead —
  /// the shutdown-time "everything not in the table is garbage" sweep).
  void serviceAllHeapFrees();

  /// Run one full heap collection now, regardless of the trigger: mark
  /// from the in-use entries' address words, sweep the rest of the cell
  /// store. An in-flight incremental cycle is finished (unbounded) first
  /// so the fresh collection sees current liveness, not a stale
  /// snapshot. Returns physical cells reclaimed.
  std::uint64_t collectHeapGarbage();

  /// Run one minor collection now (kGenerational): trace the table's
  /// address words and the remembered set into the young cells only,
  /// sweep only those, promote the survivors. Returns cells reclaimed.
  std::uint64_t collectHeapMinor();

  /// Advance an incremental collection by one slice of at most
  /// `touchBudget` heap touches (0 = unbounded), starting a cycle from
  /// the table's address words if none is active. Returns true when the
  /// cycle completed. maybeCollectHeap drives this with
  /// Config::gcStepBudget under kIncremental.
  bool collectHeapStep(std::uint64_t touchBudget);

  /// Collection counters (collector policies). Kept apart from Stats:
  /// collection timing depends on *physical* occupancy, which differs
  /// per backend, while Stats must stay backend-invariant. Under
  /// kIncremental, `collections` counts slices and each pause sample is
  /// one slice; `fullCycles` counts completed cycles.
  const gc::GcStats& gcStats() const { return gcStats_; }

  /// Render the in-use LPT entries in the style of Fig 4.9's tables
  /// (ID | CAR | CDR | REF | ADDR).
  std::string dumpTable(const sexpr::SymbolTable& symbols) const;

 private:
  // An LPT entry. Exactly one of {hasFields, hasAddr} holds for live
  // list objects: split/cons entries carry field values, unsplit entries
  // carry the heap word of their representation.
  struct Entry {
    bool inUse = false;
    bool hasFields = false;
    Value carField;
    Value cdrField;
    heap::HeapWord addr;  ///< heap representation when !hasFields
    std::uint32_t refCount = 0;
    bool mark = false;
  };

  Value access(Value list, bool wantCar);
  void modify(Value list, Value value, bool isCar);

  Entry& entry(std::uint32_t id);
  const Entry& entry(std::uint32_t id) const;

  std::uint32_t allocateEntry();
  void incRef(std::uint32_t id);
  void decRef(std::uint32_t id);
  void freeEntry(std::uint32_t id);
  bool ensureFree(std::uint32_t needed);
  std::uint64_t recoverCycles();

  /// Wrap a heap word as a Value (allocating an entry for pointers).
  Value wordToValue(heap::HeapWord word);
  /// Render a field value as a heap word, for merges; requires the value
  /// to be an atom or an unsplit object (whose entry is then released).
  heap::HeapWord valueToWord(const Value& value);

  void split(std::uint32_t id);
  bool compressiblePair(std::uint32_t id) const;
  void mergePair(std::uint32_t id);
  bool mergeableField(const Value& field) const;

  void queueHeapFree(heap::HeapWord word);

  /// Does the configured policy reclaim by collection (dropping queued
  /// frees) rather than by the §4.3.3.1 free queue?
  bool usesCollector() const;

  /// The complete heap root set: every in-use unsplit entry's address
  /// word (split transfers ownership of the halves to fresh entries,
  /// merge transfers it back).
  std::vector<heap::HeapWord> heapRoots() const;

  /// Fold one collection's activity into gcStats_ (pause = heap-touch
  /// delta since `touchesBefore`).
  void recordCollection(const heap::HeapBackend::CollectResult& result,
                        std::uint64_t touchesBefore);

  /// Operation-boundary safepoint: collect (or advance a slice) if
  /// armed. Only called where no transient heap words are held outside
  /// the table (end of readList / release / modify), so the table's
  /// address words are a complete root set.
  void maybeCollectHeap();

  std::uint32_t externalRefs(std::uint32_t id) const;
  void epIncrement(std::uint32_t id);
  void epDecrement(std::uint32_t id);

  Config config_;
  std::unique_ptr<heap::HeapBackend> heap_;
  std::vector<Entry> entries_;
  std::vector<std::uint32_t> freeStack_;
  std::uint32_t inUse_ = 0;
  // Dense EP reference shadow, indexed by entry id (the table never
  // grows): one load per lookup, and the non-zero id set keeps
  // cycle-recovery root collection O(live roots) and deterministic.
  std::vector<std::uint32_t> epRefs_;   ///< count per id
  std::vector<std::uint32_t> epNonZero_;  ///< ids with count > 0 (unordered)
  std::vector<std::uint32_t> epPos_;    ///< id -> index in epNonZero_
  std::deque<heap::HeapBackend::CellRef> freeQueue_;
  Stats stats_;
  gc::GcStats gcStats_;
  /// Live-cell floor after the last collection (anti-thrash: the next one
  /// waits for gcTriggerCells/4 cells of fresh growth).
  std::uint64_t gcFloorLive_ = 0;
};

}  // namespace small::core
