#include "small/simulator.hpp"

#include <algorithm>

#include "obs/names.hpp"

// Compile with -DSMALL_SIM_VERIFY to enable exhaustive invariant checking
// after every simulated event: stack items must reference live entries,
// the EP-side reference table must agree with the stack, and every entry's
// refcount must equal its field references plus EP references. Expensive;
// meant for debugging the simulator itself.
#ifdef SMALL_SIM_VERIFY
#include <cstdio>
#include <cstdlib>
#include <unordered_map>
#include <vector>
#endif

namespace small::core {

using trace::EventKind;
using trace::PreprocessedEvent;
using trace::Primitive;

Simulator::Simulator(const SimConfig& config,
                     const trace::PreprocessedTrace& trace)
    : config_(config), trace_(trace), rng_(config.seed), lp_(config, rng_) {
  if (config_.driveCache) {
    const std::uint64_t entries =
        config_.cacheEntries ? config_.cacheEntries : config_.tableSize;
    const std::uint64_t lines =
        std::max<std::uint64_t>(entries / config_.cacheLineSize, 1);
    cache_ = std::make_unique<cache::LruCache>(lines, config_.cacheLineSize);
  }
  frames_.push_back(Frame{0, 0});  // top level
}

SimResult Simulator::run() {
  for (const PreprocessedEvent& event : trace_.events) {
    switch (event.kind) {
      case EventKind::kFunctionEnter:
        onFunctionEnter(event);
#ifdef SMALL_SIM_VERIFY
        verifyStackRefs("enter");
#endif
        break;
      case EventKind::kFunctionExit:
        onFunctionExit();
#ifdef SMALL_SIM_VERIFY
        verifyStackRefs("exit");
#endif
        break;
      case EventKind::kPrimitive:
        onPrimitive(event);
        sampleOccupancy();
#ifdef SMALL_SIM_VERIFY
        verifyStackRefs("prim");
#endif
#ifdef SMALL_SIM_VERIFY
        for (std::size_t i = 0; i < stack_.size(); ++i) {
          if (stack_[i].kind == StackItem::Kind::kEntry &&
              !lp_.lpt().entry(stack_[i].id).inUse) {
            std::fprintf(stderr,
                         "VERIFY: stack[%zu] holds freed entry %u after "
                         "prim %d (event #%llu)\n",
                         i, stack_[i].id, (int)event.primitive,
                         (unsigned long long)primitives_);
            std::abort();
          }
        }
        {
          // Recompute each entry's expected refcount: field references
          // from every entry (in-use or lazily freed) plus EP references.
          std::vector<std::uint32_t> expected(config_.tableSize, 0);
          for (EntryId id = 0; id < config_.tableSize; ++id) {
            const LptEntry& e = lp_.lpt().entry(id);
            if (e.car != kNoEntry) ++expected[e.car];
            if (e.cdr != kNoEntry) ++expected[e.cdr];
          }
          for (EntryId id = 0; id < config_.tableSize; ++id) {
            // In split mode EP references live in the EP table, not in
            // the LPT count.
            if (!config_.splitRefCounts) expected[id] += lp_.externalRefs(id);
            const LptEntry& e = lp_.lpt().entry(id);
            if (e.inUse && e.refCount != expected[id]) {
              std::fprintf(stderr,
                           "VERIFY: entry %u rc=%u expected=%u after prim "
                           "%d (event #%llu)\n",
                           id, e.refCount, expected[id],
                           (int)event.primitive,
                           (unsigned long long)primitives_);
              std::abort();
            }
          }
        }
#endif
        break;
    }
  }

  if (telemetrySnap_ != nullptr) telemetrySnap_->finish(primitives_);

  SimResult result;
  result.lptStats = lp_.lpt().stats();
  result.lpStats = lp_.stats();
  result.lifetimeMaxCounts = lp_.lpt().lifetimeMaxCounts();
  result.lptHits = lp_.stats().hits;
  result.lptMisses = lp_.stats().splits;
  const std::uint64_t accesses = result.lptHits + result.lptMisses;
  result.lptHitRate =
      accesses == 0 ? 0.0
                    : static_cast<double>(result.lptHits) /
                          static_cast<double>(accesses);
  result.cacheHits = cacheHits_;
  result.cacheMisses = cacheMisses_;
  const std::uint64_t cacheAccesses = cacheHits_ + cacheMisses_;
  result.cacheHitRate =
      cacheAccesses == 0 ? 0.0
                         : static_cast<double>(cacheHits_) /
                               static_cast<double>(cacheAccesses);
  result.peakOccupancy = peakOccupancy_;
  result.averageOccupancy = occupancy_.mean();
  result.pseudoOverflowOccurred = lp_.stats().pseudoOverflows > 0;
  result.trueOverflowOccurred = lp_.stats().trueOverflows > 0;
  result.primitivesSimulated = primitives_;
  result.functionCalls = functionCalls_;
  return result;
}


#ifdef SMALL_SIM_VERIFY
void Simulator::verifyStackRefs(const char* where) {
  std::unordered_map<EntryId, std::uint32_t> held;
  for (const StackItem& item : stack_) {
    if (item.kind == StackItem::Kind::kEntry) ++held[item.id];
  }
  for (const auto& [id, count] : held) {
    if (!lp_.lpt().entry(id).inUse) {
      std::fprintf(stderr, "VERIFY(%s): freed entry %u on stack x%u at prim#%llu\n",
                   where, id, count, (unsigned long long)primitives_);
      std::abort();
    }
    if (config_.splitRefCounts) {
      // Split mode: the LPT count holds internal references only; the
      // stack's presence is represented by the StackBit.
      if (!lp_.lpt().entry(id).stackBit) {
        std::fprintf(stderr,
                     "VERIFY(%s): entry %u stack-held but StackBit clear "
                     "at prim#%llu\n",
                     where, id, (unsigned long long)primitives_);
        std::abort();
      }
    } else if (lp_.lpt().entry(id).refCount < count) {
      std::fprintf(stderr, "VERIFY(%s): entry %u rc=%u < stack held %u at prim#%llu\n",
                   where, id, lp_.lpt().entry(id).refCount, count,
                   (unsigned long long)primitives_);
      std::abort();
    }
    if (lp_.externalRefs(id) != count) {
      std::fprintf(stderr, "VERIFY(%s): entry %u held %u times but epRefs=%u at prim#%llu\n",
                   where, id, count, lp_.externalRefs(id),
                   (unsigned long long)primitives_);
      std::abort();
    }
  }
}
#endif
void Simulator::attachTelemetry(obs::TelemetryBuffer* buffer,
                                std::uint64_t every) {
  if (buffer == nullptr || !buffer->enabled()) return;
  telemetrySnap_ = std::make_unique<obs::Snapshotter>(buffer, every);
  telemetrySnap_->watchValue(obs::names::kLptOccupancy, [this] {
    return static_cast<double>(lp_.lpt().inUseCount());
  });
}

void Simulator::sampleOccupancy() {
  const std::uint32_t inUse = lp_.lpt().inUseCount();
  peakOccupancy_ = std::max(peakOccupancy_, inUse);
  occupancy_.add(inUse);
  // primitives_ already counts this primitive, so the telemetry epoch
  // clock is the number of primitives fully simulated.
  if (telemetrySnap_ != nullptr) telemetrySnap_->advanceTo(primitives_);
}

void Simulator::releaseItem(const StackItem& item) {
  switch (item.kind) {
    case StackItem::Kind::kAtom:
      break;
    case StackItem::Kind::kEntry:
      lp_.unbind(item.id);
      break;
    case StackItem::Kind::kLarge:
      lp_.largeUnbind();
      break;
  }
}

void Simulator::onFunctionEnter(const PreprocessedEvent& event) {
  ++functionCalls_;
  const std::size_t base = stack_.size();
  // "a stack item is pushed for each argument, which is then randomly
  //  bound to something older on the stack."
  const std::uint8_t argCount = event.argCount;
  for (std::uint8_t i = 0; i < argCount; ++i) {
    StackItem item;
    item.isArgument = true;
    const std::optional<std::size_t> older = pickListItem(0, base);
    if (older && rng_.chance(0.7)) {
      const StackItem& source = stack_[*older];
      item.kind = source.kind;
      item.id = source.id;
      if (item.kind == StackItem::Kind::kEntry) {
        lp_.bind(item.id);
      } else if (item.kind == StackItem::Kind::kLarge) {
        lp_.largeBind();
      }
    }
    stack_.push_back(item);
  }
  // "A randomly determined number of locals are then similarly bound."
  const auto locals = static_cast<std::uint32_t>(rng_.below(3));
  for (std::uint32_t i = 0; i < locals; ++i) {
    StackItem item;
    item.isArgument = false;
    stack_.push_back(item);
  }
  frames_.push_back(Frame{base, argCount});
}

void Simulator::onFunctionExit() {
  if (frames_.size() <= 1) return;  // unmatched exit: ignore at top level
  const Frame frame = frames_.back();
  frames_.pop_back();
  // "a reference count decrementing request is sent to the LP for each
  //  stack item that represents a name-value binding added during that
  //  call, and that item is then popped."
  while (stack_.size() > frame.base) {
    releaseItem(stack_.back());
    stack_.pop_back();
  }
}

std::optional<std::size_t> Simulator::pickListItem(std::size_t lo,
                                                   std::size_t hi) {
  // Reservoir sampling over candidate indices holding list values —
  // uniform without materializing a candidate vector.
  std::optional<std::size_t> chosen;
  std::uint64_t seen = 0;
  for (std::size_t i = lo; i < hi; ++i) {
    if (stack_[i].kind == StackItem::Kind::kAtom) continue;
    ++seen;
    if (rng_.below(seen) == 0) chosen = i;
  }
  return chosen;
}

std::optional<std::size_t> Simulator::selectArgument(
    const PreprocessedEvent& event, bool* consumedTemp) {
  *consumedTemp = false;

  // Chained argument: available on top of the simulated run-time stack.
  bool chained = false;
  for (const trace::PreprocessedObject& arg : event.args) {
    if (arg.id != trace::kNoObject) {
      chained = arg.chained;
      break;
    }
  }
  // The chained value is on top of the stack only if the previous result
  // was pushed as a temporary; consuming a *binding* would shrink the
  // frame under its argument slots.
  if (chained && !stack_.empty() && stack_.back().isTemp &&
      stack_.back().kind != StackItem::Kind::kAtom) {
    *consumedTemp = true;
    return stack_.size() - 1;
  }

  const Frame& frame = frames_.back();
  const double u = rng_.uniform();
  std::optional<std::size_t> choice;
  if (u < config_.argProb) {
    // An argument of the currently active user-defined function.
    choice = pickListItem(frame.base, frame.base + frame.argCount);
  } else if (u < config_.argProb + config_.locProb) {
    // A local variable (or temporary) of the current call.
    choice = pickListItem(frame.base + frame.argCount, stack_.size());
  } else {
    // A non-local variable: anything below the current frame.
    choice = pickListItem(0, frame.base);
  }
  if (!choice) choice = pickListItem(0, stack_.size());
  return choice;
}

void Simulator::touchCache(const StackItem& item, bool countIt) {
  if (!cache_ || item.kind != StackItem::Kind::kEntry) return;
  const bool hit = cache_->access(lp_.cacheAddress(item.id));
  if (!countIt) return;
  if (hit) {
    ++cacheHits_;
  } else {
    ++cacheMisses_;
  }
}

void Simulator::pushResult(const AccessResult& result) {
  StackItem item;
  if (result.id != kNoEntry) {
    item.kind = StackItem::Kind::kEntry;
    item.id = result.id;
  } else if (result.isAtom) {
    item.kind = StackItem::Kind::kAtom;
  } else {
    item.kind = StackItem::Kind::kLarge;
  }
  disposeValue(item);
}

void Simulator::disposeValue(StackItem value) {
  // "This return value was then either bound to a randomly selected
  //  variable on the stack (with probability BindProb) or just pushed onto
  //  the top of the stack."
  // Top-level temporaries have no function exit to pop them; once the
  // top-level frame grows past a working-set bound, treat the push as a
  // binding so the simulated stack stays O(call depth).
  constexpr std::size_t kTopLevelStackBound = 512;
  const bool topLevelPressure =
      frames_.size() == 1 && stack_.size() >= kTopLevelStackBound;
  if (!stack_.empty() &&
      (topLevelPressure || rng_.chance(config_.bindProb))) {
    const std::size_t index = rng_.below(stack_.size());
    releaseItem(stack_[index]);
    value.isArgument = stack_[index].isArgument;
    value.isTemp = stack_[index].isTemp;  // a binding slot stays a binding
    stack_[index] = value;
    return;
  }
  value.isArgument = false;
  value.isTemp = true;
  stack_.push_back(value);
}

void Simulator::onPrimitive(const PreprocessedEvent& event) {
  ++primitives_;

  // `read` needs no pre-existing argument.
  if (event.primitive == Primitive::kRead) {
    const EntryId id = lp_.readList(std::nullopt, event.result.n,
                                    event.result.p);
    AccessResult result;
    result.id = id;
    result.isAtom = id != kNoEntry && lp_.lpt().entry(id).isAtom;
    pushResult(result);
    return;
  }

  bool consumedTemp = false;
  std::optional<std::size_t> argIndex = selectArgument(event, &consumedTemp);
  if (!argIndex) {
    // No list value anywhere on the stack: the variable must have been
    // read into since program start — materialize it as a fresh object.
    const std::uint32_t n = event.args.empty() ? 1 : event.args[0].n;
    const std::uint32_t p = event.args.empty() ? 0 : event.args[0].p;
    const EntryId id = lp_.readList(std::nullopt, std::max(n, 1u), p);
    StackItem item;
    item.kind = id == kNoEntry ? StackItem::Kind::kLarge
                               : StackItem::Kind::kEntry;
    item.id = id;
    stack_.push_back(item);
    argIndex = stack_.size() - 1;
  }

  // ReadProb: with small probability the variable was re-read since it was
  // last accessed, so a fresh object replaces the binding.
  if (!consumedTemp && rng_.chance(config_.readProb)) {
    StackItem& item = stack_[*argIndex];
    if (item.kind == StackItem::Kind::kEntry) {
      const std::uint32_t n = event.args.empty() ? 1 : event.args[0].n;
      const std::uint32_t p = event.args.empty() ? 0 : event.args[0].p;
      const EntryId id = lp_.readList(item.id, std::max(n, 1u), p);
      if (id == kNoEntry) {
        // readList already registered the outstanding large reference.
        item.kind = StackItem::Kind::kLarge;
        item.id = kNoEntry;
      } else {
        item.id = id;
      }
    }
  }

  const StackItem arg = stack_[*argIndex];
  auto finishTemp = [&] {
    if (consumedTemp) {
      // The chained temporary is consumed by this primitive.
      releaseItem(stack_.back());
      stack_.pop_back();
    }
  };

  switch (event.primitive) {
    case Primitive::kCar:
    case Primitive::kCdr: {
      const bool wantCar = event.primitive == Primitive::kCar;
      AccessResult result;
      if (arg.kind == StackItem::Kind::kLarge) {
        result = lp_.largeAccess(wantCar);
      } else if (lp_.lpt().entry(arg.id).isAtom) {
        // car/cdr of an atom object yields nil — no LPT activity.
        result.id = kNoEntry;
        result.isAtom = true;
      } else {
        touchCache(arg, /*countIt=*/true);
        result = wantCar ? lp_.car(arg.id) : lp_.cdr(arg.id);
      }
      finishTemp();
      pushResult(result);
      break;
    }
    case Primitive::kCons:
    case Primitive::kAppend: {
      // Second operand: another stack value if one exists, else the same.
      AccessResult result;
      if (arg.kind == StackItem::Kind::kLarge) {
        ++lp_.stats().overflowModeOps;
        lp_.largeBind();
        result.id = kNoEntry;
        result.isAtom = false;
      } else {
        const std::optional<std::size_t> other =
            pickListItem(0, stack_.size());
        EntryId tail = arg.id;
        if (other && stack_[*other].kind == StackItem::Kind::kEntry) {
          tail = stack_[*other].id;
        }
        touchCache(arg, /*countIt=*/false);  // the cell write
        const EntryId id = lp_.cons(arg.id, tail);
        result.id = id;
        result.isAtom = false;
      }
      finishTemp();
      pushResult(result);
      break;
    }
    case Primitive::kRplaca:
    case Primitive::kRplacd: {
      if (arg.kind == StackItem::Kind::kEntry &&
          !lp_.lpt().entry(arg.id).isAtom) {
        const std::optional<std::size_t> other =
            pickListItem(0, stack_.size());
        if (other && stack_[*other].kind == StackItem::Kind::kEntry) {
          touchCache(arg, /*countIt=*/false);
          if (event.primitive == Primitive::kRplaca) {
            lp_.rplaca(arg.id, stack_[*other].id);
          } else {
            lp_.rplacd(arg.id, stack_[*other].id);
          }
        }
      }
      // rplac returns its (modified) first argument; keep the binding as
      // the result value.
      StackItem value = arg;
      if (value.kind == StackItem::Kind::kEntry) {
        lp_.bind(value.id);
      } else if (value.kind == StackItem::Kind::kLarge) {
        lp_.largeBind();
      }
      finishTemp();
      disposeValue(value);
      break;
    }
    case Primitive::kAtom:
    case Primitive::kNull:
    case Primitive::kEqual:
    case Primitive::kWrite: {
      // Predicates and output touch the argument but produce atoms.
      touchCache(arg, /*countIt=*/false);
      finishTemp();
      StackItem value;
      value.kind = StackItem::Kind::kAtom;
      disposeValue(value);
      break;
    }
    case Primitive::kRead:
      break;  // handled above
  }
}

SimResult simulateTrace(const SimConfig& config,
                        const trace::PreprocessedTrace& trace) {
  Simulator simulator(config, trace);
  return simulator.run();
}

SimResult simulateTrace(const SimConfig& config,
                        const trace::PreprocessedTrace& trace,
                        obs::TelemetryBuffer* telemetry,
                        std::uint64_t every) {
  Simulator simulator(config, trace);
  simulator.attachTelemetry(telemetry, every);
  return simulator.run();
}

}  // namespace small::core
