// A sharded List Processor Table for the multi-session service mode.
//
// One `core::Lpt` models the paper's single structured-memory unit; the
// Ch. 6 multiprocessor shares that memory across processors. This wraps
// N independent Lpt shards, each behind its own lock, so concurrent
// sessions touch disjoint shards without serializing on one table —
// striped locks over the single-LP design rather than a rewrite of it.
// Cross-shard references never hold two locks at once: they are carried
// by the Ch. 6 weighting scheme (multilisp/ref_weight, multilisp/
// combining), whose weight decrements arrive batched per target shard.
//
// Contention accounting: every lock() bumps the shard's acquisition
// counter, and an acquisition that fails its initial try_lock bumps the
// contended counter before blocking. Both are wall-clock-free but
// schedule-dependent, so they live on the *nondeterministic* stats plane
// (stdout / --perf-out), never in a deterministic --metrics-out.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "small/lpt.hpp"

namespace small::core {

class ShardedLpt {
 public:
  /// `shardCount` independent Lpts of `shardSize` entries each.
  ShardedLpt(std::uint32_t shardCount, std::uint32_t shardSize,
             ReclaimPolicy reclaim);

  /// RAII exclusive access to one shard's Lpt. Movable; unlocks on
  /// destruction. Hold at most one Guard at a time per thread — the
  /// combining-queue protocol is what makes that sufficient.
  class Guard {
   public:
    Guard(Guard&&) noexcept = default;
    Guard& operator=(Guard&&) noexcept = default;
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

    Lpt& lpt() { return *lpt_; }

   private:
    friend class ShardedLpt;
    Guard(std::unique_lock<std::mutex> held, Lpt* lpt)
        : held_(std::move(held)), lpt_(lpt) {}

    std::unique_lock<std::mutex> held_;
    Lpt* lpt_;
  };

  Guard lock(std::uint32_t shard);

  std::uint32_t shardCount() const {
    return static_cast<std::uint32_t>(shards_.size());
  }

  /// The shard a session's objects live in (sessions pin their
  /// allocations to their home shard; only weight messages cross).
  std::uint32_t homeShard(std::uint64_t key) const {
    return static_cast<std::uint32_t>(key % shards_.size());
  }

  std::uint64_t acquisitions(std::uint32_t shard) const;
  std::uint64_t contended(std::uint32_t shard) const;

  /// Unsynchronized access for quiesced phases (setup before threads
  /// start, residual audits after they join). Never call concurrently
  /// with lock() holders.
  Lpt& quiescedShard(std::uint32_t shard);

 private:
  // One cache line per lock so two shards' locks never false-share.
  struct alignas(64) Shard {
    Shard(std::uint32_t size, ReclaimPolicy reclaim) : lpt(size, reclaim) {}
    std::mutex mu;
    std::atomic<std::uint64_t> acquisitions{0};
    std::atomic<std::uint64_t> contended{0};
    Lpt lpt;
  };

  Shard& at(std::uint32_t shard);
  const Shard& at(std::uint32_t shard) const;

  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace small::core
