#include "small/machine.hpp"

#include <algorithm>

namespace small::core {

using heap::HeapWord;
using support::EvalError;
using support::SimulationError;

SmallMachine::SmallMachine(Config config)
    : config_(config),
      heap_(heap::makeHeapBackend(config.heapBackend, config.heapOptions)) {
  if (config_.tableSize == 0) {
    throw SimulationError("SmallMachine: zero-sized table");
  }
  switch (config_.gcPolicy) {
    case gc::Policy::kNone:
    case gc::Policy::kMarkSweep:
    case gc::Policy::kIncremental:
      break;
    case gc::Policy::kGenerational:
      heap_->setYoungTracking(true);
      break;
    default:
      throw support::Error(
          "SmallMachine: kSemispace/kDeferredRc relocate or re-register "
          "cells and cannot run under the LPT's pinned address words; "
          "drive them with the gc/script harness");
  }
  // Degenerate triggers: 0 would collect at every safepoint, and
  // anything below 4 turns the /4-derived quarter-growth guard and minor
  // trigger into 0 by integer division.
  if (usesCollector() && config_.gcTriggerCells < 4) {
    config_.gcTriggerCells = 4;
  }
  entries_.resize(config_.tableSize);
  freeStack_.reserve(config_.tableSize);
  for (std::uint32_t id = config_.tableSize; id-- > 0;) {
    freeStack_.push_back(id);
  }
  epRefs_.assign(config_.tableSize, 0);
  epPos_.assign(config_.tableSize, 0xffffffffu);
}

SmallMachine::Entry& SmallMachine::entry(std::uint32_t id) {
  if (id >= entries_.size()) throw SimulationError("SmallMachine: bad id");
  return entries_[id];
}

const SmallMachine::Entry& SmallMachine::entry(std::uint32_t id) const {
  if (id >= entries_.size()) throw SimulationError("SmallMachine: bad id");
  return entries_[id];
}

std::uint32_t SmallMachine::externalRefs(std::uint32_t id) const {
  return id < epRefs_.size() ? epRefs_[id] : 0;
}

void SmallMachine::epIncrement(std::uint32_t id) {
  if (epRefs_[id]++ == 0) {
    epPos_[id] = static_cast<std::uint32_t>(epNonZero_.size());
    epNonZero_.push_back(id);
  }
}

void SmallMachine::epDecrement(std::uint32_t id) {
  if (id >= epRefs_.size() || epRefs_[id] == 0) {
    throw SimulationError("SmallMachine: release without EP reference");
  }
  if (--epRefs_[id] == 0) {
    const std::uint32_t pos = epPos_[id];
    const std::uint32_t last = epNonZero_.back();
    epNonZero_[pos] = last;
    epPos_[last] = pos;
    epNonZero_.pop_back();
    epPos_[id] = 0xffffffffu;
  }
}

std::uint32_t SmallMachine::allocateEntry() {
  if (!ensureFree(1)) {
    throw SimulationError(
        "SmallMachine: LPT exhausted (nothing compressible, no cycles to "
        "recover) — size the table for the working set");
  }
  const std::uint32_t id = freeStack_.back();
  freeStack_.pop_back();
  entries_[id] = Entry{};
  entries_[id].inUse = true;
  ++inUse_;
  ++stats_.gets;
  stats_.peakEntriesInUse = std::max(stats_.peakEntriesInUse, inUse_);
  return id;
}

void SmallMachine::incRef(std::uint32_t id) {
  Entry& e = entry(id);
  if (!e.inUse) throw SimulationError("SmallMachine: incRef of free entry");
  ++e.refCount;
  ++stats_.refOps;
}

void SmallMachine::decRef(std::uint32_t id) {
  Entry& e = entry(id);
  if (!e.inUse) throw SimulationError("SmallMachine: decRef of free entry");
  if (e.refCount == 0) throw SimulationError("SmallMachine: rc underflow");
  --e.refCount;
  ++stats_.refOps;
  if (e.refCount == 0) freeEntry(id);
}

void SmallMachine::freeEntry(std::uint32_t id) {
  Entry& e = entries_[id];
  e.inUse = false;
  --inUse_;
  ++stats_.frees;
  freeStack_.push_back(id);
  if (e.hasFields) {
    // Release the field references (immediate policy: the lazy variant is
    // exercised by core::Lpt; here functional clarity wins).
    if (e.carField.isObject()) decRef(e.carField.id);
    if (e.cdrField.isObject()) decRef(e.cdrField.id);
  } else if (e.addr.isPointer()) {
    queueHeapFree(e.addr);
  }
}

void SmallMachine::queueHeapFree(HeapWord word) {
  if (usesCollector()) {
    // The structure is simply dropped; the collector finds it by not
    // finding it (unreachable from the table's address words).
    return;
  }
  freeQueue_.push_back(word.payload);
  stats_.freeQueueHighWater =
      std::max(stats_.freeQueueHighWater, freeQueue_.size());
  // "The queue size could be limited as a means of flow control" — when
  // it fills, the heap controller services a batch.
  if (freeQueue_.size() > config_.freeQueueLimit) {
    const std::size_t batch = freeQueue_.size() / 2;
    for (std::size_t i = 0; i < batch; ++i) {
      heap_->freeObject(freeQueue_.front());
      freeQueue_.pop_front();
      ++stats_.heapFreesServiced;
    }
  }
}

bool SmallMachine::usesCollector() const {
  return config_.gcPolicy == gc::Policy::kMarkSweep ||
         config_.gcPolicy == gc::Policy::kGenerational ||
         config_.gcPolicy == gc::Policy::kIncremental;
}

void SmallMachine::serviceAllHeapFrees() {
  if (config_.gcPolicy == gc::Policy::kIncremental) {
    // The bounded-pause contract holds even for the shutdown sweep:
    // finish any in-flight cycle, then run one fresh complete cycle
    // (current roots, so everything dropped since is reclaimed), all in
    // gcStepBudget-sized slices.
    while (heap_->gcActive()) collectHeapStep(config_.gcStepBudget);
    while (!collectHeapStep(config_.gcStepBudget)) {
    }
    return;
  }
  if (usesCollector()) {
    collectHeapGarbage();
    return;
  }
  while (!freeQueue_.empty()) {
    heap_->freeObject(freeQueue_.front());
    freeQueue_.pop_front();
    ++stats_.heapFreesServiced;
  }
}

std::vector<HeapWord> SmallMachine::heapRoots() const {
  std::vector<HeapWord> roots;
  for (const Entry& e : entries_) {
    if (e.inUse && !e.hasFields && e.addr.isPointer()) {
      roots.push_back(e.addr);
    }
  }
  return roots;
}

void SmallMachine::recordCollection(
    const heap::HeapBackend::CollectResult& result,
    std::uint64_t touchesBefore) {
  const std::uint64_t pause = heap_->stats().touches() - touchesBefore;
  ++gcStats_.collections;
  gcStats_.cellsReclaimed += result.reclaimed;
  gcStats_.cellsTraced += result.traced;
  gcStats_.heapTouches += pause;
  gcStats_.totalPause += pause;
  if (pause > gcStats_.maxPause) gcStats_.maxPause = pause;
}

std::uint64_t SmallMachine::collectHeapGarbage() {
  std::uint64_t reclaimed = 0;
  if (heap_->gcActive()) {
    // Finish the in-flight incremental cycle (counted as one unbounded
    // slice) so the fresh collection below traces current liveness
    // rather than the stale mark snapshot.
    const std::uint64_t touchesBefore = heap_->stats().touches();
    heap::HeapBackend::CollectResult finish;
    heap_->gcStep(0, finish);
    recordCollection(finish, touchesBefore);
    ++gcStats_.fullCycles;
    reclaimed += finish.reclaimed;
  }
  const std::vector<HeapWord> roots = heapRoots();
  const std::uint64_t touchesBefore = heap_->stats().touches();
  const heap::HeapBackend::CollectResult result =
      heap_->collectGarbage(roots);
  recordCollection(result, touchesBefore);
  if (config_.gcPolicy == gc::Policy::kIncremental) ++gcStats_.fullCycles;
  gcFloorLive_ = heap_->cellsLive();
  return reclaimed + result.reclaimed;
}

std::uint64_t SmallMachine::collectHeapMinor() {
  const std::vector<HeapWord> roots = heapRoots();
  const std::uint64_t youngBefore = heap_->youngCells();
  const std::uint64_t touchesBefore = heap_->stats().touches();
  const heap::HeapBackend::CollectResult result =
      heap_->collectYoung(roots);
  recordCollection(result, touchesBefore);
  ++gcStats_.minorCollections;
  // Young cells the cycle did not reclaim were promoted (an upper bound:
  // young cells the machine already freed through split are skipped by
  // the sweep and counted here too).
  gcStats_.cellsPromoted += youngBefore - result.reclaimed;
  return result.reclaimed;
}

bool SmallMachine::collectHeapStep(std::uint64_t touchBudget) {
  const std::uint64_t touchesBefore = heap_->stats().touches();
  if (!heap_->gcActive()) {
    // The root scan is part of the first slice's pause.
    heap_->gcBegin(heapRoots());
  }
  heap::HeapBackend::CollectResult result;
  const bool done = heap_->gcStep(touchBudget, result);
  recordCollection(result, touchesBefore);
  if (done) {
    ++gcStats_.fullCycles;
    gcFloorLive_ = heap_->cellsLive();
  }
  return done;
}

void SmallMachine::maybeCollectHeap() {
  const std::uint64_t live = heap_->cellsLive();
  // Full collections arm on occupancy, with an anti-thrash guard: wait
  // for a quarter-trigger of growth past the last collection's floor.
  const bool fullArmed = live >= config_.gcTriggerCells &&
                         live >= gcFloorLive_ + config_.gcTriggerCells / 4;
  switch (config_.gcPolicy) {
    case gc::Policy::kMarkSweep:
      if (fullArmed) collectHeapGarbage();
      return;
    case gc::Policy::kGenerational:
      // Minor collections run on nursery fill; occasional full
      // collections reclaim what floated into the old generation.
      if (fullArmed) {
        collectHeapGarbage();
      } else if (heap_->youngCells() >= config_.gcTriggerCells / 4) {
        collectHeapMinor();
      }
      return;
    case gc::Policy::kIncremental:
      // One bounded slice per safepoint while a cycle is in flight;
      // otherwise arm a new cycle on the full-collection trigger.
      if (heap_->gcActive() || fullArmed) {
        collectHeapStep(config_.gcStepBudget);
      }
      return;
    default:
      return;
  }
}

bool SmallMachine::ensureFree(std::uint32_t needed) {
  while (config_.tableSize - inUse_ < needed) {
    const std::uint64_t merged =
        compress(config_.compression != CompressionPolicy::kCompressOne);
    if (merged > 0) {
      ++stats_.pseudoOverflows;
      continue;
    }
    ++stats_.cycleRecoveries;
    if (recoverCycles() == 0) return false;
  }
  return true;
}

std::uint64_t SmallMachine::recoverCycles() {
  for (Entry& e : entries_) e.mark = false;
  // Roots in ascending id order: the mark set is order-independent, but a
  // canonical order keeps every run (and any order-sensitive stat added
  // later) reproducible across standard-library implementations.
  std::vector<std::uint32_t> work(epNonZero_.begin(), epNonZero_.end());
  std::sort(work.begin(), work.end());
  while (!work.empty()) {
    const std::uint32_t id = work.back();
    work.pop_back();
    Entry& e = entry(id);
    if (!e.inUse || e.mark) continue;
    e.mark = true;
    if (e.hasFields) {
      if (e.carField.isObject()) work.push_back(e.carField.id);
      if (e.cdrField.isObject()) work.push_back(e.cdrField.id);
    }
  }
  std::uint64_t reclaimed = 0;
  for (std::uint32_t id = 0; id < entries_.size(); ++id) {
    Entry& e = entries_[id];
    if (!e.inUse || e.mark) continue;
    // Sever object fields into fellow swept entries; release references
    // into survivors; queue any heap representation.
    const Entry snapshot = e;
    e.hasFields = false;
    e.carField = Value::nil();
    e.cdrField = Value::nil();
    e.refCount = 0;
    e.addr = HeapWord::nil();
    e.inUse = false;
    --inUse_;
    ++stats_.frees;
    freeStack_.push_back(id);
    ++reclaimed;
    if (snapshot.hasFields) {
      if (snapshot.carField.isObject() &&
          entries_[snapshot.carField.id].mark) {
        decRef(snapshot.carField.id);
      }
      if (snapshot.cdrField.isObject() &&
          entries_[snapshot.cdrField.id].mark) {
        decRef(snapshot.cdrField.id);
      }
    } else if (snapshot.addr.isPointer()) {
      queueHeapFree(snapshot.addr);
    }
  }
  return reclaimed;
}

SmallMachine::Value SmallMachine::wordToValue(HeapWord word) {
  switch (word.tag) {
    case HeapWord::Tag::kNil:
      return Value::nil();
    case HeapWord::Tag::kSymbol:
      return Value::symbol(word.payload);
    case HeapWord::Tag::kInteger:
      return Value::integer(static_cast<std::int64_t>(word.payload));
    case HeapWord::Tag::kPointer: {
      const std::uint32_t id = allocateEntry();
      Entry& e = entries_[id];
      e.addr = word;
      e.refCount = 1;  // owned by the caller (a parent field)
      Value value;
      value.kind = Value::Kind::kObject;
      value.id = id;
      return value;
    }
  }
  throw SimulationError("SmallMachine: unreachable word tag");
}

HeapWord SmallMachine::valueToWord(const Value& value) {
  switch (value.kind) {
    case Value::Kind::kNil:
      return HeapWord::nil();
    case Value::Kind::kSymbol:
      return HeapWord::symbol(value.payload);
    case Value::Kind::kInteger:
      return HeapWord::integer(static_cast<std::int64_t>(value.payload));
    case Value::Kind::kObject: {
      // The entry's heap representation moves into the caller's cell; the
      // entry itself is retired without releasing the heap structure
      // (ownership transfer, the inverse of wordToValue).
      Entry& e = entry(value.id);
      if (e.hasFields || !e.inUse || e.refCount != 1) {
        throw SimulationError("SmallMachine: valueToWord of unmergeable");
      }
      const HeapWord word = e.addr;
      e.inUse = false;
      e.refCount = 0;
      e.addr = HeapWord::nil();
      --inUse_;
      ++stats_.frees;
      freeStack_.push_back(value.id);
      return word;
    }
  }
  throw SimulationError("SmallMachine: unreachable value kind");
}

SmallMachine::Value SmallMachine::readList(const sexpr::Arena& arena,
                                           sexpr::NodeRef ref) {
  ++stats_.readLists;
  const HeapWord word = heap_->encode(arena, ref);
  if (!word.isPointer()) {
    // Atoms read in as immediates; no table entry needed.
    return wordToValue(word);
  }
  const std::uint32_t id = allocateEntry();
  Entry& e = entries_[id];
  e.addr = word;
  e.refCount = 1;  // the EP's reference
  epIncrement(id);
  Value value;
  value.kind = Value::Kind::kObject;
  value.id = id;
  maybeCollectHeap();  // safepoint: the new structure is rooted by `e`
  return value;
}

void SmallMachine::retain(Value value) {
  if (!value.isObject()) return;
  incRef(value.id);
  epIncrement(value.id);
}

void SmallMachine::release(Value value) {
  if (!value.isObject()) return;
  epDecrement(value.id);
  decRef(value.id);
  maybeCollectHeap();  // safepoint: any dropped structure is now garbage
}

void SmallMachine::split(std::uint32_t id) {
  if (!ensureFree(2)) {
    throw SimulationError("SmallMachine: LPT exhausted during split");
  }
  Entry& e = entry(id);
  if (e.hasFields) return;
  if (!e.addr.isPointer()) {
    throw SimulationError("SmallMachine: split of an atom object");
  }
  const heap::HeapBackend::SplitResult halves =
      heap_->split(e.addr.payload);
  // wordToValue may allocate entries, which cannot invalidate `e` (the
  // entry vector never grows), but re-fetch for clarity.
  const Value carValue = wordToValue(halves.car);
  const Value cdrValue = wordToValue(halves.cdr);
  Entry& parent = entry(id);
  parent.hasFields = true;
  parent.carField = carValue;
  parent.cdrField = cdrValue;
  parent.addr = HeapWord::nil();
  ++stats_.splits;
}

SmallMachine::Value SmallMachine::access(Value list, bool wantCar) {
  if (list.kind == Value::Kind::kNil) return Value::nil();  // (car nil)
  if (!list.isObject()) {
    throw EvalError("SmallMachine: car/cdr of an atom");
  }
  Entry& e = entry(list.id);
  if (!e.inUse) throw SimulationError("SmallMachine: access of free entry");
  if (!e.hasFields) {
    split(list.id);
  } else {
    ++stats_.hits;
  }
  const Value field =
      wantCar ? entry(list.id).carField : entry(list.id).cdrField;
  if (field.isObject()) {
    incRef(field.id);
    epIncrement(field.id);
  }
  return field;
}

SmallMachine::Value SmallMachine::cons(Value head, Value tail) {
  ++stats_.conses;
  const std::uint32_t id = allocateEntry();
  Entry& e = entries_[id];
  e.hasFields = true;
  e.carField = head;
  e.cdrField = tail;
  if (head.isObject()) incRef(head.id);
  if (tail.isObject()) incRef(tail.id);
  e.refCount += 1;  // the EP's reference to the new cell
  ++stats_.refOps;
  epIncrement(id);
  Value value;
  value.kind = Value::Kind::kObject;
  value.id = id;
  return value;
}

void SmallMachine::modify(Value list, Value value, bool isCar) {
  if (!list.isObject()) {
    throw EvalError("SmallMachine: rplac on an atom");
  }
  ++stats_.modifies;
  Entry& e = entry(list.id);
  if (!e.inUse) throw SimulationError("SmallMachine: rplac on free entry");
  if (!e.hasFields) split(list.id);
  Entry& target = entry(list.id);
  Value& field = isCar ? target.carField : target.cdrField;
  const Value old = field;
  field = value;
  if (value.isObject()) incRef(value.id);
  if (old.isObject()) decRef(old.id);
  maybeCollectHeap();  // safepoint: the displaced field may have died
}

sexpr::NodeRef SmallMachine::writeList(sexpr::Arena& arena,
                                       Value value) const {
  switch (value.kind) {
    case Value::Kind::kNil:
      return sexpr::kNilRef;
    case Value::Kind::kSymbol:
      return arena.symbol(static_cast<sexpr::SymbolId>(value.payload));
    case Value::Kind::kInteger:
      return arena.integer(static_cast<std::int64_t>(value.payload));
    case Value::Kind::kObject: {
      const Entry& e = entry(value.id);
      if (!e.inUse) {
        throw SimulationError("SmallMachine: writeList of free entry");
      }
      if (!e.hasFields) return heap_->decode(arena, e.addr);
      const sexpr::NodeRef head = writeList(arena, e.carField);
      const sexpr::NodeRef tail = writeList(arena, e.cdrField);
      return arena.cons(head, tail);
    }
  }
  throw SimulationError("SmallMachine: unreachable value kind");
}

bool SmallMachine::mergeableField(const Value& field) const {
  if (!field.isObject()) return true;  // atoms merge as immediate words
  const Entry& e = entry(field.id);
  return e.inUse && !e.hasFields && e.refCount == 1 &&
         externalRefs(field.id) == 0;
}

bool SmallMachine::compressiblePair(std::uint32_t id) const {
  const Entry& e = entry(id);
  if (!e.inUse || !e.hasFields) return false;
  // A shared object child would carry two references and fail the rc==1
  // test inside mergeableField; identical object ids cannot both be
  // mergeable.
  if (e.carField.isObject() && e.cdrField.isObject() &&
      e.carField.id == e.cdrField.id) {
    return false;
  }
  // Atoms-only pairs are foldable too: the merge frees no entry by
  // itself, but it converts this entry to an unsplit heap object, which
  // lets *its* parent merge on the next pass — the bottom-up cascade that
  // writes a cons chain's endo-structure back into the heap.
  return mergeableField(e.carField) && mergeableField(e.cdrField);
}

void SmallMachine::mergePair(std::uint32_t id) {
  Entry& e = entry(id);
  const HeapWord carWord = valueToWord(e.carField);
  const HeapWord cdrWord = valueToWord(e.cdrField);
  const heap::HeapBackend::CellRef cell = heap_->merge(carWord, cdrWord);
  Entry& parent = entry(id);
  parent.hasFields = false;
  parent.carField = Value::nil();
  parent.cdrField = Value::nil();
  parent.addr = HeapWord::pointer(cell);
  ++stats_.merges;
}

namespace {

std::string fieldToString(const SmallMachine::Value& value,
                          const sexpr::SymbolTable& symbols) {
  switch (value.kind) {
    case SmallMachine::Value::Kind::kNil:
      return "nil";
    case SmallMachine::Value::Kind::kSymbol:
      return symbols.name(static_cast<sexpr::SymbolId>(value.payload));
    case SmallMachine::Value::Kind::kInteger:
      return std::to_string(static_cast<std::int64_t>(value.payload));
    case SmallMachine::Value::Kind::kObject:
      return "L" + std::to_string(value.id);
  }
  return "?";
}

}  // namespace

std::string SmallMachine::dumpTable(const sexpr::SymbolTable& symbols) const {
  std::string out = "  ID   | CAR    | CDR    | REF | ADDR\n";
  for (std::uint32_t id = 0; id < entries_.size(); ++id) {
    const Entry& e = entries_[id];
    if (!e.inUse) continue;
    std::string car = "-";
    std::string cdr = "-";
    std::string addr = "-";
    if (e.hasFields) {
      car = fieldToString(e.carField, symbols);
      cdr = fieldToString(e.cdrField, symbols);
    } else if (e.addr.isPointer()) {
      addr = "a" + std::to_string(e.addr.payload);
    }
    auto pad = [](std::string s, std::size_t w) {
      if (s.size() < w) s.append(w - s.size(), ' ');
      return s;
    };
    out += "  " + pad("L" + std::to_string(id), 5) + "| " + pad(car, 7) +
           "| " + pad(cdr, 7) + "| " + pad(std::to_string(e.refCount), 4) +
           "| " + addr + "\n";
  }
  return out;
}

std::uint64_t SmallMachine::compress(bool all) {
  std::uint64_t merges = 0;
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::uint32_t id = 0; id < entries_.size(); ++id) {
      if (!compressiblePair(id)) continue;
      mergePair(id);
      ++merges;
      if (!all) return merges;
      progress = true;
    }
  }
  return merges;
}

}  // namespace small::core
