// The trace-driven SMALL simulator (§5.2.1).
//
// "The simulator monitors the contents of the LPT and the control-cum-
//  binding stack over the function calls and list manipulating primitives
//  of a trace."
//
// The Evaluation Processor is modeled as the thesis models it: a control/
// binding stack updated on every function enter/exit, with the argument of
// each primitive chosen by the chaining flag or by the ArgProb/LocProb
// probabilities, rebinding with probability ReadProb, and result
// disposition governed by BindProb. The List Processor executes each
// primitive against the LPT; an optional comparison data cache observes the
// same access stream through the conventional-memory address shadow.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "cache/lru_cache.hpp"
#include "obs/snapshot.hpp"
#include "small/config.hpp"
#include "small/list_processor.hpp"
#include "support/stats.hpp"
#include "trace/preprocess.hpp"

namespace small::core {

/// Everything the Chapter 5 tables and figures need from one run.
struct SimResult {
  LptStats lptStats;
  LpStats lpStats;

  /// Per-entry lifetime maximum counts at free time (the §2.3.4 M3L
  /// truncated-counter study input).
  support::Histogram lifetimeMaxCounts;

  std::uint64_t lptHits = 0;     ///< car/cdr satisfied from table fields
  std::uint64_t lptMisses = 0;   ///< car/cdr requiring a heap split
  double lptHitRate = 0.0;

  std::uint64_t cacheHits = 0;   ///< comparison cache, car/cdr stream only
  std::uint64_t cacheMisses = 0;
  double cacheHitRate = 0.0;

  std::uint32_t peakOccupancy = 0;  ///< max in-use LPT entries
  double averageOccupancy = 0.0;

  bool pseudoOverflowOccurred = false;
  bool trueOverflowOccurred = false;

  std::uint64_t primitivesSimulated = 0;
  std::uint64_t functionCalls = 0;
};

class Simulator {
 public:
  Simulator(const SimConfig& config, const trace::PreprocessedTrace& trace);

  /// Record an `lpt.occupancy` telemetry series into `buffer` every
  /// `every` primitives (epoch = primitives simulated — deterministic).
  /// Call before run(); a null/disabled buffer keeps the run untouched.
  void attachTelemetry(obs::TelemetryBuffer* buffer, std::uint64_t every);

  SimResult run();

 private:
  struct StackItem {
    enum class Kind : std::uint8_t { kAtom, kEntry, kLarge };
    Kind kind = Kind::kAtom;
    EntryId id = kNoEntry;
    bool isArgument = false;  ///< function argument vs local/temporary
    bool isTemp = false;      ///< pushed value, consumable by chaining;
                              ///< never true for bindings, whose stack
                              ///< slots must survive until function exit
  };

  struct Frame {
    std::size_t base = 0;       ///< stack index of the first item
    std::uint8_t argCount = 0;  ///< leading items that are arguments
  };

  void onFunctionEnter(const trace::PreprocessedEvent& event);
  void onFunctionExit();
  void onPrimitive(const trace::PreprocessedEvent& event);

  /// Index of the stack item chosen as this primitive's list argument, or
  /// nullopt if a fresh read-in is required. `consumedTemp` is set when
  /// the chained top-of-stack temporary was taken.
  std::optional<std::size_t> selectArgument(
      const trace::PreprocessedEvent& event, bool* consumedTemp);

  /// Pick a random stack index holding a list (entry or large) within
  /// [lo, hi); nullopt if none.
  std::optional<std::size_t> pickListItem(std::size_t lo, std::size_t hi);

  void releaseItem(const StackItem& item);
  void pushResult(const AccessResult& result);
  void disposeValue(StackItem value);
  void touchCache(const StackItem& item, bool countIt);
  void sampleOccupancy();
#ifdef SMALL_SIM_VERIFY
  void verifyStackRefs(const char* where);
#endif

  SimConfig config_;
  const trace::PreprocessedTrace& trace_;
  support::Rng rng_;
  ListProcessor lp_;
  std::unique_ptr<cache::LruCache> cache_;

  std::vector<StackItem> stack_;
  std::vector<Frame> frames_;

  std::uint64_t cacheHits_ = 0;
  std::uint64_t cacheMisses_ = 0;
  std::uint32_t peakOccupancy_ = 0;
  support::RunningStats occupancy_;
  std::uint64_t primitives_ = 0;
  std::uint64_t functionCalls_ = 0;
  std::unique_ptr<obs::Snapshotter> telemetrySnap_;
};

/// Convenience: preprocess-and-simulate with the given config.
SimResult simulateTrace(const SimConfig& config,
                        const trace::PreprocessedTrace& trace);

/// Same, with an occupancy telemetry series sampled every `every`
/// primitives into `telemetry` (see Simulator::attachTelemetry).
SimResult simulateTrace(const SimConfig& config,
                        const trace::PreprocessedTrace& trace,
                        obs::TelemetryBuffer* telemetry,
                        std::uint64_t every);

}  // namespace small::core
