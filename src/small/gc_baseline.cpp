#include "small/gc_baseline.hpp"

#include <unordered_set>

#include "support/error.hpp"

namespace small::core {

using support::SimulationError;

namespace {

std::uint64_t reachableEntries(const Lpt& lpt, EntryId root) {
  if (root == kNoEntry) return 0;
  std::unordered_set<EntryId> seen{root};
  std::vector<EntryId> work{root};
  while (!work.empty()) {
    const EntryId id = work.back();
    work.pop_back();
    const LptEntry& entry = lpt.entry(id);
    for (const EntryId child : {entry.car, entry.cdr}) {
      if (child != kNoEntry && seen.insert(child).second) {
        work.push_back(child);
      }
    }
  }
  return seen.size();
}

}  // namespace

GcBaselineResult runScriptOnLpt(const gc::Script& script) {
  // Size for the worst case: under the lazy policy a freed entry is only
  // reusable after it is popped, so the in-use+free-stack population can
  // transiently approach the total allocation count.
  const std::uint64_t bound = script.allocationBound() + 16;
  Lpt lpt(static_cast<std::uint32_t>(bound), ReclaimPolicy::kLazy);
  std::vector<EntryId> roots(script.slots, kNoEntry);

  const auto setSlot = [&](std::uint16_t slot, EntryId id) {
    if (id != kNoEntry) lpt.incRef(id);
    const EntryId old = roots[slot];
    roots[slot] = id;
    if (old != kNoEntry) lpt.decRef(old);
  };
  const auto consEntry = [&](EntryId car, EntryId cdr) {
    const EntryId id = lpt.allocate();
    if (id == kNoEntry) {
      throw SimulationError("runScriptOnLpt: table exhausted");
    }
    LptEntry& entry = lpt.entry(id);
    entry.car = car;
    entry.cdr = cdr;
    if (car != kNoEntry) lpt.incRef(car);
    if (cdr != kNoEntry) lpt.incRef(cdr);
    return id;
  };

  for (const gc::ScriptOp& op : script.ops) {
    switch (op.kind) {
      case gc::ScriptOp::Kind::kNewList: {
        EntryId spine = kNoEntry;
        for (std::uint16_t k = 0; k < op.length; ++k) {
          const bool shared = op.share > 0 && k > 0 && k % op.share == 0;
          spine = consEntry(shared ? spine : kNoEntry, spine);
        }
        setSlot(op.dst, spine);
        break;
      }
      case gc::ScriptOp::Kind::kCar:
      case gc::ScriptOp::Kind::kCdr: {
        const EntryId cell = roots[op.a];
        EntryId target = kNoEntry;
        if (cell != kNoEntry) {
          const LptEntry& entry = lpt.entry(cell);
          target = op.kind == gc::ScriptOp::Kind::kCar ? entry.car
                                                       : entry.cdr;
        }
        setSlot(op.dst, target);
        break;
      }
      case gc::ScriptOp::Kind::kCons:
        setSlot(op.dst, consEntry(roots[op.a], roots[op.b]));
        break;
      case gc::ScriptOp::Kind::kSetCar:
      case gc::ScriptOp::Kind::kSetCdr: {
        const EntryId cell = roots[op.a];
        if (cell == kNoEntry) break;
        LptEntry& entry = lpt.entry(cell);
        EntryId& field =
            op.kind == gc::ScriptOp::Kind::kSetCar ? entry.car : entry.cdr;
        const EntryId old = field;
        const EntryId added = roots[op.b];
        field = added;
        if (added != kNoEntry) lpt.incRef(added);
        if (old != kNoEntry) lpt.decRef(old);
        break;
      }
      case gc::ScriptOp::Kind::kCopy:
        setSlot(op.dst, roots[op.a]);
        break;
      case gc::ScriptOp::Kind::kClear:
        setSlot(op.dst, kNoEntry);
        break;
    }
  }

  GcBaselineResult result;
  result.lazySettled = lpt.settleLazyFrees();
  std::vector<EntryId> liveRoots;
  for (const EntryId id : roots) {
    if (id != kNoEntry) liveRoots.push_back(id);
  }
  result.cycleReclaimed = lpt.recoverCycles(liveRoots);
  result.finalLiveEntries = lpt.inUseCount();
  result.rootReachable.reserve(roots.size());
  for (const EntryId id : roots) {
    result.rootReachable.push_back(reachableEntries(lpt, id));
  }
  result.lptStats = lpt.stats();
  return result;
}

}  // namespace small::core
