// The List Processor (§4.3.2): executes the EP's list-manipulating
// requests against the LPT and the (modeled) heap.
//
// Operations: readlist, car, cdr, rplaca, rplacd, cons, copy — plus the
// EP-side reference messages (bind/unbind) and overflow handling:
//   pseudo overflow -> compression (Fig 4.8 merges),
//   true overflow   -> cycle recovery, then overflow (bypass) mode
//                      (§4.3.2.3) with large-address accounting.
//
// The heap behind the LP is modeled at the fidelity of the thesis'
// simulator: objects have sizes drawn from the n/p shape carried on each
// entry, split-child addresses follow Clark's pointer-distance shape, and
// every entry also carries a conventional-memory "cache address" so the
// same operation stream can drive the §5.2.5 comparison cache.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "heap/address_model.hpp"
#include "small/config.hpp"
#include "small/lpt.hpp"
#include "support/rng.hpp"

namespace small::core {

/// Result of a car/cdr request: either an LPT identifier (list or atom
/// object entry) or an immediate atom value (no entry allocated — used in
/// overflow mode and for nil results).
struct AccessResult {
  EntryId id = kNoEntry;
  bool isAtom = false;  ///< the object is an atom (entry may still exist)
  bool lptHit = false;  ///< satisfied from the car/cdr field (§5.2.5)
};

/// LP-level activity counters beyond the LptStats.
struct LpStats {
  std::uint64_t splits = 0;          ///< heap split requests (LPT misses)
  std::uint64_t hits = 0;            ///< car/cdr satisfied from the table
  std::uint64_t modifies = 0;        ///< rplaca/rplacd requests served
  std::uint64_t merges = 0;          ///< compression merges performed
  std::uint64_t pseudoOverflows = 0;
  std::uint64_t trueOverflows = 0;
  std::uint64_t cycleRecoveries = 0;
  std::uint64_t cycleEntriesReclaimed = 0;
  std::uint64_t overflowModeOps = 0;  ///< operations served in bypass mode
  std::uint64_t heapFrees = 0;        ///< heap objects handed back
  std::uint64_t epRefOps = 0;         ///< split mode: EP-side count updates
  std::uint32_t epMaxRefCount = 0;    ///< split mode: max EP-side count
};

class ListProcessor {
 public:
  ListProcessor(const SimConfig& config, support::Rng& rng);

  // --- list-manipulating primitives (§4.3.2.2) ---

  /// readlist: new list data enters the heap; returns the new identifier.
  /// `previous` (the variable's old binding) is dereferenced first.
  EntryId readList(std::optional<EntryId> previous, std::uint32_t n,
                   std::uint32_t p);

  AccessResult car(EntryId id) { return access(id, /*wantCar=*/true); }
  AccessResult cdr(EntryId id) { return access(id, /*wantCar=*/false); }

  void rplaca(EntryId target, EntryId value) {
    modify(target, value, /*isCar=*/true);
  }
  void rplacd(EntryId target, EntryId value) {
    modify(target, value, /*isCar=*/false);
  }

  /// cons: a new LPT entry; no heap activity (§4.3.2.2.4).
  EntryId cons(EntryId head, EntryId tail);

  /// copy: a fresh object with the same structure (call-by-value support).
  EntryId copy(EntryId id);

  // --- EP reference messages ---
  void bind(EntryId id);    ///< a stack/variable reference was created
  void unbind(EntryId id);  ///< a stack/variable reference went away

  // --- overflow (bypass) mode operations (§4.3.2.3) ---
  // When the LPT cannot supply an entry even after compression and cycle
  // recovery, results are "large" heap addresses held directly by the EP.
  // The LP counts outstanding large identifiers and returns to fast mode
  // when the count drops to zero.
  AccessResult largeAccess(bool wantCar);
  void largeBind() { ++overflowOutstanding_; }
  void largeUnbind();

  // --- introspection ---
  Lpt& lpt() { return lpt_; }
  const Lpt& lpt() const { return lpt_; }
  LpStats& stats() { return stats_; }
  const LpStats& stats() const { return stats_; }
  bool inOverflowMode() const { return overflowOutstanding_ > 0; }

  /// External (EP-held) reference count shadow — what the EP's stack
  /// holds; used to decide compressibility and as cycle-recovery roots.
  std::uint32_t externalRefs(EntryId id) const;

  /// Cache-model address of the two-pointer cell backing this entry.
  std::uint64_t cacheAddress(EntryId id) const {
    return lpt_.entry(id).cacheAddr;
  }

  /// Run one compression pass by hand (exposed for tests/benches).
  std::uint64_t compress(bool all);

  /// The cycle-recovery root set: every id the EP currently holds a
  /// reference to, in ascending EntryId order. O(live roots) — built from
  /// the incrementally maintained non-zero set, so the order (and every
  /// order-sensitive stat downstream) is independent of hash-table layout.
  std::vector<EntryId> externalRoots() const;

 private:
  AccessResult access(EntryId id, bool wantCar);
  void modify(EntryId target, EntryId value, bool isCar);

  /// Advance the hybrid policy's notion of time. §4.3.3.2 windows are
  /// measured in elapsed primitive operations, so every primitive entry
  /// point ticks this — not just overflow attempts.
  void notePrimitive() { ++opCounter_; }

  /// Run the overflow ladder (compress -> cycle-recover) until at least
  /// `needed` entries are free; false means bypass mode is unavoidable.
  bool ensureFree(std::uint32_t needed);

  /// Allocate honoring the overflow protocol; kNoEntry on true overflow.
  EntryId allocateEntry();

  /// Split the heap object behind `id` into car/cdr entries (Fig 4.5).
  /// Returns false when the table cannot make room (bypass mode).
  bool split(EntryId id);

  /// Hand one reference on `id` to the EP, with the mode-appropriate
  /// reference accounting.
  void returnRef(EntryId id);

  /// Sample how the object's shape decomposes at its first cell.
  struct Decomposition {
    bool carIsAtom = false;
    std::uint32_t carN = 0, carP = 0;
    bool cdrIsNil = false;
    std::uint32_t cdrN = 0, cdrP = 0;
  };
  Decomposition decompose(const LptEntry& parent);

  bool compressiblePair(EntryId parent, EntryId* carChild,
                        EntryId* cdrChild) const;
  void mergePair(EntryId parent, EntryId carChild, EntryId cdrChild);

  // split-refcount mode helpers
  void epIncrement(EntryId id);
  void epDecrement(EntryId id);

  SimConfig config_;
  support::Rng& rng_;
  Lpt lpt_;
  heap::AddressModel heap_;
  LpStats stats_;

  // EP-side reference table. In base mode it is a shadow used only for
  // compressibility/root decisions; in split mode it is the real count.
  // Dense layout, indexed by EntryId (bounded by the table size): lookups
  // are a single load, and the separately maintained non-zero id set makes
  // root collection O(live roots) instead of a hash-table walk.
  std::vector<std::uint32_t> epRefs_;   ///< count per id
  std::vector<EntryId> epNonZero_;      ///< ids with count > 0 (unordered)
  std::vector<std::uint32_t> epPos_;    ///< id -> index in epNonZero_

  // Overflow (bypass) mode: operations create "large address" objects in a
  // side table; the LP returns to fast mode when none remain outstanding.
  std::uint64_t overflowOutstanding_ = 0;

  // Hybrid compression policy state.
  std::uint64_t pseudoInWindow_ = 0;
  std::uint64_t windowStart_ = 0;
  std::uint64_t opCounter_ = 0;
};

}  // namespace small::core
