#include "small/list_processor.hpp"

#include <algorithm>

namespace small::core {

using support::SimulationError;

ListProcessor::ListProcessor(const SimConfig& config, support::Rng& rng)
    : config_(config),
      rng_(rng),
      lpt_(config.tableSize, config.reclaim),
      epRefs_(config.tableSize, 0),
      epPos_(config.tableSize, kNoEntry) {}

std::uint32_t ListProcessor::externalRefs(EntryId id) const {
  return id < epRefs_.size() ? epRefs_[id] : 0;
}

void ListProcessor::epIncrement(EntryId id) {
  if (id >= epRefs_.size()) {
    throw SimulationError("ListProcessor: EP reference to bad entry id");
  }
  std::uint32_t& count = epRefs_[id];
  if (count == 0) {
    epPos_[id] = static_cast<std::uint32_t>(epNonZero_.size());
    epNonZero_.push_back(id);
  }
  ++count;
  ++stats_.epRefOps;
  stats_.epMaxRefCount = std::max(stats_.epMaxRefCount, count);
  if (config_.splitRefCounts && count == 1) {
    lpt_.setStackBit(id, true);
  }
}

void ListProcessor::epDecrement(EntryId id) {
  if (id >= epRefs_.size() || epRefs_[id] == 0) {
    throw SimulationError("ListProcessor: EP reference underflow");
  }
  ++stats_.epRefOps;
  if (--epRefs_[id] == 0) {
    // Swap-remove from the non-zero set; O(1) either way.
    const std::uint32_t pos = epPos_[id];
    const EntryId last = epNonZero_.back();
    epNonZero_[pos] = last;
    epPos_[last] = pos;
    epNonZero_.pop_back();
    epPos_[id] = kNoEntry;
    if (config_.splitRefCounts) lpt_.setStackBit(id, false);
  }
}

void ListProcessor::returnRef(EntryId id) {
  // In base mode every EP reference is also counted in the LPT; in split
  // mode only the EP-side table changes (plus a StackBit message on the
  // 0 -> 1 transition).
  if (!config_.splitRefCounts) lpt_.incRef(id);
  epIncrement(id);
}

void ListProcessor::bind(EntryId id) { returnRef(id); }

void ListProcessor::unbind(EntryId id) {
  epDecrement(id);
  if (!config_.splitRefCounts) lpt_.decRef(id);
}

AccessResult ListProcessor::largeAccess(bool wantCar) {
  (void)wantCar;
  ++stats_.overflowModeOps;
  AccessResult result;
  result.id = kNoEntry;
  result.isAtom = rng_.chance(0.35);
  if (!result.isAtom) ++overflowOutstanding_;
  return result;
}

void ListProcessor::largeUnbind() {
  if (overflowOutstanding_ == 0) {
    throw SimulationError("ListProcessor: large-reference underflow");
  }
  --overflowOutstanding_;
}

std::vector<EntryId> ListProcessor::externalRoots() const {
  // The mark phase is order-independent, but downstream consumers (and
  // any future order-sensitive stat) get a canonical ascending order.
  std::vector<EntryId> roots(epNonZero_.begin(), epNonZero_.end());
  std::sort(roots.begin(), roots.end());
  return roots;
}

bool ListProcessor::ensureFree(std::uint32_t needed) {
  while (lpt_.size() - lpt_.inUseCount() < needed) {
    bool all = config_.compression == CompressionPolicy::kCompressAll;
    if (config_.compression == CompressionPolicy::kHybrid) {
      if (opCounter_ - windowStart_ > config_.hybridWindow) {
        windowStart_ = opCounter_;
        pseudoInWindow_ = 0;
      }
      ++pseudoInWindow_;
      all = pseudoInWindow_ >= config_.hybridThreshold;
    }
    const std::uint64_t merged = compress(all);
    if (merged > 0) {
      ++stats_.pseudoOverflows;
      continue;
    }
    ++stats_.trueOverflows;
    ++stats_.cycleRecoveries;
    const std::uint64_t reclaimed = lpt_.recoverCycles(externalRoots());
    stats_.cycleEntriesReclaimed += reclaimed;
    if (reclaimed == 0) return false;
  }
  return true;
}

EntryId ListProcessor::allocateEntry() {
  if (!ensureFree(1)) return kNoEntry;
  return lpt_.allocate();
}

bool ListProcessor::compressiblePair(EntryId parent, EntryId* carChild,
                                     EntryId* cdrChild) const {
  const LptEntry& p = lpt_.entry(parent);
  if (!p.inUse || p.car == kNoEntry || p.cdr == kNoEntry) return false;
  auto mergeable = [&](EntryId childId) {
    const LptEntry& child = lpt_.entry(childId);
    return child.inUse && child.refCount == 1 && !child.stackBit &&
           externalRefs(childId) == 0 && child.car == kNoEntry &&
           child.cdr == kNoEntry && child.hasAddr;
  };
  if (p.car == p.cdr) return false;  // shared child carries two references
  if (!mergeable(p.car) || !mergeable(p.cdr)) return false;
  *carChild = p.car;
  *cdrChild = p.cdr;
  return true;
}

void ListProcessor::mergePair(EntryId parent, EntryId carChild,
                              EntryId cdrChild) {
  // Heap merge: a fresh cell pointing at the two halves (§4.3.3.2).
  const std::uint64_t merged = heap_.allocateObject(1);
  LptEntry& p = lpt_.entry(parent);
  p.addr = merged;
  p.cacheAddr = merged;
  p.hasAddr = true;
  p.car = kNoEntry;
  p.cdr = kNoEntry;
  lpt_.decRef(carChild);  // the parent's field references go away
  lpt_.decRef(cdrChild);
  ++stats_.merges;
}

std::uint64_t ListProcessor::compress(bool all) {
  // Ascending in-use scan via the Lpt's packed flag bytes: O(in-use)
  // entries touched per pass instead of O(table). The ascending order is
  // what keeps Compress-One merge sequences deterministic.
  std::uint64_t merges = 0;
  bool progress = true;
  while (progress) {
    progress = false;
    for (EntryId id = lpt_.firstInUse(); id != kNoEntry;
         id = lpt_.nextInUse(id + 1)) {
      EntryId carChild = kNoEntry;
      EntryId cdrChild = kNoEntry;
      if (!compressiblePair(id, &carChild, &cdrChild)) continue;
      mergePair(id, carChild, cdrChild);
      ++merges;
      if (!all) return merges;  // Compress-One: immediate need met
      progress = true;
    }
  }
  return merges;
}

ListProcessor::Decomposition ListProcessor::decompose(const LptEntry& parent) {
  Decomposition d;
  const std::uint32_t n = parent.n;
  const std::uint32_t p = parent.p;
  const std::uint32_t weight = n + p;
  if (weight == 0) {
    d.carIsAtom = true;
    d.cdrIsNil = true;
    return d;
  }
  const bool firstIsAtom = p == 0 || rng_.below(weight) < n;
  std::uint32_t restN = n;
  std::uint32_t restP = p;
  if (firstIsAtom) {
    d.carIsAtom = true;
    restN = n > 0 ? n - 1 : 0;
  } else {
    d.carP = static_cast<std::uint32_t>(rng_.below(p));
    d.carN = 1 + static_cast<std::uint32_t>(
                     rng_.below(std::max<std::uint32_t>(n / 2, 1)));
    d.carN = std::min(d.carN, n);
    restN = n - d.carN;
    restP = p - std::min(p, d.carP + 1);
  }
  d.cdrN = restN;
  d.cdrP = restP;
  d.cdrIsNil = restN + restP == 0;
  return d;
}

bool ListProcessor::split(EntryId id) {
  // Two fresh entries are needed; make room before touching the parent so
  // a failed allocation can never leave a half-split object.
  if (!ensureFree(2)) return false;

  const Decomposition d = decompose(lpt_.entry(id));
  const std::uint64_t parentAddr = lpt_.entry(id).addr;
  const std::uint64_t parentCacheAddr = lpt_.entry(id).cacheAddr;

  const EntryId carId = lpt_.allocate();
  const EntryId cdrId = lpt_.allocate();
  if (carId == kNoEntry || cdrId == kNoEntry) {
    throw SimulationError("ListProcessor: split allocation failed");
  }

  LptEntry& carEntry = lpt_.entry(carId);
  carEntry.isAtom = d.carIsAtom;
  carEntry.n = d.carN;
  carEntry.p = d.carP;
  carEntry.addr = heap_.childAddress(parentAddr, rng_);
  carEntry.cacheAddr = heap_.childAddress(parentCacheAddr, rng_);
  carEntry.hasAddr = true;
  carEntry.refCount = 1;  // referenced by the parent's car field

  LptEntry& cdrEntry = lpt_.entry(cdrId);
  cdrEntry.isAtom = d.cdrIsNil;
  cdrEntry.n = d.cdrN;
  cdrEntry.p = d.cdrP;
  cdrEntry.addr = heap_.childAddress(parentAddr, rng_);
  cdrEntry.cacheAddr = heap_.childAddress(parentCacheAddr, rng_);
  cdrEntry.hasAddr = true;
  cdrEntry.refCount = 1;

  LptEntry& parent = lpt_.entry(id);
  parent.car = carId;
  parent.cdr = cdrId;
  parent.hasAddr = false;  // the heap cell was consumed by the split
  ++stats_.heapFrees;
  ++stats_.splits;
  return true;
}

AccessResult ListProcessor::access(EntryId id, bool wantCar) {
  notePrimitive();
  const LptEntry& slot = lpt_.entry(id);
  if (!slot.inUse) throw SimulationError("ListProcessor: access free entry");
  if (slot.isAtom) throw SimulationError("ListProcessor: car/cdr of atom");

  const EntryId cached = wantCar ? slot.car : slot.cdr;
  if (cached != kNoEntry) {
    ++stats_.hits;
    AccessResult result;
    result.id = cached;
    result.isAtom = lpt_.entry(cached).isAtom;
    result.lptHit = true;
    returnRef(cached);
    return result;
  }

  // Miss: the heap object must be split (Fig 4.5).
  if (!split(id)) {
    return largeAccess(wantCar);  // bypass mode (§4.3.2.3)
  }
  const LptEntry& after = lpt_.entry(id);
  const EntryId child = wantCar ? after.car : after.cdr;
  AccessResult result;
  result.id = child;
  result.isAtom = lpt_.entry(child).isAtom;
  result.lptHit = false;
  returnRef(child);
  return result;
}

void ListProcessor::modify(EntryId target, EntryId value, bool isCar) {
  notePrimitive();
  {
    const LptEntry& slot = lpt_.entry(target);
    if (slot.isAtom) {
      throw SimulationError("ListProcessor: rplac on an atom");
    }
    const EntryId field = isCar ? slot.car : slot.cdr;
    if (field == kNoEntry && !split(target)) {
      // Bypass mode: the modification happens directly in the heap.
      ++stats_.overflowModeOps;
      return;
    }
  }
  LptEntry& slot = lpt_.entry(target);
  const EntryId old = isCar ? slot.car : slot.cdr;
  if (isCar) {
    slot.car = value;
  } else {
    slot.cdr = value;
  }
  lpt_.incRef(value);
  if (old != kNoEntry) lpt_.decRef(old);
  ++stats_.modifies;
}

EntryId ListProcessor::cons(EntryId head, EntryId tail) {
  notePrimitive();
  const EntryId id = allocateEntry();
  if (id == kNoEntry) {
    ++stats_.overflowModeOps;
    ++overflowOutstanding_;
    return kNoEntry;
  }
  LptEntry& z = lpt_.entry(id);
  z.car = head;
  z.cdr = tail;
  lpt_.incRef(head);
  lpt_.incRef(tail);
  // Combined shape: head becomes the first element, tail the rest.
  const LptEntry& h = lpt_.entry(head);
  const LptEntry& t = lpt_.entry(tail);
  z.n = (h.isAtom ? 1 : h.n) + (t.isAtom ? 0 : t.n);
  z.p = (h.isAtom ? 0 : h.p + 1) + (t.isAtom ? 0 : t.p);
  z.cacheAddr = heap_.allocateObject(1);  // the conventional cell write
  returnRef(id);
  return id;
}

EntryId ListProcessor::readList(std::optional<EntryId> previous,
                                std::uint32_t n, std::uint32_t p) {
  notePrimitive();
  if (previous) unbind(*previous);
  const EntryId id = allocateEntry();
  if (id == kNoEntry) {
    ++stats_.overflowModeOps;
    ++overflowOutstanding_;
    return kNoEntry;
  }
  LptEntry& slot = lpt_.entry(id);
  slot.n = n;
  slot.p = p;
  slot.isAtom = n + p == 0;
  const std::uint32_t sizeCells = std::max<std::uint32_t>(n + p, 1);
  slot.addr = heap_.allocateObject(sizeCells);
  slot.cacheAddr = slot.addr;
  slot.hasAddr = true;
  returnRef(id);
  return id;
}

EntryId ListProcessor::copy(EntryId id) {
  notePrimitive();
  const LptEntry source = lpt_.entry(id);
  const EntryId fresh = allocateEntry();
  if (fresh == kNoEntry) {
    ++stats_.overflowModeOps;
    ++overflowOutstanding_;
    return kNoEntry;
  }
  LptEntry& slot = lpt_.entry(fresh);
  slot.n = source.n;
  slot.p = source.p;
  slot.isAtom = source.isAtom;
  const std::uint32_t sizeCells =
      std::max<std::uint32_t>(source.n + source.p, 1);
  slot.addr = heap_.allocateObject(sizeCells);
  slot.cacheAddr = slot.addr;
  slot.hasAddr = true;
  returnRef(fresh);
  return fresh;
}

}  // namespace small::core
