// Trace replay against the functional SMALL machine (small/machine.*).
//
// The five workload programs drive `Simulator` statistically; this
// replayer drives `SmallMachine` — real list structure in a real heap —
// from the same preprocessed traces, mirroring the Simulator's EP model:
// a control/binding stack updated on function enter/exit, arguments
// selected by the chaining flag or the ArgProb/LocProb probabilities,
// ReadProb re-reads, and BindProb result disposition. Fresh list values
// are synthesized deterministically from each event's recorded (n, p)
// shape, and every random draw happens in replayer logic (never in the
// machine), so one seed produces the *identical* operation sequence on
// every heap backend. The machine's representation-independent counters
// must therefore agree across backends, while the per-backend HeapStats
// diverge — which is exactly the comparison bench/heap_backend_comparison
// tabulates.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "sexpr/arena.hpp"
#include "small/machine.hpp"
#include "support/rng.hpp"
#include "trace/preprocess.hpp"

namespace small::core {

struct ReplayConfig {
  SmallMachine::Config machine;

  // EP-model probabilities, as in SimConfig (§5.2.1 values).
  double argProb = 0.60;
  double locProb = 0.30;
  double bindProb = 0.01;
  double readProb = 0.01;

  /// Cap on synthesized list sizes: recorded (n, p) shapes are clamped so
  /// one readlist cannot swamp the table.
  std::uint32_t maxShapeSymbols = 64;

  /// Once the top-level frame holds this many items, pushed results
  /// replace random bindings instead (keeps the stack O(call depth)).
  std::size_t topLevelStackBound = 256;

  std::uint64_t seed = 1;

  ReplayConfig() { machine.tableSize = 2048; }
};

/// What one replay run reports: the machine's logical event counts (equal
/// across backends for the same trace/seed) and the backend's physical
/// activity (the experimental axis).
struct ReplayResult {
  std::string backend;
  SmallMachine::Stats machine;
  heap::HeapStats heap;
  std::uint64_t primitives = 0;
  std::uint64_t functionCalls = 0;
  /// Entries still in use after the final stack unwind — cyclic structure
  /// built by rplaca/rplacd; identical across backends.
  std::uint32_t residualEntries = 0;
  /// Heap cells still live after shutdown (pinned by residual entries).
  std::uint64_t residualHeapCells = 0;
  /// Scavenger counters (all zero under the default refcount policy).
  gc::GcStats gcStats;
};

/// Periodic callback out of a replay run — the service mode's sessions
/// use it to interleave shard traffic with trace-driven interpreter work.
/// `onPrimitives(total)` fires after every `everyPrimitives`-th primitive
/// (never with everyPrimitives == 0). `onMachineReady` fires once, before
/// the first event, with a reference valid until the replay call returns
/// — callers stash it to sample machine-side state (gc pause counters)
/// from inside onPrimitives. The hook runs strictly between events and
/// never touches the replayer's RNG, so a hooked replay's ReplayResult is
/// bit-identical to the unhooked one.
struct ReplayHook {
  std::uint64_t everyPrimitives = 0;
  std::function<void(std::uint64_t)> onPrimitives;
  std::function<void(const SmallMachine&)> onMachineReady;
};

/// Replay a preprocessed trace through a SmallMachine configured per
/// `config` (including which heap backend it runs on).
ReplayResult replayTrace(const ReplayConfig& config,
                         const trace::PreprocessedTrace& trace);
ReplayResult replayTrace(const ReplayConfig& config,
                         const trace::PreprocessedTrace& trace,
                         const ReplayHook& hook);

/// Replay a mmap'd binary trace without ever materializing it: records
/// are decoded in caller-sized batches (trace::BinaryDecoder), run
/// through the incremental §5.2.1 preprocessor, and fed straight to the
/// machine, so the resident footprint is O(batch) regardless of trace
/// length and the whole loop stays in i-cache. Bit-identical to
/// replayTrace(config, preprocess(mapped.toTrace())) for the same seed.
ReplayResult replayMappedTrace(const ReplayConfig& config,
                               const trace::MappedTrace& mapped,
                               std::size_t batchSize = 1024);
ReplayResult replayMappedTrace(const ReplayConfig& config,
                               const trace::MappedTrace& mapped,
                               std::size_t batchSize,
                               const ReplayHook& hook);

}  // namespace small::core
