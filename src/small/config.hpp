// Simulator configuration (§5.2.1).
//
// "For a given simulation run, 6 simulator parameters can be specified:
//  (1) TableSize, (2) OverflowPolicy, (3) ArgProb, (4) LocProb,
//  (5) BindProb, and (6) ReadProb."
#pragma once

#include <cstdint>

namespace small::core {

/// Pseudo-overflow compression strategy (§4.3.2.3, §5.2.3).
enum class CompressionPolicy : std::uint8_t {
  kCompressOne,  ///< free just enough table space for the immediate need
  kCompressAll,  ///< compress every compressible pair at overflow time
  kHybrid,       ///< Compress-One, escalating to Compress-All when pseudo
                 ///< overflows become frequent (§5.2.3's hybrid scheme)
};

/// What happens to an entry's children when its reference count reaches
/// zero (§4.3.2.1 / Table 5.2's Refops-vs-RecRefops comparison).
enum class ReclaimPolicy : std::uint8_t {
  kLazy,       ///< children decremented only when the entry is reused
  kRecursive,  ///< children decremented immediately (unbounded work)
};

struct SimConfig {
  std::uint32_t tableSize = 4096;
  CompressionPolicy compression = CompressionPolicy::kCompressOne;
  ReclaimPolicy reclaim = ReclaimPolicy::kLazy;

  // Argument-selection probabilities. §5.2.1 reports the runs used
  // (0.6, 0.3, 0.01, 0.01).
  double argProb = 0.60;   ///< primitive argument is a function argument
  double locProb = 0.30;   ///< ... is a local variable
  double bindProb = 0.01;  ///< return value bound to a variable (vs pushed)
  double readProb = 0.01;  ///< variable was re-read since last access

  /// Split reference counts (§5.2.4 / Table 5.3): stack references are
  /// counted in an EP-side table; the LPT keeps internal counts + StackBit.
  bool splitRefCounts = false;

  /// Drive the comparison data cache alongside the LPT (§5.2.5).
  bool driveCache = false;
  std::uint64_t cacheEntries = 0;   ///< 0 = same as tableSize (Table 5.4)
  std::uint32_t cacheLineSize = 1;  ///< cells per line (Fig 5.5 sweeps this)

  /// Hybrid policy: escalate to Compress-All if this many pseudo overflows
  /// occur within one window of `hybridWindow` primitive events.
  std::uint32_t hybridThreshold = 4;
  std::uint64_t hybridWindow = 256;

  std::uint64_t seed = 1;
};

}  // namespace small::core
