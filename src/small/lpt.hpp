// The List Processor Table (§4.3.2, Fig 4.2).
//
// Each entry is an (identifier, car, cdr, refcount, address, mark) tuple.
// The identifier is the entry's index — the short name the EP uses for list
// objects. The car/cdr fields cache computed access edges; the address
// field maps to heap memory; the reference count manages both the entry's
// own lifetime and, transitively, the heap object's.
//
// Free entries form a LIFO stack threaded through the table (Fig 4.3), so
// both freeing and allocation are O(1). When an entry's count reaches zero
// it is pushed intact — its children are decremented only when the entry is
// reallocated (§4.3.2.1's lazy policy), bounding the work per free at the
// price of transiently occupied child entries. The recursive policy
// (immediate child decrement) is selectable for the Table 5.2 comparison.
//
// Hot-path layout: alongside the entry array the table maintains
//   * a packed flag byte per entry (in-use + cycle-recovery mark bits),
//     scanned eight entries per 64-bit word — `firstInUse`/`nextInUse`
//     walk the live set in ascending id order touching one byte per
//     entry instead of the full LptEntry record, and
//   * an intrusive doubly linked in-use list (prev/next ids threaded
//     through the entries), giving O(in-use) iteration where visit order
//     does not matter (mark clearing, occupancy walks).
// Compression and cycle-recovery sweeps therefore touch O(in-use)
// entries, not O(table).
#pragma once

#include <cstdint>
#include <vector>

#include "small/config.hpp"
#include "support/stats.hpp"
#include "support/error.hpp"

namespace small::core {

/// Entry identifier: index into the LPT. `kNoEntry` = absent edge.
using EntryId = std::uint32_t;
inline constexpr EntryId kNoEntry = 0xffffffffu;

struct LptEntry {
  EntryId car = kNoEntry;  ///< cached car edge
  EntryId cdr = kNoEntry;  ///< cached cdr edge
  std::uint32_t refCount = 0;
  std::uint64_t addr = 0;  ///< heap address (meaningful when hasAddr)
  bool hasAddr = false;
  bool inUse = false;
  bool isAtom = false;     ///< atom object: cannot be split further
  bool stackBit = false;   ///< split-refcount mode: stack references exist

  // Modeled object shape, used to size splits (n symbols, p sublists).
  std::uint32_t n = 0;
  std::uint32_t p = 0;

  // Cache-comparison address of the two-pointer cell representing this
  // object in the conventional-memory shadow model (§5.2.5).
  std::uint64_t cacheAddr = 0;

  EntryId freeNext = kNoEntry;   ///< free-stack link
  EntryId inUsePrev = kNoEntry;  ///< intrusive in-use list links
  EntryId inUseNext = kNoEntry;

  /// Largest count this entry reached during its current lifetime — the
  /// input to the §2.3.4 truncated-count (M3L) study.
  std::uint32_t lifetimeMaxCount = 0;
};

/// Reference-count and allocation event counters (Tables 5.2 / 5.3).
struct LptStats {
  std::uint64_t refOps = 0;       ///< reference count increments+decrements
  std::uint64_t gets = 0;         ///< entry allocations
  std::uint64_t frees = 0;        ///< counts reaching zero
  std::uint64_t lazyDecrements = 0;  ///< child decrements deferred to reuse
  std::uint32_t maxRefCount = 0;  ///< largest count observed (field sizing)
  std::uint64_t stackBitMessages = 0;  ///< split mode: EP->LP bit updates
};

class Lpt {
 public:
  Lpt(std::uint32_t size, ReclaimPolicy reclaim);

  std::uint32_t size() const { return size_; }
  std::uint32_t inUseCount() const { return inUseCount_; }
  bool hasFreeEntry() const { return freeTop_ != kNoEntry; }

  /// Pop a free entry, lazily decrementing the previous occupant's
  /// children (which may cascade further frees under either policy).
  /// Returns kNoEntry if the free stack is empty (overflow).
  EntryId allocate();

  LptEntry& entry(EntryId id);
  const LptEntry& entry(EntryId id) const;

  /// Increment/decrement an entry's count. Decrement to zero frees the
  /// entry (unless its StackBit is held in split-refcount mode).
  void incRef(EntryId id);
  void decRef(EntryId id);

  /// Split-refcount support: set/clear the stack bit; clearing frees the
  /// entry if its internal count is already zero.
  void setStackBit(EntryId id, bool value);

  /// Cycle recovery (§4.3.2.3): mark from the given roots through car/cdr
  /// edges, sweep unmarked in-use entries onto the free stack. Returns the
  /// number of entries reclaimed.
  std::uint64_t recoverCycles(const std::vector<EntryId>& roots);

  /// Perform every outstanding lazy child decrement now: free-stack
  /// entries keep their car/cdr edges referenced until reuse (§4.3.2.1),
  /// so the in-use set normally overshoots plain reachability. Settling
  /// runs those deferred decrements to a fixpoint, after which
  /// recoverCycles(roots) leaves *exactly* the root-reachable entries in
  /// use — the live-set ground truth the gc subsystem's differential
  /// comparison needs. Returns the number of deferred edges released.
  std::uint64_t settleLazyFrees();

  LptStats& stats() { return stats_; }
  const LptStats& stats() const { return stats_; }

  /// Distribution of per-entry lifetime maximum counts, sampled when each
  /// entry is freed. With k-bit *sticky* counters (M3L, §2.3.4) an entry
  /// is reclaimable iff its lifetime max never exceeded 2^k - 1, so this
  /// histogram's CDF is exactly the reclaimable fraction per width.
  const support::Histogram& lifetimeMaxCounts() const {
    return lifetimeMaxCounts_;
  }

  /// First in-use id >= `from` (ascending order), or kNoEntry. Scans the
  /// packed flag bytes eight entries per 64-bit word, so a sweep costs
  /// O(size/8 + visited) byte touches rather than O(size) entry loads.
  /// Safe against entries freed mid-iteration (the flag is re-read);
  /// callers must not allocate while iterating.
  EntryId nextInUse(EntryId from) const;
  EntryId firstInUse() const { return nextInUse(0); }

  /// Iterate in-use entry ids in ascending order (compression scans rely
  /// on this order — it is what keeps merge sequences deterministic).
  template <typename Fn>
  void forEachInUse(Fn&& fn) const {
    for (EntryId id = firstInUse(); id != kNoEntry; id = nextInUse(id + 1)) {
      fn(id);
    }
  }

  /// Iterate in-use entry ids in *unspecified* order via the intrusive
  /// in-use list: O(live entries) with no dependence on table size. The
  /// callback must not allocate or free entries.
  template <typename Fn>
  void forEachInUseUnordered(Fn&& fn) const {
    for (EntryId id = inUseHead_; id != kNoEntry;
         id = entries_[id].inUseNext) {
      fn(id);
    }
  }

 private:
  // Packed per-entry flag byte (scanned word-at-a-time by nextInUse).
  static constexpr std::uint8_t kFlagInUse = 0x01;
  static constexpr std::uint8_t kFlagMark = 0x02;

  bool marked(EntryId id) const { return (flags_[id] & kFlagMark) != 0; }
  void setMark(EntryId id) { flags_[id] |= kFlagMark; }
  void clearMark(EntryId id) { flags_[id] &= static_cast<std::uint8_t>(~kFlagMark); }

  void linkInUse(EntryId id);
  void unlinkInUse(EntryId id);

  void freeEntry(EntryId id);
  void dropChildren(EntryId id);  ///< decrement both children now

  std::uint32_t size_;
  ReclaimPolicy reclaim_;
  std::vector<LptEntry> entries_;
  /// One flag byte per entry, zero-padded to a multiple of 8 so the
  /// word-at-a-time scan never reads past the table.
  std::vector<std::uint8_t> flags_;
  EntryId freeTop_;
  EntryId inUseHead_ = kNoEntry;
  std::uint32_t inUseCount_ = 0;
  LptStats stats_;
  support::Histogram lifetimeMaxCounts_;
};

}  // namespace small::core
