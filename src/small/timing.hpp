// EP/LP timing and concurrency model (§4.3.2.5, Figs 4.10-4.13).
//
// "While the exact timing of EP-LP interaction will depend on these
//  factors, we can get an idea of the scope for concurrency in SMALL list
//  manipulation by assigning approximate values to these timing parameters
//  and constructing timing diagrams for typical operations."
//
// Each primitive class decomposes into the phases the thesis' diagrams
// show: EP work (environment interrogation, request dispatch), a
// synchronous window the EP must wait out (until the LP can return a
// value), and an LP *tail* — table updates and reference-count work the
// LP finishes while the EP has already moved on. The per-operation
// timings combine with a simulation's operation counts into a whole-run
// concurrency report: EP busy/idle, LP busy/idle, and the speedup over a
// Class M organization (one processor doing everything serially,
// Fig 2.2).
#pragma once

#include <cstdint>
#include <string>

#include "heap/backend.hpp"
#include "small/machine.hpp"
#include "small/simulator.hpp"

namespace small::core {

/// Latency parameters, in abstract cycles. Defaults follow the thesis'
/// qualitative ordering: table accesses are fast, heap splits slower,
/// I/O slowest.
struct TimingParams {
  std::uint32_t envLookup = 2;    ///< EP: environment interrogation per name
  std::uint32_t busTransfer = 1;  ///< EP<->LP request or response transfer
  std::uint32_t lptAccess = 1;    ///< LP: read an LPT entry / field
  std::uint32_t lptUpdate = 1;    ///< LP: write an LPT entry field
  std::uint32_t refCountOp = 1;   ///< LP: one reference-count update
  std::uint32_t entryAlloc = 1;   ///< LP: pop the free stack
  std::uint32_t heapSplit = 6;    ///< heap controller: split an object
  std::uint32_t heapMerge = 4;    ///< heap controller: merge two objects
  std::uint32_t listIo = 40;      ///< read list data from the outside world
  std::uint32_t epCompute = 2;    ///< EP: non-list work between primitives
  /// Heap controller: one physical cell-word read or write. Used by
  /// analyzeMachineConcurrency, where measured per-backend heap touches
  /// replace the fixed heapSplit/heapMerge estimates.
  std::uint32_t heapTouch = 2;
};

/// One operation's decomposition, as in the Figs 4.10-4.13 diagrams.
struct OpTiming {
  std::string name;
  std::uint32_t epBusy = 0;  ///< EP work before/around the request
  std::uint32_t epWait = 0;  ///< EP idle, waiting for the LP's value
  std::uint32_t lpBusy = 0;  ///< LP work needed before it can respond
  std::uint32_t lpTail = 0;  ///< LP work overlapped with resumed EP

  /// EP-visible latency of the operation.
  std::uint32_t epLatency() const { return epBusy + epWait; }
  /// Total LP occupancy for the operation.
  std::uint32_t lpTotal() const { return lpBusy + lpTail; }
  /// What a single-processor (Class M) organization would spend.
  std::uint32_t serialized() const { return epBusy + lpBusy + lpTail; }
};

// Per-class decompositions (Figs 4.10-4.13).
OpTiming readListTiming(const TimingParams& params);          // Fig 4.10
OpTiming accessHitTiming(const TimingParams& params);         // Fig 4.11
OpTiming accessMissTiming(const TimingParams& params);        // split path
OpTiming modifyTiming(const TimingParams& params);            // Fig 4.12
OpTiming consTiming(const TimingParams& params);              // Fig 4.13
OpTiming compressionTiming(const TimingParams& params);       // Fig 4.8

/// ASCII timeline of one operation, in the style of the thesis' figures.
std::string renderTimeline(const OpTiming& timing);

/// Whole-run concurrency report, combining a simulation's operation
/// counts with the per-class timings.
struct ConcurrencyReport {
  std::uint64_t epBusy = 0;
  std::uint64_t epIdle = 0;      ///< EP cycles stalled on LP responses
  std::uint64_t lpBusy = 0;
  std::uint64_t makespan = 0;    ///< overlapped EP/LP execution time
  std::uint64_t serialized = 0;  ///< Class M: one processor, no overlap

  double epUtilization() const {
    return makespan == 0 ? 0.0
                         : static_cast<double>(epBusy) /
                               static_cast<double>(makespan);
  }
  double lpUtilization() const {
    return makespan == 0 ? 0.0
                         : static_cast<double>(lpBusy) /
                               static_cast<double>(makespan);
  }
  /// Speedup of the EP/LP partition over the single-processor design.
  double speedup() const {
    return makespan == 0 ? 0.0
                         : static_cast<double>(serialized) /
                               static_cast<double>(makespan);
  }
};

ConcurrencyReport analyzeConcurrency(const SimResult& result,
                                     const TimingParams& params);

/// Concurrency report for a functional-machine run: the machine's
/// representation-independent operation counts give the EP/LP structure,
/// while the backend's *measured* heap touches replace the fixed
/// heapSplit/heapMerge charges — so the report differs across heap
/// representations exactly where the physical activity does.
ConcurrencyReport analyzeMachineConcurrency(const SmallMachine::Stats& machine,
                                            const heap::HeapStats& heap,
                                            const TimingParams& params);

}  // namespace small::core
