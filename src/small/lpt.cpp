#include "small/lpt.hpp"

#include <algorithm>
#include <bit>
#include <cstring>

namespace small::core {

using support::SimulationError;

Lpt::Lpt(std::uint32_t size, ReclaimPolicy reclaim)
    : size_(size),
      reclaim_(reclaim),
      entries_(size),
      flags_((static_cast<std::uint64_t>(size) + 7) & ~std::uint64_t{7}, 0),
      freeTop_(kNoEntry) {
  if (size == 0) throw SimulationError("Lpt: zero-sized table");
  // Build the initial free stack, low ids on top.
  for (std::uint32_t id = size; id-- > 0;) {
    entries_[id].freeNext = freeTop_;
    freeTop_ = id;
  }
}

LptEntry& Lpt::entry(EntryId id) {
  if (id >= size_) throw SimulationError("Lpt: bad entry id");
  return entries_[id];
}

const LptEntry& Lpt::entry(EntryId id) const {
  if (id >= size_) throw SimulationError("Lpt: bad entry id");
  return entries_[id];
}

EntryId Lpt::nextInUse(EntryId from) const {
  if (from >= size_) return kNoEntry;
  const std::uint8_t* bytes = flags_.data();
  std::uint64_t i = from;
  // Byte-scan to the next word boundary (padding bytes are always zero),
  // then skip eight entries at a time through empty words.
  while ((i & 7) != 0) {
    if (bytes[i] & kFlagInUse) return static_cast<EntryId>(i);
    ++i;
  }
  const std::uint64_t words = flags_.size() / 8;
  for (std::uint64_t w = i / 8; w < words; ++w) {
    std::uint64_t word;
    std::memcpy(&word, bytes + w * 8, 8);
    word &= 0x0101010101010101ull * kFlagInUse;
    if (word != 0) {
      const auto byte = static_cast<std::uint64_t>(std::countr_zero(word)) / 8;
      return static_cast<EntryId>(w * 8 + byte);
    }
  }
  return kNoEntry;
}

void Lpt::linkInUse(EntryId id) {
  LptEntry& slot = entries_[id];
  slot.inUsePrev = kNoEntry;
  slot.inUseNext = inUseHead_;
  if (inUseHead_ != kNoEntry) entries_[inUseHead_].inUsePrev = id;
  inUseHead_ = id;
}

void Lpt::unlinkInUse(EntryId id) {
  LptEntry& slot = entries_[id];
  if (slot.inUsePrev != kNoEntry) {
    entries_[slot.inUsePrev].inUseNext = slot.inUseNext;
  } else {
    inUseHead_ = slot.inUseNext;
  }
  if (slot.inUseNext != kNoEntry) {
    entries_[slot.inUseNext].inUsePrev = slot.inUsePrev;
  }
  slot.inUsePrev = kNoEntry;
  slot.inUseNext = kNoEntry;
}

EntryId Lpt::allocate() {
  if (freeTop_ == kNoEntry) return kNoEntry;
  const EntryId id = freeTop_;
  LptEntry& slot = entries_[id];
  freeTop_ = slot.freeNext;

  // Lazy child decrement: the previous occupant's edges are released only
  // now that the entry is being reused (§4.3.2.1).
  const EntryId oldCar = slot.car;
  const EntryId oldCdr = slot.cdr;
  slot = LptEntry{};
  slot.inUse = true;
  flags_[id] = kFlagInUse;
  linkInUse(id);
  ++inUseCount_;
  ++stats_.gets;
  if (oldCar != kNoEntry) {
    ++stats_.lazyDecrements;
    decRef(oldCar);
  }
  if (oldCdr != kNoEntry) {
    ++stats_.lazyDecrements;
    decRef(oldCdr);
  }
  return id;
}

void Lpt::incRef(EntryId id) {
  LptEntry& slot = entry(id);
  if (!slot.inUse) throw SimulationError("Lpt: incRef of free entry");
  ++slot.refCount;
  ++stats_.refOps;
  stats_.maxRefCount = std::max(stats_.maxRefCount, slot.refCount);
  slot.lifetimeMaxCount = std::max(slot.lifetimeMaxCount, slot.refCount);
}

void Lpt::decRef(EntryId id) {
  LptEntry& slot = entry(id);
  if (!slot.inUse) throw SimulationError("Lpt: decRef of free entry");
  if (slot.refCount == 0) throw SimulationError("Lpt: refcount underflow");
  --slot.refCount;
  ++stats_.refOps;
  if (slot.refCount == 0 && !slot.stackBit) freeEntry(id);
}

void Lpt::setStackBit(EntryId id, bool value) {
  LptEntry& slot = entry(id);
  if (!slot.inUse) throw SimulationError("Lpt: stack bit on free entry");
  if (slot.stackBit == value) return;
  slot.stackBit = value;
  // Setting the bit piggybacks on the LP operation that returned the
  // value to the EP; only the clearing transition is an extra EP->LP
  // message ("Only when one of those counts goes to zero need the LP be
  // informed", §5.2.4).
  if (!value) {
    ++stats_.stackBitMessages;
    if (slot.refCount == 0) freeEntry(id);
  }
}

void Lpt::freeEntry(EntryId id) {
  LptEntry& slot = entries_[id];
  lifetimeMaxCounts_.add(slot.lifetimeMaxCount);
  slot.lifetimeMaxCount = 0;
  slot.inUse = false;
  slot.stackBit = false;
  flags_[id] = 0;
  unlinkInUse(id);
  --inUseCount_;
  ++stats_.frees;
  if (reclaim_ == ReclaimPolicy::kRecursive) {
    dropChildren(id);
  }
  // Under the lazy policy the children stay referenced until reuse; the
  // entry is pushed intact.
  slot.freeNext = freeTop_;
  freeTop_ = id;
}

void Lpt::dropChildren(EntryId id) {
  LptEntry& slot = entries_[id];
  const EntryId oldCar = slot.car;
  const EntryId oldCdr = slot.cdr;
  slot.car = kNoEntry;
  slot.cdr = kNoEntry;
  if (oldCar != kNoEntry) decRef(oldCar);
  if (oldCdr != kNoEntry) decRef(oldCdr);
}

std::uint64_t Lpt::settleLazyFrees() {
  // Releasing a free entry's edges can drive other counts to zero, which
  // frees more entries — whose edges are retained in turn under the lazy
  // policy — so the scan repeats until no free entry holds an edge. The
  // ascending fixpoint scan is load-bearing: it fixes the order entries
  // are pushed back onto the free stack, hence the ids later allocations
  // hand out.
  std::uint64_t released = 0;
  bool progress = true;
  while (progress) {
    progress = false;
    for (EntryId id = 0; id < size_; ++id) {
      if (flags_[id] & kFlagInUse) continue;
      LptEntry& slot = entries_[id];
      if (slot.car == kNoEntry && slot.cdr == kNoEntry) continue;
      const EntryId oldCar = slot.car;
      const EntryId oldCdr = slot.cdr;
      slot.car = kNoEntry;
      slot.cdr = kNoEntry;
      if (oldCar != kNoEntry) {
        ++stats_.lazyDecrements;
        ++released;
        decRef(oldCar);
      }
      if (oldCdr != kNoEntry) {
        ++stats_.lazyDecrements;
        ++released;
        decRef(oldCdr);
      }
      progress = true;
    }
  }
  return released;
}

std::uint64_t Lpt::recoverCycles(const std::vector<EntryId>& roots) {
  // Mark phase: everything reachable from an external root stays. Stale
  // marks only ever live on in-use entries (freeing clears the flag byte),
  // so clearing them walks the intrusive list — O(in-use), not O(table).
  forEachInUseUnordered([this](EntryId id) { clearMark(id); });
  std::vector<EntryId> work = roots;
  // Entries on the free stack still hold deferred (lazy) references
  // through their car/cdr fields until reuse, so those edges are roots as
  // well; the stack is exactly the free set, so walk it — O(free).
  for (EntryId id = freeTop_; id != kNoEntry; id = entries_[id].freeNext) {
    const LptEntry& slot = entries_[id];
    if (slot.car != kNoEntry) work.push_back(slot.car);
    if (slot.cdr != kNoEntry) work.push_back(slot.cdr);
  }
  while (!work.empty()) {
    const EntryId id = work.back();
    work.pop_back();
    if (id == kNoEntry) continue;
    LptEntry& slot = entry(id);
    if (!slot.inUse || marked(id)) continue;
    setMark(id);
    if (slot.car != kNoEntry) work.push_back(slot.car);
    if (slot.cdr != kNoEntry) work.push_back(slot.cdr);
  }
  // Sweep phase: in-use unmarked entries form unreferenced cycles. Edges
  // from a swept entry into a *surviving* entry must release their count;
  // edges into fellow swept entries are simply severed. The ascending
  // order (via the packed flags) matches the free-stack push order the
  // rest of the simulation depends on. A marked survivor always retains
  // at least the counted edge along its marking path — no edge on that
  // path is swept — so the decRefs here can never free one mid-sweep.
  std::uint64_t reclaimed = 0;
  for (EntryId id = firstInUse(); id != kNoEntry; id = nextInUse(id + 1)) {
    if (marked(id)) continue;
    LptEntry& slot = entries_[id];
    const EntryId oldCar = slot.car;
    const EntryId oldCdr = slot.cdr;
    slot.car = kNoEntry;
    slot.cdr = kNoEntry;
    slot.refCount = 0;
    slot.stackBit = false;
    freeEntry(id);
    ++reclaimed;
    if (oldCar != kNoEntry && marked(oldCar)) decRef(oldCar);
    if (oldCdr != kNoEntry && marked(oldCdr)) decRef(oldCdr);
  }
  return reclaimed;
}

}  // namespace small::core
