#include "small/lpt.hpp"

#include <algorithm>

namespace small::core {

using support::SimulationError;

Lpt::Lpt(std::uint32_t size, ReclaimPolicy reclaim)
    : size_(size), reclaim_(reclaim), entries_(size), freeTop_(kNoEntry) {
  if (size == 0) throw SimulationError("Lpt: zero-sized table");
  // Build the initial free stack, low ids on top.
  for (std::uint32_t id = size; id-- > 0;) {
    entries_[id].freeNext = freeTop_;
    freeTop_ = id;
  }
}

LptEntry& Lpt::entry(EntryId id) {
  if (id >= size_) throw SimulationError("Lpt: bad entry id");
  return entries_[id];
}

const LptEntry& Lpt::entry(EntryId id) const {
  if (id >= size_) throw SimulationError("Lpt: bad entry id");
  return entries_[id];
}

EntryId Lpt::allocate() {
  if (freeTop_ == kNoEntry) return kNoEntry;
  const EntryId id = freeTop_;
  LptEntry& slot = entries_[id];
  freeTop_ = slot.freeNext;

  // Lazy child decrement: the previous occupant's edges are released only
  // now that the entry is being reused (§4.3.2.1).
  const EntryId oldCar = slot.car;
  const EntryId oldCdr = slot.cdr;
  slot = LptEntry{};
  slot.inUse = true;
  ++inUseCount_;
  ++stats_.gets;
  if (oldCar != kNoEntry) {
    ++stats_.lazyDecrements;
    decRef(oldCar);
  }
  if (oldCdr != kNoEntry) {
    ++stats_.lazyDecrements;
    decRef(oldCdr);
  }
  return id;
}

void Lpt::incRef(EntryId id) {
  LptEntry& slot = entry(id);
  if (!slot.inUse) throw SimulationError("Lpt: incRef of free entry");
  ++slot.refCount;
  ++stats_.refOps;
  stats_.maxRefCount = std::max(stats_.maxRefCount, slot.refCount);
  slot.lifetimeMaxCount = std::max(slot.lifetimeMaxCount, slot.refCount);
}

void Lpt::decRef(EntryId id) {
  LptEntry& slot = entry(id);
  if (!slot.inUse) throw SimulationError("Lpt: decRef of free entry");
  if (slot.refCount == 0) throw SimulationError("Lpt: refcount underflow");
  --slot.refCount;
  ++stats_.refOps;
  if (slot.refCount == 0 && !slot.stackBit) freeEntry(id);
}

void Lpt::setStackBit(EntryId id, bool value) {
  LptEntry& slot = entry(id);
  if (!slot.inUse) throw SimulationError("Lpt: stack bit on free entry");
  if (slot.stackBit == value) return;
  slot.stackBit = value;
  // Setting the bit piggybacks on the LP operation that returned the
  // value to the EP; only the clearing transition is an extra EP->LP
  // message ("Only when one of those counts goes to zero need the LP be
  // informed", §5.2.4).
  if (!value) {
    ++stats_.stackBitMessages;
    if (slot.refCount == 0) freeEntry(id);
  }
}

void Lpt::freeEntry(EntryId id) {
  LptEntry& slot = entries_[id];
  lifetimeMaxCounts_.add(slot.lifetimeMaxCount);
  slot.lifetimeMaxCount = 0;
  slot.inUse = false;
  slot.stackBit = false;
  --inUseCount_;
  ++stats_.frees;
  if (reclaim_ == ReclaimPolicy::kRecursive) {
    dropChildren(id);
  }
  // Under the lazy policy the children stay referenced until reuse; the
  // entry is pushed intact.
  slot.freeNext = freeTop_;
  freeTop_ = id;
}

void Lpt::dropChildren(EntryId id) {
  LptEntry& slot = entries_[id];
  const EntryId oldCar = slot.car;
  const EntryId oldCdr = slot.cdr;
  slot.car = kNoEntry;
  slot.cdr = kNoEntry;
  if (oldCar != kNoEntry) decRef(oldCar);
  if (oldCdr != kNoEntry) decRef(oldCdr);
}

std::uint64_t Lpt::settleLazyFrees() {
  // Releasing a free entry's edges can drive other counts to zero, which
  // frees more entries — whose edges are retained in turn under the lazy
  // policy — so the scan repeats until no free entry holds an edge.
  std::uint64_t released = 0;
  bool progress = true;
  while (progress) {
    progress = false;
    for (EntryId id = 0; id < size_; ++id) {
      LptEntry& slot = entries_[id];
      if (slot.inUse) continue;
      if (slot.car == kNoEntry && slot.cdr == kNoEntry) continue;
      const EntryId oldCar = slot.car;
      const EntryId oldCdr = slot.cdr;
      slot.car = kNoEntry;
      slot.cdr = kNoEntry;
      if (oldCar != kNoEntry) {
        ++stats_.lazyDecrements;
        ++released;
        decRef(oldCar);
      }
      if (oldCdr != kNoEntry) {
        ++stats_.lazyDecrements;
        ++released;
        decRef(oldCdr);
      }
      progress = true;
    }
  }
  return released;
}

std::uint64_t Lpt::recoverCycles(const std::vector<EntryId>& roots) {
  // Mark phase: everything reachable from an external root stays. Entries
  // on the free stack still hold deferred (lazy) references through their
  // car/cdr fields until reuse, so those edges are roots as well.
  for (LptEntry& slot : entries_) slot.mark = false;
  std::vector<EntryId> work = roots;
  for (const LptEntry& slot : entries_) {
    if (slot.inUse) continue;
    if (slot.car != kNoEntry) work.push_back(slot.car);
    if (slot.cdr != kNoEntry) work.push_back(slot.cdr);
  }
  while (!work.empty()) {
    const EntryId id = work.back();
    work.pop_back();
    if (id == kNoEntry) continue;
    LptEntry& slot = entry(id);
    if (!slot.inUse || slot.mark) continue;
    slot.mark = true;
    if (slot.car != kNoEntry) work.push_back(slot.car);
    if (slot.cdr != kNoEntry) work.push_back(slot.cdr);
  }
  // Sweep phase: in-use unmarked entries form unreferenced cycles. Edges
  // from a swept entry into a *surviving* entry must release their count;
  // edges into fellow swept entries are simply severed.
  std::uint64_t reclaimed = 0;
  for (EntryId id = 0; id < size_; ++id) {
    LptEntry& slot = entries_[id];
    if (!slot.inUse || slot.mark) continue;
    const EntryId oldCar = slot.car;
    const EntryId oldCdr = slot.cdr;
    slot.car = kNoEntry;
    slot.cdr = kNoEntry;
    slot.refCount = 0;
    slot.stackBit = false;
    freeEntry(id);
    ++reclaimed;
    if (oldCar != kNoEntry && entries_[oldCar].mark) decRef(oldCar);
    if (oldCdr != kNoEntry && entries_[oldCdr].mark) decRef(oldCdr);
  }
  return reclaimed;
}

}  // namespace small::core
