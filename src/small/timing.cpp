#include "small/timing.hpp"

#include <algorithm>
#include <sstream>

namespace small::core {

OpTiming readListTiming(const TimingParams& p) {
  // Fig 4.10: the EP must wait out the I/O — "the LP cannot predict the
  // type tag of the value being read in until the I/O is complete".
  OpTiming t;
  t.name = "readlist (Fig 4.10)";
  t.epBusy = p.envLookup + p.busTransfer;
  t.epWait = p.listIo + p.entryAlloc + p.busTransfer;
  t.lpBusy = p.listIo + p.entryAlloc;
  t.lpTail = p.lptUpdate + p.refCountOp;  // fill fields, set the count
  return t;
}

OpTiming accessHitTiming(const TimingParams& p) {
  // Fig 4.11: the car/cdr field is present; the LP answers after one
  // table access and updates the returned entry's count afterwards.
  OpTiming t;
  t.name = "car/cdr hit (Fig 4.11)";
  t.epBusy = p.envLookup + p.busTransfer;
  t.epWait = p.lptAccess + p.busTransfer;
  t.lpBusy = p.lptAccess;
  t.lpTail = p.refCountOp;
  return t;
}

OpTiming accessMissTiming(const TimingParams& p) {
  // The split path: "the LP must wait for the return value from the heap
  // controller specifying the type of the newly split object".
  OpTiming t;
  t.name = "car/cdr miss (split)";
  t.epBusy = p.envLookup + p.busTransfer;
  t.epWait = p.lptAccess + p.heapSplit + 2 * p.entryAlloc + p.busTransfer;
  t.lpBusy = p.lptAccess + p.heapSplit + 2 * p.entryAlloc;
  t.lpTail = 4 * p.lptUpdate + p.refCountOp;  // two entries' fields + count
  return t;
}

OpTiming modifyTiming(const TimingParams& p) {
  // Fig 4.12: "Control can be passed back to the EP while these LPT
  // changes are being made" — the EP only pays for dispatch.
  OpTiming t;
  t.name = "rplaca/rplacd (Fig 4.12)";
  t.epBusy = 2 * p.envLookup + p.busTransfer;
  t.epWait = 0;
  t.lpBusy = 0;
  t.lpTail = p.lptAccess + p.lptUpdate + 2 * p.refCountOp;
  return t;
}

OpTiming consTiming(const TimingParams& p) {
  // Fig 4.13: "The LP sends identifier Lz as return value to the EP
  // immediately after the LPT entry has been allocated and before the
  // LPT entry fields have actually been set."
  OpTiming t;
  t.name = "cons (Fig 4.13)";
  t.epBusy = 2 * p.envLookup + p.busTransfer;
  t.epWait = p.entryAlloc + p.busTransfer;
  t.lpBusy = p.entryAlloc;
  t.lpTail = 2 * p.lptUpdate + 3 * p.refCountOp;
  return t;
}

OpTiming compressionTiming(const TimingParams& p) {
  // One Fig 4.8 merge, entirely off the EP's critical path (it runs at
  // pseudo overflow inside an allocation the EP is waiting on, so we
  // charge it as wait in analyzeConcurrency instead).
  OpTiming t;
  t.name = "compress merge (Fig 4.8)";
  t.epBusy = 0;
  t.epWait = 0;
  t.lpBusy = 2 * p.lptAccess + p.heapMerge + p.lptUpdate;
  t.lpTail = 2 * p.refCountOp;
  return t;
}

std::string renderTimeline(const OpTiming& timing) {
  // Two time lines, EP above LP, one character per cycle:
  //   EP: ####....__            # busy  . waiting  _ resumed (epCompute)
  //   LP:     ####~~~            # busy before response  ~ tail
  std::ostringstream out;
  const std::uint32_t resumed = std::max(timing.lpTail, 2u);
  out << timing.name << "\n";
  out << "  EP |" << std::string(timing.epBusy, '#')
      << std::string(timing.epWait, '.') << std::string(resumed, '_')
      << "|\n";
  out << "  LP |" << std::string(timing.epBusy, ' ')
      << std::string(timing.lpBusy, '#') << std::string(timing.lpTail, '~')
      << "|\n";
  out << "  EP latency " << timing.epLatency() << " cycles; LP occupied "
      << timing.lpTotal() << "; serialized " << timing.serialized()
      << "\n";
  return out.str();
}

ConcurrencyReport analyzeConcurrency(const SimResult& result,
                                     const TimingParams& params) {
  const OpTiming hit = accessHitTiming(params);
  const OpTiming miss = accessMissTiming(params);
  const OpTiming cons = consTiming(params);
  const OpTiming modify = modifyTiming(params);
  const OpTiming merge = compressionTiming(params);

  ConcurrencyReport report;

  // Operation counts from the simulation. Reads and modifies are not
  // counted separately by SimResult; approximate modifies from the gets
  // not explained by splits/cons — conservative: treat the remainder of
  // primitives as hit-latency accesses.
  const std::uint64_t hits = result.lptHits;
  const std::uint64_t misses = result.lptMisses;
  const std::uint64_t merges = result.lpStats.merges;
  // cons operations allocated one entry each; splits two.
  const std::uint64_t consCount =
      result.lptStats.gets > 2 * misses
          ? (result.lptStats.gets - 2 * misses)
          : 0;

  auto add = [&](const OpTiming& t, std::uint64_t n) {
    report.epBusy += n * t.epBusy;
    report.epIdle += n * t.epWait;
    report.lpBusy += n * t.lpTotal();
    report.serialized += n * t.serialized();
  };
  add(hit, hits);
  add(miss, misses);
  add(cons, consCount);
  add(merge, merges);
  add(modify, result.lpStats.modifies);

  // Residual reference-count traffic (function call/return bursts) keeps
  // the LP busy without stalling the EP (§5.3.3: "The EP need not wait
  // for these operations to complete").
  const std::uint64_t accountedRefOps =
      hits + misses + 3 * consCount + 2 * merges +
      2 * result.lpStats.modifies;
  const std::uint64_t residualRefOps =
      result.lptStats.refOps > accountedRefOps
          ? result.lptStats.refOps - accountedRefOps
          : 0;
  report.lpBusy += residualRefOps * params.refCountOp;
  report.serialized += residualRefOps * params.refCountOp;

  // EP compute between primitives (environment maintenance, arithmetic).
  report.epBusy += result.primitivesSimulated * params.epCompute;
  report.serialized += result.primitivesSimulated * params.epCompute;

  // Overlapped makespan: the EP's critical path, unless the LP is the
  // bottleneck overall.
  report.makespan = std::max(report.epBusy + report.epIdle, report.lpBusy);
  return report;
}

ConcurrencyReport analyzeMachineConcurrency(const SmallMachine::Stats& machine,
                                            const heap::HeapStats& heap,
                                            const TimingParams& params) {
  // Per-operation structure with the heap estimates zeroed: the machine
  // ran on a real backend, so its heap activity is charged from the
  // measured touch counts instead of the fixed heapSplit/heapMerge
  // figures (which assume two-pointer cells).
  TimingParams structural = params;
  structural.heapSplit = 0;
  structural.heapMerge = 0;

  const OpTiming read = readListTiming(structural);
  const OpTiming hit = accessHitTiming(structural);
  const OpTiming miss = accessMissTiming(structural);
  const OpTiming cons = consTiming(structural);
  const OpTiming modify = modifyTiming(structural);
  const OpTiming merge = compressionTiming(structural);

  ConcurrencyReport report;
  auto add = [&](const OpTiming& t, std::uint64_t n) {
    report.epBusy += n * t.epBusy;
    report.epIdle += n * t.epWait;
    report.lpBusy += n * t.lpTotal();
    report.serialized += n * t.serialized();
  };
  add(read, machine.readLists);
  add(hit, machine.hits);
  add(miss, machine.splits);
  add(cons, machine.conses);
  add(modify, machine.modifies);
  add(merge, machine.merges);

  // The measured heap activity occupies the heap controller (charged to
  // the LP side of the partition, and fully to the Class M serial total).
  const std::uint64_t heapCycles = heap.touches() * params.heapTouch;
  report.lpBusy += heapCycles;
  report.serialized += heapCycles;

  // On the split path the EP is stalled until the heap controller has
  // fetched the object's two half-words (Fig 4.11's miss case); the rest
  // of the touch traffic (free-queue service, merge write-back, readlist
  // encode) overlaps with resumed EP execution.
  report.epIdle += machine.splits * 2 * params.heapTouch;

  // Residual reference-count traffic beyond the per-op tails, as in
  // analyzeConcurrency.
  const std::uint64_t accountedRefOps =
      machine.readLists + machine.hits + machine.splits +
      3 * machine.conses + 2 * machine.modifies + 2 * machine.merges;
  const std::uint64_t residualRefOps = machine.refOps > accountedRefOps
                                           ? machine.refOps - accountedRefOps
                                           : 0;
  report.lpBusy += residualRefOps * params.refCountOp;
  report.serialized += residualRefOps * params.refCountOp;

  report.makespan = std::max(report.epBusy + report.epIdle, report.lpBusy);
  return report;
}

}  // namespace small::core
