#include "obs/snapshot.hpp"

#include <utility>

#include "obs/registry.hpp"

namespace small::obs {

Snapshotter::Snapshotter(TelemetryBuffer* buffer, std::uint64_t every)
    : buffer_(buffer), every_(every == 0 ? 1 : every) {}

void Snapshotter::watchCounter(std::string series,
                               const std::uint64_t* value) {
  watches_.push_back(
      {std::move(series), [value] { return static_cast<double>(*value); }});
}

void Snapshotter::watchGauge(std::string series, const double* value) {
  watches_.push_back({std::move(series), [value] { return *value; }});
}

void Snapshotter::watchValue(std::string series,
                             std::function<double()> provider) {
  watches_.push_back({std::move(series), std::move(provider)});
}

void Snapshotter::watchRegistryCounter(std::string series,
                                       const Registry* registry,
                                       std::string metric) {
  watches_.push_back({std::move(series),
                      [registry, metric = std::move(metric)] {
                        return static_cast<double>(
                            registry->counterValue(metric));
                      }});
}

void Snapshotter::watchRegistryMax(std::string series,
                                   const Registry* registry,
                                   std::string metric) {
  watches_.push_back({std::move(series),
                      [registry, metric = std::move(metric)] {
                        return static_cast<double>(
                            registry->maxValue(metric));
                      }});
}

void Snapshotter::sampleAll(std::uint64_t epoch) {
  for (const Watch& watch : watches_) {
    buffer_->sample(watch.series, epoch, watch.read());
  }
  lastSampled_ = epoch;
  sampledAny_ = true;
}

void Snapshotter::advanceTo(std::uint64_t epoch) {
  if (buffer_ == nullptr || !buffer_->enabled()) return;
  if (epoch < nextEpoch_) return;
  sampleAll(epoch);
  // Next bucket boundary strictly after `epoch`, aligned to the stride so
  // sampling epochs depend only on the event stream, not on how often the
  // producer happens to call advanceTo.
  nextEpoch_ = (epoch / every_ + 1) * every_;
}

void Snapshotter::finish(std::uint64_t epoch) {
  if (buffer_ == nullptr || !buffer_->enabled()) return;
  if (sampledAny_ && epoch == lastSampled_) return;
  sampleAll(epoch);
  nextEpoch_ = (epoch / every_ + 1) * every_;
}

}  // namespace small::obs
