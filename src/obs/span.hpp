// Scoped tracing: RAII spans recorded into a TraceSink, exported as
// Chrome trace-event JSON (chrome://tracing / Perfetto "complete" events).
//
// Every span carries two durations:
//   * wall-clock microseconds (steady_clock, rebased to a process epoch) —
//     what the trace viewer's timeline shows;
//   * simulated heap-touch cost units, sampled from an optional monotone
//     cost counter at entry/exit — the deterministic currency the paper's
//     pause accounting uses (gc/gc.hpp). Cost deltas land in the event's
//     `args`, so a Perfetto query can aggregate them per span name.
// Wall-clock values are inherently nondeterministic, which is why spans
// are exported only through `--trace-out`; the byte-identical
// `--metrics-out` path carries cost units alone (obs::PhaseTimer feeds a
// Registry histogram).
//
// A null sink disables everything: `Span span(nullptr, ...)` compiles to
// two pointer checks, so instrumented hot paths cost nothing until a bench
// actually attaches a sink (the micro_lpt < 10% overhead gate).
//
// Sinks are single-threaded by design; the parallel sweep discipline is
// one sink per task id (obs::ShardSet), concatenated in id order.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace small::obs {

class Registry;

/// Microseconds since the process-wide steady epoch (first use).
std::uint64_t wallMicrosNow();

/// One completed span ("ph":"X" in the Chrome trace format).
struct TraceEvent {
  std::string name;
  std::string category;        ///< "cat" field ("gc", "sweep", "bench", ...)
  std::uint32_t tid = 0;       ///< lane: task id under the sweep harness
  std::uint64_t startUs = 0;   ///< wall-clock start (process epoch)
  std::uint64_t durUs = 0;     ///< wall-clock duration
  std::uint64_t costUnits = 0; ///< heap-touch cost units spent inside
  std::uint32_t depth = 0;     ///< nesting depth at entry (0 = top level)
};

class TraceSink {
 public:
  explicit TraceSink(std::uint32_t tid = 0) : tid_(tid) {}

  void setTid(std::uint32_t tid) { tid_ = tid; }
  std::uint32_t tid() const { return tid_; }

  void record(TraceEvent event) { events_.push_back(std::move(event)); }

  const std::vector<TraceEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }

  /// Live nesting depth (maintained by Span).
  std::uint32_t depth() const { return depth_; }

 private:
  friend class Span;
  friend class PhaseTimer;
  std::uint32_t tid_;
  std::uint32_t depth_ = 0;
  std::vector<TraceEvent> events_;
};

/// RAII span. No-op when `sink` is null. `cost` optionally points at a
/// monotone counter (e.g. a HeapStats touch total) sampled at entry and
/// exit; pass nullptr for wall-clock-only spans.
class Span {
 public:
  Span(TraceSink* sink, const char* name, const char* category = "span",
       const std::uint64_t* cost = nullptr);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Add cost units accounted outside the sampled counter.
  void addCost(std::uint64_t units) { extraCost_ += units; }

 private:
  TraceSink* sink_;
  const char* name_;
  const char* category_;
  const std::uint64_t* cost_;
  std::uint64_t startUs_ = 0;
  std::uint64_t costStart_ = 0;
  std::uint64_t extraCost_ = 0;
  std::uint32_t depth_ = 0;
};

/// A phase timer: a Span that additionally folds its cost-unit duration
/// into `registry`'s histogram `metric` on exit — the deterministic side
/// of the pause accounting (the histogram merges bucket-wise, so sweep
/// output stays byte-identical). Either sink or registry may be null.
class PhaseTimer {
 public:
  PhaseTimer(Registry* registry, const char* metric, TraceSink* sink,
             const char* name, const std::uint64_t* cost = nullptr);
  ~PhaseTimer();

  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

  void addCost(std::uint64_t units) { extraCost_ += units; }

 private:
  Registry* registry_;
  const char* metric_;
  TraceSink* sink_;
  const char* name_;
  const std::uint64_t* cost_;
  std::uint64_t startUs_ = 0;
  std::uint64_t costStart_ = 0;
  std::uint64_t extraCost_ = 0;
  std::uint32_t depth_ = 0;
};

/// Render events from one or more sinks (concatenated in the order given)
/// as a Chrome trace-event JSON document: a top-level array of objects
/// with "name", "cat", "ph":"X", "ts", "dur", "pid", "tid" and an "args"
/// object carrying cost units and nesting depth. Loads directly in
/// chrome://tracing and Perfetto.
std::string exportChromeTrace(
    const std::vector<const TraceSink*>& sinks);

/// Append the sinks' span events ("ph":"X") to `out` without the
/// surrounding array, ",\n"-separating from whatever `out` already holds
/// (`*first` tracks that). Lets composite exporters interleave other
/// event phases (obs/timeseries.hpp's counter tracks) in one document.
void appendChromeSpanEvents(const std::vector<const TraceSink*>& sinks,
                            bool* first, std::string& out);

}  // namespace small::obs
