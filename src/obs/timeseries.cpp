#include "obs/timeseries.hpp"

#include <cstdio>

#include "obs/json.hpp"
#include "obs/span.hpp"

namespace small::obs {

void TelemetryBuffer::enable(std::string source) {
  enabled_ = true;
  source_ = std::move(source);
}

namespace {

// Series/track lookup is linear on purpose: producers sample a handful of
// distinct names, and insertion order is the export order (determinism).
template <typename T>
T& seriesNamed(std::vector<T>& all, const std::string& name,
               const std::string& source) {
  for (T& s : all) {
    if (s.name == name) return s;
  }
  all.push_back(T{});
  all.back().name = name;
  all.back().source = source;
  return all.back();
}

// Sample values are doubles but usually carry integral counter readings;
// print those as integers ("550", not "5.5e+02") and fall back to the
// shared shortest-round-trip formatting otherwise. Deterministic either way.
std::string formatSampleValue(double v) {
  const auto asInt = static_cast<long long>(v);
  if (static_cast<double>(asInt) == v && v > -9.0e15 && v < 9.0e15) {
    return JsonValue::makeInt(asInt).dump();
  }
  return formatJsonDouble(v);
}

}  // namespace

void TelemetryBuffer::sample(const std::string& series, std::uint64_t epoch,
                             double value) {
  if (!enabled_) return;
  TelemetrySeries& s = seriesNamed(series_, series, source_);
  // Strictly-increasing epochs per series: a re-sample at the same epoch
  // overwrites (last write wins) so producers may refresh the current
  // bucket without violating the monotone contract report_lint enforces.
  if (!s.samples.empty() && s.samples.back().epoch == epoch) {
    s.samples.back().value = value;
    return;
  }
  s.samples.push_back({epoch, value});
}

void TelemetryBuffer::samplePerf(const std::string& track, double value) {
  if (!enabled_) return;
  CounterTrack& t = seriesNamed(tracks_, track, source_);
  t.samples.push_back({wallMicrosNow(), value});
}

void TelemetryDoc::append(const TelemetryBuffer& buffer) {
  if (!buffer.enabled() || buffer.empty()) return;
  for (const TelemetrySeries& s : buffer.series()) series_.push_back(s);
  for (const CounterTrack& t : buffer.tracks()) tracks_.push_back(t);
}

std::string TelemetryDoc::renderSeriesLines() const {
  std::string out;
  for (const TelemetrySeries& s : series_) {
    out += "{\"type\":\"series\",\"plane\":\"epoch\",\"name\":";
    out += jsonQuote(s.name);
    out += ",\"source\":";
    out += jsonQuote(s.source);
    out += ",\"samples\":[";
    bool first = true;
    for (const TelemetrySample& sample : s.samples) {
      if (!first) out.push_back(',');
      first = false;
      out.push_back('[');
      out += JsonValue::makeUint(sample.epoch).dump();
      out.push_back(',');
      out += formatSampleValue(sample.value);
      out.push_back(']');
    }
    out += "]}\n";
  }
  return out;
}

std::string TelemetryDoc::render(const std::string& bench) const {
  std::string out;
  out += "{\"type\":\"telemetry\",\"version\":";
  out += JsonValue::makeInt(kTelemetryVersion).dump();
  out += ",\"bench\":";
  out += jsonQuote(bench);
  out += ",\"series\":";
  out += JsonValue::makeUint(series_.size()).dump();
  out += "}\n";
  out += renderSeriesLines();
  return out;
}

bool TelemetryDoc::writeTo(const std::string& path,
                           const std::string& bench) const {
  const std::string content = render(bench);
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr,
                 "ERROR: cannot open telemetry file '%s' for writing\n",
                 path.c_str());
    return false;
  }
  const std::size_t written =
      std::fwrite(content.data(), 1, content.size(), file);
  const bool ok = written == content.size() && std::fclose(file) == 0;
  if (!ok) {
    std::fprintf(stderr, "ERROR: short write to telemetry file '%s'\n",
                 path.c_str());
  }
  return ok;
}

namespace {

// One "ph":"C" event per sample. Perfetto keys counter tracks on
// (pid, name), so the producer label rides inside the name — each
// session/run gets its own scrubable track.
void appendCounterEvent(const std::string& name, const std::string& source,
                        const char* category, int pid, std::uint64_t ts,
                        double value, bool* first, std::string& out) {
  JsonValue line = JsonValue::makeObject();
  std::string trackName = name;
  if (!source.empty()) {
    trackName += " [";
    trackName += source;
    trackName += "]";
  }
  line.set("name", JsonValue::makeString(std::move(trackName)));
  line.set("cat", JsonValue::makeString(category));
  line.set("ph", JsonValue::makeString("C"));
  line.set("ts", JsonValue::makeUint(ts));
  line.set("pid", JsonValue::makeInt(pid));
  JsonValue args = JsonValue::makeObject();
  args.set("value", JsonValue::makeDouble(value));
  line.set("args", std::move(args));
  if (!*first) out += ",\n";
  *first = false;
  out += line.dump();
}

}  // namespace

void appendChromeCounterEvents(const TelemetryDoc& doc, bool* first,
                               std::string& out) {
  // Perf tracks share pid 1 with the span timeline (same wall clock);
  // deterministic series live on pid 2 where ts is the epoch counter.
  for (const CounterTrack& track : doc.tracks()) {
    for (const CounterSample& sample : track.samples) {
      appendCounterEvent(track.name, track.source, "telemetry.perf", 1,
                         sample.wallUs, sample.value, first, out);
    }
  }
  for (const TelemetrySeries& series : doc.series()) {
    for (const TelemetrySample& sample : series.samples) {
      appendCounterEvent(series.name, series.source, "telemetry.epoch", 2,
                         sample.epoch, sample.value, first, out);
    }
  }
}

}  // namespace small::obs
