#include "obs/report.hpp"

#include <cstdio>

#include "obs/json.hpp"
#include "obs/timeseries.hpp"

namespace small::obs {

void BenchReport::setConfig(const std::string& key, bool value) {
  config_.push_back({key, value ? "true" : "false"});
}

void BenchReport::setConfig(const std::string& key, std::int64_t value) {
  config_.push_back({key, JsonValue::makeInt(value).dump()});
}

void BenchReport::setConfig(const std::string& key, double value) {
  config_.push_back({key, JsonValue::makeDouble(value).dump()});
}

void BenchReport::setConfig(const std::string& key,
                            const std::string& value) {
  config_.push_back({key, jsonQuote(value)});
}

void BenchReport::addFigure(const std::string& name, double value) {
  figures_.push_back({name, JsonValue::makeDouble(value).dump()});
}

void BenchReport::addFigure(const std::string& name, std::uint64_t value) {
  figures_.push_back({name, JsonValue::makeUint(value).dump()});
}

std::string BenchReport::render() const {
  std::string out;
  out += "{\"type\":\"bench_report\",\"version\":1,\"bench\":";
  out += jsonQuote(bench_);
  out += ",\"config\":{";
  bool first = true;
  for (const ConfigEntry& entry : config_) {
    if (!first) out.push_back(',');
    first = false;
    out += jsonQuote(entry.key);
    out.push_back(':');
    out += entry.jsonValue;
  }
  out += "}}\n";
  for (const Figure& figure : figures_) {
    out += "{\"type\":\"figure\",\"name\":";
    out += jsonQuote(figure.name);
    out += ",\"value\":";
    out += figure.jsonValue;
    out += "}\n";
  }
  out += registry_.exportJsonLines();
  return out;
}

namespace {

bool writeFile(const std::string& path, const std::string& content,
               const char* what) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "ERROR: cannot open %s file '%s' for writing\n",
                 what, path.c_str());
    return false;
  }
  const std::size_t written =
      std::fwrite(content.data(), 1, content.size(), file);
  const bool ok = written == content.size() && std::fclose(file) == 0;
  if (!ok) {
    std::fprintf(stderr, "ERROR: short write to %s file '%s'\n", what,
                 path.c_str());
  }
  return ok;
}

}  // namespace

bool BenchReport::writeTo(const std::string& path) const {
  return writeFile(path, render(), "metrics");
}

bool writeChromeTrace(const std::string& path,
                      const std::vector<const TraceSink*>& sinks) {
  return writeFile(path, exportChromeTrace(sinks), "trace");
}

bool writeChromeTrace(const std::string& path,
                      const std::vector<const TraceSink*>& sinks,
                      const TelemetryDoc* doc) {
  std::string out;
  out += "[";
  bool first = true;
  appendChromeSpanEvents(sinks, &first, out);
  if (doc != nullptr) appendChromeCounterEvents(*doc, &first, out);
  out += "]\n";
  return writeFile(path, out, "trace");
}

}  // namespace small::obs
