// Per-task observability shards for the deterministic parallel sweep
// harness (support/parallel.hpp).
//
// The harness's determinism contract is id-indexed slots: nothing a task
// produces may depend on claim order. Observability follows the same
// discipline — each task id owns a private (Registry, TraceSink) shard, so
// no locking is needed and the merged registry is a fold over shards in id
// order. Since registry merge is associative/commutative (sum/max/
// bucket-add only), the merged metrics are identical at every `--jobs`
// count; only the spans' wall-clock fields vary run to run, and those are
// exported solely through `--trace-out`.
//
// `runIndexedObs` wraps support::runIndexed and records one "task" span
// per task id into that task's shard (category "sweep", tid = task id) —
// the per-task queue/run lanes the tentpole asks for. `queue_us` is
// implicit: a task's span starts when a worker claims it, so the gap from
// the sweep span's start to the task span's start is its queue time.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "support/parallel.hpp"

namespace small::obs {

class ShardSet {
 public:
  /// One shard per task id. A disabled ShardSet (`enabled == false`)
  /// hands out null sinks/registries so instrumented sweeps cost nothing
  /// when no `--metrics-out`/`--trace-out` was requested.
  explicit ShardSet(std::size_t taskCount, bool enabled = true);

  bool enabled() const { return enabled_; }
  std::size_t size() const { return registries_.size(); }

  /// The shard owned by task `id`; null when disabled.
  Registry* registryAt(std::size_t id) {
    return enabled_ ? &registries_[id] : nullptr;
  }
  TraceSink* sinkAt(std::size_t id) {
    return enabled_ ? &sinks_[id] : nullptr;
  }

  /// Fold every shard registry into `target`, in id order.
  void mergeInto(Registry& target) const;

  /// Shard sinks in id order (for exportChromeTrace).
  std::vector<const TraceSink*> sinksInOrder() const;

 private:
  bool enabled_;
  std::vector<Registry> registries_;
  std::vector<TraceSink> sinks_;
};

/// support::runIndexed with per-task spans recorded into `shards`. The
/// task callback receives (id); it should write its own metrics through
/// `shards.registryAt(id)` / `shards.sinkAt(id)`.
void runIndexedObs(std::size_t taskCount, int jobs, ShardSet& shards,
                   const std::function<void(std::size_t)>& task);

}  // namespace small::obs
