// Deterministic epoch snapshots: a Snapshotter watches a set of live
// metric sources and samples them into a TelemetryBuffer every `every`
// epochs as the producer's epoch counter advances.
//
// The epoch counter is whatever the producer already counts
// deterministically — primitives replayed (service sessions, the
// simulator), script ops applied (GC runs). advanceTo(epoch) samples at
// most once per crossed `every`-sized bucket, *at the actual epoch
// reached*, so series epochs are strictly increasing and a pure function
// of the producer's event stream — never of thread scheduling.
//
// Three watch flavors:
//   * watchCounter — a plain uint64 field of a stats struct (the common
//     production case: SessionStats members, GcStats members);
//   * watchGauge   — same for a double field;
//   * watchValue   — an arbitrary provider callback (queue depths, live
//     heap cells, derived rates);
//   * watchRegistryCounter / watchRegistryMax — a named metric of a live
//     Registry, for producers that already report through one.
// All watches read their source at sample time; the Snapshotter stores
// pointers, so sources must outlive it.
//
// A Snapshotter over a disabled TelemetryBuffer never samples (the
// buffer's own early-out), so producers can instrument unconditionally.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "obs/timeseries.hpp"

namespace small::obs {

class Registry;

class Snapshotter {
 public:
  /// Sample every `every` epochs (clamped to >= 1) into `buffer`.
  Snapshotter(TelemetryBuffer* buffer, std::uint64_t every);

  void watchCounter(std::string series, const std::uint64_t* value);
  void watchGauge(std::string series, const double* value);
  void watchValue(std::string series, std::function<double()> provider);
  void watchRegistryCounter(std::string series, const Registry* registry,
                            std::string metric);
  void watchRegistryMax(std::string series, const Registry* registry,
                        std::string metric);

  /// Advance the epoch clock. Samples all watches once if `epoch` crossed
  /// into a new bucket since the last sample; otherwise a cheap compare.
  /// Epochs must not decrease.
  void advanceTo(std::uint64_t epoch);

  /// Take an unconditional final sample at `epoch` (end of run), unless
  /// that epoch was already sampled.
  void finish(std::uint64_t epoch);

 private:
  void sampleAll(std::uint64_t epoch);

  TelemetryBuffer* buffer_;
  std::uint64_t every_;
  std::uint64_t nextEpoch_ = 0;      ///< first epoch of the next bucket
  std::uint64_t lastSampled_ = 0;
  bool sampledAny_ = false;

  struct Watch {
    std::string series;
    std::function<double()> read;
  };
  std::vector<Watch> watches_;
};

}  // namespace small::obs
