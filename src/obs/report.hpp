// The versioned bench_report artifact and its exporters.
//
// Every bench emits (behind `--metrics-out FILE`) one machine-readable
// report of its run: bench name, the workload-shaping configuration, the
// key figures the paper's tables carry, and a dump of the metric
// registry. The format is JSONL — one self-describing JSON object per
// line — so tools can stream it and `diff` shows per-metric changes:
//
//   {"type":"bench_report","version":1,"bench":"<name>","config":{...}}
//   {"type":"figure","name":"...","value":...}                 (0+ lines)
//   {"type":"counter"|"max"|"gauge"|"histogram",...}           (0+ lines)
//
// tools/bench_report.schema.json is the checked-in schema; tools/
// report_lint validates emitted files against it in CI, and tools/
// bench_summary folds a directory of reports into one BENCH_<date>.json
// trajectory entry.
//
// Determinism contract: everything in the report must be a pure function
// of (bench, config, seed) — counters, cost units, figures; never
// wall-clock. The config block deliberately excludes `--jobs` and the
// output paths, so reports are byte-identical at any job count (CI diffs
// them). Wall-clock lives only in the `--trace-out` Chrome trace.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/registry.hpp"
#include "obs/span.hpp"

namespace small::obs {

inline constexpr int kBenchReportVersion = 1;

class BenchReport {
 public:
  explicit BenchReport(std::string benchName)
      : bench_(std::move(benchName)) {}

  /// Workload-shaping configuration (bool flags, scales, trace sources).
  /// NEVER record --jobs or file paths here (see determinism contract).
  void setConfig(const std::string& key, bool value);
  void setConfig(const std::string& key, std::int64_t value);
  void setConfig(const std::string& key, double value);
  void setConfig(const std::string& key, const std::string& value);

  /// A key figure (one number a paper table/figure reports).
  void addFigure(const std::string& name, double value);
  void addFigure(const std::string& name, std::uint64_t value);

  Registry& registry() { return registry_; }
  const Registry& registry() const { return registry_; }

  /// The full JSONL document (header, figures, registry dump).
  std::string render() const;

  /// Write `render()` to `path`; returns false (with a message on stderr)
  /// on I/O failure.
  bool writeTo(const std::string& path) const;

 private:
  struct ConfigEntry {
    std::string key;
    std::string jsonValue;  ///< pre-rendered JSON
  };
  struct Figure {
    std::string name;
    std::string jsonValue;
  };

  std::string bench_;
  std::vector<ConfigEntry> config_;
  std::vector<Figure> figures_;
  Registry registry_;
};

/// Write a Chrome trace-event JSON file from the given sinks (in order);
/// returns false on I/O failure.
bool writeChromeTrace(const std::string& path,
                      const std::vector<const TraceSink*>& sinks);

class TelemetryDoc;

/// Same, with the telemetry planes appended as "ph":"C" counter events
/// after the span events (obs/timeseries.hpp documents the track
/// layout). `doc` may be null for span-only traces.
bool writeChromeTrace(const std::string& path,
                      const std::vector<const TraceSink*>& sinks,
                      const TelemetryDoc* doc);

}  // namespace small::obs
