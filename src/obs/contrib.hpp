// Bridges from each subsystem's plain stats structs into the obs::Registry
// vocabulary (obs/names.hpp).
//
// The hot paths keep their zero-overhead plain-field counters (LptStats,
// LpStats, HeapStats, GcStats are all bare increments); these functions
// publish a finished struct into a registry after the fact. Header-only on
// purpose: the stat structs live above small_obs in the link graph
// (small_core, small_heap, small_gc all link small_obs), so the bridge
// must not pull their symbols into the obs library.
//
// Note the deliberate overlap: LptStats and GcStats both feed the shared
// mem.* names (see names.hpp) — the one place the historically duplicated
// refcount/alloc accounting is reconciled.
#pragma once

#include "gc/gc.hpp"
#include "heap/backend.hpp"
#include "multilisp/service.hpp"
#include "obs/names.hpp"
#include "obs/registry.hpp"
#include "small/list_processor.hpp"
#include "small/lpt.hpp"
#include "workloads/families/family.hpp"

namespace small::obs {

inline void contributeLptStats(Registry& registry,
                               const core::LptStats& stats) {
  registry.add(names::kMemRcOps, stats.refOps);
  registry.add(names::kMemAllocs, stats.gets);
  registry.add(names::kMemFrees, stats.frees);
  registry.add(names::kLptLazyDecrements, stats.lazyDecrements);
  registry.recordMax(names::kLptMaxRefCount, stats.maxRefCount);
  registry.add(names::kLptStackBitMessages, stats.stackBitMessages);
}

inline void contributeLpStats(Registry& registry,
                              const core::LpStats& stats) {
  registry.add(names::kLptHits, stats.hits);
  registry.add(names::kLpSplits, stats.splits);
  registry.add(names::kLpModifies, stats.modifies);
  registry.add(names::kLpCompressionMerges, stats.merges);
  registry.add(names::kLpPseudoOverflows, stats.pseudoOverflows);
  registry.add(names::kLpTrueOverflows, stats.trueOverflows);
  registry.add(names::kLpCycleRecoveries, stats.cycleRecoveries);
  registry.add(names::kLpCycleReclaimed, stats.cycleEntriesReclaimed);
  registry.add(names::kLpOverflowModeOps, stats.overflowModeOps);
  registry.add(names::kLpHeapFrees, stats.heapFrees);
  registry.add(names::kLpEpRefOps, stats.epRefOps);
  registry.recordMax(names::kLpEpMaxRefCount, stats.epMaxRefCount);
}

inline void contributeHeapStats(Registry& registry,
                                const heap::HeapStats& stats) {
  registry.add(names::kHeapAllocs, stats.allocs);
  registry.add(names::kHeapFrees, stats.frees);
  registry.add(names::kHeapSplits, stats.splits);
  registry.add(names::kHeapMerges, stats.merges);
  registry.add(names::kHeapReads, stats.reads);
  registry.add(names::kHeapWrites, stats.writes);
  registry.recordMax(names::kHeapPeakLiveCells, stats.peakLiveCells);
}

inline void contributeGcStats(Registry& registry, const gc::GcStats& stats) {
  registry.add(names::kGcCollections, stats.collections);
  registry.add(names::kMemFrees, stats.cellsReclaimed);
  registry.add(names::kGcCellsTraced, stats.cellsTraced);
  registry.add(names::kGcHeapTouches, stats.heapTouches);
  registry.add(names::kGcTableTouches, stats.tableTouches);
  registry.add(names::kMemRcOps, stats.barrierOps);
  registry.add(names::kGcDeferredDecrements, stats.deferredDecrements);
  registry.add(names::kGcZctOverflows, stats.zctOverflows);
  registry.recordMax(names::kGcZctHighWater, stats.zctHighWater);
  registry.add(names::kGcMinorCollections, stats.minorCollections);
  registry.add(names::kGcCellsPromoted, stats.cellsPromoted);
  registry.add(names::kGcFullCycles, stats.fullCycles);
  registry.recordMax(names::kGcMaxPause, stats.maxPause);
  registry.add(names::kGcTotalPause, stats.totalPause);
}

/// One service session's deterministic stats under the svc.* names (plus
/// the session's replay heap/gc activity under the shared families). The
/// schedule-dependent ServiceResult fields (wall clock, lock contention)
/// are deliberately NOT bridged here — they must never reach a
/// deterministic --metrics-out.
inline void contributeServiceSession(Registry& registry,
                                     const multilisp::SessionStats& stats) {
  registry.add(names::kSvcPrimitives, stats.replay.primitives);
  registry.add(names::kSvcPublished, stats.published);
  registry.add(names::kSvcRefCopies, stats.refCopies);
  registry.add(names::kSvcRefDestroys, stats.refDestroys);
  registry.add(names::kSvcIndirections, stats.indirections);
  registry.add(names::kSvcQueueEnqueued, stats.queue.enqueued);
  registry.add(names::kSvcQueueCombined, stats.queue.combined);
  registry.add(names::kSvcQueueMessages, stats.queue.messages);
  registry.add(names::kSvcQueueFlushes, stats.queue.flushes);
  support::Histogram& depths = registry.histogram(names::kSvcQueueDepths);
  for (const auto& [value, count] : stats.queueDepths.buckets()) {
    depths.add(value, count);
  }
  contributeHeapStats(registry, stats.replay.heap);
  contributeGcStats(registry, stats.replay.gcStats);
}

/// One family generation's summary under the workload.* names. Counters
/// sum-merge and the high-water marks max-merge, so per-task
/// contributions in a sweep stay `--jobs`-independent like every other
/// deterministic metric.
inline void contributeFamilyStats(
    Registry& registry, const workloads::families::FamilyStats& stats) {
  registry.add(names::kWorkloadPrimitives, stats.primitives);
  registry.add(names::kWorkloadFunctionCalls, stats.functionCalls);
  registry.add(names::kWorkloadObjectsCreated, stats.objectsCreated);
  registry.recordMax(names::kWorkloadLiveObjectsPeak,
                     stats.liveObjectsPeak);
  registry.add(names::kWorkloadChainedCar, stats.carChained);
  registry.add(names::kWorkloadChainedCdr, stats.cdrChained);
  registry.recordMax(names::kWorkloadMaxCallDepth, stats.maxCallDepth);
  for (std::size_t i = 0; i < trace::kPrimitiveCount; ++i) {
    if (stats.perPrimitive[i] == 0) continue;
    registry.add(
        std::string(names::kWorkloadPrimPrefix) +
            trace::primitiveName(static_cast<trace::Primitive>(i)),
        stats.perPrimitive[i]);
  }
}

}  // namespace small::obs
