#include "obs/sweep.hpp"

#include "obs/names.hpp"

namespace small::obs {

ShardSet::ShardSet(std::size_t taskCount, bool enabled) : enabled_(enabled) {
  if (!enabled_) return;
  registries_.resize(taskCount);
  sinks_.reserve(taskCount);
  for (std::size_t id = 0; id < taskCount; ++id) {
    sinks_.emplace_back(static_cast<std::uint32_t>(id));
  }
}

void ShardSet::mergeInto(Registry& target) const {
  for (const Registry& shard : registries_) {
    target.merge(shard);
  }
}

std::vector<const TraceSink*> ShardSet::sinksInOrder() const {
  std::vector<const TraceSink*> sinks;
  sinks.reserve(sinks_.size());
  for (const TraceSink& sink : sinks_) {
    sinks.push_back(&sink);
  }
  return sinks;
}

void runIndexedObs(std::size_t taskCount, int jobs, ShardSet& shards,
                   const std::function<void(std::size_t)>& task) {
  support::runIndexed(taskCount, jobs, [&](std::size_t id) {
    TraceSink* sink = shards.sinkAt(id);
    Registry* registry = shards.registryAt(id);
    if (registry != nullptr) registry->add(names::kSweepTasks, 1);
    Span span(sink, "task", "sweep");
    task(id);
  });
}

}  // namespace small::obs
