// The time-resolved telemetry plane: per-producer sample buffers keyed by
// a deterministic epoch counter, merged in id order, exported as a
// versioned JSONL stream and as Perfetto counter tracks.
//
// Every obs artifact before this file was end-of-run: one merged registry
// per bench. Telemetry adds the time axis, on the same two-plane
// discipline the rest of the repo uses:
//
//   * deterministic plane — samples keyed by an *epoch* counter (events /
//     primitives processed, never wall clock). Each producer (a sweep
//     task, a service session, a collector run) owns one TelemetryBuffer;
//     its samples are a pure function of (producer, trace, seed), and the
//     buffers are folded into a TelemetryDoc strictly in producer id
//     order — so `--telemetry-out` bytes are identical at any `--jobs`
//     or `--sessions` count, exactly like obs::ShardSet's registry merge.
//   * perf plane — wall-clock-stamped counter samples (lock contention,
//     observed throughput). Schedule-dependent by nature; these reach
//     only the Chrome trace (`--trace-out`), never the deterministic
//     JSONL stream.
//
// Both planes load in Perfetto as scrubable counter tracks ("ph":"C"):
// perf tracks on the wall-clock timeline (pid 1, next to the spans), and
// deterministic series on a second process (pid 2) whose "timestamps"
// are epochs — scrubbing it walks the run by primitives processed.
//
// A default-constructed TelemetryBuffer is disabled and every record call
// is a cheap early-out, mirroring the null TraceSink fast path: benches
// enable buffers only behind --telemetry-out / --trace-out.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace small::obs {

/// --telemetry-out stream version (the "version" member of the header
/// line). Bump when the line shapes below change incompatibly.
inline constexpr int kTelemetryVersion = 1;

/// One deterministic sample: the epoch it was taken at plus the value.
struct TelemetrySample {
  std::uint64_t epoch = 0;
  double value = 0.0;
};

/// A named deterministic series from one producer. `name` is a canonical
/// obs metric name (obs/names.hpp conventions — report_lint --telemetry
/// checks the subsystem prefix); `source` labels the producer
/// ("session/3", "Lyra/mark-sweep/two-pointer", ...). Epochs within a
/// series are strictly increasing.
struct TelemetrySeries {
  std::string name;
  std::string source;
  std::vector<TelemetrySample> samples;
};

/// One wall-clock counter sample (perf plane, Chrome trace only).
struct CounterSample {
  std::uint64_t wallUs = 0;
  double value = 0.0;
};

/// A named perf-plane counter track from one producer.
struct CounterTrack {
  std::string name;
  std::string source;
  std::vector<CounterSample> samples;
};

/// Per-producer telemetry shard. Producers record into their own buffer
/// with no locking (the ShardSet discipline); the owning bench appends
/// buffers to its TelemetryDoc in id order after the join.
class TelemetryBuffer {
 public:
  /// Disabled: every sample call is a no-op (one branch).
  TelemetryBuffer() = default;

  /// Arm the buffer and name its producer.
  void enable(std::string source);
  bool enabled() const { return enabled_; }
  const std::string& source() const { return source_; }

  /// Deterministic plane: record `value` for `series` at `epoch`.
  /// Samples for one series must arrive in strictly increasing epoch
  /// order (the exporter and report_lint --telemetry both enforce it).
  void sample(const std::string& series, std::uint64_t epoch, double value);

  /// Perf plane: record a wall-clock-stamped counter sample. Reaches
  /// only the Chrome trace exporter.
  void samplePerf(const std::string& track, double value);

  const std::vector<TelemetrySeries>& series() const { return series_; }
  const std::vector<CounterTrack>& tracks() const { return tracks_; }
  bool empty() const { return series_.empty() && tracks_.empty(); }

 private:
  bool enabled_ = false;
  std::string source_;
  std::vector<TelemetrySeries> series_;  ///< insertion order
  std::vector<CounterTrack> tracks_;
};

/// The merged telemetry document a bench exports. Buffers are appended
/// in producer id order; the deterministic series therefore render
/// byte-identically at any concurrency, while the perf tracks are
/// explicitly schedule-dependent.
class TelemetryDoc {
 public:
  /// Fold `buffer`'s series and tracks in (copies; the producer may
  /// still own the buffer). Disabled/empty buffers append nothing.
  void append(const TelemetryBuffer& buffer);

  const std::vector<TelemetrySeries>& series() const { return series_; }
  const std::vector<CounterTrack>& tracks() const { return tracks_; }
  bool empty() const { return series_.empty() && tracks_.empty(); }

  /// The deterministic JSONL stream, without the header line:
  ///   {"type":"series","plane":"epoch","name":...,"source":...,
  ///    "samples":[[epoch,value],...]}
  /// One line per series, in append order. This is the byte-diffed
  /// payload of the determinism contract.
  std::string renderSeriesLines() const;

  /// The full --telemetry-out document: versioned header naming the
  /// bench, then renderSeriesLines().
  std::string render(const std::string& bench) const;

  /// Write `render(bench)` to `path`; false (stderr message) on failure.
  bool writeTo(const std::string& path, const std::string& bench) const;

 private:
  std::vector<TelemetrySeries> series_;
  std::vector<CounterTrack> tracks_;
};

/// Render the telemetry planes as Chrome trace-event counter events
/// ("ph":"C"), appended to `out` (events separated/preceded by ",\n"
/// when `out` already holds events — the caller owns the surrounding
/// array). Perf tracks land on pid 1 with wall-clock ts; deterministic
/// series land on pid 2 with their epoch as ts.
void appendChromeCounterEvents(const TelemetryDoc& doc, bool* first,
                               std::string& out);

}  // namespace small::obs
