// The canonical metric naming scheme — the one place every obs name is
// declared (DESIGN.md §obs documents the conventions).
//
// Names are dot-separated, lowercase, `<subsystem>.<event>`:
//   mem.*   — memory-management events shared across accounting schemes.
//             The LPT's reference counting (core::LptStats) and the gc
//             subsystem's collectors (gc::GcStats) historically counted
//             the same physical events under different field names;
//             both contribute to these shared names so
//             table5_2_3_lpt_activity and gc_comparison report from the
//             same counters:
//               mem.allocs  <- LptStats.gets            (entry allocations)
//               mem.frees   <- LptStats.frees + GcStats.cellsReclaimed
//               mem.rc_ops  <- LptStats.refOps + GcStats.barrierOps
//   lpt.*   — List Processor Table events beyond the shared ones.
//   lp.*    — List Processor request stream (hits/splits/compression).
//   heap.*  — physical heap-backend activity (heap::HeapStats).
//   gc.*    — collection machinery (gc::GcStats) and pause distributions.
//   lisp.*  — interpreter primitive dispatch ("lisp.prim.<name>").
//   vm.*    — emulator instruction dispatch ("vm.op.<mnemonic>").
//   sweep.* — parallel harness task accounting.
//   bench.* — per-bench figures (free-form under the bench's namespace).
//
// Family conventions: monotone event tallies are counters (sum-merge);
// high-water marks end in `.max` or `.peak` and are max metrics
// (max-merge); distributions are histograms (bucket-add merge). Merge
// associativity is what keeps `--metrics-out` byte-identical at any
// `--jobs` count.
#pragma once

namespace small::obs::names {

// --- shared memory accounting (LptStats ∪ GcStats) ---
inline constexpr char kMemAllocs[] = "mem.allocs";
inline constexpr char kMemFrees[] = "mem.frees";
inline constexpr char kMemRcOps[] = "mem.rc_ops";

// --- LPT (core::LptStats, core::Lpt) ---
inline constexpr char kLptLazyDecrements[] = "lpt.lazy_decrements";
inline constexpr char kLptMaxRefCount[] = "lpt.ref_count.max";
inline constexpr char kLptStackBitMessages[] = "lpt.stack_bit_messages";
inline constexpr char kLptSettledLazyFrees[] = "lpt.settled_lazy_frees";
inline constexpr char kLptLifetimeMaxCounts[] = "lpt.lifetime_max_counts";
inline constexpr char kLptPeakOccupancy[] = "lpt.occupancy.peak";
// Telemetry series (obs/timeseries.hpp): instantaneous in-use entry
// count sampled on the deterministic epoch plane.
inline constexpr char kLptOccupancy[] = "lpt.occupancy";
inline constexpr char kLptHits[] = "lpt.hits";
inline constexpr char kLptMisses[] = "lpt.misses";

// --- List Processor request stream (core::LpStats) ---
inline constexpr char kLpSplits[] = "lp.splits";
inline constexpr char kLpModifies[] = "lp.modifies";
inline constexpr char kLpCompressionMerges[] = "lp.compression_merges";
inline constexpr char kLpPseudoOverflows[] = "lp.pseudo_overflows";
inline constexpr char kLpTrueOverflows[] = "lp.true_overflows";
inline constexpr char kLpCycleRecoveries[] = "lp.cycle_recoveries";
inline constexpr char kLpCycleReclaimed[] = "lp.cycle_entries_reclaimed";
inline constexpr char kLpOverflowModeOps[] = "lp.overflow_mode_ops";
inline constexpr char kLpHeapFrees[] = "lp.heap_frees";
inline constexpr char kLpEpRefOps[] = "lp.ep_ref_ops";
inline constexpr char kLpEpMaxRefCount[] = "lp.ep_ref_count.max";

// --- physical heap backends (heap::HeapStats) ---
inline constexpr char kHeapAllocs[] = "heap.allocs";
inline constexpr char kHeapFrees[] = "heap.frees";
inline constexpr char kHeapSplits[] = "heap.splits";
inline constexpr char kHeapMerges[] = "heap.merges";
inline constexpr char kHeapReads[] = "heap.reads";
inline constexpr char kHeapWrites[] = "heap.writes";
inline constexpr char kHeapPeakLiveCells[] = "heap.live_cells.peak";

// --- collection machinery (gc::GcStats) ---
inline constexpr char kGcCollections[] = "gc.collections";
inline constexpr char kGcCellsTraced[] = "gc.cells_traced";
inline constexpr char kGcHeapTouches[] = "gc.heap_touches";
inline constexpr char kGcTableTouches[] = "gc.table_touches";
inline constexpr char kGcDeferredDecrements[] = "gc.deferred_decrements";
inline constexpr char kGcZctOverflows[] = "gc.zct_overflows";
inline constexpr char kGcZctHighWater[] = "gc.zct_occupancy.max";
inline constexpr char kGcMinorCollections[] = "gc.minor_collections";
inline constexpr char kGcCellsPromoted[] = "gc.cells_promoted";
inline constexpr char kGcFullCycles[] = "gc.full_cycles";
inline constexpr char kGcMaxPause[] = "gc.pause.max";
inline constexpr char kGcTotalPause[] = "gc.pause.total";
inline constexpr char kGcPauseHistogram[] = "gc.pause.touch_units";
// Telemetry series: per-collection pause cost (epoch = script op index)
// and the live-cell count sampled between collections.
inline constexpr char kGcPause[] = "gc.pause";
inline constexpr char kGcLiveCells[] = "gc.live_cells";

// --- interpreter / emulator dispatch ---
inline constexpr char kLispPrimPrefix[] = "lisp.prim.";  // + primitive name
inline constexpr char kLispSteps[] = "lisp.eval_steps";
inline constexpr char kVmOpPrefix[] = "vm.op.";          // + mnemonic
inline constexpr char kVmInstructions[] = "vm.instructions";
inline constexpr char kVmListOps[] = "vm.list_ops";
inline constexpr char kVmFunctionCalls[] = "vm.function_calls";
inline constexpr char kVmMaxStackDepth[] = "vm.stack_depth.max";

// --- parallel sweep harness ---
inline constexpr char kSweepTasks[] = "sweep.tasks";

// --- scenario workload families (workloads/families/) ---
// Generator-side accounting: what the family generators emitted, as
// opposed to what a simulator did with it. All deterministic functions
// of (family, scale, seed, knobs).
inline constexpr char kWorkloadPrimitives[] = "workload.primitives";
inline constexpr char kWorkloadFunctionCalls[] = "workload.function_calls";
inline constexpr char kWorkloadObjectsCreated[] = "workload.objects_created";
inline constexpr char kWorkloadLiveObjectsPeak[] =
    "workload.live_objects.peak";
inline constexpr char kWorkloadChainedCar[] = "workload.chained_car";
inline constexpr char kWorkloadChainedCdr[] = "workload.chained_cdr";
inline constexpr char kWorkloadMaxCallDepth[] = "workload.call_depth.max";
inline constexpr char kWorkloadPrimPrefix[] = "workload.prim.";  // + name

// --- multi-session service mode (multilisp/service.hpp) ---
// The deterministic family: pure functions of (session id, trace, seed),
// safe for --metrics-out at any session count.
inline constexpr char kSvcPrimitives[] = "svc.primitives_replayed";
inline constexpr char kSvcPublished[] = "svc.objects_published";
inline constexpr char kSvcRefCopies[] = "svc.ref_copies";
inline constexpr char kSvcRefDestroys[] = "svc.ref_destroys";
inline constexpr char kSvcIndirections[] = "svc.indirections_created";
inline constexpr char kSvcQueueEnqueued[] = "svc.queue.updates_enqueued";
inline constexpr char kSvcQueueCombined[] = "svc.queue.updates_combined";
inline constexpr char kSvcQueueMessages[] = "svc.queue.messages_sent";
inline constexpr char kSvcQueueFlushes[] = "svc.queue.flushes";
inline constexpr char kSvcQueueDepths[] = "svc.queue.depth_at_flush";
// Telemetry series (deterministic plane): sampled at tick epochs —
// pure functions of (session id, trace, seed) per the service's
// deterministic-plane contract.
inline constexpr char kSvcQueueDepth[] = "svc.queue.depth";
inline constexpr char kSvcHeldRefs[] = "svc.held_refs";
// The schedule-dependent family: lock traffic on the sharded LPT.
// Perf plane only (stdout / --perf-out), like the sim.throughput rates.
inline constexpr char kSvcLockAcquisitions[] = "svc.lock.acquisitions";
inline constexpr char kSvcLockContended[] = "svc.lock.contended";
inline constexpr char kSvcLockContendedPerShard[] =
    "svc.lock.contended_per_shard";
// Telemetry counter tracks (perf plane, --trace-out only): cumulative
// contended acquisitions of a session's home shard, and the session's
// observed replay rate.
inline constexpr char kSvcShardContention[] = "svc.shard.contention";
inline constexpr char kSvcReplayRate[] = "svc.replay.primitives_per_sec";

// --- simulator throughput (micro-suite only) ---
// Wall-clock-derived rates, recorded as maxima (best observed rate).
// These are published by the micro suites' registries, never by the
// table/figure benches: wall-clock values are not deterministic, and the
// sweep benches' `--metrics-out` must stay byte-identical at any
// `--jobs`. The `..._node_*` / `..._naive_*` / `..._map_*` variants are
// the retained node-based baselines measured in the same run, so each
// BENCH_<date> summary carries its own before/after pair.
inline constexpr char kSimPrimitivesPerSec[] =
    "sim.throughput.primitives_per_sec";
inline constexpr char kSimCellsTouchedPerSec[] =
    "sim.throughput.cells_touched_per_sec";
inline constexpr char kSimLruFlatAccessesPerSec[] =
    "sim.throughput.lru_flat_accesses_per_sec";
inline constexpr char kSimLruNodeAccessesPerSec[] =
    "sim.throughput.lru_node_accesses_per_sec";
inline constexpr char kSimScanFlatEntriesPerSec[] =
    "sim.throughput.inuse_scan_flat_entries_per_sec";
inline constexpr char kSimScanNaiveEntriesPerSec[] =
    "sim.throughput.inuse_scan_naive_entries_per_sec";
inline constexpr char kSimEpDenseOpsPerSec[] =
    "sim.throughput.ep_shadow_dense_ops_per_sec";
inline constexpr char kSimEpMapOpsPerSec[] =
    "sim.throughput.ep_shadow_map_ops_per_sec";
// Trace ingestion: text-parse baseline vs mmap'd binary batched decode,
// measured over the same workload trace by micro_trace.
inline constexpr char kSimTraceTextParsePrimitivesPerSec[] =
    "sim.throughput.trace_text_parse_primitives_per_sec";
inline constexpr char kSimTraceBinaryDecodePrimitivesPerSec[] =
    "sim.throughput.trace_binary_decode_primitives_per_sec";

}  // namespace small::obs::names
