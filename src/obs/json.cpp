#include "obs/json.hpp"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace small::obs {

JsonValue JsonValue::makeBool(bool v) {
  JsonValue j;
  j.kind_ = Kind::kBool;
  j.bool_ = v;
  return j;
}

JsonValue JsonValue::makeInt(std::int64_t v) {
  JsonValue j;
  j.kind_ = Kind::kInt;
  j.int_ = v;
  return j;
}

JsonValue JsonValue::makeUint(std::uint64_t v) {
  // Counter values fit in int64 in practice; saturate rather than wrap so
  // a pathological value is visible instead of negative.
  const std::uint64_t kMax = 0x7fffffffffffffffull;
  return makeInt(static_cast<std::int64_t>(v > kMax ? kMax : v));
}

JsonValue JsonValue::makeDouble(double v) {
  JsonValue j;
  j.kind_ = Kind::kDouble;
  j.double_ = v;
  return j;
}

JsonValue JsonValue::makeString(std::string v) {
  JsonValue j;
  j.kind_ = Kind::kString;
  j.string_ = std::move(v);
  return j;
}

JsonValue JsonValue::makeArray() {
  JsonValue j;
  j.kind_ = Kind::kArray;
  return j;
}

JsonValue JsonValue::makeObject() {
  JsonValue j;
  j.kind_ = Kind::kObject;
  return j;
}

void JsonValue::set(std::string key, JsonValue v) {
  for (auto& member : members_) {
    if (member.first == key) {
      member.second = std::move(v);
      return;
    }
  }
  members_.emplace_back(std::move(key), std::move(v));
}

const JsonValue* JsonValue::find(std::string_view key) const {
  for (const auto& member : members_) {
    if (member.first == key) return &member.second;
  }
  return nullptr;
}

std::string formatJsonDouble(double v) {
  if (std::isnan(v) || std::isinf(v)) return "null";  // JSON has no inf/nan
  if (v == 0.0) return "0";
  char buf[40];
  // Shortest precision that round-trips, so 1.5 prints as "1.5" and not
  // "1.5000000000000000".
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof buf, "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

std::string jsonQuote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

namespace {

void dumpTo(const JsonValue& v, std::string& out) {
  switch (v.kind()) {
    case JsonValue::Kind::kNull:
      out += "null";
      break;
    case JsonValue::Kind::kBool:
      out += v.boolValue() ? "true" : "false";
      break;
    case JsonValue::Kind::kInt: {
      char buf[24];
      std::snprintf(buf, sizeof buf, "%lld",
                    static_cast<long long>(v.intValue()));
      out += buf;
      break;
    }
    case JsonValue::Kind::kDouble:
      out += formatJsonDouble(v.numberValue());
      break;
    case JsonValue::Kind::kString:
      out += jsonQuote(v.stringValue());
      break;
    case JsonValue::Kind::kArray: {
      out.push_back('[');
      bool first = true;
      for (const JsonValue& item : v.items()) {
        if (!first) out.push_back(',');
        first = false;
        dumpTo(item, out);
      }
      out.push_back(']');
      break;
    }
    case JsonValue::Kind::kObject: {
      out.push_back('{');
      bool first = true;
      for (const auto& [key, value] : v.members()) {
        if (!first) out.push_back(',');
        first = false;
        out += jsonQuote(key);
        out.push_back(':');
        dumpTo(value, out);
      }
      out.push_back('}');
      break;
    }
  }
}

class Parser {
 public:
  Parser(std::string_view text, JsonError* error)
      : text_(text), error_(error) {}

  bool parseDocument(JsonValue* out) {
    skipWs();
    if (!parseValue(out)) return false;
    skipWs();
    if (pos_ != text_.size()) return fail("trailing garbage after document");
    return true;
  }

 private:
  bool fail(const std::string& message) {
    if (error_ != nullptr) {
      error_->message = message;
      error_->line = 1;
      error_->column = 1;
      for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
        if (text_[i] == '\n') {
          ++error_->line;
          error_->column = 1;
        } else {
          ++error_->column;
        }
      }
    }
    return false;
  }

  void skipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool parseValue(JsonValue* out) {
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{': return parseObject(out);
      case '[': return parseArray(out);
      case '"': return parseString(out);
      case 't':
      case 'f': return parseKeyword(out);
      case 'n': return parseKeyword(out);
      default: return parseNumber(out);
    }
  }

  bool parseKeyword(JsonValue* out) {
    if (text_.substr(pos_, 4) == "true") {
      pos_ += 4;
      *out = JsonValue::makeBool(true);
      return true;
    }
    if (text_.substr(pos_, 5) == "false") {
      pos_ += 5;
      *out = JsonValue::makeBool(false);
      return true;
    }
    if (text_.substr(pos_, 4) == "null") {
      pos_ += 4;
      *out = JsonValue();
      return true;
    }
    return fail("invalid literal");
  }

  bool parseNumber(JsonValue* out) {
    const std::size_t start = pos_;
    if (consume('-')) {}
    while (pos_ < text_.size() &&
           ((text_[pos_] >= '0' && text_[pos_] <= '9') || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return fail("invalid value");
    const std::string token(text_.substr(start, pos_ - start));
    const bool integral =
        token.find_first_of(".eE") == std::string::npos;
    if (integral) {
      errno = 0;
      char* end = nullptr;
      const long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end == token.c_str() + token.size()) {
        *out = JsonValue::makeInt(v);
        return true;
      }
      // fall through to double on int64 overflow
    }
    errno = 0;
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return fail("invalid number");
    *out = JsonValue::makeDouble(d);
    return true;
  }

  bool parseString(JsonValue* out) {
    std::string s;
    if (!parseRawString(&s)) return false;
    *out = JsonValue::makeString(std::move(s));
    return true;
  }

  bool parseRawString(std::string* out) {
    if (!consume('"')) return fail("expected string");
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char e = text_[pos_++];
        switch (e) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return fail("invalid \\u escape");
            }
            // The exporters only escape control bytes; decode BMP code
            // points as UTF-8 for completeness.
            if (code < 0x80) {
              out->push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out->push_back(static_cast<char>(0xc0 | (code >> 6)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3f)));
            } else {
              out->push_back(static_cast<char>(0xe0 | (code >> 12)));
              out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3f)));
            }
            break;
          }
          default: return fail("invalid escape");
        }
      } else {
        out->push_back(c);
      }
    }
    return fail("unterminated string");
  }

  bool parseArray(JsonValue* out) {
    consume('[');
    *out = JsonValue::makeArray();
    skipWs();
    if (consume(']')) return true;
    while (true) {
      JsonValue item;
      skipWs();
      if (!parseValue(&item)) return false;
      out->append(std::move(item));
      skipWs();
      if (consume(']')) return true;
      if (!consume(',')) return fail("expected ',' or ']' in array");
    }
  }

  bool parseObject(JsonValue* out) {
    consume('{');
    *out = JsonValue::makeObject();
    skipWs();
    if (consume('}')) return true;
    while (true) {
      skipWs();
      std::string key;
      if (!parseRawString(&key)) return false;
      skipWs();
      if (!consume(':')) return fail("expected ':' in object");
      skipWs();
      JsonValue value;
      if (!parseValue(&value)) return false;
      out->set(std::move(key), std::move(value));
      skipWs();
      if (consume('}')) return true;
      if (!consume(',')) return fail("expected ',' or '}' in object");
    }
  }

  std::string_view text_;
  JsonError* error_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string JsonValue::dump() const {
  std::string out;
  dumpTo(*this, out);
  return out;
}

bool parseJson(std::string_view text, JsonValue* out, JsonError* error) {
  Parser parser(text, error);
  return parser.parseDocument(out);
}

}  // namespace small::obs
