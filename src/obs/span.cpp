#include "obs/span.hpp"

#include <chrono>

#include "obs/json.hpp"
#include "obs/registry.hpp"

namespace small::obs {

std::uint64_t wallMicrosNow() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point epoch = Clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            epoch)
          .count());
}

Span::Span(TraceSink* sink, const char* name, const char* category,
           const std::uint64_t* cost)
    : sink_(sink), name_(name), category_(category), cost_(cost) {
  if (sink_ == nullptr) return;
  startUs_ = wallMicrosNow();
  if (cost_ != nullptr) costStart_ = *cost_;
  depth_ = sink_->depth_++;
}

Span::~Span() {
  if (sink_ == nullptr) return;
  --sink_->depth_;
  TraceEvent event;
  event.name = name_;
  event.category = category_;
  event.tid = sink_->tid();
  event.startUs = startUs_;
  event.durUs = wallMicrosNow() - startUs_;
  event.costUnits = extraCost_ + (cost_ != nullptr ? *cost_ - costStart_ : 0);
  event.depth = depth_;
  sink_->record(std::move(event));
}

PhaseTimer::PhaseTimer(Registry* registry, const char* metric,
                       TraceSink* sink, const char* name,
                       const std::uint64_t* cost)
    : registry_(registry),
      metric_(metric),
      sink_(sink),
      name_(name),
      cost_(cost) {
  if (sink_ != nullptr) {
    startUs_ = wallMicrosNow();
    depth_ = sink_->depth_++;
  }
  if (cost_ != nullptr) costStart_ = *cost_;
}

PhaseTimer::~PhaseTimer() {
  const std::uint64_t costDur =
      extraCost_ + (cost_ != nullptr ? *cost_ - costStart_ : 0);
  if (registry_ != nullptr) {
    registry_->histogram(metric_).add(static_cast<std::int64_t>(costDur));
  }
  if (sink_ != nullptr) {
    --sink_->depth_;
    TraceEvent event;
    event.name = name_;
    event.category = "phase";
    event.tid = sink_->tid();
    event.startUs = startUs_;
    event.durUs = wallMicrosNow() - startUs_;
    event.costUnits = costDur;
    event.depth = depth_;
    sink_->record(std::move(event));
  }
}

void appendChromeSpanEvents(const std::vector<const TraceSink*>& sinks,
                            bool* first, std::string& out) {
  for (const TraceSink* sink : sinks) {
    if (sink == nullptr) continue;
    for (const TraceEvent& event : sink->events()) {
      JsonValue line = JsonValue::makeObject();
      line.set("name", JsonValue::makeString(event.name));
      line.set("cat", JsonValue::makeString(event.category));
      line.set("ph", JsonValue::makeString("X"));
      line.set("ts", JsonValue::makeUint(event.startUs));
      line.set("dur", JsonValue::makeUint(event.durUs));
      line.set("pid", JsonValue::makeInt(1));
      line.set("tid", JsonValue::makeUint(event.tid));
      JsonValue args = JsonValue::makeObject();
      args.set("cost_units", JsonValue::makeUint(event.costUnits));
      args.set("depth", JsonValue::makeUint(event.depth));
      line.set("args", std::move(args));
      if (!*first) out += ",\n";
      *first = false;
      out += line.dump();
    }
  }
}

std::string exportChromeTrace(const std::vector<const TraceSink*>& sinks) {
  std::string out;
  out += "[";
  bool first = true;
  appendChromeSpanEvents(sinks, &first, out);
  out += "]\n";
  return out;
}

}  // namespace small::obs
