#include "obs/registry.hpp"

#include "obs/json.hpp"

namespace small::obs {

Counter Registry::counter(const std::string& name) {
  return Counter(&counters_[name]);
}

Max Registry::max(const std::string& name) {
  return Max(&maxima_[name]);
}

Gauge Registry::gauge(const std::string& name) {
  return Gauge(&gauges_[name]);
}

support::Histogram& Registry::histogram(const std::string& name) {
  return histograms_[name];
}

std::uint64_t Registry::counterValue(const std::string& name) const {
  const auto it = counters_.find(name);
  return it != counters_.end() ? it->second : 0;
}

std::uint64_t Registry::maxValue(const std::string& name) const {
  const auto it = maxima_.find(name);
  return it != maxima_.end() ? it->second : 0;
}

std::vector<std::string> Registry::maxNames() const {
  std::vector<std::string> names;
  names.reserve(maxima_.size());
  for (const auto& [name, value] : maxima_) names.push_back(name);
  return names;
}

double Registry::gaugeValue(const std::string& name) const {
  const auto it = gauges_.find(name);
  return it != gauges_.end() ? it->second : 0.0;
}

const support::Histogram* Registry::findHistogram(
    const std::string& name) const {
  const auto it = histograms_.find(name);
  return it != histograms_.end() ? &it->second : nullptr;
}

void Registry::merge(const Registry& other) {
  for (const auto& [name, value] : other.counters_) {
    counters_[name] += value;
  }
  for (const auto& [name, value] : other.maxima_) {
    std::uint64_t& slot = maxima_[name];
    if (value > slot) slot = value;
  }
  for (const auto& [name, value] : other.gauges_) {
    gauges_[name] += value;
  }
  for (const auto& [name, hist] : other.histograms_) {
    support::Histogram& slot = histograms_[name];
    for (const auto& [value, count] : hist.buckets()) {
      slot.add(value, count);
    }
  }
}

std::string Registry::exportJsonLines() const {
  std::string out;
  const auto emitScalar = [&out](const char* type, const std::string& name,
                                 JsonValue value) {
    JsonValue line = JsonValue::makeObject();
    line.set("type", JsonValue::makeString(type));
    line.set("name", JsonValue::makeString(name));
    line.set("value", std::move(value));
    out += line.dump();
    out.push_back('\n');
  };
  for (const auto& [name, value] : counters_) {
    emitScalar("counter", name, JsonValue::makeUint(value));
  }
  for (const auto& [name, value] : maxima_) {
    emitScalar("max", name, JsonValue::makeUint(value));
  }
  for (const auto& [name, value] : gauges_) {
    emitScalar("gauge", name, JsonValue::makeDouble(value));
  }
  for (const auto& [name, hist] : histograms_) {
    JsonValue line = JsonValue::makeObject();
    line.set("type", JsonValue::makeString("histogram"));
    line.set("name", JsonValue::makeString(name));
    line.set("total", JsonValue::makeUint(hist.total()));
    JsonValue buckets = JsonValue::makeArray();
    for (const auto& [value, count] : hist.buckets()) {
      JsonValue pair = JsonValue::makeArray();
      pair.append(JsonValue::makeInt(value));
      pair.append(JsonValue::makeUint(count));
      buckets.append(std::move(pair));
    }
    line.set("buckets", std::move(buckets));
    out += line.dump();
    out.push_back('\n');
  }
  return out;
}

}  // namespace small::obs
