// The metric registry: named counters, maxima, gauges and histograms with
// a deterministic merge — the single vocabulary every subsystem reports
// through (Tables 5.2-5.5 are all counter-driven).
//
// Four metric families, chosen so that merging per-task registries from
// the parallel sweep harness is associative and commutative:
//   * counter   — monotone uint64, merged by addition (refops, gets, ...);
//   * max       — uint64 high-water mark, merged by max (peak occupancy,
//                 max refcount, max pause);
//   * gauge     — double, merged by addition (cost totals that are
//                 naturally fractional);
//   * histogram — support::Histogram, merged by bucket-wise addition
//                 (pause distributions, lifetime max counts).
// Merge order therefore cannot change any value, so a sweep's merged
// registry — and the `--metrics-out` bytes derived from it — is identical
// at every `--jobs` count.
//
// Handles are stable pointers into node-based maps: after
// `Counter c = registry.counter("lpt.ref_ops")`, `c.add(1)` is a plain
// 64-bit increment with no lookup — cheap enough for hot paths (the
// micro_lpt overhead gate). Registries are not internally synchronized;
// the sweep discipline is one registry per task id (obs::ShardSet), merged
// serially in id order afterwards.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "support/stats.hpp"

namespace small::obs {

class Registry;

/// Monotone counter handle (sum-merged). Plain increment, no lookup.
/// A default-constructed (unbound) handle is a no-op on every operation,
/// like the null TraceSink fast path — instrumented code may hold handles
/// unconditionally and only bind them when obs is enabled.
class Counter {
 public:
  Counter() = default;
  void add(std::uint64_t n = 1) {
    if (slot_ != nullptr) *slot_ += n;
  }
  std::uint64_t value() const { return slot_ != nullptr ? *slot_ : 0; }

 private:
  friend class Registry;
  explicit Counter(std::uint64_t* slot) : slot_(slot) {}
  std::uint64_t* slot_ = nullptr;
};

/// High-water-mark handle (max-merged). Unbound handles no-op.
class Max {
 public:
  Max() = default;
  void record(std::uint64_t v) {
    if (slot_ != nullptr && v > *slot_) *slot_ = v;
  }
  std::uint64_t value() const { return slot_ != nullptr ? *slot_ : 0; }

 private:
  friend class Registry;
  explicit Max(std::uint64_t* slot) : slot_(slot) {}
  std::uint64_t* slot_ = nullptr;
};

/// Additive double handle (sum-merged). Unbound handles no-op.
class Gauge {
 public:
  Gauge() = default;
  void add(double v) {
    if (slot_ != nullptr) *slot_ += v;
  }
  double value() const { return slot_ != nullptr ? *slot_ : 0.0; }

 private:
  friend class Registry;
  explicit Gauge(double* slot) : slot_(slot) {}
  double* slot_ = nullptr;
};

class Registry {
 public:
  /// Handle accessors create the metric on first use (zero-initialized).
  Counter counter(const std::string& name);
  Max max(const std::string& name);
  Gauge gauge(const std::string& name);
  support::Histogram& histogram(const std::string& name);

  /// Shorthand for one-shot contributions (lookup per call).
  void add(const std::string& name, std::uint64_t n) { counter(name).add(n); }
  void recordMax(const std::string& name, std::uint64_t v) {
    max(name).record(v);
  }

  /// Read accessors: 0 / empty when the metric does not exist.
  std::uint64_t counterValue(const std::string& name) const;
  std::uint64_t maxValue(const std::string& name) const;
  /// Names of all max metrics, sorted (the map order). Lets callers
  /// promote families of maxima (e.g. sim.throughput.*) into figures.
  std::vector<std::string> maxNames() const;
  double gaugeValue(const std::string& name) const;
  const support::Histogram* findHistogram(const std::string& name) const;

  bool empty() const {
    return counters_.empty() && maxima_.empty() && gauges_.empty() &&
           histograms_.empty();
  }

  /// Fold `other` into this registry (sum / max / sum / bucket-add).
  /// Associative and commutative; see header comment.
  void merge(const Registry& other);

  /// One JSON object per metric, one per line, sorted by metric family
  /// then name (the maps iterate sorted). Ends with a newline iff any
  /// metric exists. Format (versioned via the bench_report header line
  /// the callers prepend):
  ///   {"type":"counter","name":...,"value":N}
  ///   {"type":"max","name":...,"value":N}
  ///   {"type":"gauge","name":...,"value":X}
  ///   {"type":"histogram","name":...,"total":N,"buckets":[[v,c],...]}
  std::string exportJsonLines() const;

 private:
  // node-based maps: handle pointers stay valid across inserts.
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, std::uint64_t> maxima_;
  std::map<std::string, double> gauges_;
  std::map<std::string, support::Histogram> histograms_;
};

}  // namespace small::obs
