// Minimal JSON value, parser and writer for the observability layer.
//
// The obs exporters emit machine-readable artifacts (bench_report JSONL,
// Chrome trace-event JSON) and the repo's own tooling — report_lint,
// bench_summary, the obs round-trip tests — must read them back without
// adding a dependency the container does not bake in. This is a small,
// strict subset implementation: objects, arrays, strings (with \uXXXX
// escapes for control characters only on output), doubles, 64-bit
// integers, booleans and null. Numbers that parse as integral stay
// integral, so counter values round-trip exactly.
//
// Writing is deterministic by construction: object members are emitted in
// insertion order, integers as decimal, and doubles through a fixed
// shortest-round-trip format — the byte-identical `--metrics-out` contract
// at any `--jobs` count rests on this.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace small::obs {

class JsonValue;

/// Parse error with 1-based line/column of the offending byte.
struct JsonError {
  std::string message;
  std::size_t line = 0;
  std::size_t column = 0;
};

class JsonValue {
 public:
  enum class Kind : std::uint8_t {
    kNull,
    kBool,
    kInt,
    kDouble,
    kString,
    kArray,
    kObject,
  };

  JsonValue() : kind_(Kind::kNull) {}
  static JsonValue makeBool(bool v);
  static JsonValue makeInt(std::int64_t v);
  static JsonValue makeUint(std::uint64_t v);
  static JsonValue makeDouble(double v);
  static JsonValue makeString(std::string v);
  static JsonValue makeArray();
  static JsonValue makeObject();

  Kind kind() const { return kind_; }
  bool isNull() const { return kind_ == Kind::kNull; }
  bool isBool() const { return kind_ == Kind::kBool; }
  bool isInt() const { return kind_ == Kind::kInt; }
  bool isNumber() const {
    return kind_ == Kind::kInt || kind_ == Kind::kDouble;
  }
  bool isString() const { return kind_ == Kind::kString; }
  bool isArray() const { return kind_ == Kind::kArray; }
  bool isObject() const { return kind_ == Kind::kObject; }

  bool boolValue() const { return bool_; }
  std::int64_t intValue() const { return int_; }
  double numberValue() const {
    return kind_ == Kind::kInt ? static_cast<double>(int_) : double_;
  }
  const std::string& stringValue() const { return string_; }

  // --- arrays ---
  const std::vector<JsonValue>& items() const { return items_; }
  void append(JsonValue v) { items_.push_back(std::move(v)); }

  // --- objects (insertion-ordered) ---
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }
  /// Set (or overwrite) a member, preserving first-insertion order.
  void set(std::string key, JsonValue v);
  /// Member lookup; nullptr when absent.
  const JsonValue* find(std::string_view key) const;

  /// Serialize (no trailing newline). Deterministic; see header comment.
  std::string dump() const;

 private:
  Kind kind_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Deterministic double formatting shared by every obs exporter: shortest
/// representation that round-trips (printf %.17g tightened when fewer
/// digits suffice), "0" for zero, no locale dependence.
std::string formatJsonDouble(double v);

/// Escape a string into a JSON string literal (with the quotes).
std::string jsonQuote(std::string_view s);

/// Parse one JSON document from `text`. Trailing whitespace is allowed,
/// trailing garbage is an error. Returns false and fills `error` on
/// malformed input.
bool parseJson(std::string_view text, JsonValue* out, JsonError* error);

}  // namespace small::obs
