// The SMALL compiler (§4.3.4).
//
// "The compiler accepts a file containing a function call and any number of
//  function definitions... generates code for each function by traversing
//  the function definition tree, producing code for a node when code has
//  been produced for all of its children, and backpatching forward calls
//  when the function definition is encountered."
//
// The accepted language is the thesis' Lisp 1.0-level subset: list
// primitives, cond, prog (with go and labels), return, predicates, integer
// arithmetic, logic, setq, read/write, def. Function parameters compile to
// PUSHSTK offsets ("the pre-processing enables function arguments ... to be
// looked-up as known offsets"); prog locals and non-locals use named
// lookup.
#pragma once

#include <string_view>

#include "sexpr/reader.hpp"
#include "vm/isa.hpp"

namespace small::vm {

class Compiler {
 public:
  Compiler(sexpr::Arena& arena, sexpr::SymbolTable& symbols)
      : arena_(arena), symbols_(symbols) {}

  /// Compile a program text: any number of (def ...) forms plus top-level
  /// forms, which execute in order when the program runs.
  Program compile(std::string_view source);

 private:
  struct FunctionContext {
    std::vector<sexpr::SymbolId> params;  // PUSHSTK index = position + 1
  };

  void compileForm(Program& program, sexpr::NodeRef form,
                   const FunctionContext& context);
  void compileCall(Program& program, sexpr::SymbolId head,
                   sexpr::NodeRef args, const FunctionContext& context);
  void compileCond(Program& program, sexpr::NodeRef clauses,
                   const FunctionContext& context);
  void compileProg(Program& program, sexpr::NodeRef rest,
                   const FunctionContext& context);
  void compileDef(Program& program, sexpr::NodeRef rest);

  std::int32_t addConstant(Program& program, sexpr::NodeRef value);
  void emit(Program& program, Opcode op, std::int32_t operand = 0,
            sexpr::SymbolId sym = 0);

  [[noreturn]] void error(const std::string& message) const;

  sexpr::Arena& arena_;
  sexpr::SymbolTable& symbols_;

  // Call sites awaiting a later (def ...) — backpatched by name.
  // (FCALL carries the name symbol, so "backpatching" here is verifying at
  // the end that every called function was eventually defined.)
  std::vector<sexpr::SymbolId> pendingCalls_;
};

}  // namespace small::vm
