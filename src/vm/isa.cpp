#include "vm/isa.hpp"

#include <sstream>

#include "sexpr/printer.hpp"

namespace small::vm {

const Program::Function* Program::findFunction(std::string_view name) const {
  for (const Function& function : functions) {
    if (function.name == name) return &function;
  }
  return nullptr;
}

const char* opcodeName(Opcode op) {
  switch (op) {
    case Opcode::kBindN: return "BINDN";
    case Opcode::kPushStk: return "PUSHSTK";
    case Opcode::kPushVar: return "PUSHVAR";
    case Opcode::kPushSym: return "PUSHSYM";
    case Opcode::kSetq: return "SETQ";
    case Opcode::kPop: return "POP";
    case Opcode::kFCall: return "FCALL";
    case Opcode::kFRetn: return "FRETN";
    case Opcode::kJump: return "JUMP";
    case Opcode::kBranchNil: return "BRNIL";
    case Opcode::kNullP: return "NULLP";
    case Opcode::kAtomP: return "ATOMP";
    case Opcode::kEqualP: return "EQUALP";
    case Opcode::kGreaterP: return "GREATERP";
    case Opcode::kLessP: return "LESSP";
    case Opcode::kNEqualP: return "NEQUALP";
    case Opcode::kAddOp: return "ADDOP";
    case Opcode::kSubOp: return "SUBOP";
    case Opcode::kMulOp: return "MULOP";
    case Opcode::kDivOp: return "DIVOP";
    case Opcode::kNotOp: return "NOTOP";
    case Opcode::kCarOp: return "CAROP";
    case Opcode::kCdrOp: return "CDROP";
    case Opcode::kConsOp: return "CONSOP";
    case Opcode::kRplacaOp: return "RPLACAOP";
    case Opcode::kRplacdOp: return "RPLACDOP";
    case Opcode::kRdList: return "RDLIST";
    case Opcode::kWrList: return "WRLIST";
    case Opcode::kHalt: return "HALT";
  }
  return "?";
}

namespace {

bool usesSym(Opcode op) {
  return op == Opcode::kBindN || op == Opcode::kPushVar ||
         op == Opcode::kSetq || op == Opcode::kFCall;
}

bool usesBranch(Opcode op) {
  return op == Opcode::kJump || op == Opcode::kBranchNil ||
         op == Opcode::kNEqualP;
}

}  // namespace

std::string disassemble(const Program& program, const sexpr::Arena& arena,
                        const sexpr::SymbolTable& symbols) {
  std::ostringstream out;
  for (std::size_t pc = 0; pc < program.code.size(); ++pc) {
    for (const Program::Function& function : program.functions) {
      if (function.entry == pc) {
        out << function.name << ":\n";
      }
    }
    if (program.start == pc) out << "__top__:\n";
    const Instruction& insn = program.code[pc];
    out << "  " << pc << "\t" << opcodeName(insn.op);
    if (usesSym(insn.op)) {
      out << "\t" << symbols.name(insn.sym);
    } else if (usesBranch(insn.op)) {
      out << "\t-> " << insn.operand;
    } else if (insn.op == Opcode::kPushSym) {
      out << "\t"
          << sexpr::print(arena, symbols,
                          program.constants[static_cast<std::size_t>(
                              insn.operand)]);
    } else if (insn.op == Opcode::kPushStk) {
      out << "\t" << insn.operand;
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace small::vm
