#include "vm/emulator.hpp"

#include <algorithm>
#include <string>

#include "obs/names.hpp"
#include "obs/registry.hpp"
#include "support/error.hpp"

namespace small::vm {

using sexpr::NodeKind;
using sexpr::NodeRef;
using sexpr::SymbolId;
using support::EvalError;

void Emulator::error(const std::string& message) const {
  throw EvalError("vm emulator: " + message);
}

NodeRef Emulator::pop() {
  if (values_.empty()) error("value stack underflow");
  const NodeRef value = values_.back();
  values_.pop_back();
  return value;
}

void Emulator::push(NodeRef value) {
  values_.push_back(value);
  maxStackDepth_ = std::max(
      maxStackDepth_, static_cast<std::uint32_t>(values_.size()));
}

NodeRef Emulator::boolean(bool value) {
  return value ? arena_.symbol(sexpr::SymbolTable::kT) : sexpr::kNilRef;
}

std::int64_t Emulator::popInt(const char* what) {
  const NodeRef value = pop();
  if (arena_.kind(value) != NodeKind::kInteger) {
    error(std::string(what) + ": expected an integer");
  }
  return arena_.integerValue(value);
}

NodeRef Emulator::lookup(SymbolId name) const {
  // Dynamic (deep) binding: the most recent binding wins.
  for (std::size_t i = bindings_.size(); i-- > 0;) {
    if (bindings_[i].name == name) return bindings_[i].value;
  }
  for (const auto& [globalName, value] : globals_) {
    if (globalName == name) return value;
  }
  return sexpr::kNilRef;
}

void Emulator::run(const Program& program) {
  std::uint32_t pc = program.start;
  frames_.push_back(Frame{});  // top-level frame

  while (true) {
    if (++instructions_ > options_.maxSteps) error("step budget exceeded");
    if (pc >= program.code.size()) error("pc out of range");
    const Instruction insn = program.code[pc];
    ++pc;
    ++opcodeCounts_[static_cast<std::size_t>(insn.op)];
    switch (insn.op) {
      case Opcode::kHalt:
        return;
      case Opcode::kPushSym:
        push(program.constants[static_cast<std::size_t>(insn.operand)]);
        break;
      case Opcode::kPushStk: {
        // Argument k (1-based) of the current frame. The prologue's BINDN
        // sequence moved the arguments into the binding stack in reverse
        // order (last argument bound first), so argument k sits at binding
        // slot bindingBase + (argCount - k).
        const Frame& frame = frames_.back();
        const auto k = static_cast<std::size_t>(insn.operand);
        if (k == 0 || k > frame.argCount) error("PUSHSTK: bad arg index");
        const std::size_t slot = frame.bindingBase + (frame.argCount - k);
        if (slot >= bindings_.size()) error("PUSHSTK: missing binding");
        push(bindings_[slot].value);
        break;
      }
      case Opcode::kPushVar:
        push(lookup(insn.sym));
        break;
      case Opcode::kBindN:
        bindings_.push_back({insn.sym, pop()});
        break;
      case Opcode::kSetq: {
        const NodeRef value = values_.empty() ? sexpr::kNilRef
                                              : values_.back();
        bool found = false;
        for (std::size_t i = bindings_.size(); i-- > 0;) {
          if (bindings_[i].name == insn.sym) {
            bindings_[i].value = value;
            found = true;
            break;
          }
        }
        if (!found) {
          for (auto& [name, slot] : globals_) {
            if (name == insn.sym) {
              slot = value;
              found = true;
              break;
            }
          }
        }
        if (!found) globals_.emplace_back(insn.sym, value);
        break;
      }
      case Opcode::kPop:
        pop();
        break;

      case Opcode::kFCall: {
        const Program::Function* callee =
            program.findFunction(symbols_.name(insn.sym));
        if (!callee) error("FCALL to undefined function");
        if (callee->argCount != insn.operand) {
          error("FCALL: wrong number of arguments for " + callee->name);
        }
        ++functionCalls_;
        Frame frame;
        frame.returnPc = pc;
        frame.valueBase = values_.size();
        frame.bindingBase = bindings_.size();
        frame.argCount = callee->argCount;
        frames_.push_back(frame);
        pc = callee->entry;
        break;
      }
      case Opcode::kFRetn: {
        if (frames_.size() <= 1) return;  // return from top level = halt
        const NodeRef value = pop();
        const Frame frame = frames_.back();
        frames_.pop_back();
        // Drop the callee's bindings and its arguments from the stacks.
        bindings_.resize(frame.bindingBase);
        values_.resize(frame.valueBase - frame.argCount);
        push(value);
        pc = frame.returnPc;
        break;
      }
      case Opcode::kJump:
        pc = static_cast<std::uint32_t>(insn.operand);
        break;
      case Opcode::kBranchNil: {
        if (arena_.isNil(pop())) {
          pc = static_cast<std::uint32_t>(insn.operand);
        }
        break;
      }
      case Opcode::kNEqualP: {
        const NodeRef b = pop();
        const NodeRef a = pop();
        if (!arena_.equal(a, b)) {
          pc = static_cast<std::uint32_t>(insn.operand);
        }
        break;
      }

      case Opcode::kNullP:
        push(boolean(arena_.isNil(pop())));
        break;
      case Opcode::kAtomP:
        push(boolean(arena_.isAtom(pop())));
        break;
      case Opcode::kEqualP: {
        const NodeRef b = pop();
        const NodeRef a = pop();
        push(boolean(arena_.equal(a, b)));
        break;
      }
      case Opcode::kGreaterP: {
        const std::int64_t b = popInt("GREATERP");
        const std::int64_t a = popInt("GREATERP");
        push(boolean(a > b));
        break;
      }
      case Opcode::kLessP: {
        const std::int64_t b = popInt("LESSP");
        const std::int64_t a = popInt("LESSP");
        push(boolean(a < b));
        break;
      }
      case Opcode::kNotOp:
        push(boolean(arena_.isNil(pop())));
        break;

      case Opcode::kAddOp: {
        const std::int64_t b = popInt("ADDOP");
        const std::int64_t a = popInt("ADDOP");
        push(arena_.integer(a + b));
        break;
      }
      case Opcode::kSubOp: {
        const std::int64_t b = popInt("SUBOP");
        const std::int64_t a = popInt("SUBOP");
        push(arena_.integer(a - b));
        break;
      }
      case Opcode::kMulOp: {
        const std::int64_t b = popInt("MULOP");
        const std::int64_t a = popInt("MULOP");
        push(arena_.integer(a * b));
        break;
      }
      case Opcode::kDivOp: {
        const std::int64_t b = popInt("DIVOP");
        const std::int64_t a = popInt("DIVOP");
        if (b == 0) error("DIVOP: division by zero");
        push(arena_.integer(a / b));
        break;
      }

      case Opcode::kCarOp:
        ++listOps_;
        push(arena_.car(pop()));
        break;
      case Opcode::kCdrOp:
        ++listOps_;
        push(arena_.cdr(pop()));
        break;
      case Opcode::kConsOp: {
        ++listOps_;
        const NodeRef tail = pop();
        const NodeRef head = pop();
        push(arena_.cons(head, tail));
        break;
      }
      case Opcode::kRplacaOp: {
        ++listOps_;
        const NodeRef value = pop();
        const NodeRef target = pop();
        arena_.setCar(target, value);
        push(target);
        break;
      }
      case Opcode::kRplacdOp: {
        ++listOps_;
        const NodeRef value = pop();
        const NodeRef target = pop();
        arena_.setCdr(target, value);
        push(target);
        break;
      }

      case Opcode::kRdList: {
        ++listOps_;
        if (input_.empty()) {
          push(sexpr::kNilRef);
        } else {
          push(input_.front());
          input_.pop_front();
        }
        break;
      }
      case Opcode::kWrList:
        ++listOps_;
        output_.push_back(pop());
        break;
    }
  }
}

void Emulator::contributeObs(obs::Registry& registry) const {
  registry.add(obs::names::kVmInstructions, instructions_);
  registry.add(obs::names::kVmListOps, listOps_);
  registry.add(obs::names::kVmFunctionCalls, functionCalls_);
  registry.recordMax(obs::names::kVmMaxStackDepth, maxStackDepth_);
  for (std::size_t op = 0; op < kOpcodeCount; ++op) {
    if (opcodeCounts_[op] == 0) continue;
    registry.add(std::string(obs::names::kVmOpPrefix) +
                     opcodeName(static_cast<Opcode>(op)),
                 opcodeCounts_[op]);
  }
}

}  // namespace small::vm
