// The stack-machine emulator backed by the functional SMALL machine.
//
// "The emulator operated by tracing the state of three key SMALL
//  structures: the stack (control and environment), the LPT and the heap"
// (§4.3.4). Where `vm::Emulator` executes against plain s-expressions,
// this emulator's list values are `SmallMachine::Value`s: every car/cdr
// goes through the LPT (splitting heap objects on demand), every cons is
// endo-structure, and the machine's statistics expose exactly how much
// table and heap activity the compiled program caused.
//
// Output is recorded as *printed text at write time* (real I/O
// semantics): later destructive updates do not retroactively change what
// was written.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "sexpr/arena.hpp"
#include "small/machine.hpp"
#include "vm/isa.hpp"

namespace small::vm {

class SmallEmulator {
 public:
  struct Options {
    std::uint64_t maxSteps = 50'000'000;
    core::SmallMachine::Config machine{};
  };

  SmallEmulator(sexpr::Arena& arena, sexpr::SymbolTable& symbols)
      : SmallEmulator(arena, symbols, Options{}) {}
  SmallEmulator(sexpr::Arena& arena, sexpr::SymbolTable& symbols,
                Options options);
  ~SmallEmulator();

  SmallEmulator(const SmallEmulator&) = delete;
  SmallEmulator& operator=(const SmallEmulator&) = delete;

  void run(const Program& program);

  void provideInput(sexpr::NodeRef value) { input_.push_back(value); }

  /// Text written by WRLIST, snapshotted at write time.
  const std::vector<std::string>& output() const { return output_; }

  const core::SmallMachine& machine() const { return machine_; }
  /// Heap-collection counters when Options::machine.gcPolicy selects a
  /// collector (all zero under the default refcount policy).
  const gc::GcStats& gcStats() const { return machine_.gcStats(); }
  std::uint64_t instructionsExecuted() const { return instructions_; }
  std::uint64_t functionCalls() const { return functionCalls_; }

  /// Release every reference still held (stack, bindings, globals,
  /// constants) and drain the heap free queue. Called by the destructor;
  /// callable earlier so tests can assert the machine empties out.
  void shutdown();

 private:
  using Value = core::SmallMachine::Value;

  struct Binding {
    sexpr::SymbolId name;
    Value value;  // owns one EP reference when an object
  };
  struct Frame {
    std::uint32_t returnPc = 0;
    std::size_t valueBase = 0;
    std::size_t bindingBase = 0;
    std::uint8_t argCount = 0;
  };

  /// Pop with ownership transfer: the caller must push, store, or
  /// release the returned value.
  Value pop();
  void push(Value value);        ///< takes ownership
  void pushBorrowed(Value value);///< retains, then pushes
  void release(Value value) { machine_.release(value); }

  Value constantValue(const Program& program, std::int32_t index);
  Value lookup(sexpr::SymbolId name);
  Value boolean(bool value);
  std::int64_t popInt(const char* what);
  bool valuesEqual(Value a, Value b);

  [[noreturn]] void error(const std::string& message) const;

  sexpr::Arena& arena_;
  sexpr::SymbolTable& symbols_;
  Options options_;
  core::SmallMachine machine_;

  std::vector<Value> values_;
  std::vector<Binding> bindings_;
  std::vector<Frame> frames_;
  std::vector<Binding> globals_;
  std::unordered_map<std::int32_t, Value> constants_;  // owns refs

  std::deque<sexpr::NodeRef> input_;
  std::vector<std::string> output_;

  std::uint64_t instructions_ = 0;
  std::uint64_t functionCalls_ = 0;
};

}  // namespace small::vm
