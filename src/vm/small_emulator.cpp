#include "vm/small_emulator.hpp"

#include <algorithm>

#include "sexpr/printer.hpp"
#include "support/error.hpp"

namespace small::vm {

using core::SmallMachine;
using sexpr::NodeRef;
using sexpr::SymbolId;
using support::EvalError;

SmallEmulator::SmallEmulator(sexpr::Arena& arena,
                             sexpr::SymbolTable& symbols, Options options)
    : arena_(arena),
      symbols_(symbols),
      options_(options),
      machine_(options.machine) {}

SmallEmulator::~SmallEmulator() { shutdown(); }

void SmallEmulator::shutdown() {
  // Release everything still owned so the machine drains cleanly.
  for (Value& v : values_) machine_.release(v);
  values_.clear();
  for (Binding& b : bindings_) machine_.release(b.value);
  bindings_.clear();
  for (Binding& b : globals_) machine_.release(b.value);
  globals_.clear();
  for (auto& [index, value] : constants_) machine_.release(value);
  constants_.clear();
  machine_.serviceAllHeapFrees();
}

void SmallEmulator::error(const std::string& message) const {
  throw EvalError("small emulator: " + message);
}

SmallEmulator::Value SmallEmulator::pop() {
  if (values_.empty()) error("value stack underflow");
  const Value value = values_.back();
  values_.pop_back();
  return value;
}

void SmallEmulator::push(Value value) { values_.push_back(value); }

void SmallEmulator::pushBorrowed(Value value) {
  machine_.retain(value);
  values_.push_back(value);
}

SmallEmulator::Value SmallEmulator::boolean(bool value) {
  return value ? Value::symbol(sexpr::SymbolTable::kT) : Value::nil();
}

std::int64_t SmallEmulator::popInt(const char* what) {
  const Value value = pop();
  if (value.kind != Value::Kind::kInteger) {
    error(std::string(what) + ": expected an integer");
  }
  return static_cast<std::int64_t>(value.payload);
}

SmallEmulator::Value SmallEmulator::constantValue(const Program& program,
                                                  std::int32_t index) {
  const auto it = constants_.find(index);
  if (it != constants_.end()) return it->second;
  const NodeRef node =
      program.constants[static_cast<std::size_t>(index)];
  // Lists materialize through readlist once; the cache keeps identity so
  // repeated pushes of the same quoted constant share structure, as in
  // the reference emulator.
  const Value value = machine_.readList(arena_, node);
  constants_.emplace(index, value);
  return value;
}

SmallEmulator::Value SmallEmulator::lookup(SymbolId name) {
  for (std::size_t i = bindings_.size(); i-- > 0;) {
    if (bindings_[i].name == name) return bindings_[i].value;
  }
  for (const Binding& b : globals_) {
    if (b.name == name) return b.value;
  }
  return Value::nil();
}

bool SmallEmulator::valuesEqual(Value a, Value b) {
  if (a.kind != b.kind) {
    // nil vs object etc. — compare structurally through writeList.
    return arena_.equal(machine_.writeList(arena_, a),
                        machine_.writeList(arena_, b));
  }
  switch (a.kind) {
    case Value::Kind::kNil:
      return true;
    case Value::Kind::kSymbol:
    case Value::Kind::kInteger:
      return a.payload == b.payload;
    case Value::Kind::kObject:
      return arena_.equal(machine_.writeList(arena_, a),
                          machine_.writeList(arena_, b));
  }
  return false;
}

void SmallEmulator::run(const Program& program) {
  std::uint32_t pc = program.start;
  frames_.push_back(Frame{});

  while (true) {
    if (++instructions_ > options_.maxSteps) error("step budget exceeded");
    if (pc >= program.code.size()) error("pc out of range");
    const Instruction insn = program.code[pc];
    ++pc;
    switch (insn.op) {
      case Opcode::kHalt:
        return;
      case Opcode::kPushSym:
        pushBorrowed(constantValue(program, insn.operand));
        break;
      case Opcode::kPushStk: {
        const Frame& frame = frames_.back();
        const auto k = static_cast<std::size_t>(insn.operand);
        if (k == 0 || k > frame.argCount) error("PUSHSTK: bad arg index");
        const std::size_t slot = frame.bindingBase + (frame.argCount - k);
        if (slot >= bindings_.size()) error("PUSHSTK: missing binding");
        pushBorrowed(bindings_[slot].value);
        break;
      }
      case Opcode::kPushVar:
        pushBorrowed(lookup(insn.sym));
        break;
      case Opcode::kBindN:
        bindings_.push_back({insn.sym, pop()});  // ownership moves
        break;
      case Opcode::kSetq: {
        if (values_.empty()) error("SETQ: empty stack");
        const Value value = values_.back();  // stays on the stack
        bool found = false;
        for (std::size_t i = bindings_.size(); i-- > 0;) {
          if (bindings_[i].name == insn.sym) {
            machine_.retain(value);
            release(bindings_[i].value);
            bindings_[i].value = value;
            found = true;
            break;
          }
        }
        if (!found) {
          for (Binding& b : globals_) {
            if (b.name == insn.sym) {
              machine_.retain(value);
              release(b.value);
              b.value = value;
              found = true;
              break;
            }
          }
        }
        if (!found) {
          machine_.retain(value);
          globals_.push_back({insn.sym, value});
        }
        break;
      }
      case Opcode::kPop:
        release(pop());
        break;

      case Opcode::kFCall: {
        const Program::Function* callee =
            program.findFunction(symbols_.name(insn.sym));
        if (!callee) error("FCALL to undefined function");
        if (callee->argCount != insn.operand) {
          error("FCALL: wrong argument count for " + callee->name);
        }
        ++functionCalls_;
        Frame frame;
        frame.returnPc = pc;
        frame.valueBase = values_.size();
        frame.bindingBase = bindings_.size();
        frame.argCount = callee->argCount;
        frames_.push_back(frame);
        pc = callee->entry;
        break;
      }
      case Opcode::kFRetn: {
        if (frames_.size() <= 1) return;
        const Value result = pop();
        const Frame frame = frames_.back();
        frames_.pop_back();
        while (bindings_.size() > frame.bindingBase) {
          release(bindings_.back().value);
          bindings_.pop_back();
        }
        const std::size_t floor = frame.valueBase - frame.argCount;
        while (values_.size() > floor) release(pop());
        push(result);
        pc = frame.returnPc;
        break;
      }
      case Opcode::kJump:
        pc = static_cast<std::uint32_t>(insn.operand);
        break;
      case Opcode::kBranchNil: {
        const Value v = pop();
        const bool isNil = v.kind == Value::Kind::kNil;
        release(v);
        if (isNil) pc = static_cast<std::uint32_t>(insn.operand);
        break;
      }
      case Opcode::kNEqualP: {
        const Value b = pop();
        const Value a = pop();
        const bool equal = valuesEqual(a, b);
        release(a);
        release(b);
        if (!equal) pc = static_cast<std::uint32_t>(insn.operand);
        break;
      }

      case Opcode::kNullP: {
        const Value v = pop();
        const bool isNil = v.kind == Value::Kind::kNil;
        release(v);
        push(boolean(isNil));
        break;
      }
      case Opcode::kAtomP: {
        const Value v = pop();
        const bool isAtom = !v.isObject();
        release(v);
        push(boolean(isAtom));
        break;
      }
      case Opcode::kEqualP: {
        const Value b = pop();
        const Value a = pop();
        const bool equal = valuesEqual(a, b);
        release(a);
        release(b);
        push(boolean(equal));
        break;
      }
      case Opcode::kGreaterP: {
        const std::int64_t b = popInt("GREATERP");
        const std::int64_t a = popInt("GREATERP");
        push(boolean(a > b));
        break;
      }
      case Opcode::kLessP: {
        const std::int64_t b = popInt("LESSP");
        const std::int64_t a = popInt("LESSP");
        push(boolean(a < b));
        break;
      }
      case Opcode::kNotOp: {
        const Value v = pop();
        const bool isNil = v.kind == Value::Kind::kNil;
        release(v);
        push(boolean(isNil));
        break;
      }

      case Opcode::kAddOp:
      case Opcode::kSubOp:
      case Opcode::kMulOp:
      case Opcode::kDivOp: {
        const std::int64_t b = popInt("arith");
        const std::int64_t a = popInt("arith");
        std::int64_t r = 0;
        if (insn.op == Opcode::kAddOp) r = a + b;
        if (insn.op == Opcode::kSubOp) r = a - b;
        if (insn.op == Opcode::kMulOp) r = a * b;
        if (insn.op == Opcode::kDivOp) {
          if (b == 0) error("DIVOP: division by zero");
          r = a / b;
        }
        push(Value::integer(r));
        break;
      }

      case Opcode::kCarOp: {
        const Value v = pop();
        push(machine_.car(v));  // result carries its own reference
        release(v);
        break;
      }
      case Opcode::kCdrOp: {
        const Value v = pop();
        push(machine_.cdr(v));
        release(v);
        break;
      }
      case Opcode::kConsOp: {
        const Value tail = pop();
        const Value head = pop();
        push(machine_.cons(head, tail));  // takes internal field refs
        release(head);
        release(tail);
        break;
      }
      case Opcode::kRplacaOp:
      case Opcode::kRplacdOp: {
        const Value value = pop();
        const Value target = pop();
        if (insn.op == Opcode::kRplacaOp) {
          machine_.rplaca(target, value);
        } else {
          machine_.rplacd(target, value);
        }
        release(value);
        push(target);  // keeps its reference, returned as the result
        break;
      }

      case Opcode::kRdList: {
        if (input_.empty()) {
          push(Value::nil());
        } else {
          push(machine_.readList(arena_, input_.front()));
          input_.pop_front();
        }
        break;
      }
      case Opcode::kWrList: {
        const Value v = pop();
        output_.push_back(sexpr::print(arena_, symbols_,
                                       machine_.writeList(arena_, v)));
        release(v);
        break;
      }
    }
  }
}

}  // namespace small::vm
