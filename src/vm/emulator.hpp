// The SMALL stack-machine emulator (§4.3.4).
//
// "We emulated the code produced by this compiler to test its correctness.
//  The emulator operated by tracing the state of three key SMALL
//  structures: the stack (control and environment), the LPT and the heap."
//
// Values are arena NodeRefs; the list instructions perform the operations
// the LP would, and the emulator counts them so tests can correlate
// compiled-code behaviour with interpreter traces.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <string_view>
#include <vector>

#include "sexpr/arena.hpp"
#include "vm/isa.hpp"

namespace small::obs {
class Registry;
}

namespace small::vm {

class Emulator {
 public:
  struct Options {
    std::uint64_t maxSteps = 50'000'000;
  };

  Emulator(sexpr::Arena& arena, sexpr::SymbolTable& symbols)
      : Emulator(arena, symbols, Options{}) {}
  Emulator(sexpr::Arena& arena, sexpr::SymbolTable& symbols, Options options)
      : arena_(arena), symbols_(symbols), options_(options) {}

  /// Run the program from its top-level entry until HALT.
  void run(const Program& program);

  void provideInput(sexpr::NodeRef value) { input_.push_back(value); }
  const std::vector<sexpr::NodeRef>& output() const { return output_; }

  std::uint64_t instructionsExecuted() const { return instructions_; }
  std::uint64_t listOps() const { return listOps_; }
  std::uint64_t functionCalls() const { return functionCalls_; }
  std::uint32_t maxStackDepth() const { return maxStackDepth_; }

  /// Per-opcode dispatch tallies, indexed by Opcode — the emulator-side
  /// mirror of the interpreter's primitive frequencies (Fig 3.1).
  const std::array<std::uint64_t, kOpcodeCount>& opcodeCounts() const {
    return opcodeCounts_;
  }

  /// Publish dispatch tallies into `registry` under the obs names
  /// ("vm.instructions", "vm.op.<MNEMONIC>", ...; obs/names.hpp).
  void contributeObs(obs::Registry& registry) const;

 private:
  struct Binding {
    sexpr::SymbolId name;
    sexpr::NodeRef value;
  };
  struct Frame {
    std::uint32_t returnPc = 0;
    std::size_t valueBase = 0;    ///< value-stack height at entry (args below)
    std::size_t bindingBase = 0;  ///< binding-stack height at entry
    std::uint8_t argCount = 0;
  };

  sexpr::NodeRef pop();
  void push(sexpr::NodeRef value);
  sexpr::NodeRef lookup(sexpr::SymbolId name) const;
  sexpr::NodeRef boolean(bool value);
  std::int64_t popInt(const char* what);

  [[noreturn]] void error(const std::string& message) const;

  sexpr::Arena& arena_;
  sexpr::SymbolTable& symbols_;
  Options options_;

  std::vector<sexpr::NodeRef> values_;
  std::vector<Binding> bindings_;
  std::vector<Frame> frames_;
  std::vector<std::pair<sexpr::SymbolId, sexpr::NodeRef>> globals_;

  std::deque<sexpr::NodeRef> input_;
  std::vector<sexpr::NodeRef> output_;

  std::uint64_t instructions_ = 0;
  std::uint64_t listOps_ = 0;
  std::uint64_t functionCalls_ = 0;
  std::uint32_t maxStackDepth_ = 0;
  std::array<std::uint64_t, kOpcodeCount> opcodeCounts_{};
};

}  // namespace small::vm
