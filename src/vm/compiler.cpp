#include "vm/compiler.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace small::vm {

using sexpr::NodeKind;
using sexpr::NodeRef;
using sexpr::SymbolId;
using support::EvalError;

void Compiler::error(const std::string& message) const {
  throw EvalError("vm compiler: " + message);
}

void Compiler::emit(Program& program, Opcode op, std::int32_t operand,
                    SymbolId sym) {
  program.code.push_back(Instruction{op, operand, sym});
}

std::int32_t Compiler::addConstant(Program& program, NodeRef value) {
  for (std::size_t i = 0; i < program.constants.size(); ++i) {
    if (program.constants[i] == value) return static_cast<std::int32_t>(i);
  }
  program.constants.push_back(value);
  return static_cast<std::int32_t>(program.constants.size() - 1);
}

Program Compiler::compile(std::string_view source) {
  sexpr::Reader reader(arena_, symbols_);
  const std::vector<NodeRef> forms = reader.readAll(source);

  Program program;
  std::vector<NodeRef> topLevel;

  const SymbolId defSym = symbols_.intern("def");
  const SymbolId defunSym = symbols_.intern("defun");

  // First pass: compile every function definition (so calls in top-level
  // code are resolvable); collect other forms.
  for (const NodeRef form : forms) {
    if (arena_.kind(form) == NodeKind::kCons &&
        arena_.kind(arena_.car(form)) == NodeKind::kSymbol) {
      const SymbolId head = arena_.symbolId(arena_.car(form));
      if (head == defSym || head == defunSym) {
        compileDef(program, arena_.cdr(form));
        continue;
      }
    }
    topLevel.push_back(form);
  }

  // Top-level block.
  program.start = static_cast<std::uint32_t>(program.code.size());
  FunctionContext context;
  for (const NodeRef form : topLevel) {
    compileForm(program, form, context);
    emit(program, Opcode::kPop);  // top-level values are discarded
  }
  emit(program, Opcode::kHalt);

  // "Backpatch": every call must name a defined function by now.
  for (const SymbolId callee : pendingCalls_) {
    if (!program.findFunction(symbols_.name(callee))) {
      error("call to undefined function '" + symbols_.name(callee) + "'");
    }
  }
  return program;
}

void Compiler::compileDef(Program& program, NodeRef rest) {
  const NodeRef nameNode = arena_.car(rest);
  if (arena_.kind(nameNode) != NodeKind::kSymbol) {
    error("def: function name must be a symbol");
  }

  // Accept both (def f (lambda (a b) body...)) and (defun f (a b) body...).
  NodeRef params;
  NodeRef body;
  const NodeRef second = arena_.car(arena_.cdr(rest));
  const SymbolId lambdaSym = symbols_.intern("lambda");
  if (arena_.kind(second) == NodeKind::kCons &&
      arena_.kind(arena_.car(second)) == NodeKind::kSymbol &&
      arena_.symbolId(arena_.car(second)) == lambdaSym) {
    params = arena_.car(arena_.cdr(second));
    body = arena_.cdr(arena_.cdr(second));
  } else {
    params = second;
    body = arena_.cdr(arena_.cdr(rest));
  }

  Program::Function function;
  function.name = symbols_.name(arena_.symbolId(nameNode));
  function.entry = static_cast<std::uint32_t>(program.code.size());

  FunctionContext context;
  for (NodeRef c = params; !arena_.isNil(c); c = arena_.cdr(c)) {
    context.params.push_back(arena_.symbolId(arena_.car(c)));
  }
  function.argCount = static_cast<std::uint8_t>(context.params.size());

  // Prologue: bind each argument to its name (Fig 4.14's "BINDN x"). The
  // caller pushed arguments left to right, so bind right to left.
  for (std::size_t i = context.params.size(); i-- > 0;) {
    emit(program, Opcode::kBindN, 0, context.params[i]);
  }

  bool any = false;
  for (NodeRef c = body; !arena_.isNil(c); c = arena_.cdr(c)) {
    if (any) emit(program, Opcode::kPop);
    compileForm(program, arena_.car(c), context);
    any = true;
  }
  if (!any) error("def: empty function body");
  emit(program, Opcode::kFRetn);

  program.functions.push_back(std::move(function));
}

void Compiler::compileForm(Program& program, NodeRef form,
                           const FunctionContext& context) {
  switch (arena_.kind(form)) {
    case NodeKind::kNil:
    case NodeKind::kInteger:
      emit(program, Opcode::kPushSym, addConstant(program, form));
      return;
    case NodeKind::kSymbol: {
      const SymbolId name = arena_.symbolId(form);
      if (name == sexpr::SymbolTable::kT) {
        emit(program, Opcode::kPushSym, addConstant(program, form));
        return;
      }
      // Known parameter offset (thesis: args looked up as known offsets).
      const auto it = std::ranges::find(context.params, name);
      if (it != context.params.end()) {
        const auto index =
            static_cast<std::int32_t>(it - context.params.begin()) + 1;
        emit(program, Opcode::kPushStk, index, name);
        return;
      }
      emit(program, Opcode::kPushVar, 0, name);
      return;
    }
    case NodeKind::kCons: {
      const NodeRef head = arena_.car(form);
      if (arena_.kind(head) != NodeKind::kSymbol) {
        error("cannot compile a non-symbol call head");
      }
      compileCall(program, arena_.symbolId(head), arena_.cdr(form), context);
      return;
    }
  }
}

void Compiler::compileCall(Program& program, SymbolId head, NodeRef args,
                           const FunctionContext& context) {
  const auto intern = [&](const char* name) { return symbols_.intern(name); };

  if (head == intern("quote")) {
    emit(program, Opcode::kPushSym, addConstant(program, arena_.car(args)));
    return;
  }
  if (head == intern("cond")) {
    compileCond(program, args, context);
    return;
  }
  if (head == intern("prog")) {
    compileProg(program, args, context);
    return;
  }
  if (head == intern("setq")) {
    const NodeRef nameNode = arena_.car(args);
    compileForm(program, arena_.car(arena_.cdr(args)), context);
    emit(program, Opcode::kSetq, 0, arena_.symbolId(nameNode));
    return;
  }
  if (head == intern("return")) {
    if (arena_.isNil(args)) {
      emit(program, Opcode::kPushSym, addConstant(program, sexpr::kNilRef));
    } else {
      compileForm(program, arena_.car(args), context);
    }
    emit(program, Opcode::kFRetn);
    return;
  }

  // Evaluate arguments left to right onto the stack.
  std::uint32_t argCount = 0;
  for (NodeRef c = args; !arena_.isNil(c); c = arena_.cdr(c)) {
    compileForm(program, arena_.car(c), context);
    ++argCount;
  }

  struct Simple {
    const char* name;
    Opcode op;
    std::uint32_t arity;
  };
  static constexpr Simple kSimple[] = {
      {"car", Opcode::kCarOp, 1},       {"cdr", Opcode::kCdrOp, 1},
      {"cons", Opcode::kConsOp, 2},     {"rplaca", Opcode::kRplacaOp, 2},
      {"rplacd", Opcode::kRplacdOp, 2}, {"+", Opcode::kAddOp, 2},
      {"-", Opcode::kSubOp, 2},         {"*", Opcode::kMulOp, 2},
      {"/", Opcode::kDivOp, 2},         {"null", Opcode::kNullP, 1},
      {"atom", Opcode::kAtomP, 1},      {"equal", Opcode::kEqualP, 2},
      {"=", Opcode::kEqualP, 2},        {">", Opcode::kGreaterP, 2},
      {"<", Opcode::kLessP, 2},         {"not", Opcode::kNotOp, 1},
      {"write", Opcode::kWrList, 1},
  };
  for (const Simple& simple : kSimple) {
    if (head == intern(simple.name)) {
      if (argCount != simple.arity) {
        error(std::string(simple.name) + ": wrong argument count");
      }
      emit(program, simple.op);
      if (simple.op == Opcode::kWrList) {
        // WRLIST consumes its operand; calls still produce a value.
        emit(program, Opcode::kPushSym,
             addConstant(program, sexpr::kNilRef));
      }
      return;
    }
  }
  if (head == intern("read")) {
    if (argCount != 0) error("read takes no compiled arguments");
    emit(program, Opcode::kRdList);
    return;
  }

  // User function call.
  pendingCalls_.push_back(head);
  emit(program, Opcode::kFCall, static_cast<std::int32_t>(argCount), head);
}

void Compiler::compileCond(Program& program, NodeRef clauses,
                           const FunctionContext& context) {
  // For each clause: evaluate test; BRNIL to next clause; body; JUMP end.
  std::vector<std::size_t> jumpsToEnd;
  for (NodeRef c = clauses; !arena_.isNil(c); c = arena_.cdr(c)) {
    const NodeRef clause = arena_.car(c);
    compileForm(program, arena_.car(clause), context);
    const std::size_t branch = program.code.size();
    emit(program, Opcode::kBranchNil);
    bool any = false;
    for (NodeRef body = arena_.cdr(clause); !arena_.isNil(body);
         body = arena_.cdr(body)) {
      if (any) emit(program, Opcode::kPop);
      compileForm(program, arena_.car(body), context);
      any = true;
    }
    if (!any) {
      // Clause with no body: value is the test value, which BRNIL consumed.
      // Re-evaluate cheaply by pushing t (the test was non-nil here).
      emit(program, Opcode::kPushSym,
           addConstant(program,
                       arena_.symbol(sexpr::SymbolTable::kT)));
    }
    jumpsToEnd.push_back(program.code.size());
    emit(program, Opcode::kJump);
    program.code[branch].operand =
        static_cast<std::int32_t>(program.code.size());
  }
  // No clause matched: value is nil.
  emit(program, Opcode::kPushSym, addConstant(program, sexpr::kNilRef));
  const auto end = static_cast<std::int32_t>(program.code.size());
  for (const std::size_t site : jumpsToEnd) {
    program.code[site].operand = end;
  }
}

void Compiler::compileProg(Program& program, NodeRef rest,
                           const FunctionContext& context) {
  // Locals bind to nil on entry.
  const std::int32_t nilConst = addConstant(program, sexpr::kNilRef);
  std::vector<SymbolId> locals;
  for (NodeRef c = arena_.car(rest); !arena_.isNil(c); c = arena_.cdr(c)) {
    const SymbolId name = arena_.symbolId(arena_.car(c));
    locals.push_back(name);
    emit(program, Opcode::kPushSym, nilConst);
    emit(program, Opcode::kBindN, 0, name);
  }

  // Two passes over the body: labels first, then code with resolved gotos.
  struct Label {
    SymbolId name;
    std::size_t target = 0;
  };
  std::vector<Label> labels;
  std::vector<std::pair<std::size_t, SymbolId>> gotos;  // (site, label)

  const SymbolId goSym = symbols_.intern("go");
  for (NodeRef c = arena_.cdr(rest); !arena_.isNil(c); c = arena_.cdr(c)) {
    const NodeRef item = arena_.car(c);
    if (arena_.kind(item) == NodeKind::kSymbol) {
      labels.push_back({arena_.symbolId(item), program.code.size()});
      continue;
    }
    if (arena_.kind(item) == NodeKind::kCons &&
        arena_.kind(arena_.car(item)) == NodeKind::kSymbol &&
        arena_.symbolId(arena_.car(item)) == goSym) {
      gotos.emplace_back(program.code.size(),
                         arena_.symbolId(arena_.car(arena_.cdr(item))));
      emit(program, Opcode::kJump);
      continue;
    }
    compileForm(program, item, context);
    emit(program, Opcode::kPop);  // statement position: discard value
  }
  // prog falls off the end with value nil.
  emit(program, Opcode::kPushSym, nilConst);

  for (const auto& [site, labelName] : gotos) {
    const auto label =
        std::ranges::find_if(labels, [&](const Label& candidate) {
          return candidate.name == labelName;
        });
    if (label == labels.end()) {
      error("go to undefined label '" + symbols_.name(labelName) + "'");
    }
    program.code[site].operand = static_cast<std::int32_t>(label->target);
  }
}

}  // namespace small::vm
