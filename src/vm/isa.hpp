// The SMALL stack-machine instruction set (§4.3.4, Figs 4.14/4.15).
//
// "Code was generated for a stack machine with the list manipulating
//  functionality of SMALL. The instruction set included instructions for
//  function call and return, adding a new binding to the environment,
//  looking up the current value bound to a name and pushing it on top of
//  the stack, pushing immediate values onto the stack, input and output,
//  list manipulating operations, arithmetic and logical operations,
//  unconditional branching, and conditional branching based on predicate
//  testing of the current value on top of the stack."
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sexpr/arena.hpp"

namespace small::vm {

enum class Opcode : std::uint8_t {
  // Environment / stack
  kBindN,     ///< BINDN name: pop TOS, bind it to `sym` in current frame
  kPushStk,   ///< PUSHSTK k: push value of argument k (1-based) of frame
  kPushVar,   ///< push current binding of `sym` (locals / non-locals)
  kPushSym,   ///< PUSHSYM: push constant (constant-pool index in operand)
  kSetq,      ///< SETQ: assign TOS (kept on stack) to `sym`
  kPop,       ///< discard TOS

  // Control
  kFCall,     ///< FCALL f: call the function named `sym`
  kFRetn,     ///< FRETN: return with TOS as the value
  kJump,      ///< unconditional branch to operand
  kBranchNil, ///< pop TOS; branch to operand when it is nil

  // Predicates (pop operands, push t/nil)
  kNullP,
  kAtomP,
  kEqualP,    ///< pops two
  kGreaterP,  ///< pops two
  kLessP,

  // Branching comparison used by the thesis' factorial listing
  kNEqualP,   ///< NEQUALP label: pop two; branch when unequal

  // Arithmetic (pop two, push result; TOS is the right operand)
  kAddOp,
  kSubOp,
  kMulOp,
  kDivOp,

  // Logic
  kNotOp,

  // Lists
  kCarOp,
  kCdrOp,
  kConsOp,    ///< pops (tail, head) pushes cons
  kRplacaOp,  ///< pops (value, target) pushes target
  kRplacdOp,

  // I/O
  kRdList,    ///< RDLIST: read one s-expression, push it
  kWrList,    ///< WRLIST: pop TOS and write it

  kHalt,
};

/// Number of opcodes (kHalt is last); sizes per-opcode dispatch tallies.
inline constexpr std::size_t kOpcodeCount =
    static_cast<std::size_t>(Opcode::kHalt) + 1;

/// Assembly mnemonic ("BINDN", "FCALL", ...), also the obs metric suffix
/// under "vm.op.".
const char* opcodeName(Opcode op);

struct Instruction {
  Opcode op = Opcode::kHalt;
  std::int32_t operand = 0;        ///< branch target / arg index / pool index
  sexpr::SymbolId sym = 0;         ///< name operand where applicable
};

/// A compiled program: flat code, a constant pool, and function metadata.
struct Program {
  struct Function {
    std::string name;
    std::uint32_t entry = 0;  ///< code index
    std::uint8_t argCount = 0;
  };

  std::vector<Instruction> code;
  std::vector<sexpr::NodeRef> constants;
  std::vector<Function> functions;
  std::uint32_t start = 0;  ///< entry point of the top-level form

  const Function* findFunction(std::string_view name) const;
};

/// Symbolic disassembly for the compiler-demo example (Fig 4.14 style).
std::string disassemble(const Program& program, const sexpr::Arena& arena,
                        const sexpr::SymbolTable& symbols);

}  // namespace small::vm
