#include "gc/script.hpp"

#include <algorithm>

#include "obs/names.hpp"
#include "obs/snapshot.hpp"
#include "support/rng.hpp"

namespace small::gc {

using heap::HeapWord;

std::uint64_t Script::allocationBound() const {
  std::uint64_t cells = 0;
  for (const ScriptOp& op : ops) {
    if (op.kind == ScriptOp::Kind::kNewList) cells += op.length;
    if (op.kind == ScriptOp::Kind::kCons) ++cells;
  }
  return cells;
}

Script scriptFromTrace(const trace::PreprocessedTrace& trace,
                       const ScriptOptions& options, std::uint64_t seed) {
  Script script;
  script.name = trace.name;
  script.slots = options.slots;
  support::Rng rng(seed);
  const auto slot = [&] {
    return static_cast<std::uint16_t>(rng.below(options.slots));
  };
  std::uint64_t consed = 0;

  for (const trace::PreprocessedEvent& event : trace.events) {
    if (options.maxOps != 0 && script.ops.size() >= options.maxOps) break;
    ScriptOp op;
    switch (event.kind) {
      case trace::EventKind::kFunctionEnter:
        // Binding arguments: the callee sees values the caller holds.
        op.kind = ScriptOp::Kind::kCopy;
        op.dst = slot();
        op.a = slot();
        break;
      case trace::EventKind::kFunctionExit:
        // Frame teardown drops a binding — the main garbage faucet.
        op.kind = ScriptOp::Kind::kClear;
        op.dst = slot();
        break;
      case trace::EventKind::kPrimitive:
        switch (event.primitive) {
          case trace::Primitive::kRead: {
            const std::uint32_t shape =
                event.result.n != 0
                    ? event.result.n
                    : (event.args.empty() ? 1 : event.args[0].n);
            op.kind = ScriptOp::Kind::kNewList;
            op.dst = slot();
            op.length = static_cast<std::uint16_t>(
                std::clamp<std::uint32_t>(shape, 1, options.maxSpine));
            op.share = event.result.p > 0 ? 3 : 0;
            if (consed + op.length > options.cellBudget) {
              // Over budget: keep the access pressure, skip the growth.
              op = ScriptOp{ScriptOp::Kind::kCdr, slot(), slot(), 0, 0, 0};
            } else {
              consed += op.length;
            }
            break;
          }
          case trace::Primitive::kCar:
            op.kind = ScriptOp::Kind::kCar;
            op.dst = slot();
            op.a = slot();
            break;
          case trace::Primitive::kCdr:
            op.kind = ScriptOp::Kind::kCdr;
            op.dst = slot();
            op.a = slot();
            break;
          case trace::Primitive::kCons:
          case trace::Primitive::kAppend:
            op.kind = ScriptOp::Kind::kCons;
            op.dst = slot();
            op.a = slot();
            op.b = slot();
            if (consed + 1 > options.cellBudget) {
              op.kind = ScriptOp::Kind::kCopy;
            } else {
              ++consed;
            }
            break;
          case trace::Primitive::kRplaca:
            op.kind = ScriptOp::Kind::kSetCar;
            op.a = slot();
            op.b = slot();
            break;
          case trace::Primitive::kRplacd:
            op.kind = ScriptOp::Kind::kSetCdr;
            op.a = slot();
            op.b = slot();
            break;
          case trace::Primitive::kAtom:
          case trace::Primitive::kNull:
          case trace::Primitive::kEqual:
            // Predicates keep or drop the tested value.
            if (rng.chance(0.5)) {
              op.kind = ScriptOp::Kind::kCopy;
              op.dst = slot();
              op.a = slot();
            } else {
              op.kind = ScriptOp::Kind::kClear;
              op.dst = slot();
            }
            break;
          case trace::Primitive::kWrite:
            // writelist releases the EP's value once materialized.
            op.kind = ScriptOp::Kind::kClear;
            op.dst = slot();
            break;
        }
        break;
    }
    script.ops.push_back(op);
  }
  return script;
}

ScriptResult runScript(Collector& collector, const Script& script) {
  return runScript(collector, script, nullptr, 0);
}

ScriptResult runScript(Collector& collector, const Script& script,
                       obs::TelemetryBuffer* telemetry,
                       std::uint64_t sampleEvery) {
  using CellRef = Collector::CellRef;
  collector.resizeRoots(script.slots);
  const auto rootWordOr = [&](std::uint16_t slot, HeapWord fallback) {
    const CellRef cell = collector.root(slot);
    return cell == Collector::kNull ? fallback : HeapWord::pointer(cell);
  };

  ScriptResult result;
  // The op index is the deterministic epoch clock; the final collection
  // lands at epoch ops.size(), strictly after every in-run safepoint.
  obs::Snapshotter snap(telemetry, sampleEvery);
  snap.watchValue(obs::names::kGcLiveCells, [&collector] {
    return static_cast<double>(collector.liveCells());
  });
  const auto collectNow = [&](std::uint64_t epoch, bool full) {
    const std::uint64_t before = collector.stats().totalPause;
    if (full) {
      collector.collectFull();
    } else {
      collector.collect();
    }
    const std::uint64_t pause = collector.stats().totalPause - before;
    if (telemetry != nullptr && telemetry->enabled()) {
      telemetry->sample(obs::names::kGcPause, epoch,
                        static_cast<double>(pause));
    }
  };

  std::uint64_t epoch = 0;
  for (const ScriptOp& op : script.ops) {
    if (collector.shouldCollect()) collectNow(epoch, /*full=*/false);
    snap.advanceTo(epoch);
    ++epoch;
    switch (op.kind) {
      case ScriptOp::Kind::kNewList: {
        CellRef spine = Collector::kNull;
        for (std::uint16_t k = 0; k < op.length; ++k) {
          const HeapWord cdrWord = spine == Collector::kNull
                                       ? HeapWord::nil()
                                       : HeapWord::pointer(spine);
          const bool shared = op.share > 0 && k > 0 && k % op.share == 0;
          const HeapWord carWord =
              shared ? HeapWord::pointer(spine) : HeapWord::symbol(k % 7);
          spine = collector.cons(carWord, cdrWord);
        }
        collector.setRoot(op.dst, spine);
        break;
      }
      case ScriptOp::Kind::kCar:
      case ScriptOp::Kind::kCdr: {
        const CellRef cell = collector.root(op.a);
        CellRef target = Collector::kNull;
        if (cell != Collector::kNull) {
          const HeapWord word = op.kind == ScriptOp::Kind::kCar
                                    ? collector.car(cell)
                                    : collector.cdr(cell);
          if (word.isPointer()) target = word.payload;
        }
        collector.setRoot(op.dst, target);
        break;
      }
      case ScriptOp::Kind::kCons:
        collector.setRoot(op.dst,
                          collector.cons(rootWordOr(op.a, HeapWord::symbol(1)),
                                         rootWordOr(op.b, HeapWord::nil())));
        break;
      case ScriptOp::Kind::kSetCar: {
        const CellRef cell = collector.root(op.a);
        if (cell != Collector::kNull) {
          collector.setCar(cell, rootWordOr(op.b, HeapWord::symbol(2)));
        }
        break;
      }
      case ScriptOp::Kind::kSetCdr: {
        const CellRef cell = collector.root(op.a);
        if (cell != Collector::kNull) {
          collector.setCdr(cell, rootWordOr(op.b, HeapWord::nil()));
        }
        break;
      }
      case ScriptOp::Kind::kCopy:
        collector.setRoot(op.dst, collector.root(op.a));
        break;
      case ScriptOp::Kind::kClear:
        collector.setRoot(op.dst, Collector::kNull);
        break;
    }
  }
  // Final collection is a FULL one: the generational collector forces a
  // major cycle and the incremental collector finishes any in-flight
  // cycle and runs a fresh complete one, so finalLiveCells is the exact
  // root-reachable set for every policy (the differential contract).
  collectNow(epoch, /*full=*/true);
  snap.finish(epoch);

  result.collectorName = collector.name();
  result.finalLiveCells = collector.liveCells();
  result.rootReachable = collector.rootReachability();
  result.stats = collector.stats();
  // One histogram entry per collect() slice (not per safepoint), so an
  // incremental run's distribution is its bounded per-slice pauses.
  result.pauseTouchUnits = collector.pauses();
  return result;
}

}  // namespace small::gc
