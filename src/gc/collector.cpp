#include "gc/collector.hpp"

#include <unordered_set>

#include "support/error.hpp"

namespace small::gc {

const char* policyName(Policy policy) {
  switch (policy) {
    case Policy::kNone:
      return "refcount";
    case Policy::kMarkSweep:
      return "mark-sweep";
    case Policy::kSemispace:
      return "semispace";
    case Policy::kDeferredRc:
      return "deferred-rc";
    case Policy::kGenerational:
      return "generational";
    case Policy::kIncremental:
      return "incremental";
  }
  return "unknown";
}

std::uint64_t Collector::reachableFrom(CellRef cell) const {
  if (cell == kNull) return 0;
  // The fingerprint walk is read-only; restoring the stats snapshot keeps
  // reported backend activity identical whether or not it was taken.
  const heap::HeapStats statsBefore = heap_.stats();
  std::unordered_set<CellRef> seen;
  std::vector<CellRef> work{cell};
  seen.insert(cell);
  while (!work.empty()) {
    const CellRef current = work.back();
    work.pop_back();
    for (const heap::HeapWord word :
         {heap_.car(current), heap_.cdr(current)}) {
      if (word.isPointer() && seen.insert(word.payload).second) {
        work.push_back(word.payload);
      }
    }
  }
  heap_.restoreStats(statsBefore);
  return seen.size();
}

std::vector<std::uint64_t> Collector::rootReachability() const {
  std::vector<std::uint64_t> counts;
  counts.reserve(roots_.size());
  for (const CellRef root : roots_) counts.push_back(reachableFrom(root));
  return counts;
}

std::unique_ptr<Collector> makeCollector(Policy policy,
                                         heap::HeapBackend& heap,
                                         const Collector::Options& options) {
  switch (policy) {
    case Policy::kMarkSweep:
      return makeMarkSweepCollector(heap, options);
    case Policy::kSemispace:
      return makeSemispaceCollector(heap, options);
    case Policy::kDeferredRc:
      return makeDeferredRcCollector(heap, options);
    case Policy::kGenerational:
      return makeGenerationalCollector(heap, options);
    case Policy::kIncremental:
      return makeIncrementalCollector(heap, options);
    case Policy::kNone:
      break;
  }
  throw support::Error("makeCollector: policy has no collector");
}

}  // namespace small::gc
