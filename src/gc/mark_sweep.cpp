// Stop-the-world mark-sweep over the collector's cell registry. Marking
// traces from the root slots through the backend's virtual car/cdr (so
// each representation pays its own touch profile); the sweep walks the
// registry in insertion order and frees unmarked cells, which keeps the
// surviving registry order — and therefore every downstream report —
// deterministic.
#include <unordered_set>

#include "gc/collector.hpp"

namespace small::gc {
namespace {

class MarkSweepCollector final : public Collector {
 public:
  using Collector::Collector;

  const char* name() const override { return "mark-sweep"; }

 protected:
  std::uint64_t doCollect() override {
    // Mark: worklist reachability from the root slots. Each mark-table
    // insert and lookup is one metadata touch.
    std::unordered_set<CellRef> marked;
    std::vector<CellRef> work;
    for (const CellRef root : roots_) {
      if (root == kNull) continue;
      ++stats_.tableTouches;
      if (marked.insert(root).second) work.push_back(root);
    }
    while (!work.empty()) {
      const CellRef cell = work.back();
      work.pop_back();
      ++stats_.cellsTraced;
      for (const heap::HeapWord word : {heap_.car(cell), heap_.cdr(cell)}) {
        if (!word.isPointer()) continue;
        ++stats_.tableTouches;
        if (marked.insert(word.payload).second) work.push_back(word.payload);
      }
    }

    // Sweep: free unmarked registry cells, compacting the registry in
    // place so survivors keep their insertion order.
    std::uint64_t reclaimed = 0;
    std::size_t out = 0;
    for (const CellRef cell : cells_) {
      ++stats_.tableTouches;
      if (marked.count(cell) != 0) {
        cells_[out++] = cell;
      } else {
        heap_.free(cell);
        ++reclaimed;
      }
    }
    cells_.resize(out);
    return reclaimed;
  }
};

}  // namespace

std::unique_ptr<Collector> makeMarkSweepCollector(
    heap::HeapBackend& heap, const Collector::Options& options) {
  return std::make_unique<MarkSweepCollector>(heap, options);
}

}  // namespace small::gc
