// The pluggable garbage-collection subsystem: shared policy and statistics
// vocabulary.
//
// The paper's memory-management claim (§4.3.2) is comparative: the LP's
// reference counting with lazy child decrements — backed by the §4.3.2.3
// mark/sweep cycle recovery — against conventional collectors. This
// subsystem supplies the "conventional" side of that comparison as three
// collectors driven over any heap::HeapBackend (gc/collector.hpp), a
// deterministic trace-driven mutator to exercise them (gc/script.hpp), and
// the Policy/GcStats vocabulary the SMALL machine's Config uses to select
// a reclamation discipline (small/machine.hpp).
//
// Costs are reported in *simulated heap-touch units*: every backend read
// or write the collector causes, plus every access to collector-side
// metadata (mark tables, forwarding tables, the zero-count table). A
// collection's pause is the touch units spent inside that collection, so
// pause distributions are comparable across collectors, backends and the
// refcounting baseline without any wall-clock noise.
#pragma once

#include <cstdint>

namespace small::gc {

/// Reclamation discipline. kNone leaves reclamation to the owner's
/// reference counting (the SMALL machine's eager frees); the other values
/// select a collector.
enum class Policy : std::uint8_t {
  kNone,          ///< refcount-driven eager frees (the LP baseline)
  kMarkSweep,     ///< stop-the-world mark-sweep
  kSemispace,     ///< semispace copying with address forwarding
  kDeferredRc,    ///< deferred reference counting with a bounded ZCT
  kGenerational,  ///< nursery + remembered set, periodic full collections
  kIncremental,   ///< tri-color SATB mark-sweep in bounded pause slices
};

const char* policyName(Policy policy);

/// The five collector policies (kNone is the baseline, not a collector).
/// The new entries append so existing report/golden row order is stable.
inline constexpr Policy kAllCollectorPolicies[] = {
    Policy::kMarkSweep, Policy::kSemispace, Policy::kDeferredRc,
    Policy::kGenerational, Policy::kIncremental};

/// Collection and cost counters, maintained by every collector (and by the
/// SMALL machine's scavenger). Pauses are in simulated heap-touch cost
/// units: backend touches plus collector-metadata touches.
struct GcStats {
  std::uint64_t collections = 0;     ///< collection cycles run
  std::uint64_t cellsReclaimed = 0;  ///< garbage cells reclaimed
  std::uint64_t cellsTraced = 0;     ///< live cells marked/copied/examined
  std::uint64_t heapTouches = 0;     ///< backend reads+writes while collecting
  std::uint64_t tableTouches = 0;    ///< mark/forward/ZCT metadata accesses
  std::uint64_t barrierOps = 0;      ///< mutator-side write-barrier work
  std::uint64_t deferredDecrements = 0;  ///< child decs deferred to collection
  std::uint64_t zctOverflows = 0;    ///< bounded ZCT forced a collection
  std::uint64_t zctHighWater = 0;    ///< max zero-count-table occupancy
  std::uint64_t maxPause = 0;        ///< costliest single collection
  std::uint64_t totalPause = 0;      ///< sum of per-collection pauses
  std::uint64_t minorCollections = 0;  ///< generational: nursery-only cycles
  std::uint64_t cellsPromoted = 0;     ///< generational: nursery survivors
  std::uint64_t fullCycles = 0;  ///< incremental: completed mark-sweep cycles
                                 ///< (collections counts bounded slices)
};

}  // namespace small::gc
