// The Collector interface: a cell-level mutator API plus root slots in,
// reclaimed cells and GcStats out, parametric over heap::HeapBackend.
//
// A collector owns a registry of the logical cons cells the mutator has
// allocated through it (the backend has no global enumeration — physical
// layout is each representation's business), a fixed file of root slots
// (the EP's registers in this model), and the collection machinery. All
// heap structure flows through the virtual backend interface, so each
// collector pays the representation's genuine touch profile: a cdr-coded
// sweep pays invisible-pointer hops, a linked-vector trace pays boundary
// indirections, two-pointer pays a pointer chase per edge.
//
// Discipline contract with the mutator:
//   * every pointer word stored into the heap references a cell allocated
//     through cons() (the registry is closed under tracing);
//   * collections happen only at safepoints: the mutator polls
//     shouldCollect() between operations and calls collect() — cons() and
//     the write barriers never collect, so unrooted intermediates are safe
//     while one logical operation is in flight;
//   * the semispace collector MOVES cells: after collect(), previously
//     held CellRefs are invalid and roots must be re-read from the slots
//     (which every collector rewrites as needed).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "gc/gc.hpp"
#include "heap/backend.hpp"
#include "obs/names.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "support/stats.hpp"

namespace small::gc {

class Collector {
 public:
  using CellRef = heap::HeapBackend::CellRef;
  static constexpr CellRef kNull = heap::HeapBackend::kNull;

  struct Options {
    /// Collect when the live registry reaches this size (and at least a
    /// quarter of it was allocated since the last collection, so a large
    /// stable live set does not thrash). Clamped to >= 4 at construction:
    /// 0 would fire at every safepoint and anything below 4 zeroes the
    /// quarter-growth thrash guard through integer division.
    std::uint64_t triggerLiveCells = 4096;
    /// Deferred-RC only: zero-count-table bound; exceeding it forces a
    /// collection at the next safepoint.
    std::size_t zctLimit = 64;
    /// Deferred-RC only: run the §4.3.2.3-style mark/sweep cycle-recovery
    /// backstop as part of every collection (what makes the final live set
    /// agree with the tracing collectors and Lpt::recoverCycles).
    bool cycleRecovery = true;
    /// Generational only: nursery bound that arms a minor collection.
    /// 0 derives triggerLiveCells / 4.
    std::uint64_t nurseryCells = 0;
    /// Incremental only: touch-unit budget of one collect() slice (the
    /// bounded safepoint pause).
    std::uint64_t stepBudget = 2048;
  };

  Collector(heap::HeapBackend& heap, Options options)
      : heap_(heap), options_(options) {
    if (options_.triggerLiveCells < 4) options_.triggerLiveCells = 4;
  }
  virtual ~Collector() = default;

  Collector(const Collector&) = delete;
  Collector& operator=(const Collector&) = delete;

  virtual const char* name() const = 0;

  // --- mutator interface ---

  /// Allocate one cons cell and register it with the collector. Never
  /// collects (safepoints are the mutator's job).
  CellRef cons(heap::HeapWord car, heap::HeapWord cdr) {
    const CellRef cell = heap_.allocate(car, cdr);
    cells_.push_back(cell);
    ++allocsSinceCollect_;
    onAllocate(cell, car, cdr);
    return cell;
  }

  heap::HeapWord car(CellRef cell) const { return heap_.car(cell); }
  heap::HeapWord cdr(CellRef cell) const { return heap_.cdr(cell); }

  /// Field writes, routed through the collector so barrier-based policies
  /// see them (deferred RC counts child references here).
  virtual void setCar(CellRef cell, heap::HeapWord value) {
    heap_.setCar(cell, value);
  }
  virtual void setCdr(CellRef cell, heap::HeapWord value) {
    heap_.setCdr(cell, value);
  }

  // --- roots ---

  void resizeRoots(std::size_t slots) { roots_.resize(slots, kNull); }
  std::size_t rootCount() const { return roots_.size(); }
  CellRef root(std::size_t slot) const { return roots_.at(slot); }
  void setRoot(std::size_t slot, CellRef cell) { roots_.at(slot) = cell; }

  // --- collection ---

  /// Should the mutator pause for a collection at this safepoint?
  /// (Virtual: the generational collector adds a nursery bound, the
  /// incremental collector stays true while a cycle is in flight.)
  virtual bool shouldCollect() const {
    if (pendingCollect_) return true;
    return cells_.size() >= options_.triggerLiveCells &&
           allocsSinceCollect_ * 4 >= options_.triggerLiveCells;
  }

  /// Attach observability (may be null to detach): each collection adds
  /// its pause to `registry`'s gc.pause.touch_units histogram and records
  /// a per-cycle "gc.collect" span into `sink`. Detached (the default),
  /// collect() pays nothing beyond two pointer tests.
  void attachObs(obs::Registry* registry, obs::TraceSink* sink) {
    obsRegistry_ = registry;
    obsSink_ = sink;
  }

  /// Run one collection; returns cells reclaimed. Updates the pause
  /// distribution from the heap-touch and metadata-touch deltas.
  std::uint64_t collect() {
    const std::uint64_t heapBefore = heap_.stats().touches();
    const std::uint64_t tableBefore = stats_.tableTouches;
    const std::uint64_t startUs =
        obsSink_ != nullptr ? obs::wallMicrosNow() : 0;
    const std::uint64_t reclaimed = doCollect();
    const std::uint64_t heapCost = heap_.stats().touches() - heapBefore;
    const std::uint64_t pause =
        heapCost + (stats_.tableTouches - tableBefore);
    ++stats_.collections;
    stats_.cellsReclaimed += reclaimed;
    stats_.heapTouches += heapCost;
    stats_.totalPause += pause;
    if (pause > stats_.maxPause) stats_.maxPause = pause;
    if (obsRegistry_ != nullptr) {
      obsRegistry_->histogram(obs::names::kGcPauseHistogram)
          .add(static_cast<std::int64_t>(pause));
    }
    if (obsSink_ != nullptr) {
      obs::TraceEvent event;
      event.name = name();
      event.category = "gc";
      event.tid = obsSink_->tid();
      event.startUs = startUs;
      event.durUs = obs::wallMicrosNow() - startUs;
      event.costUnits = pause;
      event.depth = obsSink_->depth();
      obsSink_->record(std::move(event));
    }
    pendingCollect_ = false;
    allocsSinceCollect_ = 0;
    pauseSlices_.add(static_cast<std::int64_t>(pause));
    return reclaimed;
  }

  /// Collect until the live set is exactly the root-reachable set. For
  /// the stop-the-world collectors this is one collect(); the generational
  /// collector forces a major collection, the incremental one drives a
  /// complete fresh cycle in bounded slices (each slice still lands in
  /// pauses() individually).
  virtual std::uint64_t collectFull() { return collect(); }

  /// One bounded collection step of at most `budgetTouches` touch units;
  /// returns true when no cycle remains in flight. Collectors without
  /// incremental machinery run a full collection (their pauses are
  /// indivisible — that is exactly the comparison).
  virtual bool collectStep(std::uint64_t budgetTouches) {
    (void)budgetTouches;
    collect();
    return true;
  }

  // --- introspection ---

  /// Logical cells currently registered (live set after a full collect).
  std::uint64_t liveCells() const { return cells_.size(); }

  const GcStats& stats() const { return stats_; }
  const heap::HeapBackend& heap() const { return heap_; }

  /// Every collect() call's pause in touch units — one histogram entry
  /// per safepoint pause, so an incremental run's distribution is its
  /// per-slice pauses rather than whole-cycle sums.
  const support::Histogram& pauses() const { return pauseSlices_; }

  /// Cells reachable from `cell` through stored pointer words. Walks the
  /// backend's virtual car/cdr but restores the backend's stats block
  /// afterwards, so taking the fingerprint never perturbs reported
  /// HeapStats or pause figures.
  std::uint64_t reachableFrom(CellRef cell) const;

  /// reachableFrom for every root slot, in slot order (the live-set
  /// fingerprint the differential tests compare against the LPT).
  std::vector<std::uint64_t> rootReachability() const;

 protected:
  /// Policy hook: a fresh cell was registered (deferred RC counts the
  /// child references and enters the cell into the ZCT here).
  virtual void onAllocate(CellRef cell, heap::HeapWord car,
                          heap::HeapWord cdr) {
    (void)cell;
    (void)car;
    (void)cdr;
  }

  /// Policy body of collect(); returns cells reclaimed.
  virtual std::uint64_t doCollect() = 0;

  heap::HeapBackend& heap_;
  Options options_;
  std::vector<CellRef> cells_;  ///< registry, insertion-ordered
  std::vector<CellRef> roots_;  ///< root slots (kNull = empty)
  GcStats stats_;
  obs::Registry* obsRegistry_ = nullptr;
  obs::TraceSink* obsSink_ = nullptr;
  bool pendingCollect_ = false;
  std::uint64_t allocsSinceCollect_ = 0;
  support::Histogram pauseSlices_;
};

std::unique_ptr<Collector> makeMarkSweepCollector(
    heap::HeapBackend& heap, const Collector::Options& options);
std::unique_ptr<Collector> makeSemispaceCollector(
    heap::HeapBackend& heap, const Collector::Options& options);
std::unique_ptr<Collector> makeDeferredRcCollector(
    heap::HeapBackend& heap, const Collector::Options& options);
std::unique_ptr<Collector> makeGenerationalCollector(
    heap::HeapBackend& heap, const Collector::Options& options);
std::unique_ptr<Collector> makeIncrementalCollector(
    heap::HeapBackend& heap, const Collector::Options& options);

/// Factory over the collector policies (kNone is not a collector).
std::unique_ptr<Collector> makeCollector(Policy policy,
                                         heap::HeapBackend& heap,
                                         const Collector::Options& options);

}  // namespace small::gc
