// Deferred reference counting with a bounded zero-count table, mirroring
// the LPT's lazy-decrement discipline (§4.3.2.1) at the cell level. The
// write barrier keeps per-cell counts for heap-internal references only —
// root slots are uncounted, which is what makes the counting cheap and the
// ZCT necessary: a cell whose count reaches zero is merely *suspect*, and
// judgment is deferred to the next collection, where suspects still
// unreferenced and unrooted are freed and their child decrements performed
// (recursively, through the same table). When the ZCT outgrows its bound,
// a collection is forced at the next safepoint — the cell-level analog of
// the LPT's bounded free-queue flow control (§4.3.3.1).
//
// Pure counting never reclaims cycles; the optional backstop
// (Options::cycleRecovery, on by default) runs a mark from the roots and
// frees unmarked cells after settling their edges into survivors — the
// same discipline as Lpt::recoverCycles, and what makes this collector's
// final live set agree with the tracing collectors.
#include <unordered_map>
#include <unordered_set>

#include "gc/collector.hpp"

namespace small::gc {
namespace {

class DeferredRcCollector final : public Collector {
 public:
  using Collector::Collector;

  const char* name() const override { return "deferred-rc"; }

  void setCar(CellRef cell, heap::HeapWord value) override {
    const heap::HeapWord old = heap_.car(cell);
    heap_.setCar(cell, value);
    barrier(value, old);
  }

  void setCdr(CellRef cell, heap::HeapWord value) override {
    const heap::HeapWord old = heap_.cdr(cell);
    heap_.setCdr(cell, value);
    barrier(value, old);
  }

 protected:
  void onAllocate(CellRef cell, heap::HeapWord car,
                  heap::HeapWord cdr) override {
    ++stats_.tableTouches;
    meta_.emplace(cell, Meta{0, true});
    zct_.push_back(cell);
    noteZctGrowth();
    if (car.isPointer()) incRef(car.payload);
    if (cdr.isPointer()) incRef(cdr.payload);
  }

  std::uint64_t doCollect() override {
    std::unordered_set<CellRef> rooted;
    for (const CellRef root : roots_) {
      if (root == kNull) continue;
      ++stats_.tableTouches;
      rooted.insert(root);
    }

    // Reconciliation: drain the ZCT as a queue. A suspect with a nonzero
    // count was resurrected by a later store; a rooted suspect stays (its
    // zero count is legitimate — roots are uncounted). The rest are
    // garbage: free them and perform the deferred child decrements, which
    // can push fresh suspects onto the queue.
    std::unordered_set<CellRef> dead;
    for (std::size_t next = 0; next < zct_.size(); ++next) {
      const CellRef cell = zct_[next];
      ++stats_.tableTouches;
      ++stats_.cellsTraced;
      Meta& meta = meta_.at(cell);
      if (meta.rc > 0) {
        meta.inZct = false;
        continue;
      }
      if (rooted.count(cell) != 0) continue;
      const heap::HeapWord carWord = heap_.car(cell);
      const heap::HeapWord cdrWord = heap_.cdr(cell);
      heap_.free(cell);
      dead.insert(cell);
      for (const heap::HeapWord word : {carWord, cdrWord}) {
        if (!word.isPointer()) continue;
        ++stats_.deferredDecrements;
        derefChild(word.payload);
      }
    }

    // Cycle-recovery backstop: counting cannot free cyclic garbage (its
    // members keep each other's counts positive). Mark from the roots;
    // unmarked survivors are cyclic garbage — settle their edges into
    // marked cells, then free them.
    if (options_.cycleRecovery) {
      std::unordered_set<CellRef> marked;
      std::vector<CellRef> work;
      for (const CellRef root : roots_) {
        if (root == kNull) continue;
        ++stats_.tableTouches;
        if (marked.insert(root).second) work.push_back(root);
      }
      while (!work.empty()) {
        const CellRef cell = work.back();
        work.pop_back();
        ++stats_.cellsTraced;
        for (const heap::HeapWord word : {heap_.car(cell), heap_.cdr(cell)}) {
          if (!word.isPointer()) continue;
          ++stats_.tableTouches;
          if (marked.insert(word.payload).second) work.push_back(word.payload);
        }
      }
      for (const CellRef cell : cells_) {
        ++stats_.tableTouches;
        if (dead.count(cell) != 0 || marked.count(cell) != 0) continue;
        const heap::HeapWord carWord = heap_.car(cell);
        const heap::HeapWord cdrWord = heap_.cdr(cell);
        for (const heap::HeapWord word : {carWord, cdrWord}) {
          if (!word.isPointer() || marked.count(word.payload) == 0) continue;
          ++stats_.deferredDecrements;
          derefChild(word.payload);
        }
        heap_.free(cell);
        dead.insert(cell);
      }
    }

    // Rebuild the registry and the ZCT in registry order, so the table's
    // contents are deterministic regardless of drain interleaving.
    std::size_t out = 0;
    std::vector<CellRef> survivors;
    for (const CellRef cell : cells_) {
      ++stats_.tableTouches;
      if (dead.count(cell) != 0) {
        meta_.erase(cell);
        continue;
      }
      cells_[out++] = cell;
      Meta& meta = meta_.at(cell);
      meta.inZct = meta.rc == 0;
      if (meta.inZct) survivors.push_back(cell);
    }
    cells_.resize(out);
    zct_ = std::move(survivors);
    if (zct_.size() > stats_.zctHighWater) stats_.zctHighWater = zct_.size();
    return dead.size();
  }

 private:
  struct Meta {
    std::uint32_t rc = 0;
    bool inZct = false;
  };

  void noteZctGrowth() {
    if (zct_.size() > stats_.zctHighWater) stats_.zctHighWater = zct_.size();
    if (!pendingCollect_ && zct_.size() > options_.zctLimit) {
      pendingCollect_ = true;
      ++stats_.zctOverflows;
    }
  }

  /// Mutator-side write barrier: count the new reference before
  /// discounting the old one (the order that keeps self-stores safe).
  void barrier(heap::HeapWord added, heap::HeapWord removed) {
    if (added.isPointer()) incRef(added.payload);
    if (removed.isPointer()) decRef(removed.payload);
  }

  void incRef(CellRef cell) {
    ++stats_.barrierOps;
    ++stats_.tableTouches;
    ++meta_.at(cell).rc;
  }

  void decRef(CellRef cell) {
    ++stats_.barrierOps;
    ++stats_.tableTouches;
    Meta& meta = meta_.at(cell);
    --meta.rc;
    if (meta.rc == 0 && !meta.inZct) {
      meta.inZct = true;
      zct_.push_back(cell);
      noteZctGrowth();
    }
  }

  /// Collection-side decrement (deferred work, not mutator barrier cost).
  void derefChild(CellRef cell) {
    ++stats_.tableTouches;
    Meta& meta = meta_.at(cell);
    --meta.rc;
    if (meta.rc == 0 && !meta.inZct) {
      meta.inZct = true;
      zct_.push_back(cell);
    }
  }

  std::unordered_map<CellRef, Meta> meta_;
  std::vector<CellRef> zct_;  ///< suspects, in discovery order
};

}  // namespace

std::unique_ptr<Collector> makeDeferredRcCollector(
    heap::HeapBackend& heap, const Collector::Options& options) {
  return std::make_unique<DeferredRcCollector>(heap, options);
}

}  // namespace small::gc
