// Incremental mark-sweep: tri-color marking spread across bounded
// safepoint slices, with a snapshot-at-the-beginning (SATB) write
// barrier. Each collect() call runs ONE slice of at most stepBudget (or
// the collectStep budget) touch units, so every entry in the pause
// distribution is a bounded slice rather than a whole-cycle pause —
// exactly the comparison against the stop-the-world collectors.
//
// Tri-color invariant (SATB form): every cell reachable at the moment a
// cycle begins, plus every cell allocated while the cycle is in flight,
// survives that cycle. White = not in marked_, gray = in marked_ and on
// the gray_ worklist, black = in marked_ and traced. Two mutator hooks
// maintain it between slices:
//   * setCar/setCdr shade the OVERWRITTEN pointer during marking — the
//     snapshot-reachable target stays reachable through the mark table
//     even if this store severed its last heap path;
//   * onAllocate marks new cells black-on-arrival (during the sweep too,
//     so a reused CellRef ahead of the sweep cursor is not freed).
// Dead-at-snapshot-start cells a store resurrects into a black cell are
// impossible: the mutator can only store pointers it read from live
// structure, and SATB keeps that structure marked. The cost is floating
// garbage — cells dying mid-cycle survive until the next cycle — which
// is why collectFull() finishes the in-flight cycle and then runs one
// more complete cycle while the mutator is quiescent: that fresh cycle's
// live set is exactly the root-reachable set, preserving the bit-equal
// contract the differential tests demand.
#include <unordered_set>

#include "gc/collector.hpp"

namespace small::gc {
namespace {

class IncrementalCollector final : public Collector {
 public:
  using Collector::Collector;

  const char* name() const override { return "incremental"; }

  void setCar(CellRef cell, heap::HeapWord value) override {
    shade(heap_.car(cell));
    ++stats_.barrierOps;
    heap_.setCar(cell, value);
  }
  void setCdr(CellRef cell, heap::HeapWord value) override {
    shade(heap_.cdr(cell));
    ++stats_.barrierOps;
    heap_.setCdr(cell, value);
  }

  bool shouldCollect() const override {
    if (phase_ != Phase::kIdle) return true;  // finish the cycle in slices
    return Collector::shouldCollect();
  }

  std::uint64_t collectFull() override {
    std::uint64_t reclaimed = 0;
    while (phase_ != Phase::kIdle) reclaimed += collect();
    reclaimed += collect();  // start a fresh cycle while quiescent
    while (phase_ != Phase::kIdle) reclaimed += collect();
    return reclaimed;
  }

  bool collectStep(std::uint64_t budgetTouches) override {
    sliceBudget_ = budgetTouches;
    collect();
    sliceBudget_ = 0;
    return phase_ == Phase::kIdle;
  }

 protected:
  void onAllocate(CellRef cell, heap::HeapWord car,
                  heap::HeapWord cdr) override {
    (void)car;
    (void)cdr;
    if (phase_ == Phase::kIdle) return;
    // Allocate black: in-flight allocations survive the cycle. Marking
    // alone suffices in the sweep phase (the cell sits beyond the sweep
    // snapshot), but during marking the fresh cell also enters the gray
    // worklist so pointers stored at birth get traced.
    ++stats_.tableTouches;
    if (marked_.insert(cell).second && phase_ == Phase::kMark) {
      gray_.push_back(cell);
    }
  }

  std::uint64_t doCollect() override {
    const std::uint64_t budget =
        sliceBudget_ != 0 ? sliceBudget_ : options_.stepBudget;
    const std::uint64_t heapBefore = heap_.stats().touches();
    const std::uint64_t tableBefore = stats_.tableTouches;
    const auto overBudget = [&] {
      return budget != 0 &&
             (heap_.stats().touches() - heapBefore) +
                     (stats_.tableTouches - tableBefore) >=
                 budget;
    };

    if (phase_ == Phase::kIdle) {
      // Cycle start: snapshot the roots atomically (root scanning is not
      // incremental — the root file is a few registers, and an atomic
      // scan is what makes SATB's snapshot well-defined).
      for (const CellRef root : roots_) {
        if (root == kNull) continue;
        ++stats_.tableTouches;
        if (marked_.insert(root).second) gray_.push_back(root);
      }
      phase_ = Phase::kMark;
    }

    if (phase_ == Phase::kMark) {
      while (!gray_.empty() && !overBudget()) {
        const CellRef cell = gray_.back();
        gray_.pop_back();
        ++stats_.cellsTraced;
        for (const heap::HeapWord word :
             {heap_.car(cell), heap_.cdr(cell)}) {
          if (!word.isPointer()) continue;
          ++stats_.tableTouches;
          if (marked_.insert(word.payload).second) {
            gray_.push_back(word.payload);
          }
        }
      }
      if (!gray_.empty()) return 0;  // slice exhausted mid-mark
      // Marking complete: snapshot the registry extent to sweep. Cells
      // allocated after this point are beyond the snapshot and untouched.
      phase_ = Phase::kSweep;
      sweepLimit_ = cells_.size();
      sweepPos_ = 0;
      sweepOut_ = 0;
    }

    // Sweep: compact survivors of cells_[0, sweepLimit_) in place, a
    // bounded run of positions per slice.
    std::uint64_t reclaimed = 0;
    while (sweepPos_ < sweepLimit_ && !overBudget()) {
      const CellRef cell = cells_[sweepPos_++];
      ++stats_.tableTouches;
      if (marked_.count(cell) != 0) {
        cells_[sweepOut_++] = cell;
      } else {
        heap_.free(cell);
        ++reclaimed;
      }
    }
    if (sweepPos_ < sweepLimit_) return reclaimed;  // slice exhausted

    // Cycle complete: splice the swept gap out of the registry (cells
    // allocated mid-sweep follow the compacted survivors, keeping
    // insertion order) and whiten everything for the next cycle.
    cells_.erase(cells_.begin() + static_cast<std::ptrdiff_t>(sweepOut_),
                 cells_.begin() + static_cast<std::ptrdiff_t>(sweepLimit_));
    marked_.clear();
    gray_.clear();
    phase_ = Phase::kIdle;
    ++stats_.fullCycles;
    return reclaimed;
  }

 private:
  enum class Phase : std::uint8_t { kIdle, kMark, kSweep };

  /// SATB barrier: gray the about-to-be-overwritten pointer so the
  /// snapshot stays reachable through the mark table.
  void shade(heap::HeapWord old) {
    if (phase_ != Phase::kMark || !old.isPointer()) return;
    ++stats_.tableTouches;
    if (marked_.insert(old.payload).second) gray_.push_back(old.payload);
  }

  Phase phase_ = Phase::kIdle;
  std::unordered_set<CellRef> marked_;
  std::vector<CellRef> gray_;
  std::size_t sweepLimit_ = 0;  ///< registry extent snapshot at sweep entry
  std::size_t sweepPos_ = 0;
  std::size_t sweepOut_ = 0;
  std::uint64_t sliceBudget_ = 0;  ///< collectStep override, 0 = stepBudget
};

}  // namespace

std::unique_ptr<Collector> makeIncrementalCollector(
    heap::HeapBackend& heap, const Collector::Options& options) {
  return std::make_unique<IncrementalCollector>(heap, options);
}

}  // namespace small::gc
