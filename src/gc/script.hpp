// The deterministic trace-driven mutator for the collector comparison.
//
// A Script is a fixed sequence of slot-level list operations derived from
// a preprocessed access trace (§5.2.1) by scriptFromTrace: readlist events
// become list constructions sized by the traced (n, p) shape, car/cdr and
// rplaca/rplacd map directly, predicates and function entry/exit become
// root-slot copies and clears (the EP binding and dropping values). All
// randomness — slot choices, predicate coin flips — is spent at script
// *generation* time from the caller's seed; replaying a script is pure.
//
// The op semantics below are the shared contract: runScript drives them
// over a gc::Collector, and small/gc_baseline.* drives the same ops over
// the LPT's reference-counting discipline, building graphs isomorphic
// cell-for-entry. That is what entitles the differential tests and
// bench/gc_comparison to demand bit-equal final live sets:
//
//   newlist dst len share   build a len-cell spine tail-first; cell k
//                           (k = 0 at the tail) has cdr = previous cell
//                           (nil at the tail) and car = pointer to the
//                           previous cell when share > 0, k > 0 and
//                           k % share == 0 (traced p > 0 ⇒ shared
//                           substructure), else symbol(k mod 7); the head
//                           cell lands in root slot dst
//   car dst a / cdr dst a   dst = the cell the field points at, or empty
//                           when slot a is empty / the field is an atom
//   cons dst a b            fresh cell: car = slot a's cell (symbol(1)
//                           when empty), cdr = slot b's cell (nil when
//                           empty); lands in dst
//   setcar a b              when slot a is nonempty, car(a) = slot b's
//                           cell, or symbol(2) when b is empty
//   setcdr a b              when slot a is nonempty, cdr(a) = slot b's
//                           cell, or nil when b is empty (aiming a cdr
//                           back into reachable structure is what builds
//                           the cycles the recovery paths must reclaim)
//   copy dst a              dst = slot a
//   clear dst               empty slot dst
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gc/collector.hpp"
#include "obs/timeseries.hpp"
#include "support/stats.hpp"
#include "trace/preprocess.hpp"

namespace small::gc {

struct ScriptOp {
  enum class Kind : std::uint8_t {
    kNewList,
    kCar,
    kCdr,
    kCons,
    kSetCar,
    kSetCdr,
    kCopy,
    kClear,
  };
  Kind kind = Kind::kClear;
  std::uint16_t dst = 0;
  std::uint16_t a = 0;
  std::uint16_t b = 0;
  std::uint16_t length = 0;  ///< kNewList: spine cells
  std::uint16_t share = 0;   ///< kNewList: car-sharing stride (0 = none)
};

struct Script {
  std::string name;
  std::uint32_t slots = 0;
  std::vector<ScriptOp> ops;

  /// Cells cons'd over the whole run (kNewList lengths + kCons count) —
  /// the table-sizing bound for the LPT baseline.
  std::uint64_t allocationBound() const;
};

struct ScriptOptions {
  std::uint32_t slots = 48;      ///< root-slot file size
  std::uint32_t maxSpine = 24;   ///< kNewList length clamp
  std::uint64_t maxOps = 0;      ///< 0 = the whole trace
  /// Allocation budget: once reached, further readlist/cons events degrade
  /// to non-allocating ops so table-sized baselines stay bounded.
  std::uint64_t cellBudget = 200000;
};

/// Derive the mutator script for `trace`, spending `seed` deterministically.
Script scriptFromTrace(const trace::PreprocessedTrace& trace,
                       const ScriptOptions& options, std::uint64_t seed);

/// One collector's run over a script.
struct ScriptResult {
  std::string collectorName;
  std::uint64_t finalLiveCells = 0;
  /// Cells reachable per root slot, in slot order — the live-set
  /// fingerprint compared across collectors and against the LPT baseline.
  std::vector<std::uint64_t> rootReachable;
  GcStats stats;
  /// Per-collection pause costs in touch units (one histogram entry per
  /// collect(), including the final full collection). Deterministic —
  /// pauses are heap/table-touch deltas, never wall clock — and merges
  /// bucket-wise across runs like every obs histogram, so gc_comparison
  /// can aggregate a collector×backend distribution over its traces and
  /// report max/p99 pause figures (ROADMAP item 5's prerequisite).
  support::Histogram pauseTouchUnits;
};

/// Replay `script` on `collector` (which must be freshly constructed over
/// an otherwise unused backend): collect at op-boundary safepoints when
/// the collector asks, then a final full collection so finalLiveCells is
/// exactly the root-reachable set.
ScriptResult runScript(Collector& collector, const Script& script);

/// Same, recording time-resolved telemetry into `telemetry` (which may be
/// null/disabled — then identical to the plain overload): a `gc.pause`
/// series with one sample per collection at its op-index epoch, plus
/// `gc.live_cells` sampled every `sampleEvery` ops. All deterministic
/// (the op index is the epoch clock).
ScriptResult runScript(Collector& collector, const Script& script,
                       obs::TelemetryBuffer* telemetry,
                       std::uint64_t sampleEvery);

}  // namespace small::gc
