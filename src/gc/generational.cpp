// Generational collector: a nursery of recently-registered cells, a
// remembered set maintained by the setCar/setCdr write barrier, minor
// collections that trace only the nursery (entering through young roots
// and the young fields of remembered old cells), and periodic major
// collections that restore the exact root-reachable live set.
//
// The registry is kept partitioned by insertion order: cells_[0,
// youngStart_) are the old generation, cells_[youngStart_, end) the
// nursery. A minor collection compacts nursery survivors in place and
// then advances youngStart_ past them — promotion is one pointer move,
// and the registry stays insertion-ordered so downstream reports remain
// deterministic.
//
// Soundness of the minor collection rests on the barrier invariant:
// every old→young pointer's source cell is in the remembered set. The
// mutator only creates such an edge through setCar/setCdr (cons cells
// are born young, so a fresh cell's own fields can only make
// young→anything edges), and the barrier records the source whenever an
// old cell receives a young pointer. Old cells and anything they keep
// alive are conservatively retained until the next major collection —
// that float is the price of not tracing the old generation, and the
// periodic major collection (or collectFull()) pays it back.
#include <unordered_set>

#include "gc/collector.hpp"

namespace small::gc {
namespace {

class GenerationalCollector final : public Collector {
 public:
  GenerationalCollector(heap::HeapBackend& heap, const Options& options)
      : Collector(heap, options),
        nurseryLimit_(options.nurseryCells != 0
                          ? options.nurseryCells
                          : options_.triggerLiveCells / 4) {
    if (nurseryLimit_ == 0) nurseryLimit_ = 1;
  }

  const char* name() const override { return "generational"; }

  void setCar(CellRef cell, heap::HeapWord value) override {
    barrier(cell, value);
    heap_.setCar(cell, value);
  }
  void setCdr(CellRef cell, heap::HeapWord value) override {
    barrier(cell, value);
    heap_.setCdr(cell, value);
  }

  bool shouldCollect() const override {
    if (Collector::shouldCollect()) return true;
    return youngCount() >= nurseryLimit_;
  }

  std::uint64_t collectFull() override {
    forceMajor_ = true;
    const std::uint64_t reclaimed = collect();
    forceMajor_ = false;
    return reclaimed;
  }

 protected:
  void onAllocate(CellRef cell, heap::HeapWord car,
                  heap::HeapWord cdr) override {
    (void)car;
    (void)cdr;
    ++stats_.tableTouches;
    youngSet_.insert(cell);
  }

  std::uint64_t doCollect() override {
    // A minor collection cannot shrink the old generation, so when the
    // nursery is empty (or enough has been promoted since the last full
    // trace) only a major collection makes progress.
    if (forceMajor_ || youngCount() == 0 ||
        promotedSinceMajor_ >= options_.triggerLiveCells) {
      return collectMajor();
    }
    return collectMinor();
  }

 private:
  std::uint64_t youngCount() const { return cells_.size() - youngStart_; }

  /// Remember `cell` if this store creates an old→young edge.
  void barrier(CellRef cell, heap::HeapWord value) {
    ++stats_.barrierOps;
    if (!value.isPointer()) return;
    ++stats_.tableTouches;
    if (youngSet_.count(cell) != 0) return;  // young source: traced anyway
    ++stats_.tableTouches;
    if (youngSet_.count(value.payload) == 0) return;  // old→old edge
    ++stats_.tableTouches;
    if (rememberedSet_.insert(cell).second) remembered_.push_back(cell);
  }

  std::uint64_t collectMinor() {
    // Mark: reachability restricted to the nursery. Old cells terminate
    // the trace — they are conservatively live, and any young cell they
    // reference is reachable through a remembered cell's fields.
    std::unordered_set<CellRef> marked;
    std::vector<CellRef> work;
    const auto visit = [&](CellRef cell) {
      ++stats_.tableTouches;
      if (youngSet_.count(cell) == 0) return;  // old generation: stop
      ++stats_.tableTouches;
      if (marked.insert(cell).second) work.push_back(cell);
    };
    for (const CellRef root : roots_) {
      if (root == kNull) continue;
      visit(root);
    }
    for (const CellRef cell : remembered_) {
      ++stats_.cellsTraced;
      for (const heap::HeapWord word : {heap_.car(cell), heap_.cdr(cell)}) {
        if (word.isPointer()) visit(word.payload);
      }
    }
    while (!work.empty()) {
      const CellRef cell = work.back();
      work.pop_back();
      ++stats_.cellsTraced;
      for (const heap::HeapWord word : {heap_.car(cell), heap_.cdr(cell)}) {
        if (word.isPointer()) visit(word.payload);
      }
    }

    // Sweep the nursery only, compacting survivors in place; survivors
    // are thereby promoted (youngStart_ moves past them).
    std::uint64_t reclaimed = 0;
    std::size_t out = youngStart_;
    for (std::size_t i = youngStart_; i < cells_.size(); ++i) {
      const CellRef cell = cells_[i];
      ++stats_.tableTouches;
      if (marked.count(cell) != 0) {
        cells_[out++] = cell;
      } else {
        heap_.free(cell);
        ++reclaimed;
      }
      youngSet_.erase(cell);
    }
    const std::uint64_t promoted = out - youngStart_;
    cells_.resize(out);
    youngStart_ = cells_.size();
    promotedSinceMajor_ += promoted;
    stats_.cellsPromoted += promoted;
    ++stats_.minorCollections;
    remembered_.clear();
    rememberedSet_.clear();
    return reclaimed;
  }

  std::uint64_t collectMajor() {
    // Full stop-the-world mark-sweep over the whole registry; afterwards
    // everything surviving is old and the remembered set is empty.
    std::unordered_set<CellRef> marked;
    std::vector<CellRef> work;
    for (const CellRef root : roots_) {
      if (root == kNull) continue;
      ++stats_.tableTouches;
      if (marked.insert(root).second) work.push_back(root);
    }
    while (!work.empty()) {
      const CellRef cell = work.back();
      work.pop_back();
      ++stats_.cellsTraced;
      for (const heap::HeapWord word : {heap_.car(cell), heap_.cdr(cell)}) {
        if (!word.isPointer()) continue;
        ++stats_.tableTouches;
        if (marked.insert(word.payload).second) work.push_back(word.payload);
      }
    }

    std::uint64_t reclaimed = 0;
    std::size_t out = 0;
    for (const CellRef cell : cells_) {
      ++stats_.tableTouches;
      if (marked.count(cell) != 0) {
        cells_[out++] = cell;
      } else {
        heap_.free(cell);
        ++reclaimed;
      }
    }
    cells_.resize(out);
    youngStart_ = cells_.size();
    youngSet_.clear();
    remembered_.clear();
    rememberedSet_.clear();
    promotedSinceMajor_ = 0;
    return reclaimed;
  }

  std::uint64_t nurseryLimit_;
  std::size_t youngStart_ = 0;  ///< cells_[youngStart_..) is the nursery
  std::unordered_set<CellRef> youngSet_;
  std::vector<CellRef> remembered_;  ///< old cells holding young pointers
  std::unordered_set<CellRef> rememberedSet_;
  std::uint64_t promotedSinceMajor_ = 0;
  bool forceMajor_ = false;
};

}  // namespace

std::unique_ptr<Collector> makeGenerationalCollector(
    heap::HeapBackend& heap, const Collector::Options& options) {
  return std::make_unique<GenerationalCollector>(heap, options);
}

}  // namespace small::gc
